// T-SUM: the paper's §4 summary as one master table over the whole
// coverage grid — "degree-optimal and node-optimal standard k-GD graphs
// for n ∈ {1,2,3} given any k, for k ∈ {1,2,3} given any n, and for
// large k with sufficiently large n". Also writes bench_master_table.csv
// for external plotting.
#include "bench_common.hpp"
#include "io/csv.hpp"
#include "kgd/bounds.hpp"
#include "kgd/factory.hpp"

using namespace kgdp;

int main() {
  bench::banner("Master summary: the (n, k) coverage grid");
  util::Table t({"n", "k", "method", "nodes", "edges", "max deg", "bound",
                 "node-opt", "degree-opt", "verification"});
  io::CsvWriter csv("bench_master_table.csv",
                    {"n", "k", "method", "nodes", "edges", "max_degree",
                     "degree_bound", "node_optimal", "degree_optimal",
                     "verified"});

  auto emit = [&](int n, int k) {
    const auto sg = kgd::build_solution(n, k);
    if (!sg) return;
    const int bound = kgd::max_degree_lower_bound(n, k);
    const std::string verdict = bench::verify_cell(*sg, k, 70000, 250);
    const std::string deg_opt =
        sg->max_processor_degree() == bound ? "yes" : "NO";
    const std::string node_opt = sg->is_node_optimal() ? "yes" : "NO";
    t.add_row({util::Table::num(n), util::Table::num(k),
               kgd::construction_method(n, k),
               util::Table::num(sg->num_nodes()),
               util::Table::num(sg->graph().num_edges()),
               util::Table::num(sg->max_processor_degree()),
               util::Table::num(bound), node_opt, deg_opt, verdict});
    csv.row({std::to_string(n), std::to_string(k),
             kgd::construction_method(n, k),
             std::to_string(sg->num_nodes()),
             std::to_string(sg->graph().num_edges()),
             std::to_string(sg->max_processor_degree()),
             std::to_string(bound), node_opt, deg_opt, verdict});
  };

  // n <= 3, any k (columns of §3.2).
  for (int k = 1; k <= 6; ++k) {
    for (int n = 1; n <= 3; ++n) emit(n, k);
  }
  // k <= 3, any n (rows of §3.3).
  for (int k = 1; k <= 3; ++k) {
    for (int n = 4; n <= 12; ++n) emit(n, k);
  }
  // k >= 4 asymptotic.
  for (int k = 4; k <= 6; ++k) {
    for (int n = 2 * k + 5; n <= 2 * k + 7; ++n) emit(n, k);
  }
  t.print();
  std::printf("\n(wrote bench_master_table.csv)\n");
  return 0;
}
