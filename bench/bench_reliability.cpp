// X-REL: reliability curves R(p) — survival probability under
// independent per-node failures — for the paper's design vs every
// baseline, with the analytic binomial floor the k-GD guarantee implies.
#include "baseline/diogenes.hpp"
#include "baseline/naive.hpp"
#include "bench_common.hpp"
#include "kgd/factory.hpp"
#include "verify/reliability.hpp"

using namespace kgdp;

int main() {
  const int n = 10, k = 2;
  const std::vector<double> ps = {0.01, 0.02, 0.05, 0.10, 0.15};
  const int trials = 2000;

  bench::banner("Reliability R(p): survival under i.i.d. node failures "
                "(n=10, k=2, 2000 trials/point)");
  util::Table t({"design", "p=0.01", "p=0.02", "p=0.05", "p=0.10",
                 "p=0.15"});
  auto row = [&](const std::string& name, const kgd::SolutionGraph& sg,
                 std::uint64_t seed) {
    const auto curve = verify::reliability_curve(sg, ps, trials, seed);
    std::vector<std::string> cells = {name};
    for (const auto& pt : curve) {
      cells.push_back(util::Table::num(pt.survival, 3));
    }
    t.add_row(cells);
  };
  const auto ours = kgd::build_solution(n, k);
  row("paper G(10,2)", *ours, 1);
  row("bypass chain", baseline::make_bypass_chain(n, k), 2);
  row("complete K(n+k)", baseline::make_complete_design(n, k), 3);
  row("spare path", baseline::make_spare_path(n, k), 4);
  {
    std::vector<std::string> cells = {"binomial floor (<=k faults)"};
    for (double p : ps) {
      cells.push_back(util::Table::num(
          verify::binomial_survival_floor(ours->num_nodes(), k, p), 3));
    }
    t.add_row(cells);
  }
  t.print();

  bench::banner("Mean healthy-processor utilization at the same points");
  util::Table u({"design", "p=0.01", "p=0.02", "p=0.05", "p=0.10",
                 "p=0.15"});
  auto urow = [&](const std::string& name, const kgd::SolutionGraph& sg,
                  std::uint64_t seed) {
    const auto curve = verify::reliability_curve(sg, ps, trials, seed);
    std::vector<std::string> cells = {name};
    for (const auto& pt : curve) {
      cells.push_back(util::Table::num(pt.mean_utilization, 3));
    }
    u.add_row(cells);
  };
  urow("paper G(10,2)", *ours, 1);
  urow("spare path", baseline::make_spare_path(n, k), 4);
  u.print();
  std::printf(
      "\nExpected shape: the paper's design and the other genuinely k-GD\n"
      "designs ride at/above the binomial floor; the spare path collapses\n"
      "almost immediately. Crossovers: none — degree-optimality costs\n"
      "nothing in reliability.\n");
  return 0;
}
