// X-INCR: incremental repair vs global re-solve. Running machines repair
// locally (terminal swap / splice / windowed re-route) and fall back to
// the global solver only when the damage is structural; this bench
// measures the method mix and the latency advantage.
#include "bench_common.hpp"
#include "kgd/factory.hpp"
#include "util/rng.hpp"
#include "verify/incremental.hpp"
#include "verify/pipeline_solver.hpp"

using namespace kgdp;

int main() {
  bench::banner("Incremental repair: method mix and latency");
  util::Table t({"graph", "fault events", "untouched", "term-swap",
                 "splice", "window", "full-solve", "incr avg (us)",
                 "global avg (us)", "speedup"});

  for (auto [n, k] : std::vector<std::pair<int, int>>{
           {12, 3}, {30, 4}, {60, 6}, {200, 4}}) {
    const auto sg = kgd::build_solution(n, k);
    util::Rng rng(3);
    verify::IncrementalReconfigurator inc(*sg);
    verify::PipelineSolver global;
    double inc_us = 0, global_us = 0;
    int events = 0;
    const int storms = 40;
    for (int storm = 0; storm < storms; ++storm) {
      inc.reset(kgd::FaultSet::none(sg->num_nodes()));
      for (int f = 0; f < k; ++f) {
        const int v = static_cast<int>(rng.next_below(sg->num_nodes()));
        if (inc.faults().contains(v)) continue;
        ++events;
        util::Timer t1;
        inc.fail_node(v);
        inc_us += t1.micros();
        util::Timer t2;
        global.solve(*sg, inc.faults());
        global_us += t2.micros();
      }
    }
    const auto& st = inc.stats();
    t.add_row({sg->name(), util::Table::num(events),
               util::Table::num(st.untouched),
               util::Table::num(st.terminal_swaps),
               util::Table::num(st.splices),
               util::Table::num(st.window_reroutes),
               util::Table::num(st.full_solves),
               util::Table::num(inc_us / events, 1),
               util::Table::num(global_us / events, 1),
               util::Table::num(global_us / std::max(inc_us, 1.0), 1)});
  }
  t.print();
  std::printf("\nExpected shape: most faults miss the pipeline or splice "
              "out locally;\nthe incremental path wins by an order of "
              "magnitude on large graphs.\n");
  return 0;
}
