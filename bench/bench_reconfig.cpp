// X-RECONF: reconfiguration latency (time to find a certified pipeline
// after faults) as a function of n, k and the fault count — the runtime
// cost a system pays at each failure event. google-benchmark harness.
#include <benchmark/benchmark.h>

#include "fault/fault_model.hpp"
#include "kgd/factory.hpp"
#include "util/rng.hpp"
#include "verify/pipeline_solver.hpp"

using namespace kgdp;

namespace {

void BM_ReconfigureVsN(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = 4;
  const auto sg = kgd::build_solution(n, k);
  util::Rng rng(1);
  verify::PipelineSolver solver;
  for (auto _ : state) {
    state.PauseTiming();
    const kgd::FaultSet fs =
        fault::draw_faults(*sg, k, fault::FaultPolicy::kUniform, rng);
    state.ResumeTiming();
    auto out = solver.solve(*sg, fs);
    benchmark::DoNotOptimize(out);
    if (out.status != verify::SolveStatus::kFound) {
      state.SkipWithError("no pipeline found");
    }
  }
  state.SetLabel("k=4, faults=k");
}
// Short min-time: individual solves are ms-scale and heavy-tailed, so a
// long sampling window mostly re-measures the tail.
BENCHMARK(BM_ReconfigureVsN)
    ->Arg(16)->Arg(32)->Arg(64)->Arg(128)->Arg(256)
    ->MinTime(0.1);

void BM_ReconfigureVsK(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int n = 40;
  const auto sg = kgd::build_solution(n, k);
  util::Rng rng(2);
  verify::PipelineSolver solver;
  for (auto _ : state) {
    state.PauseTiming();
    const kgd::FaultSet fs =
        fault::draw_faults(*sg, k, fault::FaultPolicy::kUniform, rng);
    state.ResumeTiming();
    auto out = solver.solve(*sg, fs);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel("n=40, faults=k");
}
BENCHMARK(BM_ReconfigureVsK)->DenseRange(1, 8, 1);

void BM_ReconfigureVsFaults(benchmark::State& state) {
  const int f = static_cast<int>(state.range(0));
  const int n = 64, k = 6;
  const auto sg = kgd::build_solution(n, k);
  util::Rng rng(3);
  verify::PipelineSolver solver;
  for (auto _ : state) {
    state.PauseTiming();
    const kgd::FaultSet fs =
        fault::draw_faults(*sg, f, fault::FaultPolicy::kUniform, rng);
    state.ResumeTiming();
    auto out = solver.solve(*sg, fs);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel("n=64, k=6");
}
BENCHMARK(BM_ReconfigureVsFaults)->DenseRange(0, 6, 1)->MinTime(0.1);

void BM_ConstructionCost(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto sg = kgd::build_solution(n, 4);
    benchmark::DoNotOptimize(sg);
  }
  state.SetLabel("asymptotic build, k=4");
}
BENCHMARK(BM_ConstructionCost)->Arg(32)->Arg(128)->Arg(512);

void BM_AdversarialReconfigure(benchmark::State& state) {
  // High-degree-targeted faults: the hardest instances for the router.
  const int n = 64, k = 6;
  const auto sg = kgd::build_solution(n, k);
  util::Rng rng(4);
  verify::PipelineSolver solver;
  for (auto _ : state) {
    state.PauseTiming();
    const kgd::FaultSet fs = fault::draw_faults(
        *sg, k, fault::FaultPolicy::kHighDegreeFirst, rng);
    state.ResumeTiming();
    auto out = solver.solve(*sg, fs);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_AdversarialReconfigure);

}  // namespace
