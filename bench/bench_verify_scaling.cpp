// X-VERIFY: exhaustive-verification throughput (fault sets per second)
// and thread-pool scaling of the GD checker. On a single-core host the
// parallel numbers simply match sequential; the shape to look for is
// fault-sets/sec and its growth with instance size.
#include <benchmark/benchmark.h>

#include "kgd/factory.hpp"
#include "util/thread_pool.hpp"
#include "verify/checker.hpp"

using namespace kgdp;

namespace {

void BM_ExhaustiveCheckSequential(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = 2;
  const auto sg = kgd::build_solution(n, k);
  std::uint64_t sets = 0;
  for (auto _ : state) {
    const auto res = verify::check_gd_exhaustive(*sg, k);
    benchmark::DoNotOptimize(res);
    sets += res.fault_sets_checked;
    if (!res.holds) state.SkipWithError("GD failed");
  }
  state.counters["fault_sets/s"] = benchmark::Counter(
      static_cast<double>(sets), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExhaustiveCheckSequential)->Arg(6)->Arg(9)->Arg(12);

void BM_ExhaustiveCheckParallel(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const auto sg = kgd::build_solution(12, 2);
  util::ThreadPool pool(threads);
  verify::CheckOptions opts;
  opts.pool = &pool;
  std::uint64_t sets = 0;
  for (auto _ : state) {
    const auto res = verify::check_gd_exhaustive(*sg, 2, opts);
    benchmark::DoNotOptimize(res);
    sets += res.fault_sets_checked;
  }
  state.counters["fault_sets/s"] = benchmark::Counter(
      static_cast<double>(sets), benchmark::Counter::kIsRate);
  state.SetLabel("n=12 k=2, threads=" + std::to_string(threads));
}
// Wall-clock rate: worker time is off the benchmark thread, so CPU-time
// rates would be meaningless.
BENCHMARK(BM_ExhaustiveCheckParallel)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_AsymptoticExhaustive(benchmark::State& state) {
  // The Figure 14 instance: 66712 fault sets, 26-processor Ham instances.
  const auto sg = kgd::build_solution(22, 4);
  for (auto _ : state) {
    const auto res = verify::check_gd_exhaustive(*sg, 4);
    benchmark::DoNotOptimize(res);
    if (!res.holds) state.SkipWithError("GD failed");
    state.counters["fault_sets"] =
        static_cast<double>(res.fault_sets_checked);
  }
}
BENCHMARK(BM_AsymptoticExhaustive)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_SampledCheck(benchmark::State& state) {
  const auto sg = kgd::build_solution(40, 4);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto res = verify::check_gd_sampled(*sg, 4, 200, ++seed);
    benchmark::DoNotOptimize(res);
  }
  state.SetLabel("n=40 k=4, 200 samples + adversarial suite");
}
BENCHMARK(BM_SampledCheck)->Unit(benchmark::kMillisecond);

}  // namespace
