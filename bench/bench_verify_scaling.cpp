// X-VERIFY: exhaustive-verification throughput (fault sets per second)
// and thread-pool scaling of the GD checker. On a single-core host the
// parallel numbers simply match sequential; the shape to look for is
// fault-sets/sec and its growth with instance size.
#include <benchmark/benchmark.h>

#include "kgd/factory.hpp"
#include "kgd/small_n.hpp"
#include "util/thread_pool.hpp"
#include "verify/checker.hpp"

using namespace kgdp;

namespace {

verify::CheckOptions prune_opts(bool prune) {
  verify::CheckOptions opts;
  opts.prune = prune ? verify::PruneMode::kAuto : verify::PruneMode::kOff;
  return opts;
}

void BM_ExhaustiveCheckSequential(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = 2;
  const auto sg = kgd::build_solution(n, k);
  std::uint64_t sets = 0;
  for (auto _ : state) {
    const auto res = verify::check_gd_exhaustive(*sg, k);
    benchmark::DoNotOptimize(res);
    sets += res.fault_sets_checked;
    if (!res.holds) state.SkipWithError("GD failed");
  }
  state.counters["fault_sets/s"] = benchmark::Counter(
      static_cast<double>(sets), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExhaustiveCheckSequential)->Arg(6)->Arg(9)->Arg(12);

void BM_ExhaustiveCheckParallel(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const auto sg = kgd::build_solution(12, 2);
  util::ThreadPool pool(threads);
  verify::CheckOptions opts;
  opts.pool = &pool;
  std::uint64_t sets = 0;
  for (auto _ : state) {
    const auto res = verify::check_gd_exhaustive(*sg, 2, opts);
    benchmark::DoNotOptimize(res);
    sets += res.fault_sets_checked;
  }
  state.counters["fault_sets/s"] = benchmark::Counter(
      static_cast<double>(sets), benchmark::Counter::kIsRate);
  state.SetLabel("n=12 k=2, threads=" + std::to_string(threads));
}
// Wall-clock rate: worker time is off the benchmark thread, so CPU-time
// rates would be meaningless.
BENCHMARK(BM_ExhaustiveCheckParallel)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_AsymptoticExhaustive(benchmark::State& state) {
  // The Figure 14 instance: 66712 fault sets, 26-processor Ham instances.
  const auto sg = kgd::build_solution(22, 4);
  for (auto _ : state) {
    const auto res = verify::check_gd_exhaustive(*sg, 4);
    benchmark::DoNotOptimize(res);
    if (!res.holds) state.SkipWithError("GD failed");
    state.counters["fault_sets"] =
        static_cast<double>(res.fault_sets_checked);
  }
}
BENCHMARK(BM_AsymptoticExhaustive)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Symmetry pruning on the §3.2 families: G(3,k) (clique minus matching —
// the circulant-core small-n construction) and G(1,k)/G(2,k) (cliques).
// arg0 = k, arg1 = prune (0 = off, 1 = auto). The off/auto pair at equal
// k is the speedup the orbit engine buys; the checker stays exact either
// way (same verdict, summed orbit sizes = full quantifier domain).
void BM_ExhaustiveG3kPrune(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const bool prune = state.range(1) != 0;
  const auto sg = kgd::make_g3k(k);
  const auto opts = prune_opts(prune);
  std::uint64_t sets = 0, solved = 0;
  for (auto _ : state) {
    const auto res = verify::check_gd_exhaustive(sg, k, opts);
    benchmark::DoNotOptimize(res);
    if (!res.holds) state.SkipWithError("GD failed");
    sets += res.fault_sets_checked;
    solved += res.fault_sets_solved;
  }
  state.counters["fault_sets/s"] = benchmark::Counter(
      static_cast<double>(sets), benchmark::Counter::kIsRate);
  state.counters["solved/s"] = benchmark::Counter(
      static_cast<double>(solved), benchmark::Counter::kIsRate);
  state.SetLabel("G(3," + std::to_string(k) + ") prune=" +
                 (prune ? "auto" : "off"));
}
BENCHMARK(BM_ExhaustiveG3kPrune)
    ->Args({4, 0})->Args({4, 1})
    ->Args({5, 0})->Args({5, 1})
    ->Args({6, 0})->Args({6, 1})
    ->Unit(benchmark::kMillisecond);

void BM_ExhaustiveCliquePrune(benchmark::State& state) {
  const int small_n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const bool prune = state.range(2) != 0;
  const auto sg = small_n == 1 ? kgd::make_g1k(k) : kgd::make_g2k(k);
  const auto opts = prune_opts(prune);
  std::uint64_t solved = 0;
  for (auto _ : state) {
    const auto res = verify::check_gd_exhaustive(sg, k, opts);
    benchmark::DoNotOptimize(res);
    if (!res.holds) state.SkipWithError("GD failed");
    solved += res.fault_sets_solved;
  }
  state.counters["solved/s"] = benchmark::Counter(
      static_cast<double>(solved), benchmark::Counter::kIsRate);
  state.SetLabel("G(" + std::to_string(small_n) + "," + std::to_string(k) +
                 ") prune=" + (prune ? "auto" : "off"));
}
BENCHMARK(BM_ExhaustiveCliquePrune)
    ->Args({1, 5, 0})->Args({1, 5, 1})
    ->Args({2, 5, 0})->Args({2, 5, 1})
    ->Unit(benchmark::kMillisecond);

// Negative control: the asymptotic instance has a trivial label-
// respecting group, so prune=auto must degrade to the plain sweep with
// only the (cheap) group computation as overhead.
void BM_ExhaustivePruneTrivialGroup(benchmark::State& state) {
  const bool prune = state.range(0) != 0;
  const auto sg = kgd::build_solution(22, 4);
  const auto opts = prune_opts(prune);
  for (auto _ : state) {
    const auto res = verify::check_gd_exhaustive(*sg, 4, opts);
    benchmark::DoNotOptimize(res);
    if (!res.holds) state.SkipWithError("GD failed");
    if (res.orbits_pruned != 0) state.SkipWithError("expected no pruning");
  }
  state.SetLabel(std::string("G(22,4) trivial Aut, prune=") +
                 (prune ? "auto" : "off"));
}
BENCHMARK(BM_ExhaustivePruneTrivialGroup)
    ->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_SampledCheck(benchmark::State& state) {
  const auto sg = kgd::build_solution(40, 4);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto res = verify::check_gd_sampled(*sg, 4, 200, ++seed);
    benchmark::DoNotOptimize(res);
  }
  state.SetLabel("n=40 k=4, 200 samples + adversarial suite");
}
BENCHMARK(BM_SampledCheck)->Unit(benchmark::kMillisecond);

}  // namespace
