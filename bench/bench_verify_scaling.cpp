// X-VERIFY: exhaustive-verification throughput (fault sets per second)
// and thread-pool scaling of the GD checker. On a single-core host the
// parallel numbers simply match sequential; the shape to look for is
// fault-sets/sec and its growth with instance size.
//
// Besides the google-benchmark suite, this binary has a perf-tracking
// mode (X-SOLVER): with no gbench filter flags it measures the Figure 14
// instance single-core and, given --json=PATH, records the result as
// machine-readable BENCH_verify.json; --smoke=BUDGET.json compares the
// measurement against a checked-in budget and exits nonzero on
// regression beyond --tolerance (a multiplier; default 1.25, use a
// generous value on shared/noisy runners).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "bench_common.hpp"
#include "kgd/factory.hpp"
#include "kgd/small_n.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "verify/check_session.hpp"
#include "verify/checker.hpp"

using namespace kgdp;

namespace {

verify::CheckOptions prune_opts(bool prune) {
  verify::CheckOptions opts;
  opts.prune = prune ? verify::PruneMode::kAuto : verify::PruneMode::kOff;
  return opts;
}

void BM_ExhaustiveCheckSequential(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = 2;
  const auto sg = kgd::build_solution(n, k);
  std::uint64_t sets = 0;
  for (auto _ : state) {
    const auto res = verify::run_check(*sg, verify::CheckRequest::exhaustive(k));
    benchmark::DoNotOptimize(res);
    sets += res.fault_sets_checked;
    if (!res.holds) state.SkipWithError("GD failed");
  }
  state.counters["fault_sets/s"] = benchmark::Counter(
      static_cast<double>(sets), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExhaustiveCheckSequential)->Arg(6)->Arg(9)->Arg(12);

void BM_ExhaustiveCheckParallel(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const auto sg = kgd::build_solution(12, 2);
  util::ThreadPool pool(threads);
  verify::CheckOptions opts;
  opts.pool = &pool;
  std::uint64_t sets = 0;
  for (auto _ : state) {
    const auto res = verify::run_check(*sg, verify::CheckRequest::exhaustive(2, opts));
    benchmark::DoNotOptimize(res);
    sets += res.fault_sets_checked;
  }
  state.counters["fault_sets/s"] = benchmark::Counter(
      static_cast<double>(sets), benchmark::Counter::kIsRate);
  state.SetLabel("n=12 k=2, threads=" + std::to_string(threads));
}
// Wall-clock rate: worker time is off the benchmark thread, so CPU-time
// rates would be meaningless.
BENCHMARK(BM_ExhaustiveCheckParallel)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_AsymptoticExhaustive(benchmark::State& state) {
  // The Figure 14 instance: 66712 fault sets, 26-processor Ham instances.
  const auto sg = kgd::build_solution(22, 4);
  for (auto _ : state) {
    const auto res = verify::run_check(*sg, verify::CheckRequest::exhaustive(4));
    benchmark::DoNotOptimize(res);
    if (!res.holds) state.SkipWithError("GD failed");
    state.counters["fault_sets"] =
        static_cast<double>(res.fault_sets_checked);
  }
}
BENCHMARK(BM_AsymptoticExhaustive)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Symmetry pruning on the §3.2 families: G(3,k) (clique minus matching —
// the circulant-core small-n construction) and G(1,k)/G(2,k) (cliques).
// arg0 = k, arg1 = prune (0 = off, 1 = auto). The off/auto pair at equal
// k is the speedup the orbit engine buys; the checker stays exact either
// way (same verdict, summed orbit sizes = full quantifier domain).
void BM_ExhaustiveG3kPrune(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const bool prune = state.range(1) != 0;
  const auto sg = kgd::make_g3k(k);
  const auto opts = prune_opts(prune);
  std::uint64_t sets = 0, solved = 0;
  for (auto _ : state) {
    const auto res = verify::run_check(sg, verify::CheckRequest::exhaustive(k, opts));
    benchmark::DoNotOptimize(res);
    if (!res.holds) state.SkipWithError("GD failed");
    sets += res.fault_sets_checked;
    solved += res.fault_sets_solved;
  }
  state.counters["fault_sets/s"] = benchmark::Counter(
      static_cast<double>(sets), benchmark::Counter::kIsRate);
  state.counters["solved/s"] = benchmark::Counter(
      static_cast<double>(solved), benchmark::Counter::kIsRate);
  state.SetLabel("G(3," + std::to_string(k) + ") prune=" +
                 (prune ? "auto" : "off"));
}
BENCHMARK(BM_ExhaustiveG3kPrune)
    ->Args({4, 0})->Args({4, 1})
    ->Args({5, 0})->Args({5, 1})
    ->Args({6, 0})->Args({6, 1})
    ->Unit(benchmark::kMillisecond);

void BM_ExhaustiveCliquePrune(benchmark::State& state) {
  const int small_n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const bool prune = state.range(2) != 0;
  const auto sg = small_n == 1 ? kgd::make_g1k(k) : kgd::make_g2k(k);
  const auto opts = prune_opts(prune);
  std::uint64_t solved = 0;
  for (auto _ : state) {
    const auto res = verify::run_check(sg, verify::CheckRequest::exhaustive(k, opts));
    benchmark::DoNotOptimize(res);
    if (!res.holds) state.SkipWithError("GD failed");
    solved += res.fault_sets_solved;
  }
  state.counters["solved/s"] = benchmark::Counter(
      static_cast<double>(solved), benchmark::Counter::kIsRate);
  state.SetLabel("G(" + std::to_string(small_n) + "," + std::to_string(k) +
                 ") prune=" + (prune ? "auto" : "off"));
}
BENCHMARK(BM_ExhaustiveCliquePrune)
    ->Args({1, 5, 0})->Args({1, 5, 1})
    ->Args({2, 5, 0})->Args({2, 5, 1})
    ->Unit(benchmark::kMillisecond);

// Negative control: the asymptotic instance has a trivial label-
// respecting group, so prune=auto must degrade to the plain sweep with
// only the (cheap) group computation as overhead.
void BM_ExhaustivePruneTrivialGroup(benchmark::State& state) {
  const bool prune = state.range(0) != 0;
  const auto sg = kgd::build_solution(22, 4);
  const auto opts = prune_opts(prune);
  for (auto _ : state) {
    const auto res = verify::run_check(*sg, verify::CheckRequest::exhaustive(4, opts));
    benchmark::DoNotOptimize(res);
    if (!res.holds) state.SkipWithError("GD failed");
    if (res.orbits_pruned != 0) state.SkipWithError("expected no pruning");
  }
  state.SetLabel(std::string("G(22,4) trivial Aut, prune=") +
                 (prune ? "auto" : "off"));
}
BENCHMARK(BM_ExhaustivePruneTrivialGroup)
    ->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_SampledCheck(benchmark::State& state) {
  const auto sg = kgd::build_solution(40, 4);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto res = verify::run_check(*sg, verify::CheckRequest::sampled(4, 200, ++seed));
    benchmark::DoNotOptimize(res);
  }
  state.SetLabel("n=40 k=4, 200 samples + adversarial suite");
}
BENCHMARK(BM_SampledCheck)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// X-SOLVER perf-tracking mode (custom main below)
// ---------------------------------------------------------------------------

struct Fig14Measurement {
  double best_seconds = 0.0;  // fastest repetition (noise-resistant)
  verify::CheckResult result; // counters from the fastest repetition
};

// The Figure 14 instance: G(22,4), 66,712 fault sets, trivial label-
// respecting group (no orbit pruning), single-core sequential sweep —
// the purest measure of raw solver throughput.
Fig14Measurement measure_figure14(int reps) {
  const auto sg = kgd::build_solution(22, 4);
  verify::CheckRequest req;
  req.mode = verify::CheckMode::kExhaustive;
  req.max_faults = 4;
  Fig14Measurement m;
  for (int r = 0; r < reps; ++r) {
    verify::CheckSession session(*sg, req);
    const util::Timer t;
    session.run();
    const double secs = t.seconds();
    const verify::CheckResult res = session.result();
    if (!res.holds) {
      std::fprintf(stderr, "FATAL: GD(G(22,4), 4) failed\n");
      std::exit(2);
    }
    if (r == 0 || secs < m.best_seconds) {
      m.best_seconds = secs;
      m.result = res;
    }
  }
  return m;
}

int run_perf_mode(const std::string& json_path, const std::string& smoke_path,
                  double tolerance, int reps) {
  const Fig14Measurement m = measure_figure14(reps);
  const double ns_per_solve =
      m.best_seconds * 1e9 / static_cast<double>(m.result.fault_sets_solved);
  const double throughput =
      static_cast<double>(m.result.fault_sets_checked) / m.best_seconds;
  std::printf("X-SOLVER figure-14 G(22,4): %llu fault sets, %.0f ns/solve, "
              "%.0f fault-sets/s (best of %d)\n",
              static_cast<unsigned long long>(m.result.fault_sets_checked),
              ns_per_solve, throughput, reps);

  if (!json_path.empty()) {
    io::JsonObject fields;
    fields["instance"] = std::string("G(22,4)");
    fields["fault_sets"] = m.result.fault_sets_checked;
    fields["solves"] = m.result.fault_sets_solved;
    fields["ns_per_solve"] = ns_per_solve;
    fields["throughput"] = throughput;
    fields["solver_patches"] = m.result.solver_patches;
    fields["solver_rebuilds"] = m.result.solver_rebuilds;
    fields["solver_search_nodes"] = m.result.solver_search_nodes;
    fields["solver_walk_hits"] = m.result.solver_walk_hits;
    fields["solver_walk_fallbacks"] = m.result.solver_walk_fallbacks;
    if (!bench::write_bench_json(json_path, std::move(fields))) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!smoke_path.empty()) {
    std::ifstream in(smoke_path);
    std::stringstream buf;
    buf << in.rdbuf();
    if (!in) {
      std::fprintf(stderr, "FATAL: cannot read budget %s\n",
                   smoke_path.c_str());
      return 2;
    }
    const io::Json budget = io::Json::parse(buf.str());
    const io::Json* budget_ns = budget.find("ns_per_solve");
    if (budget_ns == nullptr) {
      std::fprintf(stderr, "FATAL: %s lacks ns_per_solve\n",
                   smoke_path.c_str());
      return 2;
    }
    const double allowed = budget_ns->as_double() * tolerance;
    std::printf("perf smoke: %.0f ns/solve measured vs %.0f budget "
                "(%.0f allowed at tolerance %.2f)\n",
                ns_per_solve, budget_ns->as_double(), allowed, tolerance);
    if (ns_per_solve > allowed) {
      std::fprintf(stderr, "PERF REGRESSION: ns/solve above budget\n");
      return 1;
    }
    std::printf("perf smoke: OK\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, smoke_path;
  double tolerance = 1.25;
  int reps = 3;
  // Strip our flags before handing the rest to google-benchmark.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--smoke=", 0) == 0) {
      smoke_path = arg.substr(8);
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance = std::stod(arg.substr(12));
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = std::stoi(arg.substr(7));
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (!json_path.empty() || !smoke_path.empty()) {
    return run_perf_mode(json_path, smoke_path, tolerance, reps);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
