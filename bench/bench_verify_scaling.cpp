// X-VERIFY: exhaustive-verification throughput (fault sets per second)
// and thread-pool scaling of the GD checker. On a single-core host the
// parallel numbers simply match sequential; the shape to look for is
// fault-sets/sec and its growth with instance size.
//
// Besides the google-benchmark suite, this binary has a perf-tracking
// mode (X-SOLVER): with no gbench filter flags it measures the Figure 14
// instance single-core and, given --json=PATH, records the result as
// machine-readable BENCH_verify.json; --threads=1,2,4 additionally runs
// the multi-core batch sweep at each listed thread count and emits one
// `mt` JSON row per point (--pin pins workers to cores for the sweep);
// --smoke=BUDGET.json compares the measurement against a checked-in
// budget and exits nonzero on regression beyond --tolerance (a
// multiplier; default 1.25, use a generous value on shared/noisy
// runners), replaying a 2-thread sweep against the budget's mt rows
// under --mt-tolerance. A missing or unparsable budget exits 4 — a
// distinct code so CI can tell "stale checkout" from "perf regression".
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "kgd/factory.hpp"
#include "kgd/small_n.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "verify/check_session.hpp"
#include "verify/checker.hpp"

using namespace kgdp;

namespace {

verify::CheckOptions prune_opts(bool prune) {
  verify::CheckOptions opts;
  opts.prune = prune ? verify::PruneMode::kAuto : verify::PruneMode::kOff;
  return opts;
}

void BM_ExhaustiveCheckSequential(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int k = 2;
  const auto sg = kgd::build_solution(n, k);
  std::uint64_t sets = 0;
  for (auto _ : state) {
    const auto res = verify::run_check(*sg, verify::CheckRequest::exhaustive(k));
    benchmark::DoNotOptimize(res);
    sets += res.fault_sets_checked;
    if (!res.holds) state.SkipWithError("GD failed");
  }
  state.counters["fault_sets/s"] = benchmark::Counter(
      static_cast<double>(sets), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_ExhaustiveCheckSequential)->Arg(6)->Arg(9)->Arg(12);

void BM_ExhaustiveCheckParallel(benchmark::State& state) {
  const unsigned threads = static_cast<unsigned>(state.range(0));
  const auto sg = kgd::build_solution(12, 2);
  util::ThreadPool pool(threads);
  verify::CheckOptions opts;
  opts.pool = &pool;
  std::uint64_t sets = 0;
  for (auto _ : state) {
    const auto res = verify::run_check(*sg, verify::CheckRequest::exhaustive(2, opts));
    benchmark::DoNotOptimize(res);
    sets += res.fault_sets_checked;
  }
  state.counters["fault_sets/s"] = benchmark::Counter(
      static_cast<double>(sets), benchmark::Counter::kIsRate);
  state.SetLabel("n=12 k=2, threads=" + std::to_string(threads));
}
// Wall-clock rate: worker time is off the benchmark thread, so CPU-time
// rates would be meaningless.
BENCHMARK(BM_ExhaustiveCheckParallel)->Arg(1)->Arg(2)->Arg(4)->UseRealTime();

void BM_AsymptoticExhaustive(benchmark::State& state) {
  // The Figure 14 instance: 66712 fault sets, 26-processor Ham instances.
  const auto sg = kgd::build_solution(22, 4);
  for (auto _ : state) {
    const auto res = verify::run_check(*sg, verify::CheckRequest::exhaustive(4));
    benchmark::DoNotOptimize(res);
    if (!res.holds) state.SkipWithError("GD failed");
    state.counters["fault_sets"] =
        static_cast<double>(res.fault_sets_checked);
  }
}
BENCHMARK(BM_AsymptoticExhaustive)->Unit(benchmark::kMillisecond)
    ->Iterations(3);

// Symmetry pruning on the §3.2 families: G(3,k) (clique minus matching —
// the circulant-core small-n construction) and G(1,k)/G(2,k) (cliques).
// arg0 = k, arg1 = prune (0 = off, 1 = auto). The off/auto pair at equal
// k is the speedup the orbit engine buys; the checker stays exact either
// way (same verdict, summed orbit sizes = full quantifier domain).
void BM_ExhaustiveG3kPrune(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const bool prune = state.range(1) != 0;
  const auto sg = kgd::make_g3k(k);
  const auto opts = prune_opts(prune);
  std::uint64_t sets = 0, solved = 0;
  for (auto _ : state) {
    const auto res = verify::run_check(sg, verify::CheckRequest::exhaustive(k, opts));
    benchmark::DoNotOptimize(res);
    if (!res.holds) state.SkipWithError("GD failed");
    sets += res.fault_sets_checked;
    solved += res.fault_sets_solved;
  }
  state.counters["fault_sets/s"] = benchmark::Counter(
      static_cast<double>(sets), benchmark::Counter::kIsRate);
  state.counters["solved/s"] = benchmark::Counter(
      static_cast<double>(solved), benchmark::Counter::kIsRate);
  state.SetLabel("G(3," + std::to_string(k) + ") prune=" +
                 (prune ? "auto" : "off"));
}
BENCHMARK(BM_ExhaustiveG3kPrune)
    ->Args({4, 0})->Args({4, 1})
    ->Args({5, 0})->Args({5, 1})
    ->Args({6, 0})->Args({6, 1})
    ->Unit(benchmark::kMillisecond);

void BM_ExhaustiveCliquePrune(benchmark::State& state) {
  const int small_n = static_cast<int>(state.range(0));
  const int k = static_cast<int>(state.range(1));
  const bool prune = state.range(2) != 0;
  const auto sg = small_n == 1 ? kgd::make_g1k(k) : kgd::make_g2k(k);
  const auto opts = prune_opts(prune);
  std::uint64_t solved = 0;
  for (auto _ : state) {
    const auto res = verify::run_check(sg, verify::CheckRequest::exhaustive(k, opts));
    benchmark::DoNotOptimize(res);
    if (!res.holds) state.SkipWithError("GD failed");
    solved += res.fault_sets_solved;
  }
  state.counters["solved/s"] = benchmark::Counter(
      static_cast<double>(solved), benchmark::Counter::kIsRate);
  state.SetLabel("G(" + std::to_string(small_n) + "," + std::to_string(k) +
                 ") prune=" + (prune ? "auto" : "off"));
}
BENCHMARK(BM_ExhaustiveCliquePrune)
    ->Args({1, 5, 0})->Args({1, 5, 1})
    ->Args({2, 5, 0})->Args({2, 5, 1})
    ->Unit(benchmark::kMillisecond);

// Negative control: the asymptotic instance has a trivial label-
// respecting group, so prune=auto must degrade to the plain sweep with
// only the (cheap) group computation as overhead.
void BM_ExhaustivePruneTrivialGroup(benchmark::State& state) {
  const bool prune = state.range(0) != 0;
  const auto sg = kgd::build_solution(22, 4);
  const auto opts = prune_opts(prune);
  for (auto _ : state) {
    const auto res = verify::run_check(*sg, verify::CheckRequest::exhaustive(4, opts));
    benchmark::DoNotOptimize(res);
    if (!res.holds) state.SkipWithError("GD failed");
    if (res.orbits_pruned != 0) state.SkipWithError("expected no pruning");
  }
  state.SetLabel(std::string("G(22,4) trivial Aut, prune=") +
                 (prune ? "auto" : "off"));
}
BENCHMARK(BM_ExhaustivePruneTrivialGroup)
    ->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_SampledCheck(benchmark::State& state) {
  const auto sg = kgd::build_solution(40, 4);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    const auto res = verify::run_check(*sg, verify::CheckRequest::sampled(4, 200, ++seed));
    benchmark::DoNotOptimize(res);
  }
  state.SetLabel("n=40 k=4, 200 samples + adversarial suite");
}
BENCHMARK(BM_SampledCheck)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// X-SOLVER perf-tracking mode (custom main below)
// ---------------------------------------------------------------------------

struct Fig14Measurement {
  double best_seconds = 0.0;  // fastest repetition (noise-resistant)
  verify::CheckResult result; // counters from the fastest repetition
};

// The Figure 14 instance: G(22,4), 66,712 fault sets, trivial label-
// respecting group (no orbit pruning). threads == 1 runs the single-core
// sequential sweep — the purest measure of raw solver throughput;
// threads > 1 runs the work-stealing batched sweep over a pool of that
// size (optionally pinned), which is what the thread-scaling rows
// measure. Verdicts are thread-count-independent, so every point
// certifies the same instance.
Fig14Measurement measure_figure14(int reps, unsigned threads, bool pin) {
  const auto sg = kgd::build_solution(22, 4);
  verify::CheckRequest req;
  req.mode = verify::CheckMode::kExhaustive;
  req.max_faults = 4;
  std::unique_ptr<util::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<util::ThreadPool>(threads, pin);
    req.options.pool = pool.get();
  }
  Fig14Measurement m;
  for (int r = 0; r < reps; ++r) {
    verify::CheckSession session(*sg, req);
    const util::Timer t;
    session.run();
    const double secs = t.seconds();
    const verify::CheckResult res = session.result();
    if (!res.holds) {
      std::fprintf(stderr, "FATAL: GD(G(22,4), 4) failed\n");
      std::exit(2);
    }
    if (r == 0 || secs < m.best_seconds) {
      m.best_seconds = secs;
      m.result = res;
    }
  }
  return m;
}

struct MtPoint {
  unsigned threads = 1;
  double seconds = 0.0;
  double ns_per_solve = 0.0;
  double throughput = 0.0;  // fault sets (incl. pruned) per second
  double solves_per_s = 0.0;
};

MtPoint measure_mt_point(int reps, unsigned threads, bool pin) {
  const Fig14Measurement m = measure_figure14(reps, threads, pin);
  MtPoint p;
  p.threads = threads;
  p.seconds = m.best_seconds;
  p.ns_per_solve =
      m.best_seconds * 1e9 / static_cast<double>(m.result.fault_sets_solved);
  p.throughput =
      static_cast<double>(m.result.fault_sets_checked) / m.best_seconds;
  p.solves_per_s =
      static_cast<double>(m.result.fault_sets_solved) / m.best_seconds;
  return p;
}

// Distinct exit code for "the checked-in budget is missing or not JSON":
// CI must be able to tell a stale/fresh checkout from a genuine perf
// regression (exit 1) or a measurement failure (exit 2).
constexpr int kBadBudgetExit = 4;

int run_perf_mode(const std::string& json_path, const std::string& smoke_path,
                  double tolerance, double mt_tolerance, int reps,
                  const std::vector<unsigned>& thread_sweep, bool pin) {
  // Load and validate the smoke budget before measuring anything: a
  // missing or corrupt checkout should fail in milliseconds with the
  // distinct exit code, not after a multi-second sweep.
  io::Json budget;
  if (!smoke_path.empty()) {
    std::ifstream in(smoke_path);
    std::stringstream buf;
    buf << in.rdbuf();
    if (!in) {
      std::fprintf(stderr,
                   "FATAL: perf budget %s is missing or unreadable — "
                   "run `bench_verify_scaling --json=%s` to regenerate it\n",
                   smoke_path.c_str(), smoke_path.c_str());
      return kBadBudgetExit;
    }
    try {
      budget = io::Json::parse(buf.str());
    } catch (const std::exception& e) {
      std::fprintf(stderr,
                   "FATAL: perf budget %s is not valid JSON (%s) — "
                   "run `bench_verify_scaling --json=%s` to regenerate it\n",
                   smoke_path.c_str(), e.what(), smoke_path.c_str());
      return kBadBudgetExit;
    }
    const io::Json* budget_ns = budget.find("ns_per_solve");
    if (budget_ns == nullptr || !budget_ns->is_number()) {
      std::fprintf(stderr,
                   "FATAL: perf budget %s lacks a numeric ns_per_solve — "
                   "run `bench_verify_scaling --json=%s` to regenerate it\n",
                   smoke_path.c_str(), smoke_path.c_str());
      return kBadBudgetExit;
    }
  }

  const Fig14Measurement m = measure_figure14(reps, 1, false);
  const double ns_per_solve =
      m.best_seconds * 1e9 / static_cast<double>(m.result.fault_sets_solved);
  const double throughput =
      static_cast<double>(m.result.fault_sets_checked) / m.best_seconds;
  std::printf("X-SOLVER figure-14 G(22,4): %llu fault sets, %.0f ns/solve, "
              "%.0f fault-sets/s (best of %d, kernel %s w%d %s)\n",
              static_cast<unsigned long long>(m.result.fault_sets_checked),
              ns_per_solve, throughput, reps, m.result.solver_kernel_name,
              m.result.solver_kernel_width, m.result.solver_kernel_isa);

  std::vector<MtPoint> mt;
  for (const unsigned t : thread_sweep) {
    const MtPoint p = measure_mt_point(reps, t, pin);
    mt.push_back(p);
    std::printf("X-SOLVER-MT threads=%u%s: %.3fs, %.0f ns/solve, "
                "%.0f solves/s, %.0f fault-sets/s\n",
                p.threads, pin ? " (pinned)" : "", p.seconds, p.ns_per_solve,
                p.solves_per_s, p.throughput);
  }

  if (!json_path.empty()) {
    io::JsonObject fields;
    fields["instance"] = std::string("G(22,4)");
    fields["fault_sets"] = m.result.fault_sets_checked;
    fields["solves"] = m.result.fault_sets_solved;
    fields["ns_per_solve"] = ns_per_solve;
    fields["throughput"] = throughput;
    fields["solver_patches"] = m.result.solver_patches;
    fields["solver_rebuilds"] = m.result.solver_rebuilds;
    fields["solver_search_nodes"] = m.result.solver_search_nodes;
    fields["solver_walk_hits"] = m.result.solver_walk_hits;
    fields["solver_walk_fallbacks"] = m.result.solver_walk_fallbacks;
    fields["kernel_name"] = std::string(m.result.solver_kernel_name);
    fields["kernel_width"] = m.result.solver_kernel_width;
    fields["kernel_isa"] = std::string(m.result.solver_kernel_isa);
    if (!mt.empty()) {
      io::JsonArray rows;
      for (const MtPoint& p : mt) {
        io::JsonObject row;
        row["threads"] = static_cast<std::int64_t>(p.threads);
        row["pinned"] = pin;
        row["seconds"] = p.seconds;
        row["ns_per_solve"] = p.ns_per_solve;
        row["throughput"] = p.throughput;
        row["solves_per_s"] = p.solves_per_s;
        rows.push_back(std::move(row));
      }
      fields["mt"] = std::move(rows);
    }
    if (!bench::write_bench_json(json_path, "bench_verify_scaling",
                                 std::move(fields))) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (!smoke_path.empty()) {
    const io::Json* budget_ns = budget.find("ns_per_solve");
    const double allowed = budget_ns->as_double() * tolerance;
    std::printf("perf smoke: %.0f ns/solve measured vs %.0f budget "
                "(%.0f allowed at tolerance %.2f)\n",
                ns_per_solve, budget_ns->as_double(), allowed, tolerance);
    if (ns_per_solve > allowed) {
      std::fprintf(stderr, "PERF REGRESSION: ns/solve above budget\n");
      return 1;
    }
    // 2-thread replay against the budget's mt rows, under its own
    // tolerance (thread scheduling is noisier than a sequential sweep).
    // Budgets written before the mt rows existed skip the replay.
    const io::Json* budget_mt = budget.find("mt");
    const io::Json* mt2 = nullptr;
    if (budget_mt != nullptr && budget_mt->is_array()) {
      for (const io::Json& row : budget_mt->as_array()) {
        const io::Json* t = row.find("threads");
        if (t != nullptr && t->is_int() && t->as_int() == 2) {
          mt2 = row.find("ns_per_solve");
          break;
        }
      }
    }
    if (mt2 != nullptr && mt2->is_number()) {
      const MtPoint p = measure_mt_point(reps, 2, pin);
      const double mt_allowed = mt2->as_double() * mt_tolerance;
      std::printf("perf smoke (2-thread): %.0f ns/solve measured vs %.0f "
                  "budget (%.0f allowed at tolerance %.2f)\n",
                  p.ns_per_solve, mt2->as_double(), mt_allowed, mt_tolerance);
      if (p.ns_per_solve > mt_allowed) {
        std::fprintf(stderr,
                     "PERF REGRESSION: 2-thread ns/solve above budget\n");
        return 1;
      }
    } else {
      std::printf("perf smoke: budget has no 2-thread mt row; replay "
                  "skipped\n");
    }
    std::printf("perf smoke: OK\n");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path, smoke_path;
  double tolerance = 1.25;
  double mt_tolerance = 3.0;
  int reps = 3;
  std::vector<unsigned> thread_sweep;
  bool pin = false;
  // Strip our flags before handing the rest to google-benchmark.
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--smoke=", 0) == 0) {
      smoke_path = arg.substr(8);
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance = std::stod(arg.substr(12));
    } else if (arg.rfind("--mt-tolerance=", 0) == 0) {
      mt_tolerance = std::stod(arg.substr(15));
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = std::stoi(arg.substr(7));
    } else if (arg.rfind("--threads=", 0) == 0) {
      // Comma-separated thread counts, e.g. --threads=1,2,4,8.
      std::stringstream list(arg.substr(10));
      std::string item;
      while (std::getline(list, item, ',')) {
        const int t = std::stoi(item);
        if (t < 1) {
          std::fprintf(stderr, "FATAL: bad thread count '%s'\n",
                       item.c_str());
          return 2;
        }
        thread_sweep.push_back(static_cast<unsigned>(t));
      }
    } else if (arg == "--pin") {
      pin = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  argc = out;
  if (!json_path.empty() || !smoke_path.empty() || !thread_sweep.empty()) {
    return run_perf_mode(json_path, smoke_path, tolerance, mt_tolerance, reps,
                         thread_sweep, pin);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
