// F10/F11 (Figures 10–11) + Theorem 3.15: the k=2 family. Regenerates
// the special solutions G(6,2) and G(8,2) (degree 4, i.e. k+2) and the
// full family table: degree k+3 = 5 exactly at n ∈ {2, 3, 5}, degree
// k+2 = 4 everywhere else.
#include "bench_common.hpp"
#include "kgd/bounds.hpp"
#include "kgd/small_k.hpp"
#include "kgd/special.hpp"

using namespace kgdp;

int main() {
  bench::banner("Figures 10-11: the special solutions G(6,2) and G(8,2)");
  for (const auto& sg : {kgd::make_special_g62(), kgd::make_special_g82()}) {
    std::printf("%s: %d processors, %zu edges, degrees [%d..%d]\n",
                sg.name().c_str(), sg.num_processors(),
                sg.graph().num_edges(), sg.min_processor_degree(),
                sg.max_processor_degree());
    std::printf("  exhaustive certification: %s\n",
                bench::verify_cell(sg, 2).c_str());
  }

  bench::banner("Theorem 3.15: k = 2, n = 1..24");
  util::Table t({"n", "base", "extensions", "max deg", "bound",
                 "degree-optimal", "GD verification"});
  for (int n = 1; n <= 24; ++n) {
    const auto sg = kgd::make_family_k2(n);
    const auto recipe = kgd::family_recipe(n, 2);
    const int bound = kgd::max_degree_lower_bound(n, 2);
    t.add_row({util::Table::num(n), recipe.base,
               util::Table::num(recipe.extensions),
               util::Table::num(sg.max_processor_degree()),
               util::Table::num(bound),
               sg.max_processor_degree() == bound ? "yes" : "NO",
               n <= 14 ? bench::verify_cell(sg, 2) : "skipped (large)"});
  }
  t.print();
  std::printf("\nExpected shape (paper): degree 5 (= k+3) exactly at "
              "n = 2, 3, 5; degree 4 (= k+2) for all other n.\n");
  return 0;
}
