// X-CAMP: cost model of the campaign engine. Three questions drive the
// operational knobs: what does a checkpoint write cost relative to a
// chunk of solves (pick checkpoint_every), how much sweep time does the
// chunked session add over the one-shot checker (pick chunk), and how
// close to 1/S does each shard's work drop when a campaign is split
// (shard with confidence).
#include <cstdio>
#include <sstream>
#include <vector>

#include "bench_common.hpp"
#include "campaign/campaign.hpp"
#include "campaign/checkpoint.hpp"
#include "kgd/factory.hpp"
#include "verify/check_session.hpp"

using namespace kgdp;

namespace {

verify::CheckRequest request_for(int k, std::uint32_t shard_index = 0,
                                 std::uint32_t shard_count = 1) {
  verify::CheckRequest req;
  req.max_faults = k;
  req.shard_index = shard_index;
  req.shard_count = shard_count;
  return req;
}

double sweep_seconds(const kgd::SolutionGraph& sg, int k,
                     std::uint64_t chunk) {
  verify::CheckSession session(sg, request_for(k));
  util::Timer t;
  while (!session.advance(chunk)) {
  }
  return t.seconds();
}

}  // namespace

int main() {
  const std::vector<std::pair<int, int>> grid{{3, 4}, {3, 5}, {4, 4}};

  bench::banner("Chunked session overhead vs one-shot sweep");
  {
    util::Table t({"graph", "k", "solves", "one-shot (ms)", "chunk=64 (ms)",
                   "chunk=256 (ms)", "chunk=1 (ms)"});
    for (const auto& [n, k] : grid) {
      const auto sg = kgd::build_solution(n, k);
      if (!sg) continue;
      const double oneshot = sweep_seconds(*sg, k, ~std::uint64_t{0});
      const double c64 = sweep_seconds(*sg, k, 64);
      const double c256 = sweep_seconds(*sg, k, 256);
      const double c1 = sweep_seconds(*sg, k, 1);
      verify::CheckSession probe(*sg, request_for(k));
      probe.run();
      t.add_row({sg->name(), util::Table::num(k),
                 util::Table::num(probe.result().fault_sets_solved),
                 util::Table::num(oneshot * 1e3, 1),
                 util::Table::num(c64 * 1e3, 1),
                 util::Table::num(c256 * 1e3, 1),
                 util::Table::num(c1 * 1e3, 1)});
    }
    t.print();
  }

  bench::banner("Checkpoint write cost vs chunk of solves");
  {
    util::Table t({"graph", "k", "chunk solve (ms)", "save cursor (us)",
                   "save campaign (us)", "writes/chunk break-even"});
    for (const auto& [n, k] : grid) {
      const auto sg = kgd::build_solution(n, k);
      if (!sg) continue;
      verify::CheckSession session(*sg, request_for(k));
      util::Timer chunk_t;
      session.advance(256);
      const double chunk_ms = chunk_t.millis();

      const int reps = 200;
      util::Timer save_t;
      std::string cursor;
      for (int i = 0; i < reps; ++i) {
        std::ostringstream os;
        session.save(os);
        cursor = os.str();
      }
      const double save_us = save_t.micros() / reps;

      campaign::CampaignConfig cfg;
      cfg.n_min = cfg.n_max = n;
      cfg.k_min = cfg.k_max = k;
      campaign::CampaignState state = campaign::make_campaign(cfg);
      state.instances[0].status = campaign::InstanceStatus::kRunning;
      state.instances[0].cursor = cursor;
      util::Timer file_t;
      for (int i = 0; i < reps; ++i) {
        std::ostringstream os;
        campaign::save_campaign(os, state);
      }
      const double file_us = file_t.micros() / reps;
      t.add_row({sg->name(), util::Table::num(k),
                 util::Table::num(chunk_ms, 2), util::Table::num(save_us, 1),
                 util::Table::num(file_us, 1),
                 util::Table::num(chunk_ms * 1e3 / std::max(file_us, 0.01),
                                  0)});
    }
    t.print();
  }

  bench::banner("Shard scaling: max shard time vs unsharded sweep");
  {
    util::Table t({"graph", "k", "unsharded (ms)", "S", "max shard (ms)",
                   "sum shards (ms)", "efficiency"});
    for (const auto& [n, k] : grid) {
      const auto sg = kgd::build_solution(n, k);
      if (!sg) continue;
      const double base = sweep_seconds(*sg, k, ~std::uint64_t{0});
      for (std::uint32_t shards : {2u, 4u, 8u}) {
        double worst = 0.0, sum = 0.0;
        for (std::uint32_t i = 0; i < shards; ++i) {
          verify::CheckSession shard(*sg, request_for(k, i, shards));
          util::Timer st;
          shard.run();
          const double s = st.seconds();
          worst = std::max(worst, s);
          sum += s;
        }
        // Perfect range partitioning gives worst == base / S; efficiency
        // is how much of that ideal the contiguous slices achieve.
        const double eff = base / (worst * shards);
        t.add_row({sg->name(), util::Table::num(k),
                   util::Table::num(base * 1e3, 1),
                   util::Table::num(static_cast<int>(shards)),
                   util::Table::num(worst * 1e3, 1),
                   util::Table::num(sum * 1e3, 1), util::Table::num(eff, 2)});
      }
    }
    t.print();
  }

  std::printf(
      "\nExpected shape: chunking costs little (the sweep dominates), a\n"
      "campaign checkpoint costs microseconds against multi-ms chunks, and\n"
      "contiguous shard slices split the sweep near 1/S (orbit solve cost\n"
      "is roughly uniform along the lex sweep).\n");
  return 0;
}
