// X-BASE: comparison against prior art and naive designs. Static costs
// (nodes/edges/degree) and dynamic degradation profiles: the paper's
// construction tolerates every fault pattern up to k and uses every
// healthy processor; the alternatives either collapse, strand healthy
// nodes, or pay quadratic wiring.
#include "baseline/compare.hpp"
#include "baseline/diogenes.hpp"
#include "baseline/hayes.hpp"
#include "baseline/naive.hpp"
#include "bench_common.hpp"
#include "kgd/factory.hpp"

using namespace kgdp;

int main() {
  // k = 3 (odd) with even n is the regime where the Hayes adaptation
  // provably fails (its circulant degree k+1 sits below the Lemma 3.1
  // floor), so the contrast between designs is sharpest here.
  const int n = 12, k = 3;
  bench::banner("Static design costs at n=12, k=3");
  util::Table t({"design", "nodes", "edges", "max deg", "max proc deg",
                 "node-opt", "k-GD"});
  auto row = [&](const kgd::SolutionGraph& sg) {
    const auto m = baseline::metrics_for(sg);
    const auto res = verify::run_check(sg, verify::CheckRequest::exhaustive(k));
    t.add_row({m.name, util::Table::num(m.nodes), util::Table::num(m.edges),
               util::Table::num(m.max_degree),
               util::Table::num(m.max_processor_degree),
               m.node_optimal ? "yes" : "NO", res.holds ? "yes" : "NO"});
  };
  row(*kgd::build_solution(n, k));
  row(baseline::make_spare_path(n, k));
  row(baseline::make_complete_design(n, k));
  row(baseline::make_hayes_pipeline_adaptation(n, k));
  row(baseline::make_bypass_chain(n, k));
  t.print();

  bench::banner("Degradation profile: tolerated fraction by fault count");
  util::Table p({"design", "f=0", "f=1", "f=2"});
  auto prow = [&](const std::string& name,
                  const std::vector<baseline::DegradationRow>& rows) {
    p.add_row({name, util::Table::num(rows[0].tolerated_fraction, 2),
               util::Table::num(rows[1].tolerated_fraction, 2),
               util::Table::num(rows[2].tolerated_fraction, 2)});
  };
  const int samples = 300;
  prow("paper G(12,3)",
       baseline::degradation_profile(*kgd::build_solution(n, k), k, samples,
                                     1));
  prow("spare path",
       baseline::degradation_profile(baseline::make_spare_path(n, k), k,
                                     samples, 2));
  prow("complete K(n+k)",
       baseline::degradation_profile(baseline::make_complete_design(n, k),
                                     k, samples, 3));
  prow("hayes adaptation",
       baseline::degradation_profile(
           baseline::make_hayes_pipeline_adaptation(n, k), k, samples, 4));
  p.print();
  std::printf("\nRandom sampling understates the Hayes adaptation's flaw; "
              "the exhaustive\nchecker above already found a concrete "
              "fault set it cannot tolerate.\n");

  bench::banner("Healthy-processor utilization (Hayes's own criterion)");
  std::printf(
      "Hayes k-FT cycles guarantee only an n-node cycle: with f faults,\n"
      "utilization is capped at n/(n+k-f) unless a spanning path happens\n"
      "to exist. At k=3 with even n the Hayes circulant has degree k+1 —\n"
      "below the Lemma 3.1 floor — and strands healthy processors.\n\n");
  util::Table u({"design", "f", "measured utilization",
                 "GUARANTEED utilization"});
  const auto hayes_rows = baseline::hayes_profile(n, k, samples, 5);
  const auto ours_rows = baseline::degradation_profile(
      *kgd::build_solution(n, k), k, samples, 6);
  for (int f = 0; f <= k; ++f) {
    u.add_row({"paper G(12,3)", util::Table::num(f),
               util::Table::num(ours_rows[f].mean_utilization, 3),
               "1.000 (all healthy, proven)"});
    const double guaranteed =
        static_cast<double>(n) / static_cast<double>(n + k - f);
    u.add_row({"hayes cycle", util::Table::num(f),
               util::Table::num(hayes_rows[f].mean_utilization, 3),
               util::Table::num(guaranteed, 3) + " (n-cycle only)"});
  }
  u.print();
  std::printf("\nThe shape that matters: the paper's graphs come with a "
              "certificate that\nevery healthy processor is used for every"
              " fault pattern; Hayes's design\nonly ever promises the "
              "original n nodes.\n");

  bench::banner("Edge-cost scaling: paper vs complete design");
  util::Table e({"n", "k", "paper edges", "complete edges", "ratio"});
  for (int nn : {10, 20, 40, 80}) {
    const auto ours = kgd::build_solution(nn, 2);
    const auto complete = baseline::make_complete_design(nn, 2);
    const double ratio =
        static_cast<double>(complete.graph().num_edges()) /
        static_cast<double>(ours->graph().num_edges());
    e.add_row({util::Table::num(nn), "2",
               util::Table::num(ours->graph().num_edges()),
               util::Table::num(complete.graph().num_edges()),
               util::Table::num(ratio, 1)});
  }
  e.print();
  std::printf("\nExpected shape: paper's edges grow linearly in n (degree "
              "k+2);\nthe complete design grows quadratically.\n");
  return 0;
}
