// F14/F15 (Figures 14–15) + Theorem 3.17: the asymptotic circulant
// construction. Regenerates G(22,4) and G(26,5) exactly as drawn (node
// classes Ti/To/I/O/S/R, labels, bisector edges), audits the degree
// claims, certifies both exhaustively, and maps the empirical GD
// frontier in n for each k (the paper only claims n = Ω(k)).
#include "bench_common.hpp"
#include "kgd/asymptotic.hpp"
#include "kgd/bounds.hpp"

using namespace kgdp;

namespace {

void census(int n, int k) {
  kgd::AsymptoticInfo info;
  const auto sg = kgd::make_asymptotic_gnk(n, k, &info);
  const std::string bisector_note =
      info.has_bisector
          ? ", bisector " + std::to_string(info.bisector_offset)
          : "";
  std::printf("G(%d,%d): %d nodes, %zu edges, m=%d, offsets 1..%d%s\n", n,
              k, sg.num_nodes(), sg.graph().num_edges(), info.m,
              info.p + 1, bisector_note.c_str());
  int cls_count[6] = {0};
  for (auto c : info.node_class) ++cls_count[static_cast<int>(c)];
  std::printf("  |Ti|=%d |To|=%d |I|=%d |O|=%d |S|=%d |R|=%d\n",
              cls_count[0], cls_count[1], cls_count[2], cls_count[3],
              cls_count[4], cls_count[5]);
  std::printf("  processor degrees [%d..%d] (claim: k+2=%d%s)\n",
              sg.min_processor_degree(), sg.max_processor_degree(), k + 2,
              (n % 2 == 0 && k % 2 == 1) ? ", max k+3 allowed by parity"
                                         : "");
  std::printf("  certification: %s\n\n",
              bench::verify_cell(sg, k, /*cap=*/300000).c_str());
}

}  // namespace

int main() {
  bench::banner("Figure 14: G(22,4)");
  census(22, 4);
  bench::banner("Figure 15: G(26,5), with bisectors");
  census(26, 5);

  bench::banner("Empirical GD frontier: smallest certified n per k");
  util::Table t({"k", "min legal n (2k+5)", "certified at", "max deg",
                 "verification"});
  for (int k = 4; k <= 7; ++k) {
    const int n = kgd::asymptotic_min_n(k);
    const auto sg = kgd::make_asymptotic_gnk(n, k);
    t.add_row({util::Table::num(k), util::Table::num(n),
               util::Table::num(n),
               util::Table::num(sg.max_processor_degree()),
               bench::verify_cell(sg, k, /*cap=*/700000, 600)});
  }
  t.print();
  std::printf("\nPaper claim: node-optimal and degree-optimal, GD for n ="
              " Omega(k).\nMeasured: already GD at the smallest "
              "well-formed n = 2k+5.\n");

  bench::banner("Structure scaling (no verification)");
  util::Table s({"n", "k", "nodes", "edges", "max deg", "bound"});
  for (int k : {4, 5, 8}) {
    for (int n : {50, 100, 400}) {
      const auto sg = kgd::make_asymptotic_gnk(n, k);
      s.add_row({util::Table::num(n), util::Table::num(k),
                 util::Table::num(sg.num_nodes()),
                 util::Table::num(sg.graph().num_edges()),
                 util::Table::num(sg.max_processor_degree()),
                 util::Table::num(kgd::max_degree_lower_bound(n, k))});
    }
  }
  s.print();
  return 0;
}
