// F4 (Figure 4) + Theorem 3.13: the complete k=1 family. Regenerates the
// three graphs of Figure 4 (G(1,1), G(2,1), G(3,1) = ext(G(1,1))) and the
// full degree table for n = 1..24: degree 3 (= k+2) for odd n, degree 4
// (= k+3) for even n, both provably optimal.
#include "bench_common.hpp"
#include "kgd/bounds.hpp"
#include "kgd/extension.hpp"
#include "kgd/small_k.hpp"
#include "kgd/small_n.hpp"

using namespace kgdp;

int main() {
  bench::banner("Figure 4: solution graphs for k = 1, n = 1, 2, 3");
  for (int n = 1; n <= 3; ++n) {
    const auto sg = kgd::make_family_k1(n);
    std::printf("n=%d: %s, %d nodes, %zu edges, max processor degree %d\n",
                n, sg.name().c_str(), sg.num_nodes(),
                sg.graph().num_edges(), sg.max_processor_degree());
  }
  // Figure 4's note: G(3,1) is ext(G(1,1)), an instance of Corollary 3.8.
  const auto ext = kgd::extend_once(kgd::make_g1k(1));
  std::printf("check: ext(G(1,1)) has n=%d and degree %d (Corollary 3.8)\n",
              ext.n(), ext.max_processor_degree());

  bench::banner("Theorem 3.13: k = 1, n = 1..24");
  util::Table t({"n", "base", "extensions", "max deg", "bound",
                 "degree-optimal", "GD verification"});
  for (int n = 1; n <= 24; ++n) {
    const auto sg = kgd::make_family_k1(n);
    const auto recipe = kgd::family_recipe(n, 1);
    const int bound = kgd::max_degree_lower_bound(n, 1);
    t.add_row({util::Table::num(n), recipe.base,
               util::Table::num(recipe.extensions),
               util::Table::num(sg.max_processor_degree()),
               util::Table::num(bound),
               sg.max_processor_degree() == bound ? "yes" : "NO",
               n <= 16 ? bench::verify_cell(sg, 1) : "skipped (large)"});
  }
  t.print();
  std::printf("\nExpected shape (paper): degree k+2=3 for odd n, k+3=4 for"
              " even n.\n");
  return 0;
}
