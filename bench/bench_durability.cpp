// X-DURABILITY: what the crash-safe checkpoint write costs. Each row
// writes the same realistic mid-sweep campaign checkpoint `iters`
// times through a different write path and reports per-write p50/p99:
//
//   legacy        ofstream + rename, no fsync, no envelope — the old
//                 idiom this PR replaced (reconstructed locally)
//   envelope      CRC32C envelope, atomic rename, fsync OFF
//   +fsync        envelope + fsync(file) + fsync(parent dir)
//   +backup       the production path: envelope + fsync + .bak link
//
// The spread between `envelope` and `+fsync` is the honest price of
// durability (fsync dominates); the envelope itself and the backup
// link are noise by comparison. Payload size is printed so the rows
// can be compared across machines.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "campaign/campaign.hpp"
#include "campaign/checkpoint.hpp"
#include "util/durable_file.hpp"
#include "util/timer.hpp"

using namespace kgdp;

namespace {

double quantile_us(std::vector<double>& seconds, double q) {
  std::sort(seconds.begin(), seconds.end());
  const std::size_t rank = std::min(
      seconds.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(seconds.size())));
  return seconds[rank] * 1e6;
}

// The pre-durable_file idiom, kept here as the bench baseline.
void legacy_write(const std::string& path, const std::string& payload) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out.write(payload.data(),
              static_cast<std::streamsize>(payload.size()));
  }
  std::rename(tmp.c_str(), path.c_str());
}

void report(const char* label, std::vector<double>& samples) {
  std::printf("%-10s  p50 %9.1f us   p99 %9.1f us\n", label,
              quantile_us(samples, 0.50), quantile_us(samples, 0.99));
}

}  // namespace

int main(int argc, char** argv) {
  const int iters = argc > 1 ? std::atoi(argv[1]) : 400;
  bench::banner("X-DURABILITY: checkpoint write cost");

  // A mid-sweep campaign over G(3, 4..5): one running instance with an
  // embedded cursor, one pending — the checkpoint the campaign runner
  // rewrites every --checkpoint-every chunks.
  campaign::CampaignConfig config;
  config.n_min = 3;
  config.n_max = 3;
  config.k_min = 4;
  config.k_max = 5;
  config.chunk = 100;
  campaign::CampaignRunner runner(campaign::make_campaign(config),
                                  /*checkpoint_path=*/"");
  campaign::RunLimits limits;
  limits.max_chunks = 2;
  runner.run(limits);
  std::ostringstream serialized;
  campaign::save_campaign(serialized, runner.state());
  const std::string payload = serialized.str();
  const std::string path = "bench_durability.kgdp";
  std::printf("payload: %zu bytes, %d writes per row\n\n", payload.size(),
              iters);

  struct Row {
    const char* label;
    bool use_durable;
    util::DurableWriteOptions opts;
  };
  util::DurableWriteOptions no_sync;
  no_sync.fsync = false;
  no_sync.keep_backup = false;
  util::DurableWriteOptions sync_only;
  sync_only.keep_backup = false;
  const Row rows[] = {
      {"legacy", false, {}},
      {"envelope", true, no_sync},
      {"+fsync", true, sync_only},
      {"+backup", true, {}},
  };
  for (const Row& row : rows) {
    std::vector<double> samples;
    samples.reserve(static_cast<std::size_t>(iters));
    for (int i = 0; i < iters; ++i) {
      util::Timer t;
      if (row.use_durable) {
        util::durable_write_file(path, payload, row.opts);
      } else {
        legacy_write(path, payload);
      }
      samples.push_back(t.seconds());
    }
    report(row.label, samples);
  }
  std::remove(path.c_str());
  std::remove((path + ".bak").c_str());
  return 0;
}
