// F2/F3 (Figures 2–3): the G(3,k) construction for both parities of k.
// Regenerates the clique-minus-matching structure, reports the terminal
// index pattern, and certifies graceful degradation exhaustively.
#include "bench_common.hpp"
#include "kgd/bounds.hpp"
#include "kgd/small_n.hpp"

using namespace kgdp;

int main() {
  bench::banner("Figures 2-3: G(3,k) for k = 1..10");
  util::Table t({"k", "parity (n+k)", "processors", "matching pairs",
                 "unmatched proc", "max deg", "bound", "GD verification"});
  for (int k = 1; k <= 10; ++k) {
    const auto sg = kgd::make_g3k(k);
    // Count processors that kept all k+2 processor-neighbors (the
    // unmatched node of Figure 3; absent in Figure 2).
    int unmatched = 0;
    for (auto v : sg.processors()) {
      if (kgd::processor_neighbor_count(sg, v) == k + 2) ++unmatched;
    }
    const int pairs = (k + 3 - unmatched) / 2;
    t.add_row({util::Table::num(k),
               (3 + k) % 2 == 0 ? "even (Fig 2)" : "odd (Fig 3)",
               util::Table::num(k + 3), util::Table::num(pairs),
               util::Table::num(unmatched),
               util::Table::num(sg.max_processor_degree()),
               util::Table::num(kgd::max_degree_lower_bound(3, k)),
               k <= 6 ? bench::verify_cell(sg, k) : "skipped (large)"});
  }
  t.print();

  std::printf(
      "\nExpected shape (paper): max degree k+2 for k = 1 (matches\n"
      "Corollary 3.2) and k+3 for k >= 2 (matches Lemma 3.11); the\n"
      "matching is perfect exactly when n+k = k+3 is even.\n");
  return 0;
}
