// X-FLEET: distributed-certification dispatch overhead and scaling.
// Certifies two unpruned instances through the fleet coordinator
// against 1, 2, and 4 in-process kgdd workers, each pinned to one
// solver thread so the scaling axis is workers, not threads: the
// Figure 14 instance G(22,4) (66,712 fault sets, sub-microsecond
// solves — isolates pure dispatch overhead) and G(36,4) (~50 us
// solves — compute-heavy enough for worker scaling to show, host
// cores permitting). Every fleet verdict is checked bit-identical to
// the single-node sequential sweep before its timing counts.
//
//   bench_fleet [--json=PATH] [--smoke] [--grain=G] [--chunk=N]
//
//   --json=PATH  also record the rows as machine-readable BENCH_fleet.json
//   --smoke      CI gate: a small instance over 1 and 2 workers, hard
//                bit-identity check plus a generous wall budget — a
//                correctness and gross-regression gate, not a scaling
//                measurement (shared runners are far too noisy).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fleet/coordinator.hpp"
#include "kgd/factory.hpp"
#include "net/socket.hpp"
#include "service/daemon.hpp"
#include "util/timer.hpp"
#include "verify/checker.hpp"

using namespace kgdp;

namespace {

// One in-process kgdd worker with a single solver thread on an
// ephemeral TCP port.
std::unique_ptr<service::Daemon> start_worker() {
  service::DaemonConfig config;
  config.endpoints.push_back(net::Endpoint::tcp("127.0.0.1", 0));
  config.service.threads = 1;
  config.watch_stop_signal = false;
  auto daemon = std::make_unique<service::Daemon>(std::move(config));
  daemon->start_thread();
  return daemon;
}

bool identical(const verify::CheckResult& a, const verify::CheckResult& b) {
  return a.holds == b.holds && a.exhaustive == b.exhaustive &&
         a.fault_sets_checked == b.fault_sets_checked &&
         a.fault_sets_solved == b.fault_sets_solved &&
         a.solver_unknowns == b.solver_unknowns &&
         a.orbits_pruned == b.orbits_pruned &&
         a.automorphism_order == b.automorphism_order &&
         a.counterexample_index == b.counterexample_index;
}

struct FleetRow {
  int workers = 0;
  double seconds = 0.0;
  double sets_per_sec = 0.0;
  double speedup = 1.0;
  std::uint64_t leases = 0;
  std::uint64_t stolen = 0;
};

// Runs GD(G(n,k), m) over `workers` fresh single-thread daemons and
// verifies the merged verdict against `reference`. Exits the process on
// divergence — a wrong answer makes every timing below meaningless.
FleetRow run_fleet(int n, int k, int max_faults, int workers,
                   std::uint64_t chunk, std::uint64_t grain,
                   const verify::CheckResult& reference,
                   const std::string& checkpoint_path = {}) {
  const auto sg = kgd::build_solution(n, k);
  std::vector<std::unique_ptr<service::Daemon>> daemons;
  fleet::FleetConfig config;
  for (int w = 0; w < workers; ++w) {
    daemons.push_back(start_worker());
    config.workers.push_back(
        net::Endpoint::tcp("127.0.0.1", daemons.back()->tcp_port()));
  }
  config.chunk = chunk;
  config.lease_grain = grain;
  config.checkpoint_path = checkpoint_path;
  // The default 100ms transport tick is sized for WAN fleets riding out
  // real outages; on loopback it would dominate every grant (a queued
  // frame waits for the worker thread's next read-timeout tick).
  config.poll_ms = 2;
  fleet::Coordinator coordinator(std::move(config));

  const util::Timer t;
  const fleet::InstanceOutcome out =
      coordinator.run_instance(*sg, n, k, max_faults,
                               verify::PruneMode::kOff);
  FleetRow row;
  row.workers = workers;
  row.seconds = t.seconds();
  row.sets_per_sec =
      static_cast<double>(out.result.fault_sets_checked) / row.seconds;
  row.leases = out.leases_planned + out.leases_stolen;
  row.stolen = out.leases_stolen;
  if (!identical(out.result, reference)) {
    std::fprintf(stderr,
                 "FATAL: fleet verdict over %d workers diverged from the "
                 "single-node run\n",
                 workers);
    std::exit(2);
  }
  for (auto& d : daemons) {
    d->begin_drain();
    d->join();
  }
  return row;
}

// Measures one instance over 1/2/4 workers plus the single-node
// sequential baseline; appends printed rows to `json_rows` when given.
int run_instance_table(int n, int k, int max_faults, std::uint64_t chunk,
                       std::uint64_t grain, io::JsonArray* json_rows) {
  const std::string name =
      "G(" + std::to_string(n) + "," + std::to_string(k) + ")";
  const auto sg = kgd::build_solution(n, k);
  verify::CheckOptions off;
  off.prune = verify::PruneMode::kOff;
  const util::Timer t0;
  const verify::CheckResult reference = verify::run_check(
      *sg, verify::CheckRequest::exhaustive(max_faults, off));
  const double local_seconds = t0.seconds();
  if (!reference.holds) {
    std::fprintf(stderr, "FATAL: GD(%s, %d) failed\n", name.c_str(),
                 max_faults);
    return 2;
  }
  std::printf("%s: %llu fault sets, single-node sequential %.2fs "
              "(%.0f sets/s)\n",
              name.c_str(),
              static_cast<unsigned long long>(reference.fault_sets_checked),
              local_seconds,
              static_cast<double>(reference.fault_sets_checked) /
                  local_seconds);

  std::printf("%8s %10s %12s %9s %8s %8s\n", "workers", "seconds",
              "sets/s", "speedup", "leases", "stolen");
  std::vector<FleetRow> rows;
  for (const int workers : {1, 2, 4}) {
    FleetRow row =
        run_fleet(n, k, max_faults, workers, chunk, grain, reference);
    row.speedup = rows.empty() ? 1.0 : rows.front().seconds / row.seconds;
    std::printf("%8d %10.2f %12.0f %8.2fx %8llu %8llu\n", row.workers,
                row.seconds, row.sets_per_sec, row.speedup,
                static_cast<unsigned long long>(row.leases),
                static_cast<unsigned long long>(row.stolen));
    rows.push_back(row);
  }
  std::printf("dispatch overhead vs local sweep (1 worker): %.1f%%\n\n",
              (rows.front().seconds / local_seconds - 1.0) * 100.0);

  if (json_rows != nullptr) {
    for (const FleetRow& row : rows) {
      io::JsonObject r;
      r["instance"] = name;
      r["max_faults"] = max_faults;
      r["fault_sets"] = reference.fault_sets_checked;
      r["local_seconds"] = local_seconds;
      r["workers"] = row.workers;
      r["seconds"] = row.seconds;
      r["sets_per_sec"] = row.sets_per_sec;
      r["speedup"] = row.speedup;
      r["leases"] = row.leases;
      r["stolen"] = row.stolen;
      json_rows->push_back(io::Json(std::move(r)));
    }
  }
  return 0;
}

int run_main(std::uint64_t chunk, std::uint64_t grain,
             const std::string& json_path) {
  bench::banner("X-FLEET: fleet dispatch overhead and worker scaling");
  io::JsonArray rows;
  // G(22,4): the Figure 14 instance. Sub-microsecond solves, so this
  // row isolates pure dispatch overhead — any speedup is accidental.
  // G(36,4): ~50 us/solve, where compute can actually amortize the
  // wire and multi-worker scaling is visible (given the cores).
  if (const int rc = run_instance_table(22, 4, 4, chunk, grain, &rows)) {
    return rc;
  }
  if (const int rc = run_instance_table(36, 4, 4, chunk, grain, &rows)) {
    return rc;
  }
  if (!json_path.empty()) {
    io::JsonObject fields;
    fields["chunk"] = chunk;
    fields["lease_grain"] = grain;
    fields["rows"] = std::move(rows);
    if (!bench::write_bench_json(json_path, "bench_fleet", std::move(fields))) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}

int run_smoke() {
  bench::banner("X-FLEET smoke: G(12,2) over 1 and 2 workers");
  const auto sg = kgd::build_solution(12, 2);
  verify::CheckOptions off;
  off.prune = verify::PruneMode::kOff;
  const verify::CheckResult reference =
      verify::run_check(*sg, verify::CheckRequest::exhaustive(2, off));
  const util::Timer t;
  for (const int workers : {1, 2}) {
    const FleetRow row = run_fleet(12, 2, 2, workers, /*chunk=*/64,
                                   /*grain=*/4, reference);
    std::printf("%d worker(s): %.2fs, %llu leases — verdict identical\n",
                workers, row.seconds,
                static_cast<unsigned long long>(row.leases));
  }
  // run_fleet already exits nonzero on any verdict divergence; the wall
  // budget only catches dispatch pathologies (stuck leases, reconnect
  // storms), so it is deliberately loose for shared CI runners.
  if (t.seconds() > 120.0) {
    std::fprintf(stderr, "SMOKE FAIL: fleet dispatch took %.0fs (> 120s)\n",
                 t.seconds());
    return 1;
  }

  // Checkpoint-overhead gate on the dispatch-bound Figure 14 instance
  // (sub-microsecond solves, so the lease machinery IS the runtime):
  // the durable lease table is written on every lease-state transition,
  // which must stay in the dispatch noise. Budget: 5% over the plain
  // run, plus a flat half-second so a shared runner's scheduling jitter
  // can't fail a short baseline.
  const auto sg22 = kgd::build_solution(22, 4);
  const verify::CheckResult ref22 =
      verify::run_check(*sg22, verify::CheckRequest::exhaustive(4, off));
  const std::string ckpt = "bench_fleet_smoke.kgdp";
  std::remove(ckpt.c_str());
  const util::Timer tp;
  run_fleet(22, 4, 4, /*workers=*/1, /*chunk=*/1024, /*grain=*/8, ref22);
  const double plain = tp.seconds();
  const util::Timer tc;
  run_fleet(22, 4, 4, /*workers=*/1, /*chunk=*/1024, /*grain=*/8, ref22,
            ckpt);
  const double checkpointed = tc.seconds();
  std::remove(ckpt.c_str());
  std::remove((ckpt + ".bak").c_str());
  std::printf("checkpoint overhead: plain %.2fs, durable %.2fs (%+.1f%%)\n",
              plain, checkpointed, (checkpointed / plain - 1.0) * 100.0);
  if (checkpointed > plain * 1.05 + 0.5) {
    std::fprintf(stderr,
                 "SMOKE FAIL: durable lease checkpointing cost %.2fs vs "
                 "%.2fs plain (budget: 5%% + 0.5s)\n",
                 checkpointed, plain);
    return 1;
  }
  std::printf("fleet smoke: OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  std::uint64_t chunk = 1024, grain = 8;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--chunk=", 0) == 0) {
      chunk = std::stoull(arg.substr(8));
    } else if (arg.rfind("--grain=", 0) == 0) {
      grain = std::stoull(arg.substr(8));
    } else {
      std::fprintf(stderr,
                   "usage: bench_fleet [--json=PATH] [--smoke] "
                   "[--chunk=N] [--grain=G]\n");
      return 2;
    }
  }
  if (smoke) return run_smoke();
  return run_main(chunk, grain, json_path);
}
