// X-SIM: the graceful-degradation curve the paper's title promises, on
// the pipeline machine simulator. As faults accumulate (up to k), the
// machine keeps remapping; stream output stays correct, pipeline length
// shrinks by exactly the dead processors, and latency falls accordingly
// while steady-state throughput (set by the bottleneck stage) holds.
#include "bench_common.hpp"
#include "kgd/factory.hpp"
#include "sim/machine.hpp"
#include "sim/runner.hpp"
#include "sim/stages_dsp.hpp"
#include "util/rng.hpp"

using namespace kgdp;

int main() {
  const int n = 16, k = 4;
  auto sg = kgd::build_solution(n, k);
  sim::PipelineMachine machine(*sg, sim::make_video_pipeline());
  sim::StageList reference = sim::make_video_pipeline();
  util::Rng rng(2718);

  bench::banner("Graceful degradation curve: G(16,4) machine, 5-stage "
                "video pipeline");
  util::Table t({"faults", "pipeline procs", "latency (cycles)",
                 "throughput (samp/kcyc)", "remap time (us)",
                 "stream integrity"});

  const auto record = [&](int faults, double remap_us) {
    const sim::Chunk sig = sim::make_test_signal(8192, 50 + faults);
    const sim::Chunk want = sim::run_sequential(reference, sig);
    const sim::Chunk got = machine.process(sig);
    t.add_row({util::Table::num(faults),
               util::Table::num(machine.pipeline().num_processors()),
               util::Table::num(machine.stats().pipeline_latency_cycles, 0),
               util::Table::num(machine.stats().throughput(), 1),
               util::Table::num(remap_us, 1),
               got == want ? "bit-exact" : "DIVERGED"});
  };

  record(0, 0.0);
  int injected = 0;
  while (injected < k) {
    const int victim = static_cast<int>(rng.next_below(sg->num_nodes()));
    if (!machine.inject_fault(victim)) continue;
    ++injected;
    util::Timer timer;
    if (!machine.reconfigure()) {
      std::printf("remap FAILED at fault %d (unexpected)\n", injected);
      return 1;
    }
    record(injected, timer.micros());
  }
  t.print();

  bench::banner("Threaded pipeline execution (one worker per stage)");
  std::vector<sim::Chunk> inputs;
  for (int c = 0; c < 32; ++c) {
    inputs.push_back(sim::make_test_signal(4096, 900 + c));
  }
  // Sequential reference.
  sim::StageList seq_stages = sim::make_video_pipeline();
  util::Timer seq_t;
  std::vector<sim::Chunk> seq_out;
  for (const auto& c : inputs) {
    seq_out.push_back(sim::run_sequential(seq_stages, c));
  }
  const double seq_ms = seq_t.millis();
  // Threaded.
  sim::ThreadedPipelineRunner runner(sim::make_video_pipeline());
  util::Timer thr_t;
  const auto thr_out = runner.run(inputs);
  const double thr_ms = thr_t.millis();
  std::printf("sequential: %.1f ms, threaded: %.1f ms, outputs %s\n",
              seq_ms, thr_ms,
              thr_out == seq_out ? "identical" : "DIVERGED");
  std::printf("(single-core hosts show no speedup; the property under "
              "test is identical output under true concurrency)\n");
  return thr_out == seq_out ? 0 : 1;
}
