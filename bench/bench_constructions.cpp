// F1 (Figure 1): the pipeline object itself — a linear array with an
// input node at one end and an output node at the other — regenerated
// from a real construction, plus a census of every base construction the
// paper defines.
#include "bench_common.hpp"
#include "kgd/factory.hpp"
#include "kgd/small_n.hpp"
#include "kgd/special.hpp"
#include "verify/pipeline_solver.hpp"

using namespace kgdp;

int main() {
  bench::banner("Figure 1: a pipeline with 7 processors");
  // Build G(7,2) and extract its fault-free pipeline: i = p... = o.
  const auto sg = kgd::build_solution(5, 2);  // 5 + 2 = 7 processors
  const auto out =
      verify::find_pipeline(*sg, kgd::FaultSet::none(sg->num_nodes()));
  std::printf("pipeline: %s\n", out.pipeline->to_string(*sg).c_str());
  std::printf("processors on pipeline: %d (all healthy processors)\n",
              out.pipeline->num_processors());

  bench::banner("Base construction census (Lemmas 3.7, 3.9, §3.2, §3.3)");
  util::Table t({"graph", "n", "k", "nodes", "edges", "max proc deg",
                 "standard", "GD verification"});
  auto row = [&](const kgd::SolutionGraph& g) {
    t.add_row({g.name(), util::Table::num(g.n()), util::Table::num(g.k()),
               util::Table::num(g.num_nodes()),
               util::Table::num(g.graph().num_edges()),
               util::Table::num(g.max_processor_degree()),
               g.is_standard() ? "yes" : "NO",
               bench::verify_cell(g, g.k())});
  };
  for (int k = 1; k <= 4; ++k) row(kgd::make_g1k(k));
  for (int k = 1; k <= 4; ++k) row(kgd::make_g2k(k));
  for (int k = 1; k <= 4; ++k) row(kgd::make_g3k(k));
  row(kgd::make_special_g62());
  row(kgd::make_special_g82());
  row(kgd::make_special_g73());
  row(kgd::make_special_g43());
  t.print();
  return 0;
}
