// X-ROUTE: ablation of the reconfiguration strategies. The constructive
// Lemma 3.6 peeling router does O(n) work plus a constant-size base
// solve, while the general exact solver searches the whole graph; both
// return certified pipelines, so the comparison is pure speed.
#include "bench_common.hpp"
#include "fault/fault_model.hpp"
#include "kgd/factory.hpp"
#include "reconfig/route.hpp"
#include "util/rng.hpp"
#include "verify/pipeline_solver.hpp"

using namespace kgdp;

int main() {
  bench::banner("Reconfiguration: constructive peeling router vs search");
  util::Table t({"n", "k", "trials", "router avg (us)", "solver avg (us)",
                 "speedup", "agreement"});
  for (int k : {2, 3}) {
    for (int n : {20, 100, 1000, 5000}) {
      const auto sg = kgd::build_solution(n, k);
      util::Rng rng(11);
      verify::PipelineSolver solver;
      const int trials = n <= 1000 ? 20 : 5;
      double router_us = 0, solver_us = 0;
      int agree = 0;
      for (int trial = 0; trial < trials; ++trial) {
        const kgd::FaultSet fs = fault::draw_faults(
            *sg, k, fault::FaultPolicy::kUniform, rng);
        util::Timer t1;
        const auto routed = reconfig::route_family(*sg, fs);
        router_us += t1.micros();
        util::Timer t2;
        const auto solved = solver.solve(*sg, fs);
        solver_us += t2.micros();
        agree += (routed.has_value() ==
                  (solved.status == verify::SolveStatus::kFound));
      }
      t.add_row({util::Table::num(n), util::Table::num(k),
                 util::Table::num(trials),
                 util::Table::num(router_us / trials, 1),
                 util::Table::num(solver_us / trials, 1),
                 util::Table::num(solver_us / std::max(router_us, 1.0), 1),
                 agree == trials ? "100%" : "MISMATCH"});
    }
  }
  t.print();
  std::printf("\nExpected shape: the router's advantage grows with n; both"
              " agree on\nfeasibility everywhere.\n");
  return 0;
}
