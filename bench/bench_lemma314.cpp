// F5–F9 (Figures 5–9) + Lemma 3.14: the paper proves by case analysis
// that no standard solution with max processor degree k+2 = 4 exists for
// n = 5, k = 2. We replay that result computationally: exhaust the entire
// candidate space (every processor subgraph with the forced degree
// sequence, every input/output attachment), confirm zero solutions, and
// then show degree 5 suffices (the Theorem 3.15 construction).
#include "bench_common.hpp"
#include "kgd/factory.hpp"
#include "verify/synthesis.hpp"

using namespace kgdp;

int main() {
  bench::banner("Lemma 3.14: no degree-4 standard solution for n=5, k=2");

  const verify::SynthSpec impossible{5, 2, 4};
  util::Timer t;
  verify::SynthLimits limits;
  limits.max_solutions = 1;
  const verify::SynthStats stats = verify::enumerate_standard_solutions(
      impossible, limits, [](const kgd::SolutionGraph&) { return true; });
  std::printf("candidate shapes:            %llu\n",
              static_cast<unsigned long long>(stats.shapes));
  std::printf("processor graphs enumerated: %llu\n",
              static_cast<unsigned long long>(stats.graphs_enumerated));
  std::printf("full GD checks run:          %llu\n",
              static_cast<unsigned long long>(stats.gd_checks));
  std::printf("solutions found:             %llu\n",
              static_cast<unsigned long long>(stats.solutions));
  std::printf("search space exhausted:      %s\n",
              stats.search_space_exhausted ? "yes" : "NO");
  std::printf("elapsed:                     %.2fs\n", t.seconds());
  std::printf("=> %s\n",
              stats.solutions == 0 && stats.search_space_exhausted
                  ? "Lemma 3.14 CONFIRMED by exhaustive search"
                  : "MISMATCH with the paper!");

  bench::banner("Degree 5 (k+3) suffices for n=5, k=2 (Theorem 3.15)");
  const auto sg = kgd::build_solution(5, 2);
  std::printf("construction: %s, max degree %d\n",
              kgd::construction_method(5, 2).c_str(),
              sg->max_processor_degree());
  std::printf("verification: %s\n", bench::verify_cell(*sg, 2).c_str());
  return stats.solutions == 0 ? 0 : 1;
}
