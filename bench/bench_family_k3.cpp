// F12/F13 (Figures 12–13) + Theorem 3.16: the k=3 family. Regenerates
// the special solutions G(7,3) (degree 5 = k+2) and G(4,3) (degree
// 6 = k+3, forced by Lemma 3.5) and the full family table: degree k+2
// for odd n (except n=3), k+3 for even n and n=3.
#include "bench_common.hpp"
#include "kgd/bounds.hpp"
#include "kgd/small_k.hpp"
#include "kgd/special.hpp"

using namespace kgdp;

int main() {
  bench::banner("Figures 12-13: the special solutions G(7,3) and G(4,3)");
  for (const auto& sg : {kgd::make_special_g73(), kgd::make_special_g43()}) {
    std::printf("%s: %d processors, %zu edges, degrees [%d..%d]\n",
                sg.name().c_str(), sg.num_processors(),
                sg.graph().num_edges(), sg.min_processor_degree(),
                sg.max_processor_degree());
    std::printf("  exhaustive certification: %s\n",
                bench::verify_cell(sg, 3).c_str());
  }

  bench::banner("Theorem 3.16: k = 3, n = 1..20");
  util::Table t({"n", "base", "extensions", "max deg", "bound",
                 "degree-optimal", "GD verification"});
  for (int n = 1; n <= 20; ++n) {
    const auto sg = kgd::make_family_k3(n);
    const auto recipe = kgd::family_recipe(n, 3);
    const int bound = kgd::max_degree_lower_bound(n, 3);
    t.add_row({util::Table::num(n), recipe.base,
               util::Table::num(recipe.extensions),
               util::Table::num(sg.max_processor_degree()),
               util::Table::num(bound),
               sg.max_processor_degree() == bound ? "yes" : "NO",
               n <= 10 ? bench::verify_cell(sg, 3) : "skipped (large)"});
  }
  t.print();
  std::printf("\nExpected shape (paper): degree 5 (= k+2) for odd n except"
              " n=3;\ndegree 6 (= k+3) for even n (Lemma 3.5) and for n=3 "
              "(Lemma 3.11).\n");
  return 0;
}
