// X-AVAIL: long-horizon availability under a continuous fault/repair
// process — the operational payoff of graceful degradation. Compares the
// paper's designs across k and against the naive spare path at matched
// node budgets.
#include "baseline/naive.hpp"
#include "bench_common.hpp"
#include "kgd/factory.hpp"
#include "sim/campaign.hpp"

using namespace kgdp;

int main() {
  // Expected concurrent faults = rate * repair = 8/1e6 * 150k = 1.2:
  // enough pressure to separate fault budgets without drowning them all.
  sim::CampaignConfig cfg;
  cfg.faults_per_mcycle = 8.0;
  cfg.repair_cycles = 150000.0;
  cfg.horizon_cycles = 100e6;
  cfg.seed = 7;

  bench::banner("Availability campaign: 100 Mcycles, Poisson faults "
                "(8/Mcycle machine-wide), 150 kcycle repairs");
  util::Table t({"design", "availability", "mean utilization", "faults",
                 "repairs", "outages", "worst outage (kcyc)"});
  auto row = [&](const std::string& name, const kgd::SolutionGraph& sg) {
    const auto res = sim::run_availability_campaign(sg, cfg);
    t.add_row({name, util::Table::num(res.availability, 4),
               util::Table::num(res.mean_utilization, 4),
               util::Table::num(res.faults_injected),
               util::Table::num(res.repairs_completed),
               util::Table::num(res.outages),
               util::Table::num(res.worst_outage_cycles / 1000.0, 0)});
  };

  // Same pipeline demand (n = 12), increasing fault budget.
  for (int k = 1; k <= 3; ++k) {
    const auto sg = kgd::build_solution(12, k);
    row("paper G(12," + std::to_string(k) + ")", *sg);
  }
  row("paper G(13,4)", *kgd::build_solution(13, 4));
  // Matched node budget, no graceful degradation.
  row("spare path (12,2)", baseline::make_spare_path(12, 2));
  row("spare path (12,3)", baseline::make_spare_path(12, 3));
  t.print();
  std::printf(
      "\nExpected shape: availability rises with k for the paper's\n"
      "designs (more simultaneous faults tolerated before an outage);\n"
      "the spare path loses service on nearly every internal fault, so\n"
      "its availability tracks the raw fault process instead.\n");
  return 0;
}
