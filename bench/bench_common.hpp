// Shared helpers for the table-printing benchmark harnesses.
#pragma once

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "fault/enumerator.hpp"
#include "io/json.hpp"
#include "kgd/labeled_graph.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "verify/batch_kernels.hpp"
#include "verify/checker.hpp"

namespace kgdp::bench {

inline void banner(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

// Host description embedded in every bench record so the perf trajectory
// is comparable across runs and machines: CPU model (best-effort from
// /proc/cpuinfo), logical core count, and the ISA batch kernels this
// build+CPU can actually run (from the kernel registry, so it reflects
// compiled-AND-runnable, not just CPUID flags).
inline io::JsonObject machine_info() {
  io::JsonObject m;
  std::string model = "unknown";
#if defined(__linux__)
  std::ifstream cpuinfo("/proc/cpuinfo");
  std::string line;
  while (std::getline(cpuinfo, line)) {
    const auto pos = line.find(':');
    if (pos != std::string::npos &&
        line.compare(0, 10, "model name") == 0) {
      const auto start = line.find_first_not_of(" \t", pos + 1);
      if (start != std::string::npos) model = line.substr(start);
      break;
    }
  }
#endif
  m["cpu_model"] = model;
  m["cores"] = static_cast<std::int64_t>(
      std::max(1u, std::thread::hardware_concurrency()));
  io::JsonArray isa;
  for (const auto& e : verify::detail::batch_kernel_registry()) {
    if (e.kernel.isa != verify::detail::KernelIsa::kPortable && e.runnable) {
      isa.push_back(std::string(verify::detail::isa_name(e.kernel.isa)));
    }
  }
  m["isa_features"] = std::move(isa);
  return m;
}

// Machine-readable benchmark record (BENCH_*.json): pretty-printed,
// schema_version-stamped, tagged with the bench name and host metadata,
// written atomically enough for CI consumption (whole-string single
// write). Returns false on I/O failure.
inline bool write_bench_json(const std::string& path,
                             const std::string& bench_name,
                             io::JsonObject fields) {
  fields["schema_version"] = io::kSchemaVersion;
  fields["bench_name"] = bench_name;
  fields["machine"] = machine_info();
  std::ofstream out(path);
  if (!out) return false;
  out << io::Json(std::move(fields)).dump(2) << '\n';
  return static_cast<bool>(out);
}

// Exhaustively verify when the fault-set space is below `cap`, otherwise
// sample; returns a short verdict string for table cells.
inline std::string verify_cell(const kgd::SolutionGraph& sg, int k,
                               std::uint64_t cap = 200000,
                               std::uint64_t samples = 400) {
  const std::uint64_t space =
      fault::FaultEnumerator(sg.num_nodes(), k).total();
  util::Timer t;
  if (space <= cap) {
    const auto res = verify::run_check(sg, verify::CheckRequest::exhaustive(k));
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s (all %llu, %.0fms)",
                  res.holds ? "OK" : "FAIL",
                  static_cast<unsigned long long>(res.fault_sets_checked),
                  t.millis());
    return buf;
  }
  const auto res = verify::run_check(sg, verify::CheckRequest::sampled(k, samples, 42));
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s (sampled %llu)",
                res.holds ? "OK" : "FAIL",
                static_cast<unsigned long long>(res.fault_sets_checked));
  return buf;
}

}  // namespace kgdp::bench
