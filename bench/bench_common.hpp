// Shared helpers for the table-printing benchmark harnesses.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>

#include "fault/enumerator.hpp"
#include "io/json.hpp"
#include "kgd/labeled_graph.hpp"
#include "util/table.hpp"
#include "util/timer.hpp"
#include "verify/checker.hpp"

namespace kgdp::bench {

inline void banner(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

// Machine-readable benchmark record (BENCH_*.json): pretty-printed,
// schema_version-stamped, written atomically enough for CI consumption
// (whole-string single write). Returns false on I/O failure.
inline bool write_bench_json(const std::string& path, io::JsonObject fields) {
  fields["schema_version"] = io::kSchemaVersion;
  std::ofstream out(path);
  if (!out) return false;
  out << io::Json(std::move(fields)).dump(2) << '\n';
  return static_cast<bool>(out);
}

// Exhaustively verify when the fault-set space is below `cap`, otherwise
// sample; returns a short verdict string for table cells.
inline std::string verify_cell(const kgd::SolutionGraph& sg, int k,
                               std::uint64_t cap = 200000,
                               std::uint64_t samples = 400) {
  const std::uint64_t space =
      fault::FaultEnumerator(sg.num_nodes(), k).total();
  util::Timer t;
  if (space <= cap) {
    const auto res = verify::run_check(sg, verify::CheckRequest::exhaustive(k));
    char buf[64];
    std::snprintf(buf, sizeof buf, "%s (all %llu, %.0fms)",
                  res.holds ? "OK" : "FAIL",
                  static_cast<unsigned long long>(res.fault_sets_checked),
                  t.millis());
    return buf;
  }
  const auto res = verify::run_check(sg, verify::CheckRequest::sampled(k, samples, 42));
  char buf[64];
  std::snprintf(buf, sizeof buf, "%s (sampled %llu)",
                res.holds ? "OK" : "FAIL",
                static_cast<unsigned long long>(res.fault_sets_checked));
  return buf;
}

}  // namespace kgdp::bench
