// X-ATLAS: census of ALL standard degree-optimal solutions for small
// (n, k), up to role-preserving isomorphism — the computational
// counterpart of the paper's uniqueness claims. Lemmas 3.7/3.9 say the
// count is exactly 1 for n = 1 and n = 2; the paper is silent for other
// parameters, so those counts are new data this reproduction adds.
#include "bench_common.hpp"
#include "graph/isomorphism.hpp"
#include "kgd/bounds.hpp"
#include "verify/synthesis.hpp"

using namespace kgdp;

namespace {

int count_nonisomorphic(int n, int k, std::uint64_t* graphs_seen,
                        bool* exhausted) {
  verify::SynthSpec spec{n, k, kgd::achieved_max_degree(n, k)};
  std::vector<kgd::SolutionGraph> reps;
  verify::SynthLimits limits;
  limits.max_solutions = 0;  // find all
  const auto stats = verify::enumerate_standard_solutions(
      spec, limits, [&](const kgd::SolutionGraph& sg) {
        std::vector<int> color;
        for (auto r : sg.roles()) color.push_back(static_cast<int>(r));
        for (const auto& rep : reps) {
          std::vector<int> rep_color;
          for (auto r : rep.roles()) {
            rep_color.push_back(static_cast<int>(r));
          }
          if (graph::are_isomorphic(sg.graph(), rep.graph(), &color,
                                    &rep_color)) {
            return true;  // seen this one
          }
        }
        reps.push_back(sg);
        return true;
      });
  *graphs_seen = stats.graphs_enumerated;
  *exhausted = stats.search_space_exhausted;
  return static_cast<int>(reps.size());
}

}  // namespace

int main() {
  bench::banner(
      "Atlas: non-isomorphic degree-optimal standard solutions per (n,k)");
  util::Table t({"n", "k", "target max deg", "solutions (up to iso)",
                 "candidate graphs", "exhausted", "paper claim"});
  struct Row {
    int n, k;
    const char* claim;
  };
  const Row rows[] = {
      {1, 1, "unique (Lemma 3.7)"},  {1, 2, "unique (Lemma 3.7)"},
      {1, 3, "unique (Lemma 3.7)"},  {2, 1, "unique (Lemma 3.9)"},
      {2, 2, "unique (Lemma 3.9)"},  {3, 1, "(none)"},
      {3, 2, "(none)"},              {5, 1, "(none)"},
      {4, 2, "(none)"},
  };
  for (const Row& r : rows) {
    std::uint64_t graphs = 0;
    bool exhausted = false;
    util::Timer timer;
    const int count = count_nonisomorphic(r.n, r.k, &graphs, &exhausted);
    t.add_row({util::Table::num(r.n), util::Table::num(r.k),
               util::Table::num(kgd::achieved_max_degree(r.n, r.k)),
               util::Table::num(count), util::Table::num(graphs),
               exhausted ? "yes" : "NO", r.claim});
    std::fprintf(stderr, "  (n=%d,k=%d in %.1fs)\n", r.n, r.k,
                 timer.seconds());
  }
  t.print();
  std::printf(
      "\nReading: counts of 1 in the n=1 and n=2 rows reproduce the\n"
      "uniqueness halves of Lemmas 3.7 and 3.9 computationally. Counts\n"
      "for other rows are data the paper does not report.\n");
  return 0;
}
