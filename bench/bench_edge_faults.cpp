// X-EDGE: link-fault tolerance. Compares the paper-era reduction (Hayes:
// treat an endpoint of each dead link as a faulty node — sacrifices
// healthy processors) with direct edge-avoiding reconfiguration (keeps
// every healthy processor). Exhaustive over all single and double link
// faults on representative designs.
#include "bench_common.hpp"
#include "fault/edge_faults.hpp"
#include "kgd/factory.hpp"

using namespace kgdp;

int main() {
  bench::banner("Link-fault tolerance: direct rerouting vs Hayes reduction");
  util::Table t({"graph", "edge faults", "edge sets", "direct tolerated",
                 "reduction tolerated", "direct holds", "reduction holds"});
  for (auto [n, k] : std::vector<std::pair<int, int>>{
           {6, 2}, {8, 2}, {7, 3}, {13, 4}}) {
    const auto sg = kgd::build_solution(n, k);
    for (int j = 1; j <= 2; ++j) {
      const auto rep = fault::check_edge_tolerance_exhaustive(*sg, j);
      t.add_row({sg->name(), util::Table::num(j),
                 util::Table::num(rep.edge_sets_checked),
                 util::Table::num(rep.direct_tolerated),
                 util::Table::num(rep.reduced_tolerated),
                 rep.direct_holds() ? "yes" : "NO",
                 rep.reduced_holds() ? "yes" : "NO"});
    }
  }
  t.print();
  std::printf(
      "\nExpected shape: the reduction always holds for <= k link faults\n"
      "(each dead link costs one node from the budget); direct rerouting\n"
      "additionally keeps every healthy processor in service whenever the\n"
      "residual graph still has a spanning pipeline.\n");
  return 0;
}
