// kgdd service bench: requests/second and p50/p99 latency for verify,
// construct, and atlas-served route traffic through a real in-process
// daemon, Unix-domain socket vs TCP loopback. Each request is a complete
// protocol round trip (send frame, read streamed events, read terminal
// frame), so the numbers include framing, JSON, admission, pool
// dispatch, and the session machinery — everything but real network
// distance. A separate in-memory section isolates the atlas itself:
// raw RouteAtlas::lookup and full Router::route (canonicalize +
// lookup + transport + certify) rates without any wire overhead.
//
// Flags:
//   --json=PATH   also write the numbers as machine-readable JSON
//   --smoke       reduced counts plus hard budget checks (CI gate):
//                 raw atlas lookups >= 1M/s, warm in-memory route p99
//                 < 100 us, daemon unix route p99 < 250 ms. Exits 1 on
//                 a budget violation.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "fault/canonical.hpp"
#include "io/json.hpp"
#include "kgd/factory.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "reconfig/atlas.hpp"
#include "service/daemon.hpp"
#include "service/protocol.hpp"
#include "util/timer.hpp"

using namespace kgdp;

namespace {

struct LatencyStats {
  double req_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

// Accumulated machine-readable output (--json).
io::JsonObject g_json;

double quantile_ms(std::vector<double>& seconds, double q) {
  if (seconds.empty()) return 0.0;
  std::sort(seconds.begin(), seconds.end());
  const std::size_t rank = std::min(
      seconds.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(seconds.size())));
  return seconds[rank] * 1000.0;
}

io::Json make_request(const std::string& method, io::JsonObject params) {
  io::JsonObject frame;
  frame["method"] = method;
  frame["params"] = io::Json(std::move(params));
  return io::Json(std::move(frame));
}

// Drives `count` identical requests through one connection, reading each
// reply stream to its terminal frame, and returns throughput/latency.
LatencyStats drive(net::Client& client, const io::Json& request, int count) {
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(count));
  std::string error;
  util::Timer wall;
  for (int i = 0; i < count; ++i) {
    util::Timer per;
    if (!client.send_json(request, &error)) {
      std::fprintf(stderr, "send failed: %s\n", error.c_str());
      return {};
    }
    while (true) {
      const auto frame = client.read_json(60000, &error);
      if (!frame.has_value()) {
        std::fprintf(stderr, "read failed: %s\n", error.c_str());
        return {};
      }
      if (service::is_terminal_frame(*frame)) break;
    }
    latencies.push_back(per.seconds());
  }
  LatencyStats stats;
  stats.req_per_s = static_cast<double>(count) / wall.seconds();
  stats.p50_ms = quantile_ms(latencies, 0.50);
  stats.p99_ms = quantile_ms(latencies, 0.99);
  return stats;
}

void record(const std::string& transport, const std::string& workload,
            const LatencyStats& s, double items_per_request = 1.0) {
  std::printf("%-6s %-18s %10.0f req/s   p50 %7.3f ms   p99 %7.3f ms",
              transport.c_str(), workload.c_str(), s.req_per_s, s.p50_ms,
              s.p99_ms);
  if (items_per_request > 1.0) {
    std::printf("   (%0.0f routes/s, p99 %.1f us/route)",
                s.req_per_s * items_per_request,
                s.p99_ms * 1000.0 / items_per_request);
  }
  std::printf("\n");
  io::JsonObject row;
  row["req_per_s"] = s.req_per_s;
  row["p50_ms"] = s.p50_ms;
  row["p99_ms"] = s.p99_ms;
  if (items_per_request > 1.0) {
    row["routes_per_s"] = s.req_per_s * items_per_request;
    row["per_route_p99_us"] = s.p99_ms * 1000.0 / items_per_request;
  }
  g_json[transport + "." + workload] = io::Json(std::move(row));
}

// All <= max_faults fault sets of a `num_nodes`-node graph, as JSON
// arrays — the deterministic route population the batch workload cycles.
io::JsonArray all_fault_sets(int num_nodes, int max_faults) {
  io::JsonArray sets;
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << num_nodes); ++m) {
    if (std::popcount(m) > max_faults) continue;
    io::JsonArray set;
    for (std::uint64_t rest = m; rest; rest &= rest - 1) {
      set.push_back(std::countr_zero(rest));
    }
    sets.emplace_back(std::move(set));
  }
  return sets;
}

// Wire benches against one daemon/transport.
LatencyStats bench_transport(const char* label,
                             const net::Endpoint& listen_ep,
                             const net::Endpoint& connect_ep, bool smoke) {
  service::DaemonConfig config;
  config.endpoints.push_back(listen_ep);
  config.service.threads = 2;
  config.watch_stop_signal = false;
  service::Daemon daemon(std::move(config));
  daemon.start_thread();

  const net::Endpoint target =
      connect_ep.kind == net::Endpoint::Kind::kTcp && connect_ep.port == 0
          ? net::Endpoint::tcp(connect_ep.host, daemon.tcp_port())
          : connect_ep;
  std::string error;
  auto client = net::Client::connect(target, &error);
  if (!client.has_value()) {
    std::fprintf(stderr, "connect failed: %s\n", error.c_str());
    return {};
  }
  const int scale = smoke ? 10 : 1;

  // Warm-up: fault the code paths and the allocator out of the numbers.
  drive(*client, make_request("ping", {}), 50);

  record(label, "ping",
         drive(*client, make_request("ping", {}), 2000 / scale));
  io::JsonObject verify_params;
  verify_params["n"] = 6;
  verify_params["k"] = 2;
  verify_params["chunk"] = 4096;  // one chunk: a single-shot small verify
  record(label, "verify(6,2)",
         drive(*client, make_request("verify", std::move(verify_params)),
               300 / scale));
  io::JsonObject build_params;
  build_params["n"] = 8;
  build_params["k"] = 2;
  record(label, "construct(8,2)",
         drive(*client, make_request("construct", std::move(build_params)),
               500 / scale));

  // Atlas-served routing. One cold request builds the router and warms
  // the orbit; everything after is the steady state kgdd was built for.
  io::JsonObject route_params;
  route_params["n"] = 8;
  route_params["k"] = 2;
  route_params["faults"] = io::JsonArray{0, 11};
  const io::Json route_req = make_request("route", std::move(route_params));
  drive(*client, route_req, 50);  // warm router + orbit
  const LatencyStats route_single =
      drive(*client, route_req, 4000 / scale);
  record(label, "route(8,2)", route_single);

  // Batched routing: every <= 2-fault set of the 16-node graph in one
  // frame (137 sets), the protocol's answer to reconfiguration storms.
  io::JsonObject batch_params;
  batch_params["n"] = 8;
  batch_params["k"] = 2;
  io::JsonArray sets = all_fault_sets(16, 2);
  const double batch_size = static_cast<double>(sets.size());
  batch_params["sets"] = io::Json(std::move(sets));
  const io::Json batch_req = make_request("route", std::move(batch_params));
  drive(*client, batch_req, 5);  // warm every orbit
  record(label, "route-batch137",
         drive(*client, batch_req, 400 / scale), batch_size);

  daemon.begin_drain();
  daemon.join();
  return route_single;
}

// In-memory section: the atlas data structure itself, no wire, no JSON.
// Returns (lookups_per_s, route_p99_us) for the smoke budgets.
std::pair<double, double> bench_in_memory(bool smoke) {
  auto sg = kgd::build_solution(8, 2);
  if (!sg.has_value()) return {0.0, 0.0};
  reconfig::RouteAtlas atlas(std::size_t{1} << 20);
  reconfig::Router router(*sg, &atlas);
  router.build_atlas(sg->k(), 0, 1);
  auto scratch = std::make_unique<fault::FaultCanonicalizer::Scratch>();

  // Raw RouteAtlas::lookup on the canonical keys: one atomic snapshot
  // load plus one hash probe — the advertised >= 1M/s hot path.
  std::vector<std::uint64_t> masks;
  std::vector<kgd::FaultSet> fault_sets;
  for (std::uint64_t m = 0; m < (std::uint64_t{1} << 16); ++m) {
    if (std::popcount(m) > 2) continue;
    masks.push_back(m);
    std::vector<graph::Node> nodes;
    for (std::uint64_t rest = m; rest; rest &= rest - 1) {
      nodes.push_back(static_cast<graph::Node>(std::countr_zero(rest)));
    }
    fault_sets.emplace_back(sg->num_nodes(), nodes);
  }
  const std::uint64_t fp = router.graph_fp();
  std::vector<graph::Node> path;
  std::uint64_t hits = 0;
  const int lookup_iters = smoke ? 2000 : 20000;
  util::Timer lookup_timer;
  for (int it = 0; it < lookup_iters; ++it) {
    for (const std::uint64_t m : masks) {
      // Canonical-form keys hit; raw masks may miss — both are probes.
      hits += atlas.lookup(fp, m, &path) ? 1u : 0u;
    }
  }
  const double lookups =
      static_cast<double>(lookup_iters) * static_cast<double>(masks.size());
  const double lookups_per_s = lookups / lookup_timer.seconds();

  // Full warm route: canonicalize + transport + lookup + certify.
  const int route_iters = smoke ? 20 : 200;
  std::vector<double> route_lat;
  route_lat.reserve(fault_sets.size() * static_cast<std::size_t>(route_iters));
  std::uint64_t feasible = 0;
  util::Timer route_timer;
  for (int it = 0; it < route_iters; ++it) {
    for (const kgd::FaultSet& faults : fault_sets) {
      util::Timer per;
      const reconfig::Router::Result res = router.route(faults, *scratch);
      route_lat.push_back(per.seconds());
      feasible += res.feasible ? 1u : 0u;
    }
  }
  const double routes = static_cast<double>(route_lat.size());
  const double routes_per_s = routes / route_timer.seconds();
  const double route_p99_us = quantile_ms(route_lat, 0.99) * 1000.0;

  std::printf("memory raw-atlas-lookup   %12.0f lookups/s  (%llu hits)\n",
              lookups_per_s, static_cast<unsigned long long>(hits));
  std::printf("memory warm-route         %12.0f routes/s   p99 %7.2f us "
              "(%llu feasible)\n",
              routes_per_s, route_p99_us,
              static_cast<unsigned long long>(feasible));
  io::JsonObject mem;
  mem["atlas_lookups_per_s"] = lookups_per_s;
  mem["warm_routes_per_s"] = routes_per_s;
  mem["warm_route_p99_us"] = route_p99_us;
  g_json["memory.route(8,2)"] = io::Json(std::move(mem));
  return {lookups_per_s, route_p99_us};
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--smoke") {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: bench_service [--json=PATH] [--smoke]\n");
      return 2;
    }
  }

  bench::banner("kgdd service throughput: Unix socket vs TCP loopback");
  const auto [lookups_per_s, route_p99_us] = bench_in_memory(smoke);
  const std::string sock_path =
      "bench_service_" + std::to_string(::getpid()) + ".sock";
  const LatencyStats unix_route =
      bench_transport("unix", net::Endpoint::unix_path(sock_path),
                      net::Endpoint::unix_path(sock_path), smoke);
  ::unlink(sock_path.c_str());
  bench_transport("tcp", net::Endpoint::tcp("127.0.0.1", 0),
                  net::Endpoint::tcp("127.0.0.1", 0), smoke);

  if (!json_path.empty()) {
    if (!bench::write_bench_json(json_path, "bench_service", std::move(g_json))) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::printf("wrote %s\n", json_path.c_str());
  }

  if (smoke) {
    // Generous CI budgets: loaded shared runners must pass; an atlas
    // lookup regressing to a full recompute must not.
    bool ok = true;
    if (lookups_per_s < 1e6) {
      std::printf("route smoke: FAIL raw atlas lookups %.0f/s < 1M/s\n",
                  lookups_per_s);
      ok = false;
    }
    if (route_p99_us > 100.0) {
      std::printf("route smoke: FAIL warm in-memory route p99 %.1f us > "
                  "100 us\n",
                  route_p99_us);
      ok = false;
    }
    if (unix_route.p99_ms <= 0.0 || unix_route.p99_ms > 250.0) {
      std::printf("route smoke: FAIL unix route p99 %.3f ms outside "
                  "(0, 250] ms\n",
                  unix_route.p99_ms);
      ok = false;
    }
    if (!ok) return 1;
    std::printf("route smoke: OK (%.1fM lookups/s, route p99 %.1f us, "
                "unix p99 %.3f ms)\n",
                lookups_per_s / 1e6, route_p99_us, unix_route.p99_ms);
  }
  return 0;
}
