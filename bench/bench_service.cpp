// kgdd service bench: requests/second and p50/p99 latency for
// small-verify traffic through a real in-process daemon, Unix-domain
// socket vs TCP loopback. Each request is a complete protocol round
// trip (send frame, read streamed events, read terminal frame), so the
// numbers include framing, JSON, admission, pool dispatch, and the
// session machinery — everything but real network distance.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "io/json.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "service/daemon.hpp"
#include "service/protocol.hpp"
#include "util/timer.hpp"

using namespace kgdp;

namespace {

struct LatencyStats {
  double req_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double quantile_ms(std::vector<double>& seconds, double q) {
  if (seconds.empty()) return 0.0;
  std::sort(seconds.begin(), seconds.end());
  const std::size_t rank = std::min(
      seconds.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(seconds.size())));
  return seconds[rank] * 1000.0;
}

io::Json make_request(const std::string& method, io::JsonObject params) {
  io::JsonObject frame;
  frame["method"] = method;
  frame["params"] = io::Json(std::move(params));
  return io::Json(std::move(frame));
}

// Drives `count` identical requests through one connection, reading each
// reply stream to its terminal frame, and returns throughput/latency.
LatencyStats drive(net::Client& client, const io::Json& request, int count) {
  std::vector<double> latencies;
  latencies.reserve(static_cast<std::size_t>(count));
  std::string error;
  util::Timer wall;
  for (int i = 0; i < count; ++i) {
    util::Timer per;
    if (!client.send_json(request, &error)) {
      std::fprintf(stderr, "send failed: %s\n", error.c_str());
      return {};
    }
    while (true) {
      const auto frame = client.read_json(60000, &error);
      if (!frame.has_value()) {
        std::fprintf(stderr, "read failed: %s\n", error.c_str());
        return {};
      }
      if (service::is_terminal_frame(*frame)) break;
    }
    latencies.push_back(per.seconds());
  }
  LatencyStats stats;
  stats.req_per_s = static_cast<double>(count) / wall.seconds();
  stats.p50_ms = quantile_ms(latencies, 0.50);
  stats.p99_ms = quantile_ms(latencies, 0.99);
  return stats;
}

void bench_transport(const char* label, const net::Endpoint& listen_ep,
                     const net::Endpoint& connect_ep) {
  service::DaemonConfig config;
  config.endpoints.push_back(listen_ep);
  config.service.threads = 2;
  config.watch_stop_signal = false;
  service::Daemon daemon(std::move(config));
  daemon.start_thread();

  const net::Endpoint target =
      connect_ep.kind == net::Endpoint::Kind::kTcp && connect_ep.port == 0
          ? net::Endpoint::tcp(connect_ep.host, daemon.tcp_port())
          : connect_ep;
  std::string error;
  auto client = net::Client::connect(target, &error);
  if (!client.has_value()) {
    std::fprintf(stderr, "connect failed: %s\n", error.c_str());
    return;
  }

  // Warm-up: fault the code paths and the allocator out of the numbers.
  drive(*client, make_request("ping", {}), 50);

  const LatencyStats ping = drive(*client, make_request("ping", {}), 2000);
  io::JsonObject verify_params;
  verify_params["n"] = 6;
  verify_params["k"] = 2;
  verify_params["chunk"] = 4096;  // one chunk: a single-shot small verify
  const LatencyStats verify =
      drive(*client, make_request("verify", std::move(verify_params)), 300);
  io::JsonObject build_params;
  build_params["n"] = 8;
  build_params["k"] = 2;
  const LatencyStats construct =
      drive(*client, make_request("construct", std::move(build_params)), 500);

  std::printf("%-12s %-12s %10.0f req/s   p50 %7.3f ms   p99 %7.3f ms\n",
              label, "ping", ping.req_per_s, ping.p50_ms, ping.p99_ms);
  std::printf("%-12s %-12s %10.0f req/s   p50 %7.3f ms   p99 %7.3f ms\n",
              label, "verify(6,2)", verify.req_per_s, verify.p50_ms,
              verify.p99_ms);
  std::printf("%-12s %-12s %10.0f req/s   p50 %7.3f ms   p99 %7.3f ms\n",
              label, "construct", construct.req_per_s, construct.p50_ms,
              construct.p99_ms);

  daemon.begin_drain();
  daemon.join();
}

}  // namespace

int main() {
  bench::banner("kgdd service throughput: Unix socket vs TCP loopback");
  const std::string sock_path =
      "bench_service_" + std::to_string(::getpid()) + ".sock";
  bench_transport("unix", net::Endpoint::unix_path(sock_path),
                  net::Endpoint::unix_path(sock_path));
  ::unlink(sock_path.c_str());
  bench_transport("tcp", net::Endpoint::tcp("127.0.0.1", 0),
                  net::Endpoint::tcp("127.0.0.1", 0));
  return 0;
}
