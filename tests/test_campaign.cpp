#include "sim/campaign.hpp"

#include <gtest/gtest.h>

#include "baseline/naive.hpp"
#include "kgd/factory.hpp"

namespace kgdp::sim {
namespace {

CampaignConfig quick_config() {
  CampaignConfig c;
  c.faults_per_mcycle = 50.0;
  c.repair_cycles = 100000.0;
  c.horizon_cycles = 5e6;
  c.seed = 42;
  return c;
}

TEST(Campaign, DeterministicForFixedSeed) {
  const auto sg = kgd::build_solution(8, 2);
  ASSERT_TRUE(sg);
  const auto a = run_availability_campaign(*sg, quick_config());
  const auto b = run_availability_campaign(*sg, quick_config());
  EXPECT_EQ(a.availability, b.availability);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.reconfigurations, b.reconfigurations);
}

TEST(Campaign, NoFaultsMeansFullAvailability) {
  const auto sg = kgd::build_solution(8, 2);
  ASSERT_TRUE(sg);
  CampaignConfig c = quick_config();
  c.faults_per_mcycle = 0.0000001;  // effectively never
  const auto res = run_availability_campaign(*sg, c);
  EXPECT_DOUBLE_EQ(res.availability, 1.0);
  EXPECT_DOUBLE_EQ(res.mean_utilization, 1.0);
  EXPECT_EQ(res.faults_injected, 0);
  EXPECT_EQ(res.outages, 0);
}

TEST(Campaign, FaultsReduceUtilizationButNotBelowZero) {
  const auto sg = kgd::build_solution(8, 2);
  ASSERT_TRUE(sg);
  const auto res = run_availability_campaign(*sg, quick_config());
  EXPECT_GT(res.faults_injected, 0);
  EXPECT_GT(res.availability, 0.0);
  EXPECT_LE(res.availability, 1.0);
  EXPECT_GT(res.mean_utilization, 0.0);
  EXPECT_LE(res.mean_utilization, 1.0);
  EXPECT_EQ(res.reconfigurations,
            res.faults_injected + res.repairs_completed);
}

TEST(Campaign, HigherKImprovesAvailabilityUnderHeavyFaults) {
  // Expected concurrent faults = rate * repair ≈ 2: routinely above
  // k = 1, rarely above k = 3.
  CampaignConfig heavy = quick_config();
  heavy.faults_per_mcycle = 8.0;
  heavy.repair_cycles = 250000.0;
  heavy.horizon_cycles = 40e6;

  const auto weak = kgd::build_solution(12, 1);
  const auto strong = kgd::build_solution(12, 3);
  ASSERT_TRUE(weak && strong);
  const auto weak_res = run_availability_campaign(*weak, heavy);
  const auto strong_res = run_availability_campaign(*strong, heavy);
  EXPECT_GT(strong_res.availability, weak_res.availability);
}

TEST(Campaign, SparePathIsFragile) {
  CampaignConfig c = quick_config();
  c.faults_per_mcycle = 20.0;
  c.repair_cycles = 50000.0;
  c.horizon_cycles = 20e6;
  const auto good = kgd::build_solution(8, 2);
  ASSERT_TRUE(good);
  const auto frail = baseline::make_spare_path(8, 2);
  const auto good_res = run_availability_campaign(*good, c);
  const auto frail_res = run_availability_campaign(frail, c);
  EXPECT_GT(good_res.availability, frail_res.availability);
}

TEST(Campaign, RepairsRestoreService) {
  // Expected concurrent faults = 20/1e6 * 10000 = 0.2, well under k = 2:
  // repairs outpace arrivals and availability stays high.
  CampaignConfig c = quick_config();
  c.faults_per_mcycle = 20.0;
  c.repair_cycles = 10000.0;
  c.horizon_cycles = 20e6;
  const auto sg = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg);
  const auto res = run_availability_campaign(*sg, c);
  EXPECT_GT(res.repairs_completed, 0);
  EXPECT_GT(res.availability, 0.99);
}

}  // namespace
}  // namespace kgdp::sim
