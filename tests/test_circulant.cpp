#include "graph/circulant.hpp"

#include <gtest/gtest.h>

#include "graph/properties.hpp"

namespace kgdp::graph {
namespace {

TEST(Circulant, OffsetOneIsACycle) {
  const Graph g = make_circulant(6, {1});
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.max_degree(), 2);
  EXPECT_TRUE(is_connected(g));
}

TEST(Circulant, BisectorOffsetContributesDegreeOne) {
  // m = 6, offset 3 pairs antipodal nodes: perfect matching.
  const Graph g = make_circulant(6, {3});
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.max_degree(), 1);
  EXPECT_EQ(circulant_degree(6, {3}), 1);
}

TEST(Circulant, TwoOffsets) {
  const Graph g = make_circulant(8, {1, 2});
  EXPECT_EQ(g.max_degree(), 4);
  EXPECT_EQ(g.min_degree(), 4);
  EXPECT_EQ(g.num_edges(), 16u);
  EXPECT_EQ(circulant_degree(8, {1, 2}), 4);
}

TEST(Circulant, OffsetsNormalizedModuloM) {
  // Offset 7 mod 8 is chord class 1; offset 9 likewise.
  const Graph a = make_circulant(8, {1});
  const Graph b = make_circulant(8, {7});
  const Graph c = make_circulant(8, {9});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, c);
}

TEST(Circulant, DuplicateOffsetsCollapse) {
  EXPECT_EQ(make_circulant(10, {2, 2, 8}), make_circulant(10, {2}));
}

TEST(Circulant, OffsetZeroIgnored) {
  const Graph g = make_circulant(5, {0});
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Circulant, ConnectivityIsGcdCondition) {
  EXPECT_TRUE(circulant_connected(9, {1}));
  EXPECT_FALSE(circulant_connected(9, {3}));  // gcd(9,3)=3
  EXPECT_TRUE(circulant_connected(9, {3, 2}));
  EXPECT_FALSE(circulant_connected(8, {2, 4}));
}

TEST(Circulant, ConnectedPredicateMatchesBfs) {
  for (int m = 3; m <= 12; ++m) {
    for (int s1 = 1; s1 <= m / 2; ++s1) {
      for (int s2 = s1; s2 <= m / 2; ++s2) {
        const std::vector<int> offs = {s1, s2};
        EXPECT_EQ(circulant_connected(m, offs),
                  is_connected(make_circulant(m, offs)))
            << "m=" << m << " offsets " << s1 << "," << s2;
      }
    }
  }
}

TEST(Circulant, DegreeFormulaMatchesGraph) {
  for (int m = 4; m <= 14; ++m) {
    for (int s = 1; s <= m / 2; ++s) {
      const Graph g = make_circulant(m, {1, s});
      EXPECT_EQ(g.max_degree(), circulant_degree(m, {1, s}))
          << "m=" << m << " s=" << s;
      EXPECT_EQ(g.min_degree(), g.max_degree());  // vertex-transitive
    }
  }
}

TEST(Circulant, SingleNode) {
  const Graph g = make_circulant(1, {1});
  EXPECT_EQ(g.num_nodes(), 1);
  EXPECT_EQ(g.num_edges(), 0u);
}

}  // namespace
}  // namespace kgdp::graph
