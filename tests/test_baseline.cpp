#include <gtest/gtest.h>

#include "baseline/compare.hpp"

#include "kgd/bounds.hpp"
#include "baseline/hayes.hpp"
#include "baseline/naive.hpp"
#include "graph/properties.hpp"
#include "kgd/factory.hpp"
#include "verify/checker.hpp"

namespace kgdp::baseline {
namespace {

TEST(Hayes, CirculantStructure) {
  const graph::Graph g = make_hayes_cycle(10, 2);
  EXPECT_EQ(g.num_nodes(), 12);
  EXPECT_TRUE(graph::is_connected(g));
  EXPECT_EQ(g.max_degree(), hayes_degree(10, 2));
  EXPECT_EQ(g.max_degree(), 4);  // offsets {1, 2}
}

TEST(Hayes, OddKGetsBisectorWhenEven) {
  // k = 3, n+k even: offsets {1, 2, bisector} -> degree 5.
  EXPECT_EQ(hayes_degree(9, 3), 5);
  // k = 3, n+k odd: no bisector -> degree 4.
  EXPECT_EQ(hayes_degree(10, 3), 4);
}

TEST(Hayes, AdaptationFailsGdWhenKOddAndNEven) {
  // Empirical finding (matches Lemma 3.1/3.5): when k is odd and n is
  // even, the Hayes circulant has degree k+1 < k+2, below the processor
  // degree floor, and the adaptation is not k-gracefully-degradable.
  for (auto [n, k] : std::vector<std::pair<int, int>>{{4, 1}, {6, 1},
                                                      {8, 3}, {10, 3}}) {
    const auto adapted = make_hayes_pipeline_adaptation(n, k);
    const auto res = verify::run_check(adapted, verify::CheckRequest::exhaustive(k));
    EXPECT_FALSE(res.holds) << "n=" << n << " k=" << k;
    EXPECT_TRUE(res.counterexample.has_value());
  }
}

TEST(Hayes, AdaptationElsewhereGdButDegreeSuboptimal) {
  // In the other parity regimes the adaptation happens to be GD — the
  // paper's §3.4 core IS a Hayes supergraph — but naive terminal
  // attachment costs max degree k+3 where the paper achieves k+2.
  const auto adapted = make_hayes_pipeline_adaptation(8, 2);
  EXPECT_TRUE(verify::run_check(adapted, verify::CheckRequest::exhaustive(2)).holds);
  EXPECT_EQ(adapted.max_processor_degree(), 5);        // k+3
  EXPECT_EQ(kgd::max_degree_lower_bound(8, 2), 4);     // paper: k+2
}

TEST(Hayes, AdaptationStillWorksFaultFree) {
  const auto adapted = make_hayes_pipeline_adaptation(8, 2);
  const auto out = verify::find_pipeline(
      adapted, kgd::FaultSet::none(adapted.num_nodes()));
  EXPECT_EQ(out.status, verify::SolveStatus::kFound);
}

TEST(SparePath, NodeOptimalButUseless) {
  const auto sg = make_spare_path(5, 2);
  EXPECT_TRUE(sg.is_node_optimal());
  const auto res = verify::run_check(sg, verify::CheckRequest::exhaustive(2));
  EXPECT_FALSE(res.holds);
}

TEST(SparePath, SurvivesFaultFreeOnly) {
  const auto sg = make_spare_path(5, 2);
  EXPECT_EQ(verify::find_pipeline(sg, kgd::FaultSet::none(sg.num_nodes()))
                .status,
            verify::SolveStatus::kFound);
}

TEST(CompleteDesign, GracefullyDegradableButDegreeBloated) {
  const auto sg = make_complete_design(6, 2);
  EXPECT_TRUE(verify::run_check(sg, verify::CheckRequest::exhaustive(2)).holds);
  // Cost: processor degree ~ n+k vs the paper's k+2.
  EXPECT_GT(sg.max_processor_degree(), 4);
}

TEST(Metrics, ReportsBasicNumbers) {
  const auto sg = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg);
  const DesignMetrics m = metrics_for(*sg);
  EXPECT_EQ(m.nodes, sg->num_nodes());
  EXPECT_EQ(m.edges, sg->graph().num_edges());
  EXPECT_EQ(m.max_processor_degree, 4);
  EXPECT_TRUE(m.node_optimal);
  EXPECT_TRUE(m.standard);
}

TEST(Profiles, KgdGraphToleratesEverythingUpToK) {
  const auto sg = kgd::build_solution(8, 2);
  ASSERT_TRUE(sg);
  const auto rows = degradation_profile(*sg, 2, 60, /*seed=*/3);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    EXPECT_DOUBLE_EQ(row.tolerated_fraction, 1.0) << "f=" << row.faults;
    EXPECT_DOUBLE_EQ(row.mean_utilization, 1.0);
  }
}

TEST(Profiles, SparePathCollapsesImmediately) {
  const auto rows =
      degradation_profile(make_spare_path(8, 2), 2, 60, /*seed=*/4);
  EXPECT_DOUBLE_EQ(rows[0].tolerated_fraction, 1.0);
  EXPECT_LT(rows[1].tolerated_fraction, 0.6);
  EXPECT_LT(rows[2].tolerated_fraction, rows[1].tolerated_fraction + 0.05);
}

TEST(Profiles, HayesUtilizationCapped) {
  const auto rows = hayes_profile(8, 2, 40, /*seed=*/5);
  ASSERT_EQ(rows.size(), 3u);
  // With faults present, mean utilization must fall below 1 whenever the
  // survivor graph misses a spanning path; at minimum it is n/healthy.
  EXPECT_GT(rows[1].mean_utilization, 0.7);
  EXPECT_LE(rows[1].mean_utilization, 1.0);
}

}  // namespace
}  // namespace kgdp::baseline
