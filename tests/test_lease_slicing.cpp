// Lease-boundary determinism: any partition of the orbit-slot space into
// explicit [begin, end) lease slices — including partitions reshaped by
// mid-sweep truncation (steals) and cursor reassignment (worker death) —
// must merge to the exact result of the unsliced sequential sweep,
// bit-identically on every deterministic field. This is the verify-layer
// half of the fleet acceptance criterion; tests run both sequentially
// and through a ThreadPool so the TSan lane exercises the same paths.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "baseline/naive.hpp"
#include "fault/orbit_enumerator.hpp"
#include "graph/automorphism.hpp"
#include "kgd/factory.hpp"
#include "util/thread_pool.hpp"
#include "verify/check_session.hpp"
#include "verify/checker.hpp"

namespace kgdp::verify {
namespace {

std::uint64_t orbit_total(const kgd::SolutionGraph& sg, int max_faults,
                          PruneMode prune) {
  const graph::AutomorphismList autos =
      prune == PruneMode::kAuto ? graph::solution_automorphisms(sg)
                                : graph::AutomorphismList{};
  return fault::OrbitEnumerator(sg.num_nodes(), max_faults, autos)
      .num_orbits();
}

void expect_identical(const CheckResult& a, const CheckResult& b,
                      const std::string& tag) {
  EXPECT_EQ(a.holds, b.holds) << tag;
  EXPECT_EQ(a.exhaustive, b.exhaustive) << tag;
  EXPECT_EQ(a.fault_sets_checked, b.fault_sets_checked) << tag;
  EXPECT_EQ(a.fault_sets_solved, b.fault_sets_solved) << tag;
  EXPECT_EQ(a.solver_unknowns, b.solver_unknowns) << tag;
  EXPECT_EQ(a.orbits_pruned, b.orbits_pruned) << tag;
  EXPECT_EQ(a.automorphism_order, b.automorphism_order) << tag;
  ASSERT_EQ(a.counterexample.has_value(), b.counterexample.has_value())
      << tag;
  if (a.counterexample) {
    EXPECT_EQ(a.counterexample->nodes(), b.counterexample->nodes()) << tag;
  }
  ASSERT_EQ(a.counterexample_index.has_value(),
            b.counterexample_index.has_value())
      << tag;
  if (a.counterexample_index) {
    EXPECT_EQ(*a.counterexample_index, *b.counterexample_index) << tag;
  }
}

// Runs every lease slice of `cuts` (a sorted boundary list including 0
// and the total) to completion and merges.
CheckResult run_partition(const kgd::SolutionGraph& sg, int max_faults,
                          PruneMode prune,
                          const std::vector<std::uint64_t>& cuts,
                          util::ThreadPool* pool = nullptr) {
  std::vector<LeaseResult> parts;
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    CheckOptions opts;
    opts.prune = prune;
    opts.pool = pool;
    CheckSession session(sg, CheckRequest::exhaustive_slots(
                                 max_faults, cuts[i], cuts[i + 1], opts));
    session.run();
    LeaseResult part;
    part.begin = session.slot_begin();
    part.end = session.slot_end();
    part.result = session.result();
    parts.push_back(std::move(part));
  }
  return merge_lease_results(sg, max_faults, prune, std::move(parts));
}

TEST(LeaseSlicing, ArbitraryPartitionsMergeIdentically) {
  struct Case {
    kgd::SolutionGraph sg;
    int max_faults;
  };
  std::vector<Case> cases;
  cases.push_back({*kgd::build_solution(6, 2), 2});
  cases.push_back({*kgd::build_solution(3, 4), 4});
  for (const Case& c : cases) {
    for (const PruneMode prune : {PruneMode::kAuto, PruneMode::kOff}) {
      const std::uint64_t total = orbit_total(c.sg, c.max_faults, prune);
      ASSERT_GE(total, 8u);
      CheckOptions opts;
      opts.prune = prune;
      CheckSession full(
          c.sg, CheckRequest::exhaustive(c.max_faults, opts));
      full.run();
      const std::vector<std::vector<std::uint64_t>> partitions = {
          {0, total},                                  // single lease
          {0, total / 2, total},                       // even halves
          {0, 1, total - 1, total},                    // degenerate edges
          {0, total / 7 + 1, total / 3, total / 2, total},  // ragged
      };
      for (const auto& cuts : partitions) {
        const std::string tag =
            c.sg.name() + " m=" + std::to_string(c.max_faults) +
            " slices=" + std::to_string(cuts.size() - 1) +
            (prune == PruneMode::kAuto ? " auto" : " off");
        expect_identical(full.result(),
                         run_partition(c.sg, c.max_faults, prune, cuts),
                         tag);
      }
    }
  }
}

TEST(LeaseSlicing, FailingInstanceReportsLowestIndexAcrossAnyPartition) {
  const auto sg = baseline::make_spare_path(6, 2);
  CheckSession full(sg, CheckRequest::exhaustive(2));
  full.run();
  const CheckResult reference = full.result();
  ASSERT_FALSE(reference.holds);
  ASSERT_TRUE(reference.counterexample_index.has_value());
  const std::uint64_t total = orbit_total(sg, 2, PruneMode::kAuto);
  const std::vector<std::vector<std::uint64_t>> partitions = {
      {0, total / 2, total},
      {0, total / 5, 2 * total / 5, 4 * total / 5, total},
  };
  for (const auto& cuts : partitions) {
    expect_identical(reference,
                     run_partition(sg, 2, PruneMode::kAuto, cuts),
                     "failing slices=" + std::to_string(cuts.size() - 1));
  }
}

TEST(LeaseSlicing, PooledLeaseSessionsMergeIdentically) {
  // Same differential through a ThreadPool — the configuration the TSan
  // CI lane runs to prove the lease slicing has no data races.
  const auto sg = kgd::build_solution(3, 4);
  CheckSession full(*sg, CheckRequest::exhaustive(4));
  full.run();
  util::ThreadPool pool(3);
  const std::uint64_t total = orbit_total(*sg, 4, PruneMode::kAuto);
  expect_identical(
      full.result(),
      run_partition(*sg, 4, PruneMode::kAuto,
                    {0, total / 3, 2 * total / 3, total}, &pool),
      "pooled");
}

TEST(LeaseSlicing, TruncateMidSweepMergesWithStolenTail) {
  // The steal handshake's worker half: advance partway, surrender the
  // unswept tail, finish the shortened lease; a separate lease covers
  // the tail. The reshaped partition must merge bit-identically — on a
  // holding instance and on a failing one (counterexample in either
  // side of the cut).
  const auto sg = kgd::build_solution(3, 4);
  CheckSession full(*sg, CheckRequest::exhaustive(4));
  full.run();
  const std::uint64_t total = orbit_total(*sg, 4, PruneMode::kAuto);
  ASSERT_GE(total, 64u);

  CheckSession victim(
      *sg, CheckRequest::exhaustive_slots(4, 0, total));
  victim.advance(total / 4);
  ASSERT_FALSE(victim.done());
  const std::uint64_t cut = total / 2;
  ASSERT_TRUE(victim.truncate(cut));
  EXPECT_EQ(victim.slot_end(), cut);
  victim.run();

  CheckSession thief(
      *sg, CheckRequest::exhaustive_slots(4, cut, total));
  thief.run();

  std::vector<LeaseResult> parts;
  parts.push_back({victim.slot_begin(), victim.slot_end(), victim.result()});
  parts.push_back({thief.slot_begin(), thief.slot_end(), thief.result()});
  expect_identical(
      full.result(),
      merge_lease_results(*sg, 4, PruneMode::kAuto, std::move(parts)),
      "truncated steal");
}

TEST(LeaseSlicing, TruncateRefusesIllegalCuts) {
  const auto sg = kgd::build_solution(3, 4);
  const std::uint64_t total = orbit_total(*sg, 4, PruneMode::kAuto);
  CheckSession session(
      *sg, CheckRequest::exhaustive_slots(4, 0, total));
  session.advance(16);
  // Behind the sweep position, growing the range, and no-op in-place.
  EXPECT_FALSE(session.truncate(8));
  EXPECT_FALSE(session.truncate(total + 1));
  EXPECT_TRUE(session.truncate(total));  // new_end == end: legal no-op
  EXPECT_EQ(session.slot_end(), total);
  // Plain (non-lease) exhaustive sessions cannot be truncated.
  CheckSession plain(*sg, CheckRequest::exhaustive(4));
  plain.advance(1);
  EXPECT_FALSE(plain.truncate(total / 2));
}

TEST(LeaseSlicing, CursorSurvivesTruncationAndReassignment) {
  // Fingerprint binds slot_begin but not slot_end, so a cursor saved
  // before a truncation restores into the shortened lease — the exact
  // sequence of a worker dying after its lease was stolen from.
  const auto sg = kgd::build_solution(3, 4);
  CheckSession full(*sg, CheckRequest::exhaustive(4));
  full.run();
  const std::uint64_t total = orbit_total(*sg, 4, PruneMode::kAuto);
  const std::uint64_t cut = total / 2;

  CheckSession first(
      *sg, CheckRequest::exhaustive_slots(4, 0, total));
  first.advance(total / 8);
  std::ostringstream cursor;
  first.save(cursor);

  // Reassigned to a new session whose range was truncated meanwhile.
  CheckSession second(
      *sg, CheckRequest::exhaustive_slots(4, 0, cut));
  std::istringstream in(cursor.str());
  second.restore(in);
  EXPECT_EQ(second.items_done(), first.items_done());
  second.run();

  CheckSession tail(
      *sg, CheckRequest::exhaustive_slots(4, cut, total));
  tail.run();
  std::vector<LeaseResult> parts;
  parts.push_back({0, cut, second.result()});
  parts.push_back({cut, total, tail.result()});
  expect_identical(
      full.result(),
      merge_lease_results(*sg, 4, PruneMode::kAuto, std::move(parts)),
      "cursor reassignment");
}

TEST(LeaseSlicing, MergeValidatesTheTiling) {
  const auto sg = kgd::build_solution(6, 2);
  const std::uint64_t total = orbit_total(*sg, 2, PruneMode::kAuto);
  auto slice = [&](std::uint64_t b, std::uint64_t e) {
    CheckSession s(*sg, CheckRequest::exhaustive_slots(2, b, e));
    s.run();
    return LeaseResult{b, e, s.result()};
  };
  const LeaseResult head = slice(0, total / 2);
  const LeaseResult tail = slice(total / 2, total);
  // Gap (missing head), overlap, and short coverage all throw.
  EXPECT_THROW(merge_lease_results(*sg, 2, PruneMode::kAuto, {tail}),
               std::invalid_argument);
  EXPECT_THROW(
      merge_lease_results(*sg, 2, PruneMode::kAuto,
                          {head, slice(total / 2 - 1, total)}),
      std::invalid_argument);
  EXPECT_THROW(
      merge_lease_results(*sg, 2, PruneMode::kAuto,
                          {head, slice(total / 2, total - 1)}),
      std::invalid_argument);
  EXPECT_THROW(merge_lease_results(*sg, 2, PruneMode::kAuto, {}),
               std::invalid_argument);
  // An exactly-duplicated lease (a grant replayed past the fence) is an
  // overlap too — the merge must refuse to double-count it.
  EXPECT_THROW(
      merge_lease_results(*sg, 2, PruneMode::kAuto, {head, head, tail}),
      std::invalid_argument);
  // Order independence: the merge sorts by begin.
  expect_identical(
      merge_lease_results(*sg, 2, PruneMode::kAuto, {tail, head}),
      merge_lease_results(*sg, 2, PruneMode::kAuto, {head, tail}),
      "order independence");
}

TEST(LeaseSlicing, ResumedRunRetilesTheRemainderBitIdentically) {
  // The crash-resume shape: some leases finished before the crash and
  // keep their checkpointed results verbatim; the orphaned middle lease
  // resumes from its persisted cursor and is later truncated by a
  // post-resume steal — so the final tiling mixes pre-crash and
  // post-resume boundaries. The merge must not care.
  const auto sg = kgd::build_solution(3, 4);
  CheckSession full(*sg, CheckRequest::exhaustive(4));
  full.run();
  const std::uint64_t total = orbit_total(*sg, 4, PruneMode::kAuto);
  ASSERT_GE(total, 16u);
  const std::uint64_t a = total / 4;      // [0, a) done pre-crash
  const std::uint64_t b = 3 * total / 4;  // [b, total) done pre-crash
  const std::uint64_t m = (a + b) / 2;    // post-resume steal boundary

  auto slice = [&](std::uint64_t begin, std::uint64_t end) {
    CheckSession s(*sg, CheckRequest::exhaustive_slots(4, begin, end));
    s.run();
    return LeaseResult{begin, end, s.result()};
  };

  CheckSession orphan(*sg, CheckRequest::exhaustive_slots(4, a, b));
  orphan.advance((m - a) / 2);  // crash site: cursor short of the cut
  std::ostringstream cursor;
  orphan.save(cursor);
  CheckSession resumed(*sg, CheckRequest::exhaustive_slots(4, a, m));
  std::istringstream in(cursor.str());
  resumed.restore(in);
  resumed.run();

  std::vector<LeaseResult> parts;
  parts.push_back(slice(0, a));
  parts.push_back({a, m, resumed.result()});
  parts.push_back(slice(m, b));
  parts.push_back(slice(b, total));
  expect_identical(
      full.result(),
      merge_lease_results(*sg, 4, PruneMode::kAuto, std::move(parts)),
      "resumed re-tiling");
}

TEST(LeaseSlicing, SlotRequestsRejectMalformedRanges) {
  const auto sg = kgd::build_solution(6, 2);
  const std::uint64_t total = orbit_total(*sg, 2, PruneMode::kAuto);
  EXPECT_THROW(
      CheckSession(*sg, CheckRequest::exhaustive_slots(2, 5, 4)),
      std::invalid_argument);
  EXPECT_THROW(
      CheckSession(*sg, CheckRequest::exhaustive_slots(2, 0, total + 1)),
      std::invalid_argument);
  // Slot ranges and shard specs are mutually exclusive.
  CheckRequest mixed = CheckRequest::exhaustive_slots(2, 0, total);
  mixed.shard_index = 0;
  mixed.shard_count = 2;
  EXPECT_THROW(CheckSession(*sg, mixed), std::invalid_argument);
  // Sampled mode has no slot space.
  CheckRequest sampled = CheckRequest::sampled(2, 10, 1);
  sampled.has_slots = true;
  sampled.slot_end = 1;
  EXPECT_THROW(CheckSession(*sg, sampled), std::invalid_argument);
}

}  // namespace
}  // namespace kgdp::verify
