// BitAdjacency is the solver's word-parallel view of a Graph; it must
// agree with the span-based adjacency on every graph shape (empty,
// single-node, exactly 64 nodes, multi-word rows) and keep its alignment
// and reuse guarantees, or the Hamiltonian fast path silently diverges
// from the reference solver.
#include "graph/bit_adjacency.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace kgdp::graph {
namespace {

Graph random_graph(int n, double p, util::Rng& rng) {
  Graph g(n);
  for (int u = 0; u < n; ++u) {
    for (int v = u + 1; v < n; ++v) {
      if (rng.next_double() < p) g.add_edge(u, v);
    }
  }
  return g;
}

// Every (u,v) bit equals has_edge; degrees match; iterating a row's set
// bits ascending equals the sorted neighbor span.
void expect_agrees(const Graph& g, const BitAdjacency& adj) {
  ASSERT_EQ(adj.num_nodes(), g.num_nodes());
  for (int u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(adj.degree(u), g.degree(u)) << "node " << u;
    std::vector<Node> from_bits;
    const auto row = adj.row(u);
    for (std::size_t w = 0; w < row.size(); ++w) {
      std::uint64_t word = row[w];
      while (word != 0) {
        const int bit = std::countr_zero(word);
        word &= word - 1;
        from_bits.push_back(static_cast<Node>(64 * w + bit));
      }
    }
    const auto span = g.neighbors(u);
    ASSERT_EQ(from_bits, std::vector<Node>(span.begin(), span.end()))
        << "node " << u;
    for (int v = 0; v < g.num_nodes(); ++v) {
      EXPECT_EQ(adj.test(u, v), g.has_edge(u, v)) << u << "," << v;
    }
  }
}

TEST(BitAdjacency, MatchesSpanIterationOnRandomGraphs) {
  util::Rng rng(7);
  for (const int n : {1, 2, 7, 31, 63, 64, 65, 130}) {
    for (const double p : {0.0, 0.15, 0.5, 1.0}) {
      const Graph g = random_graph(n, p, rng);
      const BitAdjacency adj(g);
      expect_agrees(g, adj);
    }
  }
}

TEST(BitAdjacency, EmptyGraph) {
  const Graph g(0);
  const BitAdjacency adj(g);
  EXPECT_EQ(adj.num_nodes(), 0);
  EXPECT_TRUE(adj.rows64().empty());
}

TEST(BitAdjacency, SmallGraphsUseSingleWordRows) {
  const Graph g = make_cycle(64);
  const BitAdjacency adj(g);
  EXPECT_EQ(adj.row_words(), 1);
  ASSERT_EQ(adj.rows64().size(), 64u);
  for (int v = 0; v < 64; ++v) {
    EXPECT_EQ(std::popcount(adj.row64(v)), 2) << v;
    EXPECT_TRUE((adj.row64(v) >> ((v + 1) % 64)) & 1u) << v;
  }
}

TEST(BitAdjacency, LargeGraphRowsAreCacheAligned) {
  const Graph g = make_cycle(130);  // 3 words/row -> padded stride
  const BitAdjacency adj(g);
  EXPECT_EQ(adj.row_words() % 8, 0);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(adj.row(0).data()) % 64, 0u);
  expect_agrees(g, adj);
}

TEST(BitAdjacency, RebuildReusesAllocationAndReflectsNewGraph) {
  BitAdjacency adj(make_complete(40));
  const std::size_t bytes_before = adj.scratch_bytes();
  adj.rebuild(make_path(12));  // smaller: no growth
  EXPECT_EQ(adj.scratch_bytes(), bytes_before);
  expect_agrees(make_path(12), adj);
  // Stale bits from the larger graph must be gone.
  EXPECT_EQ(adj.degree(0), 1);
  EXPECT_EQ(adj.degree(5), 2);
}

}  // namespace
}  // namespace kgdp::graph
