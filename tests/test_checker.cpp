#include "verify/checker.hpp"

#include <gtest/gtest.h>

#include "baseline/naive.hpp"
#include "fault/enumerator.hpp"
#include "kgd/factory.hpp"
#include "kgd/small_n.hpp"

namespace kgdp::verify {
namespace {

TEST(Checker, CertifiesKnownGoodGraphs) {
  const auto res = run_check(kgd::make_g1k(2), CheckRequest::exhaustive(2));
  EXPECT_TRUE(res.holds);
  EXPECT_TRUE(res.exhaustive);
  EXPECT_FALSE(res.counterexample.has_value());
  EXPECT_EQ(res.fault_sets_checked,
            fault::FaultEnumerator(9, 2).total());
  // On these instance sizes the solver must never punt: a certificate
  // with unknowns would not be a certificate.
  EXPECT_EQ(res.solver_unknowns, 0u);
  // Orbit pruning is on by default and must account for every fault set
  // it skipped.
  EXPECT_EQ(res.fault_sets_solved + res.orbits_pruned,
            res.fault_sets_checked);
}

TEST(Checker, FindsCounterexampleOnSparePath) {
  // The naive spare path dies on any interior processor fault.
  const auto sg = baseline::make_spare_path(4, 2);
  const auto res = run_check(sg, CheckRequest::exhaustive(2));
  EXPECT_FALSE(res.holds);
  EXPECT_EQ(res.solver_unknowns, 0u);
  ASSERT_TRUE(res.counterexample.has_value());
  // And the counterexample really is one.
  const auto out = find_pipeline(sg, *res.counterexample);
  EXPECT_EQ(out.status, SolveStatus::kNone);
}

TEST(Checker, CounterexampleIsLowestIndexDeterministic) {
  const auto sg = baseline::make_spare_path(4, 2);
  const auto res1 = run_check(sg, CheckRequest::exhaustive(2));
  const auto res2 = run_check(sg, CheckRequest::exhaustive(2));
  ASSERT_TRUE(res1.counterexample && res2.counterexample);
  EXPECT_EQ(res1.counterexample->nodes(), res2.counterexample->nodes());
}

TEST(Checker, ParallelMatchesSequential) {
  util::ThreadPool pool(4);
  CheckOptions seq;
  CheckOptions par;
  par.pool = &pool;
  for (auto [n, k] : std::vector<std::pair<int, int>>{{4, 2}, {5, 2},
                                                      {6, 1}, {3, 3}}) {
    const auto sg = kgd::build_solution(n, k);
    ASSERT_TRUE(sg);
    const auto a = run_check(*sg, CheckRequest::exhaustive(k, seq));
    const auto b = run_check(*sg, CheckRequest::exhaustive(k, par));
    EXPECT_EQ(a.holds, b.holds) << sg->name();
    EXPECT_EQ(a.fault_sets_checked, b.fault_sets_checked) << sg->name();
    EXPECT_EQ(a.solver_unknowns, 0u) << sg->name();
    EXPECT_EQ(b.solver_unknowns, 0u) << sg->name();
  }
  // Negative case determinism under parallelism.
  const auto bad = baseline::make_spare_path(4, 2);
  const auto a = run_check(bad, CheckRequest::exhaustive(2, seq));
  const auto b = run_check(bad, CheckRequest::exhaustive(2, par));
  ASSERT_TRUE(a.counterexample && b.counterexample);
  EXPECT_EQ(a.counterexample->nodes(), b.counterexample->nodes());
}

TEST(Checker, ParallelReportsPerWorkerCounters) {
  // The pool path at k >= 2: one solver per worker, per-worker solve
  // times, and steal accounting all surface through CheckResult.
  util::ThreadPool pool(3);
  CheckOptions par;
  par.pool = &pool;
  const auto sg = kgd::build_solution(8, 2);
  ASSERT_TRUE(sg);
  const auto res = run_check(*sg, CheckRequest::exhaustive(2, par));
  EXPECT_TRUE(res.holds);
  EXPECT_EQ(res.solver_unknowns, 0u);
  EXPECT_EQ(res.worker_solve_seconds.size(), pool.thread_count());
  double busy = 0.0;
  for (double s : res.worker_solve_seconds) {
    EXPECT_GE(s, 0.0);
    busy += s;
  }
  EXPECT_GT(busy, 0.0);  // somebody actually solved something
  // Steals are schedule-dependent, but the counter must at least be
  // bounded by the amount of work available.
  EXPECT_LE(res.steal_count, res.fault_sets_checked);
}

TEST(Checker, PruneOffMatchesPruneAuto) {
  CheckOptions off;
  off.prune = PruneMode::kOff;
  for (auto [n, k] : std::vector<std::pair<int, int>>{{1, 3}, {3, 3},
                                                      {6, 2}}) {
    const auto sg = kgd::build_solution(n, k);
    ASSERT_TRUE(sg);
    const auto pruned = run_check(*sg, CheckRequest::exhaustive(k));  // default: kAuto
    const auto plain = run_check(*sg, CheckRequest::exhaustive(k, off));
    EXPECT_EQ(pruned.holds, plain.holds) << sg->name();
    EXPECT_EQ(pruned.fault_sets_checked, plain.fault_sets_checked)
        << sg->name();
    EXPECT_EQ(plain.orbits_pruned, 0u) << sg->name();
    EXPECT_EQ(plain.automorphism_order, 1u) << sg->name();
  }
}

TEST(Checker, ZeroFaultBudgetChecksOnlyEmptySet) {
  const auto res = run_check(kgd::make_g1k(1), CheckRequest::exhaustive(0));
  EXPECT_TRUE(res.holds);
  EXPECT_EQ(res.fault_sets_checked, 1u);
}

TEST(Checker, SampledFindsObviousFlaws) {
  const auto sg = baseline::make_spare_path(6, 2);
  const auto res = run_check(sg, CheckRequest::sampled(2, /*samples=*/200, /*seed=*/1));
  EXPECT_FALSE(res.holds);
  EXPECT_TRUE(res.counterexample.has_value());
}

TEST(Checker, SampledPassesOnGoodGraphs) {
  const auto sg = kgd::build_solution(9, 2);
  ASSERT_TRUE(sg);
  const auto res = run_check(*sg, CheckRequest::sampled(2, 200, 7));
  EXPECT_TRUE(res.holds);
  EXPECT_FALSE(res.exhaustive);  // sampling never claims exhaustiveness
}

TEST(Checker, BeyondDesignBudgetGraphsMayFail) {
  // G(n,k) checked at k+1 faults: killing all k+1 input terminals is a
  // guaranteed counterexample, so the checker must find SOME failure.
  const auto sg = kgd::build_solution(5, 2);
  ASSERT_TRUE(sg);
  const auto res = run_check(*sg, CheckRequest::exhaustive(3));
  EXPECT_FALSE(res.holds);
}

TEST(Checker, CompleteDesignIsGd) {
  const auto res = run_check(baseline::make_complete_design(6, 2), CheckRequest::exhaustive(2));
  EXPECT_TRUE(res.holds);
}

// The legacy entry points are frozen shims over CheckRequest/run_check;
// until they are removed they must answer bit-identically on every
// deterministic field.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(Checker, DeprecatedShimsMatchRunCheckBitIdentically) {
  const auto compare = [](const CheckResult& a, const CheckResult& b) {
    EXPECT_EQ(a.holds, b.holds);
    EXPECT_EQ(a.exhaustive, b.exhaustive);
    EXPECT_EQ(a.fault_sets_checked, b.fault_sets_checked);
    EXPECT_EQ(a.fault_sets_solved, b.fault_sets_solved);
    EXPECT_EQ(a.orbits_pruned, b.orbits_pruned);
    EXPECT_EQ(a.solver_unknowns, b.solver_unknowns);
    EXPECT_EQ(a.counterexample.has_value(), b.counterexample.has_value());
    if (a.counterexample.has_value() && b.counterexample.has_value()) {
      EXPECT_EQ(a.counterexample->to_string(), b.counterexample->to_string());
    }
  };

  const auto sg = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg.has_value());
  compare(check_gd_exhaustive(*sg, 2), run_check(*sg, CheckRequest::exhaustive(2)));
  compare(check_gd_sampled(*sg, 3, 200, /*seed=*/7),
          run_check(*sg, CheckRequest::sampled(3, 200, /*seed=*/7)));

  // Options pass through the shim unchanged.
  CheckOptions opts;
  opts.prune = PruneMode::kOff;
  compare(check_gd_exhaustive(*sg, 2, opts),
          run_check(*sg, CheckRequest::exhaustive(2, opts)));
}
#pragma GCC diagnostic pop

}  // namespace
}  // namespace kgdp::verify
