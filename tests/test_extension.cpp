#include "kgd/extension.hpp"

#include <gtest/gtest.h>

#include "kgd/small_n.hpp"
#include "verify/checker.hpp"

namespace kgdp::kgd {
namespace {

TEST(Extension, AddsKPlusOneProcessors) {
  for (int k = 1; k <= 4; ++k) {
    const SolutionGraph base = make_g1k(k);
    const SolutionGraph ext = extend_once(base);
    EXPECT_EQ(ext.n(), base.n() + k + 1);
    EXPECT_EQ(ext.k(), k);
    EXPECT_EQ(ext.num_processors(), base.num_processors() + k + 1);
    EXPECT_EQ(ext.num_inputs(), k + 1);
    EXPECT_EQ(ext.num_outputs(), k + 1);
  }
}

TEST(Extension, PreservesStandardness) {
  for (int k = 1; k <= 4; ++k) {
    EXPECT_TRUE(extend_once(make_g2k(k)).is_standard());
  }
}

TEST(Extension, PreservesMaxDegree) {
  // Lemma 3.6's key property: no node exceeds the base's max degree.
  for (int k = 1; k <= 4; ++k) {
    const SolutionGraph base = make_g1k(k);
    EXPECT_EQ(extend_once(base).max_processor_degree(),
              base.max_processor_degree());
    const SolutionGraph base2 = make_g2k(k);
    EXPECT_EQ(extend_once(base2).max_processor_degree(),
              base2.max_processor_degree());
  }
}

TEST(Extension, OldInputsBecomeProcessorClique) {
  const SolutionGraph base = make_g1k(2);
  const auto old_inputs = base.inputs();
  const SolutionGraph ext = extend_once(base);
  for (std::size_t i = 0; i < old_inputs.size(); ++i) {
    EXPECT_EQ(ext.role(old_inputs[i]), Role::kProcessor);
    for (std::size_t j = i + 1; j < old_inputs.size(); ++j) {
      EXPECT_TRUE(ext.graph().has_edge(old_inputs[i], old_inputs[j]));
    }
  }
}

TEST(Extension, NewTerminalsAttachOneToOne) {
  const SolutionGraph base = make_g1k(2);
  const SolutionGraph ext = extend_once(base);
  for (Node t : ext.inputs()) {
    EXPECT_EQ(ext.graph().degree(t), 1);
    const Node p = ext.graph().neighbors(t)[0];
    EXPECT_EQ(base.role(p), Role::kInput);  // attached to a relabeled node
  }
}

TEST(Extension, PreservesGracefulDegradationLemma36) {
  // The heart of Lemma 3.6, checked exhaustively on a grid.
  for (int k = 1; k <= 4; ++k) {
    for (int times = 1; times <= (k <= 2 ? 2 : 1); ++times) {
      const SolutionGraph ext = extend(make_g1k(k), times);
      const auto res = verify::run_check(ext, verify::CheckRequest::exhaustive(k));
      EXPECT_TRUE(res.holds)
          << "k=" << k << " times=" << times << " cex "
          << (res.counterexample ? res.counterexample->to_string() : "");
    }
  }
}

TEST(Extension, G2kBasesAlsoExtendGracefully) {
  for (int k = 1; k <= 3; ++k) {
    const SolutionGraph ext = extend_once(make_g2k(k));
    EXPECT_TRUE(verify::run_check(ext, verify::CheckRequest::exhaustive(k)).holds) << "k=" << k;
  }
}

TEST(Extension, ZeroTimesIsIdentity) {
  const SolutionGraph base = make_g1k(2);
  const SolutionGraph same = extend(base, 0);
  EXPECT_EQ(same.num_nodes(), base.num_nodes());
  EXPECT_EQ(same.graph(), base.graph());
}

TEST(Extension, CorollaryThreeEight) {
  // Corollary 3.8: solutions exist for n = (k+1)l + 1 with degree k+2.
  for (int k = 1; k <= 3; ++k) {
    for (int l = 0; l <= 2; ++l) {
      const SolutionGraph g = extend(make_g1k(k), l);
      EXPECT_EQ(g.n(), (k + 1) * l + 1);
      EXPECT_EQ(g.max_processor_degree(), k + 2);
    }
  }
}

}  // namespace
}  // namespace kgdp::kgd
