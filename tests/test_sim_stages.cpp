#include "sim/stages_dsp.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace kgdp::sim {
namespace {

TEST(PassThroughStage, Identity) {
  PassThrough s;
  const Chunk in = {1.0f, -2.0f, 3.5f};
  EXPECT_EQ(s.process(in), in);
}

TEST(FirFilterStage, ImpulseResponseEqualsTaps) {
  FirFilter fir({0.5, 0.25, 0.125});
  Chunk impulse = {1.0f, 0.0f, 0.0f, 0.0f};
  const Chunk out = fir.process(impulse);
  ASSERT_EQ(out.size(), 4u);
  EXPECT_FLOAT_EQ(out[0], 0.5f);
  EXPECT_FLOAT_EQ(out[1], 0.25f);
  EXPECT_FLOAT_EQ(out[2], 0.125f);
  EXPECT_FLOAT_EQ(out[3], 0.0f);
}

TEST(FirFilterStage, StatePersistsAcrossChunks) {
  FirFilter a({0.5, 0.5});
  FirFilter b({0.5, 0.5});
  const Chunk whole = {1, 2, 3, 4, 5, 6};
  const Chunk ref = a.process(whole);
  Chunk split = b.process({1, 2, 3});
  const Chunk tail = b.process({4, 5, 6});
  split.insert(split.end(), tail.begin(), tail.end());
  EXPECT_EQ(split, ref);
}

TEST(FirFilterStage, ResetClearsHistory) {
  FirFilter f({1.0, 1.0});
  f.process({5.0f});
  f.reset();
  const Chunk out = f.process({1.0f});
  EXPECT_FLOAT_EQ(out[0], 1.0f);  // no leftover 5.0
}

TEST(FirFilterStage, CostScalesWithTaps) {
  EXPECT_DOUBLE_EQ(FirFilter({1, 2, 3, 4}).cost_per_sample(), 4.0);
}

TEST(IirBiquadStage, DcGainMatchesCoefficients) {
  // y/x at DC = (b0+b1+b2)/(1+a1+a2).
  IirBiquad iir(0.2, 0.2, 0.2, -0.1, 0.05);
  Chunk step(2000, 1.0f);
  const Chunk out = iir.process(step);
  const double expected = (0.2 + 0.2 + 0.2) / (1.0 - 0.1 + 0.05);
  EXPECT_NEAR(out.back(), expected, 1e-4);
}

TEST(IirBiquadStage, StatePersistsAcrossChunks) {
  IirBiquad a(0.3, 0.1, 0.05, -0.2, 0.1);
  IirBiquad b(0.3, 0.1, 0.05, -0.2, 0.1);
  Chunk whole;
  for (int i = 0; i < 40; ++i) whole.push_back(std::sin(i * 0.3f));
  const Chunk ref = a.process(whole);
  Chunk got = b.process(Chunk(whole.begin(), whole.begin() + 17));
  const Chunk tail = b.process(Chunk(whole.begin() + 17, whole.end()));
  got.insert(got.end(), tail.begin(), tail.end());
  ASSERT_EQ(got.size(), ref.size());
  for (std::size_t i = 0; i < ref.size(); ++i) {
    EXPECT_FLOAT_EQ(got[i], ref[i]) << i;
  }
}

TEST(SubsampleStage, KeepsEveryNth) {
  Subsample s(3);
  const Chunk out = s.process({0, 1, 2, 3, 4, 5, 6});
  EXPECT_EQ(out, (Chunk{0, 3, 6}));
}

TEST(SubsampleStage, PhaseContinuesAcrossChunks) {
  Subsample s(2);
  Chunk out = s.process({0, 1, 2});   // keeps 0, 2
  const Chunk out2 = s.process({3, 4, 5});  // phase=1 -> keeps 4
  out.insert(out.end(), out2.begin(), out2.end());
  EXPECT_EQ(out, (Chunk{0, 2, 4}));
}

TEST(SubsampleStage, FactorOneIsIdentity) {
  Subsample s(1);
  const Chunk in = {1, 2, 3};
  EXPECT_EQ(s.process(in), in);
}

TEST(RescaleStage, AffineTransform) {
  Rescale r(2.0, 1.0);
  EXPECT_EQ(r.process({0.0f, 1.0f, -1.0f}), (Chunk{1.0f, 3.0f, -1.0f}));
}

TEST(QuantizeStage, SnapsToGridAndClamps) {
  Quantize q(5, 0.0, 4.0);  // grid step 1.0
  const Chunk out = q.process({0.4f, 2.6f, -3.0f, 9.0f});
  EXPECT_EQ(out, (Chunk{0.0f, 3.0f, 0.0f, 4.0f}));
}

TEST(DeltaEncodeStage, FirstDifference) {
  DeltaEncode d;
  EXPECT_EQ(d.process({1, 3, 6, 10}), (Chunk{1, 2, 3, 4}));
}

TEST(DeltaEncodeStage, CloneCopiesState) {
  DeltaEncode d;
  d.process({5});
  auto c = d.clone();
  EXPECT_EQ(c->process({7}), (Chunk{2}));  // prev = 5 carried over
}

TEST(StageClone, CloneIsIndependent) {
  FirFilter f({1.0, 1.0});
  f.process({9.0f});
  auto c = f.clone();  // clone gets fresh construction from taps
  // Cloned filter re-created from taps starts with captured state?
  // FirFilter::clone() rebuilds from taps: fresh history by design.
  const Chunk out = c->process({1.0f});
  EXPECT_FLOAT_EQ(out[0], 1.0f);
}

TEST(VideoPipeline, HalvesRateAndStaysDeterministic) {
  StageList p1 = make_video_pipeline();
  StageList p2 = make_video_pipeline();
  const Chunk sig = make_test_signal(1000, 42);
  const Chunk o1 = run_sequential(p1, sig);
  const Chunk o2 = run_sequential(p2, sig);
  EXPECT_EQ(o1, o2);
  EXPECT_EQ(o1.size(), 500u);  // 2:1 subsample
}

TEST(VideoPipeline, HintPadsWithPassthrough) {
  const StageList p = make_video_pipeline(9);
  EXPECT_EQ(p.size(), 9u);
  EXPECT_EQ(p.back()->name(), "passthrough");
}

TEST(TestSignal, DeterministicPerSeed) {
  EXPECT_EQ(make_test_signal(64, 1), make_test_signal(64, 1));
  EXPECT_NE(make_test_signal(64, 1), make_test_signal(64, 2));
}

TEST(CloneStages, DeepCopies) {
  StageList a = make_video_pipeline();
  StageList b = clone_stages(a);
  ASSERT_EQ(a.size(), b.size());
  const Chunk sig = make_test_signal(100, 3);
  EXPECT_EQ(run_sequential(a, sig), run_sequential(b, sig));
}

}  // namespace
}  // namespace kgdp::sim
