#include "verify/reliability.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/naive.hpp"
#include "kgd/factory.hpp"

namespace kgdp::verify {
namespace {

TEST(Reliability, ZeroFailureProbabilityIsPerfect) {
  const auto sg = kgd::build_solution(8, 2);
  ASSERT_TRUE(sg);
  const auto pt = estimate_reliability(*sg, 0.0, 50, 1);
  EXPECT_DOUBLE_EQ(pt.survival, 1.0);
  EXPECT_DOUBLE_EQ(pt.mean_utilization, 1.0);
  EXPECT_DOUBLE_EQ(pt.mean_faults, 0.0);
}

TEST(Reliability, DeterministicForFixedSeed) {
  const auto sg = kgd::build_solution(8, 2);
  ASSERT_TRUE(sg);
  const auto a = estimate_reliability(*sg, 0.1, 200, 9);
  const auto b = estimate_reliability(*sg, 0.1, 200, 9);
  EXPECT_EQ(a.survival, b.survival);
  EXPECT_EQ(a.mean_utilization, b.mean_utilization);
}

TEST(Reliability, DecreasesWithFailureProbability) {
  const auto sg = kgd::build_solution(8, 2);
  ASSERT_TRUE(sg);
  const auto low = estimate_reliability(*sg, 0.02, 400, 3);
  const auto high = estimate_reliability(*sg, 0.35, 400, 3);
  EXPECT_GT(low.survival, high.survival);
}

TEST(Reliability, GdDesignMeetsBinomialFloor) {
  // A certified k-GD graph survives every pattern with <= k faults, so
  // its R(p) must sit at or above P(Binomial(|V|, p) <= k), modulo
  // sampling error (it can exceed the floor: some > k patterns survive
  // too).
  const auto sg = kgd::build_solution(8, 2);
  ASSERT_TRUE(sg);
  const double p = 0.05;
  const auto pt = estimate_reliability(*sg, p, 2000, 4);
  const double floor = binomial_survival_floor(sg->num_nodes(), 2, p);
  EXPECT_GE(pt.survival, floor - 0.03);  // 3-sigma-ish sampling slack
}

TEST(Reliability, SparePathFallsBelowTheFloor) {
  const auto frail = baseline::make_spare_path(8, 2);
  const double p = 0.05;
  const auto pt = estimate_reliability(frail, p, 2000, 5);
  const double floor = binomial_survival_floor(frail.num_nodes(), 2, p);
  EXPECT_LT(pt.survival, floor - 0.05);
}

TEST(Reliability, CurveSweepsAllPoints) {
  const auto sg = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg);
  const auto curve = reliability_curve(*sg, {0.0, 0.05, 0.1}, 100, 11);
  ASSERT_EQ(curve.size(), 3u);
  EXPECT_DOUBLE_EQ(curve[0].p, 0.0);
  EXPECT_DOUBLE_EQ(curve[2].p, 0.1);
  EXPECT_DOUBLE_EQ(curve[0].survival, 1.0);
}

TEST(BinomialFloor, MatchesHandComputedValues) {
  // n=3, k=1, p=0.5: P(X<=1) = (1+3)/8 = 0.5.
  EXPECT_NEAR(binomial_survival_floor(3, 1, 0.5), 0.5, 1e-12);
  // k >= n: always 1.
  EXPECT_NEAR(binomial_survival_floor(4, 4, 0.3), 1.0, 1e-12);
  // p tiny: essentially 1.
  EXPECT_NEAR(binomial_survival_floor(30, 2, 1e-6), 1.0, 1e-9);
}

TEST(BinomialFloor, MonotoneInK) {
  for (int k = 0; k < 5; ++k) {
    EXPECT_LE(binomial_survival_floor(20, k, 0.1),
              binomial_survival_floor(20, k + 1, 0.1));
  }
}

TEST(Reliability, MeanFaultsTracksExpectation) {
  const auto sg = kgd::build_solution(8, 2);
  ASSERT_TRUE(sg);
  const double p = 0.1;
  const auto pt = estimate_reliability(*sg, p, 3000, 6);
  EXPECT_NEAR(pt.mean_faults, p * sg->num_nodes(), 0.15);
}

}  // namespace
}  // namespace kgdp::verify
