// Orbit-canonical verdict cache: canonical keys collapse isomorphic
// fault sets, cached runs return bit-identical verdicts (including the
// lowest-index counterexample), and bounded eviction keeps the cache a
// pure accelerator.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "baseline/naive.hpp"
#include "fault/canonical.hpp"
#include "graph/automorphism.hpp"
#include "kgd/factory.hpp"
#include "util/rng.hpp"
#include "verify/checker.hpp"
#include "verify/verdict_cache.hpp"

namespace kgdp::verify {
namespace {

using graph::AutomorphismList;
using kgd::SolutionGraph;

std::uint64_t apply_perm(const graph::Permutation& perm,
                         std::uint64_t mask) {
  std::uint64_t out = 0;
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    out |= 1ull << perm[std::countr_zero(m)];
  }
  return out;
}

TEST(FaultCanonicalizer, IsomorphicFaultSetsShareTheCanonicalKey) {
  const auto sg = kgd::build_solution(14, 3);
  ASSERT_TRUE(sg);
  const AutomorphismList autos = graph::solution_automorphisms(*sg);
  ASSERT_TRUE(autos.usable());

  const fault::FaultCanonicalizer canon(&autos);
  auto scratch = std::make_unique<fault::FaultCanonicalizer::Scratch>();
  util::Rng rng(0xca11);
  for (int trial = 0; trial < 200; ++trial) {
    std::uint64_t mask = 0;
    for (int i = 0; i < 4; ++i) {
      mask |= 1ull << rng.next_below(
          static_cast<std::uint64_t>(sg->num_nodes()));
    }
    std::uint64_t key = 0;
    ASSERT_TRUE(canon.canonical_mask(mask, *scratch, &key));
    // The key is orbit-minimal, so it never exceeds the query mask.
    EXPECT_LE(key, mask);
    // Every generator image of the mask canonicalizes to the same key.
    for (const graph::Permutation& g : autos.generators) {
      const std::uint64_t image = apply_perm(g, mask);
      std::uint64_t image_key = 0;
      ASSERT_TRUE(canon.canonical_mask(image, *scratch, &image_key));
      EXPECT_EQ(image_key, key) << "mask=" << mask << " image=" << image;
    }
  }
}

TEST(FaultCanonicalizer, UnusableGroupLeavesMasksFixed) {
  const AutomorphismList trivial;  // no generators
  const fault::FaultCanonicalizer canon(&trivial);
  auto scratch = std::make_unique<fault::FaultCanonicalizer::Scratch>();
  for (std::uint64_t mask : {0ull, 5ull, 0x8001ull, ~0ull}) {
    std::uint64_t key = 1;
    ASSERT_TRUE(canon.canonical_mask(mask, *scratch, &key));
    EXPECT_EQ(key, mask);
  }
}

TEST(VerdictCache, LookupInsertAndBoundedEviction) {
  VerdictCache cache(4);  // one 4-way set
  EXPECT_EQ(cache.capacity(), 4u);

  EXPECT_FALSE(cache.lookup(1, 10).has_value());
  EXPECT_FALSE(cache.insert(1, 10, SolveStatus::kFound));
  const auto hit = cache.lookup(1, 10);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, SolveStatus::kFound);

  // Same key again: refreshed in place, no eviction, verdict updated.
  EXPECT_FALSE(cache.insert(1, 10, SolveStatus::kNone));
  EXPECT_EQ(*cache.lookup(1, 10), SolveStatus::kNone);

  // kUnknown is never cached.
  EXPECT_FALSE(cache.insert(2, 20, SolveStatus::kUnknown));
  EXPECT_FALSE(cache.lookup(2, 20).has_value());

  // Fill the set, then overflow it: the fifth distinct key must evict.
  EXPECT_FALSE(cache.insert(1, 11, SolveStatus::kFound));
  EXPECT_FALSE(cache.insert(1, 12, SolveStatus::kFound));
  EXPECT_FALSE(cache.insert(1, 13, SolveStatus::kFound));
  EXPECT_TRUE(cache.insert(1, 14, SolveStatus::kFound));

  const VerdictCacheStats stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_GE(stats.inserts, 5u);
  EXPECT_GE(stats.hits, 2u);
  EXPECT_GE(stats.misses, 2u);
}

CheckOptions with_cache(VerdictCache* cache) {
  CheckOptions o;
  o.cache = cache;
  return o;
}

void expect_same_verdict(const CheckResult& a, const CheckResult& b,
                         const std::string& tag) {
  EXPECT_EQ(a.holds, b.holds) << tag;
  EXPECT_EQ(a.exhaustive, b.exhaustive) << tag;
  EXPECT_EQ(a.fault_sets_checked, b.fault_sets_checked) << tag;
  ASSERT_EQ(a.counterexample.has_value(), b.counterexample.has_value())
      << tag;
  if (a.counterexample) {
    EXPECT_EQ(a.counterexample->nodes(), b.counterexample->nodes()) << tag;
  }
  ASSERT_EQ(a.counterexample_index.has_value(),
            b.counterexample_index.has_value())
      << tag;
  if (a.counterexample_index) {
    EXPECT_EQ(*a.counterexample_index, *b.counterexample_index) << tag;
  }
}

TEST(VerdictCache, CachedExhaustiveRunsAreBitIdentical) {
  // Holding and failing instances; each is checked cold (no cache),
  // cold-cache, and warm-cache — all three must agree exactly.
  struct Case {
    SolutionGraph sg;
    int k;
  };
  std::vector<Case> cases;
  {
    auto a = kgd::build_solution(10, 3);
    ASSERT_TRUE(a);
    cases.push_back({std::move(*a), 3});       // holds
    cases.push_back({baseline::make_spare_path(6, 2), 2});  // fails
  }
  for (const Case& c : cases) {
    const CheckResult plain = run_check(c.sg, CheckRequest::exhaustive(c.k));
    VerdictCache cache(1 << 14);
    const CheckResult cold =
        run_check(c.sg, CheckRequest::exhaustive(c.k, with_cache(&cache)));
    const CheckResult warm =
        run_check(c.sg, CheckRequest::exhaustive(c.k, with_cache(&cache)));
    expect_same_verdict(plain, cold, c.sg.name() + " cold");
    expect_same_verdict(plain, warm, c.sg.name() + " warm");

    // Cold run: every representative missed and was inserted. Warm run:
    // the sweep re-solves nothing — every verdict is a hit.
    EXPECT_EQ(cold.cache_hits, 0u) << c.sg.name();
    EXPECT_GT(cold.cache_inserts, 0u) << c.sg.name();
    EXPECT_GT(warm.cache_hits, 0u) << c.sg.name();
    if (plain.holds) {
      EXPECT_EQ(warm.cache_hits, cold.fault_sets_solved) << c.sg.name();
      EXPECT_EQ(warm.fault_sets_solved, 0u) << c.sg.name();
      // Completed-sweep accounting with a cache attached.
      EXPECT_EQ(warm.fault_sets_checked,
                warm.fault_sets_solved + warm.orbits_pruned + warm.cache_hits)
          << c.sg.name();
    }
  }
}

TEST(VerdictCache, CachedSampledRunsAreBitIdentical) {
  const auto sg = kgd::build_solution(14, 3);
  ASSERT_TRUE(sg);
  const CheckResult plain = run_check(*sg, CheckRequest::sampled(3, 400, 7));
  VerdictCache cache(1 << 14);
  const CheckResult cold =
      run_check(*sg, CheckRequest::sampled(3, 400, 7, with_cache(&cache)));
  const CheckResult warm =
      run_check(*sg, CheckRequest::sampled(3, 400, 7, with_cache(&cache)));
  EXPECT_EQ(plain.holds, cold.holds);
  EXPECT_EQ(plain.holds, warm.holds);
  EXPECT_EQ(plain.fault_sets_checked, cold.fault_sets_checked);
  EXPECT_EQ(plain.fault_sets_checked, warm.fault_sets_checked);
  // The sampler repeats orbits, so even the cold run sees hits; the
  // warm run answers (almost) everything from the cache.
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_GT(warm.cache_hits, cold.cache_hits);
}

TEST(VerdictCache, TinyCacheEvictsButStaysExact) {
  const auto sg = kgd::build_solution(10, 3);
  ASSERT_TRUE(sg);
  const CheckResult plain = run_check(*sg, CheckRequest::exhaustive(3));
  VerdictCache cache(8);  // far smaller than the representative count
  const CheckResult cold =
      run_check(*sg, CheckRequest::exhaustive(3, with_cache(&cache)));
  expect_same_verdict(plain, cold, "tiny cache");
  EXPECT_GT(cold.cache_evictions, 0u);
  EXPECT_GT(cold.cache_inserts, cache.capacity());
}

}  // namespace
}  // namespace kgdp::verify
