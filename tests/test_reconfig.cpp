#include "reconfig/route.hpp"

#include <gtest/gtest.h>

#include "fault/enumerator.hpp"
#include "kgd/extension.hpp"
#include "kgd/factory.hpp"
#include "kgd/small_n.hpp"
#include "util/timer.hpp"
#include "verify/pipeline_solver.hpp"

namespace kgdp::reconfig {
namespace {

using kgd::FaultSet;
using kgd::SolutionGraph;

// Cross-check a constructive router against the exact solver on EVERY
// fault set up to k: identical feasibility verdicts, and every produced
// pipeline certified (the routers certify internally; the checks here
// are end-to-end).
void cross_check(const SolutionGraph& sg,
                 const std::function<std::optional<kgd::Pipeline>(
                     const SolutionGraph&, const FaultSet&)>& router) {
  const fault::FaultEnumerator en(sg.num_nodes(), sg.k());
  verify::PipelineSolver solver;
  for (std::uint64_t i = 0; i < en.total(); ++i) {
    const FaultSet fs = en.at(i);
    const auto routed = router(sg, fs);
    const auto solved = solver.solve(sg, fs);
    ASSERT_EQ(routed.has_value(),
              solved.status == verify::SolveStatus::kFound)
        << sg.name() << " faults " << fs.to_string();
    if (routed) {
      EXPECT_TRUE(kgd::check_pipeline(sg, fs, routed->path).ok);
    }
  }
}

TEST(RouteG1k, MatchesSolverExhaustively) {
  for (int k = 1; k <= 4; ++k) {
    cross_check(kgd::make_g1k(k), route_g1k);
  }
}

TEST(RouteG1k, SoleSurvivorCase) {
  // Lemma 3.7 proof case 2: only one processor part left intact.
  const SolutionGraph sg = kgd::make_g1k(1);
  const auto procs = sg.processors();
  const auto routed = route_g1k(sg, FaultSet(sg.num_nodes(), {procs[1]}));
  ASSERT_TRUE(routed.has_value());
  EXPECT_EQ(routed->num_processors(), 1);
}

TEST(RouteG2k, MatchesSolverExhaustively) {
  for (int k = 1; k <= 4; ++k) {
    cross_check(kgd::make_g2k(k), route_g2k);
  }
}

TEST(RouteG2k, HandlesInputOnlyAndOutputOnlyParts) {
  // Kill everything except parts a (input-only) and b (output-only).
  const SolutionGraph sg = kgd::make_g2k(2);
  const auto procs = sg.processors();
  const auto routed =
      route_g2k(sg, FaultSet(sg.num_nodes(), {procs[2], procs[3]}));
  ASSERT_TRUE(routed.has_value());
  EXPECT_EQ(routed->num_processors(), 2);
}

TEST(RouteFamily, MatchesSolverOnExtendedGraphsExhaustively) {
  // One and two extension layers over each base, all fault sets.
  for (int k = 1; k <= 3; ++k) {
    cross_check(kgd::extend_once(kgd::make_g1k(k)), route_family);
    cross_check(kgd::extend_once(kgd::make_g2k(k)), route_family);
  }
  cross_check(kgd::extend(kgd::make_g1k(2), 2), route_family);
}

TEST(RouteFamily, WorksOnEveryFactoryFamilyGraph) {
  verify::PipelineSolver solver;
  for (int k = 1; k <= 3; ++k) {
    for (int n = 1; n <= 14; ++n) {
      const auto sg = kgd::build_solution(n, k);
      ASSERT_TRUE(sg);
      // Spot fault sets: empty, one processor, k terminals.
      std::vector<FaultSet> cases;
      cases.push_back(FaultSet::none(sg->num_nodes()));
      cases.emplace_back(sg->num_nodes(),
                         std::vector<int>{sg->processors()[0]});
      std::vector<int> terms;
      for (int j = 0; j < k; ++j) terms.push_back(sg->inputs()[j]);
      cases.emplace_back(sg->num_nodes(), terms);
      for (const auto& fs : cases) {
        const auto routed = route_family(*sg, fs);
        ASSERT_TRUE(routed.has_value())
            << "n=" << n << " k=" << k << " " << fs.to_string();
        EXPECT_TRUE(kgd::check_pipeline(*sg, fs, routed->path).ok);
      }
    }
  }
}

TEST(RouteFamily, RejectsOverBudgetFaultSets) {
  const auto sg = kgd::build_solution(7, 2);
  ASSERT_TRUE(sg);
  std::vector<int> faults = {sg->processors()[0], sg->processors()[1],
                             sg->processors()[2]};
  EXPECT_FALSE(route_family(*sg, FaultSet(sg->num_nodes(), faults))
                   .has_value());
}

TEST(RouteFamily, LinearTimeOnHugeGraphs) {
  // n = 3000 with k = 2: ~3000 processors. The peeling router must
  // handle this instantly; this would be a stress case for pure search.
  const auto sg = kgd::build_solution(3000, 2);
  ASSERT_TRUE(sg);
  const FaultSet fs(sg->num_nodes(),
                    {sg->processors()[123], sg->inputs()[0]});
  util::Timer t;
  const auto routed = route_family(*sg, fs);
  ASSERT_TRUE(routed.has_value());
  EXPECT_LT(t.seconds(), 5.0);
  EXPECT_EQ(routed->num_processors(), 3001);  // n + k - 1 faulty
}

TEST(RouteFamily, FallsBackToSolverOnNonFamilyGraphs) {
  // The asymptotic construction has no extension layers; route_family
  // must still answer via its solver fallback.
  const auto sg = kgd::build_solution(14, 4);
  ASSERT_TRUE(sg);
  const auto routed = route_family(*sg, FaultSet::none(sg->num_nodes()));
  ASSERT_TRUE(routed.has_value());
  EXPECT_EQ(routed->num_processors(), 18);
}

TEST(RouteFamily, DeterministicAcrossCalls) {
  const auto sg = kgd::build_solution(10, 2);
  ASSERT_TRUE(sg);
  const FaultSet fs(sg->num_nodes(), {2, 5});
  const auto a = route_family(*sg, fs);
  const auto b = route_family(*sg, fs);
  ASSERT_TRUE(a && b);
  EXPECT_EQ(a->path, b->path);
}

}  // namespace
}  // namespace kgdp::reconfig
