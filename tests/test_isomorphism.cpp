#include "graph/isomorphism.hpp"

#include <gtest/gtest.h>

#include "graph/circulant.hpp"
#include "graph/graph.hpp"

namespace kgdp::graph {
namespace {

TEST(Isomorphism, IdenticalGraphs) {
  const Graph g = make_cycle(5);
  auto m = find_isomorphism(g, g);
  ASSERT_TRUE(m.has_value());
  for (Node u = 0; u < 5; ++u) {
    for (Node v : g.neighbors(u)) {
      EXPECT_TRUE(g.has_edge((*m)[u], (*m)[v]));
    }
  }
}

TEST(Isomorphism, RelabeledCycle) {
  const Graph a = make_cycle(6);
  // 6-cycle written in a different vertex order: 0-2-4-1-5-3-0.
  const Graph b = from_edges(
      6, {{0, 2}, {2, 4}, {4, 1}, {1, 5}, {5, 3}, {3, 0}});
  EXPECT_TRUE(are_isomorphic(a, b));
}

TEST(Isomorphism, CycleVsPathDiffer) {
  EXPECT_FALSE(are_isomorphic(make_cycle(5), make_path(5)));
}

TEST(Isomorphism, SameDegreeSequenceNotIsomorphic) {
  // Two 3-regular graphs on 6 nodes: K_{3,3} vs the prism (C3 x K2).
  const Graph k33 = from_edges(6, {{0, 3}, {0, 4}, {0, 5}, {1, 3}, {1, 4},
                                   {1, 5}, {2, 3}, {2, 4}, {2, 5}});
  const Graph prism = from_edges(6, {{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5},
                                     {5, 3}, {0, 3}, {1, 4}, {2, 5}});
  EXPECT_EQ(k33.degree_sequence(), prism.degree_sequence());
  EXPECT_FALSE(are_isomorphic(k33, prism));  // prism has triangles
}

TEST(Isomorphism, SizeMismatch) {
  EXPECT_FALSE(are_isomorphic(make_cycle(5), make_cycle(6)));
}

TEST(Isomorphism, ColorsConstrainMapping) {
  const Graph a = make_path(3);  // 0-1-2
  const Graph b = make_path(3);
  std::vector<int> ca = {0, 1, 0};  // endpoints color 0
  std::vector<int> cb = {0, 1, 0};
  EXPECT_TRUE(are_isomorphic(a, b, &ca, &cb));
  std::vector<int> cb_bad = {1, 0, 0};  // endpoint colored like a center
  EXPECT_FALSE(are_isomorphic(a, b, &ca, &cb_bad));
}

TEST(Isomorphism, CirculantRotationsAreIsomorphic) {
  const Graph a = make_circulant(8, {1, 3});
  const Graph b = make_circulant(8, {3, 1});
  EXPECT_TRUE(are_isomorphic(a, b));
}

TEST(Isomorphism, PetersenSelfTest) {
  // Petersen graph: outer C5 + inner pentagram + spokes.
  std::vector<Edge> edges;
  for (int i = 0; i < 5; ++i) {
    edges.push_back({i, (i + 1) % 5});
    edges.push_back({5 + i, 5 + (i + 2) % 5});
    edges.push_back({i, 5 + i});
  }
  const Graph p = from_edges(10, edges);
  // Relabel by a random-looking permutation.
  const std::vector<int> perm = {7, 2, 9, 4, 0, 3, 8, 1, 6, 5};
  std::vector<Edge> redges;
  for (auto [u, v] : edges) redges.push_back({perm[u], perm[v]});
  EXPECT_TRUE(are_isomorphic(p, from_edges(10, redges)));
}

TEST(Isomorphism, EmptyGraphs) {
  EXPECT_TRUE(are_isomorphic(Graph(0), Graph(0)));
  EXPECT_TRUE(are_isomorphic(Graph(3), Graph(3)));
}

}  // namespace
}  // namespace kgdp::graph
