#include "graph/properties.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/graph.hpp"

namespace kgdp::graph {
namespace {

TEST(Connectivity, SingleAndEmpty) {
  EXPECT_TRUE(is_connected(Graph(0)));
  EXPECT_TRUE(is_connected(Graph(1)));
  EXPECT_FALSE(is_connected(Graph(2)));
}

TEST(Connectivity, ComponentsLabelled) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  std::vector<int> comp;
  EXPECT_EQ(connected_components(g, &comp), 3);
  EXPECT_EQ(comp[0], comp[1]);
  EXPECT_EQ(comp[2], comp[3]);
  EXPECT_NE(comp[0], comp[2]);
  EXPECT_NE(comp[4], comp[0]);
  EXPECT_NE(comp[4], comp[2]);
}

TEST(Articulation, PathInteriorNodesAreCuts) {
  const Graph g = make_path(5);
  const auto cuts = articulation_points(g);
  EXPECT_EQ(cuts, (std::vector<Node>{1, 2, 3}));
}

TEST(Articulation, CycleHasNone) {
  EXPECT_TRUE(articulation_points(make_cycle(6)).empty());
}

TEST(Articulation, CompleteHasNone) {
  EXPECT_TRUE(articulation_points(make_complete(5)).empty());
}

TEST(Articulation, BridgeNode) {
  // Two triangles joined at node 2: node 2 is the cut.
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(3, 4);
  g.add_edge(4, 2);
  EXPECT_EQ(articulation_points(g), (std::vector<Node>{2}));
}

TEST(Articulation, StarCenterIsCut) {
  Graph g(5);
  for (int leaf = 1; leaf < 5; ++leaf) g.add_edge(0, leaf);
  EXPECT_EQ(articulation_points(g), (std::vector<Node>{0}));
}

TEST(Articulation, DisconnectedGraphPerComponent) {
  Graph g(6);  // path 0-1-2 and triangle 3-4-5
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(3, 4);
  g.add_edge(4, 5);
  g.add_edge(5, 3);
  EXPECT_EQ(articulation_points(g), (std::vector<Node>{1}));
}

TEST(SimplePath, Accepts) {
  const Graph g = make_path(4);
  EXPECT_TRUE(is_simple_path(g, {0, 1, 2}));
  EXPECT_TRUE(is_simple_path(g, {3, 2, 1, 0}));
}

TEST(SimplePath, RejectsRepeatsAndNonEdges) {
  const Graph g = make_path(4);
  EXPECT_FALSE(is_simple_path(g, {0, 1, 0}));
  EXPECT_FALSE(is_simple_path(g, {0, 2}));
  EXPECT_FALSE(is_simple_path(g, {}));
  EXPECT_FALSE(is_simple_path(g, {0, 4}));  // out of range
}

TEST(HamiltonianPathPredicate, RequiresFullCover) {
  const Graph g = make_path(4);
  EXPECT_TRUE(is_hamiltonian_path(g, {0, 1, 2, 3}));
  EXPECT_FALSE(is_hamiltonian_path(g, {0, 1, 2}));
}

TEST(IsSimple, BuiltGraphsAreSimple) {
  EXPECT_TRUE(is_simple(make_complete(6)));
  EXPECT_TRUE(is_simple(make_cycle(5)));
  EXPECT_TRUE(is_simple(Graph(3)));
}

}  // namespace
}  // namespace kgdp::graph
