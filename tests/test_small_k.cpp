#include "kgd/small_k.hpp"

#include <gtest/gtest.h>

#include "kgd/bounds.hpp"
#include "verify/checker.hpp"
#include "verify/optimality.hpp"

namespace kgdp::kgd {
namespace {

struct Case {
  int n;
  int k;
};

class FamilyParam : public ::testing::TestWithParam<Case> {};

TEST_P(FamilyParam, StructureMatchesTheorems) {
  const auto [n, k] = GetParam();
  const SolutionGraph sg = make_small_k_family(n, k);
  EXPECT_EQ(sg.n(), n);
  EXPECT_EQ(sg.k(), k);
  EXPECT_TRUE(sg.is_standard());
  EXPECT_EQ(sg.num_processors(), n + k);
  // Degree matches the theorem's claim, which equals the lower bound.
  EXPECT_EQ(sg.max_processor_degree(), achieved_max_degree(n, k));
  const auto rep = verify::certify_optimality(sg);
  EXPECT_TRUE(rep.degree_optimal) << rep.summary();
}

TEST_P(FamilyParam, ExhaustivelyGracefullyDegradable) {
  const auto [n, k] = GetParam();
  const SolutionGraph sg = make_small_k_family(n, k);
  const auto res = verify::run_check(sg, verify::CheckRequest::exhaustive(k));
  EXPECT_TRUE(res.holds)
      << "n=" << n << " k=" << k << " cex "
      << (res.counterexample ? res.counterexample->to_string() : "");
}

std::vector<Case> family_cases() {
  std::vector<Case> cases;
  for (int n = 1; n <= 12; ++n) cases.push_back({n, 1});
  for (int n = 1; n <= 12; ++n) cases.push_back({n, 2});
  for (int n = 1; n <= 11; ++n) cases.push_back({n, 3});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FamilyParam, ::testing::ValuesIn(family_cases()),
    [](const ::testing::TestParamInfo<Case>& param_info) {
      return "n" + std::to_string(param_info.param.n) + "_k" +
             std::to_string(param_info.param.k);
    });

TEST(FamilyK1, Theorem313DegreeParity) {
  for (int n = 1; n <= 20; ++n) {
    const SolutionGraph sg = make_family_k1(n);
    EXPECT_EQ(sg.max_processor_degree(), n % 2 == 1 ? 3 : 4) << "n=" << n;
  }
}

TEST(FamilyK2, Theorem315DegreeExceptions) {
  for (int n = 1; n <= 20; ++n) {
    const SolutionGraph sg = make_family_k2(n);
    const int want = (n == 2 || n == 3 || n == 5) ? 5 : 4;
    EXPECT_EQ(sg.max_processor_degree(), want) << "n=" << n;
  }
}

TEST(FamilyK3, Theorem316DegreeParity) {
  for (int n = 1; n <= 20; ++n) {
    const SolutionGraph sg = make_family_k3(n);
    const int want = (n == 3) ? 6 : (n % 2 == 1 ? 5 : 6);
    EXPECT_EQ(sg.max_processor_degree(), want) << "n=" << n;
  }
}

TEST(FamilyRecipeTest, MatchesThePaperText) {
  EXPECT_EQ(family_recipe(7, 2).base, "G(1,2)");  // "applying twice"
  EXPECT_EQ(family_recipe(7, 2).extensions, 2);
  EXPECT_EQ(family_recipe(9, 2).base, "special G(6,2)");
  EXPECT_EQ(family_recipe(11, 2).base, "special G(8,2)");
  EXPECT_EQ(family_recipe(5, 3).base, "G(1,3)");
  EXPECT_EQ(family_recipe(11, 3).base, "special G(7,3)");
  EXPECT_EQ(family_recipe(8, 3).base, "special G(4,3)");
  EXPECT_EQ(family_recipe(10, 3).base, "G(2,3)");
  EXPECT_EQ(family_recipe(3, 3).base, "G(3,3)");
}

TEST(FamilyRecipeTest, RecipeProcessorsAddUp) {
  for (int k = 1; k <= 3; ++k) {
    for (int n = 1; n <= 25; ++n) {
      const FamilyRecipe r = family_recipe(n, k);
      const SolutionGraph sg = make_small_k_family(n, k);
      EXPECT_EQ(sg.num_processors(), n + k) << "n=" << n << " k=" << k
                                            << " base " << r.base;
    }
  }
}

TEST(FamilyLarge, BigInstancesStayStructurallySound) {
  // Construction scales far beyond the exhaustive-check regime.
  for (int k = 1; k <= 3; ++k) {
    const SolutionGraph sg = make_small_k_family(200 + k, k);
    EXPECT_TRUE(sg.is_standard());
    EXPECT_EQ(sg.max_processor_degree(), achieved_max_degree(200 + k, k));
    EXPECT_TRUE(audit_bounds(sg).empty());
  }
}

}  // namespace
}  // namespace kgdp::kgd
