#include "sim/stages_image.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace kgdp::sim {
namespace {

TEST(LineImage, BresenhamEndpointsAndCount) {
  const Chunk img = make_line_image(8, 8, 0, 3, 7, 3);  // horizontal
  int edges = 0;
  for (Sample s : img) edges += (s > 0.5f);
  EXPECT_EQ(edges, 8);
  EXPECT_GT(img[3 * 8 + 0], 0.5f);
  EXPECT_GT(img[3 * 8 + 7], 0.5f);
}

TEST(LineImage, BlankIsBlank) {
  const Chunk img = make_blank_image(5, 4);
  EXPECT_EQ(img.size(), 20u);
  for (Sample s : img) EXPECT_EQ(s, 0.0f);
}

TEST(Hough, HorizontalLinePeaksAtThetaNinety) {
  // y = 3 line: normal form x cos(90°) + y sin(90°) = rho -> rho = 3 at
  // theta = 90°. With 4 theta bins over [0, pi), bin 2 is exactly 90°.
  HoughTransform hough(8, 8, 4, 1);
  const Chunk img = make_line_image(8, 8, 0, 3, 7, 3);
  const Chunk out = hough.process(img);
  ASSERT_EQ(out.size(), 3u);  // one peak triple
  const int theta_idx = static_cast<int>(out[0]);
  const int rho_idx = static_cast<int>(out[1]);
  const int votes = static_cast<int>(out[2]);
  EXPECT_EQ(theta_idx, 2);  // 90 degrees
  // rho index = rho + offset; offset = ceil(hypot(7,7)) = 10.
  EXPECT_EQ(rho_idx, 3 + 10);
  EXPECT_EQ(votes, 8);  // every pixel of the line voted there
}

TEST(Hough, VerticalLinePeaksAtThetaZero) {
  HoughTransform hough(8, 8, 4, 1);
  const Chunk img = make_line_image(8, 8, 5, 0, 5, 7);  // x = 5
  const Chunk out = hough.process(img);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(static_cast<int>(out[0]), 0);       // theta = 0
  EXPECT_EQ(static_cast<int>(out[1]), 5 + 10);  // rho = 5
  EXPECT_EQ(static_cast<int>(out[2]), 8);
}

TEST(Hough, EmitsOnlyOnImageCompletion) {
  HoughTransform hough(8, 8, 4, 1);
  const Chunk img = make_line_image(8, 8, 0, 3, 7, 3);
  // Feed all but one pixel: no output yet.
  Chunk head(img.begin(), img.end() - 1);
  EXPECT_TRUE(hough.process(head).empty());
  // Final pixel completes the image.
  const Chunk out = hough.process({img.back()});
  EXPECT_EQ(out.size(), 3u);
}

TEST(Hough, AccumulatorResetsBetweenImages) {
  HoughTransform hough(8, 8, 4, 1);
  const Chunk line = make_line_image(8, 8, 0, 3, 7, 3);
  const Chunk first = hough.process(line);
  const Chunk second = hough.process(line);
  EXPECT_EQ(first, second);  // identical votes, no carry-over
}

TEST(Hough, MultipleImagesInOneChunk) {
  HoughTransform hough(4, 4, 4, 1);
  Chunk two_images = make_line_image(4, 4, 0, 1, 3, 1);
  const Chunk img2 = make_line_image(4, 4, 2, 0, 2, 3);
  two_images.insert(two_images.end(), img2.begin(), img2.end());
  const Chunk out = hough.process(two_images);
  ASSERT_EQ(out.size(), 6u);  // two peak triples
  EXPECT_EQ(static_cast<int>(out[0]), 2);  // horizontal -> theta 90
  EXPECT_EQ(static_cast<int>(out[3]), 0);  // vertical -> theta 0
}

TEST(Hough, CloneCarriesPartialImageState) {
  HoughTransform hough(8, 8, 4, 1);
  const Chunk img = make_line_image(8, 8, 0, 3, 7, 3);
  Chunk head(img.begin(), img.begin() + 32);
  hough.process(head);
  auto clone = hough.clone();
  const Chunk tail(img.begin() + 32, img.end());
  EXPECT_EQ(clone->process(tail), hough.process(tail));
}

TEST(Hough, ResetDropsPartialImage) {
  HoughTransform hough(8, 8, 4, 1);
  const Chunk img = make_line_image(8, 8, 0, 3, 7, 3);
  hough.process(Chunk(img.begin(), img.begin() + 10));
  hough.reset();
  const Chunk out = hough.process(img);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(static_cast<int>(out[2]), 8);  // clean vote count
}

TEST(Hough, CostScalesWithThetaBins) {
  EXPECT_DOUBLE_EQ(HoughTransform(8, 8, 16, 1).cost_per_sample(), 16.0);
}

TEST(Hough, BlankImageEmitsZeroVotePeak) {
  HoughTransform hough(4, 4, 4, 1);
  const Chunk out = hough.process(make_blank_image(4, 4));
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(static_cast<int>(out[2]), 0);
}

}  // namespace
}  // namespace kgdp::sim
