// The certification campaign engine end to end: grid expansion,
// checkpoint file round-trips, the acceptance drill (an interrupted and
// resumed campaign over G(3, 4..5) and a 4-way sharded + merged campaign
// both reproduce the uninterrupted single-session run bit-identically),
// telemetry schema, and the merge rejection paths.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/checkpoint.hpp"
#include "campaign/telemetry.hpp"
#include "fault/enumerator.hpp"
#include "io/json.hpp"
#include "kgd/factory.hpp"
#include "util/durable_file.hpp"
#include "verify/check_session.hpp"

namespace kgdp::campaign {
namespace {

RunLimits chunk_limit(std::uint64_t n) {
  RunLimits limits;
  limits.max_chunks = n;
  return limits;
}

CampaignConfig acceptance_config() {
  CampaignConfig c;
  c.n_min = 3;
  c.n_max = 3;
  c.k_min = 4;
  c.k_max = 5;
  c.chunk = 200;
  c.checkpoint_every = 1;
  return c;
}

void expect_identical(const verify::CheckResult& a,
                      const verify::CheckResult& b, const std::string& tag) {
  EXPECT_EQ(a.holds, b.holds) << tag;
  EXPECT_EQ(a.exhaustive, b.exhaustive) << tag;
  EXPECT_EQ(a.fault_sets_checked, b.fault_sets_checked) << tag;
  EXPECT_EQ(a.fault_sets_solved, b.fault_sets_solved) << tag;
  EXPECT_EQ(a.solver_unknowns, b.solver_unknowns) << tag;
  EXPECT_EQ(a.orbits_pruned, b.orbits_pruned) << tag;
  EXPECT_EQ(a.automorphism_order, b.automorphism_order) << tag;
  EXPECT_EQ(a.steal_count, b.steal_count) << tag;
  ASSERT_EQ(a.counterexample.has_value(), b.counterexample.has_value()) << tag;
  if (a.counterexample) {
    EXPECT_EQ(a.counterexample->nodes(), b.counterexample->nodes()) << tag;
  }
  ASSERT_EQ(a.counterexample_index.has_value(),
            b.counterexample_index.has_value())
      << tag;
  if (a.counterexample_index) {
    EXPECT_EQ(*a.counterexample_index, *b.counterexample_index) << tag;
  }
}

TEST(Campaign, GridExpansionKeepsSupportedPairsInOrder) {
  CampaignConfig c;
  c.n_min = 1;
  c.n_max = 8;
  c.k_min = 1;
  c.k_max = 2;
  const CampaignState state = make_campaign(c);
  ASSERT_FALSE(state.instances.empty());
  int prev_n = 0, prev_k = 0;
  for (const InstanceState& inst : state.instances) {
    EXPECT_TRUE(kgd::is_supported(inst.n, inst.k));
    EXPECT_EQ(inst.status, InstanceStatus::kPending);
    // Row-major (n outer, k inner) grid order.
    EXPECT_TRUE(inst.n > prev_n || (inst.n == prev_n && inst.k > prev_k));
    prev_n = inst.n;
    prev_k = inst.k;
  }
  std::size_t supported = 0;
  for (int n = 1; n <= 8; ++n) {
    for (int k = 1; k <= 2; ++k) {
      if (kgd::is_supported(n, k)) ++supported;
    }
  }
  EXPECT_EQ(state.instances.size(), supported);
}

TEST(Campaign, MakeCampaignRejectsBadConfigs) {
  CampaignConfig inverted = acceptance_config();
  inverted.n_max = inverted.n_min - 1;
  EXPECT_THROW(make_campaign(inverted), std::invalid_argument);

  CampaignConfig bad_shard = acceptance_config();
  bad_shard.shard_index = 2;
  bad_shard.shard_count = 2;
  EXPECT_THROW(make_campaign(bad_shard), std::invalid_argument);

  CampaignConfig sharded_sampled = acceptance_config();
  sharded_sampled.mode = verify::CheckMode::kSampled;
  sharded_sampled.shard_count = 2;
  EXPECT_THROW(make_campaign(sharded_sampled), std::invalid_argument);

  CampaignConfig zero_chunk = acceptance_config();
  zero_chunk.chunk = 0;
  EXPECT_THROW(make_campaign(zero_chunk), std::invalid_argument);

  CampaignConfig empty = acceptance_config();
  empty.n_min = empty.n_max = 8;  // (8, 4) and (8, 5) have no construction
  empty.k_min = 4;
  empty.k_max = 5;
  ASSERT_FALSE(kgd::is_supported(8, 4));
  ASSERT_FALSE(kgd::is_supported(8, 5));
  EXPECT_THROW(make_campaign(empty), std::invalid_argument);
}

TEST(Campaign, ResultSerializationRoundTripsExactly) {
  verify::CheckResult res;
  res.holds = false;
  res.exhaustive = true;
  res.fault_sets_checked = 12345;
  res.fault_sets_solved = 678;
  res.solver_unknowns = 0;
  res.orbits_pruned = 11667;
  res.automorphism_order = 24;
  res.steal_count = 9;
  res.worker_solve_seconds = {0.1, 3.14159265358979, 0.0};
  res.counterexample = kgd::FaultSet(7, {1, 3, 6});
  res.counterexample_index = 42;

  std::stringstream buf;
  save_result(buf, res);
  const verify::CheckResult back = load_result(buf);
  expect_identical(res, back, "failing result");
  ASSERT_EQ(back.worker_solve_seconds.size(), 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    // Bit-exact double round-trip, not printf-precision.
    EXPECT_EQ(back.worker_solve_seconds[i], res.worker_solve_seconds[i]);
  }

  // A sampled counterexample has no enumeration index ("-" on disk).
  res.counterexample_index.reset();
  std::stringstream buf2;
  save_result(buf2, res);
  expect_identical(res, load_result(buf2), "indexless result");

  // Holding result, no counterexample.
  verify::CheckResult ok;
  ok.holds = true;
  ok.exhaustive = true;
  ok.fault_sets_checked = 99;
  std::stringstream buf3;
  save_result(buf3, ok);
  expect_identical(ok, load_result(buf3), "holding result");
}

TEST(Campaign, CampaignFileRoundTripIsStable) {
  CampaignConfig c = acceptance_config();
  CampaignRunner partial(make_campaign(c), /*checkpoint_path=*/"");
  const RunOutcome out = partial.run(chunk_limit(3));
  ASSERT_FALSE(out.complete);  // mid-sweep: one instance carries a cursor

  std::stringstream first;
  save_campaign(first, partial.state());
  const CampaignState loaded = load_campaign(first);
  std::stringstream second;
  save_campaign(second, loaded);
  const CampaignState reloaded = load_campaign(second);
  std::stringstream third;
  save_campaign(third, reloaded);
  // save -> load normalizes the embedded cursor once; after that the
  // round-trip must be byte-identical.
  EXPECT_EQ(second.str(), third.str());
  ASSERT_EQ(loaded.instances.size(), partial.state().instances.size());
  for (std::size_t i = 0; i < loaded.instances.size(); ++i) {
    EXPECT_EQ(loaded.instances[i].status, partial.state().instances[i].status);
  }
}

// Every damaged campaign file must load as a classified
// util::CheckpointError — never undefined behaviour, never an uncaught
// deep parse error the operator can't act on.
TEST(Campaign, CorruptFileCorpusLoadsAsClassifiedErrors) {
  const std::string dir =
      testing::TempDir() + "kgdp_corpus_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  const auto sub = [&](const std::string& name) { return dir + "/" + name; };

  CampaignConfig c = acceptance_config();
  const std::string good = sub("good.kgdp");
  write_campaign_file(good, make_campaign(c));
  std::string bytes;
  {
    std::ifstream in(good, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 32u);
  const auto write_raw = [&](const std::string& name,
                             const std::string& content) {
    const std::string path = sub(name);
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    return path;
  };
  const auto expect_kind = [](const std::string& path,
                              util::CheckpointErrorKind kind) {
    try {
      load_campaign_file(path);
      ADD_FAILURE() << path << ": expected a CheckpointError";
    } catch (const util::CheckpointError& e) {
      EXPECT_EQ(util::to_string(e.kind()), util::to_string(kind))
          << path << ": " << e.what();
    }
  };

  expect_kind(sub("missing.kgdp"), util::CheckpointErrorKind::kMissing);
  expect_kind(write_raw("zero.kgdp", ""),
              util::CheckpointErrorKind::kTruncated);
  expect_kind(write_raw("trunc.kgdp", bytes.substr(0, bytes.size() / 2)),
              util::CheckpointErrorKind::kTruncated);
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x10;
  expect_kind(write_raw("flip.kgdp", flipped),
              util::CheckpointErrorKind::kCorrupt);
  const std::string wrongver = sub("wrongver.kgdp");
  util::durable_write_file(wrongver, "kgdp-campaign 99\nschema_version 1\n");
  expect_kind(wrongver, util::CheckpointErrorKind::kParse);
  // Bad candidates were quarantined, not left in place to fail again.
  EXPECT_TRUE(std::filesystem::exists(sub("flip.kgdp.corrupt")));
  EXPECT_FALSE(std::filesystem::exists(sub("flip.kgdp")));

  // Legacy pre-envelope files (plain text, no magic) still load.
  std::ostringstream legacy_text;
  save_campaign(legacy_text, make_campaign(c));
  const std::string legacy = write_raw("legacy.kgdp", legacy_text.str());
  EXPECT_NO_THROW(load_campaign_file(legacy));

  // A corrupt primary falls back to the previous good `.bak`
  // generation; the primary itself is quarantined.
  const std::string pair = write_raw("pair.kgdp", flipped);
  write_raw("pair.kgdp.bak", bytes);
  const CampaignState recovered = load_campaign_file(pair);
  EXPECT_EQ(recovered.config.n_min, c.n_min);
  EXPECT_TRUE(std::filesystem::exists(pair + ".corrupt"));
  std::filesystem::remove_all(dir);
}

TEST(Campaign, LoadRejectsMalformedFiles) {
  std::stringstream bad_magic("kgdp-graph 1\n");
  EXPECT_THROW(load_campaign(bad_magic), std::runtime_error);
  std::stringstream truncated(
      "kgdp-campaign 1\nschema_version 1\ngrid 3 3 4 5\nmode exhaustive\n");
  EXPECT_THROW(load_campaign(truncated), std::runtime_error);
  std::stringstream bad_mode(
      "kgdp-campaign 1\nschema_version 1\ngrid 3 3 4 5\nmode maybe\n");
  EXPECT_THROW(load_campaign(bad_mode), std::runtime_error);
}

// Acceptance drill 1: kill/resume. A campaign over G(3, 4..5) interrupted
// every few chunks and resumed from its checkpoint file — as a fresh
// process would — must reproduce the uninterrupted run bit-identically.
TEST(Campaign, InterruptedAndResumedMatchesUninterrupted) {
  const CampaignConfig c = acceptance_config();

  CampaignRunner fresh(make_campaign(c), /*checkpoint_path=*/"");
  const RunOutcome fresh_out = fresh.run();
  ASSERT_TRUE(fresh_out.complete);
  ASSERT_TRUE(fresh_out.all_hold);

  const std::string path = testing::TempDir() + "kgdp_resume.kgdp";
  write_campaign_file(path, make_campaign(c));
  int restarts = 0;
  while (true) {
    // Each iteration reloads from disk, exactly like a fresh process.
    CampaignRunner runner(load_campaign_file(path), path);
    const RunOutcome out = runner.run(chunk_limit(3));
    if (out.complete) {
      ASSERT_TRUE(out.all_hold);
      const CampaignState& resumed = runner.state();
      ASSERT_EQ(resumed.instances.size(), fresh.state().instances.size());
      for (std::size_t i = 0; i < resumed.instances.size(); ++i) {
        const InstanceState& a = fresh.state().instances[i];
        const InstanceState& b = resumed.instances[i];
        EXPECT_EQ(b.status, InstanceStatus::kDone);
        expect_identical(a.result, b.result,
                         "G(" + std::to_string(a.n) + "," +
                             std::to_string(a.k) + ") after " +
                             std::to_string(restarts) + " restarts");
      }
      break;
    }
    ++restarts;
    ASSERT_LT(restarts, 100) << "campaign failed to make progress";
  }
  EXPECT_GT(restarts, 1);  // the drill actually interrupted mid-sweep

  // And the campaign results equal a direct uninterrupted CheckSession.
  for (const InstanceState& inst : fresh.state().instances) {
    const auto sg = kgd::build_solution(inst.n, inst.k);
    ASSERT_TRUE(sg);
    verify::CheckRequest req;
    req.max_faults = inst.k;
    verify::CheckSession session(*sg, req);
    session.run();
    expect_identical(session.result(), inst.result,
                     "direct session G(" + std::to_string(inst.n) + "," +
                         std::to_string(inst.k) + ")");
  }
}

// Acceptance drill 2: shard/merge. The same grid split across 4 shard
// campaigns and merged must tile the fault space exactly and reproduce
// the unsharded run bit-identically.
TEST(Campaign, FourShardMergeMatchesUnsharded) {
  const CampaignConfig base = acceptance_config();
  CampaignRunner unsharded(make_campaign(base), /*checkpoint_path=*/"");
  ASSERT_TRUE(unsharded.run().complete);

  std::vector<CampaignState> shards;
  for (std::uint32_t i = 0; i < 4; ++i) {
    CampaignConfig c = base;
    c.shard_index = i;
    c.shard_count = 4;
    CampaignRunner runner(make_campaign(c), /*checkpoint_path=*/"");
    const RunOutcome out = runner.run();
    ASSERT_TRUE(out.complete) << "shard " << i;
    shards.push_back(runner.state());
  }

  const CampaignState merged = merge_shards(shards);
  EXPECT_EQ(merged.config.shard_count, 1u);
  ASSERT_EQ(merged.instances.size(), unsharded.state().instances.size());
  for (std::size_t i = 0; i < merged.instances.size(); ++i) {
    const InstanceState& a = unsharded.state().instances[i];
    const InstanceState& b = merged.instances[i];
    const std::string tag =
        "G(" + std::to_string(a.n) + "," + std::to_string(a.k) + ")";
    expect_identical(a.result, b.result, tag);
    // Per-shard counters tile the quantifier domain exactly.
    const std::uint64_t domain =
        fault::FaultEnumerator(kgd::build_solution(a.n, a.k)->num_nodes(),
                               a.k)
            .total();
    std::uint64_t checked = 0, solved = 0, pruned = 0;
    for (const CampaignState& shard : shards) {
      checked += shard.instances[i].result.fault_sets_checked;
      solved += shard.instances[i].result.fault_sets_solved;
      pruned += shard.instances[i].result.orbits_pruned;
    }
    EXPECT_EQ(checked, domain) << tag;
    EXPECT_EQ(solved + pruned, domain) << tag;
  }
}

TEST(Campaign, MergeRejectsInconsistentShards) {
  CampaignConfig c = acceptance_config();
  c.k_max = 4;  // one small instance keeps this test cheap
  c.shard_count = 2;

  std::vector<CampaignState> shards;
  for (std::uint32_t i = 0; i < 2; ++i) {
    CampaignConfig ci = c;
    ci.shard_index = i;
    CampaignRunner runner(make_campaign(ci), "");
    ASSERT_TRUE(runner.run().complete);
    shards.push_back(runner.state());
  }

  EXPECT_THROW(merge_shards({}), std::invalid_argument);
  // Wrong shard count: one file for a 2-shard campaign.
  EXPECT_THROW(merge_shards({shards[0]}), std::invalid_argument);
  // Duplicate shard index.
  EXPECT_THROW(merge_shards({shards[0], shards[0]}), std::invalid_argument);
  // Config drift between files.
  CampaignState drifted = shards[1];
  drifted.config.seed ^= 1;
  EXPECT_THROW(merge_shards({shards[0], drifted}), std::invalid_argument);
  // Unfinished instance.
  CampaignState unfinished = shards[1];
  unfinished.instances[0].status = InstanceStatus::kRunning;
  EXPECT_THROW(merge_shards({shards[0], unfinished}), std::invalid_argument);
  // The untampered pair still merges.
  const CampaignState merged = merge_shards(shards);
  EXPECT_TRUE(merged.instances[0].result.holds);
}

TEST(Campaign, TelemetryEventsAreVersionedJsonl) {
  CampaignConfig c = acceptance_config();
  c.k_max = 4;
  c.chunk = 500;
  std::ostringstream sink;
  TelemetryWriter telemetry(&sink);
  CampaignRunner runner(make_campaign(c), "", &telemetry);
  ASSERT_TRUE(runner.run().complete);

  std::istringstream lines(sink.str());
  std::string line;
  std::uint64_t seq = 0;
  bool saw_run_start = false, saw_chunk = false, saw_instance_done = false,
       saw_campaign_done = false;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.front(), '{') << line;
    EXPECT_EQ(line.back(), '}') << line;
    EXPECT_NE(line.find("\"schema_version\":" +
                        std::to_string(io::kSchemaVersion)),
              std::string::npos)
        << line;
    EXPECT_NE(line.find("\"seq\":" + std::to_string(seq)), std::string::npos)
        << line;
    ++seq;
    saw_run_start |= line.find("\"event\":\"run_start\"") != std::string::npos;
    saw_chunk |= line.find("\"event\":\"chunk\"") != std::string::npos;
    saw_instance_done |=
        line.find("\"event\":\"instance_done\"") != std::string::npos;
    saw_campaign_done |=
        line.find("\"event\":\"campaign_done\"") != std::string::npos;
  }
  EXPECT_TRUE(saw_run_start);
  EXPECT_TRUE(saw_chunk);
  EXPECT_TRUE(saw_instance_done);
  EXPECT_TRUE(saw_campaign_done);
  EXPECT_GE(seq, 4u);
  // The instance_done event embeds the shared check_result_to_json view.
  EXPECT_NE(sink.str().find("\"fault_sets_checked\""), std::string::npos);
}

TEST(Campaign, StatusSummaryShowsProgress) {
  const CampaignConfig c = acceptance_config();
  CampaignRunner runner(make_campaign(c), "");
  const std::string pending = status_summary(runner.state());
  EXPECT_NE(pending.find("G(3,4): pending"), std::string::npos) << pending;

  runner.run(chunk_limit(3));
  const std::string running = status_summary(runner.state());
  EXPECT_NE(running.find("running (cursor at slot"), std::string::npos)
      << running;

  runner.run();
  const std::string done = status_summary(runner.state());
  EXPECT_NE(done.find("G(3,4): HOLDS"), std::string::npos) << done;
  EXPECT_NE(done.find("G(3,5): HOLDS"), std::string::npos) << done;
  EXPECT_NE(done.find("2 done (0 failing), 0 running, 0 pending"),
            std::string::npos)
      << done;
}

}  // namespace
}  // namespace kgdp::campaign
