#include "verify/synthesis.hpp"

#include <gtest/gtest.h>

#include "graph/isomorphism.hpp"
#include "kgd/bounds.hpp"
#include "kgd/small_n.hpp"
#include "verify/checker.hpp"

namespace kgdp::verify {
namespace {

using kgd::Role;
using kgd::SolutionGraph;

TEST(Shapes, RespectDegreeConstraints) {
  const SynthSpec spec{3, 2, 5};  // n=3, k=2, max degree 5
  for (const CandidateShape& s : enumerate_shapes(spec)) {
    int sum_in = 0, sum_out = 0, deg_sum = 0;
    for (std::size_t v = 0; v < s.att_in.size(); ++v) {
      sum_in += s.att_in[v];
      sum_out += s.att_out[v];
      deg_sum += s.proc_degree[v];
      const int total = s.att_in[v] + s.att_out[v] + s.proc_degree[v];
      EXPECT_GE(total, spec.k + 2);            // Lemma 3.1
      EXPECT_LE(total, spec.max_total_degree);
      EXPECT_GE(s.proc_degree[v], spec.k + 1);  // Lemma 3.4 (n > 1)
    }
    EXPECT_EQ(sum_in, spec.k + 1);
    EXPECT_EQ(sum_out, spec.k + 1);
    EXPECT_EQ(deg_sum % 2, 0);
  }
  EXPECT_FALSE(enumerate_shapes(spec).empty());
}

TEST(Assemble, ProducesNodeOptimalGraphs) {
  const SynthSpec spec{1, 2, 4};
  const auto shapes = enumerate_shapes(spec);
  ASSERT_FALSE(shapes.empty());
  const graph::Graph clique = graph::make_complete(3);
  const SolutionGraph sg = assemble(spec, shapes.front(), clique);
  EXPECT_TRUE(sg.is_node_optimal());
  EXPECT_TRUE(sg.all_terminals_degree_one());
}

TEST(ExhaustiveSynthesis, FindsG1kAndItIsUnique) {
  // Lemma 3.7: the clique with one input and one output per processor is
  // the unique standard solution for n = 1. Exhaustive search over all
  // candidates must find solutions, and all of them must be isomorphic
  // (role-colored) to make_g1k(k).
  for (int k = 2; k <= 3; ++k) {
    const SynthSpec spec{1, k, k + 2};
    const SolutionGraph reference = kgd::make_g1k(k);
    std::vector<SolutionGraph> found;
    SynthLimits limits;
    limits.max_solutions = 0;  // find all
    const SynthStats stats = enumerate_standard_solutions(
        spec, limits, [&](const SolutionGraph& sg) {
          found.push_back(sg);
          return true;
        });
    EXPECT_TRUE(stats.search_space_exhausted);
    ASSERT_GE(found.size(), 1u) << "k=" << k;
    std::vector<int> color_ref, color_cand;
    for (auto r : reference.roles()) color_ref.push_back(static_cast<int>(r));
    for (const SolutionGraph& sg : found) {
      color_cand.clear();
      for (auto r : sg.roles()) color_cand.push_back(static_cast<int>(r));
      EXPECT_TRUE(graph::are_isomorphic(sg.graph(), reference.graph(),
                                        &color_cand, &color_ref))
          << "k=" << k << ": non-canonical standard solution found";
    }
  }
}

TEST(ExhaustiveSynthesis, Lemma314NoDegree4SolutionForN5K2) {
  // Lemma 3.14: no standard solution with max processor degree k+2 = 4
  // exists for n = 5, k = 2. The paper proves this with a case analysis
  // (Figures 5–9); we prove it by exhausting the search space.
  const SynthSpec spec{5, 2, 4};
  SynthLimits limits;
  limits.max_solutions = 1;
  const SynthStats stats = enumerate_standard_solutions(
      spec, limits, [](const SolutionGraph&) { return true; });
  EXPECT_EQ(stats.solutions, 0u);
  EXPECT_TRUE(stats.search_space_exhausted);
  EXPECT_GT(stats.graphs_enumerated, 0u);
}

TEST(ExhaustiveSynthesis, FindsDegreeOptimalG62) {
  // Figure 10's parameters: a degree-4 standard solution for (6,2)
  // exists and the enumerator can find one.
  const SynthSpec spec{6, 2, 4};
  SynthLimits limits;
  limits.max_solutions = 1;
  std::optional<SolutionGraph> found;
  enumerate_standard_solutions(spec, limits,
                               [&](const SolutionGraph& sg) {
                                 found = sg;
                                 return false;
                               });
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(found->max_processor_degree(), 4);
  EXPECT_TRUE(run_check(*found, CheckRequest::exhaustive(2)).holds);
}

TEST(StochasticSynthesis, RediscoversG62) {
  const SynthSpec spec{6, 2, 4};
  const auto sg = synthesize_stochastic(spec, /*seed=*/123,
                                        /*max_restarts=*/64,
                                        /*iters_per_restart=*/20000);
  ASSERT_TRUE(sg.has_value());
  EXPECT_TRUE(sg->is_standard());
  EXPECT_EQ(sg->max_processor_degree(), 4);
  EXPECT_TRUE(run_check(*sg, CheckRequest::exhaustive(2)).holds);
}

TEST(StochasticSynthesis, DifferentSeedsBothSucceed) {
  const SynthSpec spec{6, 2, 4};
  EXPECT_TRUE(synthesize_stochastic(spec, 1, 64, 20000).has_value());
  EXPECT_TRUE(synthesize_stochastic(spec, 2, 64, 20000).has_value());
}

TEST(StochasticSynthesis, ImpossibleSpecReturnsNullopt) {
  // Below the Lemma 3.1 floor no shape exists at all.
  const SynthSpec spec{3, 2, 3};  // max degree 3 < k+2
  EXPECT_TRUE(enumerate_shapes(spec).empty());
  EXPECT_FALSE(synthesize_stochastic(spec, 3, 4, 100).has_value());
}

}  // namespace
}  // namespace kgdp::verify
