#!/bin/sh
# kill-9 chaos drill for the durable-checkpoint layer.
#
#   chaos_kill9.sh <kgd_cli> campaign          <kills> <workdir>
#   chaos_kill9.sh <kgd_cli> daemon            <kills> <workdir>
#   chaos_kill9.sh <kgd_cli> fleet             <kills> <workdir>
#   chaos_kill9.sh <kgd_cli> fleet-coordinator <kills> <workdir>
#
# campaign: SIGKILLs a live `campaign run` / `campaign resume` <kills>
# times at staggered offsets, then resumes to completion and diffs the
# per-instance verdict lines against an uninterrupted reference run.
# daemon: SIGKILLs a live kgdd mid-verify <kills> times; each restart
# resumes from the periodic session checkpoint (or starts fresh when
# the kill landed before the first one); the final verdict's
# deterministic fields must match an uninterrupted daemon's.
# fleet: runs `campaign run --fleet` over three kgdd workers while
# SIGKILLing and restarting the workers round-robin under it; the
# coordinator must reassign the orphaned leases (resuming from their
# last streamed cursors) and the final verdict lines must diff clean
# against an uninterrupted single-node reference run.
# fleet-coordinator: the other half of the fleet drill — the workers
# stay up while the *coordinator* is SIGKILLed <kills> times mid-
# campaign; each restart resumes from the durable lease-table
# checkpoint (DIR/fleet.kgdp), re-fences every unfinished lease at a
# higher epoch, and the final verdicts must diff clean against the
# single-node reference.
#
# Grid/effort knobs (env, with defaults sized for CI):
#   NMIN NMAX KMIN KMAX CHUNK  campaign grid and chunk size
#   DN DK DCHUNK               daemon verify instance and chunk size
#   FLEET_CHUNK                fleet lease chunk (cursor cadence)
set -u

CLI=$1
MODE=$2
KILLS=$3
WORK=$4

NMIN=${NMIN:-3} NMAX=${NMAX:-3} KMIN=${KMIN:-4} KMAX=${KMAX:-5}
CHUNK=${CHUNK:-150}
DN=${DN:-3} DK=${DK:-6} DCHUNK=${DCHUNK:-25}
FLEET_CHUNK=${FLEET_CHUNK:-25}

rm -rf "$WORK"
mkdir -p "$WORK"

fail() {
  echo "chaos_kill9: FAIL: $*" >&2
  exit 1
}

# Staggered kill delay for iteration $1: cycles 0.05s .. 0.40s so the
# SIGKILL lands at different points of the checkpoint cycle each time.
kill_delay() {
  printf "0.%02d" $(( ($1 % 8) * 5 + 5 ))
}

campaign_drill() {
  echo "chaos_kill9: reference campaign run (uninterrupted)"
  "$CLI" campaign run --nmin="$NMIN" --nmax="$NMAX" --kmin="$KMIN" \
    --kmax="$KMAX" --chunk="$CHUNK" --checkpoint-every=1 \
    --out="$WORK/ref" >/dev/null || fail "reference run failed"
  "$CLI" campaign status --out="$WORK/ref" | grep -E "HOLDS|FAILS" \
    > "$WORK/ref_verdicts.txt" || fail "reference produced no verdicts"

  i=0
  while [ "$i" -lt "$KILLS" ]; do
    if [ -f "$WORK/chaos/checkpoint.kgdp" ]; then
      "$CLI" campaign resume --out="$WORK/chaos" >/dev/null 2>&1 &
    else
      "$CLI" campaign run --nmin="$NMIN" --nmax="$NMAX" --kmin="$KMIN" \
        --kmax="$KMAX" --chunk="$CHUNK" --checkpoint-every=1 \
        --out="$WORK/chaos" >/dev/null 2>&1 &
    fi
    pid=$!
    sleep "$(kill_delay "$i")"
    kill -9 "$pid" 2>/dev/null
    wait "$pid" 2>/dev/null
    i=$((i + 1))
    echo "chaos_kill9: campaign kill $i/$KILLS done"
  done

  echo "chaos_kill9: final resume to completion"
  "$CLI" campaign resume --out="$WORK/chaos" >/dev/null \
    || fail "final resume failed"
  "$CLI" campaign status --out="$WORK/chaos" | grep -E "HOLDS|FAILS" \
    > "$WORK/chaos_verdicts.txt" || fail "chaos run produced no verdicts"

  diff -u "$WORK/ref_verdicts.txt" "$WORK/chaos_verdicts.txt" \
    || fail "campaign verdicts diverged after $KILLS kills"
  echo "chaos_kill9: campaign verdicts identical after $KILLS kills"
}

# Extracts the deterministic verdict fields from the last (terminal)
# frame of a request transcript; timing and scheduling fields are
# explicitly nondeterministic and excluded.
verdict_fields() {
  tail -n 1 "$1" | tr ',{}' '\n\n\n' | \
    grep -E '"(holds|exhaustive|fault_sets_checked|fault_sets_solved|orbits_pruned|automorphism_order|solver_unknowns)"' | \
    sort
}

# Newest session checkpoint in drain dir $1 (empty when none): session
# ids seed past a dead daemon's leftovers, so the filename advances
# (kgdd-s1.kgdp, kgdd-s2.kgdp, ...) across restarts and the newest
# mtime is the one with the most progress.
latest_ckpt() {
  ls -t "$1"/kgdd-s*.kgdp 2>/dev/null | head -n 1
}

# Starts kgdd on an ephemeral port with drain dir $1; sets DAEMON_PID
# and PORT (no subshell — both must survive into the caller).
start_daemon() {
  mkdir -p "$1"
  "$CLI" serve --tcp=127.0.0.1:0 --drain-dir="$1" --chunk="$DCHUNK" \
    --checkpoint-every=1 --threads=2 > "$1/serve.log" 2>&1 &
  DAEMON_PID=$!
  PORT=""
  tries=0
  while [ -z "$PORT" ] && [ "$tries" -lt 200 ]; do
    PORT=$(sed -n 's/^kgdd: listening on tcp port \([0-9]*\)$/\1/p' \
      "$1/serve.log" 2>/dev/null)
    [ -z "$PORT" ] && sleep 0.05
    tries=$((tries + 1))
  done
  [ -n "$PORT" ] || fail "daemon did not report a listening port"
}

daemon_drill() {
  echo "chaos_kill9: reference daemon verify (uninterrupted)"
  start_daemon "$WORK/drain_ref"
  "$CLI" request verify --connect="tcp:127.0.0.1:$PORT" \
    --params="{\"n\":$DN,\"k\":$DK,\"chunk\":$DCHUNK}" \
    > "$WORK/ref_frames.txt" || fail "reference verify failed"
  kill -TERM "$DAEMON_PID" 2>/dev/null
  wait "$DAEMON_PID" 2>/dev/null
  verdict_fields "$WORK/ref_frames.txt" > "$WORK/ref_verdict.txt"
  [ -s "$WORK/ref_verdict.txt" ] || fail "reference verdict empty"

  done_early=0
  i=0
  while [ "$i" -lt "$KILLS" ]; do
    start_daemon "$WORK/drain_chaos"
    ckpt=$(latest_ckpt "$WORK/drain_chaos")
    if [ -n "$ckpt" ] && [ -f "$ckpt" ]; then
      params="{\"resume\":\"$ckpt\"}"
    else
      params="{\"n\":$DN,\"k\":$DK,\"chunk\":$DCHUNK}"
    fi
    "$CLI" request verify --connect="tcp:127.0.0.1:$PORT" \
      --params="$params" > "$WORK/chaos_frames.txt" 2>/dev/null &
    REQ_PID=$!
    sleep "$(kill_delay "$i")"
    if ! kill -9 "$DAEMON_PID" 2>/dev/null; then
      # Daemon already gone — only possible if something crashed it;
      # the request result below decides pass/fail.
      :
    fi
    wait "$DAEMON_PID" 2>/dev/null
    if wait "$REQ_PID" 2>/dev/null; then
      # The sweep finished before our kill landed: we already have a
      # terminal verdict for the resumed chain.
      done_early=1
      i=$((i + 1))
      echo "chaos_kill9: daemon kill $i/$KILLS (sweep completed first)"
      break
    fi
    i=$((i + 1))
    echo "chaos_kill9: daemon kill $i/$KILLS done"
  done

  if [ "$done_early" -eq 0 ]; then
    echo "chaos_kill9: final resumed verify to completion"
    start_daemon "$WORK/drain_chaos"
    ckpt=$(latest_ckpt "$WORK/drain_chaos")
    if [ -n "$ckpt" ] && [ -f "$ckpt" ]; then
      params="{\"resume\":\"$ckpt\"}"
    else
      params="{\"n\":$DN,\"k\":$DK,\"chunk\":$DCHUNK}"
    fi
    "$CLI" request verify --connect="tcp:127.0.0.1:$PORT" \
      --params="$params" > "$WORK/chaos_frames.txt" \
      || fail "final resumed verify failed"
    kill -TERM "$DAEMON_PID" 2>/dev/null
    wait "$DAEMON_PID" 2>/dev/null
  fi

  verdict_fields "$WORK/chaos_frames.txt" > "$WORK/chaos_verdict.txt"
  diff -u "$WORK/ref_verdict.txt" "$WORK/chaos_verdict.txt" \
    || fail "daemon verdicts diverged after $i kills"
  echo "chaos_kill9: daemon verdicts identical after $i kills"
}

# Starts fleet worker $1 on unix:$WORK/w$1.sock (bind unlinks a stale
# socket left by a SIGKILLed predecessor) and records its pid in
# W<i>_PID — no subshell, the pid must survive into the caller.
start_worker() {
  "$CLI" worker --listen="unix:$WORK/w$1.sock" --threads=2 \
    --chunk="$FLEET_CHUNK" >> "$WORK/w$1.log" 2>&1 &
  eval "W$1_PID=$!"
}

fleet_drill() {
  echo "chaos_kill9: reference campaign run (uninterrupted, single node)"
  "$CLI" campaign run --nmin="$NMIN" --nmax="$NMAX" --kmin="$KMIN" \
    --kmax="$KMAX" --chunk="$CHUNK" --out="$WORK/ref" >/dev/null \
    || fail "reference run failed"
  "$CLI" campaign status --out="$WORK/ref" | grep -E "HOLDS|FAILS" \
    > "$WORK/ref_verdicts.txt" || fail "reference produced no verdicts"

  for w in 1 2 3; do start_worker "$w"; done
  endpoints="unix:$WORK/w1.sock,unix:$WORK/w2.sock,unix:$WORK/w3.sock"
  "$CLI" campaign run --nmin="$NMIN" --nmax="$NMAX" --kmin="$KMIN" \
    --kmax="$KMAX" --fleet="$endpoints" --fleet-chunk="$FLEET_CHUNK" \
    --lease-grain=4 --min-steal=8 --out="$WORK/chaos" \
    > "$WORK/fleet.log" 2>&1 &
  CAMP_PID=$!

  landed=0
  i=0
  while [ "$i" -lt "$KILLS" ]; do
    kill -0 "$CAMP_PID" 2>/dev/null || break
    w=$(( (i % 3) + 1 ))
    pid=$(eval "echo \"\$W${w}_PID\"")
    if kill -9 "$pid" 2>/dev/null; then
      landed=$((landed + 1))
    fi
    wait "$pid" 2>/dev/null
    sleep "$(kill_delay "$i")"
    start_worker "$w"
    i=$((i + 1))
    echo "chaos_kill9: fleet kill $i/$KILLS (worker $w) done"
  done

  wait "$CAMP_PID" 2>/dev/null
  rc=$?
  for w in 1 2 3; do
    pid=$(eval "echo \"\$W${w}_PID\"")
    kill "$pid" 2>/dev/null
    wait "$pid" 2>/dev/null
  done
  [ "$rc" -eq 0 ] || fail "fleet campaign exited $rc (see $WORK/fleet.log)"
  [ "$landed" -ge 1 ] || fail "fleet campaign finished before any kill landed"

  "$CLI" campaign status --out="$WORK/chaos" | grep -E "HOLDS|FAILS" \
    > "$WORK/chaos_verdicts.txt" || fail "fleet run produced no verdicts"
  diff -u "$WORK/ref_verdicts.txt" "$WORK/chaos_verdicts.txt" \
    || fail "fleet verdicts diverged after $landed worker kills"

  # The coordinator's telemetry must show the lease lifecycle; the
  # worker_dead/lease_requeued events depend on where the kills landed,
  # so they are reported but not required.
  telemetry="$WORK/chaos/telemetry.jsonl"
  grep -q '"event":"lease_granted"' "$telemetry" \
    || fail "telemetry has no lease_granted events"
  grep -q '"event":"merge_done"' "$telemetry" \
    || fail "telemetry has no merge_done events"
  for ev in worker_dead lease_requeued lease_stolen; do
    n=$(grep -c "\"event\":\"$ev\"" "$telemetry" 2>/dev/null || true)
    echo "chaos_kill9: telemetry $ev events: ${n:-0}"
  done
  echo "chaos_kill9: fleet verdicts identical after $landed worker kills"
}

# Starts (or, once DIR/checkpoint.kgdp exists, resumes) the fleet
# campaign in the background; sets CAMP_PID.
start_coordinator() {
  if [ -f "$WORK/chaos/checkpoint.kgdp" ]; then
    "$CLI" campaign resume --fleet="$1" --fleet-chunk="$FLEET_CHUNK" \
      --lease-grain=4 --out="$WORK/chaos" >> "$WORK/fleet.log" 2>&1 &
  else
    "$CLI" campaign run --nmin="$NMIN" --nmax="$NMAX" --kmin="$KMIN" \
      --kmax="$KMAX" --fleet="$1" --fleet-chunk="$FLEET_CHUNK" \
      --lease-grain=4 --out="$WORK/chaos" >> "$WORK/fleet.log" 2>&1 &
  fi
  CAMP_PID=$!
}

fleet_coordinator_drill() {
  echo "chaos_kill9: reference campaign run (uninterrupted, single node)"
  "$CLI" campaign run --nmin="$NMIN" --nmax="$NMAX" --kmin="$KMIN" \
    --kmax="$KMAX" --chunk="$CHUNK" --out="$WORK/ref" >/dev/null \
    || fail "reference run failed"
  "$CLI" campaign status --out="$WORK/ref" | grep -E "HOLDS|FAILS" \
    > "$WORK/ref_verdicts.txt" || fail "reference produced no verdicts"

  for w in 1 2; do start_worker "$w"; done
  endpoints="unix:$WORK/w1.sock,unix:$WORK/w2.sock"

  landed=0
  done_early=0
  i=0
  while [ "$i" -lt "$KILLS" ]; do
    start_coordinator "$endpoints"
    sleep "$(kill_delay "$i")"
    if kill -9 "$CAMP_PID" 2>/dev/null; then
      landed=$((landed + 1))
    else
      done_early=1
    fi
    wait "$CAMP_PID" 2>/dev/null
    i=$((i + 1))
    echo "chaos_kill9: coordinator kill $i/$KILLS done"
    [ "$done_early" -eq 1 ] && break
  done

  echo "chaos_kill9: final resumed coordinator to completion"
  start_coordinator "$endpoints"
  wait "$CAMP_PID"
  rc=$?
  for w in 1 2; do
    pid=$(eval "echo \"\$W${w}_PID\"")
    kill "$pid" 2>/dev/null
    wait "$pid" 2>/dev/null
  done
  [ "$rc" -eq 0 ] || fail "fleet campaign exited $rc (see $WORK/fleet.log)"
  [ "$landed" -ge 1 ] \
    || fail "coordinator finished before any kill landed"
  # The merge must have retired the durable lease table — a stale one
  # could resurrect finished leases on the next campaign.
  [ ! -f "$WORK/chaos/fleet.kgdp" ] \
    || fail "lease checkpoint survived the merge"

  "$CLI" campaign status --out="$WORK/chaos" | grep -E "HOLDS|FAILS" \
    > "$WORK/chaos_verdicts.txt" || fail "fleet run produced no verdicts"
  diff -u "$WORK/ref_verdicts.txt" "$WORK/chaos_verdicts.txt" \
    || fail "fleet verdicts diverged after $landed coordinator kills"

  # Whether a resume was mid-instance depends on where the kills landed
  # relative to the first lease-table write; report, don't require.
  n=$(grep -c '"resumed":true' "$WORK/chaos/telemetry.jsonl" \
     2>/dev/null || true)
  echo "chaos_kill9: telemetry mid-instance resumes: ${n:-0}"
  echo "chaos_kill9: fleet verdicts identical after $landed" \
    "coordinator kills"
}

case "$MODE" in
  campaign) campaign_drill ;;
  daemon) daemon_drill ;;
  fleet) fleet_drill ;;
  fleet-coordinator) fleet_coordinator_drill ;;
  *) fail "unknown mode: $MODE" \
    "(want campaign|daemon|fleet|fleet-coordinator)" ;;
esac
echo "chaos_kill9: PASS ($MODE, $KILLS kills)"
