// Deterministic network-fault chaos: arms net::FaultInjector and sweeps
// every fault action (drop, dup, stall, sever) across every intercepted
// frame op of a fleet certification — client send, client receive,
// server send, server dispatch — proving the lease protocol's epoch
// fence, heartbeat kick, and cursor-resume machinery absorb a lossy,
// repeating, delaying, or disconnecting wire without ever producing a
// wrong or double-counted merge. Runs under the TSan CI lane: the
// injector perturbs thread interleavings as much as frame order.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "fleet/coordinator.hpp"
#include "kgd/factory.hpp"
#include "net/client.hpp"
#include "net/fault_inject.hpp"
#include "net/socket.hpp"
#include "service/daemon.hpp"
#include "verify/checker.hpp"

namespace kgdp {
namespace {

TEST(FaultSpec, ParsesTheEnvGrammar) {
  const auto spec = net::FaultSpec::parse("7:drop@3,dup=0.25,sever@11");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->seed, 7u);
  EXPECT_EQ(spec->drop_at, 3);
  EXPECT_EQ(spec->sever_at, 11);
  EXPECT_DOUBLE_EQ(spec->p_dup, 0.25);
  EXPECT_EQ(spec->dup_at, -1);
  EXPECT_DOUBLE_EQ(spec->p_drop, 0.0);

  for (const char* bad :
       {"", "drop@1", "x:drop@1", "5:", "5:drop@", "5:drop=1.5",
        "5:frob@2", "5:drop@-2"}) {
    EXPECT_FALSE(net::FaultSpec::parse(bad).has_value()) << bad;
  }
}

// Every test in this suite leaves the process-wide injector disarmed,
// pass or fail — an armed injector would silently fault every later
// network test in the same binary.
class FleetChaos : public ::testing::Test {
 protected:
  void TearDown() override { net::FaultInjector::instance().disarm(); }
};

class ChaosWorker {
 public:
  ChaosWorker() {
    service::DaemonConfig config;
    config.endpoints.push_back(net::Endpoint::tcp("127.0.0.1", 0));
    config.watch_stop_signal = false;
    daemon_ = std::make_unique<service::Daemon>(std::move(config));
    daemon_->start_thread();
    endpoint_ = net::Endpoint::tcp("127.0.0.1", daemon_->tcp_port());
  }

  ~ChaosWorker() {
    // Disarm before the drain handshake so teardown never faults.
    net::FaultInjector::instance().disarm();
    daemon_->begin_drain();
    daemon_->join();
  }

  const net::Endpoint& endpoint() const { return endpoint_; }

 private:
  std::unique_ptr<service::Daemon> daemon_;
  net::Endpoint endpoint_;
};

fleet::FleetConfig chaos_config(const net::Endpoint& worker) {
  fleet::FleetConfig config;
  config.workers = {worker};
  config.chunk = 16;
  config.lease_grain = 2;
  config.poll_ms = 20;
  // A dropped grant or terminal frame is recovered by the heartbeat
  // kick; keep it short so each faulted run converges quickly.
  config.heartbeat_timeout_ms = 700;
  // Severed connections must always be survivable: the budget is the
  // test's, not the protocol's.
  config.reconnect.initial_delay_ms = 10;
  config.reconnect.max_delay_ms = 100;
  config.reconnect.max_attempts = 1000;
  config.reconnect.budget_ms = 60000;
  return config;
}

TEST_F(FleetChaos, EveryFaultAtEveryProtocolOpMergesBitIdentically) {
  const auto sg = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg.has_value());
  const verify::CheckResult reference =
      verify::run_check(*sg, verify::CheckRequest::exhaustive(2));

  ChaosWorker worker;
  net::FaultInjector& injector = net::FaultInjector::instance();

  // Pass 1: a no-fault armed run counts the intercepted frame ops —
  // the sweep space for pass 2.
  injector.arm(net::FaultSpec{});
  {
    fleet::Coordinator coordinator(chaos_config(worker.endpoint()));
    const fleet::InstanceOutcome out =
        coordinator.run_instance(*sg, 6, 2, 2, verify::PruneMode::kAuto);
    EXPECT_EQ(out.result.holds, reference.holds);
    EXPECT_EQ(out.result.fault_sets_solved, reference.fault_sets_solved);
  }
  const std::uint64_t n_ops = injector.ops();
  injector.disarm();
  ASSERT_GT(n_ops, 8u) << "transport stopped routing through the injector";

  // Pass 2: one fault per run, swept across the op sequence. Faulted
  // runs take different op paths than the clean one (retries, replays),
  // so indices near n_ops still land mid-protocol. Stride keeps the
  // sweep inside the suite budget on slow sanitizer lanes while still
  // touching every protocol phase for every action.
  const std::int64_t stride =
      std::max<std::int64_t>(1, static_cast<std::int64_t>(n_ops) / 24);
  struct ActionCase {
    const char* name;
    void (*apply)(net::FaultSpec&, std::int64_t);
  };
  const ActionCase actions[] = {
      {"drop", [](net::FaultSpec& s, std::int64_t at) { s.drop_at = at; }},
      {"dup", [](net::FaultSpec& s, std::int64_t at) { s.dup_at = at; }},
      {"stall", [](net::FaultSpec& s, std::int64_t at) { s.stall_at = at; }},
      {"sever", [](net::FaultSpec& s, std::int64_t at) { s.sever_at = at; }},
  };
  for (const ActionCase& action : actions) {
    for (std::int64_t at = 0; at < static_cast<std::int64_t>(n_ops);
         at += stride) {
      const std::string tag =
          std::string(action.name) + "@" + std::to_string(at);
      net::FaultSpec spec;
      action.apply(spec, at);
      injector.arm(spec);
      fleet::Coordinator coordinator(chaos_config(worker.endpoint()));
      const fleet::InstanceOutcome out =
          coordinator.run_instance(*sg, 6, 2, 2, verify::PruneMode::kAuto);
      injector.disarm();
      EXPECT_EQ(out.result.holds, reference.holds) << tag;
      EXPECT_EQ(out.result.exhaustive, reference.exhaustive) << tag;
      EXPECT_EQ(out.result.fault_sets_checked, reference.fault_sets_checked)
          << tag;
      EXPECT_EQ(out.result.fault_sets_solved, reference.fault_sets_solved)
          << tag;
      EXPECT_EQ(out.result.solver_unknowns, reference.solver_unknowns)
          << tag;
      EXPECT_EQ(out.result.orbits_pruned, reference.orbits_pruned) << tag;
      EXPECT_EQ(out.result.automorphism_order,
                reference.automorphism_order)
          << tag;
    }
  }
}

TEST_F(FleetChaos, ProbabilisticallyLossyWireStillConverges) {
  // Independent low-probability faults on every op — the "bad switch"
  // configuration rather than a single surgical fault. Deterministic
  // given the seed; three seeds cover different interleavings.
  const auto sg = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg.has_value());
  const verify::CheckResult reference =
      verify::run_check(*sg, verify::CheckRequest::exhaustive(2));

  ChaosWorker worker;
  for (const std::uint64_t seed : {11u, 23u, 47u}) {
    net::FaultSpec spec;
    spec.seed = seed;
    spec.p_drop = 0.01;
    spec.p_dup = 0.02;
    spec.p_stall = 0.02;
    net::FaultInjector::instance().arm(spec);
    fleet::Coordinator coordinator(chaos_config(worker.endpoint()));
    const fleet::InstanceOutcome out =
        coordinator.run_instance(*sg, 6, 2, 2, verify::PruneMode::kAuto);
    net::FaultInjector::instance().disarm();
    const std::string tag = "seed " + std::to_string(seed);
    EXPECT_EQ(out.result.holds, reference.holds) << tag;
    EXPECT_EQ(out.result.fault_sets_checked, reference.fault_sets_checked)
        << tag;
    EXPECT_EQ(out.result.fault_sets_solved, reference.fault_sets_solved)
        << tag;
    EXPECT_EQ(out.result.orbits_pruned, reference.orbits_pruned) << tag;
  }
}

}  // namespace
}  // namespace kgdp
