#include "kgd/small_n.hpp"

#include <gtest/gtest.h>

#include "kgd/bounds.hpp"
#include "verify/checker.hpp"

namespace kgdp::kgd {
namespace {

class SmallNParam : public ::testing::TestWithParam<int> {};

TEST_P(SmallNParam, G1kStructure) {
  const int k = GetParam();
  const SolutionGraph sg = make_g1k(k);
  EXPECT_TRUE(sg.is_standard());
  EXPECT_EQ(sg.num_processors(), 1 + k);
  EXPECT_EQ(sg.num_inputs(), k + 1);
  EXPECT_EQ(sg.num_outputs(), k + 1);
  // Lemma 3.7: clique + one input + one output each -> degree k+2.
  EXPECT_EQ(sg.max_processor_degree(), k + 2);
  EXPECT_EQ(sg.min_processor_degree(), k + 2);
  EXPECT_TRUE(audit_bounds(sg).empty());
}

TEST_P(SmallNParam, G1kIsGracefullyDegradable) {
  const int k = GetParam();
  const auto res = verify::run_check(make_g1k(k), verify::CheckRequest::exhaustive(k));
  EXPECT_TRUE(res.holds) << (res.counterexample
                                 ? res.counterexample->to_string()
                                 : "");
  EXPECT_TRUE(res.exhaustive);
  EXPECT_EQ(res.solver_unknowns, 0u);
}

TEST_P(SmallNParam, G2kStructure) {
  const int k = GetParam();
  const SolutionGraph sg = make_g2k(k);
  EXPECT_TRUE(sg.is_standard());
  EXPECT_EQ(sg.num_processors(), 2 + k);
  // Lemma 3.9 / Corollary 3.10: max degree k+3 is optimal for n = 2.
  EXPECT_EQ(sg.max_processor_degree(), k + 3);
  EXPECT_EQ(sg.max_processor_degree(), max_degree_lower_bound(2, k));
}

TEST_P(SmallNParam, G2kIsGracefullyDegradable) {
  const int k = GetParam();
  const auto res = verify::run_check(make_g2k(k), verify::CheckRequest::exhaustive(k));
  EXPECT_TRUE(res.holds);
}

TEST_P(SmallNParam, G3kStructure) {
  const int k = GetParam();
  const SolutionGraph sg = make_g3k(k);
  EXPECT_TRUE(sg.is_standard());
  EXPECT_EQ(sg.num_processors(), 3 + k);
  EXPECT_EQ(sg.max_processor_degree(), achieved_max_degree(3, k));
  EXPECT_TRUE(audit_bounds(sg).empty()) << audit_bounds(sg).front();
}

TEST_P(SmallNParam, G3kIsGracefullyDegradable) {
  const int k = GetParam();
  const auto res = verify::run_check(make_g3k(k), verify::CheckRequest::exhaustive(k));
  EXPECT_TRUE(res.holds) << (res.counterexample
                                 ? res.counterexample->to_string()
                                 : "");
}

INSTANTIATE_TEST_SUITE_P(KSweep, SmallNParam, ::testing::Range(1, 6));

TEST(G3k, MatchingParityMirrorsFigures2And3) {
  // k odd (Figure 2): k+3 processors pair perfectly, every processor
  // misses exactly one clique edge.
  const SolutionGraph odd = make_g3k(3);
  for (Node v : odd.processors()) {
    EXPECT_EQ(processor_neighbor_count(odd, v), 3 + 1);  // k+1
  }
  // k even (Figure 3): p_{k+2} stays unmatched -> one processor keeps all
  // k+2 processor neighbors.
  const SolutionGraph even = make_g3k(2);
  int full = 0;
  for (Node v : even.processors()) {
    if (processor_neighbor_count(even, v) == 2 + 2) ++full;
  }
  EXPECT_EQ(full, 1);
}

TEST(G3k, TerminalIndexPatternOfTheConstruction) {
  // Ti = {0..k-2, k, k+2}, To = {0..k-1, k+1}: processors p_{k-1} and
  // p_{k+1} have exactly one terminal; p_0..p_{k-2} have two.
  const int k = 4;
  const SolutionGraph sg = make_g3k(k);
  const auto procs = sg.processors();
  auto terminals_of = [&](Node v) {
    int c = 0;
    for (Node w : sg.graph().neighbors(v)) {
      if (sg.role(w) != Role::kProcessor) ++c;
    }
    return c;
  };
  for (int j = 0; j <= k - 2; ++j) EXPECT_EQ(terminals_of(procs[j]), 2);
  EXPECT_EQ(terminals_of(procs[k - 1]), 1);  // o_{k-1} only
  EXPECT_EQ(terminals_of(procs[k]), 1);      // i_k only
  EXPECT_EQ(terminals_of(procs[k + 1]), 1);  // o_{k+1} only
  EXPECT_EQ(terminals_of(procs[k + 2]), 1);  // i_{k+2} only
}

TEST(G1k, BeyondDesignFaultBudgetFails) {
  // k+1 faults can kill every input terminal's attachment point... in
  // G(1,1), killing both processors leaves no pipeline.
  const SolutionGraph sg = make_g1k(1);
  const auto res = verify::run_check(sg, verify::CheckRequest::exhaustive(2));
  EXPECT_FALSE(res.holds);
  ASSERT_TRUE(res.counterexample.has_value());
}

}  // namespace
}  // namespace kgdp::kgd
