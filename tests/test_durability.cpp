// Durability acceptance suite for util::durable_file + FaultInjector:
// CRC32C known answers, envelope round-trips, legacy acceptance, the
// corruption-classification corpus, quarantine/backup fallback, fault
// spec parsing, injector determinism — and the tentpole drill: a
// simulated crash swept across *every* intercepted syscall of a
// checkpoint rewrite, for both the kgdd session format and the
// campaign format, proving the file reloads as exactly the old or the
// new checkpoint at each crash point (never a parse error, never a
// torn hybrid).
#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <functional>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "campaign/campaign.hpp"
#include "campaign/checkpoint.hpp"
#include "service/checkpoint.hpp"
#include "util/durable_file.hpp"
#include "util/fault_inject.hpp"

namespace kgdp::util {
namespace {

// Disarms the process-wide injector even when an assertion bails out
// of the test body early.
struct InjectorGuard {
  ~InjectorGuard() { FaultInjector::instance().disarm(); }
};

std::string test_dir(const std::string& tag) {
  const std::string dir = testing::TempDir() + "kgdp_dur_" + tag + "_" +
                          std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(Crc32c, KnownAnswerVectors) {
  // The canonical Castagnoli check value (RFC 3720 appendix B style).
  EXPECT_EQ(crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(crc32c("", 0), 0u);
  // 32 zero bytes — a second fixed vector so a table typo can't pass.
  const std::string zeros(32, '\0');
  EXPECT_EQ(crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
}

TEST(Crc32c, IncrementalChainingMatchesOneShot) {
  const std::string data = "gracefully degradable pipeline networks";
  const std::uint32_t whole = crc32c(data.data(), data.size());
  std::uint32_t chained = 0;
  for (std::size_t i = 0; i < data.size(); i += 7) {
    const std::size_t n = std::min<std::size_t>(7, data.size() - i);
    chained = crc32c(data.data() + i, n, chained);
  }
  EXPECT_EQ(chained, whole);
}

TEST(DurableFile, EnvelopeRoundTripsPayloadExactly) {
  const std::string dir = test_dir("roundtrip");
  const std::string path = dir + "/cp.kgdp";
  std::string payload = "kgdp-campaign 1\nbinary.bytes too\n"
                        "and a longer tail to cross buffer sizes\n";
  payload[20] = '\0';  // embedded NUL: payloads are bytes, not C strings
  durable_write_file(path, payload);
  const PayloadResult res = read_durable_payload(path);
  EXPECT_EQ(static_cast<int>(res.status), static_cast<int>(PayloadStatus::kOk));
  EXPECT_FALSE(res.legacy);
  EXPECT_EQ(res.payload, payload);

  // Empty payloads are legal (length 0, CRC of nothing).
  durable_write_file(path, "");
  const PayloadResult empty = read_durable_payload(path);
  EXPECT_EQ(static_cast<int>(empty.status),
            static_cast<int>(PayloadStatus::kOk));
  EXPECT_TRUE(empty.payload.empty());
  std::filesystem::remove_all(dir);
}

TEST(DurableFile, LegacyUnenvelopedFilesAreAcceptedVerbatim) {
  const std::string dir = test_dir("legacy");
  const std::string path = dir + "/old.kgdp";
  const std::string text = "kgdp-campaign 1\nschema_version 1\n";
  spit(path, text);
  const PayloadResult res = read_durable_payload(path);
  EXPECT_EQ(static_cast<int>(res.status), static_cast<int>(PayloadStatus::kOk));
  EXPECT_TRUE(res.legacy);
  EXPECT_EQ(res.payload, text);
  std::filesystem::remove_all(dir);
}

TEST(DurableFile, CorruptionCorpusClassifies) {
  const std::string dir = test_dir("corpus");
  const std::string good = dir + "/good.kgdp";
  const std::string payload(300, 'x');
  durable_write_file(good, payload);
  const std::string bytes = slurp(good);
  ASSERT_GT(bytes.size(), payload.size());

  const auto classify = [&](const std::string& content) {
    const std::string path = dir + "/case.kgdp";
    spit(path, content);
    return read_durable_payload(path).status;
  };

  EXPECT_EQ(static_cast<int>(read_durable_payload(dir + "/nope.kgdp").status),
            static_cast<int>(PayloadStatus::kMissing));
  // The classic non-durable artifact: file truncated to zero length.
  EXPECT_EQ(static_cast<int>(classify("")),
            static_cast<int>(PayloadStatus::kTruncated));
  // Torn inside the header, and torn inside the payload.
  EXPECT_EQ(static_cast<int>(classify(bytes.substr(0, 10))),
            static_cast<int>(PayloadStatus::kTruncated));
  EXPECT_EQ(static_cast<int>(classify(bytes.substr(0, bytes.size() - 30))),
            static_cast<int>(PayloadStatus::kTruncated));
  // One flipped payload bit: CRC mismatch.
  std::string flip_payload = bytes;
  flip_payload[bytes.size() / 2] ^= 0x01;
  EXPECT_EQ(static_cast<int>(classify(flip_payload)),
            static_cast<int>(PayloadStatus::kCorrupt));
  // One flipped trailer (CRC) bit.
  std::string flip_crc = bytes;
  flip_crc[bytes.size() - 1] ^= 0x80;
  EXPECT_EQ(static_cast<int>(classify(flip_crc)),
            static_cast<int>(PayloadStatus::kCorrupt));
  // Unknown envelope version.
  std::string wrong_version = bytes;
  wrong_version[8] = 0x7f;
  EXPECT_EQ(static_cast<int>(classify(wrong_version)),
            static_cast<int>(PayloadStatus::kCorrupt));
  // Trailing garbage after the trailer.
  EXPECT_EQ(static_cast<int>(classify(bytes + "zzz")),
            static_cast<int>(PayloadStatus::kCorrupt));
  std::filesystem::remove_all(dir);
}

TEST(DurableFile, QuarantinesPrimaryAndFallsBackToBackup) {
  const std::string dir = test_dir("bak");
  const std::string path = dir + "/cp.kgdp";
  durable_write_file(path, "generation A\n");
  durable_write_file(path, "generation B\n");  // links A to cp.kgdp.bak
  ASSERT_TRUE(std::filesystem::exists(path + ".bak"));

  std::string damaged = slurp(path);
  damaged[22] ^= 0x04;  // past the 20-byte header: a payload bit
  spit(path, damaged);

  std::string loaded;
  CheckpointLoadInfo info;
  load_checkpoint_file(
      path,
      [&loaded](std::istream& in) {
        loaded.assign(std::istreambuf_iterator<char>(in),
                      std::istreambuf_iterator<char>());
      },
      &info);
  EXPECT_EQ(loaded, "generation A\n");
  EXPECT_TRUE(info.from_backup);
  ASSERT_EQ(info.quarantined.size(), 1u);
  EXPECT_EQ(info.quarantined[0], path + ".corrupt");
  EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
  EXPECT_FALSE(std::filesystem::exists(path));

  // With the backup also gone, the load reports the *primary's* defect.
  spit(path, damaged);
  std::filesystem::remove(path + ".bak");
  try {
    load_checkpoint_file(path, [](std::istream&) {});
    ADD_FAILURE() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(std::string(to_string(e.kind())),
              to_string(CheckpointErrorKind::kCorrupt));
  }
  std::filesystem::remove_all(dir);
}

// Read-only load options (client-supplied paths): a damaged primary
// stays exactly where it is — no quarantine rename — and a pristine
// `.bak` sibling is never probed.
TEST(DurableFile, ReadOnlyLoadNeitherQuarantinesNorProbesBackup) {
  const std::string dir = test_dir("readonly");
  const std::string path = dir + "/cp.kgdp";
  durable_write_file(path, "generation A\n");
  durable_write_file(path, "generation B\n");  // links A to cp.kgdp.bak
  ASSERT_TRUE(std::filesystem::exists(path + ".bak"));

  std::string damaged = slurp(path);
  damaged[22] ^= 0x04;  // past the 20-byte header: a payload bit
  spit(path, damaged);

  CheckpointLoadOptions read_only;
  read_only.try_backup = false;
  read_only.quarantine = false;
  CheckpointLoadInfo info;
  try {
    load_checkpoint_file(
        path, [](std::istream&) {}, &info, read_only);
    ADD_FAILURE() << "expected CheckpointError";
  } catch (const CheckpointError& e) {
    EXPECT_EQ(std::string(to_string(e.kind())),
              to_string(CheckpointErrorKind::kCorrupt));
  }
  EXPECT_TRUE(info.quarantined.empty());
  EXPECT_EQ(slurp(path), damaged);  // still in place, byte-identical
  EXPECT_FALSE(std::filesystem::exists(path + ".corrupt"));
  EXPECT_TRUE(std::filesystem::exists(path + ".bak"));
  std::filesystem::remove_all(dir);
}

TEST(DurableFile, StaleTmpSweepIsPreciselyScoped) {
  const std::string dir = test_dir("sweep");
  spit(dir + "/kgdd-s1.kgdp.tmp", "torn");
  spit(dir + "/shard3.kgdp.tmp", "torn");
  spit(dir + "/keep.kgdp", "real checkpoint");
  spit(dir + "/keep.txt", "unrelated");
  std::filesystem::create_directories(dir + "/subdir.kgdp.tmp");
  spit(dir + "/subdir.kgdp.tmp/nested.kgdp.tmp", "nested: out of scope");

  std::vector<std::string> removed = remove_stale_tmp_files(dir);
  std::sort(removed.begin(), removed.end());
  ASSERT_EQ(removed.size(), 2u);
  EXPECT_EQ(removed[0], dir + "/kgdd-s1.kgdp.tmp");
  EXPECT_EQ(removed[1], dir + "/shard3.kgdp.tmp");
  EXPECT_TRUE(std::filesystem::exists(dir + "/keep.kgdp"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/keep.txt"));
  // Directories and their contents are never touched (non-recursive,
  // regular files only).
  EXPECT_TRUE(
      std::filesystem::exists(dir + "/subdir.kgdp.tmp/nested.kgdp.tmp"));
  std::filesystem::remove_all(dir);
}

TEST(FaultSpecTest, ParsesTheDocumentedGrammar) {
  const auto spec = FaultSpec::parse("42:crash@7,enospc@3,eio@1,short@0");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->seed, 42u);
  EXPECT_EQ(spec->crash_at, 7);
  EXPECT_EQ(spec->enospc_at, 3);
  EXPECT_EQ(spec->eio_at, 1);
  EXPECT_EQ(spec->short_at, 0);

  const auto probs = FaultSpec::parse("7:enospc=0.25,eio=0.5,short=1.0");
  ASSERT_TRUE(probs.has_value());
  EXPECT_DOUBLE_EQ(probs->p_enospc, 0.25);
  EXPECT_DOUBLE_EQ(probs->p_eio, 0.5);
  EXPECT_DOUBLE_EQ(probs->p_short, 1.0);

  for (const char* bad :
       {"", ":", "x:crash@1", "7", "7:", "7:crash", "7:crash@",
        "7:crash@x", "7:crash=0.5", "7:enospc=1.5", "7:enospc=-0.1",
        "7:bogus@3", "7:crash@1,,eio@2"}) {
    EXPECT_FALSE(FaultSpec::parse(bad).has_value()) << bad;
  }
}

TEST(FaultInjectorTest, DeterministicGivenSeedAndSpec) {
  InjectorGuard guard;
  FaultInjector& inj = FaultInjector::instance();
  const int fd = ::open("/dev/null", O_WRONLY);
  ASSERT_GE(fd, 0);
  char buf[16] = {0};

  const auto pattern = [&](std::uint64_t seed) {
    FaultSpec spec;
    spec.seed = seed;
    spec.p_eio = 0.3;
    spec.p_short = 0.3;
    inj.arm(spec);
    std::vector<int> out;
    for (int i = 0; i < 64; ++i) {
      errno = 0;
      const ssize_t rc = inj.write(fd, buf, sizeof buf);
      out.push_back(rc < 0 ? -errno : static_cast<int>(rc));
    }
    inj.disarm();
    return out;
  };

  const std::vector<int> a = pattern(1234);
  const std::vector<int> b = pattern(1234);
  const std::vector<int> c = pattern(99);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // The pattern actually exercised all three outcomes.
  EXPECT_NE(std::count(a.begin(), a.end(), -EIO), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), 8), 0);   // short: half of 16
  EXPECT_NE(std::count(a.begin(), a.end(), 16), 0);  // clean pass-through
  ::close(fd);
}

TEST(FaultInjectorTest, ShortWritesAreRetriedToCompletion) {
  InjectorGuard guard;
  const std::string dir = test_dir("short");
  const std::string path = dir + "/cp.kgdp";
  // Every write transfers only half its bytes; the durable writer's
  // short-write loop must still land the full payload.
  FaultSpec spec;
  spec.seed = 5;
  spec.p_short = 1.0;
  FaultInjector::instance().arm(spec);
  const std::string payload(4096, 'q');
  durable_write_file(path, payload);
  FaultInjector::instance().disarm();
  const PayloadResult res = read_durable_payload(path);
  ASSERT_EQ(static_cast<int>(res.status), static_cast<int>(PayloadStatus::kOk));
  EXPECT_EQ(res.payload, payload);
  std::filesystem::remove_all(dir);
}

TEST(FaultInjectorTest, EnospcAtEveryOpLeavesOldOrNew) {
  InjectorGuard guard;
  const std::string dir = test_dir("enospc");
  const std::string path = dir + "/cp.kgdp";
  const std::string old_payload = "old generation\n";
  const std::string new_payload = "new generation, longer than the old\n";

  bool completed_clean = false;
  for (std::int64_t n = 0; n < 64 && !completed_clean; ++n) {
    FaultInjector& inj = FaultInjector::instance();
    inj.disarm();
    durable_write_file(path, old_payload);  // reset: primary = old
    FaultSpec spec;
    spec.enospc_at = n;
    inj.arm(spec);
    bool threw = false;
    try {
      durable_write_file(path, new_payload);
    } catch (const std::runtime_error&) {
      threw = true;
    }
    const bool fault_reached = inj.ops() > static_cast<std::uint64_t>(n);
    inj.disarm();
    const PayloadResult res = read_durable_payload(path);
    ASSERT_EQ(static_cast<int>(res.status),
              static_cast<int>(PayloadStatus::kOk))
        << "enospc@" << n << ": " << res.detail;
    EXPECT_TRUE(res.payload == old_payload || res.payload == new_payload)
        << "enospc@" << n;
    // No thrown error means the caller believes the write landed; only
    // the new generation may be on disk then.
    if (!threw) {
      EXPECT_EQ(res.payload, new_payload) << "enospc@" << n;
    }
    if (!fault_reached) {
      EXPECT_FALSE(threw);
      completed_clean = true;  // past the last op: sweep is exhaustive
    }
  }
  EXPECT_TRUE(completed_clean) << "sweep never ran past the final op";
  std::filesystem::remove_all(dir);
}

// The tentpole drill, file-format-agnostic core: rewrite `path` from
// checkpoint A to checkpoint B with a simulated kill at intercepted op
// N, for every N until a rewrite completes crash-free. After each
// crash the file must reload as exactly A or B — re-serialized to
// canonical text for the comparison — and a crash-free rewrite must
// yield B.
void sweep_crash_points(const std::function<void()>& write_a,
                        const std::function<void()>& write_b,
                        const std::function<std::string()>& reload_text,
                        const std::string& text_a,
                        const std::string& text_b) {
  ASSERT_NE(text_a, text_b) << "sweep needs distinguishable generations";
  bool completed_clean = false;
  for (std::int64_t n = 0; n < 128 && !completed_clean; ++n) {
    FaultInjector& inj = FaultInjector::instance();
    inj.disarm();
    write_a();
    FaultSpec spec;
    spec.crash_at = n;
    inj.arm(spec);  // programmatic arm: crash simulates, never aborts
    try {
      write_b();
    } catch (const std::runtime_error&) {
      // The simulated kill surfaces as a write error; state on disk is
      // frozen at whatever the completed syscalls left behind.
    }
    const bool crashed = inj.crashed();
    inj.disarm();
    std::string reloaded;
    try {
      reloaded = reload_text();
    } catch (const std::exception& e) {
      ADD_FAILURE() << "crash@" << n
                    << ": reload failed instead of yielding old-or-new: "
                    << e.what();
      continue;
    }
    EXPECT_TRUE(reloaded == text_a || reloaded == text_b)
        << "crash@" << n << ": torn state\n"
        << reloaded;
    if (!crashed) {
      EXPECT_EQ(reloaded, text_b) << "clean rewrite must yield B";
      completed_clean = true;
    }
  }
  EXPECT_TRUE(completed_clean)
      << "sweep never reached a crash-free rewrite in 128 ops";
}

TEST(DurabilitySweep, SessionCheckpointCrashAtEverySyscall) {
  InjectorGuard guard;
  const std::string dir = test_dir("sess_sweep");
  const std::string path = dir + "/kgdd-s1.kgdp";

  service::SessionCheckpoint a;
  a.n = 3;
  a.k = 4;
  a.max_faults = 4;
  a.chunk = 50;
  a.cursor = "pos 0 end\n";
  service::SessionCheckpoint b = a;
  b.chunk = 75;
  b.cursor = "pos 9 end\n";

  const auto ser = [](const service::SessionCheckpoint& cp) {
    std::ostringstream out;
    service::save_session_checkpoint(out, cp);
    return out.str();
  };
  sweep_crash_points(
      [&] { service::write_session_checkpoint_file(path, a); },
      [&] { service::write_session_checkpoint_file(path, b); },
      [&] { return ser(service::load_session_checkpoint_file(path)); },
      ser(a), ser(b));
  std::filesystem::remove_all(dir);
}

TEST(DurabilitySweep, CampaignCheckpointCrashAtEverySyscall) {
  InjectorGuard guard;
  const std::string dir = test_dir("camp_sweep");
  const std::string path = dir + "/campaign.kgdp";

  campaign::CampaignConfig config;
  config.n_min = 3;
  config.n_max = 3;
  config.k_min = 4;
  config.k_max = 5;
  config.chunk = 100;
  const campaign::CampaignState a = campaign::make_campaign(config);
  // Generation B: the same campaign a few chunks in — a running
  // instance with an embedded cursor, the realistic mid-sweep state.
  campaign::CampaignRunner runner(campaign::make_campaign(config),
                                  /*checkpoint_path=*/"");
  campaign::RunLimits limits;
  limits.max_chunks = 2;
  ASSERT_FALSE(runner.run(limits).complete);
  const campaign::CampaignState& b = runner.state();

  // save -> load normalizes embedded cursors once; canonicalize both
  // generations the same way before comparing.
  const auto ser = [](const campaign::CampaignState& state) {
    std::ostringstream out;
    campaign::save_campaign(out, state);
    std::istringstream in(out.str());
    std::ostringstream normalized;
    campaign::save_campaign(normalized, campaign::load_campaign(in));
    return normalized.str();
  };
  sweep_crash_points(
      [&] { campaign::write_campaign_file(path, a); },
      [&] { campaign::write_campaign_file(path, b); },
      [&] { return ser(campaign::load_campaign_file(path)); }, ser(a),
      ser(b));
  std::filesystem::remove_all(dir);
}

// After a simulated crash the leaked temp file is exactly what the
// daemon-startup / campaign-resume sweep removes.
TEST(DurabilitySweep, CrashLeavesOnlyATmpFileAndTheSweepRemovesIt) {
  InjectorGuard guard;
  const std::string dir = test_dir("tmp_after_crash");
  const std::string path = dir + "/cp.kgdp";
  durable_write_file(path, "old\n");
  FaultSpec spec;
  spec.crash_at = 2;  // mid-write of the temp file
  FaultInjector::instance().arm(spec);
  EXPECT_THROW(durable_write_file(path, "new\n"), std::runtime_error);
  EXPECT_TRUE(FaultInjector::instance().crashed());
  FaultInjector::instance().disarm();

  ASSERT_TRUE(std::filesystem::exists(path + ".tmp"));
  const std::vector<std::string> removed = remove_stale_tmp_files(dir);
  ASSERT_EQ(removed.size(), 1u);
  EXPECT_EQ(removed[0], path + ".tmp");
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  // The primary survived the whole episode.
  EXPECT_EQ(read_durable_payload(path).payload, "old\n");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace kgdp::util
