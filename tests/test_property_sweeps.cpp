// Parameterized property sweeps across the construction grid: the
// invariants every solution graph must satisfy, checked wholesale.
#include <gtest/gtest.h>

#include "fault/fault_model.hpp"
#include "kgd/bounds.hpp"
#include "kgd/extension.hpp"
#include "kgd/factory.hpp"
#include "kgd/merge.hpp"
#include "kgd/small_n.hpp"
#include "util/rng.hpp"
#include "verify/pipeline_solver.hpp"

namespace kgdp {
namespace {

using kgd::FaultSet;
using kgd::Role;
using kgd::SolutionGraph;

struct GridPoint {
  int n;
  int k;
};

std::vector<GridPoint> coverage_grid() {
  std::vector<GridPoint> pts;
  for (int k = 1; k <= 3; ++k) {
    for (int n = 1; n <= 16; ++n) pts.push_back({n, k});
  }
  for (int k = 4; k <= 6; ++k) {
    for (int n = 2 * k + 5; n <= 2 * k + 8; ++n) pts.push_back({n, k});
  }
  for (int k = 7; k <= 12; ++k) {
    for (int n = 1; n <= 3; ++n) pts.push_back({n, k});
  }
  return pts;
}

class GridSweep : public ::testing::TestWithParam<GridPoint> {};

TEST_P(GridSweep, StructuralInvariants) {
  const auto [n, k] = GetParam();
  const auto sg = kgd::build_solution(n, k);
  ASSERT_TRUE(sg.has_value());
  // Node census (node-optimality).
  EXPECT_EQ(sg->num_inputs(), k + 1);
  EXPECT_EQ(sg->num_outputs(), k + 1);
  EXPECT_EQ(sg->num_processors(), n + k);
  // Standardness: all terminals degree 1.
  EXPECT_TRUE(sg->all_terminals_degree_one());
  // Lemma 3.1 / 3.4 floors and the degree-optimality ceiling.
  EXPECT_GE(sg->min_processor_degree(), k + 2);
  if (n > 1) {
    for (auto v : sg->processors()) {
      EXPECT_GE(kgd::processor_neighbor_count(*sg, v), k + 1);
    }
  }
  EXPECT_EQ(sg->max_processor_degree(), kgd::max_degree_lower_bound(n, k));
  // No terminal-terminal edges ever.
  for (auto [u, v] : sg->graph().edges()) {
    EXPECT_FALSE(sg->role(u) != Role::kProcessor &&
                 sg->role(v) != Role::kProcessor);
  }
}

TEST_P(GridSweep, EverySingleFaultTolerated) {
  const auto [n, k] = GetParam();
  const auto sg = kgd::build_solution(n, k);
  ASSERT_TRUE(sg.has_value());
  verify::PipelineSolver solver;
  for (int v = 0; v < sg->num_nodes(); ++v) {
    const FaultSet fs(sg->num_nodes(), {v});
    const auto out = solver.solve(*sg, fs);
    ASSERT_EQ(out.status, verify::SolveStatus::kFound)
        << "n=" << n << " k=" << k << " fault " << v;
    // Graceful degradation: the pipeline's interior is every healthy
    // processor, i.e. n+k or n+k-1 of them.
    const int expect =
        sg->role(v) == Role::kProcessor ? n + k - 1 : n + k;
    EXPECT_EQ(out.pipeline->num_processors(), expect);
  }
}

TEST_P(GridSweep, RandomMaxBudgetFaultsTolerated) {
  const auto [n, k] = GetParam();
  const auto sg = kgd::build_solution(n, k);
  ASSERT_TRUE(sg.has_value());
  util::Rng rng(static_cast<std::uint64_t>(n) * 1000 + k);
  verify::PipelineSolver solver;
  for (int trial = 0; trial < 10; ++trial) {
    const FaultSet fs =
        fault::draw_faults(*sg, k, fault::FaultPolicy::kUniform, rng);
    ASSERT_EQ(solver.solve(*sg, fs).status, verify::SolveStatus::kFound)
        << "n=" << n << " k=" << k << " faults " << fs.to_string();
  }
}

INSTANTIATE_TEST_SUITE_P(
    CoverageGrid, GridSweep, ::testing::ValuesIn(coverage_grid()),
    [](const ::testing::TestParamInfo<GridPoint>& param_info) {
      return "n" + std::to_string(param_info.param.n) + "_k" +
             std::to_string(param_info.param.k);
    });

// ---- extension-chain properties ----

class ExtensionChain : public ::testing::TestWithParam<int> {};

TEST_P(ExtensionChain, InvariantsSurviveRepeatedExtension) {
  const int k = GetParam();
  SolutionGraph cur = kgd::make_g1k(k);
  const int base_degree = cur.max_processor_degree();
  for (int step = 1; step <= 4; ++step) {
    cur = kgd::extend_once(cur);
    EXPECT_EQ(cur.n(), 1 + step * (k + 1));
    EXPECT_TRUE(cur.is_standard());
    EXPECT_EQ(cur.max_processor_degree(), base_degree);
    EXPECT_GE(cur.min_processor_degree(), k + 2);
  }
}

TEST_P(ExtensionChain, MergedTerminalDegreeIsAlwaysKPlus1) {
  const int k = GetParam();
  for (int times = 0; times <= 2; ++times) {
    const SolutionGraph merged =
        kgd::merge_terminals(kgd::extend(kgd::make_g2k(k), times));
    EXPECT_EQ(merged.graph().degree(merged.inputs()[0]), k + 1);
    EXPECT_EQ(merged.graph().degree(merged.outputs()[0]), k + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(KRange, ExtensionChain, ::testing::Range(1, 5));

// ---- asymptotic degree table over a wide grid ----

TEST(AsymptoticWideGrid, DegreeFormulaHoldsEverywhere) {
  for (int k = 4; k <= 11; ++k) {
    for (int n = 2 * k + 5; n <= 2 * k + 20; ++n) {
      const auto sg = kgd::build_solution(n, k);
      ASSERT_TRUE(sg.has_value());
      const int expect =
          (n % 2 == 0 && k % 2 == 1) ? k + 3 : k + 2;
      ASSERT_EQ(sg->max_processor_degree(), expect)
          << "n=" << n << " k=" << k;
      ASSERT_EQ(sg->min_processor_degree(), k + 2)
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(AsymptoticWideGrid, EdgeCountIsLinearInN) {
  // Degree k+2 (or +3) regularity implies |E| ~ (n+3k+2)(k+2)/2 + O(k).
  for (int k : {4, 6, 8}) {
    const auto small = kgd::build_solution(6 * k, k);
    const auto big = kgd::build_solution(12 * k, k);
    ASSERT_TRUE(small && big);
    const double ratio = static_cast<double>(big->graph().num_edges()) /
                         static_cast<double>(small->graph().num_edges());
    EXPECT_GT(ratio, 1.4);
    EXPECT_LT(ratio, 2.6);
  }
}

}  // namespace
}  // namespace kgdp
