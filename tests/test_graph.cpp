#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "graph/bit_adjacency.hpp"
#include "util/rng.hpp"

namespace kgdp::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, AddNodesAndEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));  // undirected
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(Graph, AddNodeReturnsNewId) {
  Graph g(2);
  EXPECT_EQ(g.add_node(), 2);
  EXPECT_EQ(g.num_nodes(), 3);
}

TEST(Graph, NeighborsSortedAscending) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0);
  EXPECT_EQ(nb[1], 3);
  EXPECT_EQ(nb[2], 4);
}

TEST(Graph, CanAddEdgeRejectsLoopsAndDuplicates) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(g.can_add_edge(0, 0));
  EXPECT_FALSE(g.can_add_edge(0, 1));
  EXPECT_FALSE(g.can_add_edge(1, 0));
  EXPECT_TRUE(g.can_add_edge(1, 2));
  EXPECT_FALSE(g.can_add_edge(0, 3));  // out of range
}

TEST(Graph, RemoveEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(1), 1);
}

TEST(Graph, DegreeStats) {
  Graph g = make_complete(5);
  EXPECT_EQ(g.max_degree(), 4);
  EXPECT_EQ(g.min_degree(), 4);
  EXPECT_EQ(g.num_edges(), 10u);
  const auto seq = g.degree_sequence();
  EXPECT_EQ(seq, (std::vector<int>{4, 4, 4, 4, 4}));
}

TEST(Graph, EdgesListEachEdgeOnce) {
  Graph g = make_cycle(4);
  const auto es = g.edges();
  EXPECT_EQ(es.size(), 4u);
  for (auto [u, v] : es) EXPECT_LT(u, v);
}

TEST(Graph, MakePath) {
  Graph g = make_path(4);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
}

TEST(Graph, MakeCycleSmall) {
  EXPECT_EQ(make_cycle(3).num_edges(), 3u);
  EXPECT_EQ(make_cycle(2).num_edges(), 1u);  // degenerate: single edge
}

TEST(Graph, InducedSubgraphRemapsIds) {
  Graph g = make_cycle(5);  // 0-1-2-3-4-0
  util::DynamicBitset keep(5, true);
  keep.reset(2);
  std::vector<Node> map;
  const Graph sub = g.induced_subgraph(keep, &map);
  EXPECT_EQ(sub.num_nodes(), 4);
  EXPECT_EQ(map[2], -1);
  // Path 3-4-0-1 must survive with remapped ids.
  EXPECT_TRUE(sub.has_edge(map[3], map[4]));
  EXPECT_TRUE(sub.has_edge(map[4], map[0]));
  EXPECT_TRUE(sub.has_edge(map[0], map[1]));
  EXPECT_FALSE(sub.has_edge(map[1], map[3]));
  EXPECT_EQ(sub.num_edges(), 3u);
}

TEST(Graph, InducedSubgraphKeepAllIsIdentity) {
  Graph g = make_complete(4);
  util::DynamicBitset keep(4, true);
  EXPECT_EQ(g.induced_subgraph(keep), g);
}

TEST(Graph, InducedSubgraphKeepNone) {
  Graph g = make_complete(4);
  util::DynamicBitset keep(4);
  EXPECT_EQ(g.induced_subgraph(keep).num_nodes(), 0);
  // The empty keep-set still writes a total mapping: every id dropped.
  std::vector<Node> map;
  (void)g.induced_subgraph(keep, &map);
  ASSERT_EQ(map.size(), 4u);
  for (Node m : map) EXPECT_EQ(m, -1);
}

TEST(Graph, InducedSubgraphSingleNode) {
  Graph g = make_complete(5);
  util::DynamicBitset keep(5);
  keep.set(3);
  std::vector<Node> map;
  const Graph sub = g.induced_subgraph(keep, &map);
  EXPECT_EQ(sub.num_nodes(), 1);
  EXPECT_EQ(sub.num_edges(), 0u);
  EXPECT_EQ(map[3], 0);
  for (Node v : {0, 1, 2, 4}) EXPECT_EQ(map[v], -1);
}

TEST(Graph, InducedSubgraphMappingInvariants) {
  util::Rng rng(11);
  for (int trial = 0; trial < 20; ++trial) {
    const int n = static_cast<int>(rng.next_int(1, 40));
    Graph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.next_double() < 0.3) g.add_edge(u, v);
      }
    }
    util::DynamicBitset keep(n);
    for (int v = 0; v < n; ++v) {
      if (rng.next_double() < 0.5) keep.set(v);
    }
    std::vector<Node> map;
    const Graph sub = g.induced_subgraph(keep, &map);
    // Mapping invariants: -1 exactly on dropped nodes, and kept nodes
    // get dense ascending ids (the order the solver's reverse mapping
    // depends on).
    ASSERT_EQ(map.size(), static_cast<std::size_t>(n));
    Node next = 0;
    for (int v = 0; v < n; ++v) {
      if (keep.test(v)) {
        EXPECT_EQ(map[v], next++) << "trial " << trial;
      } else {
        EXPECT_EQ(map[v], -1) << "trial " << trial;
      }
    }
    EXPECT_EQ(sub.num_nodes(), next);
    // Adjacency preserved exactly on kept pairs.
    for (int u = 0; u < n; ++u) {
      if (!keep.test(u)) continue;
      for (int v = u + 1; v < n; ++v) {
        if (!keep.test(v)) continue;
        EXPECT_EQ(sub.has_edge(map[u], map[v]), g.has_edge(u, v))
            << "trial " << trial << " edge " << u << "," << v;
      }
    }
  }
}

TEST(Graph, InducedSubgraphAgreesWithBitAdjacency) {
  // Ties the legacy view to the fast-path view: on induced subgraphs of
  // random graphs, word-parallel rows and sorted neighbor spans must
  // describe the same graph.
  util::Rng rng(13);
  for (int trial = 0; trial < 10; ++trial) {
    const int n = static_cast<int>(rng.next_int(2, 80));
    Graph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.next_double() < 0.25) g.add_edge(u, v);
      }
    }
    util::DynamicBitset keep(n);
    for (int v = 0; v < n; ++v) {
      if (rng.next_double() < 0.7) keep.set(v);
    }
    const Graph sub = g.induced_subgraph(keep);
    const BitAdjacency adj(sub);
    for (int u = 0; u < sub.num_nodes(); ++u) {
      EXPECT_EQ(adj.degree(u), sub.degree(u));
      std::vector<Node> from_bits;
      const auto row = adj.row(u);
      for (std::size_t w = 0; w < row.size(); ++w) {
        std::uint64_t word = row[w];
        while (word != 0) {
          from_bits.push_back(static_cast<Node>(
              64 * w + static_cast<unsigned>(std::countr_zero(word))));
          word &= word - 1;
        }
      }
      const auto span = sub.neighbors(u);
      EXPECT_EQ(from_bits, std::vector<Node>(span.begin(), span.end()))
          << "trial " << trial << " node " << u;
    }
  }
}

TEST(Graph, FromEdges) {
  const Graph g = from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(2, 3));
}

}  // namespace
}  // namespace kgdp::graph
