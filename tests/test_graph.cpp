#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace kgdp::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.num_nodes(), 0);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, AddNodesAndEdges) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));  // undirected
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.degree(1), 2);
  EXPECT_EQ(g.degree(0), 1);
}

TEST(Graph, AddNodeReturnsNewId) {
  Graph g(2);
  EXPECT_EQ(g.add_node(), 2);
  EXPECT_EQ(g.num_nodes(), 3);
}

TEST(Graph, NeighborsSortedAscending) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  const auto nb = g.neighbors(2);
  ASSERT_EQ(nb.size(), 3u);
  EXPECT_EQ(nb[0], 0);
  EXPECT_EQ(nb[1], 3);
  EXPECT_EQ(nb[2], 4);
}

TEST(Graph, CanAddEdgeRejectsLoopsAndDuplicates) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(g.can_add_edge(0, 0));
  EXPECT_FALSE(g.can_add_edge(0, 1));
  EXPECT_FALSE(g.can_add_edge(1, 0));
  EXPECT_TRUE(g.can_add_edge(1, 2));
  EXPECT_FALSE(g.can_add_edge(0, 3));  // out of range
}

TEST(Graph, RemoveEdge) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.remove_edge(0, 1);
  EXPECT_FALSE(g.has_edge(0, 1));
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_EQ(g.degree(1), 1);
}

TEST(Graph, DegreeStats) {
  Graph g = make_complete(5);
  EXPECT_EQ(g.max_degree(), 4);
  EXPECT_EQ(g.min_degree(), 4);
  EXPECT_EQ(g.num_edges(), 10u);
  const auto seq = g.degree_sequence();
  EXPECT_EQ(seq, (std::vector<int>{4, 4, 4, 4, 4}));
}

TEST(Graph, EdgesListEachEdgeOnce) {
  Graph g = make_cycle(4);
  const auto es = g.edges();
  EXPECT_EQ(es.size(), 4u);
  for (auto [u, v] : es) EXPECT_LT(u, v);
}

TEST(Graph, MakePath) {
  Graph g = make_path(4);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(1), 2);
}

TEST(Graph, MakeCycleSmall) {
  EXPECT_EQ(make_cycle(3).num_edges(), 3u);
  EXPECT_EQ(make_cycle(2).num_edges(), 1u);  // degenerate: single edge
}

TEST(Graph, InducedSubgraphRemapsIds) {
  Graph g = make_cycle(5);  // 0-1-2-3-4-0
  util::DynamicBitset keep(5, true);
  keep.reset(2);
  std::vector<Node> map;
  const Graph sub = g.induced_subgraph(keep, &map);
  EXPECT_EQ(sub.num_nodes(), 4);
  EXPECT_EQ(map[2], -1);
  // Path 3-4-0-1 must survive with remapped ids.
  EXPECT_TRUE(sub.has_edge(map[3], map[4]));
  EXPECT_TRUE(sub.has_edge(map[4], map[0]));
  EXPECT_TRUE(sub.has_edge(map[0], map[1]));
  EXPECT_FALSE(sub.has_edge(map[1], map[3]));
  EXPECT_EQ(sub.num_edges(), 3u);
}

TEST(Graph, InducedSubgraphKeepAllIsIdentity) {
  Graph g = make_complete(4);
  util::DynamicBitset keep(4, true);
  EXPECT_EQ(g.induced_subgraph(keep), g);
}

TEST(Graph, InducedSubgraphKeepNone) {
  Graph g = make_complete(4);
  util::DynamicBitset keep(4);
  EXPECT_EQ(g.induced_subgraph(keep).num_nodes(), 0);
}

TEST(Graph, FromEdges) {
  const Graph g = from_edges(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.has_edge(2, 3));
}

}  // namespace
}  // namespace kgdp::graph
