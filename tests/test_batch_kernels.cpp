// Dispatch-layer unit for the batch setup kernel registry: the full
// table (including compile-time-absent entries reporting fn == nullptr),
// the auto-selection preference order on the current CPU, forced widths,
// and by-name selection. Bit-identity of the kernels themselves lives in
// test_solver_batch_fuzz; this file pins the wiring that decides which
// kernel runs and what stats/telemetry will report about it.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "verify/batch_kernels.hpp"

namespace kgdp::verify::detail {
namespace {

TEST(BatchKernelRegistry, FullTableInPreferenceOrder) {
  const auto& reg = batch_kernel_registry();
  // Portable widths first (always compiled, always runnable), then the
  // ISA kernels in auto-selection preference order. The table must list
  // every kernel the dispatcher knows about even when this build could
  // not compile it — absence is data, not a missing row.
  ASSERT_EQ(reg.size(), 8u);
  const char* expected_names[] = {"scalar", "w2",     "w4",   "w8",
                                  "w16",    "avx512", "avx2", "neon"};
  const int expected_widths[] = {1, 2, 4, 8, 16, 16, 8, 8};
  const KernelIsa expected_isa[] = {
      KernelIsa::kPortable, KernelIsa::kPortable, KernelIsa::kPortable,
      KernelIsa::kPortable, KernelIsa::kPortable, KernelIsa::kAvx512,
      KernelIsa::kAvx2,     KernelIsa::kNeon};
  for (std::size_t i = 0; i < reg.size(); ++i) {
    EXPECT_STREQ(reg[i].kernel.name, expected_names[i]) << "row " << i;
    EXPECT_EQ(reg[i].kernel.width, expected_widths[i]) << "row " << i;
    EXPECT_EQ(reg[i].kernel.isa, expected_isa[i]) << "row " << i;
  }
}

TEST(BatchKernelRegistry, CompiledAndRunnableFlagsAreConsistent) {
  for (const auto& e : batch_kernel_registry()) {
    // compiled <=> a function pointer exists; runnable additionally
    // requires CPU support, so runnable implies compiled.
    EXPECT_EQ(e.compiled, e.kernel.fn != nullptr) << e.kernel.name;
    if (e.runnable) EXPECT_TRUE(e.compiled) << e.kernel.name;
    if (e.kernel.isa == KernelIsa::kPortable) {
      // Portable kernels run anywhere by definition.
      EXPECT_TRUE(e.compiled) << e.kernel.name;
      EXPECT_TRUE(e.runnable) << e.kernel.name;
    }
  }
  // The per-ISA factory stubs agree with the registry's compiled flags.
  const auto& reg = batch_kernel_registry();
  EXPECT_EQ(reg[5].compiled, batch_setup_avx512() != nullptr);
  EXPECT_EQ(reg[6].compiled, batch_setup_avx2() != nullptr);
  EXPECT_EQ(reg[7].compiled, batch_setup_neon() != nullptr);
}

TEST(BatchKernelRegistry, ForcedWidthsSelectPortableKernels) {
  const char* names[] = {nullptr, "scalar", "w2", nullptr, "w4",
                         nullptr, nullptr,  nullptr, "w8"};
  for (int lanes : {1, 2, 4, 8, 16}) {
    const BatchKernel k = select_batch_kernel(lanes);
    ASSERT_NE(k.fn, nullptr) << "lanes=" << lanes;
    EXPECT_EQ(k.width, lanes);
    EXPECT_EQ(k.isa, KernelIsa::kPortable);
    if (lanes <= 8) EXPECT_STREQ(k.name, names[lanes]);
    if (lanes == 16) EXPECT_STREQ(k.name, "w16");
  }
}

TEST(BatchKernelRegistry, AutoSelectionPicksFirstRunnableIsaKernel) {
  // Auto (lanes = 0) must return the first runnable non-portable entry
  // in registry order, or the portable width-4 kernel when no ISA
  // kernel can run here. Recomputing the answer from the table makes
  // the test valid on any build/CPU combination CI throws at it.
  const BatchKernel k = select_batch_kernel(0);
  ASSERT_NE(k.fn, nullptr);
  const BatchKernel* expected = nullptr;
  for (const auto& e : batch_kernel_registry()) {
    if (e.kernel.isa == KernelIsa::kPortable || !e.runnable) continue;
    expected = &e.kernel;
    break;
  }
  if (expected != nullptr) {
    EXPECT_STREQ(k.name, expected->name);
    EXPECT_EQ(k.width, expected->width);
    EXPECT_EQ(k.isa, expected->isa);
  } else {
    EXPECT_STREQ(k.name, "w4");
    EXPECT_EQ(k.width, 4);
    EXPECT_EQ(k.isa, KernelIsa::kPortable);
  }
  // Invalid widths fall back to the same auto choice.
  for (int lanes : {-1, 3, 5, 7, 9, 32}) {
    const BatchKernel f = select_batch_kernel(lanes);
    EXPECT_STREQ(f.name, k.name) << "lanes=" << lanes;
    EXPECT_EQ(f.width, k.width) << "lanes=" << lanes;
  }
}

TEST(BatchKernelRegistry, ByNameSelectionTracksRunnability) {
  for (const auto& e : batch_kernel_registry()) {
    const auto k = select_batch_kernel_by_name(e.kernel.name);
    if (e.runnable) {
      ASSERT_TRUE(k.has_value()) << e.kernel.name;
      EXPECT_STREQ(k->name, e.kernel.name);
      EXPECT_EQ(k->width, e.kernel.width);
      EXPECT_EQ(k->isa, e.kernel.isa);
      EXPECT_EQ(k->fn, e.kernel.fn);
    } else {
      // Compile-time-absent or CPU-unsupported kernels are not
      // selectable — the caller falls back instead of crashing on a
      // nullptr fn at solve time.
      EXPECT_FALSE(k.has_value()) << e.kernel.name;
    }
  }
  EXPECT_FALSE(select_batch_kernel_by_name("no-such-kernel").has_value());
  EXPECT_FALSE(select_batch_kernel_by_name("").has_value());
}

TEST(BatchKernelRegistry, IsaNamesAreStable) {
  // These strings land in BENCH_*.json, kgdd stats and telemetry rows;
  // renaming one is a schema change, not a refactor.
  EXPECT_STREQ(isa_name(KernelIsa::kPortable), "portable");
  EXPECT_STREQ(isa_name(KernelIsa::kAvx2), "avx2");
  EXPECT_STREQ(isa_name(KernelIsa::kAvx512), "avx512");
  EXPECT_STREQ(isa_name(KernelIsa::kNeon), "neon");
}

}  // namespace
}  // namespace kgdp::verify::detail
