// Transport-layer tests: frame splitting (including the per-frame byte
// cap), endpoint grammar, event-loop post/stop semantics, and a real
// loopback echo through FrameServer + the blocking Client on both TCP
// and a Unix-domain socket.
#include <gtest/gtest.h>

#include <poll.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "net/client.hpp"
#include "net/event_loop.hpp"
#include "net/framing.hpp"
#include "net/server.hpp"
#include "net/socket.hpp"

namespace kgdp::net {
namespace {

std::vector<std::string> drain(FrameReader& r) {
  std::vector<std::string> out;
  while (auto f = r.next()) out.push_back(std::move(*f));
  return out;
}

TEST(FrameReader, SplitsNewlineDelimitedFrames) {
  FrameReader r(1024);
  ASSERT_TRUE(r.append("a\nbb\nccc", 8));
  EXPECT_EQ(drain(r), (std::vector<std::string>{"a", "bb"}));
  ASSERT_TRUE(r.append("\n", 1));
  EXPECT_EQ(drain(r), (std::vector<std::string>{"ccc"}));
}

TEST(FrameReader, StripsOptionalCarriageReturn) {
  FrameReader r(1024);
  ASSERT_TRUE(r.append("x\r\ny\n", 5));
  EXPECT_EQ(drain(r), (std::vector<std::string>{"x", "y"}));
}

TEST(FrameReader, EmptyFramesAreFrames) {
  FrameReader r(1024);
  ASSERT_TRUE(r.append("\n\nz\n", 4));
  EXPECT_EQ(drain(r), (std::vector<std::string>{"", "", "z"}));
}

TEST(FrameReader, PoisonsOnOversizedCompleteLine) {
  // A terminated over-long line is accepted by append() (the tail after
  // its newline is empty) and caught when next() reaches it.
  FrameReader r(4);
  EXPECT_TRUE(r.append("ok\n", 3));
  EXPECT_TRUE(r.append("abcdefgh\n", 9));
  // Frames before the offender are still handed out; the offender
  // itself poisons the reader instead of being returned.
  EXPECT_EQ(drain(r), (std::vector<std::string>{"ok"}));
  EXPECT_TRUE(r.oversized());
  // Poisoned: new bytes are refused.
  EXPECT_FALSE(r.append("x\n", 2));
}

TEST(FrameReader, PoisonsOnUnterminatedOversizedTail) {
  // A giant line that never ends must poison the reader even though an
  // earlier newline exists in the buffer.
  FrameReader r(8);
  ASSERT_TRUE(r.append("ok\n", 3));
  const std::string flood(9, 'x');  // no newline, over the cap
  EXPECT_FALSE(r.append(flood.data(), flood.size()));
  EXPECT_TRUE(r.oversized());
  EXPECT_EQ(drain(r), (std::vector<std::string>{"ok"}));
}

TEST(FrameReader, ByteAtATimeDeliveryRecoversEveryFrame) {
  FrameReader r(64);
  std::string stream;
  std::vector<std::string> want;
  for (int i = 0; i < 50; ++i) {
    want.push_back("frame-" + std::to_string(i));
    stream += want.back() + "\n";
  }
  std::vector<std::string> got;
  for (char c : stream) {
    ASSERT_TRUE(r.append(&c, 1));
    for (auto f = r.next(); f; f = r.next()) got.push_back(std::move(*f));
  }
  EXPECT_EQ(got, want);
  EXPECT_EQ(r.buffered(), 0u);
}

TEST(Endpoint, ParsesUnixAndTcpSpecs) {
  const auto u = Endpoint::parse("unix:/tmp/kgdd.sock");
  ASSERT_TRUE(u.has_value());
  EXPECT_EQ(u->kind, Endpoint::Kind::kUnix);
  EXPECT_EQ(u->path, "/tmp/kgdd.sock");
  EXPECT_EQ(u->to_string(), "unix:/tmp/kgdd.sock");

  const auto t = Endpoint::parse("tcp:127.0.0.1:8080");
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->kind, Endpoint::Kind::kTcp);
  EXPECT_EQ(t->host, "127.0.0.1");
  EXPECT_EQ(t->port, 8080);
  EXPECT_EQ(t->to_string(), "tcp:127.0.0.1:8080");

  EXPECT_FALSE(Endpoint::parse("").has_value());
  EXPECT_FALSE(Endpoint::parse("bogus").has_value());
  EXPECT_FALSE(Endpoint::parse("tcp:hostonly").has_value());
  EXPECT_FALSE(Endpoint::parse("tcp:h:notaport").has_value());
}

TEST(EventLoop, PostedTasksRunOnLoopThreadAndStopEnds) {
  EventLoop loop;
  int hits = 0;
  std::thread::id loop_thread;
  loop.post([&] {
    ++hits;
    loop_thread = std::this_thread::get_id();
    loop.post([&] {
      ++hits;  // posted from the loop thread: runs, then stop
      loop.stop();
    });
  });
  loop.run();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(loop_thread, std::this_thread::get_id());
}

TEST(EventLoop, CrossThreadPostWakesPoll) {
  EventLoop loop;
  bool ran = false;
  std::thread poster([&] {
    // The loop is (very likely) already blocked in poll(-1); the post
    // must wake it via the self-pipe.
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    loop.post([&] {
      ran = true;
      loop.stop();
    });
  });
  loop.run();
  poster.join();
  EXPECT_TRUE(ran);
}

TEST(EventLoop, PostAfterFiresAfterItsDelay) {
  EventLoop loop;
  const auto start = std::chrono::steady_clock::now();
  bool chained = false;
  loop.post_after(30, [&] {
    // Timers may arm further timers (the accept-backoff re-arm path).
    loop.post_after(10, [&] {
      chained = true;
      loop.stop();
    });
  });
  loop.run();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_TRUE(chained);
  EXPECT_GE(elapsed.count(), 35);
}

TEST(EventLoop, WatchedFdCallbackFires) {
  EventLoop loop;
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  char received = 0;
  loop.add(fds[0], POLLIN, [&](short) {
    ASSERT_EQ(::read(fds[0], &received, 1), 1);
    loop.remove(fds[0]);
    loop.stop();
  });
  ASSERT_EQ(::write(fds[1], "z", 1), 1);
  loop.run();
  EXPECT_EQ(received, 'z');
  ::close(fds[0]);
  ::close(fds[1]);
}

// Runs an echo FrameServer on a background thread and exercises it with
// the blocking client over the given endpoint.
void echo_roundtrip(const Endpoint& listen_ep, const Endpoint& connect_ep) {
  EventLoop loop;
  FrameServerConfig config;
  config.max_frame = 1 << 16;
  FrameServer server(loop, config);
  server.set_frame_handler([&](std::uint64_t conn, std::string frame) {
    server.send(conn, "echo:" + frame);
  });
  std::string error;
  Fd listener = listen_endpoint(listen_ep, 16, &error);
  ASSERT_TRUE(listener.valid()) << error;
  server.add_listener(std::move(listener));

  std::thread loop_thread([&] { loop.run(); });
  auto client = Client::connect(connect_ep, &error);
  ASSERT_TRUE(client.has_value()) << error;
  for (int i = 0; i < 200; ++i) {
    const std::string msg = "ping-" + std::to_string(i);
    ASSERT_TRUE(client->send_line(msg, &error)) << error;
    const auto reply = client->read_line(10000, &error);
    ASSERT_TRUE(reply.has_value()) << error;
    EXPECT_EQ(*reply, "echo:" + msg);
  }
  loop.stop();
  loop_thread.join();
}

TEST(Loopback, TcpEchoRoundTrips) {
  // Bind an ephemeral port, then connect to the resolved port.
  EventLoop loop;
  FrameServer server(loop, FrameServerConfig{});
  server.set_frame_handler([&](std::uint64_t conn, std::string frame) {
    server.send(conn, "echo:" + frame);
  });
  std::string error;
  Fd listener = listen_endpoint(Endpoint::tcp("127.0.0.1", 0), 16, &error);
  ASSERT_TRUE(listener.valid()) << error;
  const int port = local_tcp_port(listener.get());
  ASSERT_GT(port, 0);
  server.add_listener(std::move(listener));
  std::thread loop_thread([&] { loop.run(); });

  auto client = Client::connect(Endpoint::tcp("127.0.0.1", port), &error);
  ASSERT_TRUE(client.has_value()) << error;
  for (int i = 0; i < 200; ++i) {
    const std::string msg = "ping-" + std::to_string(i);
    ASSERT_TRUE(client->send_line(msg, &error)) << error;
    const auto reply = client->read_line(10000, &error);
    ASSERT_TRUE(reply.has_value()) << error;
    ASSERT_EQ(*reply, "echo:" + msg);
  }
  loop.stop();
  loop_thread.join();
}

TEST(Loopback, UnixSocketEchoRoundTrips) {
  const std::string path =
      "test_net_echo_" + std::to_string(::getpid()) + ".sock";
  echo_roundtrip(Endpoint::unix_path(path), Endpoint::unix_path(path));
  ::unlink(path.c_str());
}

TEST(Loopback, StaleUnixSocketIsReplacedOnListen) {
  const std::string path =
      "test_net_stale_" + std::to_string(::getpid()) + ".sock";
  std::string error;
  {
    Fd first = listen_endpoint(Endpoint::unix_path(path), 4, &error);
    ASSERT_TRUE(first.valid()) << error;
  }
  // The socket file is still on disk; a second bind must unlink and win.
  Fd second = listen_endpoint(Endpoint::unix_path(path), 4, &error);
  EXPECT_TRUE(second.valid()) << error;
  ::unlink(path.c_str());
}

TEST(Loopback, OversizedClientFrameGetsAbuseReplyThenClose) {
  EventLoop loop;
  FrameServerConfig config;
  config.max_frame = 64;
  FrameServer server(loop, config);
  server.set_frame_handler([&](std::uint64_t conn, std::string frame) {
    server.send(conn, "echo:" + frame);
  });
  server.set_abuse_handler([&](std::uint64_t conn, const std::string&) {
    server.send(conn, "abuse");
  });
  std::string error;
  Fd listener = listen_endpoint(Endpoint::tcp("127.0.0.1", 0), 16, &error);
  ASSERT_TRUE(listener.valid()) << error;
  const int port = local_tcp_port(listener.get());
  server.add_listener(std::move(listener));
  std::thread loop_thread([&] { loop.run(); });

  auto client = Client::connect(Endpoint::tcp("127.0.0.1", port), &error);
  ASSERT_TRUE(client.has_value()) << error;
  ASSERT_TRUE(client->send_line(std::string(500, 'x'), &error)) << error;
  const auto reply = client->read_line(10000, &error);
  ASSERT_TRUE(reply.has_value()) << error;
  EXPECT_EQ(*reply, "abuse");
  // The server closes after flushing the abuse frame: next read is EOF.
  EXPECT_FALSE(client->read_line(10000, &error).has_value());
  loop.stop();
  loop_thread.join();
}

}  // namespace
}  // namespace kgdp::net
