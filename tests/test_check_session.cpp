// Session semantics for the unified checker API: chunked advance,
// checkpoint/restore mid-sweep, and deterministic range sharding must all
// reproduce the uninterrupted sequential sweep bit-identically — same
// verdict, same counterexample (and index), same counters. The shard
// slices must tile the quantifier domain exactly, and malformed requests
// or foreign cursors must be rejected, not silently accepted.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

#include "baseline/naive.hpp"
#include "fault/enumerator.hpp"
#include "kgd/factory.hpp"
#include "verify/check_session.hpp"
#include "verify/checker.hpp"

namespace kgdp::verify {
namespace {

CheckRequest exhaustive_request(int k, PruneMode prune = PruneMode::kAuto,
                                std::uint32_t shard_index = 0,
                                std::uint32_t shard_count = 1) {
  CheckRequest req;
  req.mode = CheckMode::kExhaustive;
  req.max_faults = k;
  req.options.prune = prune;
  req.shard_index = shard_index;
  req.shard_count = shard_count;
  return req;
}

CheckRequest sampled_request(int k, std::uint64_t samples,
                             std::uint64_t seed) {
  CheckRequest req;
  req.mode = CheckMode::kSampled;
  req.max_faults = k;
  req.samples = samples;
  req.seed = seed;
  return req;
}

// Bit-identity over everything deterministic. worker_solve_seconds holds
// wall-clock time, so only its shape is compared.
void expect_identical(const CheckResult& a, const CheckResult& b,
                      const std::string& tag) {
  EXPECT_EQ(a.holds, b.holds) << tag;
  EXPECT_EQ(a.exhaustive, b.exhaustive) << tag;
  EXPECT_EQ(a.fault_sets_checked, b.fault_sets_checked) << tag;
  EXPECT_EQ(a.fault_sets_solved, b.fault_sets_solved) << tag;
  EXPECT_EQ(a.solver_unknowns, b.solver_unknowns) << tag;
  EXPECT_EQ(a.orbits_pruned, b.orbits_pruned) << tag;
  EXPECT_EQ(a.automorphism_order, b.automorphism_order) << tag;
  EXPECT_EQ(a.steal_count, b.steal_count) << tag;
  // worker_solve_seconds is wall-clock observability, not part of the
  // determinism contract (a merged result concatenates per-shard timing).
  ASSERT_EQ(a.counterexample.has_value(), b.counterexample.has_value()) << tag;
  if (a.counterexample) {
    EXPECT_EQ(a.counterexample->nodes(), b.counterexample->nodes()) << tag;
  }
  ASSERT_EQ(a.counterexample_index.has_value(),
            b.counterexample_index.has_value())
      << tag;
  if (a.counterexample_index) {
    EXPECT_EQ(*a.counterexample_index, *b.counterexample_index) << tag;
  }
}

TEST(CheckSession, WrapperEquivalence) {
  for (const auto& [n, k] :
       std::vector<std::pair<int, int>>{{6, 2}, {3, 4}, {9, 1}}) {
    const auto sg = kgd::build_solution(n, k);
    ASSERT_TRUE(sg) << n << "," << k;
    for (PruneMode prune : {PruneMode::kAuto, PruneMode::kOff}) {
      CheckOptions opts;
      opts.prune = prune;
      const auto wrapped = run_check(*sg, CheckRequest::exhaustive(k, opts));
      CheckSession session(*sg, exhaustive_request(k, prune));
      session.run();
      expect_identical(wrapped, session.result(), sg->name());
      EXPECT_TRUE(session.done());
      EXPECT_EQ(session.items_done(), session.items_total());
    }
  }
}

TEST(CheckSession, ChunkedAdvanceMatchesOneShot) {
  const auto sg = kgd::build_solution(3, 4);
  ASSERT_TRUE(sg);
  CheckSession oneshot(*sg, exhaustive_request(4));
  oneshot.run();
  for (std::uint64_t chunk : {1u, 7u, 64u, 100000u}) {
    CheckSession chunked(*sg, exhaustive_request(4));
    std::uint64_t chunks = 0;
    while (!chunked.advance(chunk)) ++chunks;
    if (chunk < chunked.items_total()) {
      EXPECT_GT(chunks, 0u);
    }
    expect_identical(oneshot.result(), chunked.result(),
                     "chunk=" + std::to_string(chunk));
  }
}

TEST(CheckSession, SaveRestoreMidSweepMatchesUninterrupted) {
  // Holding and failing graphs; the failing one checks that the frozen
  // counterexample index survives the checkpoint boundary.
  struct Case {
    kgd::SolutionGraph sg;
    int k;
  };
  std::vector<Case> cases;
  cases.push_back({*kgd::build_solution(3, 4), 4});
  cases.push_back({baseline::make_spare_path(6, 2), 2});
  for (const Case& c : cases) {
    CheckSession uninterrupted(c.sg, exhaustive_request(c.k));
    uninterrupted.run();
    const std::uint64_t total = uninterrupted.items_total();
    for (std::uint64_t stop : {std::uint64_t{1}, total / 3, total - 1}) {
      CheckSession first(c.sg, exhaustive_request(c.k));
      first.advance(stop);
      std::stringstream cursor;
      first.save(cursor);
      CheckSession resumed(c.sg, exhaustive_request(c.k));
      resumed.restore(cursor);
      EXPECT_EQ(resumed.items_done(), first.items_done());
      resumed.run();
      expect_identical(uninterrupted.result(), resumed.result(),
                       c.sg.name() + " stop=" + std::to_string(stop));
    }
  }
}

TEST(CheckSession, SaveRestoreOfFinishedSessionIsFinal) {
  const auto sg = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg);
  CheckSession done(*sg, exhaustive_request(2));
  done.run();
  std::stringstream cursor;
  done.save(cursor);
  CheckSession back(*sg, exhaustive_request(2));
  back.restore(cursor);
  EXPECT_TRUE(back.done());
  expect_identical(done.result(), back.result(), "finished");
}

TEST(CheckSession, RestoreRejectsForeignCursor) {
  const auto sg = kgd::build_solution(3, 4);
  const auto other = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg && other);
  CheckSession source(*sg, exhaustive_request(4));
  source.advance(10);
  // Different graph.
  {
    std::stringstream cursor;
    source.save(cursor);
    CheckSession target(*other, exhaustive_request(2));
    EXPECT_THROW(target.restore(cursor), std::runtime_error);
  }
  // Same graph, different request (k differs -> enumeration differs).
  {
    std::stringstream cursor;
    source.save(cursor);
    CheckSession target(*sg, exhaustive_request(3));
    EXPECT_THROW(target.restore(cursor), std::runtime_error);
  }
  // Same graph, different prune mode (orbit layout differs).
  {
    std::stringstream cursor;
    source.save(cursor);
    CheckSession target(*sg, exhaustive_request(4, PruneMode::kOff));
    EXPECT_THROW(target.restore(cursor), std::runtime_error);
  }
  // Garbage.
  {
    std::stringstream cursor("not a cursor at all");
    CheckSession target(*sg, exhaustive_request(4));
    EXPECT_THROW(target.restore(cursor), std::runtime_error);
  }
}

TEST(CheckSession, SampledWrapperEquivalenceAndResume) {
  const auto sg = kgd::build_solution(8, 2);
  ASSERT_TRUE(sg);
  const std::uint64_t samples = 60, seed = 7;
  const auto wrapped = run_check(*sg, CheckRequest::sampled(2, samples, seed));
  CheckSession oneshot(*sg, sampled_request(2, samples, seed));
  oneshot.run();
  expect_identical(wrapped, oneshot.result(), "sampled wrapper");

  // Interrupt mid-stream: the saved RNG state must make the resumed
  // session draw the exact same remaining sample sequence.
  for (std::uint64_t stop : {std::uint64_t{3}, oneshot.items_total() / 2}) {
    CheckSession first(*sg, sampled_request(2, samples, seed));
    first.advance(stop);
    std::stringstream cursor;
    first.save(cursor);
    CheckSession resumed(*sg, sampled_request(2, samples, seed));
    resumed.restore(cursor);
    resumed.run();
    expect_identical(oneshot.result(), resumed.result(),
                     "sampled stop=" + std::to_string(stop));
  }
}

TEST(CheckSession, RejectsMalformedRequests) {
  const auto sg = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg);
  // shard_count == 0.
  EXPECT_THROW(CheckSession(*sg, exhaustive_request(2, PruneMode::kAuto, 0, 0)),
               std::invalid_argument);
  // shard_index out of range.
  EXPECT_THROW(CheckSession(*sg, exhaustive_request(2, PruneMode::kAuto, 3, 3)),
               std::invalid_argument);
  // Sharded sampling: the sample stream is sequential by construction.
  CheckRequest sampled = sampled_request(2, 10, 1);
  sampled.shard_count = 2;
  EXPECT_THROW(CheckSession(*sg, sampled), std::invalid_argument);
}

TEST(CheckSession, ShardRangeTilesAnyTotal) {
  for (std::uint64_t total : {0ull, 1ull, 5ull, 17ull, 100ull, 1023ull}) {
    for (std::uint32_t count : {1u, 2u, 3u, 4u, 7u, 16u}) {
      std::uint64_t covered = 0, min_size = ~0ull, max_size = 0;
      std::uint64_t expected_begin = 0;
      for (std::uint32_t i = 0; i < count; ++i) {
        const auto [first, last] = CheckSession::shard_range(total, i, count);
        EXPECT_EQ(first, expected_begin);  // contiguous, disjoint
        EXPECT_LE(first, last);
        expected_begin = last;
        const std::uint64_t size = last - first;
        covered += size;
        min_size = std::min(min_size, size);
        max_size = std::max(max_size, size);
      }
      EXPECT_EQ(covered, total);
      EXPECT_EQ(expected_begin, total);
      EXPECT_LE(max_size - min_size, 1u) << total << "/" << count;
    }
  }
}

// The differential shard-tiling proof: for several (S, n, k) the S shard
// sessions partition the quantifier domain — per-shard counters sum to
// the global quantifier exactly — and merging reproduces the unsharded
// sequential run bit-identically.
TEST(CheckSession, ShardUnionTilesFaultSpaceAndMergeMatches) {
  struct Case {
    int n, k;
    std::uint32_t shards;
  };
  for (const Case& c : std::vector<Case>{
           {6, 2, 2}, {6, 2, 5}, {3, 4, 3}, {3, 4, 4}, {9, 1, 2}}) {
    const auto sg = kgd::build_solution(c.n, c.k);
    ASSERT_TRUE(sg) << c.n << "," << c.k;
    CheckSession unsharded(*sg, exhaustive_request(c.k));
    unsharded.run();
    const std::uint64_t domain =
        fault::FaultEnumerator(sg->num_nodes(), c.k).total();

    std::vector<CheckResult> parts;
    std::uint64_t slots = 0, checked = 0, solved = 0, pruned = 0;
    for (std::uint32_t i = 0; i < c.shards; ++i) {
      CheckSession shard(*sg,
                         exhaustive_request(c.k, PruneMode::kAuto, i, c.shards));
      shard.run();
      slots += shard.items_total();
      const CheckResult r = shard.result();
      checked += r.fault_sets_checked;
      solved += r.fault_sets_solved;
      pruned += r.orbits_pruned;
      parts.push_back(r);
    }
    const std::string tag = sg->name() + " S=" + std::to_string(c.shards);
    // Tiling: slot slices cover every orbit once; weighted counters cover
    // every fault set once.
    EXPECT_EQ(slots, unsharded.items_total()) << tag;
    EXPECT_EQ(checked, domain) << tag;
    EXPECT_EQ(solved + pruned, domain) << tag;
    const auto merged =
        merge_shard_results(*sg, c.k, PruneMode::kAuto, parts);
    expect_identical(unsharded.result(), merged, tag);
  }
}

TEST(CheckSession, ShardedFailureMergesToLowestIndex) {
  const auto sg = baseline::make_spare_path(6, 2);
  CheckSession unsharded(sg, exhaustive_request(2));
  unsharded.run();
  const CheckResult reference = unsharded.result();
  ASSERT_FALSE(reference.holds);
  ASSERT_TRUE(reference.counterexample_index.has_value());
  for (std::uint32_t shards : {2u, 3u, 4u}) {
    std::vector<CheckResult> parts;
    for (std::uint32_t i = 0; i < shards; ++i) {
      CheckSession shard(sg, exhaustive_request(2, PruneMode::kAuto, i, shards));
      shard.run();
      parts.push_back(shard.result());
    }
    const auto merged = merge_shard_results(sg, 2, PruneMode::kAuto, parts);
    expect_identical(reference, merged, "S=" + std::to_string(shards));
  }
}

TEST(CheckSession, MoreShardsThanSlotsStillMerges) {
  const auto sg = kgd::build_solution(9, 1);  // tiny orbit count
  ASSERT_TRUE(sg);
  CheckSession unsharded(*sg, exhaustive_request(1));
  unsharded.run();
  const std::uint32_t shards =
      static_cast<std::uint32_t>(unsharded.items_total()) + 3;
  std::vector<CheckResult> parts;
  for (std::uint32_t i = 0; i < shards; ++i) {
    CheckSession shard(*sg, exhaustive_request(1, PruneMode::kAuto, i, shards));
    shard.run();
    EXPECT_TRUE(shard.done());
    parts.push_back(shard.result());  // some slices are empty: trivially hold
  }
  const auto merged = merge_shard_results(*sg, 1, PruneMode::kAuto, parts);
  expect_identical(unsharded.result(), merged, "oversharded");
}

TEST(CheckSession, MergeRejectsBadShardLists) {
  const auto sg = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg);
  EXPECT_THROW(merge_shard_results(*sg, 2, PruneMode::kAuto, {}),
               std::invalid_argument);
}

TEST(CheckSession, ShardedSaveRestoreRoundTrips) {
  const auto sg = kgd::build_solution(3, 4);
  ASSERT_TRUE(sg);
  CheckSession full(*sg, exhaustive_request(4, PruneMode::kAuto, 1, 3));
  full.run();
  CheckSession first(*sg, exhaustive_request(4, PruneMode::kAuto, 1, 3));
  first.advance(first.items_total() / 2);
  std::stringstream cursor;
  first.save(cursor);
  // A cursor from shard 1/3 must not restore into shard 0/3.
  CheckSession wrong(*sg, exhaustive_request(4, PruneMode::kAuto, 0, 3));
  std::stringstream copy(cursor.str());
  EXPECT_THROW(wrong.restore(copy), std::runtime_error);
  CheckSession resumed(*sg, exhaustive_request(4, PruneMode::kAuto, 1, 3));
  resumed.restore(cursor);
  resumed.run();
  expect_identical(full.result(), resumed.result(), "shard 1/3 resume");
}

}  // namespace
}  // namespace kgdp::verify
