#include "util/combinatorics.hpp"

#include <gtest/gtest.h>

#include <set>

namespace kgdp::util {
namespace {

TEST(Binomial, KnownValues) {
  EXPECT_EQ(binomial(0, 0), 1u);
  EXPECT_EQ(binomial(5, 0), 1u);
  EXPECT_EQ(binomial(5, 5), 1u);
  EXPECT_EQ(binomial(5, 2), 10u);
  EXPECT_EQ(binomial(36, 4), 58905u);
  EXPECT_EQ(binomial(10, 11), 0u);
  EXPECT_EQ(binomial(52, 5), 2598960u);
}

TEST(Binomial, PascalIdentityHoldsOnAGrid) {
  for (unsigned n = 1; n <= 30; ++n) {
    for (unsigned k = 1; k <= n; ++k) {
      EXPECT_EQ(binomial(n, k), binomial(n - 1, k - 1) + binomial(n - 1, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(SubsetsUpTo, MatchesManualSum) {
  // C(10,0)+C(10,1)+C(10,2) = 1+10+45.
  EXPECT_EQ(subsets_up_to(10, 2), 56u);
  EXPECT_EQ(subsets_up_to(36, 4), 66712u);  // the G(22,4) sweep size
}

TEST(NextCombination, EnumeratesAllInLexOrder) {
  std::vector<int> comb = {0, 1, 2};
  std::vector<std::vector<int>> all;
  do {
    all.push_back(comb);
  } while (next_combination(comb, 5));
  EXPECT_EQ(all.size(), binomial(5, 3));
  for (std::size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1], all[i]);  // strictly increasing lexicographic
  }
  EXPECT_EQ(all.front(), (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(all.back(), (std::vector<int>{2, 3, 4}));
}

TEST(RankUnrank, RoundTripsEverySubset) {
  const unsigned n = 9, k = 4;
  std::vector<int> comb = {0, 1, 2, 3};
  std::uint64_t rank = 0;
  do {
    EXPECT_EQ(unrank_combination(n, k, rank), comb);
    EXPECT_EQ(rank_combination(comb, n), rank);
    ++rank;
  } while (next_combination(comb, static_cast<int>(n)));
  EXPECT_EQ(rank, binomial(n, k));
}

TEST(RankUnrank, EmptySet) {
  EXPECT_TRUE(unrank_combination(5, 0, 0).empty());
  EXPECT_EQ(rank_combination({}, 5), 0u);
}

TEST(ForEachSubsetUpTo, VisitsEachSubsetOnce) {
  std::set<std::vector<int>> seen;
  const bool completed = for_each_subset_up_to(6, 3, [&](const auto& comb) {
    EXPECT_TRUE(seen.insert(comb).second) << "duplicate subset";
    return true;
  });
  EXPECT_TRUE(completed);
  EXPECT_EQ(seen.size(), subsets_up_to(6, 3));
}

TEST(ForEachSubsetUpTo, EarlyStop) {
  int visits = 0;
  const bool completed = for_each_subset_up_to(6, 3, [&](const auto&) {
    return ++visits < 5;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(visits, 5);
}

TEST(ForEachSubsetUpTo, KLargerThanNIsFine) {
  int visits = 0;
  for_each_subset_up_to(3, 10, [&](const auto&) {
    ++visits;
    return true;
  });
  EXPECT_EQ(visits, 8);  // all subsets of a 3-set
}

}  // namespace
}  // namespace kgdp::util
