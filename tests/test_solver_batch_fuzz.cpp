// Differential fuzz for the lane-parallel batch solver: random fault-set
// batches on real construction instances, checked bit-for-bit against
// find_pipeline_reference and against the unbatched delta-stream path,
// across every kernel lane width and around batch-size boundaries.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "graph/bit_adjacency.hpp"
#include "kgd/factory.hpp"
#include "util/rng.hpp"
#include "verify/batch_kernels.hpp"
#include "verify/pipeline_solver.hpp"

namespace kgdp::verify {
namespace {

using graph::Node;
using kgd::FaultSet;
using kgd::SolutionGraph;

// Instances spanning the shapes the factory produces (spare-path,
// extension towers, small-k specials), all on the <= 64-node fast path.
const std::pair<int, int> kInstances[] = {
    {1, 1}, {2, 3}, {5, 2}, {6, 2}, {6, 3}, {3, 4}, {10, 3}, {14, 3},
};

std::vector<Node> mask_nodes(std::uint64_t mask) {
  std::vector<Node> nodes;
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    nodes.push_back(static_cast<Node>(std::countr_zero(m)));
  }
  return nodes;
}

FaultSet mask_fault_set(const SolutionGraph& sg, std::uint64_t mask) {
  std::vector<int> nodes;
  for (std::uint64_t m = mask; m != 0; m &= m - 1) {
    nodes.push_back(std::countr_zero(m));
  }
  return FaultSet(sg.num_nodes(), nodes);
}

// Random fault mask over the whole node space (processors and terminals
// alike), between 0 and `max_size` faults.
std::uint64_t random_mask(util::Rng& rng, int n, int max_size) {
  const int size = static_cast<int>(rng.next_int(0, max_size));
  std::uint64_t mask = 0;
  for (int i = 0; i < size; ++i) {
    mask |= 1ull << rng.next_below(static_cast<std::uint64_t>(n));
  }
  return mask;
}

SolverOptions verdict_options(int lanes = 0) {
  SolverOptions o;
  o.want_pipeline = false;
  o.batch_lanes = lanes;
  return o;
}

SolverOptions named_kernel_options(const char* name) {
  SolverOptions o;
  o.want_pipeline = false;
  o.batch_kernel = name;
  return o;
}

// Every registry kernel runnable on this build+CPU, by name — the ISA
// sweep exercises AVX2/AVX-512/NEON wherever they can actually execute
// and silently narrows elsewhere (CI's compile-only runners).
std::vector<const char*> runnable_kernel_names() {
  std::vector<const char*> names;
  for (const auto& e : detail::batch_kernel_registry()) {
    if (e.runnable) names.push_back(e.kernel.name);
  }
  return names;
}

TEST(BatchFuzz, AllLaneWidthsMatchReferenceOnRandomBatches) {
  util::Rng rng(0xba7c4);
  for (const auto& [n, k] : kInstances) {
    const auto sg = kgd::build_solution(n, k);
    ASSERT_TRUE(sg) << "n=" << n << " k=" << k;
    const int nodes = sg->num_nodes();
    ASSERT_LE(nodes, 64);

    // One shared batch of random masks; every width must agree with the
    // reference (and therefore with every other width).
    std::vector<std::uint64_t> masks;
    for (int i = 0; i < 96; ++i) {
      masks.push_back(random_mask(rng, nodes, k + 2));
    }
    std::vector<SolveStatus> expected;
    for (std::uint64_t m : masks) {
      expected.push_back(
          find_pipeline_reference(*sg, mask_fault_set(*sg, m)).status);
    }

    for (int lanes : {1, 2, 4, 8, 16, 0}) {
      PipelineSolver solver(verdict_options(lanes));
      std::vector<SolveStatus> got(masks.size(), SolveStatus::kUnknown);
      solver.solve_batch(*sg, masks, got);
      for (std::size_t i = 0; i < masks.size(); ++i) {
        EXPECT_EQ(got[i], expected[i])
            << "n=" << n << " k=" << k << " lanes=" << lanes << " slot=" << i
            << " mask=" << masks[i];
        EXPECT_NE(got[i], SolveStatus::kUnknown);
      }
    }

    // Same batch through every runnable ISA kernel, forced by name:
    // AVX2/AVX-512 on capable x86-64, NEON on aarch64. Bit-identical to
    // the reference like the portable widths above.
    for (const char* name : runnable_kernel_names()) {
      PipelineSolver solver(named_kernel_options(name));
      ASSERT_STREQ(solver.kernel().name, name);
      std::vector<SolveStatus> got(masks.size(), SolveStatus::kUnknown);
      solver.solve_batch(*sg, masks, got);
      for (std::size_t i = 0; i < masks.size(); ++i) {
        EXPECT_EQ(got[i], expected[i])
            << "n=" << n << " k=" << k << " kernel=" << name << " slot=" << i
            << " mask=" << masks[i];
      }
    }
  }
}

TEST(BatchFuzz, BatchBoundariesAndTailsMatchUnbatchedStream) {
  util::Rng rng(0x5eed5);
  const auto sg = kgd::build_solution(10, 3);
  ASSERT_TRUE(sg);
  const int nodes = sg->num_nodes();

  // Batch sizes straddling every kernel width multiple plus ragged
  // tails: 1..9, W-1 / W / W+1 for the widest kernel, and a large run.
  for (const std::size_t count :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4},
        std::size_t{5}, std::size_t{7}, std::size_t{8}, std::size_t{9},
        std::size_t{15}, std::size_t{16}, std::size_t{17},
        std::size_t{63}, std::size_t{64}, std::size_t{65}}) {
    std::vector<std::uint64_t> masks;
    for (std::size_t i = 0; i < count; ++i) {
      masks.push_back(random_mask(rng, nodes, 5));
    }

    // Unbatched oracle: one solver fed the same masks one at a time
    // through the rebuild entry (the delta-stream equivalent).
    PipelineSolver unbatched(verdict_options());
    std::vector<SolveStatus> expected;
    for (std::uint64_t m : masks) {
      const auto nodes_list = mask_nodes(m);
      expected.push_back(unbatched.solve_faults(*sg, nodes_list).status);
    }

    PipelineSolver solver(verdict_options());
    std::vector<SolveStatus> got(count, SolveStatus::kUnknown);
    solver.solve_batch(*sg, masks, got);
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(got[i], expected[i]) << "count=" << count << " slot=" << i;
    }
  }
}

TEST(BatchFuzz, BatchLeavesDeltaStreamContinuable) {
  // solve_batch leaves the fault view at the last lane; a subsequent
  // patch() must continue the delta stream as if the batch had been fed
  // item by item.
  util::Rng rng(0xde17a);
  const auto sg = kgd::build_solution(6, 3);
  ASSERT_TRUE(sg);
  const int nodes = sg->num_nodes();

  for (int round = 0; round < 20; ++round) {
    std::vector<std::uint64_t> masks;
    for (int i = 0; i < 5; ++i) masks.push_back(random_mask(rng, nodes, 4));
    const std::uint64_t next_mask = random_mask(rng, nodes, 4);

    PipelineSolver solver(verdict_options());
    std::vector<SolveStatus> got(masks.size(), SolveStatus::kUnknown);
    solver.solve_batch(*sg, masks, got);

    const std::uint64_t last = masks.back();
    const auto removed = mask_nodes(last & ~next_mask);
    const auto added = mask_nodes(next_mask & ~last);
    const auto patched = solver.patch(*sg, removed, added);

    PipelineSolver fresh(verdict_options());
    const auto oracle = fresh.solve_faults(*sg, mask_nodes(next_mask));
    EXPECT_EQ(patched.status, oracle.status) << "round=" << round;
  }
}

TEST(BatchFuzz, BatchCountersPreserveSolveIdentity) {
  // One rebuild plus count-1 patches per batch: the
  // patches + rebuilds == solves identity survives any mix of batch
  // sizes, exactly as it does for the unbatched delta stream.
  util::Rng rng(0xc0117);
  const auto sg = kgd::build_solution(14, 3);
  ASSERT_TRUE(sg);
  const int nodes = sg->num_nodes();

  PipelineSolver solver(verdict_options());
  std::uint64_t fed = 0;
  for (const std::size_t count : {std::size_t{1}, std::size_t{6},
                                  std::size_t{64}, std::size_t{13}}) {
    std::vector<std::uint64_t> masks;
    for (std::size_t i = 0; i < count; ++i) {
      masks.push_back(random_mask(rng, nodes, 4));
    }
    std::vector<SolveStatus> got(count, SolveStatus::kUnknown);
    solver.solve_batch(*sg, masks, got);
    fed += count;
  }
  const SolverCounters c = solver.counters();
  EXPECT_EQ(c.solves, fed);
  EXPECT_EQ(c.patches + c.rebuilds, c.solves);
  // Early-exit lanes (no healthy endpoint) settle before the walk runs.
  EXPECT_LE(c.walk_hits + c.walk_fallbacks, c.solves);
}

TEST(BatchFuzz, KernelSelectionHonoursForcedWidths) {
  for (int lanes : {1, 2, 4, 8, 16}) {
    const detail::BatchKernel k = detail::select_batch_kernel(lanes);
    EXPECT_EQ(k.width, lanes);
    EXPECT_EQ(k.isa, detail::KernelIsa::kPortable);
    ASSERT_NE(k.fn, nullptr);
  }
  const detail::BatchKernel auto_kernel = detail::select_batch_kernel(0);
  ASSERT_NE(auto_kernel.fn, nullptr);
  EXPECT_GE(auto_kernel.width, 4);
}

TEST(BatchFuzz, LaneSetupCarriesWalkSeedAndStartBit) {
  // Every kernel (portable widths and runnable ISA kernels alike) must
  // fill the lane's walk seed and first-restart start bit exactly as the
  // scalar definition does — these feed the walk, so a mismatch would
  // change verdict streams. Drive the raw kernels against the width-1
  // reference on the same rows and diff every LaneSetup field.
  util::Rng rng(0x5eedb17);
  const auto sg = kgd::build_solution(10, 3);
  ASSERT_TRUE(sg);
  const int nodes = sg->num_nodes();
  ASSERT_LE(nodes, 64);

  graph::BitAdjacency adj;
  adj.rebuild(sg->graph());
  std::uint64_t proc = 0, in = 0, out_m = 0;
  for (Node v = 0; v < nodes; ++v) {
    const std::uint64_t bit = std::uint64_t{1} << v;
    switch (sg->role(v)) {
      case kgd::Role::kProcessor: proc |= bit; break;
      case kgd::Role::kInput: in |= bit; break;
      case kgd::Role::kOutput: out_m |= bit; break;
    }
  }

  std::vector<std::uint64_t> masks;
  for (int i = 0; i < 67; ++i) masks.push_back(random_mask(rng, nodes, 5));

  std::vector<detail::LaneSetup> ref(masks.size());
  detail::batch_setup_w1(adj.rows64().data(), nodes, proc, in, out_m,
                         masks.data(), masks.size(), ref.data());
  for (std::size_t i = 0; i < masks.size(); ++i) {
    EXPECT_EQ(ref[i].seed, detail::walk_seed_mix(masks[i]));
    EXPECT_EQ(ref[i].start_bit, ref[i].starts & (~ref[i].starts + 1));
  }

  for (const auto& e : detail::batch_kernel_registry()) {
    if (!e.runnable) continue;
    std::vector<detail::LaneSetup> got(masks.size());
    e.kernel.fn(adj.rows64().data(), nodes, proc, in, out_m, masks.data(),
                masks.size(), got.data());
    for (std::size_t i = 0; i < masks.size(); ++i) {
      EXPECT_EQ(got[i].keep, ref[i].keep) << e.kernel.name << " slot " << i;
      EXPECT_EQ(got[i].in_ok, ref[i].in_ok) << e.kernel.name << " slot " << i;
      EXPECT_EQ(got[i].out_ok, ref[i].out_ok)
          << e.kernel.name << " slot " << i;
      EXPECT_EQ(got[i].starts, ref[i].starts)
          << e.kernel.name << " slot " << i;
      EXPECT_EQ(got[i].ends, ref[i].ends) << e.kernel.name << " slot " << i;
      EXPECT_EQ(got[i].seed, ref[i].seed) << e.kernel.name << " slot " << i;
      EXPECT_EQ(got[i].start_bit, ref[i].start_bit)
          << e.kernel.name << " slot " << i;
    }
  }
}

}  // namespace
}  // namespace kgdp::verify
