#include "kgd/factory.hpp"

#include <gtest/gtest.h>

#include "kgd/bounds.hpp"

namespace kgdp::kgd {
namespace {

TEST(Factory, RejectsNonPositiveParameters) {
  EXPECT_FALSE(is_supported(0, 1));
  EXPECT_FALSE(is_supported(1, 0));
  EXPECT_FALSE(is_supported(-1, 2));
  EXPECT_FALSE(build_solution(0, 3).has_value());
}

TEST(Factory, CoverageMirrorsPaper) {
  // n <= 3, any k.
  EXPECT_TRUE(is_supported(1, 50));
  EXPECT_TRUE(is_supported(3, 17));
  // k <= 3, any n.
  EXPECT_TRUE(is_supported(1000, 3));
  // k >= 4 requires n >= 2k+5.
  EXPECT_TRUE(is_supported(13, 4));
  EXPECT_FALSE(is_supported(12, 4));
  EXPECT_FALSE(is_supported(10, 5));
  EXPECT_TRUE(is_supported(15, 5));
}

TEST(Factory, GapIsReportedAsUnsupported) {
  // The paper leaves (k >= 4, 4 <= n < 2k+5) open; we must too.
  EXPECT_EQ(construction_method(8, 4), "unsupported");
  EXPECT_FALSE(build_solution(8, 4).has_value());
}

TEST(Factory, DispatchesToTheRightConstruction) {
  EXPECT_NE(construction_method(1, 9).find("Lemma 3.7"), std::string::npos);
  EXPECT_NE(construction_method(2, 9).find("Lemma 3.9"), std::string::npos);
  EXPECT_NE(construction_method(3, 9).find("3.2"), std::string::npos);
  EXPECT_NE(construction_method(9, 2).find("family k=2"), std::string::npos);
  EXPECT_NE(construction_method(30, 6).find("asymptotic"),
            std::string::npos);
}

TEST(Factory, BuiltGraphsCarryTheRequestedParameters) {
  for (auto [n, k] : std::vector<std::pair<int, int>>{
           {1, 7}, {2, 5}, {3, 4}, {9, 1}, {10, 2}, {11, 3}, {14, 4},
           {17, 5}}) {
    const auto sg = build_solution(n, k);
    ASSERT_TRUE(sg.has_value()) << "n=" << n << " k=" << k;
    EXPECT_EQ(sg->n(), n);
    EXPECT_EQ(sg->k(), k);
    EXPECT_EQ(sg->num_processors(), n + k);
    EXPECT_TRUE(sg->is_standard());
  }
}

TEST(Factory, AllBuiltGraphsAreDegreeOptimal) {
  for (int k = 1; k <= 3; ++k) {
    for (int n = 1; n <= 20; ++n) {
      const auto sg = build_solution(n, k);
      ASSERT_TRUE(sg.has_value());
      EXPECT_EQ(sg->max_processor_degree(), max_degree_lower_bound(n, k))
          << "n=" << n << " k=" << k;
    }
  }
  for (int k = 4; k <= 6; ++k) {
    for (int n = 2 * k + 5; n <= 2 * k + 8; ++n) {
      const auto sg = build_solution(n, k);
      ASSERT_TRUE(sg.has_value());
      EXPECT_EQ(sg->max_processor_degree(), max_degree_lower_bound(n, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(Factory, LargeParameterSmoke) {
  const auto sg = build_solution(500, 10);
  ASSERT_TRUE(sg.has_value());
  EXPECT_EQ(sg->num_processors(), 510);
  EXPECT_EQ(sg->max_processor_degree(), 12);
  EXPECT_TRUE(audit_bounds(*sg).empty());
}

}  // namespace
}  // namespace kgdp::kgd
