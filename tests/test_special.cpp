#include "kgd/special.hpp"

#include <gtest/gtest.h>

#include "kgd/bounds.hpp"
#include "verify/checker.hpp"

namespace kgdp::kgd {
namespace {

struct SpecialCase {
  int n;
  int k;
  int expect_max_degree;
};

class SpecialParam : public ::testing::TestWithParam<SpecialCase> {};

TEST_P(SpecialParam, StructurallySound) {
  const auto [n, k, deg] = GetParam();
  const SolutionGraph sg = make_special(n, k);
  EXPECT_EQ(sg.n(), n);
  EXPECT_EQ(sg.k(), k);
  EXPECT_TRUE(sg.is_standard());
  EXPECT_EQ(sg.num_processors(), n + k);
  EXPECT_EQ(sg.max_processor_degree(), deg);
  EXPECT_GE(sg.min_processor_degree(), k + 2);  // Lemma 3.1
  for (Node v : sg.processors()) {
    EXPECT_GE(processor_neighbor_count(sg, v), k + 1);  // Lemma 3.4
  }
}

TEST_P(SpecialParam, ExhaustivelyCertified) {
  // This re-runs the certification the embedded edge lists shipped with.
  const auto [n, k, deg] = GetParam();
  const auto res = verify::run_check(make_special(n, k), verify::CheckRequest::exhaustive(k));
  EXPECT_TRUE(res.holds);
  EXPECT_TRUE(res.exhaustive);
  EXPECT_EQ(res.solver_unknowns, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllFour, SpecialParam,
    ::testing::Values(SpecialCase{6, 2, 4}, SpecialCase{8, 2, 4},
                      SpecialCase{7, 3, 5}, SpecialCase{4, 3, 6}),
    [](const ::testing::TestParamInfo<SpecialCase>& param_info) {
      return "G" + std::to_string(param_info.param.n) + "_" +
             std::to_string(param_info.param.k);
    });

TEST(Special, PairPredicate) {
  EXPECT_TRUE(is_special_pair(6, 2));
  EXPECT_TRUE(is_special_pair(8, 2));
  EXPECT_TRUE(is_special_pair(7, 3));
  EXPECT_TRUE(is_special_pair(4, 3));
  EXPECT_FALSE(is_special_pair(5, 2));
  EXPECT_FALSE(is_special_pair(6, 3));
  EXPECT_FALSE(is_special_pair(4, 2));
}

TEST(Special, G62IsUniformDegreeKPlus2) {
  // The whole point of G(6,2): n=6 even escapes the k+3 penalty because
  // k=2 is even; every processor sits exactly at the Lemma 3.1 floor.
  const SolutionGraph sg = make_special_g62();
  EXPECT_EQ(sg.min_processor_degree(), 4);
  EXPECT_EQ(sg.max_processor_degree(), 4);
}

TEST(Special, G73IsUniformDegreeKPlus2) {
  const SolutionGraph sg = make_special_g73();
  EXPECT_EQ(sg.min_processor_degree(), 5);
  EXPECT_EQ(sg.max_processor_degree(), 5);
}

TEST(Special, G43RespectsLemma35) {
  // n=4 even, k=3 odd: max degree k+3 = 6 is forced (Lemma 3.5).
  const SolutionGraph sg = make_special_g43();
  EXPECT_EQ(sg.max_processor_degree(), 6);
  EXPECT_EQ(max_degree_lower_bound(4, 3), 6);
}

TEST(Special, AttachmentCountsBalanced) {
  for (const auto& sg :
       {make_special_g62(), make_special_g82(), make_special_g73(),
        make_special_g43()}) {
    EXPECT_EQ(sg.num_inputs(), sg.k() + 1);
    EXPECT_EQ(sg.num_outputs(), sg.k() + 1);
    EXPECT_TRUE(sg.all_terminals_degree_one());
  }
}

}  // namespace
}  // namespace kgdp::kgd
