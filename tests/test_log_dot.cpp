// Coverage for the remaining leaf utilities: the logger and the plain
// DOT exporter.
#include <gtest/gtest.h>

#include "graph/dot.hpp"
#include "graph/graph.hpp"
#include "util/log.hpp"

namespace kgdp {
namespace {

TEST(Log, LevelRoundTrip) {
  const auto saved = util::log_level();
  util::set_log_level(util::LogLevel::kDebug);
  EXPECT_EQ(util::log_level(), util::LogLevel::kDebug);
  util::set_log_level(util::LogLevel::kOff);
  EXPECT_EQ(util::log_level(), util::LogLevel::kOff);
  util::set_log_level(saved);
}

TEST(Log, SuppressedBelowLevelDoesNotCrash) {
  const auto saved = util::log_level();
  util::set_log_level(util::LogLevel::kOff);
  util::log_warn("should be invisible ", 42);
  util::log_info("also invisible");
  util::log_debug("and this");
  util::set_log_level(saved);
}

TEST(Log, ConcatFormatsMixedTypes) {
  EXPECT_EQ(util::detail::concat("x=", 3, " y=", 2.5), "x=3 y=2.5");
}

TEST(Dot, PlainExportListsNodesAndEdges) {
  const graph::Graph g = graph::make_path(3);
  const std::string dot = graph::to_dot(g, "P3");
  EXPECT_NE(dot.find("graph P3 {"), std::string::npos);
  EXPECT_NE(dot.find("n0 -- n1;"), std::string::npos);
  EXPECT_NE(dot.find("n1 -- n2;"), std::string::npos);
  EXPECT_EQ(dot.find("n0 -- n2"), std::string::npos);
}

TEST(Dot, CustomNamesAndColors) {
  const graph::Graph g = graph::make_path(2);
  const std::vector<std::string> names = {"alpha", "beta"};
  const std::vector<std::string> colors = {"red", "blue"};
  const std::string dot = graph::to_dot(g, "G", &names, &colors);
  EXPECT_NE(dot.find("label=\"alpha\""), std::string::npos);
  EXPECT_NE(dot.find("fillcolor=\"blue\""), std::string::npos);
}

TEST(Dot, EmptyGraph) {
  const std::string dot = graph::to_dot(graph::Graph(0));
  EXPECT_NE(dot.find("graph G {"), std::string::npos);
  EXPECT_EQ(dot.find("--"), std::string::npos);
}

}  // namespace
}  // namespace kgdp
