#include "kgd/pipeline.hpp"

#include <gtest/gtest.h>

#include "kgd/small_n.hpp"
#include "verify/pipeline_solver.hpp"

namespace kgdp::kgd {
namespace {

// G(1,1): processors {0,1} clique; terminals i0->0, o0->0, i1->1, o1->1
// with builder ids: p0=0, p1=1, i0=2, o0=3, i1=4, o1=5.
class PipelineCheckTest : public ::testing::Test {
 protected:
  SolutionGraph sg_ = make_g1k(1);
};

TEST_F(PipelineCheckTest, ValidPipelineAccepted) {
  // i0(2) - p0(0) - p1(1) - o1(5)
  const auto chk = check_pipeline(sg_, FaultSet::none(6), {2, 0, 1, 5});
  EXPECT_TRUE(chk.ok) << chk.error;
}

TEST_F(PipelineCheckTest, ReversedDirectionAccepted) {
  const auto chk = check_pipeline(sg_, FaultSet::none(6), {5, 1, 0, 2});
  EXPECT_TRUE(chk.ok) << chk.error;
}

TEST_F(PipelineCheckTest, MissingHealthyProcessorRejected) {
  // Skips processor 1 although it is healthy.
  const auto chk = check_pipeline(sg_, FaultSet::none(6), {2, 0, 3});
  EXPECT_FALSE(chk.ok);
  EXPECT_NE(chk.error.find("missing"), std::string::npos);
}

TEST_F(PipelineCheckTest, FaultyNodeOnPathRejected) {
  const FaultSet faults(6, {0});
  const auto chk = check_pipeline(sg_, faults, {2, 0, 1, 5});
  EXPECT_FALSE(chk.ok);
}

TEST_F(PipelineCheckTest, PipelineAroundFaultAccepted) {
  const FaultSet faults(6, {0});  // p0 dead; i1(4) - p1(1) - o1(5)
  const auto chk = check_pipeline(sg_, faults, {4, 1, 5});
  EXPECT_TRUE(chk.ok) << chk.error;
}

TEST_F(PipelineCheckTest, BothEndpointsSameKindRejected) {
  const auto chk = check_pipeline(sg_, FaultSet::none(6), {2, 0, 1, 4});
  EXPECT_FALSE(chk.ok);
  EXPECT_NE(chk.error.find("endpoint"), std::string::npos);
}

TEST_F(PipelineCheckTest, NonEdgeRejected) {
  // i0(2) is not adjacent to p1(1).
  const auto chk = check_pipeline(sg_, FaultSet::none(6), {2, 1, 0, 3});
  EXPECT_FALSE(chk.ok);
}

TEST_F(PipelineCheckTest, InteriorTerminalRejected) {
  // G(1,2) gives more room: try to route through a terminal.
  const SolutionGraph sg = make_g1k(2);
  // p0,p1,p2 = 0,1,2; terminals 3..8 (i0=3,o0=4,i1=5,o1=6,i2=7,o2=8).
  const auto chk =
      check_pipeline(sg, FaultSet::none(sg.num_nodes()), {3, 0, 4});
  EXPECT_FALSE(chk.ok);  // healthy processors 1,2 missing
}

TEST_F(PipelineCheckTest, RepeatedNodeRejected) {
  const auto chk = check_pipeline(sg_, FaultSet::none(6), {2, 0, 1, 0, 3});
  EXPECT_FALSE(chk.ok);
}

TEST_F(PipelineCheckTest, TooShortRejected) {
  const auto chk = check_pipeline(sg_, FaultSet::none(6), {2});
  EXPECT_FALSE(chk.ok);
}

TEST(PipelineNormalize, OutputFirstGetsReversed) {
  const SolutionGraph sg = make_g1k(1);
  const Pipeline p = normalize_pipeline(sg, {5, 1, 0, 2});
  EXPECT_EQ(sg.role(p.path.front()), Role::kInput);
  EXPECT_EQ(sg.role(p.path.back()), Role::kOutput);
  EXPECT_EQ(p.num_processors(), 2);
  EXPECT_EQ(p.input_terminal(), 2);
  EXPECT_EQ(p.output_terminal(), 5);
}

TEST(PipelineToString, UsesNodeNames) {
  const SolutionGraph sg = make_g1k(1);
  const Pipeline p = normalize_pipeline(sg, {2, 0, 1, 5});
  const std::string s = p.to_string(sg);
  EXPECT_NE(s.find("p0"), std::string::npos);
  EXPECT_NE(s.find(" - "), std::string::npos);
}

}  // namespace
}  // namespace kgdp::kgd
