#include "graph/hamiltonian.hpp"

#include <gtest/gtest.h>

#include "graph/properties.hpp"
#include "util/rng.hpp"

namespace kgdp::graph {
namespace {

util::DynamicBitset all_nodes(int n) { return util::DynamicBitset(n, true); }

util::DynamicBitset only(int n, std::initializer_list<int> nodes) {
  util::DynamicBitset b(n);
  for (int v : nodes) b.set(v);
  return b;
}

TEST(Hamiltonian, SingleNodeNeedsBothEndpointSets) {
  Graph g(1);
  EXPECT_EQ(hamiltonian_path(g, only(1, {0}), only(1, {0})).status,
            HamResult::kFound);
  EXPECT_EQ(hamiltonian_path(g, only(1, {0}), util::DynamicBitset(1)).status,
            HamResult::kNone);
}

TEST(Hamiltonian, PathGraphHasExactlyItsEndpoints) {
  const Graph g = make_path(5);
  auto res = hamiltonian_path(g, only(5, {0}), only(5, {4}));
  ASSERT_EQ(res.status, HamResult::kFound);
  EXPECT_TRUE(is_hamiltonian_path(g, res.path));
  // Interior start is impossible.
  EXPECT_EQ(hamiltonian_path(g, only(5, {2}), all_nodes(5)).status,
            HamResult::kNone);
}

TEST(Hamiltonian, CompleteGraphAnyEndpoints) {
  const Graph g = make_complete(7);
  for (int a = 0; a < 7; ++a) {
    for (int b = 0; b < 7; ++b) {
      if (a == b) continue;
      auto res = hamiltonian_path(g, only(7, {a}), only(7, {b}));
      ASSERT_EQ(res.status, HamResult::kFound);
      EXPECT_EQ(res.path.front(), a);
      EXPECT_EQ(res.path.back(), b);
      EXPECT_TRUE(is_hamiltonian_path(g, res.path));
    }
  }
}

TEST(Hamiltonian, DisconnectedGraphHasNone) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_EQ(hamiltonian_path(g, all_nodes(4), all_nodes(4)).status,
            HamResult::kNone);
}

TEST(Hamiltonian, StarGraphHasNoHamPathBeyondThreeNodes) {
  Graph g(5);  // K_{1,4}
  for (int leaf = 1; leaf < 5; ++leaf) g.add_edge(0, leaf);
  EXPECT_EQ(hamiltonian_path(g, all_nodes(5), all_nodes(5)).status,
            HamResult::kNone);
}

TEST(Hamiltonian, BipartiteParityObstruction) {
  // K_{2,4} has no Hamiltonian path (parts differ by more than 1).
  Graph g(6);
  for (int a = 0; a < 2; ++a) {
    for (int b = 2; b < 6; ++b) g.add_edge(a, b);
  }
  EXPECT_EQ(hamiltonian_path(g, all_nodes(6), all_nodes(6)).status,
            HamResult::kNone);
}

TEST(Hamiltonian, CycleGraphEndpointsMustBeAdjacent) {
  const Graph g = make_cycle(6);
  EXPECT_EQ(hamiltonian_path(g, only(6, {0}), only(6, {1})).status,
            HamResult::kFound);
  EXPECT_EQ(hamiltonian_path(g, only(6, {0}), only(6, {3})).status,
            HamResult::kNone);
}

TEST(Hamiltonian, EndpointSetsRestrictSolutions) {
  const Graph g = make_path(4);  // only 0-...-3 works
  EXPECT_EQ(hamiltonian_path(g, only(4, {1, 2}), all_nodes(4)).status,
            HamResult::kNone);
  auto res = hamiltonian_path(g, only(4, {0, 3}), only(4, {0, 3}));
  ASSERT_EQ(res.status, HamResult::kFound);
}

TEST(Hamiltonian, GridGraph3x3) {
  // 3x3 grid: Hamiltonian paths exist from corner (0,0).
  Graph g(9);
  auto id = [](int r, int c) { return r * 3 + c; };
  for (int r = 0; r < 3; ++r) {
    for (int c = 0; c < 3; ++c) {
      if (c + 1 < 3) g.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < 3) g.add_edge(id(r, c), id(r + 1, c));
    }
  }
  auto res = hamiltonian_path(g, only(9, {0}), all_nodes(9));
  ASSERT_EQ(res.status, HamResult::kFound);
  EXPECT_TRUE(is_hamiltonian_path(g, res.path));
  // Color argument: both endpoints must be on the majority color class;
  // center-to-anywhere from a minority-color corner cell 1 fails:
  EXPECT_EQ(hamiltonian_path(g, only(9, {1}), only(9, {3})).status,
            HamResult::kNone);
}

TEST(Hamiltonian, DpFallbackAgreesWithDfs) {
  // Tight budget forces the DP path; verdicts must agree with exact DFS.
  util::Rng rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 8 + static_cast<int>(rng.next_below(6));
    Graph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.next_bool(0.35)) g.add_edge(u, v);
      }
    }
    HamiltonianOptions exact;
    HamiltonianOptions tight;
    tight.dfs_budget = 1;  // give up immediately, go to DP
    const auto r1 = hamiltonian_path(g, all_nodes(n), all_nodes(n), exact);
    const auto r2 = hamiltonian_path(g, all_nodes(n), all_nodes(n), tight);
    ASSERT_NE(r1.status, HamResult::kUnknown);
    ASSERT_NE(r2.status, HamResult::kUnknown);
    EXPECT_EQ(r1.status, r2.status) << "trial " << trial;
    if (r2.status == HamResult::kFound) {
      EXPECT_TRUE(is_hamiltonian_path(g, r2.path));
    }
  }
}

TEST(Hamiltonian, LargeGraphPathOver64Nodes) {
  // Exercise the DynamicBitset code path (n > 64).
  const int n = 80;
  const Graph g = make_cycle(n);
  auto res = hamiltonian_path(g, only(n, {0}), only(n, {1}));
  ASSERT_EQ(res.status, HamResult::kFound);
  EXPECT_TRUE(is_hamiltonian_path(g, res.path));
  EXPECT_EQ(hamiltonian_path(g, only(n, {0}), only(n, {40})).status,
            HamResult::kNone);
}

TEST(Hamiltonian, SolverReuseAccumulatesExpansions) {
  HamiltonianSolver solver;
  const Graph g = make_complete(6);
  solver.solve(g, all_nodes(6), all_nodes(6));
  const auto e1 = solver.expansions();
  solver.solve(g, all_nodes(6), all_nodes(6));
  EXPECT_GT(solver.expansions(), e1);
}

TEST(Hamiltonian, RandomDenseGraphsAlwaysCertified) {
  util::Rng rng(7);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 10 + static_cast<int>(rng.next_below(15));
    Graph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.next_bool(0.6)) g.add_edge(u, v);
      }
    }
    auto res = hamiltonian_path(g, all_nodes(n), all_nodes(n));
    ASSERT_NE(res.status, HamResult::kUnknown);
    if (res.status == HamResult::kFound) {
      EXPECT_TRUE(is_hamiltonian_path(g, res.path));
    }
  }
}

}  // namespace
}  // namespace kgdp::graph
