// Orbit-keyed route atlas: canonicalizer transport correctness, the
// atlas-on/off bit-identity contract (hit, cold-miss, and warmed routes
// all equal the atlas-free computation), warm-after-miss idempotence,
// artifact save/load/merge round-trips, shard tiling, and concurrent
// route+warm (the TSan target for the RCU snapshot path).
//
// Graphs under test: G(5,3) has |Aut| = 24 (697 fault sets collapse to
// 69 orbits, so transport is exercised on genuinely nontrivial orbits)
// and G(8,2) has a trivial group (every mask is its own canonical form
// — the degenerate path must honour the same contract).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <memory>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "fault/canonical.hpp"
#include "graph/automorphism.hpp"
#include "kgd/factory.hpp"
#include "kgd/pipeline.hpp"
#include "reconfig/atlas.hpp"

namespace kgdp::reconfig {
namespace {

kgd::SolutionGraph build(int n, int k) {
  auto sg = kgd::build_solution(n, k);
  EXPECT_TRUE(sg.has_value()) << "n=" << n << " k=" << k;
  return std::move(*sg);
}

std::vector<graph::Node> nodes_of_mask(std::uint64_t mask) {
  std::vector<graph::Node> nodes;
  for (std::uint64_t m = mask; m; m &= m - 1) {
    nodes.push_back(static_cast<graph::Node>(std::countr_zero(m)));
  }
  return nodes;
}

// All fault masks of popcount <= max_faults over `num_nodes` bits.
std::vector<std::uint64_t> all_masks(int num_nodes, int max_faults) {
  std::vector<std::uint64_t> masks;
  const std::uint64_t limit = std::uint64_t{1} << num_nodes;
  for (std::uint64_t m = 0; m < limit; ++m) {
    if (std::popcount(m) <= max_faults) masks.push_back(m);
  }
  return masks;
}

std::string path_str(const std::vector<graph::Node>& path) {
  std::string s;
  for (graph::Node v : path) {
    s += std::to_string(v);
    s += ',';
  }
  return s;
}

TEST(FaultCanonicalTransport, SigmaMapsMaskToCanonicalMask) {
  const kgd::SolutionGraph sg = build(5, 3);
  const int nn = sg.num_nodes();
  ASSERT_LE(nn, 64);
  const graph::AutomorphismList autos = graph::solution_automorphisms(sg);
  ASSERT_TRUE(autos.usable());  // the whole point of this graph choice
  const fault::FaultCanonicalizer canon(&autos);
  auto scratch = std::make_unique<fault::FaultCanonicalizer::Scratch>();

  std::uint64_t collapsed = 0;
  for (const std::uint64_t mask : all_masks(nn, sg.k())) {
    std::uint64_t plain = 0;
    ASSERT_TRUE(canon.canonical_mask(mask, *scratch, &plain));
    std::uint64_t via_transport = 0;
    graph::Permutation sigma;
    ASSERT_TRUE(canon.canonical_mask_transport(mask, nn, *scratch,
                                               &via_transport, &sigma));
    // Transport agrees with the plain canonicalizer and actually carries
    // the query mask onto the canonical mask.
    EXPECT_EQ(via_transport, plain);
    ASSERT_EQ(sigma.size(), static_cast<std::size_t>(nn));
    EXPECT_EQ(fault::FaultCanonicalizer::apply_to_mask(sigma, mask),
              via_transport)
        << "mask " << mask;
    if (plain != mask) ++collapsed;
  }
  EXPECT_GT(collapsed, 0u);  // the group really moves masks around
}

TEST(RouteAtlas, InsertLookupAndCapacity) {
  RouteAtlas atlas(2);
  std::vector<graph::Node> path;
  EXPECT_FALSE(atlas.lookup(1, 5, &path));
  EXPECT_TRUE(atlas.insert(1, 5, {0, 1, 2}));
  EXPECT_TRUE(atlas.insert(1, 5, {0, 1, 2}));  // duplicate: confirmed
  EXPECT_TRUE(atlas.insert(1, 9, {3, 4}));
  EXPECT_FALSE(atlas.insert(1, 13, {5}));  // full
  EXPECT_TRUE(atlas.lookup(1, 5, &path));
  EXPECT_EQ(path, (std::vector<graph::Node>{0, 1, 2}));
  EXPECT_FALSE(atlas.lookup(2, 5, &path));  // other graph, same mask
  const RouteAtlasStats s = atlas.stats();
  EXPECT_EQ(s.entries, 2u);
  EXPECT_EQ(s.inserts, 2u);
  EXPECT_EQ(s.rejected_full, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 2u);
}

// The acceptance criterion: with the atlas disabled, cold, or prebuilt,
// `route` answers bit-identically for every fault set in certification
// reach and past it (where the exact solver takes over from the
// constructive routers).
void expect_bit_identity(const kgd::SolutionGraph& sg) {
  const int nn = sg.num_nodes();

  Router bare(sg, nullptr);
  RouteAtlas cold_atlas(std::size_t{1} << 20);
  Router cold(sg, &cold_atlas);
  RouteAtlas warm_atlas(std::size_t{1} << 20);
  Router warm(sg, &warm_atlas);
  warm.build_atlas(sg.k(), 0, 1);

  auto scratch = std::make_unique<fault::FaultCanonicalizer::Scratch>();
  std::uint64_t feasible = 0;
  for (const std::uint64_t mask : all_masks(nn, sg.k() + 1)) {
    const kgd::FaultSet faults(nn, nodes_of_mask(mask));
    const Router::Result a = bare.route(faults, *scratch);
    const Router::Result b = cold.route(faults, *scratch);
    const Router::Result c = warm.route(faults, *scratch);
    ASSERT_EQ(a.feasible, b.feasible) << faults.to_string();
    ASSERT_EQ(a.feasible, c.feasible) << faults.to_string();
    if (!a.feasible) continue;
    ++feasible;
    ASSERT_EQ(path_str(a.pipeline.path), path_str(b.pipeline.path))
        << faults.to_string();
    ASSERT_EQ(path_str(a.pipeline.path), path_str(c.pipeline.path))
        << faults.to_string();
    // Served routes are certified pipelines for the *query* faults.
    EXPECT_TRUE(kgd::check_pipeline(sg, faults, a.pipeline.path).ok)
        << faults.to_string();
  }
  EXPECT_GT(feasible, 0u);
  EXPECT_GT(warm_atlas.stats().hits, 0u);  // the atlas actually served
}

TEST(Router, AtlasOnOffBitIdentitySymmetricGraph) {
  expect_bit_identity(build(5, 3));
}

TEST(Router, AtlasOnOffBitIdentityTrivialGroupGraph) {
  expect_bit_identity(build(8, 2));
}

TEST(Router, WarmAfterMissIsIdempotent) {
  const kgd::SolutionGraph sg = build(5, 3);
  const int nn = sg.num_nodes();
  RouteAtlas atlas(std::size_t{1} << 20);
  Router router(sg, &atlas);
  auto scratch = std::make_unique<fault::FaultCanonicalizer::Scratch>();

  const kgd::FaultSet faults(nn, {0, 11});
  const Router::Result first = router.route(faults, *scratch);
  EXPECT_TRUE(first.feasible);
  EXPECT_FALSE(first.atlas_hit);
  EXPECT_TRUE(first.warmed);
  const std::uint64_t entries_after_first = atlas.stats().entries;

  const Router::Result second = router.route(faults, *scratch);
  EXPECT_TRUE(second.feasible);
  EXPECT_TRUE(second.atlas_hit);
  EXPECT_FALSE(second.warmed);
  EXPECT_EQ(atlas.stats().entries, entries_after_first);  // no re-insert
  EXPECT_EQ(path_str(first.pipeline.path), path_str(second.pipeline.path));

  // An orbit sibling — the image of the fault set under any group
  // element that moves it — hits the entry the miss just warmed.
  const std::uint64_t mask = (std::uint64_t{1} << 0) | (std::uint64_t{1} << 11);
  for (const graph::Permutation& gen : router.automorphisms().generators) {
    const std::uint64_t image =
        fault::FaultCanonicalizer::apply_to_mask(gen, mask);
    if (image == mask) continue;
    const kgd::FaultSet sibling_faults(nn, nodes_of_mask(image));
    const Router::Result sibling = router.route(sibling_faults, *scratch);
    EXPECT_TRUE(sibling.atlas_hit);
    EXPECT_TRUE(sibling.feasible);
    EXPECT_TRUE(
        kgd::check_pipeline(sg, sibling_faults, sibling.pipeline.path).ok);
    break;
  }
}

TEST(Router, BuildAtlasShardsTileTheSlotSpace) {
  const kgd::SolutionGraph sg = build(5, 3);

  RouteAtlas full_atlas(std::size_t{1} << 20);
  Router full(sg, &full_atlas);
  std::uint64_t slots_full = 0;
  const std::uint64_t inserted_full =
      full.build_atlas(sg.k(), 0, 1, &slots_full);
  EXPECT_GT(inserted_full, 0u);

  RouteAtlas sharded_atlas(std::size_t{1} << 20);
  Router sharded(sg, &sharded_atlas);
  std::uint64_t inserted_shards = 0;
  for (std::uint32_t i = 0; i < 3; ++i) {
    std::uint64_t slots = 0;
    inserted_shards += sharded.build_atlas(sg.k(), i, 3, &slots);
    EXPECT_EQ(slots, slots_full);
  }
  // Disjoint contiguous slot slices cover every orbit exactly once.
  EXPECT_EQ(inserted_shards, inserted_full);
  EXPECT_EQ(sharded_atlas.size(), full_atlas.size());

  // And the artifacts are byte-identical: save() sorts by canonical mask,
  // so shard-build order cannot leak into the file.
  std::ostringstream a, b;
  full_atlas.save(a, full.graph_fp(), sg.n(), sg.k());
  sharded_atlas.save(b, sharded.graph_fp(), sg.n(), sg.k());
  EXPECT_EQ(a.str(), b.str());
}

TEST(Router, SaveLoadMergeRoundTrip) {
  const kgd::SolutionGraph sg = build(5, 3);

  // Two shard artifacts, built independently.
  std::ostringstream shard_files[2];
  for (std::uint32_t i = 0; i < 2; ++i) {
    RouteAtlas atlas(std::size_t{1} << 20);
    Router router(sg, &atlas);
    router.build_atlas(sg.k(), i, 2);
    atlas.save(shard_files[i], router.graph_fp(), sg.n(), sg.k());
  }

  // Merge by loading both into one atlas.
  RouteAtlas merged(std::size_t{1} << 20);
  RouteAtlasFileInfo info0, info1;
  {
    std::istringstream in(shard_files[0].str());
    info0 = merged.load(in);
  }
  {
    std::istringstream in(shard_files[1].str());
    info1 = merged.load(in, info0.graph_fp);
  }
  EXPECT_EQ(info0.graph_fp, info1.graph_fp);
  EXPECT_EQ(info0.n, sg.n());
  EXPECT_EQ(info0.k, sg.k());
  EXPECT_EQ(merged.size(), info0.entries + info1.entries);

  // The merged atlas serves hits for everything a full build covers.
  Router router(sg, &merged);
  auto scratch = std::make_unique<fault::FaultCanonicalizer::Scratch>();
  const Router::Result res =
      router.route(kgd::FaultSet(sg.num_nodes(), {0, 11}), *scratch);
  EXPECT_TRUE(res.feasible);
  EXPECT_TRUE(res.atlas_hit);

  // A fingerprint pin rejects an artifact for a different graph.
  RouteAtlas other(std::size_t{1} << 20);
  std::istringstream in(shard_files[0].str());
  EXPECT_THROW(other.load(in, info0.graph_fp + 1), std::runtime_error);
}

TEST(RouteAtlas, LoadRejectsMalformedArtifacts) {
  RouteAtlas atlas(16);
  const char* bad[] = {
      "not-an-atlas 1\n",
      "kgdp-atlas 99\nfp 1\nn 8\nk 2\nentries 0\nend\n",
      "kgdp-atlas 1\nfp 1\nn 8\nk 2\nentries 1\ne 3 9999\n",
      "kgdp-atlas 1\nfp 1\nn 8\nk 2\nentries 1\ne 3 4 1 2\n",  // truncated
  };
  for (const char* text : bad) {
    std::istringstream in(text);
    EXPECT_THROW(atlas.load(in), std::runtime_error) << text;
  }
}

TEST(Router, BuildAtlasValidatesItsPreconditions) {
  const kgd::SolutionGraph sg = build(5, 3);
  Router no_atlas(sg, nullptr);
  EXPECT_THROW(no_atlas.build_atlas(2, 0, 1), std::runtime_error);
  RouteAtlas atlas(16);
  Router router(sg, &atlas);
  EXPECT_THROW(router.build_atlas(2, 1, 1), std::runtime_error);
  EXPECT_THROW(router.build_atlas(2, 0, 0), std::runtime_error);
}

// TSan target: concurrent readers and warmers over one shared atlas.
// Every thread routes the same fault-set population in a different
// order, so lookups race inserts on the RCU snapshots; every result
// must be certified and identical across threads.
TEST(Router, ConcurrentRouteAndWarm) {
  const kgd::SolutionGraph sg = build(5, 3);
  const int nn = sg.num_nodes();
  RouteAtlas atlas(std::size_t{1} << 20);
  Router router(sg, &atlas);

  const std::vector<std::uint64_t> masks = all_masks(nn, sg.k());
  constexpr int kThreads = 4;
  std::vector<std::vector<std::string>> seen(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto scratch = std::make_unique<fault::FaultCanonicalizer::Scratch>();
      seen[t].resize(masks.size());
      // Stride by 7·(t+1), coprime to the mask count (697 = 17·41), so
      // each thread covers every mask but collides with the others on
      // freshly warming orbits.
      for (std::size_t j = 0; j < masks.size(); ++j) {
        const std::size_t idx = (j * 7 * (t + 1) + t) % masks.size();
        const kgd::FaultSet faults(nn, nodes_of_mask(masks[idx]));
        const Router::Result res = router.route(faults, *scratch);
        if (res.feasible) {
          EXPECT_TRUE(kgd::check_pipeline(sg, faults, res.pipeline.path).ok);
        }
        seen[t][idx] = res.feasible ? path_str(res.pipeline.path) : "-";
      }
    });
  }
  for (std::thread& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[0], seen[t]);  // hit/miss/warm history is invisible
  }
  const RouteAtlasStats s = atlas.stats();
  EXPECT_GT(s.hits, 0u);
  EXPECT_GT(s.inserts, 0u);
}

// Graphs past the 64-node mask machinery are served directly, and the
// precompute pass refuses them instead of silently doing nothing.
TEST(Router, LargeGraphsBypassTheAtlas) {
  const kgd::SolutionGraph sg = build(60, 2);
  ASSERT_GT(sg.num_nodes(), 64);
  RouteAtlas atlas(std::size_t{1} << 10);
  Router router(sg, &atlas);
  auto scratch = std::make_unique<fault::FaultCanonicalizer::Scratch>();
  const kgd::FaultSet faults(sg.num_nodes(), {1, 2});
  const Router::Result res = router.route(faults, *scratch);
  EXPECT_TRUE(res.feasible);  // GD(G, 2) holds, so any 2-fault set routes
  EXPECT_FALSE(res.atlas_hit);
  EXPECT_FALSE(res.warmed);
  EXPECT_EQ(atlas.size(), 0u);
  EXPECT_TRUE(kgd::check_pipeline(sg, faults, res.pipeline.path).ok);
  EXPECT_THROW(router.build_atlas(2, 0, 1), std::runtime_error);
}

}  // namespace
}  // namespace kgdp::reconfig
