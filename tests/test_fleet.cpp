// Fleet integration tests against real in-process kgdd workers: the
// coordinator's merged verdict must be bit-identical to a single-node
// verify::run_check for every fleet shape — one worker, many workers
// with steals enabled, a fleet with an unreachable member, and a worker
// drained and restarted mid-lease (cursor-resumed reassignment). Plus
// the wire-level epoch-fencing contract of `lease`/`lease.release` and
// unit tests for the shared reconnect backoff schedule.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fault/orbit_enumerator.hpp"
#include "fleet/checkpoint.hpp"
#include "fleet/coordinator.hpp"
#include "util/durable_file.hpp"
#include "graph/automorphism.hpp"
#include "io/json.hpp"
#include "kgd/factory.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "service/daemon.hpp"
#include "util/backoff.hpp"
#include "verify/checker.hpp"

namespace kgdp {
namespace {

constexpr int kReadTimeoutMs = 120000;

TEST(Backoff, ScheduleIsDeterministic) {
  util::BackoffPolicy policy;
  policy.initial_delay_ms = 100;
  policy.multiplier = 2.0;
  policy.max_delay_ms = 400;
  policy.max_attempts = 5;
  policy.budget_ms = 10000;
  util::Backoff backoff(policy);
  int delay = 0;
  for (const int want : {100, 200, 400, 400, 400}) {
    ASSERT_TRUE(backoff.next_delay(&delay));
    EXPECT_EQ(delay, want);
  }
  EXPECT_FALSE(backoff.next_delay(&delay));  // attempt cap
  EXPECT_EQ(backoff.elapsed_ms(), 1500);
}

TEST(Backoff, BudgetClampsTheFinalSleepThenExhausts) {
  util::BackoffPolicy policy;
  policy.initial_delay_ms = 400;
  policy.multiplier = 2.0;
  policy.max_delay_ms = 10000;
  policy.max_attempts = 100;
  policy.budget_ms = 1000;
  util::Backoff backoff(policy);
  int delay = 0;
  ASSERT_TRUE(backoff.next_delay(&delay));
  EXPECT_EQ(delay, 400);
  ASSERT_TRUE(backoff.next_delay(&delay));
  EXPECT_EQ(delay, 600);  // 800 clamped to the remaining budget
  EXPECT_EQ(backoff.elapsed_ms(), 1000);
  EXPECT_FALSE(backoff.next_delay(&delay));  // budget cap, not attempts
  EXPECT_EQ(backoff.attempts(), 3);
}

TEST(Backoff, ZeroBudgetExhaustsBeforeTheFirstSleep) {
  util::BackoffPolicy policy;
  policy.initial_delay_ms = 100;
  policy.max_attempts = 10;
  policy.budget_ms = 0;
  util::Backoff backoff(policy);
  int delay = -1;
  EXPECT_FALSE(backoff.next_delay(&delay));
  EXPECT_EQ(delay, -1);  // never written
  EXPECT_EQ(backoff.elapsed_ms(), 0);
  EXPECT_EQ(backoff.attempts(), 1);  // the call that exhausted it
}

TEST(Backoff, BudgetSmallerThanTheFirstDelayClampsThenExhausts) {
  util::BackoffPolicy policy;
  policy.initial_delay_ms = 500;
  policy.max_delay_ms = 10000;
  policy.max_attempts = 10;
  policy.budget_ms = 200;
  util::Backoff backoff(policy);
  int delay = 0;
  ASSERT_TRUE(backoff.next_delay(&delay));
  EXPECT_EQ(delay, 200);  // clamped to the whole budget at once
  EXPECT_EQ(backoff.elapsed_ms(), 200);
  EXPECT_FALSE(backoff.next_delay(&delay));
  EXPECT_EQ(backoff.attempts(), 2);
}

TEST(Backoff, ExhaustionAtTheExactBudgetBoundary) {
  util::BackoffPolicy policy;
  policy.initial_delay_ms = 100;
  policy.multiplier = 1.0;
  policy.max_attempts = 10;
  policy.budget_ms = 100;  // first sleep lands exactly on the budget
  util::Backoff backoff(policy);
  int delay = 0;
  ASSERT_TRUE(backoff.next_delay(&delay));
  EXPECT_EQ(delay, 100);
  EXPECT_EQ(backoff.elapsed_ms(), 100);
  EXPECT_FALSE(backoff.next_delay(&delay));  // remaining == 0, no sleep
  EXPECT_EQ(backoff.attempts(), 2);
}

TEST(Backoff, ResetRestoresTheFullSchedule) {
  util::BackoffPolicy policy;
  policy.initial_delay_ms = 50;
  policy.max_attempts = 2;
  policy.budget_ms = 10000;
  util::Backoff backoff(policy);
  int delay = 0;
  ASSERT_TRUE(backoff.next_delay(&delay));
  ASSERT_TRUE(backoff.next_delay(&delay));
  ASSERT_FALSE(backoff.next_delay(&delay));
  backoff.reset();
  EXPECT_EQ(backoff.attempts(), 0);
  EXPECT_EQ(backoff.elapsed_ms(), 0);
  ASSERT_TRUE(backoff.next_delay(&delay));
  EXPECT_EQ(delay, 50);
}

void expect_identical(const verify::CheckResult& a,
                      const verify::CheckResult& b, const std::string& tag) {
  EXPECT_EQ(a.holds, b.holds) << tag;
  EXPECT_EQ(a.exhaustive, b.exhaustive) << tag;
  EXPECT_EQ(a.fault_sets_checked, b.fault_sets_checked) << tag;
  EXPECT_EQ(a.fault_sets_solved, b.fault_sets_solved) << tag;
  EXPECT_EQ(a.solver_unknowns, b.solver_unknowns) << tag;
  EXPECT_EQ(a.orbits_pruned, b.orbits_pruned) << tag;
  EXPECT_EQ(a.automorphism_order, b.automorphism_order) << tag;
  ASSERT_EQ(a.counterexample.has_value(), b.counterexample.has_value())
      << tag;
  if (a.counterexample) {
    EXPECT_EQ(a.counterexample->nodes(), b.counterexample->nodes()) << tag;
  }
  ASSERT_EQ(a.counterexample_index.has_value(),
            b.counterexample_index.has_value())
      << tag;
  if (a.counterexample_index) {
    EXPECT_EQ(*a.counterexample_index, *b.counterexample_index) << tag;
  }
}

// An in-process kgdd worker on the given endpoint (ephemeral TCP or a
// unix socket path), drained in the destructor.
class WorkerDaemon {
 public:
  explicit WorkerDaemon(const net::Endpoint& ep,
                        service::ServiceConfig service = {}) {
    service::DaemonConfig config;
    config.endpoints.push_back(ep);
    config.service = std::move(service);
    config.watch_stop_signal = false;
    daemon_ = std::make_unique<service::Daemon>(std::move(config));
    daemon_->start_thread();
    endpoint_ = ep.kind == net::Endpoint::Kind::kTcp && ep.port == 0
                    ? net::Endpoint::tcp(ep.host, daemon_->tcp_port())
                    : ep;
  }

  ~WorkerDaemon() { drain(); }

  void drain() {
    if (daemon_ == nullptr) return;
    daemon_->begin_drain();
    daemon_->join();
    daemon_.reset();
  }

  const net::Endpoint& endpoint() const { return endpoint_; }

  net::Client connect() {
    std::string error;
    auto client = net::Client::connect(endpoint_, &error);
    EXPECT_TRUE(client.has_value()) << error;
    return std::move(*client);
  }

 private:
  std::unique_ptr<service::Daemon> daemon_;
  net::Endpoint endpoint_;
};

verify::CheckResult local_reference(const kgd::SolutionGraph& sg,
                                    int max_faults) {
  return verify::run_check(sg,
                           verify::CheckRequest::exhaustive(max_faults));
}

TEST(Fleet, SingleWorkerMatchesLocal) {
  const auto sg = kgd::build_solution(3, 4);
  ASSERT_TRUE(sg.has_value());
  WorkerDaemon worker(net::Endpoint::tcp("127.0.0.1", 0));
  fleet::FleetConfig config;
  config.workers = {worker.endpoint()};
  config.chunk = 64;
  config.lease_grain = 3;
  fleet::Coordinator coordinator(std::move(config));
  const fleet::InstanceOutcome out =
      coordinator.run_instance(*sg, 3, 4, 4, verify::PruneMode::kAuto);
  expect_identical(out.result, local_reference(*sg, 4), "single worker");
  EXPECT_EQ(out.leases_planned, 3u);
  ASSERT_EQ(out.per_worker_solved.size(), 1u);
  EXPECT_EQ(out.per_worker_leases[0], 3u + out.leases_stolen);
  EXPECT_EQ(out.per_worker_solved[0], out.result.fault_sets_solved);
}

TEST(Fleet, TwoWorkersWithStealsMergeIdentically) {
  const auto sg = kgd::build_solution(3, 4);
  ASSERT_TRUE(sg.has_value());
  WorkerDaemon w0(net::Endpoint::tcp("127.0.0.1", 0));
  WorkerDaemon w1(net::Endpoint::tcp("127.0.0.1", 0));
  fleet::FleetConfig config;
  config.workers = {w0.endpoint(), w1.endpoint()};
  // Tiny chunks and a floor-level steal threshold so idle workers
  // actually split trailing leases; the assertion is merge identity, not
  // steal count — steal timing is load-dependent by design.
  config.chunk = 1;
  config.lease_grain = 1;
  config.min_steal_items = 2;
  fleet::Coordinator coordinator(std::move(config));
  const fleet::InstanceOutcome out =
      coordinator.run_instance(*sg, 3, 4, 4, verify::PruneMode::kAuto);
  expect_identical(out.result, local_reference(*sg, 4), "two workers");
  EXPECT_TRUE(out.result.holds);

  // Workers persist across run_instance calls: the same fleet certifies
  // a second instance (prune off — both sides must agree the slot space
  // is the unpruned enumeration).
  const auto sg2 = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg2.has_value());
  verify::CheckOptions off;
  off.prune = verify::PruneMode::kOff;
  const fleet::InstanceOutcome out2 =
      coordinator.run_instance(*sg2, 6, 2, 2, verify::PruneMode::kOff);
  expect_identical(out2.result,
                   verify::run_check(
                       *sg2, verify::CheckRequest::exhaustive(2, off)),
                   "two workers second instance");
}

TEST(Fleet, UnreachableWorkerIsWrittenOffAndRunCompletes) {
  const auto sg = kgd::build_solution(3, 4);
  ASSERT_TRUE(sg.has_value());
  WorkerDaemon live(net::Endpoint::tcp("127.0.0.1", 0));
  fleet::FleetConfig config;
  // Port 1 never answers; the tight budget writes the worker off fast.
  config.workers = {live.endpoint(), net::Endpoint::tcp("127.0.0.1", 1)};
  config.chunk = 32;
  config.lease_grain = 2;
  config.reconnect.initial_delay_ms = 10;
  config.reconnect.max_attempts = 3;
  config.reconnect.budget_ms = 100;
  fleet::Coordinator coordinator(std::move(config));
  const fleet::InstanceOutcome out =
      coordinator.run_instance(*sg, 3, 4, 4, verify::PruneMode::kAuto);
  expect_identical(out.result, local_reference(*sg, 4),
                   "unreachable member");
  ASSERT_EQ(out.per_worker_solved.size(), 2u);
  EXPECT_EQ(out.per_worker_solved[1], 0u);
  EXPECT_EQ(out.per_worker_solved[0], out.result.fault_sets_solved);
}

TEST(Fleet, AllWorkersDownFailsTheRun) {
  const auto sg = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg.has_value());
  fleet::FleetConfig config;
  config.workers = {net::Endpoint::tcp("127.0.0.1", 1)};
  config.reconnect.initial_delay_ms = 10;
  config.reconnect.max_attempts = 2;
  config.reconnect.budget_ms = 50;
  config.poll_ms = 20;
  fleet::Coordinator coordinator(std::move(config));
  // The typed error is the CLI's documented exit-4 path: every endpoint
  // written off with leases outstanding and no listener for joiners.
  EXPECT_THROW(
      coordinator.run_instance(*sg, 6, 2, 2, verify::PruneMode::kAuto),
      fleet::AllWorkersDeadError);
}

// Polls a worker's `stats` until its live lease table shows streamed
// progress (or the deadline passes); returns items_done seen.
std::uint64_t wait_for_lease_progress(WorkerDaemon& worker) {
  net::Client client = worker.connect();
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (std::chrono::steady_clock::now() < deadline) {
    io::JsonObject frame;
    frame["method"] = std::string("stats");
    std::string error;
    if (!client.send_json(io::Json(std::move(frame)), &error)) break;
    auto reply = client.read_json(kReadTimeoutMs, &error);
    if (!reply.has_value()) break;
    const io::Json* fleet_block = reply->find("fleet");
    if (fleet_block != nullptr) {
      const io::Json* active = fleet_block->find("active");
      if (active != nullptr && active->is_array()) {
        for (const io::Json& lease : active->as_array()) {
          const io::Json* done = lease.find("items_done");
          if (done != nullptr && done->as_int() > 0) {
            return static_cast<std::uint64_t>(done->as_int());
          }
        }
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  return 0;
}

TEST(Fleet, DrainedWorkerIsReassignedAfterRestart) {
  const auto sg = kgd::build_solution(3, 4);
  ASSERT_TRUE(sg.has_value());
  const net::Endpoint ep = net::Endpoint::unix_path(
      ::testing::TempDir() + "kgdp_fleet_restart.sock");
  auto worker = std::make_unique<WorkerDaemon>(ep);

  fleet::FleetConfig config;
  config.workers = {ep};
  config.chunk = 1;  // stream a cursor per item: fine-grained resume
  config.lease_grain = 2;
  config.poll_ms = 20;
  fleet::Coordinator coordinator(std::move(config));

  fleet::InstanceOutcome out;
  std::thread run([&] {
    out = coordinator.run_instance(*sg, 3, 4, 4, verify::PruneMode::kAuto);
  });

  // Once the worker has streamed progress, kill it mid-lease and bring
  // a fresh daemon up on the same socket. The coordinator must requeue
  // the orphaned lease and resume it from the drained cursor.
  EXPECT_GT(wait_for_lease_progress(*worker), 0u);
  worker->drain();
  worker = std::make_unique<WorkerDaemon>(ep);
  run.join();

  expect_identical(out.result, local_reference(*sg, 4), "drain restart");
  EXPECT_GE(out.leases_reassigned, 1u);
  EXPECT_GE(out.workers_lost, 1u);
}

// --- Wire-level lease contract -------------------------------------------

io::Json request_frame(const std::string& method, io::JsonObject params,
                       const std::string& tag) {
  io::JsonObject frame;
  frame["method"] = method;
  frame["params"] = io::Json(std::move(params));
  frame["tag"] = tag;
  return io::Json(std::move(frame));
}

// Reads frames until one carries the given tag AND one of the wanted
// types (streamed frames for other requests interleave on the wire).
std::optional<io::Json> read_tagged(net::Client& client,
                                    const std::string& tag,
                                    const std::vector<std::string>& types) {
  std::string error;
  while (true) {
    auto frame = client.read_json(kReadTimeoutMs, &error);
    if (!frame.has_value()) {
      ADD_FAILURE() << "read: " << error;
      return std::nullopt;
    }
    const io::Json* t = frame->find("tag");
    const io::Json* type = frame->find("type");
    if (t == nullptr || !t->is_string() || t->as_string() != tag) continue;
    if (type == nullptr || !type->is_string()) continue;
    for (const std::string& want : types) {
      if (type->as_string() == want) return frame;
    }
  }
}

std::uint64_t orbit_total(const kgd::SolutionGraph& sg, int max_faults) {
  return fault::OrbitEnumerator(sg.num_nodes(), max_faults,
                                graph::solution_automorphisms(sg))
      .num_orbits();
}

TEST(Fleet, EpochFencingOnTheWire) {
  const auto sg = kgd::build_solution(3, 4);
  ASSERT_TRUE(sg.has_value());
  const std::uint64_t total = orbit_total(*sg, 4);
  WorkerDaemon worker(net::Endpoint::tcp("127.0.0.1", 0));
  net::Client a = worker.connect();
  std::string error;

  auto grant_params = [&](std::uint64_t epoch) {
    io::JsonObject p;
    p["n"] = 3;
    p["k"] = 4;
    p["max_faults"] = 4;
    p["begin"] = std::uint64_t{0};
    p["end"] = total;
    p["chunk"] = std::uint64_t{1};  // keep the session alive a while
    p["lease"] = std::string("L0");
    p["epoch"] = epoch;
    return p;
  };

  ASSERT_TRUE(a.send_json(request_frame("lease", grant_params(5), "g5"),
                          &error))
      << error;
  auto accepted = read_tagged(a, "g5", {"accepted", "error"});
  ASSERT_TRUE(accepted.has_value());
  ASSERT_EQ(accepted->find("type")->as_string(), "accepted");

  // A stale-epoch release bounces without touching the session.
  io::JsonObject stale;
  stale["lease"] = std::string("L0");
  stale["epoch"] = std::uint64_t{3};
  ASSERT_TRUE(a.send_json(
      request_frame("lease.release", std::move(stale), "r-stale"), &error));
  auto rejected = read_tagged(a, "r-stale", {"result", "error"});
  ASSERT_TRUE(rejected.has_value());
  EXPECT_EQ(rejected->find("type")->as_string(), "error");
  EXPECT_EQ(rejected->find("code")->as_string(), "bad_request");

  // The right epoch from the wrong connection bounces too.
  net::Client b = worker.connect();
  io::JsonObject wrong_conn;
  wrong_conn["lease"] = std::string("L0");
  wrong_conn["epoch"] = std::uint64_t{5};
  ASSERT_TRUE(b.send_json(
      request_frame("lease.release", std::move(wrong_conn), "r-conn"),
      &error));
  auto other = read_tagged(b, "r-conn", {"result", "error"});
  ASSERT_TRUE(other.has_value());
  EXPECT_EQ(other->find("type")->as_string(), "error");
  EXPECT_EQ(other->find("code")->as_string(), "bad_request");

  // A re-grant with a strictly newer epoch supersedes: the old stream
  // terminates as cancelled on connection A.
  ASSERT_TRUE(b.send_json(request_frame("lease", grant_params(6), "g6"),
                          &error));
  auto accepted6 = read_tagged(b, "g6", {"accepted", "error"});
  ASSERT_TRUE(accepted6.has_value());
  ASSERT_EQ(accepted6->find("type")->as_string(), "accepted");
  auto fenced = read_tagged(a, "g5", {"result", "error"});
  ASSERT_TRUE(fenced.has_value());
  ASSERT_EQ(fenced->find("type")->as_string(), "result");
  EXPECT_EQ(fenced->find("status")->as_string(), "cancelled");

  // ...and a replay of the old epoch can never resurrect it.
  ASSERT_TRUE(a.send_json(request_frame("lease", grant_params(5), "g5b"),
                          &error));
  auto replay = read_tagged(a, "g5b", {"accepted", "error"});
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(replay->find("type")->as_string(), "error");
  EXPECT_EQ(replay->find("code")->as_string(), "bad_request");

  // Full release from the owner surrenders the lease deterministically.
  io::JsonObject release;
  release["lease"] = std::string("L0");
  release["epoch"] = std::uint64_t{6};
  ASSERT_TRUE(b.send_json(
      request_frame("lease.release", std::move(release), "r-full"), &error));
  auto released = read_tagged(b, "r-full", {"result", "error"});
  ASSERT_TRUE(released.has_value());
  ASSERT_EQ(released->find("type")->as_string(), "result");
  EXPECT_TRUE(released->find("applied")->as_bool());
  auto surrendered = read_tagged(b, "g6", {"result", "error"});
  ASSERT_TRUE(surrendered.has_value());
  EXPECT_EQ(surrendered->find("status")->as_string(), "cancelled");

  // Releasing an unknown lease is not_found, and the fence counter on
  // `stats` saw exactly the three rejections above.
  io::JsonObject unknown;
  unknown["lease"] = std::string("L404");
  unknown["epoch"] = std::uint64_t{1};
  ASSERT_TRUE(b.send_json(
      request_frame("lease.release", std::move(unknown), "r-404"), &error));
  auto missing = read_tagged(b, "r-404", {"result", "error"});
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->find("code")->as_string(), "not_found");

  io::JsonObject stats;
  stats["method"] = std::string("stats");
  stats["tag"] = std::string("st");
  ASSERT_TRUE(b.send_json(io::Json(std::move(stats)), &error));
  auto reply = read_tagged(b, "st", {"result", "error"});
  ASSERT_TRUE(reply.has_value());
  const io::Json* fleet_block = reply->find("fleet");
  ASSERT_NE(fleet_block, nullptr);
  EXPECT_EQ(fleet_block->find("stale_rejected")->as_int(), 3);
  EXPECT_EQ(fleet_block->find("leases_granted")->as_int(), 2);
  EXPECT_EQ(fleet_block->find("leases_released")->as_int(), 1);
}

// --- Crash-resume and elastic membership ---------------------------------

// Reads one integer out of a worker's `stats` fleet block.
std::int64_t fleet_stat(WorkerDaemon& worker, const std::string& field) {
  net::Client client = worker.connect();
  io::JsonObject frame;
  frame["method"] = std::string("stats");
  frame["tag"] = std::string("fs");
  std::string error;
  EXPECT_TRUE(client.send_json(io::Json(std::move(frame)), &error)) << error;
  auto reply = read_tagged(client, "fs", {"result", "error"});
  if (!reply.has_value()) return -1;
  const io::Json* fleet_block = reply->find("fleet");
  if (fleet_block == nullptr) return -1;
  const io::Json* value = fleet_block->find(field);
  return value != nullptr ? value->as_int() : -1;
}

// The ISSUE acceptance drill: checkpoint a clean G(3,6) run, capturing
// the exact bytes a SIGKILL after every lease-state transition would
// leave on disk, then treat each snapshot as a crash site — restore it
// and prove a fresh coordinator resumes to a bit-identical merge.
TEST(Fleet, CrashResumeSweepIsBitIdentical) {
  const auto sg = kgd::build_solution(3, 6);
  ASSERT_TRUE(sg.has_value());
  const verify::CheckResult reference = local_reference(*sg, 6);

  WorkerDaemon worker(net::Endpoint::tcp("127.0.0.1", 0));
  const std::string ckpt =
      ::testing::TempDir() + "kgdp_fleet_resume.kgdp";
  fleet::remove_fleet_checkpoint(ckpt);

  std::vector<std::string> payloads;
  std::mutex payloads_mu;
  auto make_config = [&] {
    fleet::FleetConfig config;
    config.workers = {worker.endpoint()};
    config.chunk = 4096;
    config.lease_grain = 4;
    config.checkpoint_path = ckpt;
    return config;
  };

  {
    fleet::FleetConfig config = make_config();
    config.checkpoint_observer = [&](const std::string& payload) {
      std::lock_guard<std::mutex> lock(payloads_mu);
      payloads.push_back(payload);
    };
    fleet::Coordinator coordinator(std::move(config));
    const fleet::InstanceOutcome out =
        coordinator.run_instance(*sg, 3, 6, 6, verify::PruneMode::kAuto);
    expect_identical(out.result, reference, "checkpointed clean run");
    EXPECT_FALSE(out.resumed);
    EXPECT_EQ(out.generation, 0u);
  }
  // The merge removed its own checkpoint; a stale table must never
  // resurrect leases of a finished instance.
  EXPECT_FALSE(std::ifstream(ckpt).good());
  // Initial plan + at least grant/progress/done per lease.
  ASSERT_GE(payloads.size(), 8u) << "checkpoint cadence collapsed";

  for (std::size_t i = 0; i < payloads.size(); ++i) {
    const std::string tag = "snapshot " + std::to_string(i);
    util::durable_write_file(ckpt, payloads[i]);
    fleet::Coordinator coordinator(make_config());
    const fleet::InstanceOutcome out =
        coordinator.run_instance(*sg, 3, 6, 6, verify::PruneMode::kAuto);
    expect_identical(out.result, reference, tag);
    EXPECT_TRUE(out.resumed) << tag;
    EXPECT_GE(out.generation, 1u) << tag;
    EXPECT_FALSE(std::ifstream(ckpt).good()) << tag;
  }
}

// A checkpoint for a different instance identity is ignored, not
// misapplied: the run starts fresh and still merges correctly.
TEST(Fleet, ForeignCheckpointIsIgnored) {
  const auto sg = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg.has_value());
  const std::string ckpt =
      ::testing::TempDir() + "kgdp_fleet_foreign.kgdp";
  fleet::FleetCheckpoint foreign;
  foreign.n = 3;
  foreign.k = 4;
  foreign.max_faults = 4;
  foreign.prune = "auto";
  foreign.total = 999;
  foreign.generation = 7;
  fleet::save_fleet_checkpoint(ckpt, foreign);

  WorkerDaemon worker(net::Endpoint::tcp("127.0.0.1", 0));
  fleet::FleetConfig config;
  config.workers = {worker.endpoint()};
  config.checkpoint_path = ckpt;
  fleet::Coordinator coordinator(std::move(config));
  const fleet::InstanceOutcome out =
      coordinator.run_instance(*sg, 6, 2, 2, verify::PruneMode::kAuto);
  expect_identical(out.result, local_reference(*sg, 2), "foreign ckpt");
  EXPECT_FALSE(out.resumed);
  EXPECT_EQ(out.generation, 0u);
  fleet::remove_fleet_checkpoint(ckpt);
}

TEST(Fleet, JoinedWorkerCompletesTheRun) {
  const auto sg = kgd::build_solution(3, 4);
  ASSERT_TRUE(sg.has_value());
  WorkerDaemon joiner(net::Endpoint::tcp("127.0.0.1", 0));

  fleet::FleetConfig config;
  // Nobody at launch: with a registration listener open, an empty
  // fleet waits for joiners instead of declaring itself dead.
  config.listen = net::Endpoint::tcp("127.0.0.1", 0);
  config.chunk = 64;
  config.lease_grain = 2;
  config.poll_ms = 20;
  fleet::Coordinator coordinator(std::move(config));
  ASSERT_GT(coordinator.listen_tcp_port(), 0);

  fleet::InstanceOutcome out;
  std::thread run([&] {
    out = coordinator.run_instance(*sg, 3, 4, 4, verify::PruneMode::kAuto);
  });
  // Let the campaign go live (and sit idle) before the first member
  // registers — the join provably lands mid-run.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::string error;
  auto reg = net::Client::connect(
      net::Endpoint::tcp("127.0.0.1", coordinator.listen_tcp_port()),
      &error);
  ASSERT_TRUE(reg.has_value()) << error;
  io::JsonObject params;
  params["endpoint"] = joiner.endpoint().to_string();
  ASSERT_TRUE(reg->send_json(
      request_frame("fleet.join", std::move(params), "j0"), &error))
      << error;
  auto joined = read_tagged(*reg, "j0", {"result", "error"});
  ASSERT_TRUE(joined.has_value());
  ASSERT_EQ(joined->find("type")->as_string(), "result");
  EXPECT_TRUE(joined->find("joined")->as_bool());
  EXPECT_EQ(joined->find("worker")->as_int(), 0);

  // Re-joining the same endpoint is idempotent, not a second member.
  io::JsonObject again;
  again["endpoint"] = joiner.endpoint().to_string();
  ASSERT_TRUE(reg->send_json(
      request_frame("fleet.join", std::move(again), "j1"), &error));
  auto dup = read_tagged(*reg, "j1", {"result", "error"});
  ASSERT_TRUE(dup.has_value());
  ASSERT_EQ(dup->find("type")->as_string(), "result");
  EXPECT_TRUE(dup->find("already_member")->as_bool());

  run.join();
  expect_identical(out.result, local_reference(*sg, 4), "joined worker");
  ASSERT_EQ(out.per_worker_solved.size(), 1u);
  EXPECT_EQ(out.per_worker_solved[0], out.result.fault_sets_solved);
  EXPECT_GE(out.per_worker_leases[0], 1u);
  // The daemon heard the coordinator's announce and counted the join.
  EXPECT_EQ(fleet_stat(joiner, "workers_joined"), 1);
}

TEST(Fleet, LeaveDrainsAtTheChunkBoundaryWithoutLosingSlots) {
  const auto sg = kgd::build_solution(3, 4);
  ASSERT_TRUE(sg.has_value());
  WorkerDaemon stay(net::Endpoint::tcp("127.0.0.1", 0));
  WorkerDaemon leaver(net::Endpoint::tcp("127.0.0.1", 0));

  fleet::FleetConfig config;
  config.workers = {stay.endpoint(), leaver.endpoint()};
  config.listen = net::Endpoint::tcp("127.0.0.1", 0);
  config.chunk = 1;  // a cursor per item: the drain hands back mid-lease
  config.lease_grain = 2;
  config.poll_ms = 20;
  fleet::Coordinator coordinator(std::move(config));
  ASSERT_GT(coordinator.listen_tcp_port(), 0);

  fleet::InstanceOutcome out;
  std::thread run([&] {
    out = coordinator.run_instance(*sg, 3, 4, 4, verify::PruneMode::kAuto);
  });

  // Wait for the leaver to stream progress on its lease, then ask the
  // coordinator to decommission it mid-lease.
  EXPECT_GT(wait_for_lease_progress(leaver), 0u);
  std::string error;
  auto reg = net::Client::connect(
      net::Endpoint::tcp("127.0.0.1", coordinator.listen_tcp_port()),
      &error);
  ASSERT_TRUE(reg.has_value()) << error;
  io::JsonObject params;
  params["endpoint"] = leaver.endpoint().to_string();
  ASSERT_TRUE(reg->send_json(
      request_frame("fleet.leave", std::move(params), "l0"), &error))
      << error;
  auto leaving = read_tagged(*reg, "l0", {"result", "error"});
  ASSERT_TRUE(leaving.has_value());
  ASSERT_EQ(leaving->find("type")->as_string(), "result");
  EXPECT_TRUE(leaving->find("leaving")->as_bool());

  // Leaving an endpoint that is not a member bounces as not_found.
  io::JsonObject ghost;
  ghost["endpoint"] = std::string("tcp:127.0.0.1:1");
  ASSERT_TRUE(reg->send_json(
      request_frame("fleet.leave", std::move(ghost), "l1"), &error));
  auto missing = read_tagged(*reg, "l1", {"result", "error"});
  ASSERT_TRUE(missing.has_value());
  EXPECT_EQ(missing->find("code")->as_string(), "not_found");

  run.join();
  expect_identical(out.result, local_reference(*sg, 4), "leave drain");
  // The drained lease was handed back at its cursor and finished by the
  // survivor — no slot lost, no slot double-counted.
  EXPECT_GE(out.leases_reassigned, 1u);
  ASSERT_EQ(out.per_worker_solved.size(), 2u);
  EXPECT_EQ(out.per_worker_solved[0] + out.per_worker_solved[1],
            out.result.fault_sets_solved);
  EXPECT_EQ(fleet_stat(leaver, "workers_left"), 1);
}

}  // namespace
}  // namespace kgdp
