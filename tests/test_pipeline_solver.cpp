#include "verify/pipeline_solver.hpp"

#include <gtest/gtest.h>

#include "kgd/factory.hpp"
#include "kgd/small_n.hpp"

namespace kgdp::verify {
namespace {

using kgd::FaultSet;
using kgd::Role;
using kgd::SolutionGraph;

TEST(PipelineSolver, FaultFreeAlwaysSolvable) {
  for (int k = 1; k <= 3; ++k) {
    for (int n = 1; n <= 8; ++n) {
      const auto sg = kgd::build_solution(n, k);
      ASSERT_TRUE(sg);
      const auto out = find_pipeline(*sg, FaultSet::none(sg->num_nodes()));
      ASSERT_EQ(out.status, SolveStatus::kFound) << "n=" << n << " k=" << k;
      EXPECT_EQ(out.pipeline->num_processors(), n + k);
    }
  }
}

TEST(PipelineSolver, PipelineIsNormalizedInputFirst) {
  const SolutionGraph sg = kgd::make_g1k(2);
  const auto out = find_pipeline(sg, FaultSet::none(sg.num_nodes()));
  ASSERT_EQ(out.status, SolveStatus::kFound);
  EXPECT_EQ(sg.role(out.pipeline->path.front()), Role::kInput);
  EXPECT_EQ(sg.role(out.pipeline->path.back()), Role::kOutput);
}

TEST(PipelineSolver, ShrinksWithProcessorFaults) {
  const SolutionGraph sg = kgd::make_g1k(3);  // 4 processors
  const auto procs = sg.processors();
  const FaultSet fs(sg.num_nodes(), {procs[1], procs[2]});
  const auto out = find_pipeline(sg, fs);
  ASSERT_EQ(out.status, SolveStatus::kFound);
  EXPECT_EQ(out.pipeline->num_processors(), 2);
  const auto chk = kgd::check_pipeline(sg, fs, out.pipeline->path);
  EXPECT_TRUE(chk.ok) << chk.error;
}

TEST(PipelineSolver, RoutesAroundTerminalFaults) {
  const SolutionGraph sg = kgd::make_g1k(2);
  // Kill two input terminals; the third must carry the pipeline.
  const auto ins = sg.inputs();
  const FaultSet fs(sg.num_nodes(), {ins[0], ins[1]});
  const auto out = find_pipeline(sg, fs);
  ASSERT_EQ(out.status, SolveStatus::kFound);
  EXPECT_EQ(out.pipeline->input_terminal(), ins[2]);
  // All three processors still healthy and used.
  EXPECT_EQ(out.pipeline->num_processors(), 3);
}

TEST(PipelineSolver, DetectsInfeasibleInstances) {
  const SolutionGraph sg = kgd::make_g1k(1);
  // Kill both input terminals (more than k faults): no entry point.
  const auto ins = sg.inputs();
  const FaultSet fs(sg.num_nodes(), {ins[0], ins[1]});
  EXPECT_EQ(find_pipeline(sg, fs).status, SolveStatus::kNone);
}

TEST(PipelineSolver, AllProcessorsDeadMeansNoPipeline) {
  const SolutionGraph sg = kgd::make_g1k(1);
  const auto procs = sg.processors();
  const FaultSet fs(sg.num_nodes(), {procs[0], procs[1]});
  EXPECT_EQ(find_pipeline(sg, fs).status, SolveStatus::kNone);
}

TEST(PipelineSolver, SingleSurvivingProcessorNeedsBothTerminalKinds) {
  const SolutionGraph sg = kgd::make_g1k(1);
  const auto procs = sg.processors();
  // One processor left: pipeline i - p - o.
  const FaultSet fs(sg.num_nodes(), {procs[0]});
  const auto out = find_pipeline(sg, fs);
  ASSERT_EQ(out.status, SolveStatus::kFound);
  EXPECT_EQ(out.pipeline->path.size(), 3u);
}

TEST(PipelineSolver, EveryResultIsCertified) {
  // certify=true (default) re-validates internally; double-check here
  // against the public checker on a fault sweep.
  const auto sg = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg);
  PipelineSolver solver;
  for (int v = 0; v < sg->num_nodes(); ++v) {
    const FaultSet fs(sg->num_nodes(), {v});
    const auto out = solver.solve(*sg, fs);
    ASSERT_EQ(out.status, SolveStatus::kFound) << "fault " << v;
    EXPECT_TRUE(kgd::check_pipeline(*sg, fs, out.pipeline->path).ok);
  }
}

TEST(PipelineSolver, LargeInstanceReconfiguresQuickly) {
  const auto sg = kgd::build_solution(60, 4);
  ASSERT_TRUE(sg);
  const FaultSet fs(sg->num_nodes(), {0, 7, 33});
  const auto out = find_pipeline(*sg, fs);
  ASSERT_EQ(out.status, SolveStatus::kFound);
  EXPECT_TRUE(kgd::check_pipeline(*sg, fs, out.pipeline->path).ok);
}

TEST(PipelineSolver, ExpansionCounterAdvances) {
  PipelineSolver solver;
  const SolutionGraph sg = kgd::make_g1k(3);
  solver.solve(sg, FaultSet::none(sg.num_nodes()));
  EXPECT_GT(solver.ham_expansions(), 0u);
}

TEST(PipelineSolver, GeneralPathReusedMappingsStayCorrect) {
  // The >64-node path reuses its to_sub/to_full mapping buffers across
  // calls instead of rebuilding them from scratch. Pin the invariant
  // that made the reuse safe: with one solver cycled through fault sets
  // of varying sizes (so stale mapping tails would be visible), every
  // produced pipeline certifies and matches a fresh reference solve.
  const auto sg = kgd::build_solution(60, 4);  // 74 nodes: legacy path
  ASSERT_TRUE(sg);
  PipelineSolver solver;
  const std::vector<std::vector<int>> fault_lists = {
      {0, 7, 33}, {}, {70, 71, 72, 73}, {5}, {12, 40}, {}};
  for (const auto& nodes : fault_lists) {
    const FaultSet fs(sg->num_nodes(), nodes);
    const auto out = solver.solve(*sg, fs);
    const auto ref = find_pipeline_reference(*sg, fs);
    ASSERT_EQ(out.status, ref.status);
    if (out.status == SolveStatus::kFound) {
      EXPECT_TRUE(kgd::check_pipeline(*sg, fs, out.pipeline->path).ok);
      EXPECT_EQ(out.pipeline->path, ref.pipeline->path);
    }
  }
  // And the patch entry point keeps the same contract on this path.
  const FaultSet first(sg->num_nodes(), {3, 9});
  (void)solver.solve(*sg, first);
  const std::vector<int> removed = {9};
  const std::vector<int> added = {20, 50};
  const auto patched = solver.patch(*sg, removed, added);
  const FaultSet target(sg->num_nodes(), {3, 20, 50});
  const auto ref = find_pipeline_reference(*sg, target);
  ASSERT_EQ(patched.status, ref.status);
  if (patched.status == SolveStatus::kFound) {
    EXPECT_TRUE(kgd::check_pipeline(*sg, target, patched.pipeline->path).ok);
    EXPECT_EQ(patched.pipeline->path, ref.pipeline->path);
  }
}

TEST(PipelineSolver, CountersTrackSolvePatchAndRebuild) {
  const SolutionGraph sg = kgd::make_g3k(3);
  PipelineSolver solver;
  EXPECT_EQ(solver.counters().solves, 0u);
  (void)solver.solve(sg, FaultSet::none(sg.num_nodes()));
  const std::vector<int> none;
  const std::vector<int> add = {0};
  (void)solver.patch(sg, none, add);
  const SolverCounters c = solver.counters();
  EXPECT_EQ(c.solves, 2u);
  EXPECT_EQ(c.rebuilds, 1u);
  EXPECT_EQ(c.patches, 1u);
  EXPECT_GT(c.search_nodes, 0u);
  EXPECT_GT(c.scratch_bytes, 0u);
  solver.reset_counters();
  EXPECT_EQ(solver.counters().solves, 0u);
}

}  // namespace
}  // namespace kgdp::verify
