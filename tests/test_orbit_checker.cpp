// Differential harness: the pruned and unpruned exhaustive checkers are
// two implementations of the same quantifier GD(G,k), so on every factory
// construction in reach they must agree on the verdict, any reported
// counterexample must genuinely kill the graph, and the orbit partition
// must tile the full fault-set space exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <string>

#include "baseline/naive.hpp"
#include "fault/enumerator.hpp"
#include "fault/orbit_enumerator.hpp"
#include "graph/automorphism.hpp"
#include "kgd/factory.hpp"
#include "util/thread_pool.hpp"
#include "verify/checker.hpp"

namespace kgdp::verify {
namespace {

CheckOptions with_prune(PruneMode mode, util::ThreadPool* pool = nullptr) {
  CheckOptions opts;
  opts.prune = mode;
  opts.pool = pool;
  return opts;
}

// Every covered (n, k) with n+k <= 12, k <= 3 — small enough that the
// unpruned sweep stays fast, large enough to hit every §3.2/§3.3
// construction branch at least once.
std::vector<std::pair<int, int>> covered_instances() {
  std::vector<std::pair<int, int>> out;
  for (int k = 1; k <= 3; ++k) {
    for (int n = 1; n + k <= 12; ++n) {
      if (kgd::is_supported(n, k)) out.emplace_back(n, k);
    }
  }
  return out;
}

void expect_agreement(const kgd::SolutionGraph& sg, int k,
                      const CheckResult& pruned,
                      const CheckResult& unpruned) {
  const std::string tag = sg.name() + " k=" + std::to_string(k);
  EXPECT_EQ(pruned.holds, unpruned.holds) << tag;
  EXPECT_EQ(pruned.exhaustive, unpruned.exhaustive) << tag;
  EXPECT_EQ(pruned.solver_unknowns, 0u) << tag;
  EXPECT_EQ(unpruned.solver_unknowns, 0u) << tag;
  if (pruned.holds) {
    // Both cover the full quantifier domain, the pruned one with fewer
    // solves whenever the group is non-trivial.
    const auto total = fault::FaultEnumerator(sg.num_nodes(), k).total();
    EXPECT_EQ(pruned.fault_sets_checked, total) << tag;
    EXPECT_EQ(unpruned.fault_sets_checked, total) << tag;
    EXPECT_EQ(pruned.fault_sets_solved + pruned.orbits_pruned, total) << tag;
  } else {
    // Counterexample *membership*: each checker's witness must be a real
    // killer (the sets themselves may differ across orbit choices).
    ASSERT_TRUE(pruned.counterexample.has_value()) << tag;
    ASSERT_TRUE(unpruned.counterexample.has_value()) << tag;
    for (const auto* ce : {&*pruned.counterexample, &*unpruned.counterexample}) {
      EXPECT_LE(ce->size(), k) << tag;
      EXPECT_EQ(find_pipeline(sg, *ce).status, SolveStatus::kNone) << tag;
    }
  }
}

TEST(OrbitChecker, DifferentialOverFactoryConstructions) {
  for (const auto& [n, k] : covered_instances()) {
    const auto sg = kgd::build_solution(n, k);
    ASSERT_TRUE(sg) << n << "," << k;
    const auto pruned = run_check(*sg, CheckRequest::exhaustive(k, with_prune(PruneMode::kAuto)));
    const auto unpruned = run_check(*sg, CheckRequest::exhaustive(k, with_prune(PruneMode::kOff)));
    expect_agreement(*sg, k, pruned, unpruned);
    EXPECT_TRUE(pruned.holds) << sg->name();  // factory graphs are GD
  }
}

TEST(OrbitChecker, DifferentialOnFailingGraphs) {
  // Negative instances: the spare path dies on interior faults; also
  // check the factory graphs one past their design budget.
  for (auto [n, k] : std::vector<std::pair<int, int>>{{4, 2}, {6, 3}}) {
    const auto sg = baseline::make_spare_path(n, k);
    const auto pruned = run_check(sg, CheckRequest::exhaustive(k, with_prune(PruneMode::kAuto)));
    const auto unpruned = run_check(sg, CheckRequest::exhaustive(k, with_prune(PruneMode::kOff)));
    expect_agreement(sg, k, pruned, unpruned);
    EXPECT_FALSE(pruned.holds);
  }
  for (auto [n, k] : std::vector<std::pair<int, int>>{{1, 2}, {3, 2}, {5, 1}}) {
    const auto sg = kgd::build_solution(n, k);
    ASSERT_TRUE(sg);
    const auto pruned =
        run_check(*sg, CheckRequest::exhaustive(k + 1, with_prune(PruneMode::kAuto)));
    const auto unpruned =
        run_check(*sg, CheckRequest::exhaustive(k + 1, with_prune(PruneMode::kOff)));
    expect_agreement(*sg, k + 1, pruned, unpruned);
    EXPECT_FALSE(pruned.holds) << sg->name();
  }
}

TEST(OrbitChecker, ParallelPrunedMatchesSequentialPruned) {
  util::ThreadPool pool(4);
  for (const auto& [n, k] : covered_instances()) {
    if (n + k > 10) continue;  // keep the parallel leg quick
    const auto sg = kgd::build_solution(n, k);
    ASSERT_TRUE(sg);
    const auto seq = run_check(*sg, CheckRequest::exhaustive(k, with_prune(PruneMode::kAuto)));
    const auto par =
        run_check(*sg, CheckRequest::exhaustive(k, with_prune(PruneMode::kAuto, &pool)));
    EXPECT_EQ(seq.holds, par.holds) << sg->name();
    EXPECT_EQ(seq.fault_sets_solved, par.fault_sets_solved) << sg->name();
    EXPECT_EQ(par.worker_solve_seconds.size(), pool.thread_count());
  }
  // Deterministic counterexample under parallel pruning: lowest-index
  // failing representative, any thread count.
  const auto bad = baseline::make_spare_path(4, 2);
  const auto seq = run_check(bad, CheckRequest::exhaustive(2, with_prune(PruneMode::kAuto)));
  const auto par =
      run_check(bad, CheckRequest::exhaustive(2, with_prune(PruneMode::kAuto, &pool)));
  ASSERT_TRUE(seq.counterexample && par.counterexample);
  EXPECT_EQ(seq.counterexample->nodes(), par.counterexample->nodes());
}

TEST(OrbitChecker, OrbitSizesTileTheFaultSpace) {
  // Summed orbit sizes must equal FaultEnumerator::total() exactly, and
  // representatives must be sorted orbit minima.
  for (const auto& [n, k] : covered_instances()) {
    const auto sg = kgd::build_solution(n, k);
    ASSERT_TRUE(sg);
    const auto autos = graph::solution_automorphisms(*sg);
    const fault::OrbitEnumerator orbits(sg->num_nodes(), k, autos);
    const fault::FaultEnumerator plain(sg->num_nodes(), k);
    EXPECT_EQ(orbits.total(), plain.total());
    std::uint64_t sum = 0;
    std::uint64_t prev_rep = 0;
    for (std::uint64_t i = 0; i < orbits.num_orbits(); ++i) {
      sum += orbits.orbit_size(i);
      if (i > 0) EXPECT_GT(orbits.rep_index(i), prev_rep) << sg->name();
      prev_rep = orbits.rep_index(i);
    }
    EXPECT_EQ(sum, plain.total()) << sg->name();
    EXPECT_EQ(orbits.num_orbits() + orbits.fault_sets_pruned(),
              plain.total())
        << sg->name();
  }
}

TEST(OrbitChecker, OrbitMembersShareTheVerdict) {
  // Spot-check soundness directly: within an orbit, every member solves
  // to the same yes/no as its representative.
  const auto sg = kgd::build_solution(2, 3);  // G(2,3): |Aut| = 6
  ASSERT_TRUE(sg);
  const auto autos = graph::solution_automorphisms(*sg);
  ASSERT_TRUE(autos.usable());
  const fault::FaultEnumerator plain(sg->num_nodes(), 3);
  for (std::uint64_t i = 0; i < plain.total(); ++i) {
    const auto nodes = plain.nodes_at(i);
    const bool base_ok =
        find_pipeline(*sg, plain.at(i)).status == SolveStatus::kFound;
    for (const auto& g : autos.generators) {
      std::vector<int> image;
      for (int v : nodes) image.push_back(g[v]);
      std::sort(image.begin(), image.end());
      const kgd::FaultSet mapped(sg->num_nodes(), image);
      EXPECT_EQ(find_pipeline(*sg, mapped).status == SolveStatus::kFound,
                base_ok)
          << sg->name() << " index " << i;
    }
  }
}

TEST(OrbitChecker, UnprunedFallbackIsTransparent) {
  // A trivial group must leave the enumerator in identity mode with the
  // exact FaultEnumerator ordering.
  const graph::AutomorphismList trivial;
  const fault::OrbitEnumerator orbits(6, 2, trivial);
  const fault::FaultEnumerator plain(6, 2);
  EXPECT_FALSE(orbits.pruned());
  EXPECT_EQ(orbits.num_orbits(), plain.total());
  EXPECT_EQ(orbits.fault_sets_pruned(), 0u);
  for (std::uint64_t i = 0; i < orbits.num_orbits(); ++i) {
    EXPECT_EQ(orbits.rep_index(i), i);
    EXPECT_EQ(orbits.orbit_size(i), 1u);
    EXPECT_EQ(orbits.representative(i).nodes(), plain.at(i).nodes());
  }
}

}  // namespace
}  // namespace kgdp::verify
