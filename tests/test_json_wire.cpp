// Wire-hardening tests for io::Json::parse: canonical round trips,
// control characters, multibyte UTF-8 and surrogate escapes, int64
// boundaries, oversized numbers, depth limits, and a malformed-input
// corpus. The parser feeds kgdd directly, so everything here is a frame
// an adversarial client could send.
#include "io/json.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "service/protocol.hpp"
#include "util/rng.hpp"

namespace kgdp::io {
namespace {

std::string reparse(const std::string& text) {
  return Json::parse(text).dump();
}

TEST(JsonWire, CanonicalTextsRoundTripExactly) {
  // Each string is already in dump() canonical form (no spaces, object
  // keys sorted), so parse-then-dump must reproduce it byte for byte.
  const std::vector<std::string> corpus = {
      "null",
      "true",
      "false",
      "0",
      "-1",
      "42",
      "9223372036854775807",
      "-9223372036854775808",
      "0.5",
      "-2.25",
      "1e+300",
      "\"\"",
      "\"hello\"",
      "[]",
      "{}",
      "[1,2,3]",
      "[[[]]]",
      "[null,true,\"x\",0.25]",
      "{\"a\":1,\"b\":[true,null],\"c\":{\"d\":\"e\"}}",
      "\"\\\"quoted\\\\\"",
      "\"line\\nbreak\\ttab\"",
  };
  for (const std::string& text : corpus) {
    EXPECT_EQ(reparse(text), text) << text;
    // Idempotent: a second round trip changes nothing.
    EXPECT_EQ(reparse(reparse(text)), reparse(text)) << text;
  }
}

TEST(JsonWire, EveryControlCharacterRoundTrips) {
  std::string raw;
  for (int c = 0; c < 0x20; ++c) raw += static_cast<char>(c);
  raw += "tail";
  const Json v(raw);
  const Json back = Json::parse(v.dump());
  EXPECT_EQ(back.as_string(), raw);
  // And raw (unescaped) control characters are rejected on the wire.
  for (int c = 1; c < 0x20; ++c) {
    std::string text = "\"x";
    text += static_cast<char>(c);
    text += '"';
    EXPECT_THROW(Json::parse(text), JsonParseError) << "control " << c;
  }
}

TEST(JsonWire, MultibyteUtf8PassesThrough) {
  const std::string text = "\"h\xC3\xA9llo \xE2\x9C\x93 \xF0\x9F\x9A\x80\"";
  const Json v = Json::parse(text);
  EXPECT_EQ(v.dump(), text);  // bytes preserved exactly, no re-escaping
}

TEST(JsonWire, UnicodeEscapesDecodeToUtf8) {
  EXPECT_EQ(Json::parse("\"\\u0041\"").as_string(), "A");
  EXPECT_EQ(Json::parse("\"\\u00e9\"").as_string(), "\xC3\xA9");
  EXPECT_EQ(Json::parse("\"\\u2713\"").as_string(), "\xE2\x9C\x93");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(Json::parse("\"\\ud83d\\ude00\"").as_string(),
            "\xF0\x9F\x98\x80");
}

TEST(JsonWire, Int64BoundariesParseAsIntegers) {
  EXPECT_TRUE(Json::parse("9223372036854775807").is_int());
  EXPECT_EQ(Json::parse("9223372036854775807").as_int(), INT64_MAX);
  EXPECT_TRUE(Json::parse("-9223372036854775808").is_int());
  EXPECT_EQ(Json::parse("-9223372036854775808").as_int(), INT64_MIN);
  // One past the boundary falls back to double, not garbage.
  EXPECT_TRUE(Json::parse("9223372036854775808").is_double());
  EXPECT_TRUE(Json::parse("-9223372036854775809").is_double());
  EXPECT_TRUE(Json::parse("184467440737095516150").is_double());
}

TEST(JsonWire, OversizedNumbersAreRejected) {
  EXPECT_THROW(Json::parse("1e999"), JsonParseError);
  EXPECT_THROW(Json::parse("-1e999"), JsonParseError);
  EXPECT_THROW(Json::parse("1e309"), JsonParseError);
  EXPECT_THROW(Json::parse("[1,2,1e400]"), JsonParseError);
  // Underflow is not an error: it quietly becomes 0 (or a denormal).
  EXPECT_TRUE(Json::parse("1e-400").is_double());
  EXPECT_TRUE(std::isfinite(Json::parse("1e-400").as_double()));
}

TEST(JsonWire, NestingDepthIsLimited) {
  const auto nest = [](int levels) {
    return std::string(levels, '[') + std::string(levels, ']');
  };
  EXPECT_NO_THROW(Json::parse(nest(32)));
  EXPECT_NO_THROW(Json::parse(nest(64)));
  EXPECT_THROW(Json::parse(nest(80)), JsonParseError);
  EXPECT_THROW(Json::parse(nest(4096)), JsonParseError);
  // Caller-tightened limit.
  EXPECT_THROW(Json::parse(nest(16), /*max_depth=*/8), JsonParseError);
  EXPECT_NO_THROW(Json::parse(nest(8), /*max_depth=*/8));
}

TEST(JsonWire, MalformedCorpusIsRejectedWithOffsets) {
  const std::vector<std::string> corpus = {
      "",
      "   ",
      "{",
      "[",
      "[1,",
      "[,1]",
      "[1 2]",
      "[1,]",
      "{\"a\":}",
      "{\"a\" 1}",
      "{a:1}",
      "{\"a\":1,}",
      "{\"a\":1 \"b\":2}",
      "01",
      "-01",
      "1.",
      ".5",
      "+1",
      "-",
      "1e",
      "1e+",
      "nan",
      "inf",
      "NaN",
      "--1",
      "0x10",
      "tru",
      "nul",
      "falsehood",
      "\"",
      "\"unterminated",
      "\"bad\\q\"",
      "\"\\u12g4\"",
      "\"\\ud800\"",        // lone high surrogate
      "\"\\ud800x\"",       // high surrogate, no escape follows
      "\"\\ud800\\u0041\"", // high surrogate + non-low-surrogate
      "\"\\udc00\"",        // lone low surrogate
      "1 2",
      "{} {}",
      "[]]",
      "null,",
  };
  for (const std::string& text : corpus) {
    try {
      Json::parse(text);
      ADD_FAILURE() << "accepted malformed input: " << text;
    } catch (const JsonParseError& e) {
      EXPECT_LE(e.offset(), text.size()) << text;
    }
  }
}

// Deterministic fuzz-style sweep: random values whose doubles are exact
// short decimals (m / 64), dumped and reparsed; the canonical text must
// be a fixpoint of parse-then-dump.
Json random_value(util::Rng& rng, int depth) {
  const std::uint64_t kind = rng.next_below(depth >= 4 ? 5 : 7);
  switch (kind) {
    case 0: return Json(nullptr);
    case 1: return Json(rng.next_below(2) == 0);
    case 2:
      return Json(static_cast<std::int64_t>(rng.next_below(2000001)) -
                  1000000);
    case 3:
      return Json(
          static_cast<double>(static_cast<std::int64_t>(
                                  rng.next_below(8192)) -
                              4096) /
          64.0);
    case 4: {
      std::string s;
      const std::uint64_t len = rng.next_below(12);
      for (std::uint64_t i = 0; i < len; ++i) {
        const std::uint64_t pick = rng.next_below(20);
        if (pick == 0) {
          s += static_cast<char>(rng.next_below(0x20));  // control char
        } else if (pick == 1) {
          s += "\xE2\x9C\x93";  // multibyte UTF-8
        } else if (pick == 2) {
          s += '"';
        } else if (pick == 3) {
          s += '\\';
        } else {
          s += static_cast<char>('a' + rng.next_below(26));
        }
      }
      return Json(std::move(s));
    }
    case 5: {
      JsonArray arr;
      const std::uint64_t len = rng.next_below(4);
      for (std::uint64_t i = 0; i < len; ++i) {
        arr.push_back(random_value(rng, depth + 1));
      }
      return Json(std::move(arr));
    }
    default: {
      JsonObject obj;
      const std::uint64_t len = rng.next_below(4);
      for (std::uint64_t i = 0; i < len; ++i) {
        obj["k" + std::to_string(rng.next_below(100))] =
            random_value(rng, depth + 1);
      }
      return Json(std::move(obj));
    }
  }
}

TEST(JsonWire, RandomValuesRoundTripThroughCanonicalText) {
  util::Rng rng(0xC0FFEE);
  for (int i = 0; i < 500; ++i) {
    const Json v = random_value(rng, 0);
    const std::string canonical = v.dump();
    const std::string again = reparse(canonical);
    ASSERT_EQ(again, canonical) << "iteration " << i;
  }
}

TEST(JsonWire, AccessorsThrowOnTypeMismatch) {
  const Json v = Json::parse("{\"s\":\"x\",\"n\":3}");
  EXPECT_THROW(v.as_array(), std::runtime_error);
  EXPECT_THROW(v.find("s")->as_int(), std::runtime_error);
  EXPECT_THROW(v.find("n")->as_string(), std::runtime_error);
  EXPECT_THROW(v.find("n")->as_bool(), std::runtime_error);
  EXPECT_EQ(v.find("n")->as_double(), 3.0);  // int widens to double
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(Json(3).find("anything"), nullptr);  // non-object
}

// ---------------------------------------------------------------------------
// service::Envelope — the one parse/stamp path every kgdd method uses.
// ---------------------------------------------------------------------------

TEST(JsonWire, EnvelopeRoundTripsAFullRequest) {
  service::Envelope env;
  env.req_id = "r42";
  Json reply;
  ASSERT_TRUE(service::parse_envelope(
      R"({"method":"route","tag":"t-7","schema_version":2,)"
      R"("params":{"n":8,"k":2,"faults":[0,11]}})",
      &env, &reply));
  EXPECT_EQ(env.method, "route");
  EXPECT_EQ(env.tag, "t-7");
  EXPECT_EQ(env.schema_version, 2);
  ASSERT_NE(env.params(), nullptr);
  EXPECT_EQ(env.params()->find("n")->as_int(), 8);

  // Every reply builder stamps the same header fields.
  const Json result = env.result({{"ok", Json(true)}});
  EXPECT_EQ(result.find("type")->as_string(), "result");
  EXPECT_EQ(result.find("req")->as_string(), "r42");
  EXPECT_EQ(result.find("tag")->as_string(), "t-7");
  EXPECT_EQ(result.find("schema_version")->as_int(), kSchemaVersion);
  EXPECT_TRUE(service::is_terminal_frame(result));

  const Json error = env.error(service::ErrorCode::kUnsupported, "nope");
  EXPECT_EQ(error.find("type")->as_string(), "error");
  EXPECT_EQ(error.find("code")->as_string(), "unsupported");
  EXPECT_EQ(error.find("req")->as_string(), "r42");
  EXPECT_TRUE(service::is_terminal_frame(error));

  const Json progress = env.event("progress", {{"items_done", Json(5)}});
  EXPECT_EQ(progress.find("type")->as_string(), "progress");
  EXPECT_EQ(progress.find("tag")->as_string(), "t-7");
  EXPECT_FALSE(service::is_terminal_frame(progress));
}

TEST(JsonWire, EnvelopeMinimalRequestGetsServerDefaults) {
  service::Envelope env;
  env.req_id = "r1";
  Json reply;
  ASSERT_TRUE(service::parse_envelope(R"({"method":"ping"})", &env, &reply));
  EXPECT_EQ(env.method, "ping");
  EXPECT_EQ(env.tag, "");
  EXPECT_EQ(env.schema_version, kSchemaVersion);  // defaults to ours
  EXPECT_EQ(env.params(), nullptr);
  // No tag in → no tag field out.
  EXPECT_EQ(env.result({}).find("tag"), nullptr);
}

TEST(JsonWire, EnvelopeVersionSkewWindow) {
  // Every version in the compatibility window parses; everything
  // outside it — including a *numeric string* — is a bad_request.
  for (int v = 1; v <= kSchemaVersion; ++v) {
    service::Envelope env;
    Json reply;
    EXPECT_TRUE(service::parse_envelope(
        R"({"method":"ping","schema_version":)" + std::to_string(v) + "}",
        &env, &reply))
        << v;
    EXPECT_EQ(env.schema_version, v);
  }
  for (const std::string& ver :
       {std::string("0"), std::to_string(kSchemaVersion + 1),
        std::string("-1"), std::string("\"2\""), std::string("2.0")}) {
    service::Envelope env;
    Json reply;
    EXPECT_FALSE(service::parse_envelope(
        R"({"method":"ping","schema_version":)" + ver + "}", &env, &reply))
        << ver;
    EXPECT_EQ(reply.find("code")->as_string(), "bad_request") << ver;
    EXPECT_NE(reply.find("message")->as_string().find(
                  "unsupported schema_version"),
              std::string::npos)
        << ver;
  }
}

TEST(JsonWire, EnvelopeRejectCorpus) {
  struct Case {
    const char* frame;
    const char* code;     // expected error code name
    const char* message;  // expected message substring
  };
  const Case corpus[] = {
      {"not json", "bad_frame", "at byte"},
      {"[1,2]", "bad_frame", "must be a JSON object"},
      {"{}", "bad_request", "method"},
      {R"({"method":3})", "bad_request", "method"},
      {R"({"method":""})", "bad_request", "method"},
      {R"({"method":"ping","tag":7})", "bad_request", "'tag'"},
      {R"({"method":"ping","params":[1]})", "bad_request",
       "'params' must be an object"},
  };
  for (const Case& c : corpus) {
    service::Envelope env;
    env.req_id = "r9";
    Json reply;
    EXPECT_FALSE(service::parse_envelope(c.frame, &env, &reply)) << c.frame;
    EXPECT_TRUE(service::is_terminal_frame(reply));
    EXPECT_EQ(reply.find("type")->as_string(), "error") << c.frame;
    EXPECT_EQ(reply.find("code")->as_string(), c.code) << c.frame;
    EXPECT_NE(reply.find("message")->as_string().find(c.message),
              std::string::npos)
        << c.frame << " -> " << reply.dump();
    EXPECT_EQ(reply.find("req")->as_string(), "r9");
  }
}

TEST(JsonWire, EnvelopeRejectsPropagateTheRecoveredTag) {
  // The tag is recovered before validation, so even a reject the client
  // caused can be matched back to its request.
  service::Envelope env;
  env.req_id = "r3";
  Json reply;
  EXPECT_FALSE(service::parse_envelope(
      R"({"tag":"find-me","method":""})", &env, &reply));
  EXPECT_EQ(reply.find("tag")->as_string(), "find-me");
}

TEST(JsonWire, ParseErrorCarriesUsefulOffset) {
  try {
    Json::parse("[1,]");
    FAIL();
  } catch (const JsonParseError& e) {
    EXPECT_EQ(e.offset(), 3u);
    EXPECT_NE(std::string(e.what()).find("at byte 3"), std::string::npos);
  }
}

}  // namespace
}  // namespace kgdp::io
