#include <gtest/gtest.h>

#include <set>

#include "fault/enumerator.hpp"
#include "fault/fault_model.hpp"
#include "kgd/small_n.hpp"
#include "util/combinatorics.hpp"

namespace kgdp::fault {
namespace {

using kgd::FaultSet;
using kgd::Role;

TEST(Enumerator, TotalMatchesBinomialSums) {
  const FaultEnumerator en(10, 3);
  EXPECT_EQ(en.total(), util::subsets_up_to(10, 3));
}

TEST(Enumerator, FirstIndexIsEmptySet) {
  const FaultEnumerator en(5, 2);
  EXPECT_EQ(en.at(0).size(), 0);
}

TEST(Enumerator, EnumeratesAllSubsetsOnce) {
  const FaultEnumerator en(7, 3);
  std::set<std::vector<int>> seen;
  for (std::uint64_t i = 0; i < en.total(); ++i) {
    EXPECT_TRUE(seen.insert(en.nodes_at(i)).second) << "dup at " << i;
  }
  EXPECT_EQ(seen.size(), en.total());
}

TEST(Enumerator, OrderedBySizeThenLex) {
  const FaultEnumerator en(5, 2);
  std::size_t prev_size = 0;
  std::vector<int> prev;
  for (std::uint64_t i = 0; i < en.total(); ++i) {
    const auto cur = en.nodes_at(i);
    if (cur.size() == prev_size && i > 0) {
      EXPECT_LT(prev, cur);
    } else {
      EXPECT_GE(cur.size(), prev_size);
    }
    prev_size = cur.size();
    prev = cur;
  }
}

TEST(Enumerator, ZeroBudget) {
  const FaultEnumerator en(6, 0);
  EXPECT_EQ(en.total(), 1u);
}

TEST(FaultModel, UniformDrawsExactCount) {
  const auto sg = kgd::make_g1k(3);
  util::Rng rng(5);
  for (int c = 0; c <= 4; ++c) {
    const FaultSet fs = draw_faults(sg, c, FaultPolicy::kUniform, rng);
    EXPECT_EQ(fs.size(), c);
  }
}

TEST(FaultModel, ProcessorsOnlyNeverHitsTerminals) {
  const auto sg = kgd::make_g1k(3);
  util::Rng rng(6);
  for (int trial = 0; trial < 50; ++trial) {
    const FaultSet fs =
        draw_faults(sg, 3, FaultPolicy::kProcessorsOnly, rng);
    for (int v : fs.nodes()) {
      EXPECT_EQ(sg.role(v), Role::kProcessor);
    }
  }
}

TEST(FaultModel, TerminalsFirstPrefersTerminals) {
  const auto sg = kgd::make_g1k(3);  // 8 terminals, 4 processors
  util::Rng rng(7);
  const FaultSet fs = draw_faults(sg, 3, FaultPolicy::kTerminalsFirst, rng);
  for (int v : fs.nodes()) {
    EXPECT_NE(sg.role(v), Role::kProcessor);
  }
}

TEST(FaultModel, TerminalsFirstPadsWithProcessorsWhenNeeded) {
  const auto sg = kgd::make_g1k(1);  // 4 terminals, 2 processors
  util::Rng rng(8);
  const FaultSet fs = draw_faults(sg, 5, FaultPolicy::kTerminalsFirst, rng);
  EXPECT_EQ(fs.size(), 5);
}

TEST(FaultModel, HighDegreeFirstTargetsProcessors) {
  const auto sg = kgd::make_g2k(2);
  util::Rng rng(9);
  const FaultSet fs =
      draw_faults(sg, 2, FaultPolicy::kHighDegreeFirst, rng);
  for (int v : fs.nodes()) {
    EXPECT_EQ(sg.role(v), Role::kProcessor);
  }
}

TEST(AdversarialSuite, CoversTerminalAndAttachmentSubsets) {
  const auto sg = kgd::make_g1k(2);
  const auto suite = adversarial_suite(sg, 2);
  // Pool = 6 terminals + 3 attachment processors = 9 nodes; all subsets
  // of size <= 2 => 1 + 9 + 36 = 46.
  EXPECT_EQ(suite.size(), 46u);
  // No duplicates.
  std::set<std::vector<int>> seen;
  for (const auto& fs : suite) {
    EXPECT_TRUE(seen.insert(fs.nodes()).second);
  }
}

TEST(AdversarialSuite, RespectsBudgetCap) {
  const auto sg = kgd::make_g1k(3);
  const auto suite = adversarial_suite(sg, 3, /*budget=*/10);
  EXPECT_EQ(suite.size(), 10u);
}

}  // namespace
}  // namespace kgdp::fault
