#include "util/bitset.hpp"

#include <gtest/gtest.h>

namespace kgdp::util {
namespace {

TEST(DynamicBitset, StartsEmpty) {
  DynamicBitset b(100);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(b.count(), 0u);
  EXPECT_TRUE(b.none());
  EXPECT_FALSE(b.any());
}

TEST(DynamicBitset, SetResetFlip) {
  DynamicBitset b(70);
  b.set(0);
  b.set(63);
  b.set(64);
  b.set(69);
  EXPECT_TRUE(b.test(0));
  EXPECT_TRUE(b.test(63));
  EXPECT_TRUE(b.test(64));
  EXPECT_TRUE(b.test(69));
  EXPECT_EQ(b.count(), 4u);
  b.reset(63);
  EXPECT_FALSE(b.test(63));
  b.flip(63);
  EXPECT_TRUE(b.test(63));
  b.flip(63);
  EXPECT_FALSE(b.test(63));
}

TEST(DynamicBitset, ConstructAllSetTrimsTail) {
  DynamicBitset b(70, true);
  EXPECT_EQ(b.count(), 70u);
  // The partial last word must not carry phantom bits.
  b.reset_all();
  EXPECT_EQ(b.count(), 0u);
  b.set_all();
  EXPECT_EQ(b.count(), 70u);
}

TEST(DynamicBitset, FindNextScansAcrossWords) {
  DynamicBitset b(200);
  b.set(3);
  b.set(64);
  b.set(199);
  EXPECT_EQ(b.find_first(), 3u);
  EXPECT_EQ(b.find_next(4), 64u);
  EXPECT_EQ(b.find_next(65), 199u);
  EXPECT_EQ(b.find_next(200), 200u);
}

TEST(DynamicBitset, FindNextWhenEmptyReturnsSize) {
  DynamicBitset b(50);
  EXPECT_EQ(b.find_first(), 50u);
}

TEST(DynamicBitset, BitwiseOps) {
  DynamicBitset a(80), b(80);
  a.set(1);
  a.set(70);
  b.set(70);
  b.set(2);
  DynamicBitset o = a;
  o |= b;
  EXPECT_TRUE(o.test(1));
  EXPECT_TRUE(o.test(2));
  EXPECT_TRUE(o.test(70));
  DynamicBitset i = a;
  i &= b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(70));
  DynamicBitset x = a;
  x ^= b;
  EXPECT_TRUE(x.test(1));
  EXPECT_TRUE(x.test(2));
  EXPECT_FALSE(x.test(70));
}

TEST(DynamicBitset, ResizeGrowWithValue) {
  DynamicBitset b(10, true);
  b.resize(100, true);
  EXPECT_EQ(b.count(), 100u);
  DynamicBitset c(10, true);
  c.resize(100, false);
  EXPECT_EQ(c.count(), 10u);
}

TEST(DynamicBitset, EqualityIncludesSize) {
  DynamicBitset a(10), b(10), c(11);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  a.set(3);
  EXPECT_FALSE(a == b);
}

TEST(DynamicBitset, SetWithBoolArgument) {
  DynamicBitset b(8);
  b.set(2, true);
  EXPECT_TRUE(b.test(2));
  b.set(2, false);
  EXPECT_FALSE(b.test(2));
}

}  // namespace
}  // namespace kgdp::util
