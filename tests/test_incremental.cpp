#include "verify/incremental.hpp"

#include <gtest/gtest.h>

#include "kgd/factory.hpp"
#include "util/rng.hpp"

namespace kgdp::verify {
namespace {

using kgd::FaultSet;
using kgd::Role;

TEST(Incremental, StartsOperational) {
  const auto sg = kgd::build_solution(8, 2);
  ASSERT_TRUE(sg);
  IncrementalReconfigurator inc(*sg);
  EXPECT_TRUE(inc.operational());
  EXPECT_EQ(inc.pipeline().num_processors(), 10);
}

TEST(Incremental, TerminalNotOnPipelineIsUntouched) {
  const auto sg = kgd::build_solution(8, 2);
  ASSERT_TRUE(sg);
  IncrementalReconfigurator inc(*sg);
  // Find an input terminal that is not the pipeline's endpoint.
  const auto used = inc.pipeline().input_terminal();
  kgd::Node spare = -1;
  for (auto t : sg->inputs()) {
    if (t != used) {
      spare = t;
      break;
    }
  }
  ASSERT_GE(spare, 0);
  EXPECT_EQ(inc.fail_node(spare), RepairMethod::kUntouched);
  EXPECT_TRUE(inc.operational());
  EXPECT_EQ(inc.stats().untouched, 1u);
}

TEST(Incremental, EndpointTerminalFaultSwapsTerminal) {
  const auto sg = kgd::build_solution(8, 2);
  ASSERT_TRUE(sg);
  IncrementalReconfigurator inc(*sg);
  const auto dead = inc.pipeline().input_terminal();
  const auto method = inc.fail_node(dead);
  EXPECT_TRUE(inc.operational());
  // A swap when the anchor has another healthy terminal; a full solve is
  // also acceptable when it does not — but never an outage.
  EXPECT_NE(method, RepairMethod::kInfeasible);
}

TEST(Incremental, InteriorProcessorPrefersLocalRepair) {
  const auto sg = kgd::build_solution(12, 3);
  ASSERT_TRUE(sg);
  IncrementalReconfigurator inc(*sg);
  // Fail an interior pipeline processor.
  const auto victim = inc.pipeline().path[4];
  ASSERT_EQ(sg->role(victim), Role::kProcessor);
  const auto method = inc.fail_node(victim);
  EXPECT_TRUE(inc.operational());
  EXPECT_TRUE(method == RepairMethod::kSplice ||
              method == RepairMethod::kWindow ||
              method == RepairMethod::kFullSolve);
  EXPECT_EQ(inc.pipeline().num_processors(), 14);
}

TEST(Incremental, PipelineAlwaysCertifiedThroughRandomStorm) {
  const auto sg = kgd::build_solution(12, 3);
  ASSERT_TRUE(sg);
  util::Rng rng(17);
  for (int trial = 0; trial < 30; ++trial) {
    IncrementalReconfigurator inc(*sg);
    int healthy_procs = sg->num_processors();
    for (int f = 0; f < 3; ++f) {
      const int v = static_cast<int>(rng.next_below(sg->num_nodes()));
      if (inc.faults().contains(v)) continue;
      const bool was_proc = sg->role(v) == Role::kProcessor;
      const auto method = inc.fail_node(v);
      ASSERT_NE(method, RepairMethod::kInfeasible)
          << "trial " << trial << " fault " << v;
      if (was_proc) --healthy_procs;
      ASSERT_EQ(inc.pipeline().num_processors(), healthy_procs);
      ASSERT_TRUE(kgd::check_pipeline(*sg, inc.faults(),
                                      inc.pipeline().path)
                      .ok);
    }
  }
}

TEST(Incremental, AgreesWithFreshSolveOnFeasibility) {
  const auto sg = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg);
  // Push beyond the design budget: eventually infeasible, and the
  // incremental verdict must match a from-scratch solve at every step.
  IncrementalReconfigurator inc(*sg);
  PipelineSolver fresh;
  util::Rng rng(5);
  std::vector<int> order(sg->num_nodes());
  for (int i = 0; i < sg->num_nodes(); ++i) order[i] = i;
  rng.shuffle(order);
  for (int v : order) {
    const auto method = inc.fail_node(v);
    const auto expect = fresh.solve(*sg, inc.faults());
    EXPECT_EQ(method != RepairMethod::kInfeasible &&
                  inc.operational(),
              expect.status == SolveStatus::kFound);
    if (!inc.operational() &&
        expect.status != SolveStatus::kFound) {
      break;  // both agree the machine is dead; storm over
    }
  }
}

TEST(Incremental, DoubleFaultOnSameNodeIsIdempotent) {
  const auto sg = kgd::build_solution(8, 2);
  ASSERT_TRUE(sg);
  IncrementalReconfigurator inc(*sg);
  const auto victim = inc.pipeline().path[2];
  inc.fail_node(victim);
  const auto before = inc.faults().size();
  EXPECT_EQ(inc.fail_node(victim), RepairMethod::kUntouched);
  EXPECT_EQ(inc.faults().size(), before);
}

TEST(Incremental, ResetRestoresService) {
  const auto sg = kgd::build_solution(8, 2);
  ASSERT_TRUE(sg);
  IncrementalReconfigurator inc(*sg);
  inc.fail_node(inc.pipeline().path[1]);
  inc.fail_node(inc.pipeline().path[1]);
  EXPECT_TRUE(inc.reset(FaultSet::none(sg->num_nodes())));
  EXPECT_EQ(inc.pipeline().num_processors(), 10);
}

TEST(Incremental, StatsAccumulate) {
  const auto sg = kgd::build_solution(12, 3);
  ASSERT_TRUE(sg);
  IncrementalReconfigurator inc(*sg);
  inc.fail_node(inc.pipeline().path[3]);
  inc.fail_node(inc.pipeline().path[3]);
  const auto& st = inc.stats();
  EXPECT_EQ(st.untouched + st.terminal_swaps + st.splices +
                st.window_reroutes + st.full_solves + st.infeasible,
            2u);
}

}  // namespace
}  // namespace kgdp::verify
