#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace kgdp::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, ThreadCountAtLeastOne) {
  ThreadPool pool(0);  // hardware concurrency fallback
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::uint64_t count = 10000;
  std::vector<std::atomic<int>> hits(count);
  parallel_for(pool, count, [&](std::uint64_t i) { hits[i].fetch_add(1); });
  for (std::uint64_t i = 0; i < count; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroCountIsANoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [&](std::uint64_t) { FAIL(); });
}

TEST(ParallelFor, ResultIndependentOfGrain) {
  ThreadPool pool(3);
  for (std::uint64_t grain : {1u, 7u, 64u, 1000u}) {
    std::atomic<std::uint64_t> sum{0};
    parallel_for(pool, 1000, [&](std::uint64_t i) { sum.fetch_add(i); },
                 nullptr, grain);
    EXPECT_EQ(sum.load(), 999u * 1000u / 2);
  }
}

TEST(ParallelFor, StopFlagShortCircuits) {
  ThreadPool pool(2);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> done{0};
  parallel_for(pool, 1u << 20,
               [&](std::uint64_t i) {
                 if (i == 5) stop.store(true);
                 done.fetch_add(1);
               },
               &stop, /*grain=*/8);
  // Everything after the flag (modulo in-flight grains) is skipped.
  EXPECT_LT(done.load(), (1u << 20));
}

TEST(ParallelFor, WorksWithSingleThreadPool) {
  ThreadPool pool(1);
  std::uint64_t sum = 0;  // no atomics needed: single worker
  parallel_for(pool, 100, [&](std::uint64_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ThreadPool, ManyWaitCycles) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 50; ++round) {
    pool.submit([&] { count.fetch_add(1); });
    pool.wait_idle();
    ASSERT_EQ(count.load(), round + 1);
  }
}

}  // namespace
}  // namespace kgdp::util
