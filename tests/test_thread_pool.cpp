#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <numeric>
#include <thread>
#include <vector>

namespace kgdp::util {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.wait_idle();
  SUCCEED();
}

TEST(ThreadPool, ThreadCountAtLeastOne) {
  ThreadPool pool(0);  // hardware concurrency fallback
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::uint64_t count = 10000;
  std::vector<std::atomic<int>> hits(count);
  parallel_for(pool, count, [&](std::uint64_t i) { hits[i].fetch_add(1); });
  for (std::uint64_t i = 0; i < count; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ParallelFor, ZeroCountIsANoop) {
  ThreadPool pool(2);
  parallel_for(pool, 0, [&](std::uint64_t) { FAIL(); });
}

TEST(ParallelFor, ResultIndependentOfGrain) {
  ThreadPool pool(3);
  for (std::uint64_t grain : {1u, 7u, 64u, 1000u}) {
    std::atomic<std::uint64_t> sum{0};
    parallel_for(pool, 1000, [&](std::uint64_t i) { sum.fetch_add(i); },
                 nullptr, grain);
    EXPECT_EQ(sum.load(), 999u * 1000u / 2);
  }
}

TEST(ParallelFor, StopFlagShortCircuits) {
  ThreadPool pool(2);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> done{0};
  parallel_for(pool, 1u << 20,
               [&](std::uint64_t i) {
                 if (i == 5) stop.store(true);
                 done.fetch_add(1);
               },
               &stop, /*grain=*/8);
  // Everything after the flag (modulo in-flight grains) is skipped.
  EXPECT_LT(done.load(), (1u << 20));
}

TEST(ParallelFor, WorksWithSingleThreadPool) {
  ThreadPool pool(1);
  std::uint64_t sum = 0;  // no atomics needed: single worker
  parallel_for(pool, 100, [&](std::uint64_t i) { sum += i; });
  EXPECT_EQ(sum, 4950u);
}

TEST(ParallelForStealing, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  const std::uint64_t count = 10000;
  std::vector<std::atomic<int>> hits(count);
  const StealStats stats = parallel_for_stealing(
      pool, count, [&](std::uint64_t i, unsigned) { hits[i].fetch_add(1); },
      nullptr, /*min_chunk=*/1);
  for (std::uint64_t i = 0; i < count; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  (void)stats;  // steal count is schedule-dependent; coverage is not
}

TEST(ParallelForStealing, DeterministicAcrossThreadCounts) {
  // Work stealing may reorder execution but never the result: the same
  // commutative reduction must come out for 1, 2 and 8 threads.
  std::vector<std::uint64_t> sums;
  for (unsigned threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::atomic<std::uint64_t> sum{0};
    parallel_for_stealing(pool, 5000, [&](std::uint64_t i, unsigned) {
      sum.fetch_add(i * i);
    });
    sums.push_back(sum.load());
  }
  EXPECT_EQ(sums[0], sums[1]);
  EXPECT_EQ(sums[0], sums[2]);
}

TEST(ParallelForStealing, WorkerIdsAreInRange) {
  ThreadPool pool(3);
  std::atomic<int> bad{0};
  parallel_for_stealing(pool, 2000, [&](std::uint64_t, unsigned w) {
    if (w >= 3) bad.fetch_add(1);
  });
  EXPECT_EQ(bad.load(), 0);
}

TEST(ParallelForStealing, SkewedLoadTriggersSteals) {
  // Worker 0's initial range is pathologically slow; the others drain
  // their ranges in microseconds and must come steal the remainder.
  ThreadPool pool(4);
  const std::uint64_t count = 400;
  std::vector<std::atomic<int>> hits(count);
  const StealStats stats = parallel_for_stealing(
      pool, count,
      [&](std::uint64_t i, unsigned) {
        if (i < count / 4) {
          // Busy work only in the first worker's initial range.
          volatile std::uint64_t x = 0;
          for (int spin = 0; spin < 200000; ++spin) {
            x = x + static_cast<std::uint64_t>(spin);
          }
        }
        hits[i].fetch_add(1);
      },
      nullptr, /*min_chunk=*/1);
  for (std::uint64_t i = 0; i < count; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
  EXPECT_GT(stats.steals, 0u);
}

TEST(ParallelForStealing, StopFlagIsMonotoneUnderStealing) {
  // Once the early-exit flag rises it stays up: no index may start after
  // every worker has observed it, so the processed count stays well
  // below the full range.
  ThreadPool pool(8);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> done{0};
  parallel_for_stealing(
      pool, 1u << 20,
      [&](std::uint64_t i, unsigned) {
        if (i == 3) stop.store(true);
        done.fetch_add(1);
      },
      &stop, /*min_chunk=*/8);
  EXPECT_LT(done.load(), std::uint64_t{1} << 20);
  EXPECT_TRUE(stop.load());
}

TEST(ParallelForStealing, ZeroCountAndSingleThread) {
  ThreadPool pool(1);
  parallel_for_stealing(pool, 0,
                        [&](std::uint64_t, unsigned) { FAIL(); });
  std::uint64_t sum = 0;  // single worker: no races
  const StealStats stats = parallel_for_stealing(
      pool, 100, [&](std::uint64_t i, unsigned w) {
        EXPECT_EQ(w, 0u);
        sum += i;
      });
  EXPECT_EQ(sum, 4950u);
  EXPECT_EQ(stats.steals, 0u);  // nobody to steal from
}

TEST(ThreadPool, ManyWaitCycles) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 50; ++round) {
    pool.submit([&] { count.fetch_add(1); });
    pool.wait_idle();
    ASSERT_EQ(count.load(), round + 1);
  }
}

TEST(ThreadPool, IntrospectionCountsQueuedAndRunningTasks) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.in_flight(), 0u);

  // Latch both workers so queue depth becomes deterministic: once the
  // two blockers report started, every further submit must sit queued.
  std::mutex mu;
  std::condition_variable cv;
  int started = 0;
  bool release = false;
  for (int i = 0; i < 2; ++i) {
    pool.submit([&] {
      std::unique_lock lk(mu);
      ++started;
      cv.notify_all();
      cv.wait(lk, [&] { return release; });
    });
  }
  {
    std::unique_lock lk(mu);
    cv.wait(lk, [&] { return started == 2; });
  }
  EXPECT_EQ(pool.queue_depth(), 0u);  // both picked up by workers
  EXPECT_EQ(pool.in_flight(), 2u);

  for (int i = 0; i < 3; ++i) {
    pool.submit([] {});
  }
  EXPECT_EQ(pool.queue_depth(), 3u);  // nobody free to dequeue them
  EXPECT_EQ(pool.in_flight(), 5u);    // 2 running + 3 queued

  {
    std::lock_guard lk(mu);
    release = true;
  }
  cv.notify_all();
  pool.wait_idle();
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.in_flight(), 0u);
}

TEST(ThreadPool, IntrospectionIsConsistentUnderStealingWorkload) {
  // A sampler thread hammers the counters while a stealing sweep runs:
  // queued work is always a subset of unfinished work, and neither
  // counter ever goes wild. This is the exact read pattern kgdd's
  // admission control performs from the event-loop thread.
  ThreadPool pool(4);
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> samples{0};
  std::thread sampler([&] {
    while (!done.load()) {
      const std::size_t queued = pool.queue_depth();
      const std::size_t unfinished = pool.in_flight();
      ASSERT_LE(queued, unfinished + 4);  // racy reads: slack of one
                                          // dequeue per worker
      ASSERT_LE(unfinished, 64u);         // parallel_for submits 1/worker
      samples.fetch_add(1);
    }
  });
  // Only start the sweeps once the sampler is demonstrably running, so
  // it cannot miss the entire (fast) workload to thread-startup lag.
  while (samples.load() == 0) std::this_thread::yield();
  std::atomic<std::uint64_t> work{0};
  for (int round = 0; round < 20; ++round) {
    parallel_for_stealing(pool, 1u << 14, [&](std::uint64_t i, unsigned) {
      volatile std::uint64_t x = 0;
      for (std::uint64_t spin = 0; spin < (i % 64); ++spin) x = x + spin;
      work.fetch_add(1);
    });
  }
  done.store(true);
  sampler.join();
  EXPECT_EQ(work.load(), std::uint64_t{20} << 14);
  EXPECT_GT(samples.load(), 0u);
  // On a single-CPU host the sampler may never be scheduled while the
  // workers hold the core, so "saw busy" is not asserted here; the
  // deterministic latch test above covers the counters rising.
  EXPECT_EQ(pool.queue_depth(), 0u);
  EXPECT_EQ(pool.in_flight(), 0u);
}

}  // namespace
}  // namespace kgdp::util
