// kgdd integration tests against a real in-process Daemon: concurrent
// mixed-traffic clients (every request must get a terminal reply),
// protocol-abuse rejection, deterministic load shedding, cancel
// mid-sweep, and the SIGTERM-drain checkpoint/resume acceptance
// criterion — a drained-then-resumed verify must reproduce the
// uninterrupted verdict bit-identically on its deterministic fields.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "fault/orbit_enumerator.hpp"
#include "graph/automorphism.hpp"
#include "io/json.hpp"
#include "kgd/factory.hpp"
#include "net/client.hpp"
#include "net/socket.hpp"
#include "reconfig/atlas.hpp"
#include "service/checkpoint.hpp"
#include "service/daemon.hpp"
#include "service/protocol.hpp"
#include "util/durable_file.hpp"

namespace kgdp::service {
namespace {

constexpr int kReadTimeoutMs = 120000;  // generous: ASan Debug is slow

// In-process daemon on an ephemeral TCP port, drained in the fixture's
// destructor so a failing test never leaks the loop thread.
class DaemonFixture {
 public:
  explicit DaemonFixture(ServiceConfig service = {},
                         net::FrameServerConfig server = {}) {
    DaemonConfig config;
    config.endpoints.push_back(net::Endpoint::tcp("127.0.0.1", 0));
    config.server = server;
    config.service = std::move(service);
    config.watch_stop_signal = false;
    daemon_ = std::make_unique<Daemon>(std::move(config));
    daemon_->start_thread();
  }

  ~DaemonFixture() {
    if (daemon_ != nullptr) {
      daemon_->begin_drain();
      daemon_->join();
    }
  }

  net::Client connect() {
    std::string error;
    auto client = net::Client::connect(
        net::Endpoint::tcp("127.0.0.1", daemon_->tcp_port()), &error);
    EXPECT_TRUE(client.has_value()) << error;
    return std::move(*client);
  }

  Daemon& daemon() { return *daemon_; }

 private:
  std::unique_ptr<Daemon> daemon_;
};

io::Json request_frame(const std::string& method, io::JsonObject params,
                       const std::string& tag = {}) {
  io::JsonObject frame;
  frame["method"] = method;
  frame["params"] = io::Json(std::move(params));
  if (!tag.empty()) frame["tag"] = tag;
  return io::Json(std::move(frame));
}

// Sends one request and reads frames until the terminal result/error.
// Returns the terminal frame; streams (accepted/progress) are counted
// into *streamed when given.
std::optional<io::Json> roundtrip(net::Client& client, const io::Json& req,
                                  int* streamed = nullptr) {
  std::string error;
  if (!client.send_json(req, &error)) {
    ADD_FAILURE() << "send: " << error;
    return std::nullopt;
  }
  while (true) {
    auto frame = client.read_json(kReadTimeoutMs, &error);
    if (!frame.has_value()) {
      ADD_FAILURE() << "read: " << error;
      return std::nullopt;
    }
    if (is_terminal_frame(*frame)) return frame;
    if (streamed != nullptr) ++*streamed;
  }
}

std::string frame_type(const io::Json& frame) {
  const io::Json* t = frame.find("type");
  return t != nullptr && t->is_string() ? t->as_string() : "";
}

std::string error_code(const io::Json& frame) {
  const io::Json* c = frame.find("code");
  return c != nullptr && c->is_string() ? c->as_string() : "";
}

// The deterministic fields of a verify verdict: everything except the
// timing/scheduling fields (worker_solve_seconds, steal_count).
std::string deterministic_verdict(const io::Json& terminal) {
  const io::Json* v = terminal.find("verdict");
  if (v == nullptr) return "<no verdict>";
  io::JsonObject out;
  for (const char* field :
       {"holds", "exhaustive", "fault_sets_checked", "fault_sets_solved",
        "orbits_pruned", "automorphism_order", "solver_unknowns",
        "counterexample", "counterexample_index"}) {
    if (const io::Json* f = v->find(field)) out[field] = *f;
  }
  return io::Json(std::move(out)).dump();
}

TEST(Service, PingStatsAndSchemaStamping) {
  DaemonFixture fx;
  net::Client client = fx.connect();
  const auto pong =
      roundtrip(client, request_frame("ping", {}, /*tag=*/"t-1"));
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(frame_type(*pong), "result");
  EXPECT_EQ(pong->find("schema_version")->as_int(), io::kSchemaVersion);
  EXPECT_EQ(pong->find("req")->as_string(), "r1");
  EXPECT_EQ(pong->find("tag")->as_string(), "t-1");
  EXPECT_TRUE(pong->find("pong")->as_bool());

  const auto stats = roundtrip(client, request_frame("stats", {}));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->find("req")->as_string(), "r2");  // ids are monotone
  EXPECT_EQ(stats->find("sessions_active")->as_int(), 0);
  const io::Json* ping_metrics =
      stats->find("metrics")->find("methods")->find("ping");
  ASSERT_NE(ping_metrics, nullptr);
  EXPECT_EQ(ping_metrics->find("count")->as_int(), 1);
  EXPECT_EQ(ping_metrics->find("ok")->as_int(), 1);
}

TEST(Service, StreamingVerifyDeliversProgressThenVerdict) {
  ServiceConfig config;
  config.threads = 2;
  DaemonFixture fx(config);
  net::Client client = fx.connect();
  io::JsonObject params;
  params["n"] = 3;
  params["k"] = 4;
  params["chunk"] = 200;  // G(3,4) sweeps ~2000 items: several chunks
  int streamed = 0;
  const auto verdict =
      roundtrip(client, request_frame("verify", std::move(params)),
                &streamed);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(frame_type(*verdict), "result");
  EXPECT_EQ(verdict->find("status")->as_string(), "done");
  EXPECT_GE(streamed, 2);  // at least `accepted` + one progress frame
  const io::Json* vd = verdict->find("verdict");
  EXPECT_TRUE(vd->find("holds")->as_bool());
  EXPECT_TRUE(vd->find("exhaustive")->as_bool());
  // Since schema v2 the verdict carries the solver engine counters,
  // and every solved representative was exactly one patch or rebuild.
  ASSERT_NE(vd->find("solver_patches"), nullptr);
  ASSERT_NE(vd->find("solver_rebuilds"), nullptr);
  ASSERT_NE(vd->find("solver_search_nodes"), nullptr);
  EXPECT_GE(vd->find("solver_rebuilds")->as_int(), 1);
  EXPECT_EQ(vd->find("solver_patches")->as_int() +
                vd->find("solver_rebuilds")->as_int(),
            vd->find("fault_sets_solved")->as_int());

  // Once the session retires, `stats` aggregates its engine counters.
  const auto stats = roundtrip(client, request_frame("stats", {}));
  ASSERT_TRUE(stats.has_value());
  const io::Json* solver = stats->find("solver");
  ASSERT_NE(solver, nullptr);
  EXPECT_EQ(solver->find("patches")->as_int(),
            vd->find("solver_patches")->as_int());
  EXPECT_EQ(solver->find("rebuilds")->as_int(),
            vd->find("solver_rebuilds")->as_int());
  EXPECT_EQ(solver->find("search_nodes")->as_int(),
            vd->find("solver_search_nodes")->as_int());
  EXPECT_EQ(solver->find("solves")->as_int(),
            vd->find("fault_sets_solved")->as_int());
}

TEST(Service, EightClientsMixedTrafficZeroDroppedRequests) {
  ServiceConfig config;
  config.threads = 4;
  config.max_queue = 1024;  // shedding is tested separately
  DaemonFixture fx(config);

  constexpr int kClients = 8;
  constexpr int kRequests = 50;
  std::atomic<int> terminal_replies{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      net::Client client = fx.connect();
      for (int i = 0; i < kRequests; ++i) {
        io::Json req;
        switch (i % 7) {
          case 0:
            req = request_frame("ping", {});
            break;
          case 1: {
            io::JsonObject p;
            p["n"] = 8;
            p["k"] = 2;
            req = request_frame("construct", std::move(p));
            break;
          }
          case 2: {
            io::JsonObject p;
            p["n"] = 6;
            p["k"] = 2;
            p["chunk"] = 200;
            std::string tag = "c";
            tag += std::to_string(c);
            tag += '-';
            tag += std::to_string(i);
            req = request_frame("verify", std::move(p), tag);
            break;
          }
          case 3: {
            io::JsonObject p;
            p["n"] = 8;
            p["k"] = 2;
            p["horizon_mcycles"] = 0.2;
            p["seed"] = c * 100 + i;
            req = request_frame("sim.run", std::move(p));
            break;
          }
          case 4: {
            io::JsonObject p;
            p["session"] = "s999999";  // unknown: found=false result
            req = request_frame("cancel", std::move(p));
            break;
          }
          case 5: {
            io::JsonObject p;
            p["n"] = 9999;  // unsupported pair: structured error
            p["k"] = 9;
            req = request_frame("construct", std::move(p));
            break;
          }
          default:
            req = request_frame("no.such.method", {});
            break;
        }
        const auto reply = roundtrip(client, req);
        if (!reply.has_value()) {
          failures.fetch_add(1);
          return;
        }
        const std::string type = frame_type(*reply);
        if (type != "result" && type != "error") {
          failures.fetch_add(1);
          return;
        }
        terminal_replies.fetch_add(1);
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Acceptance: every one of the 8 x 50 requests got a terminal reply.
  EXPECT_EQ(terminal_replies.load(), kClients * kRequests);

  net::Client client = fx.connect();
  const auto stats = roundtrip(client, request_frame("stats", {}));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->find("sessions_active")->as_int(), 0);  // none leaked
  EXPECT_GE(stats->find("metrics")->find("total_requests")->as_int(),
            kClients * kRequests);
}

TEST(Service, MalformedFramesGetStructuredErrorsAndConnectionSurvives) {
  DaemonFixture fx;
  net::Client client = fx.connect();
  std::string error;
  const std::vector<std::pair<std::string, std::string>> abuse = {
      {"this is not json", "bad_frame"},
      {"[1,2,3]", "bad_frame"},
      {"{\"params\":{}}", "bad_request"},       // no method
      {"{\"method\":5}", "bad_request"},        // ill-typed method
      {"{\"method\":\"verify\",\"params\":7}", "bad_request"},
      {"{\"method\":\"verify\",\"params\":{\"n\":\"x\",\"k\":2}}",
       "bad_request"},
      {"{\"method\":\"verify\",\"params\":{\"k\":2}}", "bad_request"},
      {"{\"method\":\"verify\",\"params\":{\"n\":6,\"k\":2,"
       "\"mode\":\"psychic\"}}",
       "bad_request"},
      {"{\"method\":\"cancel\",\"params\":{}}", "bad_request"},
  };
  for (const auto& [frame, want_code] : abuse) {
    ASSERT_TRUE(client.send_line(frame, &error)) << error;
    const auto reply = client.read_json(kReadTimeoutMs, &error);
    ASSERT_TRUE(reply.has_value()) << error << " for " << frame;
    EXPECT_EQ(frame_type(*reply), "error") << frame;
    EXPECT_EQ(error_code(*reply), want_code) << frame;
    EXPECT_NE(reply->find("schema_version"), nullptr);
  }
  // The connection is still healthy after every rejection.
  const auto pong = roundtrip(client, request_frame("ping", {}));
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(frame_type(*pong), "result");
}

TEST(Service, OversizedFrameGetsFrameTooLargeThenClose) {
  net::FrameServerConfig server;
  server.max_frame = 512;
  DaemonFixture fx({}, server);
  net::Client client = fx.connect();
  std::string error;
  ASSERT_TRUE(client.send_line(std::string(4096, 'x'), &error)) << error;
  const auto reply = client.read_json(kReadTimeoutMs, &error);
  ASSERT_TRUE(reply.has_value()) << error;
  EXPECT_EQ(frame_type(*reply), "error");
  EXPECT_EQ(error_code(*reply), "frame_too_large");
  EXPECT_FALSE(client.read_line(kReadTimeoutMs, &error).has_value());
  // The daemon itself is unharmed: a fresh connection works.
  net::Client again = fx.connect();
  const auto pong = roundtrip(again, request_frame("ping", {}));
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(frame_type(*pong), "result");
}

TEST(Service, SessionRegistryFullShedsWithOverloaded) {
  ServiceConfig config;
  config.threads = 1;
  config.max_sessions = 1;
  DaemonFixture fx(config);
  net::Client holder = fx.connect();
  std::string error;
  io::JsonObject slow;
  slow["n"] = 3;
  slow["k"] = 6;
  slow["chunk"] = 10;
  ASSERT_TRUE(
      holder.send_json(request_frame("verify", std::move(slow)), &error))
      << error;
  auto accepted = holder.read_json(kReadTimeoutMs, &error);
  ASSERT_TRUE(accepted.has_value()) << error;
  ASSERT_EQ(frame_type(*accepted), "accepted");
  const std::string session =
      accepted->find("session")->as_string();

  // Registry is full: a second verify is shed, never queued or blocked.
  net::Client second = fx.connect();
  io::JsonObject params;
  params["n"] = 6;
  params["k"] = 2;
  const auto shed =
      roundtrip(second, request_frame("verify", std::move(params)));
  ASSERT_TRUE(shed.has_value());
  EXPECT_EQ(frame_type(*shed), "error");
  EXPECT_EQ(error_code(*shed), "overloaded");

  // Cancel the holder; its terminal frame reports the cancellation and
  // the registry frees up.
  io::JsonObject cancel;
  cancel["session"] = session;
  ASSERT_TRUE(
      holder.send_json(request_frame("cancel", std::move(cancel)), &error))
      << error;
  bool saw_cancelled = false, saw_cancel_ack = false;
  for (int i = 0; i < 10000 && !(saw_cancelled && saw_cancel_ack); ++i) {
    const auto frame = holder.read_json(kReadTimeoutMs, &error);
    ASSERT_TRUE(frame.has_value()) << error;
    if (frame->find("found") != nullptr) {
      EXPECT_TRUE(frame->find("found")->as_bool());
      saw_cancel_ack = true;
    } else if (const io::Json* status = frame->find("status")) {
      EXPECT_EQ(status->as_string(), "cancelled");
      saw_cancelled = true;
    }
  }
  EXPECT_TRUE(saw_cancelled);
  EXPECT_TRUE(saw_cancel_ack);

  const auto retry =
      roundtrip(second, request_frame("verify", [] {
                  io::JsonObject p;
                  p["n"] = 6;
                  p["k"] = 2;
                  return p;
                }()));
  ASSERT_TRUE(retry.has_value());
  EXPECT_EQ(frame_type(*retry), "result");
  EXPECT_EQ(retry->find("status")->as_string(), "done");
}

TEST(Service, BusyPoolShedsOneShotJobsWithOverloaded) {
  ServiceConfig config;
  config.threads = 1;
  config.max_queue = 0;  // a job is shed whenever the worker is busy
  DaemonFixture fx(config);
  net::Client client = fx.connect();
  std::string error;
  // A slow single-task job pins the only worker... (heavy enough that it
  // is still running when the follow-up request below gets dispatched,
  // whatever the solver throughput of the build)
  io::JsonObject slow;
  slow["n"] = 8;
  slow["k"] = 2;
  slow["horizon_mcycles"] = 500.0;
  slow["faults_per_mcycle"] = 1000.0;
  ASSERT_TRUE(
      client.send_json(request_frame("sim.run", std::move(slow)), &error))
      << error;
  // ...so the construct that follows on the same connection (processed
  // strictly after, while the worker is still busy) must be shed.
  io::JsonObject p;
  p["n"] = 8;
  p["k"] = 2;
  ASSERT_TRUE(
      client.send_json(request_frame("construct", std::move(p)), &error))
      << error;
  bool saw_overloaded = false, saw_sim_result = false;
  for (int i = 0; i < 2 && !(saw_overloaded && saw_sim_result); ++i) {
    const auto frame = client.read_json(kReadTimeoutMs, &error);
    ASSERT_TRUE(frame.has_value()) << error;
    if (frame_type(*frame) == "error") {
      EXPECT_EQ(error_code(*frame), "overloaded");
      saw_overloaded = true;
    } else if (frame->find("availability") != nullptr) {
      saw_sim_result = true;
    }
  }
  EXPECT_TRUE(saw_overloaded);
  EXPECT_TRUE(saw_sim_result);
}

TEST(Service, SimRunRejectsOutOfRangeParameters) {
  DaemonFixture fx;
  net::Client client = fx.connect();
  std::string error;
  // Each would otherwise pin a pool worker on an effectively unbounded
  // (or nonsensical) simulation with no cancellation path.
  const std::vector<std::string> bad = {
      "{\"method\":\"sim.run\",\"params\":{\"n\":8,\"k\":2,"
      "\"horizon_mcycles\":1e300}}",
      "{\"method\":\"sim.run\",\"params\":{\"n\":8,\"k\":2,"
      "\"horizon_mcycles\":0}}",
      "{\"method\":\"sim.run\",\"params\":{\"n\":8,\"k\":2,"
      "\"horizon_mcycles\":-5}}",
      "{\"method\":\"sim.run\",\"params\":{\"n\":8,\"k\":2,"
      "\"faults_per_mcycle\":-1}}",
      "{\"method\":\"sim.run\",\"params\":{\"n\":8,\"k\":2,"
      "\"repair_cycles\":-200000}}",
  };
  for (const std::string& frame : bad) {
    ASSERT_TRUE(client.send_line(frame, &error)) << error;
    const auto reply = client.read_json(kReadTimeoutMs, &error);
    ASSERT_TRUE(reply.has_value()) << error << " for " << frame;
    EXPECT_EQ(frame_type(*reply), "error") << frame;
    EXPECT_EQ(error_code(*reply), "bad_request") << frame;
  }
  // An in-range request on the same connection still runs.
  io::JsonObject p;
  p["n"] = 8;
  p["k"] = 2;
  p["horizon_mcycles"] = 0.1;
  const auto ok = roundtrip(client, request_frame("sim.run", std::move(p)));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(frame_type(*ok), "result");
}

TEST(Service, AbruptDisconnectMidStreamLeavesDaemonServing) {
  ServiceConfig config;
  config.threads = 2;
  DaemonFixture fx(config);
  {
    net::Client dropper = fx.connect();
    std::string error;
    io::JsonObject params;
    params["n"] = 3;
    params["k"] = 6;
    params["chunk"] = 10;  // long sweep: many progress events
    ASSERT_TRUE(
        dropper.send_json(request_frame("verify", std::move(params)),
                          &error))
        << error;
    const auto accepted = dropper.read_json(kReadTimeoutMs, &error);
    ASSERT_TRUE(accepted.has_value()) << error;
    ASSERT_EQ(frame_type(*accepted), "accepted");
    // The client vanishes mid-stream: subsequent progress writes hit a
    // reset socket (EPIPE, which must not be a fatal SIGPIPE) and the
    // close must not tear the session down under the event handler.
  }
  net::Client client = fx.connect();
  const auto pong = roundtrip(client, request_frame("ping", {}));
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(frame_type(*pong), "result");
  // The orphaned session is reaped once its in-flight chunk completes.
  for (int i = 0; i < 600; ++i) {
    const auto stats = roundtrip(client, request_frame("stats", {}));
    ASSERT_TRUE(stats.has_value());
    if (stats->find("sessions_active")->as_int() == 0) return;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ADD_FAILURE() << "orphaned session never reaped";
}

TEST(Service, CancelMidSweepStopsTheSession) {
  ServiceConfig config;
  config.threads = 1;
  DaemonFixture fx(config);
  net::Client client = fx.connect();
  std::string error;
  io::JsonObject params;
  params["n"] = 3;
  params["k"] = 6;
  params["chunk"] = 10;
  ASSERT_TRUE(
      client.send_json(request_frame("verify", std::move(params)), &error))
      << error;
  const auto accepted = client.read_json(kReadTimeoutMs, &error);
  ASSERT_TRUE(accepted.has_value()) << error;
  ASSERT_EQ(frame_type(*accepted), "accepted");
  io::JsonObject cancel;
  cancel["session"] = accepted->find("session")->as_string();
  ASSERT_TRUE(
      client.send_json(request_frame("cancel", std::move(cancel)), &error))
      << error;
  bool cancelled = false;
  while (!cancelled) {
    const auto frame = client.read_json(kReadTimeoutMs, &error);
    ASSERT_TRUE(frame.has_value()) << error;
    const io::Json* status = frame->find("status");
    if (status != nullptr) {
      EXPECT_EQ(status->as_string(), "cancelled");
      EXPECT_EQ(frame_type(*frame), "result");
      cancelled = true;
    }
  }
  const auto stats = roundtrip(client, request_frame("stats", {}));
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->find("sessions_active")->as_int(), 0);
}

TEST(Service, UnknownSessionCancelReportsNotFoundButSucceeds) {
  DaemonFixture fx;
  net::Client client = fx.connect();
  io::JsonObject cancel;
  cancel["session"] = "s424242";
  const auto reply =
      roundtrip(client, request_frame("cancel", std::move(cancel)));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(frame_type(*reply), "result");
  EXPECT_FALSE(reply->find("found")->as_bool());
}

TEST(Service, DrainedVerifyResumesToBitIdenticalVerdict) {
  const std::string drain_dir =
      "kgdd_drain_" + std::to_string(::getpid());
  std::filesystem::remove_all(drain_dir);
  std::filesystem::create_directories(drain_dir);

  // Phase 1: start a verify, drain mid-sweep, collect the checkpoint.
  std::string checkpoint_path;
  {
    ServiceConfig config;
    config.threads = 2;
    config.drain_dir = drain_dir;
    DaemonFixture fx(config);
    net::Client client = fx.connect();
    std::string error;
    io::JsonObject params;
    params["n"] = 3;
    params["k"] = 6;
    params["chunk"] = 25;
    ASSERT_TRUE(client.send_json(request_frame("verify", std::move(params)),
                                 &error))
        << error;
    // Let the session get genuinely under way (accepted + 2 progress
    // frames), then drain the daemon out from under it.
    for (int i = 0; i < 3; ++i) {
      const auto frame = client.read_json(kReadTimeoutMs, &error);
      ASSERT_TRUE(frame.has_value()) << error;
      ASSERT_FALSE(is_terminal_frame(*frame));
    }
    fx.daemon().begin_drain();
    std::optional<io::Json> terminal;
    while (!terminal.has_value()) {
      auto frame = client.read_json(kReadTimeoutMs, &error);
      ASSERT_TRUE(frame.has_value()) << error;
      if (is_terminal_frame(*frame)) terminal = std::move(frame);
    }
    ASSERT_EQ(frame_type(*terminal), "result");
    ASSERT_EQ(terminal->find("status")->as_string(), "drained");
    checkpoint_path = terminal->find("checkpoint")->as_string();
    EXPECT_GT(terminal->find("items_total")->as_int(), 0);
    fx.daemon().join();  // drain closes every connection and stops
  }
  ASSERT_TRUE(std::filesystem::exists(checkpoint_path)) << checkpoint_path;

  // Phase 2: resume from the checkpoint and run an uninterrupted control
  // sweep; the deterministic verdict fields must match exactly.
  std::string resumed, control;
  {
    ServiceConfig config;
    config.threads = 2;
    DaemonFixture fx(config);
    net::Client client = fx.connect();
    io::JsonObject resume_params;
    resume_params["resume"] = checkpoint_path;
    const auto resumed_terminal = roundtrip(
        client, request_frame("verify", std::move(resume_params)));
    ASSERT_TRUE(resumed_terminal.has_value());
    ASSERT_EQ(frame_type(*resumed_terminal), "result");
    ASSERT_EQ(resumed_terminal->find("status")->as_string(), "done");
    resumed = deterministic_verdict(*resumed_terminal);

    io::JsonObject control_params;
    control_params["n"] = 3;
    control_params["k"] = 6;
    control_params["chunk"] = 25;
    const auto control_terminal = roundtrip(
        client, request_frame("verify", std::move(control_params)));
    ASSERT_TRUE(control_terminal.has_value());
    ASSERT_EQ(frame_type(*control_terminal), "result");
    control = deterministic_verdict(*control_terminal);
  }
  EXPECT_EQ(resumed, control);
  EXPECT_NE(resumed, "<no verdict>");
  std::filesystem::remove_all(drain_dir);
}

TEST(Service, ResumeFromGarbagePathIsAStructuredError) {
  DaemonFixture fx;
  net::Client client = fx.connect();
  // A path that names nothing is the client's mistake: not_found.
  io::JsonObject params;
  params["resume"] = "/nonexistent/kgdd-s1.kgdp";
  const auto reply =
      roundtrip(client, request_frame("verify", std::move(params)));
  ASSERT_TRUE(reply.has_value());
  EXPECT_EQ(frame_type(*reply), "error");
  EXPECT_EQ(error_code(*reply), "not_found");
}

// The resume corruption corpus: every damaged kgdd-<sid>.kgdp variant
// must come back as a classified bad_request error — never an internal
// error from deep inside the parser, never a wedged session.
TEST(Service, ResumeFromCorruptCheckpointCorpusIsClassified) {
  const std::string dir = "kgdd_corrupt_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  // A genuine checkpoint to mutate.
  SessionCheckpoint cp;
  cp.n = 3;
  cp.k = 4;
  cp.max_faults = 4;
  cp.chunk = 100;
  cp.cursor = "exhaustive 0 0 end\n";
  const std::string good = dir + "/kgdd-good.kgdp";
  write_session_checkpoint_file(good, cp);
  std::string bytes;
  {
    std::ifstream in(good, std::ios::binary);
    ASSERT_TRUE(in.good());
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  ASSERT_GT(bytes.size(), 32u);

  const auto write_variant = [&](const std::string& name,
                                 const std::string& content) {
    const std::string path = dir + "/" + name;
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(content.data(),
              static_cast<std::streamsize>(content.size()));
    return path;
  };
  std::string flipped = bytes;
  flipped[flipped.size() / 2] ^= 0x40;  // payload bit flip: CRC catches it
  std::vector<std::string> corpus = {
      write_variant("kgdd-zero.kgdp", ""),
      write_variant("kgdd-trunc.kgdp", bytes.substr(0, bytes.size() / 2)),
      write_variant("kgdd-flip.kgdp", flipped),
  };
  // Valid envelope around a wrong-version payload: a parse error, not a
  // framing error — still bad_request to the client.
  const std::string wrongver = dir + "/kgdd-wrongver.kgdp";
  util::durable_write_file(wrongver, "kgdp-check-session 99\nn 3\nk 4\n");
  corpus.push_back(wrongver);

  // A corrupt primary with a pristine `.bak` sibling: the daemon must
  // not silently probe a backup it does not own — still a structured
  // error pointing at the file the client actually named.
  const std::string pair = write_variant("kgdd-pair.kgdp", flipped);
  write_session_checkpoint_file(pair + ".bak", cp);
  corpus.push_back(pair);

  DaemonFixture fx;
  net::Client client = fx.connect();
  for (const std::string& path : corpus) {
    io::JsonObject params;
    params["resume"] = path;
    const auto reply =
        roundtrip(client, request_frame("verify", std::move(params)));
    ASSERT_TRUE(reply.has_value()) << path;
    EXPECT_EQ(frame_type(*reply), "error") << path;
    EXPECT_EQ(error_code(*reply), "bad_request") << path;
  }
  // Client-supplied resume paths are read-only: none of the damaged
  // files may have been quarantined (renamed to <name>.corrupt).
  for (const std::string& path : corpus) {
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
    EXPECT_FALSE(std::filesystem::exists(path + ".corrupt")) << path;
  }
  // The daemon survived the whole corpus.
  const auto pong = roundtrip(client, request_frame("ping", {}));
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(frame_type(*pong), "result");
  std::filesystem::remove_all(dir);
}

// Periodic session checkpoints (--checkpoint-every): a mid-sweep
// snapshot taken at a chunk boundary resumes in a fresh daemon to the
// bit-identical verdict, and a completed session cleans its own
// checkpoint up.
TEST(Service, PeriodicSessionCheckpointResumesBitIdentically) {
  const std::string dir1 = "kgdd_period1_" + std::to_string(::getpid());
  const std::string dir2 = "kgdd_period2_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir1);
  std::filesystem::remove_all(dir2);
  std::filesystem::create_directories(dir1);
  std::filesystem::create_directories(dir2);

  // Phase 1: run with checkpoint-every=1 until a progress frame reports
  // a checkpoint write, copy the snapshot aside, then cancel (a
  // cancelled session reaps its own checkpoint files, so the copy is
  // what phase 2 resumes).
  std::string checkpoint_path;
  {
    ServiceConfig config;
    config.threads = 2;
    config.drain_dir = dir1;
    config.session_checkpoint_every = 1;
    DaemonFixture fx(config);
    net::Client client = fx.connect();
    std::string error;
    io::JsonObject params;
    params["n"] = 3;
    params["k"] = 6;
    params["chunk"] = 25;
    ASSERT_TRUE(client.send_json(request_frame("verify", std::move(params)),
                                 &error))
        << error;
    std::string session;
    while (checkpoint_path.empty()) {
      const auto frame = client.read_json(kReadTimeoutMs, &error);
      ASSERT_TRUE(frame.has_value()) << error;
      ASSERT_FALSE(is_terminal_frame(*frame)) << "sweep finished before "
                                                 "any periodic checkpoint";
      if (const io::Json* sid = frame->find("session")) {
        session = sid->as_string();
      }
      if (const io::Json* path = frame->find("checkpoint")) {
        checkpoint_path = path->as_string();
      }
    }
    EXPECT_TRUE(std::filesystem::exists(checkpoint_path));
    const std::string saved = dir1 + "/saved-snapshot.kgdp";
    std::filesystem::copy_file(checkpoint_path, saved);
    io::JsonObject cancel;
    cancel["session"] = session;
    ASSERT_TRUE(
        client.send_json(request_frame("cancel", std::move(cancel)), &error))
        << error;
    bool cancelled = false;
    while (!cancelled) {
      const auto frame = client.read_json(kReadTimeoutMs, &error);
      ASSERT_TRUE(frame.has_value()) << error;
      const io::Json* status = frame->find("status");
      if (status != nullptr && status->as_string() == "cancelled") {
        cancelled = true;
      }
    }
    // The cancelled session reaped its own checkpoint and backup.
    EXPECT_FALSE(std::filesystem::exists(checkpoint_path));
    EXPECT_FALSE(std::filesystem::exists(checkpoint_path + ".bak"));
    checkpoint_path = saved;
  }
  ASSERT_TRUE(std::filesystem::exists(checkpoint_path)) << checkpoint_path;

  // Phase 2: resume the snapshot in a fresh daemon; verdict must match
  // an uninterrupted control sweep, and the resumed session's own
  // periodic checkpoint must be removed once it completes.
  {
    ServiceConfig config;
    config.threads = 2;
    config.drain_dir = dir2;
    config.session_checkpoint_every = 1;
    DaemonFixture fx(config);
    net::Client client = fx.connect();
    io::JsonObject resume_params;
    resume_params["resume"] = checkpoint_path;
    const auto resumed_terminal = roundtrip(
        client, request_frame("verify", std::move(resume_params)));
    ASSERT_TRUE(resumed_terminal.has_value());
    ASSERT_EQ(frame_type(*resumed_terminal), "result");
    ASSERT_EQ(resumed_terminal->find("status")->as_string(), "done");

    io::JsonObject control_params;
    control_params["n"] = 3;
    control_params["k"] = 6;
    control_params["chunk"] = 25;
    const auto control_terminal = roundtrip(
        client, request_frame("verify", std::move(control_params)));
    ASSERT_TRUE(control_terminal.has_value());
    EXPECT_EQ(deterministic_verdict(*resumed_terminal),
              deterministic_verdict(*control_terminal));
    EXPECT_NE(deterministic_verdict(*resumed_terminal), "<no verdict>");
    // Completed sessions reap their own checkpoints (primary + backup).
    EXPECT_FALSE(std::filesystem::exists(dir2 + "/kgdd-s1.kgdp"));
    EXPECT_FALSE(std::filesystem::exists(dir2 + "/kgdd-s1.kgdp.bak"));
  }
  std::filesystem::remove_all(dir1);
  std::filesystem::remove_all(dir2);
}

// Restart safety: a daemon started over a drain dir holding a dead
// predecessor's kgdd-s1.kgdp seeds its session ids past it, so a new
// session's periodic checkpoints neither overwrite the leftover nor
// (on completion) delete it — the crashed boot's resume data survives.
TEST(Service, RestartDoesNotClobberPredecessorCheckpoints) {
  const std::string dir = "kgdd_seed_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);

  SessionCheckpoint cp;
  cp.n = 3;
  cp.k = 4;
  cp.max_faults = 4;
  cp.chunk = 100;
  cp.cursor = "exhaustive 0 0 end\n";
  const std::string leftover = dir + "/kgdd-s1.kgdp";
  write_session_checkpoint_file(leftover, cp);
  const auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
  };
  const std::string before = slurp(leftover);
  ASSERT_FALSE(before.empty());

  {
    ServiceConfig config;
    config.threads = 2;
    config.drain_dir = dir;
    config.session_checkpoint_every = 1;
    DaemonFixture fx(config);
    net::Client client = fx.connect();
    io::JsonObject params;
    params["n"] = 3;
    params["k"] = 6;
    params["chunk"] = 25;
    const auto terminal =
        roundtrip(client, request_frame("verify", std::move(params)));
    ASSERT_TRUE(terminal.has_value());
    ASSERT_EQ(frame_type(*terminal), "result");
    ASSERT_EQ(terminal->find("status")->as_string(), "done");
  }
  // The new session checkpointed every chunk and completed — and still
  // the predecessor's file is byte-identical and its .bak untouched.
  EXPECT_EQ(slurp(leftover), before);
  EXPECT_FALSE(std::filesystem::exists(leftover + ".bak"));
  std::filesystem::remove_all(dir);
}

// Startup hygiene: a daemon whose predecessor died between open and
// rename sweeps the leaked *.kgdp.tmp from its drain dir before
// serving.
TEST(Service, DaemonStartupSweepsStaleTempFiles) {
  const std::string dir = "kgdd_sweep_" + std::to_string(::getpid());
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  {
    std::ofstream out(dir + "/kgdd-s7.kgdp.tmp");
    out << "half-written checkpoint";
  }
  {
    std::ofstream out(dir + "/keep.txt");
    out << "unrelated";
  }
  ServiceConfig config;
  config.drain_dir = dir;
  DaemonFixture fx(config);
  net::Client client = fx.connect();
  const auto pong = roundtrip(client, request_frame("ping", {}));
  ASSERT_TRUE(pong.has_value());
  EXPECT_FALSE(std::filesystem::exists(dir + "/kgdd-s7.kgdp.tmp"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/keep.txt"));
  std::filesystem::remove_all(dir);
}

TEST(Service, ShutdownMethodDrainsAndDumpsMetrics) {
  const std::string metrics_path =
      "kgdd_metrics_" + std::to_string(::getpid()) + ".jsonl";
  std::filesystem::remove(metrics_path);
  {
    ServiceConfig config;
    config.metrics_path = metrics_path;
    DaemonFixture fx(config);
    net::Client client = fx.connect();
    const auto pong = roundtrip(client, request_frame("ping", {}));
    ASSERT_TRUE(pong.has_value());
    const auto reply = roundtrip(client, request_frame("shutdown", {}));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(frame_type(*reply), "result");
    EXPECT_TRUE(reply->find("draining")->as_bool());
    // Drain closes the connection once everything flushed.
    std::string error;
    EXPECT_FALSE(client.read_line(kReadTimeoutMs, &error).has_value());
    fx.daemon().join();
  }
  std::ifstream in(metrics_path);
  ASSERT_TRUE(in.good());
  std::string line;
  bool saw_ping_metrics = false;
  while (std::getline(in, line)) {
    const io::Json event = io::Json::parse(line);  // every line is JSON
    const io::Json* method = event.find("method");
    if (method != nullptr && method->as_string() == "ping") {
      saw_ping_metrics = true;
      EXPECT_GE(event.find("count")->as_int(), 1);
    }
  }
  EXPECT_TRUE(saw_ping_metrics);
  std::filesystem::remove(metrics_path);
}

TEST(Service, RequestsDuringDrainAreRejectedAsShuttingDown) {
  const std::string drain_dir =
      "kgdd_drain2_" + std::to_string(::getpid());
  std::filesystem::create_directories(drain_dir);
  ServiceConfig config;
  config.threads = 1;
  config.drain_dir = drain_dir;
  DaemonFixture fx(config);
  net::Client client = fx.connect();
  std::string error;
  // Hold the daemon open with a long verify so drain cannot finish
  // before our post-drain request lands.
  io::JsonObject params;
  params["n"] = 3;
  params["k"] = 6;
  params["chunk"] = 10;
  ASSERT_TRUE(
      client.send_json(request_frame("verify", std::move(params)), &error))
      << error;
  const auto accepted = client.read_json(kReadTimeoutMs, &error);
  ASSERT_TRUE(accepted.has_value()) << error;
  ASSERT_EQ(frame_type(*accepted), "accepted");

  const auto drain_reply = roundtrip(client, request_frame("shutdown", {}));
  ASSERT_TRUE(drain_reply.has_value());
  ASSERT_TRUE(client.send_json(request_frame("construct", [] {
                                 io::JsonObject p;
                                 p["n"] = 8;
                                 p["k"] = 2;
                                 return p;
                               }()),
                               &error))
      << error;
  bool saw_shutting_down = false;
  while (!saw_shutting_down) {
    const auto frame = client.read_json(kReadTimeoutMs, &error);
    if (!frame.has_value()) break;  // connection closed by the drain
    if (frame_type(*frame) == "error" &&
        error_code(*frame) == "shutting_down") {
      saw_shutting_down = true;
    }
  }
  EXPECT_TRUE(saw_shutting_down);
  fx.daemon().join();  // let the drain finish before removing its dir
  std::filesystem::remove_all(drain_dir);
}

// ---------------------------------------------------------------------------
// route: atlas-served reconfiguration
// ---------------------------------------------------------------------------

TEST(Service, RouteSingleAndBatchServedFromTheAtlas) {
  DaemonFixture fx;  // default config: atlas on
  net::Client client = fx.connect();

  const auto make_route = [] (io::Json faults) {
    io::JsonObject p;
    p["n"] = 8;
    p["k"] = 2;
    p["faults"] = std::move(faults);
    return request_frame("route", std::move(p));
  };

  // Cold miss: computed, warmed in place, and a valid route comes back.
  const auto first = roundtrip(client, make_route(io::JsonArray{0, 11}));
  ASSERT_TRUE(first.has_value());
  ASSERT_EQ(frame_type(*first), "result") << first->dump();
  const io::Json* route = first->find("route");
  ASSERT_NE(route, nullptr);
  ASSERT_TRUE(route->is_array());
  EXPECT_GE(route->as_array().size(), 2u);  // two terminals at least

  // Warm hit: the reply body is byte-identical to the cold miss.
  const auto second = roundtrip(client, make_route(io::JsonArray{0, 11}));
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->find("route")->dump(), second->find("route")->dump());

  // Batch: one reply, per-set routes in request order; the repeated set
  // matches the single-route answer.
  io::JsonObject p;
  p["n"] = 8;
  p["k"] = 2;
  p["sets"] = io::JsonArray{io::JsonArray{0, 11}, io::JsonArray{},
                            io::JsonArray{3}};
  const auto batch = roundtrip(client, request_frame("route", std::move(p)));
  ASSERT_TRUE(batch.has_value());
  ASSERT_EQ(frame_type(*batch), "result") << batch->dump();
  const io::Json* routes = batch->find("routes");
  ASSERT_NE(routes, nullptr);
  ASSERT_EQ(routes->as_array().size(), 3u);
  EXPECT_EQ(routes->as_array()[0].dump(), first->find("route")->dump());
  for (const io::Json& r : routes->as_array()) {
    EXPECT_TRUE(r.is_array() || r.is_null());
  }

  // The stats surface proves the atlas actually served: entries were
  // warmed, at least one lookup hit, and exactly one router was built.
  const auto stats = roundtrip(client, request_frame("stats", {}));
  ASSERT_TRUE(stats.has_value());
  const io::Json* atlas = stats->find("atlas");
  ASSERT_NE(atlas, nullptr);
  EXPECT_TRUE(atlas->find("enabled")->as_bool());
  EXPECT_GE(atlas->find("entries")->as_int(), 1);
  EXPECT_GE(atlas->find("hits")->as_int(), 1);
  EXPECT_GE(atlas->find("inserts")->as_int(), 1);
  EXPECT_EQ(atlas->find("routers")->as_int(), 1);
}

TEST(Service, RouteRepliesBitIdenticalWithAtlasOnAndOff) {
  ServiceConfig off_config;
  off_config.atlas_entries = 0;
  DaemonFixture with_atlas;
  DaemonFixture without_atlas(off_config);
  net::Client on = with_atlas.connect();
  net::Client off = without_atlas.connect();

  // A mixed batch: within the certified budget, past it (3 > k), and
  // the empty set — and a repeat, so the atlas daemon answers it once
  // cold and once warm. All four replies must carry identical bodies.
  io::JsonObject p;
  p["n"] = 8;
  p["k"] = 2;
  p["sets"] = io::JsonArray{io::JsonArray{0, 11}, io::JsonArray{1, 2, 3},
                            io::JsonArray{}, io::JsonArray{0, 11}};
  const io::Json req = request_frame("route", std::move(p));
  const auto on1 = roundtrip(on, req);
  const auto on2 = roundtrip(on, req);
  const auto off1 = roundtrip(off, req);
  ASSERT_TRUE(on1.has_value() && on2.has_value() && off1.has_value());
  ASSERT_EQ(frame_type(*on1), "result") << on1->dump();
  const std::string want = on1->find("routes")->dump();
  EXPECT_EQ(on2->find("routes")->dump(), want);
  EXPECT_EQ(off1->find("routes")->dump(), want);

  const auto off_stats = roundtrip(off, request_frame("stats", {}));
  ASSERT_TRUE(off_stats.has_value());
  EXPECT_FALSE(off_stats->find("atlas")->find("enabled")->as_bool());
}

TEST(Service, RoutePreloadedArtifactServesHitsImmediately) {
  // Build a full n=8 k=2 atlas artifact the way `kgd_cli atlas build`
  // does, then boot a daemon that preloads it.
  const std::string path =
      "kgdd_atlas_" + std::to_string(::getpid()) + ".kgdp";
  std::uint64_t built_entries = 0;
  {
    auto sg = kgd::build_solution(8, 2);
    ASSERT_TRUE(sg.has_value());
    reconfig::RouteAtlas atlas(std::size_t{1} << 20);
    reconfig::Router router(*sg, &atlas);
    built_entries = router.build_atlas(sg->k(), 0, 1);
    std::ofstream out(path);
    atlas.save(out, router.graph_fp(), sg->n(), sg->k());
  }
  ASSERT_GT(built_entries, 0u);

  ServiceConfig config;
  config.atlas_paths.push_back(path);
  DaemonFixture fx(config);
  net::Client client = fx.connect();
  io::JsonObject p;
  p["n"] = 8;
  p["k"] = 2;
  p["faults"] = io::JsonArray{0, 11};
  const auto reply = roundtrip(client, request_frame("route", std::move(p)));
  ASSERT_TRUE(reply.has_value());
  ASSERT_EQ(frame_type(*reply), "result") << reply->dump();

  const auto stats = roundtrip(client, request_frame("stats", {}));
  ASSERT_TRUE(stats.has_value());
  const io::Json* atlas = stats->find("atlas");
  EXPECT_EQ(atlas->find("entries")->as_int(),
            static_cast<std::int64_t>(built_entries));
  EXPECT_GE(atlas->find("hits")->as_int(), 1);  // served without warming
  EXPECT_EQ(atlas->find("misses")->as_int(), 0);
  std::filesystem::remove(path);
}

TEST(Service, RouteValidationErrorsArePrecise) {
  DaemonFixture fx;
  net::Client client = fx.connect();

  const auto expect_bad_request = [&](io::JsonObject params,
                                      const std::string& needle) {
    const auto reply =
        roundtrip(client, request_frame("route", std::move(params)));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(frame_type(*reply), "error");
    EXPECT_EQ(error_code(*reply), "bad_request");
    EXPECT_NE(reply->find("message")->as_string().find(needle),
              std::string::npos)
        << reply->dump();
  };

  {
    io::JsonObject p;  // missing n
    p["k"] = 2;
    p["faults"] = io::JsonArray{0};
    expect_bad_request(std::move(p), "param 'n'");
  }
  {
    io::JsonObject p;  // both faults and sets
    p["n"] = 8;
    p["k"] = 2;
    p["faults"] = io::JsonArray{0};
    p["sets"] = io::JsonArray{io::JsonArray{0}};
    expect_bad_request(std::move(p), "exactly one of");
  }
  {
    io::JsonObject p;  // neither faults nor sets
    p["n"] = 8;
    p["k"] = 2;
    expect_bad_request(std::move(p), "exactly one of");
  }
  {
    io::JsonObject p;  // fault id past the graph
    p["n"] = 8;
    p["k"] = 2;
    p["faults"] = io::JsonArray{999};
    expect_bad_request(std::move(p), "out of range");
  }
  {
    io::JsonObject p;  // batch over the per-request limit
    p["n"] = 8;
    p["k"] = 2;
    p["sets"] = io::Json(io::JsonArray(4097, io::Json(io::JsonArray{})));
    expect_bad_request(std::move(p), "per-request limit");
  }
  {
    io::JsonObject p;  // unsupported construction
    p["n"] = 8;
    p["k"] = 4;
    p["faults"] = io::JsonArray{0};
    const auto reply =
        roundtrip(client, request_frame("route", std::move(p)));
    ASSERT_TRUE(reply.has_value());
    EXPECT_EQ(frame_type(*reply), "error");
    EXPECT_EQ(error_code(*reply), "unsupported");
  }

  // A misspelled method names the server's vocabulary, not a crash.
  const auto unknown = roundtrip(client, request_frame("rout", {}));
  ASSERT_TRUE(unknown.has_value());
  EXPECT_EQ(frame_type(*unknown), "error");
  EXPECT_EQ(error_code(*unknown), "unknown_method");
}

TEST(Service, RequestSchemaVersionSkew) {
  DaemonFixture fx;
  net::Client client = fx.connect();

  const auto ping_with_version = [](io::Json version) {
    io::JsonObject frame;
    frame["method"] = "ping";
    frame["schema_version"] = std::move(version);
    return io::Json(std::move(frame));
  };

  // Every version the server speaks is accepted, and the reply is
  // always stamped with the *server's* version — v1/v2 clients keep
  // working across the v3 bump.
  for (int v = 1; v <= io::kSchemaVersion; ++v) {
    const auto reply = roundtrip(client, ping_with_version(io::Json(v)));
    ASSERT_TRUE(reply.has_value()) << "v" << v;
    EXPECT_EQ(frame_type(*reply), "result") << reply->dump();
    EXPECT_EQ(reply->find("schema_version")->as_int(), io::kSchemaVersion);
  }

  // Future, ancient, and mistyped versions are rejected up front with a
  // message that names the supported range.
  for (const io::Json& v :
       {io::Json(0), io::Json(io::kSchemaVersion + 1), io::Json("2")}) {
    const auto reply = roundtrip(client, ping_with_version(v));
    ASSERT_TRUE(reply.has_value()) << v.dump();
    EXPECT_EQ(frame_type(*reply), "error");
    EXPECT_EQ(error_code(*reply), "bad_request");
    EXPECT_NE(reply->find("message")->as_string().find(
                  "unsupported schema_version"),
              std::string::npos);
  }

  // The connection survives the rejects.
  const auto pong = roundtrip(client, request_frame("ping", {}));
  ASSERT_TRUE(pong.has_value());
  EXPECT_EQ(frame_type(*pong), "result");
}

TEST(Service, FleetMembershipAndResumeCountersOnStats) {
  DaemonFixture fx;
  net::Client client = fx.connect();

  const auto sg = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg.has_value());
  const std::uint64_t total =
      fault::OrbitEnumerator(sg->num_nodes(), 2,
                             graph::solution_automorphisms(*sg))
          .num_orbits();

  // Runs a whole lease to its `done` terminal, carrying the resume
  // bookkeeping params a generation-N coordinator would stamp.
  auto grant = [&](const std::string& lease, std::int64_t generation,
                   bool refenced) {
    io::JsonObject p;
    p["n"] = 6;
    p["k"] = 2;
    p["max_faults"] = 2;
    p["begin"] = std::uint64_t{0};
    p["end"] = total;
    p["chunk"] = std::uint64_t{512};
    p["lease"] = lease;
    p["epoch"] = std::uint64_t{1};
    p["generation"] = generation;
    if (refenced) p["refenced"] = true;
    const auto done = roundtrip(client, request_frame("lease", std::move(p)));
    ASSERT_TRUE(done.has_value()) << lease;
    ASSERT_EQ(frame_type(*done), "result") << done->dump();
    EXPECT_EQ(done->find("status")->as_string(), "done") << lease;
  };

  // A restarted coordinator shows up as a generation bump; replays of
  // the same or an older generation must not count twice.
  grant("L0", 2, true);   // resumes -> 1, refenced -> 1
  grant("L1", 2, false);  // same generation: no new resume
  grant("L2", 1, false);  // older: a replayed pre-crash grant
  grant("L3", 3, true);   // next incarnation: resumes -> 2, refenced -> 2

  const auto joined =
      roundtrip(client, request_frame("fleet.join", {}, "j"));
  ASSERT_TRUE(joined.has_value());
  ASSERT_EQ(frame_type(*joined), "result");
  EXPECT_TRUE(joined->find("joined")->as_bool());

  // A leave with no lease sessions open acknowledges with nothing to
  // drain.
  const auto idle_leave =
      roundtrip(client, request_frame("fleet.leave", {}, "l"));
  ASSERT_TRUE(idle_leave.has_value());
  ASSERT_EQ(frame_type(*idle_leave), "result");
  EXPECT_TRUE(idle_leave->find("leaving")->as_bool());
  EXPECT_EQ(idle_leave->find("draining")->as_int(), 0);

  const auto stats = roundtrip(client, request_frame("stats", {}));
  ASSERT_TRUE(stats.has_value());
  const io::Json* fleet = stats->find("fleet");
  ASSERT_NE(fleet, nullptr);
  EXPECT_EQ(fleet->find("leases_granted")->as_int(), 4);
  EXPECT_EQ(fleet->find("coordinator_resumes")->as_int(), 2);
  EXPECT_EQ(fleet->find("leases_refenced")->as_int(), 2);
  EXPECT_EQ(fleet->find("workers_joined")->as_int(), 1);
  EXPECT_EQ(fleet->find("workers_left")->as_int(), 1);
}

TEST(Service, FleetLeaveDrainsOpenLeaseSessionsAtTheChunkBoundary) {
  DaemonFixture fx;
  net::Client worker = fx.connect();

  // A long lease at a one-item chunk: ~29k boundaries, so the leave
  // lands mid-sweep with enormous margin.
  const auto sg = kgd::build_solution(3, 6);
  ASSERT_TRUE(sg.has_value());
  const std::uint64_t total =
      fault::OrbitEnumerator(sg->num_nodes(), 6,
                             graph::solution_automorphisms(*sg))
          .num_orbits();
  io::JsonObject p;
  p["n"] = 3;
  p["k"] = 6;
  p["max_faults"] = 6;
  p["begin"] = std::uint64_t{0};
  p["end"] = total;
  p["chunk"] = std::uint64_t{1};
  p["lease"] = std::string("LD");
  p["epoch"] = std::uint64_t{1};
  std::string error;
  ASSERT_TRUE(worker.send_json(request_frame("lease", std::move(p), "g"),
                               &error))
      << error;

  // Wait until the sweep has streamed progress, then ask it to leave
  // from a second connection.
  net::Client observer = fx.connect();
  bool streaming = false;
  for (int i = 0; i < 6000 && !streaming; ++i) {
    const auto stats = roundtrip(observer, request_frame("stats", {}));
    ASSERT_TRUE(stats.has_value());
    const io::Json* active = stats->find("fleet")->find("active");
    if (active != nullptr && active->is_array()) {
      for (const io::Json& lease : active->as_array()) {
        const io::Json* done = lease.find("items_done");
        if (done != nullptr && done->as_int() > 0) streaming = true;
      }
    }
    if (!streaming) std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(streaming) << "lease never streamed progress";

  const auto leave =
      roundtrip(observer, request_frame("fleet.leave", {}, "l"));
  ASSERT_TRUE(leave.has_value());
  ASSERT_EQ(frame_type(*leave), "result") << leave->dump();
  EXPECT_EQ(leave->find("draining")->as_int(), 1);

  // The lease stream ends `drained` at the next chunk boundary, cursor
  // attached so the coordinator re-grants the remainder elsewhere.
  while (true) {
    auto frame = worker.read_json(kReadTimeoutMs, &error);
    ASSERT_TRUE(frame.has_value()) << error;
    if (!is_terminal_frame(*frame)) continue;
    ASSERT_EQ(frame_type(*frame), "result") << frame->dump();
    EXPECT_EQ(frame->find("status")->as_string(), "drained");
    EXPECT_FALSE(frame->find("cursor")->as_string().empty());
    EXPECT_LT(frame->find("items_done")->as_int(),
              frame->find("items_total")->as_int());
    break;
  }
}

}  // namespace
}  // namespace kgdp::service
