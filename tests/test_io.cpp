#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "io/csv.hpp"
#include "io/json.hpp"
#include "util/table.hpp"

namespace kgdp {
namespace {

// ---- Table ----

TEST(Table, AlignsColumns) {
  util::Table t({"a", "longheader"});
  t.add_row({"xx", "1"});
  t.add_row({"y", "22"});
  const std::string s = t.to_string();
  std::istringstream is(s);
  std::string l1, l2, l3, l4;
  std::getline(is, l1);
  std::getline(is, l2);
  std::getline(is, l3);
  std::getline(is, l4);
  EXPECT_EQ(l1.find("longheader"), l3.find("1"));
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, MarkdownMode) {
  util::Table t({"h1", "h2"});
  t.add_row({"a", "b"});
  const std::string s = t.to_string(true);
  EXPECT_NE(s.find("| h1"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(util::Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(util::Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(util::Table::num(-7), "-7");
}

// ---- CSV ----

TEST(Csv, WritesHeaderAndRows) {
  const std::string path = "/tmp/kgdp_test_io.csv";
  {
    io::CsvWriter w(path, {"x", "y"});
    w.row({"1", "2"});
    w.row({"a,b", "quo\"te"});
  }
  std::ifstream in(path);
  std::string l1, l2, l3;
  std::getline(in, l1);
  std::getline(in, l2);
  std::getline(in, l3);
  EXPECT_EQ(l1, "x,y");
  EXPECT_EQ(l2, "1,2");
  EXPECT_EQ(l3, "\"a,b\",\"quo\"\"te\"");
  std::remove(path.c_str());
}

TEST(Csv, ArityMismatchThrows) {
  const std::string path = "/tmp/kgdp_test_io2.csv";
  io::CsvWriter w(path, {"x", "y"});
  EXPECT_THROW(w.row({"1"}), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Csv, UnwritablePathThrows) {
  EXPECT_THROW(io::CsvWriter("/nonexistent-dir/f.csv", {"a"}),
               std::runtime_error);
}

// ---- JSON ----

TEST(Json, Scalars) {
  EXPECT_EQ(io::Json(nullptr).dump(), "null");
  EXPECT_EQ(io::Json(true).dump(), "true");
  EXPECT_EQ(io::Json(false).dump(), "false");
  EXPECT_EQ(io::Json(42).dump(), "42");
  EXPECT_EQ(io::Json(-1.5).dump(), "-1.5");
  EXPECT_EQ(io::Json("hi").dump(), "\"hi\"");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(io::Json("a\"b\\c\nd").dump(), "\"a\\\"b\\\\c\\nd\"");
}

TEST(Json, CompactObjectAndArray) {
  io::JsonObject o;
  o["k"] = io::Json(io::JsonArray{io::Json(1), io::Json(2)});
  EXPECT_EQ(io::Json(o).dump(), "{\"k\":[1,2]}");
}

TEST(Json, IndentedOutputHasNewlines) {
  io::JsonObject o;
  o["a"] = 1;
  o["b"] = 2;
  const std::string s = io::Json(o).dump(2);
  EXPECT_NE(s.find('\n'), std::string::npos);
  EXPECT_NE(s.find("  \"a\": 1"), std::string::npos);
}

TEST(Json, NonFiniteDoublesBecomeNull) {
  EXPECT_EQ(io::Json(std::numeric_limits<double>::infinity()).dump(),
            "null");
}

TEST(Json, ObjectKeysSorted) {
  io::JsonObject o;
  o["zebra"] = 1;
  o["apple"] = 2;
  const std::string s = io::Json(o).dump();
  EXPECT_LT(s.find("apple"), s.find("zebra"));
}

}  // namespace
}  // namespace kgdp
