#include "sim/machine.hpp"

#include <gtest/gtest.h>

#include "kgd/factory.hpp"
#include "sim/stages_dsp.hpp"

namespace kgdp::sim {
namespace {

PipelineMachine make_machine(int n, int k, int stages_hint = 0) {
  auto sg = kgd::build_solution(n, k);
  EXPECT_TRUE(sg.has_value());
  return PipelineMachine(*sg, make_video_pipeline(stages_hint));
}

TEST(Machine, OperationalOnConstruction) {
  PipelineMachine m = make_machine(8, 2);
  EXPECT_TRUE(m.operational());
  EXPECT_EQ(m.pipeline().num_processors(), 10);  // n + k healthy
  EXPECT_EQ(m.stats().reconfigurations, 1);
}

TEST(Machine, ProcessesStreamLikeReferencePipeline) {
  PipelineMachine m = make_machine(8, 2);
  StageList ref = make_video_pipeline();
  const Chunk sig = make_test_signal(512, 9);
  EXPECT_EQ(m.process(sig), run_sequential(ref, sig));
}

TEST(Machine, FaultMakesItNonOperationalUntilReconfigure) {
  PipelineMachine m = make_machine(8, 2);
  const auto procs = m.solution_graph().processors();
  EXPECT_TRUE(m.inject_fault(procs[3]));
  EXPECT_FALSE(m.operational());
  EXPECT_TRUE(m.reconfigure());
  EXPECT_TRUE(m.operational());
  EXPECT_EQ(m.pipeline().num_processors(), 9);
}

TEST(Machine, DuplicateFaultRejected) {
  PipelineMachine m = make_machine(8, 2);
  const auto procs = m.solution_graph().processors();
  EXPECT_TRUE(m.inject_fault(procs[0]));
  EXPECT_FALSE(m.inject_fault(procs[0]));
  EXPECT_EQ(m.fault_count(), 1);
}

TEST(Machine, OutputIdenticalAfterFaultAndRemap) {
  // The headline end-to-end property: kill nodes mid-stream, remap, and
  // the remaining stream continues exactly as the fault-free reference.
  const Chunk sig = make_test_signal(1024, 11);
  const Chunk first(sig.begin(), sig.begin() + 512);
  const Chunk second(sig.begin() + 512, sig.end());

  StageList ref_stages = make_video_pipeline();
  Chunk ref = run_sequential(ref_stages, first);
  {
    const Chunk tail = run_sequential(ref_stages, second);
    ref.insert(ref.end(), tail.begin(), tail.end());
  }

  PipelineMachine m = make_machine(8, 2);
  Chunk got = m.process(first);
  const auto procs = m.solution_graph().processors();
  ASSERT_TRUE(m.inject_fault(procs[2]));
  ASSERT_TRUE(m.inject_fault(procs[7]));
  ASSERT_TRUE(m.reconfigure());
  {
    const Chunk tail = m.process(second);
    got.insert(got.end(), tail.begin(), tail.end());
  }
  EXPECT_EQ(got, ref);
}

TEST(Machine, ToleratesTerminalFaultsToo) {
  PipelineMachine m = make_machine(6, 2);
  const auto ins = m.solution_graph().inputs();
  ASSERT_TRUE(m.inject_fault(ins[0]));
  ASSERT_TRUE(m.inject_fault(ins[1]));
  EXPECT_TRUE(m.reconfigure());
  // All processors survive; the pipeline re-enters via the third input.
  EXPECT_EQ(m.pipeline().num_processors(), 8);
}

TEST(Machine, FailsBeyondFaultBudgetGracefully) {
  PipelineMachine m = make_machine(5, 1, /*stages_hint=*/0);
  const auto ins = m.solution_graph().inputs();
  ASSERT_EQ(ins.size(), 2u);
  m.inject_fault(ins[0]);
  m.inject_fault(ins[1]);  // both inputs dead: beyond k=1
  EXPECT_FALSE(m.reconfigure());
  EXPECT_FALSE(m.operational());
}

TEST(Machine, LatencyAndThroughputTracked) {
  PipelineMachine m = make_machine(8, 2);
  EXPECT_GT(m.stats().busiest_stage_cost, 0.0);
  EXPECT_GT(m.stats().pipeline_latency_cycles, 0.0);
  EXPECT_GT(m.stats().throughput(), 0.0);
  // Latency includes per-hop cost for every link.
  const double min_hops =
      (m.pipeline().num_processors() + 1) * 10.0;  // default hop latency
  EXPECT_GE(m.stats().pipeline_latency_cycles, min_hops);
}

TEST(Machine, FewerProcessorsRaiseNothingButLatencyDrops) {
  // After faults the pipeline is shorter: fewer passthrough nodes, so
  // total latency must not increase.
  PipelineMachine m = make_machine(10, 3);
  const double lat0 = m.stats().pipeline_latency_cycles;
  const auto procs = m.solution_graph().processors();
  m.inject_fault(procs[9]);
  m.inject_fault(procs[10]);
  ASSERT_TRUE(m.reconfigure());
  EXPECT_LT(m.stats().pipeline_latency_cycles, lat0);
}

TEST(Machine, FusesStagesWhenProcessorsRunShort) {
  // G(3,2): 5 processors, 5-stage pipeline. Two processor faults leave 3
  // processors for 5 stages -> fusion, and the stream stays correct.
  auto sg = kgd::build_solution(3, 2);
  ASSERT_TRUE(sg.has_value());
  PipelineMachine m(*sg, make_video_pipeline());
  StageList ref = make_video_pipeline();

  const sim::Chunk part1 = make_test_signal(256, 1);
  EXPECT_EQ(m.process(part1), run_sequential(ref, part1));

  const auto procs = m.solution_graph().processors();
  ASSERT_TRUE(m.inject_fault(procs[0]));
  ASSERT_TRUE(m.inject_fault(procs[1]));
  ASSERT_TRUE(m.reconfigure());
  EXPECT_EQ(m.pipeline().num_processors(), 3);

  // Every stage still assigned exactly once, contiguously, in order.
  int next_stage = 0;
  for (const auto& [b, e] : m.stage_assignment()) {
    EXPECT_EQ(b, next_stage);
    next_stage = e;
  }
  EXPECT_EQ(next_stage, 5);

  const sim::Chunk part2 = make_test_signal(256, 2);
  EXPECT_EQ(m.process(part2), run_sequential(ref, part2));
}

TEST(Machine, FusionBalancesBottleneck) {
  // Costs: fir 3, subsample 0.5, rescale 1, quantize 1.5, delta 2 over 2
  // processors: the optimal contiguous split is {fir+sub}=3.5 vs
  // {rescale+quant+delta}=4.5 (bottleneck 4.5).
  auto sg = kgd::build_solution(2, 2);  // 4 processors
  ASSERT_TRUE(sg.has_value());
  PipelineMachine m(*sg, make_video_pipeline());
  const auto procs = m.solution_graph().processors();
  ASSERT_TRUE(m.inject_fault(procs[0]));
  ASSERT_TRUE(m.inject_fault(procs[1]));
  ASSERT_TRUE(m.reconfigure());
  ASSERT_EQ(m.pipeline().num_processors(), 2);
  EXPECT_DOUBLE_EQ(m.stats().busiest_stage_cost, 4.5);
}

TEST(Machine, SurvivesDownToSingleProcessor) {
  auto sg = kgd::build_solution(1, 2);  // 3 processors, tolerate 2
  ASSERT_TRUE(sg.has_value());
  PipelineMachine m(*sg, make_video_pipeline());
  StageList ref = make_video_pipeline();
  const auto procs = m.solution_graph().processors();
  ASSERT_TRUE(m.inject_fault(procs[0]));
  ASSERT_TRUE(m.inject_fault(procs[1]));
  ASSERT_TRUE(m.reconfigure());
  EXPECT_EQ(m.pipeline().num_processors(), 1);
  const sim::Chunk sig = make_test_signal(128, 3);
  EXPECT_EQ(m.process(sig), run_sequential(ref, sig));
  // Everything fused onto the lone processor: bottleneck = total cost.
  EXPECT_DOUBLE_EQ(m.stats().busiest_stage_cost, 3 + 0.5 + 1 + 1.5 + 2);
}

TEST(Machine, SampleCountsAccumulate) {
  PipelineMachine m = make_machine(6, 2);
  m.process(make_test_signal(100, 1));
  m.process(make_test_signal(50, 2));
  EXPECT_EQ(m.stats().samples_in, 150u);
  EXPECT_EQ(m.stats().samples_out, 75u);  // 2:1 subsample
  m.reset_stream();
  EXPECT_EQ(m.stats().samples_in, 0u);
}

}  // namespace
}  // namespace kgdp::sim
