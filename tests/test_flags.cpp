// The shared CLI flag parser: declared flags parse, everything else is
// rejected with an error naming the offender and the accepted set. The
// rejection paths matter as much as the happy path — the old ad-hoc argv
// scans silently swallowed typos.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "util/flags.hpp"

namespace kgdp::util {
namespace {

// argv helper: the parser takes char* const*, tests hold std::strings.
struct Argv {
  explicit Argv(std::vector<std::string> args) : storage(std::move(args)) {
    for (std::string& s : storage) ptrs.push_back(s.data());
  }
  int argc() const { return static_cast<int>(ptrs.size()); }
  char* const* data() { return ptrs.data(); }
  std::vector<std::string> storage;
  std::vector<char*> ptrs;
};

TEST(FlagParser, ParsesValuesSwitchesAndPositionals) {
  FlagParser p;
  p.flag("threads").flag("json", /*requires_value=*/false).flag("prune");
  Argv argv({"prog", "verify", "6", "--threads=4", "2", "--json",
             "--prune=off"});
  ASSERT_TRUE(p.parse(argv.argc(), argv.data(), 2)) << p.error();
  EXPECT_TRUE(p.error().empty());
  EXPECT_TRUE(p.has("threads"));
  EXPECT_EQ(p.get("threads"), "4");
  EXPECT_TRUE(p.has("json"));
  EXPECT_EQ(p.get("prune"), "off");
  EXPECT_FALSE(p.has("seed"));
  EXPECT_EQ(p.get("seed", "fallback"), "fallback");
  EXPECT_EQ(p.positionals(), (std::vector<std::string>{"6", "2"}));
}

TEST(FlagParser, RejectsUnknownFlagNamingAcceptedSet) {
  FlagParser p;
  p.flag("threads").flag("seed");
  Argv argv({"prog", "--treads=4"});
  EXPECT_FALSE(p.parse(argv.argc(), argv.data(), 1));
  EXPECT_NE(p.error().find("--treads"), std::string::npos) << p.error();
  EXPECT_NE(p.error().find("--threads"), std::string::npos) << p.error();
  EXPECT_NE(p.error().find("--seed"), std::string::npos) << p.error();
}

TEST(FlagParser, RejectsMissingValue) {
  for (const std::string bad : {"--threads", "--threads="}) {
    FlagParser p;
    p.flag("threads");
    Argv argv({"prog", bad});
    EXPECT_FALSE(p.parse(argv.argc(), argv.data(), 1)) << bad;
    EXPECT_NE(p.error().find("requires a value"), std::string::npos)
        << p.error();
  }
}

TEST(FlagParser, RejectsValueOnSwitch) {
  FlagParser p;
  p.flag("json", /*requires_value=*/false);
  Argv argv({"prog", "--json=yes"});
  EXPECT_FALSE(p.parse(argv.argc(), argv.data(), 1));
  EXPECT_NE(p.error().find("does not take a value"), std::string::npos)
      << p.error();
}

TEST(FlagParser, GetIntParsesValidatesAndDefaults) {
  FlagParser p;
  p.flag("threads").flag("chunk").flag("seed");
  Argv argv({"prog", "--threads=8", "--chunk=abc", "--seed=-3"});
  ASSERT_TRUE(p.parse(argv.argc(), argv.data(), 1)) << p.error();

  std::int64_t v = 0;
  EXPECT_TRUE(p.get_int("threads", 1, 1, 64, &v));
  EXPECT_EQ(v, 8);
  // Absent flag falls back to the default without error.
  EXPECT_TRUE(p.get_int("missing", 42, 0, 100, &v));
  EXPECT_EQ(v, 42);
  // Malformed number.
  EXPECT_FALSE(p.get_int("chunk", 1, 1, 1000, &v));
  EXPECT_NE(p.error().find("not a number"), std::string::npos) << p.error();
  // Out of range.
  EXPECT_FALSE(p.get_int("seed", 0, 0, 100, &v));
  EXPECT_NE(p.error().find("out of range"), std::string::npos) << p.error();
  // In-range negative is fine when the range allows it.
  EXPECT_TRUE(p.get_int("seed", 0, -10, 10, &v));
  EXPECT_EQ(v, -3);
}

TEST(FlagParser, ParseShardAcceptsValidSpecs) {
  std::uint32_t index = 99, count = 99;
  ASSERT_TRUE(FlagParser::parse_shard("0/1", &index, &count));
  EXPECT_EQ(index, 0u);
  EXPECT_EQ(count, 1u);
  ASSERT_TRUE(FlagParser::parse_shard("3/8", &index, &count));
  EXPECT_EQ(index, 3u);
  EXPECT_EQ(count, 8u);
}

TEST(FlagParser, ParseShardRejectsMalformedSpecs) {
  std::uint32_t index = 0, count = 0;
  for (const std::string bad :
       {"", "3", "/4", "3/", "a/4", "3/b", "4/4", "5/4", "-1/4", "1/0",
        "1/4x"}) {
    EXPECT_FALSE(FlagParser::parse_shard(bad, &index, &count)) << bad;
  }
}

}  // namespace
}  // namespace kgdp::util
