#include "sim/stages_fft.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

namespace kgdp::sim {
namespace {

TEST(FftRadix2, ImpulseGivesFlatSpectrum) {
  std::vector<std::complex<double>> data(8, {0.0, 0.0});
  data[0] = {1.0, 0.0};
  fft_radix2(data, false);
  for (const auto& x : data) {
    EXPECT_NEAR(x.real(), 1.0, 1e-12);
    EXPECT_NEAR(x.imag(), 0.0, 1e-12);
  }
}

TEST(FftRadix2, ForwardInverseRoundTrip) {
  std::vector<std::complex<double>> data;
  for (int i = 0; i < 16; ++i) {
    data.emplace_back(std::sin(i * 0.7), std::cos(i * 1.3));
  }
  const auto original = data;
  fft_radix2(data, false);
  fft_radix2(data, true);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_NEAR(data[i].real(), original[i].real(), 1e-10);
    EXPECT_NEAR(data[i].imag(), original[i].imag(), 1e-10);
  }
}

TEST(FftRadix2, ParsevalEnergyConservation) {
  std::vector<std::complex<double>> data;
  for (int i = 0; i < 32; ++i) data.emplace_back(std::sin(i * 0.37), 0.0);
  double time_energy = 0;
  for (const auto& x : data) time_energy += std::norm(x);
  fft_radix2(data, false);
  double freq_energy = 0;
  for (const auto& x : data) freq_energy += std::norm(x);
  EXPECT_NEAR(freq_energy, time_energy * 32, 1e-8);
}

TEST(FftRadix2, LinearityUnderScaling) {
  std::vector<std::complex<double>> a, b;
  for (int i = 0; i < 8; ++i) {
    a.emplace_back(i * 0.5, 0.0);
    b.emplace_back(i * 1.5, 0.0);
  }
  fft_radix2(a, false);
  fft_radix2(b, false);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_NEAR(std::abs(b[i]), 3.0 * std::abs(a[i]), 1e-9);
  }
}

TEST(SpectrumAnalyzer, SineAtBinFrequencyPeaksThere) {
  const int window = 64;
  SpectrumAnalyzer stage(window);
  Chunk sine;
  const int bin = 5;
  for (int i = 0; i < window; ++i) {
    sine.push_back(static_cast<Sample>(
        std::sin(2.0 * std::numbers::pi * bin * i / window)));
  }
  const Chunk spectrum = stage.process(sine);
  ASSERT_EQ(spectrum.size(), static_cast<std::size_t>(window / 2));
  int peak = 0;
  for (int b = 1; b < window / 2; ++b) {
    if (spectrum[b] > spectrum[peak]) peak = b;
  }
  EXPECT_EQ(peak, bin);
  EXPECT_NEAR(spectrum[bin], 1.0, 1e-3);  // unit sine reads ~1.0
  EXPECT_NEAR(spectrum[bin + 3], 0.0, 1e-3);
}

TEST(SpectrumAnalyzer, BuffersAcrossChunks) {
  SpectrumAnalyzer a(16), b(16);
  Chunk sig;
  for (int i = 0; i < 16; ++i) sig.push_back(std::sin(i * 0.5f));
  const Chunk whole = a.process(sig);
  Chunk split = b.process(Chunk(sig.begin(), sig.begin() + 7));
  EXPECT_TRUE(split.empty());  // window not full yet
  const Chunk rest = b.process(Chunk(sig.begin() + 7, sig.end()));
  EXPECT_EQ(rest, whole);
}

TEST(SpectrumAnalyzer, EmitsOncePerWindow) {
  SpectrumAnalyzer stage(8);
  Chunk three_windows(24, 0.5f);
  const Chunk out = stage.process(three_windows);
  EXPECT_EQ(out.size(), 3u * 4u);
}

TEST(SpectrumAnalyzer, CloneCarriesBuffer) {
  SpectrumAnalyzer stage(16);
  Chunk sig;
  for (int i = 0; i < 10; ++i) sig.push_back(std::sin(i * 0.9f));
  stage.process(sig);
  auto clone = stage.clone();
  Chunk tail;
  for (int i = 10; i < 16; ++i) tail.push_back(std::sin(i * 0.9f));
  EXPECT_EQ(clone->process(tail), stage.process(tail));
}

TEST(SpectrumAnalyzer, ResetDropsPartialWindow) {
  SpectrumAnalyzer stage(8);
  stage.process(Chunk(5, 1.0f));
  stage.reset();
  const Chunk out = stage.process(Chunk(8, 0.0f));
  ASSERT_EQ(out.size(), 4u);
  for (Sample s : out) EXPECT_EQ(s, 0.0f);
}

TEST(SpectrumAnalyzer, CostGrowsLogarithmically) {
  EXPECT_NEAR(SpectrumAnalyzer(16).cost_per_sample(), 5.0, 1e-9);
  EXPECT_NEAR(SpectrumAnalyzer(256).cost_per_sample(), 9.0, 1e-9);
}

}  // namespace
}  // namespace kgdp::sim
