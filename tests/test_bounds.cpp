#include "kgd/bounds.hpp"

#include <gtest/gtest.h>

#include "kgd/factory.hpp"
#include "kgd/small_n.hpp"

namespace kgdp::kgd {
namespace {

TEST(Bounds, Lemma31Constant) {
  EXPECT_EQ(min_processor_degree_bound(1), 3);
  EXPECT_EQ(min_processor_degree_bound(4), 6);
}

TEST(Bounds, Lemma34OnlyBindsForNGreaterThan1) {
  EXPECT_EQ(min_processor_neighbors_bound(1, 5), 0);
  EXPECT_EQ(min_processor_neighbors_bound(2, 5), 6);
}

TEST(Bounds, MaxDegreeLowerBoundTable) {
  // Corollary 3.2 baseline.
  EXPECT_EQ(max_degree_lower_bound(7, 2), 4);
  // Lemma 3.5: n even, k odd.
  EXPECT_EQ(max_degree_lower_bound(6, 3), 6);
  EXPECT_EQ(max_degree_lower_bound(6, 2), 4);  // k even: no penalty
  // n = 2 special (Lemma 3.9).
  EXPECT_EQ(max_degree_lower_bound(2, 2), 5);
  // Lemma 3.11: n = 3, k > 1.
  EXPECT_EQ(max_degree_lower_bound(3, 2), 5);
  EXPECT_EQ(max_degree_lower_bound(3, 1), 3);  // k = 1 exempt
  // Lemma 3.14: n = 5, k = 2.
  EXPECT_EQ(max_degree_lower_bound(5, 2), 5);
  EXPECT_EQ(max_degree_lower_bound(5, 3), 5);  // only k=2 is special at n=5
}

TEST(Bounds, AchievedAlwaysMatchesLowerBound) {
  // The theorems' central claim: every construction is degree-optimal,
  // i.e. the achieved max degree equals the provable lower bound.
  for (int k = 1; k <= 3; ++k) {
    for (int n = 1; n <= 30; ++n) {
      EXPECT_EQ(achieved_max_degree(n, k), max_degree_lower_bound(n, k))
          << "n=" << n << " k=" << k;
    }
  }
  for (int k = 4; k <= 8; ++k) {
    for (int n = 2 * k + 5; n <= 2 * k + 12; ++n) {
      EXPECT_EQ(achieved_max_degree(n, k), max_degree_lower_bound(n, k))
          << "n=" << n << " k=" << k;
    }
  }
  // n <= 3 columns for a few large k.
  for (int k = 4; k <= 10; ++k) {
    for (int n = 1; n <= 3; ++n) {
      EXPECT_EQ(achieved_max_degree(n, k), max_degree_lower_bound(n, k));
    }
  }
}

TEST(Bounds, ProcessorNeighborCount) {
  const SolutionGraph sg = make_g1k(2);  // clique of 3, plus terminals
  for (Node v : sg.processors()) {
    EXPECT_EQ(processor_neighbor_count(sg, v), 2);
  }
}

TEST(Bounds, AuditCleanOnAllConstructions) {
  for (int k = 1; k <= 3; ++k) {
    for (int n = 1; n <= 15; ++n) {
      const auto sg = build_solution(n, k);
      ASSERT_TRUE(sg.has_value());
      const auto issues = audit_bounds(*sg);
      EXPECT_TRUE(issues.empty())
          << "n=" << n << " k=" << k << ": " << issues.front();
    }
  }
}

TEST(Bounds, AuditFlagsViolations) {
  // A path of processors with single terminals violates nearly all bounds.
  SolutionGraphBuilder b(2, 2, "bad");
  const Node p0 = b.add(Role::kProcessor);
  const Node p1 = b.add(Role::kProcessor);
  b.connect(p0, p1);
  b.connect(b.add(Role::kInput), p0);
  b.connect(b.add(Role::kOutput), p1);
  const auto issues = audit_bounds(b.build());
  EXPECT_FALSE(issues.empty());
}

}  // namespace
}  // namespace kgdp::kgd
