// Differential harness for the zero-allocation solver engine: the mask
// fast path, the delta-patched fault view, and the checker built on them
// must agree bit-for-bit with the original allocation-per-call solver
// (kept as find_pipeline_reference) — same verdicts, same lowest-index
// counterexamples — under every PruneMode, thread count, and a
// resumed/merged 4-shard campaign.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "baseline/naive.hpp"
#include "fault/enumerator.hpp"
#include "kgd/factory.hpp"
#include "kgd/small_n.hpp"
#include "util/thread_pool.hpp"
#include "verify/check_session.hpp"
#include "verify/checker.hpp"
#include "verify/pipeline_solver.hpp"

namespace kgdp::verify {
namespace {

using kgd::FaultSet;
using kgd::SolutionGraph;

// Every instance family the engine must match the reference on: the
// symmetric G(3,k) / clique families (mask path, rich automorphisms),
// the generic factory output, and the naive spare path (which FAILS
// under interior faults, so negative verdicts get differential coverage
// too).
std::vector<std::pair<std::string, SolutionGraph>> corpus() {
  std::vector<std::pair<std::string, SolutionGraph>> out;
  out.emplace_back("G(3,4)", kgd::make_g3k(4));
  out.emplace_back("G(2,5)", kgd::make_g2k(5));
  out.emplace_back("spare_path(4,2)", baseline::make_spare_path(4, 2));
  out.emplace_back("build(8,2)", *kgd::build_solution(8, 2));
  return out;
}

TEST(SolverDifferential, EngineMatchesReferencePerFaultSet) {
  for (const auto& [name, sg] : corpus()) {
    const int k = sg.k();
    const fault::FaultEnumerator en(sg.num_nodes(), k);
    PipelineSolver engine;  // one instance: bind caching + scratch reuse
    for (std::uint64_t i = 0; i < en.total(); ++i) {
      const FaultSet fs = en.at(i);
      const SolveOutcome fast = engine.solve(sg, fs);
      const SolveOutcome ref = find_pipeline_reference(sg, fs);
      ASSERT_EQ(fast.status, ref.status) << name << " index " << i;
      ASSERT_EQ(fast.pipeline.has_value(), ref.pipeline.has_value())
          << name << " index " << i;
      // Both solvers certify internally; additionally pin that the fast
      // engine's pipeline is byte-equal in the deterministic search
      // order (same witness-terminal and tie-break rules).
      if (fast.pipeline) {
        EXPECT_EQ(fast.pipeline->path, ref.pipeline->path)
            << name << " index " << i;
      }
    }
  }
}

TEST(SolverDifferential, PatchedSweepMatchesPerSetRebuild) {
  for (const auto& [name, sg] : corpus()) {
    const int k = sg.k();
    const fault::FaultEnumerator en(sg.num_nodes(), k);
    fault::FaultEnumerator::Sweep sweep(en);
    PipelineSolver patched, fresh;
    for (std::uint64_t i = 0; i < en.total(); ++i) {
      SolveOutcome a;
      if (i == 0) {
        sweep.seek(0);
        a = patched.solve_faults(sg, sweep.nodes());
      } else {
        sweep.advance();
        a = patched.patch(sg, sweep.removed(), sweep.added());
      }
      const SolveOutcome b = fresh.solve(sg, en.at(i));
      ASSERT_EQ(a.status, b.status) << name << " index " << i;
    }
    // The whole walk cost exactly one rebuild.
    EXPECT_EQ(patched.counters().rebuilds, 1u) << name;
    EXPECT_EQ(patched.counters().patches, en.total() - 1) << name;
    EXPECT_EQ(patched.counters().solves, en.total()) << name;
  }
}

TEST(SolverDifferential, SweepDeltasReproduceEveryFaultSet) {
  const fault::FaultEnumerator en(10, 3);
  fault::FaultEnumerator::Sweep sweep(en);
  // Maintain a shadow set from the deltas alone; it must always equal
  // the unranked fault set, and deltas must partition correctly.
  std::vector<int> shadow;
  for (std::uint64_t i = 0; i < en.total(); ++i) {
    if (i == 0) {
      sweep.seek(0);
    } else {
      sweep.advance();
    }
    for (int v : sweep.removed()) {
      const auto it = std::find(shadow.begin(), shadow.end(), v);
      ASSERT_NE(it, shadow.end()) << "removed node not present, index " << i;
      shadow.erase(it);
    }
    for (int v : sweep.added()) {
      ASSERT_EQ(std::find(shadow.begin(), shadow.end(), v), shadow.end())
          << "added node already present, index " << i;
      shadow.push_back(v);
    }
    std::sort(shadow.begin(), shadow.end());
    const std::vector<int> expect = en.nodes_at(i);
    ASSERT_EQ(shadow, expect) << "index " << i;
    ASSERT_EQ(std::vector<int>(sweep.nodes().begin(), sweep.nodes().end()),
              expect)
        << "index " << i;
  }
}

TEST(SolverDifferential, SeekAfterDiscontinuityDiffsCorrectly) {
  const fault::FaultEnumerator en(12, 3);
  fault::FaultEnumerator::Sweep sweep(en);
  std::vector<int> shadow;
  // Jump around the index space (as work stealing does) and verify the
  // delta always turns the previous set into the target set.
  const std::uint64_t jumps[] = {0, 50, 51, 7, 200, en.total() - 1, 3};
  for (std::uint64_t target : jumps) {
    sweep.seek(target);
    for (int v : sweep.removed()) {
      shadow.erase(std::find(shadow.begin(), shadow.end(), v));
    }
    for (int v : sweep.added()) shadow.push_back(v);
    std::sort(shadow.begin(), shadow.end());
    ASSERT_EQ(shadow, en.nodes_at(target)) << "seek " << target;
  }
}

// The checker drives the engine through patch/rebuild scheduling; its
// verdict must be identical across every PruneMode x thread-count combo,
// and equal to what the reference-solver semantics dictate.
void expect_same_verdict(const CheckResult& a, const CheckResult& b,
                         const std::string& tag) {
  EXPECT_EQ(a.holds, b.holds) << tag;
  EXPECT_EQ(a.exhaustive, b.exhaustive) << tag;
  EXPECT_EQ(a.fault_sets_checked, b.fault_sets_checked) << tag;
  ASSERT_EQ(a.counterexample.has_value(), b.counterexample.has_value()) << tag;
  if (a.counterexample) {
    EXPECT_EQ(a.counterexample->nodes(), b.counterexample->nodes()) << tag;
    EXPECT_EQ(a.counterexample_index, b.counterexample_index) << tag;
  }
}

TEST(SolverDifferential, CheckerAgreesAcrossPruneAndThreads) {
  for (int k = 4; k <= 6; ++k) {
    const SolutionGraph sg = kgd::make_g3k(k);
    util::ThreadPool pool8(8);
    std::vector<std::pair<std::string, CheckResult>> runs;
    for (const PruneMode prune : {PruneMode::kAuto, PruneMode::kOff}) {
      for (const int threads : {1, 8}) {
        CheckOptions opts;
        opts.prune = prune;
        if (threads == 8) opts.pool = &pool8;
        const std::string tag =
            "G(3," + std::to_string(k) + ") prune=" +
            (prune == PruneMode::kAuto ? "auto" : "off") +
            " threads=" + std::to_string(threads);
        runs.emplace_back(tag, run_check(sg, CheckRequest::exhaustive(k, opts)));
      }
    }
    // Pruned runs solve fewer representatives but certify the same
    // domain; every combo must produce the same verdict fields.
    for (std::size_t i = 1; i < runs.size(); ++i) {
      expect_same_verdict(runs[0].second, runs[i].second,
                          runs[0].first + " vs " + runs[i].first);
    }
    EXPECT_TRUE(runs[0].second.holds);
    EXPECT_EQ(runs[0].second.fault_sets_checked,
              fault::FaultEnumerator(sg.num_nodes(), k).total());
  }
}

TEST(SolverDifferential, CheckerCounterexampleAgreesAcrossCombos) {
  const SolutionGraph sg = baseline::make_spare_path(6, 2);
  util::ThreadPool pool8(8);
  std::vector<CheckResult> runs;
  for (const PruneMode prune : {PruneMode::kAuto, PruneMode::kOff}) {
    for (const int threads : {1, 8}) {
      CheckOptions opts;
      opts.prune = prune;
      if (threads == 8) opts.pool = &pool8;
      runs.push_back(run_check(sg, CheckRequest::exhaustive(2, opts)));
    }
  }
  ASSERT_TRUE(runs[0].counterexample.has_value());
  for (std::size_t i = 1; i < runs.size(); ++i) {
    expect_same_verdict(runs[0], runs[i], "combo " + std::to_string(i));
  }
}

// A 4-shard campaign, each shard checkpointed mid-sweep and resumed in a
// fresh session, merged back: bit-identical to the unsharded run for
// both a holding instance and a failing one.
TEST(SolverDifferential, ResumedShardedMergeMatchesUnsharded) {
  struct Case {
    SolutionGraph sg;
    int k;
  };
  const std::vector<Case> cases = {{kgd::make_g3k(4), 4},
                                   {kgd::make_g3k(5), 5},
                                   {kgd::make_g3k(6), 6},
                                   {baseline::make_spare_path(6, 2), 2}};
  for (const auto& [sg, k] : cases) {
    CheckRequest base;
    base.mode = CheckMode::kExhaustive;
    base.max_faults = k;

    CheckSession whole(sg, base);
    whole.run();
    const CheckResult unsharded = whole.result();

    std::vector<CheckResult> shards;
    for (std::uint32_t s = 0; s < 4; ++s) {
      CheckRequest req = base;
      req.shard_index = s;
      req.shard_count = 4;
      // Run a slice, checkpoint, resume in a fresh session, finish.
      CheckSession first(sg, req);
      first.advance(100);
      std::stringstream cursor;
      first.save(cursor);
      CheckSession resumed(sg, req);
      resumed.restore(cursor);
      resumed.run();
      shards.push_back(resumed.result());
    }
    const CheckResult merged =
        merge_shard_results(sg, k, PruneMode::kAuto, shards);
    expect_same_verdict(unsharded, merged, "n/k sharded merge");
    EXPECT_EQ(unsharded.fault_sets_solved, merged.fault_sets_solved);
    EXPECT_EQ(unsharded.orbits_pruned, merged.orbits_pruned);
  }
}

// Cursor v3 round-trips the engine counters (patch/rebuild/search plus
// the walk split and cache traffic); v1 and v2 cursors still restore,
// with the missing counters restarting from zero.
TEST(SolverDifferential, CursorCarriesSolverCountersAcrossResume) {
  const SolutionGraph sg = kgd::make_g3k(5);
  CheckRequest req;
  req.mode = CheckMode::kExhaustive;
  req.max_faults = 5;

  CheckSession first(sg, req);
  first.advance(200);
  const SolverCounters before = first.solver_totals();
  EXPECT_GT(before.patches + before.rebuilds, 0u);
  std::stringstream cursor;
  first.save(cursor);
  EXPECT_NE(cursor.str().find("kgdp-check-cursor 3"), std::string::npos);
  EXPECT_NE(cursor.str().find("solver "), std::string::npos);
  EXPECT_NE(cursor.str().find("cache "), std::string::npos);

  CheckSession resumed(sg, req);
  resumed.restore(cursor);
  resumed.run();
  const SolverCounters total = resumed.solver_totals();
  // Work done before the checkpoint is carried, not lost.
  EXPECT_GE(total.patches + total.rebuilds,
            before.patches + before.rebuilds);
  EXPECT_GE(total.walk_hits + total.walk_fallbacks,
            before.walk_hits + before.walk_fallbacks);
  const CheckResult res = resumed.result();
  EXPECT_EQ(res.solver_patches + res.solver_rebuilds, res.fault_sets_solved);

  // v2 acceptance: downgrade the header, truncate the solver line to its
  // v2 three fields, and drop the cache line.
  std::string v2 = cursor.str();
  v2.replace(v2.find("kgdp-check-cursor 3"), 19, "kgdp-check-cursor 2");
  {
    const auto pos = v2.find("\nsolver ");
    ASSERT_NE(pos, std::string::npos);
    std::istringstream fields(v2.substr(pos + 8));
    std::uint64_t p = 0, r = 0, s = 0;
    fields >> p >> r >> s;
    const auto line_end = v2.find('\n', pos + 1);
    v2.replace(pos + 1, line_end - pos - 1,
               "solver " + std::to_string(p) + ' ' + std::to_string(r) +
                   ' ' + std::to_string(s));
    const auto cpos = v2.find("\ncache ");
    ASSERT_NE(cpos, std::string::npos);
    v2.erase(cpos + 1, v2.find('\n', cpos + 1) - cpos);
  }
  std::stringstream v2s(v2);
  CheckSession mid(sg, req);
  mid.restore(v2s);
  mid.run();
  expect_same_verdict(resumed.result(), mid.result(), "v2 cursor");

  // v1 acceptance: strip the solver and cache lines, downgrade header.
  std::string v1 = cursor.str();
  v1.replace(v1.find("kgdp-check-cursor 3"), 19, "kgdp-check-cursor 1");
  for (const char* line : {"\nsolver ", "\ncache "}) {
    const auto pos = v1.find(line);
    ASSERT_NE(pos, std::string::npos);
    v1.erase(pos + 1, v1.find('\n', pos + 1) - pos);
  }
  std::stringstream old(v1);
  CheckSession legacy(sg, req);
  legacy.restore(old);
  legacy.run();
  expect_same_verdict(resumed.result(), legacy.result(), "v1 cursor");
}

}  // namespace
}  // namespace kgdp::verify
