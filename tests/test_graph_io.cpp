#include "io/graph_io.hpp"

#include <gtest/gtest.h>

#include "kgd/factory.hpp"
#include "kgd/small_n.hpp"
#include "verify/checker.hpp"

namespace kgdp::io {
namespace {

TEST(GraphIo, RoundTripsEveryConstructionKind) {
  for (auto [n, k] : std::vector<std::pair<int, int>>{
           {1, 2}, {2, 3}, {3, 4}, {8, 2}, {7, 3}, {14, 4}}) {
    const auto sg = kgd::build_solution(n, k);
    ASSERT_TRUE(sg);
    const kgd::SolutionGraph back =
        load_solution_string(save_solution_string(*sg));
    EXPECT_EQ(back.n(), sg->n());
    EXPECT_EQ(back.k(), sg->k());
    EXPECT_EQ(back.name(), sg->name());
    EXPECT_EQ(back.roles(), sg->roles());
    EXPECT_EQ(back.graph(), sg->graph());
  }
}

TEST(GraphIo, LoadedGraphStillVerifies) {
  const auto sg = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg);
  const kgd::SolutionGraph back =
      load_solution_string(save_solution_string(*sg));
  EXPECT_TRUE(verify::run_check(back, verify::CheckRequest::exhaustive(2)).holds);
}

TEST(GraphIo, NameWithSpacesSurvives) {
  kgd::SolutionGraph named(kgd::make_g1k(1).graph(),
                           kgd::make_g1k(1).roles(), 1, 1,
                           "a name with spaces");
  const auto back = load_solution_string(save_solution_string(named));
  EXPECT_EQ(back.name(), "a name with spaces");
}

TEST(GraphIo, RejectsBadMagic) {
  EXPECT_THROW(load_solution_string("not-a-graph 1\n"),
               std::runtime_error);
}

TEST(GraphIo, RejectsBadVersion) {
  EXPECT_THROW(load_solution_string("kgdp-graph 2\nname x\n"),
               std::runtime_error);
}

TEST(GraphIo, RejectsRoleLengthMismatch) {
  const std::string text =
      "kgdp-graph 1\nname t\nparams 1 1\nnodes 3\nroles pp\nedges 0\n";
  EXPECT_THROW(load_solution_string(text), std::runtime_error);
}

TEST(GraphIo, RejectsBadRoleCharacter) {
  const std::string text =
      "kgdp-graph 1\nname t\nparams 1 1\nnodes 2\nroles pz\nedges 0\n";
  EXPECT_THROW(load_solution_string(text), std::runtime_error);
}

TEST(GraphIo, RejectsOutOfRangeEdge) {
  const std::string text =
      "kgdp-graph 1\nname t\nparams 1 1\nnodes 2\nroles pp\nedges 1\n0 5\n";
  EXPECT_THROW(load_solution_string(text), std::runtime_error);
}

TEST(GraphIo, RejectsSelfLoopAndDuplicate) {
  const std::string loop =
      "kgdp-graph 1\nname t\nparams 1 1\nnodes 2\nroles pp\nedges 1\n1 1\n";
  EXPECT_THROW(load_solution_string(loop), std::runtime_error);
  const std::string dup =
      "kgdp-graph 1\nname t\nparams 1 1\nnodes 2\nroles pp\nedges 2\n"
      "0 1\n1 0\n";
  EXPECT_THROW(load_solution_string(dup), std::runtime_error);
}

TEST(GraphIo, RejectsTruncatedEdgeList) {
  const std::string text =
      "kgdp-graph 1\nname t\nparams 1 1\nnodes 2\nroles pp\nedges 2\n0 1\n";
  EXPECT_THROW(load_solution_string(text), std::runtime_error);
}

TEST(GraphIo, JsonExportHasAllParts) {
  const auto sg = kgd::build_solution(4, 2);
  ASSERT_TRUE(sg);
  const std::string json = solution_to_json(*sg).dump();
  EXPECT_NE(json.find("\"edge_list\""), std::string::npos);
  EXPECT_NE(json.find("\"node_list\""), std::string::npos);
  EXPECT_NE(json.find("\"processor\""), std::string::npos);
  EXPECT_NE(json.find("\"n\":4"), std::string::npos);
}

}  // namespace
}  // namespace kgdp::io
