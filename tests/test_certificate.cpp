#include "verify/certificate.hpp"

#include <gtest/gtest.h>

#include "baseline/naive.hpp"
#include "fault/enumerator.hpp"
#include "kgd/factory.hpp"

namespace kgdp::verify {
namespace {

TEST(Certificate, RoundTripVerifies) {
  const auto sg = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg);
  const std::string cert = write_certificate_string(*sg, 2);
  const CertificateStats stats = check_certificate_string(cert);
  EXPECT_TRUE(stats.ok()) << stats.error;
  EXPECT_EQ(stats.entries, fault::FaultEnumerator(sg->num_nodes(), 2).total());
}

TEST(Certificate, CoversAllConstructionKinds) {
  for (auto [n, k] : std::vector<std::pair<int, int>>{
           {1, 2}, {3, 2}, {4, 3}, {5, 1}}) {
    const auto sg = kgd::build_solution(n, k);
    ASSERT_TRUE(sg);
    const auto stats =
        check_certificate_string(write_certificate_string(*sg, k));
    EXPECT_TRUE(stats.ok()) << "n=" << n << " k=" << k << ": "
                            << stats.error;
  }
}

TEST(Certificate, NonGdGraphCannotBeCertified) {
  const auto bad = baseline::make_spare_path(5, 2);
  EXPECT_THROW(write_certificate_string(bad, 2), std::runtime_error);
}

TEST(Certificate, TamperedPipelineDetected) {
  const auto sg = kgd::build_solution(4, 1);
  ASSERT_TRUE(sg);
  std::string cert = write_certificate_string(*sg, 1);
  // Corrupt the last pipeline's last node id by appending garbage swap:
  // replace the final token with an out-of-range id.
  const auto pos = cert.find_last_of(' ');
  cert.replace(pos + 1, std::string::npos, "999\n");
  const auto stats = check_certificate_string(cert);
  EXPECT_FALSE(stats.ok());
  EXPECT_FALSE(stats.error.empty());
}

TEST(Certificate, MissingEntriesDetected) {
  const auto sg = kgd::build_solution(4, 1);
  ASSERT_TRUE(sg);
  std::string cert = write_certificate_string(*sg, 1);
  // Drop the final line: truncated certificate.
  cert.erase(cert.find_last_of('\n', cert.size() - 2) + 1);
  const auto stats = check_certificate_string(cert);
  EXPECT_FALSE(stats.ok());
}

TEST(Certificate, WrongEntryCountDetected) {
  const auto sg = kgd::build_solution(4, 1);
  ASSERT_TRUE(sg);
  std::string cert = write_certificate_string(*sg, 1);
  const auto pos = cert.find("entries ");
  cert.replace(pos, cert.find('\n', pos) - pos, "entries 3");
  const auto stats = check_certificate_string(cert);
  EXPECT_FALSE(stats.ok());
  EXPECT_NE(stats.error.find("entry count"), std::string::npos);
}

TEST(Certificate, BadHeaderDetected) {
  const auto stats = check_certificate_string("not-a-cert 1\n");
  EXPECT_FALSE(stats.ok());
}

TEST(Certificate, OutOfOrderEntriesDetected) {
  const auto sg = kgd::build_solution(4, 1);
  ASSERT_TRUE(sg);
  std::string cert = write_certificate_string(*sg, 1);
  // Swap the last two entry lines to break canonical order.
  const auto last_nl = cert.rfind('\n', cert.size() - 2);
  const auto prev_nl = cert.rfind('\n', last_nl - 1);
  const std::string last_line = cert.substr(last_nl + 1);
  const std::string prev_line =
      cert.substr(prev_nl + 1, last_nl - prev_nl);
  cert = cert.substr(0, prev_nl + 1) + last_line;
  if (cert.back() != '\n') cert += '\n';
  cert += prev_line;
  const auto stats = check_certificate_string(cert);
  EXPECT_FALSE(stats.ok());
}

}  // namespace
}  // namespace kgdp::verify
