// Randomized differential testing: the Graph class against a naive
// adjacency-matrix reference model, and the Hamiltonian DFS against the
// exact DP on random instances.
#include <gtest/gtest.h>

#include <set>

#include "graph/graph.hpp"
#include "graph/hamiltonian.hpp"
#include "graph/properties.hpp"
#include "util/rng.hpp"

namespace kgdp::graph {
namespace {

// Reference model: plain boolean matrix.
class RefGraph {
 public:
  explicit RefGraph(int n) : n_(n), m_(n * n, false) {}
  bool has(int u, int v) const { return m_[u * n_ + v]; }
  void add(int u, int v) { m_[u * n_ + v] = m_[v * n_ + u] = true; }
  void remove(int u, int v) { m_[u * n_ + v] = m_[v * n_ + u] = false; }
  int degree(int u) const {
    int d = 0;
    for (int v = 0; v < n_; ++v) d += m_[u * n_ + v];
    return d;
  }
  std::size_t edges() const {
    std::size_t e = 0;
    for (int u = 0; u < n_; ++u) {
      for (int v = u + 1; v < n_; ++v) e += m_[u * n_ + v];
    }
    return e;
  }

 private:
  int n_;
  std::vector<bool> m_;
};

TEST(GraphFuzz, RandomOpSequencesMatchReferenceModel) {
  util::Rng rng(0xfacade);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 + static_cast<int>(rng.next_below(20));
    Graph g(n);
    RefGraph ref(n);
    for (int op = 0; op < 200; ++op) {
      const int u = static_cast<int>(rng.next_below(n));
      const int v = static_cast<int>(rng.next_below(n));
      if (rng.next_bool(0.7)) {
        if (g.can_add_edge(u, v)) {
          g.add_edge(u, v);
          ref.add(u, v);
        }
      } else if (u != v && g.has_edge(u, v)) {
        g.remove_edge(u, v);
        ref.remove(u, v);
      }
    }
    // Full-state comparison.
    ASSERT_EQ(g.num_edges(), ref.edges()) << "trial " << trial;
    for (int u = 0; u < n; ++u) {
      ASSERT_EQ(g.degree(u), ref.degree(u));
      for (int v = 0; v < n; ++v) {
        ASSERT_EQ(g.has_edge(u, v), ref.has(u, v));
      }
    }
    // Neighbor lists stay sorted and deduplicated.
    EXPECT_TRUE(is_simple(g));
    // Edge list round-trips through from_edges.
    EXPECT_EQ(from_edges(n, g.edges()), g);
  }
}

TEST(GraphFuzz, InducedSubgraphMatchesReference) {
  util::Rng rng(0xbeef);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(15));
    Graph g(n);
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.next_bool(0.4)) g.add_edge(u, v);
      }
    }
    util::DynamicBitset keep(n);
    for (int v = 0; v < n; ++v) keep.set(v, rng.next_bool(0.6));
    std::vector<Node> map;
    const Graph sub = g.induced_subgraph(keep, &map);
    // Every kept pair must preserve adjacency exactly.
    for (int u = 0; u < n; ++u) {
      for (int v = 0; v < n; ++v) {
        if (keep.test(u) && keep.test(v) && u != v) {
          ASSERT_EQ(sub.has_edge(map[u], map[v]), g.has_edge(u, v));
        }
      }
    }
    ASSERT_EQ(sub.num_nodes(), static_cast<int>(keep.count()));
  }
}

TEST(HamiltonianFuzz, DfsMatchesDpOnRandomEndpointSets) {
  util::Rng rng(0xcafe);
  for (int trial = 0; trial < 60; ++trial) {
    const int n = 4 + static_cast<int>(rng.next_below(10));
    Graph g(n);
    const double p = 0.2 + rng.next_double() * 0.5;
    for (int u = 0; u < n; ++u) {
      for (int v = u + 1; v < n; ++v) {
        if (rng.next_bool(p)) g.add_edge(u, v);
      }
    }
    util::DynamicBitset starts(n), ends(n);
    for (int v = 0; v < n; ++v) {
      starts.set(v, rng.next_bool(0.5));
      ends.set(v, rng.next_bool(0.5));
    }
    if (starts.none()) starts.set(0);
    if (ends.none()) ends.set(n - 1);

    HamiltonianOptions exact;  // DFS with restarts, exact
    const auto dfs_res = hamiltonian_path(g, starts, ends, exact);
    HamiltonianOptions force_dp;
    force_dp.dfs_budget = 1;  // immediately defer to the DP
    const auto dp_res = hamiltonian_path(g, starts, ends, force_dp);

    ASSERT_NE(dfs_res.status, HamResult::kUnknown);
    ASSERT_NE(dp_res.status, HamResult::kUnknown);
    EXPECT_EQ(dfs_res.status, dp_res.status)
        << "trial " << trial << " n=" << n;
    if (dfs_res.status == HamResult::kFound) {
      EXPECT_TRUE(is_hamiltonian_path(g, dfs_res.path));
      EXPECT_TRUE(starts.test(dfs_res.path.front()));
      EXPECT_TRUE(ends.test(dfs_res.path.back()));
    }
  }
}

TEST(HamiltonianFuzz, SparseNegativesProvenQuickly) {
  // Trees never have Hamiltonian paths unless they ARE paths; the solver
  // must prove absence (never hang, never report unknown in exact mode).
  util::Rng rng(0xdead);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 6 + static_cast<int>(rng.next_below(12));
    Graph g(n);
    // Random tree via random attachment, then add one extra leaf branch
    // to guarantee a degree-3 node (so it is not a path).
    for (int v = 1; v < n; ++v) {
      g.add_edge(v, static_cast<int>(rng.next_below(v)));
    }
    int branching = -1;
    for (int v = 0; v < n; ++v) {
      if (g.degree(v) >= 3) {
        branching = v;
        break;
      }
    }
    if (branching < 0) continue;  // happened to be a path: skip
    util::DynamicBitset all(n, true);
    const auto res = hamiltonian_path(g, all, all);
    EXPECT_EQ(res.status, HamResult::kNone);
  }
}

}  // namespace
}  // namespace kgdp::graph
