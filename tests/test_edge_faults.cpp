#include "fault/edge_faults.hpp"

#include <gtest/gtest.h>

#include "kgd/factory.hpp"
#include "kgd/small_n.hpp"

namespace kgdp::fault {
namespace {

using graph::Edge;
using kgd::FaultSet;
using kgd::Role;

TEST(CoverEdgeFaults, CoversEveryEdge) {
  const auto sg = kgd::make_g1k(3);
  const auto edges = sg.graph().edges();
  EdgeList bad = {edges[0], edges[3], edges[5]};
  const FaultSet cover = cover_edge_faults(sg, bad);
  for (auto [u, v] : bad) {
    EXPECT_TRUE(cover.contains(u) || cover.contains(v));
  }
  EXPECT_LE(cover.size(), 3);
}

TEST(CoverEdgeFaults, SharedEndpointCollapsesCover) {
  // Two faulty edges meeting at one node need only that node.
  const auto sg = kgd::make_g1k(2);
  const auto procs = sg.processors();
  EdgeList bad = {{procs[0], procs[1]}, {procs[0], procs[2]}};
  const FaultSet cover = cover_edge_faults(sg, bad);
  EXPECT_EQ(cover.size(), 1);
  EXPECT_TRUE(cover.contains(procs[0]));
}

TEST(CoverEdgeFaults, PrefersTerminalsOnTies) {
  // A single faulty terminal attachment: cover should pick the terminal,
  // not the processor.
  const auto sg = kgd::make_g1k(2);
  const auto ins = sg.inputs();
  const auto p = sg.graph().neighbors(ins[0])[0];
  const FaultSet cover = cover_edge_faults(sg, {{ins[0], p}});
  EXPECT_EQ(cover.size(), 1);
  EXPECT_TRUE(cover.contains(ins[0]));
}

TEST(CoverEdgeFaults, EmptyEdgeList) {
  const auto sg = kgd::make_g1k(1);
  EXPECT_EQ(cover_edge_faults(sg, {}).size(), 0);
}

TEST(RemoveEdges, DeletesOnlyTheGivenEdges) {
  const auto sg = kgd::make_g1k(2);
  const auto edges = sg.graph().edges();
  const auto cut = remove_edges(sg, {edges[0]});
  EXPECT_EQ(cut.graph().num_edges(), sg.graph().num_edges() - 1);
  EXPECT_FALSE(cut.graph().has_edge(edges[0].first, edges[0].second));
  EXPECT_EQ(cut.num_nodes(), sg.num_nodes());
}

TEST(DirectEdgeFaults, PipelineAvoidsDeadLinks) {
  const auto sg = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg);
  // Kill one processor-processor edge; a full-utilization pipeline must
  // still exist (the design has slack).
  const auto procs = sg->processors();
  Edge victim{-1, -1};
  for (auto e : sg->graph().edges()) {
    if (sg->role(e.first) == Role::kProcessor &&
        sg->role(e.second) == Role::kProcessor) {
      victim = e;
      break;
    }
  }
  ASSERT_GE(victim.first, 0);
  const auto pipeline = find_pipeline_with_edge_faults(
      *sg, {victim}, FaultSet::none(sg->num_nodes()));
  ASSERT_TRUE(pipeline.has_value());
  // All n + k processors still used.
  EXPECT_EQ(pipeline->num_processors(), 8);
  // And the path indeed avoids the dead link.
  for (std::size_t i = 0; i + 1 < pipeline->path.size(); ++i) {
    const Edge step{std::min(pipeline->path[i], pipeline->path[i + 1]),
                    std::max(pipeline->path[i], pipeline->path[i + 1])};
    EXPECT_NE(step, victim);
  }
}

TEST(DirectEdgeFaults, CombinesWithNodeFaults) {
  const auto sg = kgd::build_solution(8, 2);
  ASSERT_TRUE(sg);
  const auto procs = sg->processors();
  const auto edges = sg->graph().edges();
  const FaultSet nodes(sg->num_nodes(), {procs[1]});
  const auto pipeline =
      find_pipeline_with_edge_faults(*sg, {edges[2]}, nodes);
  if (pipeline) {
    EXPECT_TRUE(kgd::check_pipeline(remove_edges(*sg, {edges[2]}), nodes,
                                    pipeline->path)
                    .ok);
  }
}

TEST(EdgeTolerance, SingleEdgeFaultsAlwaysReducible) {
  // One faulty link -> cover of size 1 <= k: the reduction must succeed
  // for every single edge of a k-GD graph (k >= 1).
  for (auto [n, k] : std::vector<std::pair<int, int>>{{4, 1}, {6, 2},
                                                      {4, 3}}) {
    const auto sg = kgd::build_solution(n, k);
    ASSERT_TRUE(sg);
    const auto rep = check_edge_tolerance_exhaustive(*sg, 1);
    EXPECT_TRUE(rep.reduced_holds()) << "n=" << n << " k=" << k;
    EXPECT_EQ(rep.edge_sets_checked,
              1 + sg->graph().num_edges());  // empty set + each edge
  }
}

TEST(EdgeTolerance, DirectBeatsReductionOnUtilization) {
  // Where both succeed, the direct pipeline uses all n+k processors
  // while the reduction burns one per covered processor endpoint; check
  // the direct count is never below the reduced count.
  const auto sg = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg);
  const auto rep = check_edge_tolerance_exhaustive(*sg, 1);
  EXPECT_GE(rep.direct_tolerated, rep.reduced_tolerated);
}

TEST(EdgeTolerance, KEdgeFaultsWithinDesignBudget) {
  const auto sg = kgd::build_solution(6, 2);
  ASSERT_TRUE(sg);
  const auto rep = check_edge_tolerance_exhaustive(*sg, 2);
  // Hayes's argument: any j <= k edge faults reduce to <= j node faults,
  // which a k-GD graph tolerates by definition.
  EXPECT_TRUE(rep.reduced_holds());
}

}  // namespace
}  // namespace kgdp::fault
