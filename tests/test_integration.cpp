// End-to-end scenarios crossing every layer: construction -> fault
// injection -> reconfiguration -> verified pipeline -> stream processing.
#include <gtest/gtest.h>

#include "baseline/compare.hpp"
#include "baseline/naive.hpp"
#include "fault/fault_model.hpp"
#include "kgd/factory.hpp"
#include "kgd/merge.hpp"
#include "sim/machine.hpp"
#include "sim/stages_dsp.hpp"
#include "util/rng.hpp"
#include "verify/checker.hpp"
#include "verify/pipeline_solver.hpp"

namespace kgdp {
namespace {

using kgd::FaultSet;
using kgd::SolutionGraph;

TEST(Integration, RandomFaultCampaignOnEveryFamily) {
  // For a grid of (n, k): inject random fault sets up to k and require a
  // certified pipeline every single time.
  util::Rng rng(2024);
  verify::PipelineSolver solver;
  for (int k = 1; k <= 3; ++k) {
    for (int n : {4, 7, 10, 15}) {
      const auto sg = kgd::build_solution(n, k);
      ASSERT_TRUE(sg);
      for (int trial = 0; trial < 40; ++trial) {
        const int f = static_cast<int>(rng.next_below(k + 1));
        const FaultSet fs =
            fault::draw_faults(*sg, f, fault::FaultPolicy::kUniform, rng);
        const auto out = solver.solve(*sg, fs);
        ASSERT_EQ(out.status, verify::SolveStatus::kFound)
            << "n=" << n << " k=" << k << " faults " << fs.to_string();
        EXPECT_TRUE(kgd::check_pipeline(*sg, fs, out.pipeline->path).ok);
      }
    }
  }
}

TEST(Integration, AdversarialCampaignOnAsymptotic) {
  const auto sg = kgd::build_solution(18, 4);
  ASSERT_TRUE(sg);
  verify::PipelineSolver solver;
  for (const FaultSet& fs : fault::adversarial_suite(*sg, 4, 2000)) {
    ASSERT_EQ(solver.solve(*sg, fs).status, verify::SolveStatus::kFound)
        << fs.to_string();
  }
}

TEST(Integration, MachineSurvivesSequentialFaultStorm) {
  // Kill k nodes one at a time on a k=3 machine, remapping after each;
  // stream output must track the fault-free reference throughout.
  auto sg = kgd::build_solution(9, 3);
  ASSERT_TRUE(sg);
  sim::PipelineMachine machine(*sg, sim::make_video_pipeline());
  sim::StageList ref = sim::make_video_pipeline();

  util::Rng rng(5);
  const auto procs = sg->processors();
  std::vector<int> order(procs.begin(), procs.end());
  rng.shuffle(order);

  for (int round = 0; round < 4; ++round) {
    const sim::Chunk sig = sim::make_test_signal(256, 100 + round);
    EXPECT_EQ(machine.process(sig), sim::run_sequential(ref, sig))
        << "round " << round;
    if (round < 3) {
      ASSERT_TRUE(machine.inject_fault(order[round]));
      ASSERT_TRUE(machine.reconfigure()) << "round " << round;
    }
  }
  EXPECT_EQ(machine.fault_count(), 3);
}

TEST(Integration, MergedModelSurvivesProcessorCampaign) {
  const auto base = kgd::build_solution(8, 2);
  ASSERT_TRUE(base);
  const SolutionGraph merged = kgd::merge_terminals(*base);
  util::Rng rng(7);
  verify::PipelineSolver solver;
  for (int trial = 0; trial < 60; ++trial) {
    const FaultSet fs = fault::draw_faults(
        merged, 2, fault::FaultPolicy::kProcessorsOnly, rng);
    ASSERT_EQ(solver.solve(merged, fs).status, verify::SolveStatus::kFound);
  }
}

TEST(Integration, PaperHeadlineComparison) {
  // The qualitative result a reader should reproduce: on identical (n,k),
  // the paper's graph tolerates everything up to k using all healthy
  // processors; the spare path collapses; the complete design works but
  // pays quadratic edges.
  const int n = 8, k = 2;
  const auto ours = kgd::build_solution(n, k);
  ASSERT_TRUE(ours);
  const auto spare = baseline::make_spare_path(n, k);
  const auto complete = baseline::make_complete_design(n, k);

  EXPECT_TRUE(verify::run_check(*ours, verify::CheckRequest::exhaustive(k)).holds);
  EXPECT_FALSE(verify::run_check(spare, verify::CheckRequest::exhaustive(k)).holds);
  EXPECT_TRUE(verify::run_check(complete, verify::CheckRequest::exhaustive(k)).holds);

  const auto m_ours = baseline::metrics_for(*ours);
  const auto m_complete = baseline::metrics_for(complete);
  EXPECT_LT(m_ours.max_processor_degree, m_complete.max_processor_degree);
  EXPECT_LT(m_ours.edges, m_complete.edges);
}

TEST(Integration, DotExportsForFigureRegeneration) {
  // Regenerate the paper's figure objects as DOT and sanity-check them.
  for (auto [n, k] : std::vector<std::pair<int, int>>{
           {3, 2}, {3, 3}, {6, 2}, {8, 2}, {7, 3}, {4, 3}, {22, 4},
           {26, 5}}) {
    const auto sg = kgd::build_solution(n, k);
    ASSERT_TRUE(sg) << n << "," << k;
    const std::string dot = sg->to_dot();
    EXPECT_NE(dot.find("graph"), std::string::npos);
    // Every node present.
    EXPECT_NE(dot.find("n" + std::to_string(sg->num_nodes() - 1)),
              std::string::npos);
  }
}

TEST(Integration, ReconfigurationIsDeterministic) {
  const auto sg = kgd::build_solution(12, 3);
  ASSERT_TRUE(sg);
  const FaultSet fs(sg->num_nodes(), {1, 5, 9});
  const auto a = verify::find_pipeline(*sg, fs);
  const auto b = verify::find_pipeline(*sg, fs);
  ASSERT_EQ(a.status, verify::SolveStatus::kFound);
  EXPECT_EQ(a.pipeline->path, b.pipeline->path);
}

}  // namespace
}  // namespace kgdp
