#include "kgd/asymptotic.hpp"

#include <gtest/gtest.h>

#include "kgd/bounds.hpp"
#include "verify/checker.hpp"

namespace kgdp::kgd {
namespace {

TEST(Asymptotic, Figure14NodeCensus) {
  AsymptoticInfo info;
  const SolutionGraph sg = make_asymptotic_gnk(22, 4, &info);
  // n + 3k + 2 nodes total.
  EXPECT_EQ(sg.num_nodes(), 22 + 3 * 4 + 2);
  EXPECT_EQ(sg.num_inputs(), 5);
  EXPECT_EQ(sg.num_outputs(), 5);
  EXPECT_EQ(sg.num_processors(), 26);
  EXPECT_TRUE(sg.is_standard());
  EXPECT_EQ(info.m, 22 - 4 - 2);
  EXPECT_EQ(info.p, 2);
  EXPECT_FALSE(info.has_bisector);
}

TEST(Asymptotic, Figure15HasBisectors) {
  AsymptoticInfo info;
  const SolutionGraph sg = make_asymptotic_gnk(26, 5, &info);
  EXPECT_TRUE(info.has_bisector);
  EXPECT_EQ(info.m, 26 - 5 - 2);
  EXPECT_EQ(info.bisector_offset, info.m / 2);
  EXPECT_TRUE(sg.is_standard());
}

TEST(Asymptotic, DegreeClaimKEvenUniform) {
  // "if k is even ... each node in I ∪ O ∪ C has degree k+2".
  for (int k : {4, 6}) {
    for (int n : {2 * k + 5, 2 * k + 6, 3 * k + 7}) {
      AsymptoticInfo info;
      const SolutionGraph sg = make_asymptotic_gnk(n, k, &info);
      for (Node v = 0; v < sg.num_nodes(); ++v) {
        if (sg.role(v) == Role::kProcessor) {
          EXPECT_EQ(sg.graph().degree(v), k + 2)
              << "n=" << n << " k=" << k << " node " << v;
        }
      }
    }
  }
}

TEST(Asymptotic, DegreeClaimBothOddUniform) {
  for (int k : {5, 7}) {
    for (int n : {2 * k + 5, 2 * k + 7}) {
      if (n % 2 == 0) continue;
      const SolutionGraph sg = make_asymptotic_gnk(n, k);
      EXPECT_EQ(sg.min_processor_degree(), k + 2) << "n=" << n << " k=" << k;
      EXPECT_EQ(sg.max_processor_degree(), k + 2) << "n=" << n << " k=" << k;
    }
  }
}

TEST(Asymptotic, DegreeClaimNEvenKOddIsKPlus3) {
  for (int k : {5, 7}) {
    for (int n : {2 * k + 6, 2 * k + 8}) {
      const SolutionGraph sg = make_asymptotic_gnk(n, k);
      EXPECT_EQ(sg.max_processor_degree(), k + 3) << "n=" << n << " k=" << k;
      EXPECT_EQ(sg.max_processor_degree(), max_degree_lower_bound(n, k));
    }
  }
}

TEST(Asymptotic, ExtendedGraphIsRegularSuperset) {
  AsymptoticInfo info;
  const SolutionGraph ext = make_extended_gnk(22, 4, &info);
  // G'(n,k) has n + 3k + 6 nodes: four more than G(n,k).
  EXPECT_EQ(ext.num_nodes(), 22 + 3 * 4 + 6);
  EXPECT_EQ(ext.num_inputs(), 6);
  EXPECT_EQ(ext.num_outputs(), 6);
}

TEST(Asymptotic, NodeClassSizes) {
  AsymptoticInfo info;
  make_asymptotic_gnk(22, 4, &info);
  int counts[6] = {0, 0, 0, 0, 0, 0};
  for (auto cls : info.node_class) ++counts[static_cast<int>(cls)];
  EXPECT_EQ(counts[static_cast<int>(AsymptoticClass::kTi)], 5);
  EXPECT_EQ(counts[static_cast<int>(AsymptoticClass::kTo)], 5);
  EXPECT_EQ(counts[static_cast<int>(AsymptoticClass::kI)], 5);
  EXPECT_EQ(counts[static_cast<int>(AsymptoticClass::kO)], 5);
  EXPECT_EQ(counts[static_cast<int>(AsymptoticClass::kS)], 6);   // k+2
  EXPECT_EQ(counts[static_cast<int>(AsymptoticClass::kR)], 10);  // n-2k-4
}

TEST(Asymptotic, UnitSEdgesDeleted) {
  AsymptoticInfo info;
  const SolutionGraph sg = make_asymptotic_gnk(22, 4, &info);
  // Consecutive-label S nodes must NOT be adjacent in G(n,k)...
  std::vector<Node> s_by_label(info.m, -1);
  for (Node v = 0; v < sg.num_nodes(); ++v) {
    if (info.node_class[v] == AsymptoticClass::kS) {
      s_by_label[info.label[v]] = v;
    }
  }
  for (int x = 0; x + 1 <= 5; ++x) {
    ASSERT_GE(s_by_label[x], 0);
    if (x + 1 <= 5) {
      EXPECT_FALSE(sg.graph().has_edge(s_by_label[x], s_by_label[x + 1]));
    }
  }
  // ...but they ARE adjacent in the extended graph.
  AsymptoticInfo einfo;
  const SolutionGraph ext = make_extended_gnk(22, 4, &einfo);
  std::vector<Node> es_by_label(einfo.m, -1);
  for (Node v = 0; v < ext.num_nodes(); ++v) {
    if (einfo.node_class[v] == AsymptoticClass::kS) {
      es_by_label[einfo.label[v]] = v;
    }
  }
  EXPECT_TRUE(ext.graph().has_edge(es_by_label[0], es_by_label[1]));
}

TEST(Asymptotic, SmallestWellFormedInstancesAreGd) {
  // Exhaustive certification at the small end of the legal range.
  for (int k : {4, 5}) {
    const int n = asymptotic_min_n(k);
    const SolutionGraph sg = make_asymptotic_gnk(n, k);
    const auto res = verify::run_check(sg, verify::CheckRequest::exhaustive(k));
    EXPECT_TRUE(res.holds)
        << "n=" << n << " k=" << k << " cex "
        << (res.counterexample ? res.counterexample->to_string() : "");
  }
}

TEST(Asymptotic, Figure14InstanceExhaustivelyCertified) {
  // The paper's flagship example: all 66,712 fault sets of size <= 4.
  const SolutionGraph sg = make_asymptotic_gnk(22, 4);
  const auto res = verify::run_check(sg, verify::CheckRequest::exhaustive(4));
  EXPECT_TRUE(res.holds);
  EXPECT_EQ(res.fault_sets_checked, 66712u);
  EXPECT_EQ(res.solver_unknowns, 0u);
}

TEST(Asymptotic, MinNFormula) {
  EXPECT_EQ(asymptotic_min_n(4), 13);
  EXPECT_EQ(asymptotic_min_n(5), 15);
  EXPECT_EQ(asymptotic_min_n(10), 25);
}

TEST(Asymptotic, LargeInstanceStructurallySound) {
  const SolutionGraph sg = make_asymptotic_gnk(200, 8);
  EXPECT_TRUE(sg.is_standard());
  EXPECT_EQ(sg.max_processor_degree(), 10);
  EXPECT_TRUE(audit_bounds(sg).empty());
}

}  // namespace
}  // namespace kgdp::kgd
