#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace kgdp::util {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(3);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, NextIntInclusiveBounds) {
  Rng rng(11);
  bool hit_lo = false, hit_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.next_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    hit_lo |= (v == -3);
    hit_hi |= (v == 3);
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, SampleWithoutReplacementIsASortedKSubset) {
  Rng rng(13);
  for (int trial = 0; trial < 200; ++trial) {
    const auto s = rng.sample_without_replacement(20, 7);
    ASSERT_EQ(s.size(), 7u);
    EXPECT_TRUE(std::is_sorted(s.begin(), s.end()));
    EXPECT_TRUE(std::adjacent_find(s.begin(), s.end()) == s.end());
    EXPECT_GE(s.front(), 0);
    EXPECT_LT(s.back(), 20);
  }
}

TEST(Rng, SampleFullSet) {
  Rng rng(17);
  const auto s = rng.sample_without_replacement(5, 5);
  EXPECT_EQ(s, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Rng, SampleZero) {
  Rng rng(17);
  EXPECT_TRUE(rng.sample_without_replacement(5, 0).empty());
}

TEST(Rng, ShufflePermutes) {
  Rng rng(23);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // astronomically unlikely to be identity
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

}  // namespace
}  // namespace kgdp::util
