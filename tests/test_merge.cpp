#include "kgd/merge.hpp"

#include <gtest/gtest.h>

#include "kgd/factory.hpp"
#include "kgd/small_n.hpp"
#include "verify/checker.hpp"
#include "verify/pipeline_solver.hpp"

namespace kgdp::kgd {
namespace {

TEST(Merge, SingleTerminalsOfEachKind) {
  const SolutionGraph merged = merge_terminals(make_g1k(3));
  EXPECT_EQ(merged.num_inputs(), 1);
  EXPECT_EQ(merged.num_outputs(), 1);
  EXPECT_EQ(merged.num_processors(), 4);
}

TEST(Merge, TerminalDegreeIsKPlus1) {
  // §3: after merging, each terminal has degree exactly k+1 — the
  // minimum possible (fewer neighbors could all be killed by k faults).
  for (int k = 1; k <= 4; ++k) {
    const SolutionGraph merged = merge_terminals(make_g1k(k));
    for (Node t : merged.inputs()) {
      EXPECT_EQ(merged.graph().degree(t), k + 1);
    }
    for (Node t : merged.outputs()) {
      EXPECT_EQ(merged.graph().degree(t), k + 1);
    }
  }
}

TEST(Merge, ProcessorSubgraphUnchanged) {
  const SolutionGraph base = make_g2k(2);
  const SolutionGraph merged = merge_terminals(base);
  // Same processor count and the processor-processor edges survive.
  EXPECT_EQ(merged.num_processors(), base.num_processors());
  std::size_t base_pp = 0, merged_pp = 0;
  for (auto [u, v] : base.graph().edges()) {
    if (base.role(u) == Role::kProcessor && base.role(v) == Role::kProcessor) {
      ++base_pp;
    }
  }
  for (auto [u, v] : merged.graph().edges()) {
    if (merged.role(u) == Role::kProcessor &&
        merged.role(v) == Role::kProcessor) {
      ++merged_pp;
    }
  }
  EXPECT_EQ(base_pp, merged_pp);
}

TEST(Merge, ToleratesProcessorFaultsWithFaultFreeTerminals) {
  // The merged model assumes fault-free I/O devices; check that every
  // processor-only fault set still leaves a pipeline.
  for (int k = 1; k <= 3; ++k) {
    const SolutionGraph merged = merge_terminals(make_g1k(k));
    verify::PipelineSolver solver;
    bool all_ok = true;
    // Enumerate processor-only fault sets of size <= k.
    const auto procs = merged.processors();
    std::vector<int> idx(procs.size());
    std::function<void(std::size_t, std::vector<Node>&)> rec =
        [&](std::size_t from, std::vector<Node>& chosen) {
          if (chosen.size() <= static_cast<std::size_t>(k) &&
              !chosen.empty()) {
            const FaultSet fs(merged.num_nodes(), chosen);
            all_ok &= solver.solve(merged, fs).status ==
                      verify::SolveStatus::kFound;
          }
          if (chosen.size() == static_cast<std::size_t>(k)) return;
          for (std::size_t i = from; i < procs.size(); ++i) {
            chosen.push_back(procs[i]);
            rec(i + 1, chosen);
            chosen.pop_back();
          }
        };
    std::vector<Node> chosen;
    rec(0, chosen);
    EXPECT_TRUE(all_ok) << "k=" << k;
  }
}

TEST(Merge, WorksOnAsymptoticConstruction) {
  const auto base = build_solution(14, 4);
  ASSERT_TRUE(base.has_value());
  const SolutionGraph merged = merge_terminals(*base);
  EXPECT_EQ(merged.num_inputs(), 1);
  EXPECT_EQ(merged.graph().degree(merged.inputs()[0]), 5);
  // Spot check: unfaulted pipeline still exists.
  const auto out =
      verify::find_pipeline(merged, FaultSet::none(merged.num_nodes()));
  EXPECT_EQ(out.status, verify::SolveStatus::kFound);
}

TEST(Merge, NamesPreserved) {
  const SolutionGraph merged = merge_terminals(make_g1k(1));
  EXPECT_EQ(merged.node_names()[merged.inputs()[0]], "i");
  EXPECT_EQ(merged.node_names()[merged.outputs()[0]], "o");
}

}  // namespace
}  // namespace kgdp::kgd
