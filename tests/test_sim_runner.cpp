#include "sim/runner.hpp"

#include <gtest/gtest.h>

#include <thread>

#include "sim/stages_dsp.hpp"

namespace kgdp::sim {
namespace {

std::vector<Chunk> chunked_signal(std::size_t chunks, std::size_t size,
                                  std::uint64_t seed) {
  std::vector<Chunk> out;
  for (std::size_t c = 0; c < chunks; ++c) {
    out.push_back(make_test_signal(size, seed + c));
  }
  return out;
}

TEST(ChunkChannel, FifoOrder) {
  ChunkChannel ch(4);
  ch.push({1});
  ch.push({2});
  EXPECT_EQ(ch.pop()->front(), 1);
  EXPECT_EQ(ch.pop()->front(), 2);
}

TEST(ChunkChannel, CloseReleasesConsumer) {
  ChunkChannel ch(2);
  std::thread t([&] { ch.close(); });
  EXPECT_EQ(ch.pop(), std::nullopt);
  t.join();
}

TEST(ChunkChannel, BoundedCapacityBlocksProducer) {
  ChunkChannel ch(1);
  ch.push({1});
  std::atomic<bool> second_pushed{false};
  std::thread t([&] {
    ch.push({2});
    second_pushed = true;
  });
  // Give the producer a moment: it must be blocked on the full queue.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_pushed.load());
  EXPECT_EQ(ch.pop()->front(), 1);
  t.join();
  EXPECT_TRUE(second_pushed.load());
  EXPECT_EQ(ch.pop()->front(), 2);
}

TEST(ThreadedRunner, MatchesSequentialExecution) {
  const auto inputs = chunked_signal(16, 256, 77);
  StageList seq = make_video_pipeline();
  std::vector<Chunk> want;
  for (const Chunk& c : inputs) want.push_back(run_sequential(seq, c));
  // run_sequential applies all stages per chunk; redo properly: the
  // sequential reference must stream chunk by chunk through ONE stage
  // list, which run_sequential already does statefully.
  ThreadedPipelineRunner runner(make_video_pipeline());
  const auto got = runner.run(inputs);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i], want[i]) << "chunk " << i;
  }
}

TEST(ThreadedRunner, EmptyInput) {
  ThreadedPipelineRunner runner(make_video_pipeline());
  EXPECT_TRUE(runner.run({}).empty());
}

TEST(ThreadedRunner, NoStagesIsIdentity) {
  ThreadedPipelineRunner runner(StageList{});
  const auto inputs = chunked_signal(3, 16, 5);
  EXPECT_EQ(runner.run(inputs), inputs);
}

TEST(ThreadedRunner, SingleStage) {
  StageList stages;
  stages.push_back(std::make_unique<Rescale>(2.0, 0.0));
  ThreadedPipelineRunner runner(std::move(stages));
  const auto got = runner.run({{1.0f, 2.0f}});
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], (Chunk{2.0f, 4.0f}));
}

TEST(ThreadedRunner, ManyChunksSmallQueue) {
  // Stress the backpressure path with a tiny queue.
  StageList stages = make_video_pipeline();
  ThreadedPipelineRunner runner(std::move(stages), /*queue_capacity=*/1);
  const auto inputs = chunked_signal(64, 64, 123);
  const auto got = runner.run(inputs);
  EXPECT_EQ(got.size(), 64u);
}

TEST(ThreadedRunner, PreservesChunkBoundaries) {
  StageList stages;
  stages.push_back(std::make_unique<PassThrough>());
  ThreadedPipelineRunner runner(std::move(stages));
  const auto inputs = chunked_signal(5, 10, 9);
  const auto got = runner.run(inputs);
  ASSERT_EQ(got.size(), 5u);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(got[i], inputs[i]);
}

}  // namespace
}  // namespace kgdp::sim
