#include "graph/automorphism.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "kgd/small_n.hpp"

namespace kgdp::graph {
namespace {

std::uint64_t factorial(int n) {
  std::uint64_t r = 1;
  for (int i = 2; i <= n; ++i) r *= i;
  return r;
}

// Closure of the generators by repeated multiplication; lets the tests
// verify that the strong generating set really generates |Aut| elements.
std::uint64_t generated_order(const AutomorphismList& autos, int n) {
  std::vector<Permutation> group;
  Permutation id(n);
  for (int i = 0; i < n; ++i) id[i] = i;
  group.push_back(id);
  bool grew = true;
  while (grew) {
    grew = false;
    for (std::size_t gi = 0; gi < group.size(); ++gi) {
      for (const Permutation& g : autos.generators) {
        Permutation prod(n);
        for (int i = 0; i < n; ++i) prod[i] = g[group[gi][i]];
        if (std::find(group.begin(), group.end(), prod) == group.end()) {
          group.push_back(prod);
          grew = true;
        }
      }
    }
  }
  return group.size();
}

TEST(Automorphism, PathHasOrderTwo) {
  const auto autos = find_automorphisms(make_path(5));
  EXPECT_TRUE(autos.complete);
  EXPECT_EQ(autos.order, 2u);  // identity + reversal
  ASSERT_EQ(autos.generators.size(), 1u);
  EXPECT_TRUE(is_automorphism(make_path(5), autos.generators[0]));
}

TEST(Automorphism, CycleHasDihedralOrder) {
  for (int n : {3, 5, 8}) {
    const auto autos = find_automorphisms(make_cycle(n));
    EXPECT_TRUE(autos.complete);
    EXPECT_EQ(autos.order, 2u * n) << "C_" << n;
    EXPECT_EQ(generated_order(autos, n), 2u * n) << "C_" << n;
  }
}

TEST(Automorphism, CompleteGraphHasFullSymmetricGroup) {
  for (int n : {2, 4, 5, 6}) {
    const auto autos = find_automorphisms(make_complete(n));
    EXPECT_TRUE(autos.complete);
    EXPECT_EQ(autos.order, factorial(n)) << "K_" << n;
    EXPECT_EQ(generated_order(autos, n), factorial(n)) << "K_" << n;
    for (const Permutation& g : autos.generators) {
      EXPECT_TRUE(is_automorphism(make_complete(n), g));
    }
  }
}

TEST(Automorphism, ColoringRestrictsTheGroup) {
  // An end-distinguished path has no symmetry left.
  const Graph p = make_path(4);
  const std::vector<int> colors{0, 1, 1, 2};
  const auto autos = find_automorphisms(p, &colors);
  EXPECT_TRUE(autos.complete);
  EXPECT_EQ(autos.order, 1u);
  EXPECT_TRUE(autos.generators.empty());
}

TEST(Automorphism, CapTruncatesHugeGroups) {
  AutomorphismOptions opts;
  opts.max_elements = 100;  // 8! = 40320 >> 100
  const auto autos = find_automorphisms(make_complete(8), nullptr, opts);
  EXPECT_FALSE(autos.complete);
  EXPECT_FALSE(autos.usable());
}

TEST(Automorphism, G1kGroupIsProcessorPermutations) {
  // G(1,k): clique on k+1 processors, each carrying its own input and
  // output terminal. Any processor permutation extends uniquely to the
  // terminals, so the label-respecting group has order (k+1)!.
  for (int k : {1, 2, 3}) {
    const auto sg = kgd::make_g1k(k);
    const auto autos = solution_automorphisms(sg);
    EXPECT_TRUE(autos.complete);
    EXPECT_EQ(autos.order, factorial(k + 1)) << "G(1," << k << ")";
  }
}

TEST(Automorphism, G2kGroupFixesTheDistinguishedPair) {
  // G(2,k): clique on k+2 processors where p0 carries only an input and
  // p1 only an output; the other k processors are interchangeable.
  for (int k : {2, 3, 4}) {
    const auto sg = kgd::make_g2k(k);
    const auto autos = solution_automorphisms(sg);
    EXPECT_TRUE(autos.complete);
    EXPECT_EQ(autos.order, factorial(k)) << "G(2," << k << ")";
  }
}

TEST(Automorphism, GeneratorsRespectLabels) {
  for (int k : {2, 3}) {
    for (const kgd::SolutionGraph& sg :
         {kgd::make_g1k(k), kgd::make_g2k(k), kgd::make_g3k(k)}) {
      const auto autos = solution_automorphisms(sg);
      std::vector<int> colors(sg.num_nodes());
      for (int v = 0; v < sg.num_nodes(); ++v) {
        colors[v] = static_cast<int>(sg.role(v));
      }
      for (const Permutation& g : autos.generators) {
        // Adjacency-preserving...
        EXPECT_TRUE(is_automorphism(sg.graph(), g, &colors));
        // ...and role-preserving, node by node.
        for (int v = 0; v < sg.num_nodes(); ++v) {
          EXPECT_EQ(sg.role(v), sg.role(g[v])) << sg.name();
        }
      }
    }
  }
}

TEST(Automorphism, EmptyAndSingletonGraphs) {
  EXPECT_EQ(find_automorphisms(Graph()).order, 1u);
  const auto autos = find_automorphisms(Graph(1));
  EXPECT_TRUE(autos.complete);
  EXPECT_EQ(autos.order, 1u);
}

TEST(Automorphism, IsAutomorphismRejectsNonMaps) {
  const Graph p = make_path(3);
  EXPECT_FALSE(is_automorphism(p, {0, 1}));        // wrong size
  EXPECT_FALSE(is_automorphism(p, {0, 0, 2}));     // not a bijection
  EXPECT_FALSE(is_automorphism(p, {1, 0, 2}));     // breaks adjacency
  EXPECT_TRUE(is_automorphism(p, {2, 1, 0}));      // reversal
}

}  // namespace
}  // namespace kgdp::graph
