#include "baseline/diogenes.hpp"

#include <gtest/gtest.h>

#include "kgd/bounds.hpp"
#include "verify/checker.hpp"

namespace kgdp::baseline {
namespace {

TEST(BypassChain, IsNodeOptimal) {
  const auto sg = make_bypass_chain(6, 2);
  EXPECT_TRUE(sg.is_node_optimal());
  EXPECT_TRUE(sg.all_terminals_degree_one());
}

TEST(BypassChain, ChordStructure) {
  const auto sg = make_bypass_chain(6, 2);
  const auto procs = sg.processors();
  // Chords of length 1..k+1 = 3 exist; length 4 does not.
  EXPECT_TRUE(sg.graph().has_edge(procs[0], procs[1]));
  EXPECT_TRUE(sg.graph().has_edge(procs[0], procs[3]));
  EXPECT_FALSE(sg.graph().has_edge(procs[0], procs[4]));
}

TEST(BypassChain, IsGracefullyDegradableExhaustively) {
  // Rosenberg-style bypass wiring does achieve graceful degradation...
  for (int k = 1; k <= 3; ++k) {
    const auto sg = make_bypass_chain(6, k);
    EXPECT_TRUE(verify::run_check(sg, verify::CheckRequest::exhaustive(k)).holds) << "k=" << k;
  }
}

TEST(BypassChain, ButPaysDoubleTheDegree) {
  // ...at processor degree ~2(k+1) vs the paper's optimal k+2. At k = 1
  // the two coincide (4 = 4, for even n); from k = 2 on the gap opens
  // and grows linearly.
  for (int k = 1; k <= 4; ++k) {
    const int paid = bypass_chain_max_degree(12, k);
    const int optimal = kgd::max_degree_lower_bound(12, k);
    EXPECT_GE(paid, 2 * (k + 1)) << "k=" << k;
    if (k >= 2) {
      EXPECT_GT(paid, optimal) << "k=" << k;
    }
  }
  EXPECT_EQ(bypass_chain_max_degree(12, 4) -
                kgd::max_degree_lower_bound(12, 4),
            4);  // 10 vs 6
}

TEST(BypassChain, EdgeCountGrowsWithK) {
  const auto k2 = make_bypass_chain(20, 2);
  const auto k4 = make_bypass_chain(20, 4);
  EXPECT_GT(k4.graph().num_edges(), k2.graph().num_edges());
}

TEST(BypassChain, TinyInstances) {
  // P < 2(k+1): terminal attachments overlap but remain degree-1.
  const auto sg = make_bypass_chain(1, 2);
  EXPECT_TRUE(sg.all_terminals_degree_one());
  EXPECT_TRUE(verify::run_check(sg, verify::CheckRequest::exhaustive(2)).holds);
}

}  // namespace
}  // namespace kgdp::baseline
