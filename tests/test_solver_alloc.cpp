// Pins the zero-allocation contract of the solver engine: once a
// PipelineSolver is bound and warmed up, the steady-state sweep path —
// delta-patched solves with want_pipeline off, exactly what the
// exhaustive checker runs millions of times — performs no heap
// allocation at all. Counted via global operator new/delete overrides,
// so a regression (a stray std::vector growth, a temporary string, a
// rebuilt bitset) fails deterministically in any build type.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "fault/enumerator.hpp"
#include "kgd/factory.hpp"
#include "kgd/small_n.hpp"
#include "verify/check_session.hpp"
#include "verify/pipeline_solver.hpp"
#include "verify/verdict_cache.hpp"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

void* counted_alloc(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

void* counted_alloc(std::size_t size, std::align_val_t align) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  void* p = nullptr;
  if (posix_memalign(&p, static_cast<std::size_t>(align) < sizeof(void*)
                             ? sizeof(void*)
                             : static_cast<std::size_t>(align),
                     size ? size : 1) != 0) {
    throw std::bad_alloc();
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t a) {
  return counted_alloc(size, a);
}
void* operator new[](std::size_t size, std::align_val_t a) {
  return counted_alloc(size, a);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace kgdp::verify {
namespace {

TEST(SolverAlloc, SteadyStatePatchSweepAllocatesNothing) {
  const kgd::SolutionGraph sg = kgd::make_g3k(4);
  const fault::FaultEnumerator en(sg.num_nodes(), sg.k());
  fault::FaultEnumerator::Sweep sweep(en);
  SolverOptions opts;
  opts.want_pipeline = false;  // the sweep consumes the verdict only
  PipelineSolver solver(opts);

  // Warm-up pass: binds the graph, sizes every scratch buffer.
  sweep.seek(0);
  (void)solver.solve_faults(sg, sweep.nodes());
  for (std::uint64_t i = 1; i < en.total(); ++i) {
    sweep.advance();
    (void)solver.patch(sg, sweep.removed(), sweep.added());
  }

  // Steady state: the identical sweep again, now counted.
  sweep.seek(0);
  std::uint64_t found = 0;
  const std::uint64_t before = g_allocs.load();
  const SolveOutcome first = solver.solve_faults(sg, sweep.nodes());
  found += first.status == SolveStatus::kFound ? 1 : 0;
  for (std::uint64_t i = 1; i < en.total(); ++i) {
    sweep.advance();
    const SolveOutcome out = solver.patch(sg, sweep.removed(), sweep.added());
    found += out.status == SolveStatus::kFound ? 1 : 0;
  }
  const std::uint64_t after = g_allocs.load();
  EXPECT_EQ(after - before, 0u) << "steady-state sweep allocated";
  EXPECT_EQ(found, en.total());  // GD(G(3,4),4) holds

  const SolverCounters c = solver.counters();
  EXPECT_GT(c.scratch_bytes, 0u);
  EXPECT_EQ(c.solves, 2 * en.total());
}

TEST(SolverAlloc, BatchedSteadyStateAllocatesNothing) {
  // The lane-parallel batch entry: after one warm-up batch (binds the
  // graph, sizes the lane-setup scratch), further batches — kernel
  // setup pass, walk-first verdicts, exact-search fallbacks — must not
  // touch the heap.
  const kgd::SolutionGraph sg = kgd::make_g3k(4);
  SolverOptions opts;
  opts.want_pipeline = false;
  PipelineSolver solver(opts);

  std::vector<std::uint64_t> masks;
  std::vector<SolveStatus> status(64, SolveStatus::kUnknown);
  for (std::uint64_t i = 0; i < 64; ++i) {
    masks.push_back((i * 0x9e3779b97f4a7c15ULL) &
                    ((1ull << sg.num_nodes()) - 1) & 0x3ff);
  }
  solver.solve_batch(sg, masks, status);  // warm-up

  const std::uint64_t before = g_allocs.load();
  for (int round = 0; round < 16; ++round) {
    solver.solve_batch(sg, masks, status);
  }
  const std::uint64_t after = g_allocs.load();
  EXPECT_EQ(after - before, 0u) << "steady-state batch allocated";
  const SolverCounters c = solver.counters();
  EXPECT_EQ(c.patches + c.rebuilds, c.solves);
}

TEST(SolverAlloc, CachedSessionAdvanceIsAllocationFree) {
  // Full steady-state stack with the verdict cache attached: batched
  // gather, orbit canonicalization (generation-stamped scratch), cache
  // probes, and inserts. The warm-up chunk sizes everything; later
  // chunks — including ones that *hit* the cache — must not allocate.
  const kgd::SolutionGraph sg = kgd::make_g3k(5);
  VerdictCache cache(1 << 12);
  CheckRequest req;
  req.mode = CheckMode::kExhaustive;
  req.max_faults = 5;
  req.options.prune = PruneMode::kOff;  // isomorphic slots -> cache hits
  req.options.cache = &cache;
  CheckSession session(sg, req);
  ASSERT_FALSE(session.advance(128));  // warm-up chunk
  const std::uint64_t before = g_allocs.load();
  session.advance(128);
  session.advance(128);
  const std::uint64_t after = g_allocs.load();
  EXPECT_EQ(after - before, 0u) << "cached steady-state advance allocated";
  // Prune is off, so isomorphic fault sets occupy distinct slots and
  // the canonical cache collapses them: hits must have happened.
  EXPECT_GT(session.result().cache_hits, 0u);
}

TEST(SolverAlloc, SecondCheckSessionAdvanceIsAllocationFree) {
  // One level up: a sequential CheckSession chunk in steady state. The
  // first advance sizes worker scratch; later chunks must not allocate.
  const kgd::SolutionGraph sg = kgd::make_g3k(5);
  CheckRequest req;
  req.mode = CheckMode::kExhaustive;
  req.max_faults = 5;
  req.options.prune = PruneMode::kOff;  // every slot, max chunk pressure
  CheckSession session(sg, req);
  ASSERT_FALSE(session.advance(64));  // warm-up chunk
  const std::uint64_t before = g_allocs.load();
  session.advance(64);
  session.advance(64);
  const std::uint64_t after = g_allocs.load();
  EXPECT_EQ(after - before, 0u) << "steady-state advance allocated";
}

}  // namespace
}  // namespace kgdp::verify
