#include "kgd/labeled_graph.hpp"

#include <gtest/gtest.h>

#include "kgd/small_n.hpp"

namespace kgdp::kgd {
namespace {

TEST(FaultSet, SortsAndDeduplicates) {
  FaultSet fs(10, {5, 2, 5, 9});
  EXPECT_EQ(fs.size(), 3);
  EXPECT_EQ(fs.nodes(), (std::vector<Node>{2, 5, 9}));
  EXPECT_TRUE(fs.contains(5));
  EXPECT_FALSE(fs.contains(0));
  EXPECT_EQ(fs.universe(), 10);
  EXPECT_EQ(fs.to_string(), "{2,5,9}");
}

TEST(FaultSet, None) {
  const FaultSet fs = FaultSet::none(4);
  EXPECT_EQ(fs.size(), 0);
  EXPECT_EQ(fs.to_string(), "{}");
}

TEST(SolutionGraphBuilder, AssignsRolesAndNames) {
  SolutionGraphBuilder b(2, 1, "T");
  const Node p0 = b.add(Role::kProcessor);
  const Node i0 = b.add(Role::kInput, "in");
  const Node o0 = b.add(Role::kOutput);
  b.connect(p0, i0);
  b.connect(p0, o0);
  const SolutionGraph sg = b.build();
  EXPECT_EQ(sg.role(p0), Role::kProcessor);
  EXPECT_EQ(sg.role(i0), Role::kInput);
  EXPECT_EQ(sg.role(o0), Role::kOutput);
  EXPECT_EQ(sg.node_names()[i0], "in");
  EXPECT_EQ(sg.name(), "T");
  EXPECT_EQ(sg.n(), 2);
  EXPECT_EQ(sg.k(), 1);
}

TEST(SolutionGraph, RoleCountsAndSets) {
  const SolutionGraph sg = make_g1k(2);  // 3 procs, 3 in, 3 out
  EXPECT_EQ(sg.num_processors(), 3);
  EXPECT_EQ(sg.num_inputs(), 3);
  EXPECT_EQ(sg.num_outputs(), 3);
  EXPECT_EQ(sg.num_nodes(), 9);
  EXPECT_EQ(sg.inputs().size(), 3u);
  EXPECT_EQ(sg.outputs().size(), 3u);
  EXPECT_EQ(sg.processors().size(), 3u);
}

TEST(SolutionGraph, AttachmentSetsForG1k) {
  const SolutionGraph sg = make_g1k(3);
  // In G(1,k), I = O = all processors.
  EXPECT_EQ(sg.input_attached_processors(), sg.processors());
  EXPECT_EQ(sg.output_attached_processors(), sg.processors());
}

TEST(SolutionGraph, AttachmentSetsForG2k) {
  const SolutionGraph sg = make_g2k(2);
  // a = p0 carries input only; b = p1 output only.
  const auto I = sg.input_attached_processors();
  const auto O = sg.output_attached_processors();
  EXPECT_EQ(I.size(), 3u);
  EXPECT_EQ(O.size(), 3u);
  const auto procs = sg.processors();
  // p1 not input-attached, p0 not output-attached.
  EXPECT_EQ(std::count(I.begin(), I.end(), procs[1]), 0);
  EXPECT_EQ(std::count(O.begin(), O.end(), procs[0]), 0);
}

TEST(SolutionGraph, StandardnessPredicates) {
  const SolutionGraph g1 = make_g1k(2);
  EXPECT_TRUE(g1.is_node_optimal());
  EXPECT_TRUE(g1.all_terminals_degree_one());
  EXPECT_TRUE(g1.is_standard());
}

TEST(SolutionGraph, ProcessorDegreeStats) {
  const SolutionGraph sg = make_g1k(4);  // degree k+2 = 6 everywhere
  EXPECT_EQ(sg.max_processor_degree(), 6);
  EXPECT_EQ(sg.min_processor_degree(), 6);
}

TEST(SolutionGraph, DotExportContainsRolesAndEdges) {
  const SolutionGraph sg = make_g1k(1);
  const std::string dot = sg.to_dot();
  EXPECT_NE(dot.find("lightblue"), std::string::npos);   // inputs
  EXPECT_NE(dot.find("lightsalmon"), std::string::npos); // outputs
  EXPECT_NE(dot.find("--"), std::string::npos);
}

TEST(RoleName, AllValues) {
  EXPECT_STREQ(role_name(Role::kInput), "input");
  EXPECT_STREQ(role_name(Role::kOutput), "output");
  EXPECT_STREQ(role_name(Role::kProcessor), "processor");
}

}  // namespace
}  // namespace kgdp::kgd
