#include "fault/fault_model.hpp"

#include <algorithm>
#include <cassert>

#include "util/combinatorics.hpp"

namespace kgdp::fault {

using kgd::Role;
using kgd::SolutionGraph;

kgd::FaultSet draw_faults(const SolutionGraph& sg, int count,
                          FaultPolicy policy, util::Rng& rng) {
  const int n = sg.num_nodes();
  assert(count <= n);
  std::vector<int> pool;
  switch (policy) {
    case FaultPolicy::kUniform: {
      return kgd::FaultSet(n, rng.sample_without_replacement(n, count));
    }
    case FaultPolicy::kProcessorsOnly: {
      for (int v = 0; v < n; ++v) {
        if (sg.role(v) == Role::kProcessor) pool.push_back(v);
      }
      break;
    }
    case FaultPolicy::kTerminalsFirst: {
      for (int v = 0; v < n; ++v) {
        if (sg.role(v) != Role::kProcessor) pool.push_back(v);
      }
      // Pad with processors if the terminal pool is too small.
      if (static_cast<int>(pool.size()) < count) {
        for (int v = 0; v < n; ++v) {
          if (sg.role(v) == Role::kProcessor) pool.push_back(v);
        }
      }
      break;
    }
    case FaultPolicy::kHighDegreeFirst: {
      for (int v = 0; v < n; ++v) {
        if (sg.role(v) == Role::kProcessor) pool.push_back(v);
      }
      std::stable_sort(pool.begin(), pool.end(), [&](int a, int b) {
        return sg.graph().degree(a) > sg.graph().degree(b);
      });
      // Keep only the top 2*count candidates, then sample among them.
      if (static_cast<int>(pool.size()) > 2 * count) {
        pool.resize(2 * count);
      }
      break;
    }
  }
  assert(static_cast<int>(pool.size()) >= count);
  const std::vector<int> idx =
      rng.sample_without_replacement(static_cast<int>(pool.size()), count);
  std::vector<int> chosen;
  chosen.reserve(count);
  for (int i : idx) chosen.push_back(pool[i]);
  return kgd::FaultSet(n, std::move(chosen));
}

std::vector<kgd::FaultSet> adversarial_suite(const SolutionGraph& sg,
                                             int max_faults,
                                             std::size_t budget) {
  // Candidate pool: terminals plus the attachment processors (sets I, O):
  // faults there attack pipeline endpoints, historically the weak spot.
  std::vector<int> pool;
  for (int v = 0; v < sg.num_nodes(); ++v) {
    if (sg.role(v) != Role::kProcessor) pool.push_back(v);
  }
  for (int v : sg.input_attached_processors()) pool.push_back(v);
  for (int v : sg.output_attached_processors()) pool.push_back(v);
  std::sort(pool.begin(), pool.end());
  pool.erase(std::unique(pool.begin(), pool.end()), pool.end());

  std::vector<kgd::FaultSet> out;
  util::for_each_subset_up_to(
      static_cast<unsigned>(pool.size()), static_cast<unsigned>(max_faults),
      [&](const std::vector<int>& comb) {
        std::vector<int> nodes;
        nodes.reserve(comb.size());
        for (int i : comb) nodes.push_back(pool[i]);
        out.emplace_back(sg.num_nodes(), std::move(nodes));
        return out.size() < budget;
      });
  return out;
}

}  // namespace kgdp::fault
