// Enumeration of fault sets. GD(G,k) quantifies over *every* subset of
// nodes of size <= k, so the exhaustive checker needs (a) a global index
// space over all such subsets and (b) unranking so worker threads can
// claim disjoint chunks without coordination.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kgd/labeled_graph.hpp"

namespace kgdp::fault {

class FaultEnumerator {
 public:
  // Fault sets over a universe of `num_nodes` nodes, sizes 0..max_faults.
  FaultEnumerator(int num_nodes, int max_faults);

  std::uint64_t total() const { return total_; }
  int num_nodes() const { return num_nodes_; }
  int max_faults() const { return max_faults_; }

  // The `index`-th fault set (0 = empty set, then size 1 lexicographic,
  // then size 2, ...).
  kgd::FaultSet at(std::uint64_t index) const;

  // Same but returning the raw node list (cheaper; no bitset build).
  std::vector<int> nodes_at(std::uint64_t index) const;
  // Allocation-free variant (capacity of `out` reused).
  void nodes_at_into(std::uint64_t index, std::vector<int>& out) const;

  // Inverse of nodes_at: the global index of a strictly increasing node
  // list with size <= max_faults. The orbit enumerator uses this to map
  // permuted fault sets back into the index space.
  std::uint64_t index_of(const std::vector<int>& sorted_nodes) const;

  // Stateful walk over the index space that reports each step as a delta
  // (nodes removed from / added to the previous fault set) so the solver
  // can patch its fault view instead of rebuilding it. advance() steps to
  // the lexicographic successor in O(k); seek() repositions anywhere via
  // unranking and still diffs against the previous position. All buffers
  // are reserved up front — no per-step allocation once constructed.
  class Sweep {
   public:
    explicit Sweep(const FaultEnumerator& en);

    void seek(std::uint64_t index);
    // Move to index() + 1; requires positioned() and a successor to exist.
    void advance();

    std::uint64_t index() const { return index_; }
    bool positioned() const { return positioned_; }
    // Current fault set (strictly increasing), and the delta that turned
    // the previous position into it. Valid until the next seek/advance.
    std::span<const int> nodes() const { return cur_; }
    std::span<const int> removed() const { return removed_; }
    std::span<const int> added() const { return added_; }
    // Current fault set as a single word (callers on the <= 64-node mask
    // fast path only). O(k) — fault sets are tiny.
    std::uint64_t mask64() const {
      std::uint64_t m = 0;
      for (int v : cur_) m |= std::uint64_t{1} << v;
      return m;
    }

   private:
    void diff();

    const FaultEnumerator* en_;
    std::uint64_t index_ = 0;
    bool positioned_ = false;
    std::vector<int> cur_, prev_, removed_, added_;
  };

 private:
  int num_nodes_;
  int max_faults_;
  std::vector<std::uint64_t> size_offset_;  // cumulative start per size
  std::uint64_t total_;
};

}  // namespace kgdp::fault
