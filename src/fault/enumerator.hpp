// Enumeration of fault sets. GD(G,k) quantifies over *every* subset of
// nodes of size <= k, so the exhaustive checker needs (a) a global index
// space over all such subsets and (b) unranking so worker threads can
// claim disjoint chunks without coordination.
#pragma once

#include <cstdint>
#include <vector>

#include "kgd/labeled_graph.hpp"

namespace kgdp::fault {

class FaultEnumerator {
 public:
  // Fault sets over a universe of `num_nodes` nodes, sizes 0..max_faults.
  FaultEnumerator(int num_nodes, int max_faults);

  std::uint64_t total() const { return total_; }

  // The `index`-th fault set (0 = empty set, then size 1 lexicographic,
  // then size 2, ...).
  kgd::FaultSet at(std::uint64_t index) const;

  // Same but returning the raw node list (cheaper; no bitset build).
  std::vector<int> nodes_at(std::uint64_t index) const;

  // Inverse of nodes_at: the global index of a strictly increasing node
  // list with size <= max_faults. The orbit enumerator uses this to map
  // permuted fault sets back into the index space.
  std::uint64_t index_of(const std::vector<int>& sorted_nodes) const;

 private:
  int num_nodes_;
  int max_faults_;
  std::vector<std::uint64_t> size_offset_;  // cumulative start per size
  std::uint64_t total_;
};

}  // namespace kgdp::fault
