#include "fault/canonical.hpp"

#include <bit>

namespace kgdp::fault {

namespace {

// splitmix64 finalizer — masks are tiny popcount values over a 64-bit
// universe, so a strong mix keeps the open-addressing probes short.
inline std::size_t hash_mask(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return static_cast<std::size_t>(x ^ (x >> 31));
}

inline std::uint64_t apply_perm(const graph::Permutation& perm,
                                std::uint64_t mask) {
  std::uint64_t out = 0;
  for (std::uint64_t m = mask; m; m &= m - 1) {
    out |= std::uint64_t{1} << perm[std::countr_zero(m)];
  }
  return out;
}

}  // namespace

std::uint64_t FaultCanonicalizer::apply_to_mask(
    const graph::Permutation& perm, std::uint64_t mask) {
  return apply_perm(perm, mask);
}

bool FaultCanonicalizer::canonical_mask(std::uint64_t mask, Scratch& scratch,
                                        std::uint64_t* canon) const {
  if (auts_ == nullptr || !auts_->usable()) {
    *canon = mask;  // trivial group: singleton orbit
    return true;
  }

  // Generation-stamped table: bumping the generation invalidates every
  // slot in O(1). On the (once per ~4e9 calls) wrap we do a real clear.
  if (++scratch.generation == 0) {
    for (std::size_t i = 0; i < kTableSize; ++i) scratch.stamp[i] = 0;
    scratch.generation = 1;
  }
  const std::uint32_t gen = scratch.generation;
  constexpr std::size_t kMask = kTableSize - 1;
  static_assert((kTableSize & (kTableSize - 1)) == 0);

  auto visit = [&](std::uint64_t m) {  // true if newly inserted
    std::size_t slot = hash_mask(m) & kMask;
    while (scratch.stamp[slot] == gen) {
      if (scratch.key[slot] == m) return false;
      slot = (slot + 1) & kMask;
    }
    scratch.stamp[slot] = gen;
    scratch.key[slot] = m;
    return true;
  };

  std::size_t head = 0, tail = 0;
  visit(mask);
  scratch.queue[tail++] = mask;
  std::uint64_t best = mask;
  while (head < tail) {
    const std::uint64_t cur = scratch.queue[head++];
    for (const graph::Permutation& perm : auts_->generators) {
      const std::uint64_t img = apply_perm(perm, cur);
      if (img < best) best = img;
      if (!visit(img)) continue;
      if (tail == kMaxOrbit) return false;  // orbit too large: bypass
      scratch.queue[tail++] = img;
    }
  }
  *canon = best;
  return true;
}

bool FaultCanonicalizer::canonical_mask_transport(
    std::uint64_t mask, int num_nodes, Scratch& scratch,
    std::uint64_t* canon, graph::Permutation* sigma) const {
  sigma->assign(static_cast<std::size_t>(num_nodes), 0);
  for (int v = 0; v < num_nodes; ++v) (*sigma)[v] = v;
  if (auts_ == nullptr || !auts_->usable()) {
    *canon = mask;  // trivial group: identity transport
    return true;
  }

  // Same BFS closure as canonical_mask, with a parent link per queue
  // entry so the minimising chain of generators can be replayed.
  if (++scratch.generation == 0) {
    for (std::size_t i = 0; i < kTableSize; ++i) scratch.stamp[i] = 0;
    scratch.generation = 1;
  }
  const std::uint32_t gen = scratch.generation;
  constexpr std::size_t kMask = kTableSize - 1;

  auto visit = [&](std::uint64_t m) {  // true if newly inserted
    std::size_t slot = hash_mask(m) & kMask;
    while (scratch.stamp[slot] == gen) {
      if (scratch.key[slot] == m) return false;
      slot = (slot + 1) & kMask;
    }
    scratch.stamp[slot] = gen;
    scratch.key[slot] = m;
    return true;
  };

  std::size_t head = 0, tail = 0;
  visit(mask);
  scratch.queue[tail] = mask;
  scratch.parent[tail] = 0;
  scratch.via[tail] = 0;
  ++tail;
  std::size_t best_at = 0;
  while (head < tail) {
    const std::size_t cur_at = head;
    const std::uint64_t cur = scratch.queue[head++];
    for (std::size_t g = 0; g < auts_->generators.size(); ++g) {
      const std::uint64_t img = apply_perm(auts_->generators[g], cur);
      if (!visit(img)) continue;
      if (tail == kMaxOrbit) return false;  // orbit too large: bypass
      scratch.queue[tail] = img;
      scratch.parent[tail] = static_cast<std::uint32_t>(cur_at);
      scratch.via[tail] = static_cast<std::uint32_t>(g);
      if (img < scratch.queue[best_at]) best_at = tail;
      ++tail;
    }
  }

  // Replay the parent chain root→best, composing sigma = g_n ∘ … ∘ g_1
  // (BFS depth is bounded by the orbit size, so the chain fits).
  std::uint32_t chain[kMaxOrbit];
  std::size_t depth = 0;
  for (std::size_t at = best_at; at != 0; at = scratch.parent[at]) {
    chain[depth++] = scratch.via[at];
  }
  for (std::size_t i = depth; i-- > 0;) {
    const graph::Permutation& g = auts_->generators[chain[i]];
    for (int v = 0; v < num_nodes; ++v) (*sigma)[v] = g[(*sigma)[v]];
  }
  *canon = scratch.queue[best_at];
  return true;
}

}  // namespace kgdp::fault
