// Random and adversarial fault injection. Used by the sampled checker,
// the baseline comparison and the machine simulator.
#pragma once

#include <vector>

#include "kgd/labeled_graph.hpp"
#include "util/rng.hpp"

namespace kgdp::fault {

enum class FaultPolicy {
  kUniform,          // any node, uniformly
  kProcessorsOnly,   // only processor nodes
  kTerminalsFirst,   // prefer terminal nodes (I/O devices are often the
                     // least reliable components)
  kHighDegreeFirst,  // target the highest-degree processors (adversarial)
};

// Draws a fault set of exactly `count` distinct nodes under `policy`.
kgd::FaultSet draw_faults(const kgd::SolutionGraph& sg, int count,
                          FaultPolicy policy, util::Rng& rng);

// Every fault set the adversary considers most damaging: all subsets of
// the I ∪ O attachment processors and terminals, capped at `budget` sets.
// These are the sets that most often break weak designs.
std::vector<kgd::FaultSet> adversarial_suite(const kgd::SolutionGraph& sg,
                                             int max_faults,
                                             std::size_t budget = 4096);

}  // namespace kgdp::fault
