#include "fault/edge_faults.hpp"

#include <algorithm>
#include <map>

#include "util/combinatorics.hpp"
#include "verify/pipeline_solver.hpp"

namespace kgdp::fault {

using graph::Edge;
using graph::Node;
using kgd::Role;

kgd::FaultSet cover_edge_faults(const kgd::SolutionGraph& sg,
                                const EdgeList& edges) {
  // Greedy cover: repeatedly take the node covering the most remaining
  // edges. Ties prefer *degree-1* terminals: in a standard graph losing
  // such a terminal costs one redundant attachment, whereas losing a
  // processor shrinks the pipeline. Merged-model terminals (degree k+1)
  // are NOT preferred — sacrificing the unique I/O device is fatal.
  std::vector<Edge> remaining = edges;
  std::vector<Node> cover;
  while (!remaining.empty()) {
    std::map<Node, int> load;
    for (auto [u, v] : remaining) {
      ++load[u];
      ++load[v];
    }
    Node best = -1;
    int best_load = -1;
    bool best_terminal = false;
    for (auto [v, c] : load) {
      const bool is_cheap_terminal =
          sg.role(v) != Role::kProcessor && sg.graph().degree(v) == 1;
      if (c > best_load ||
          (c == best_load && is_cheap_terminal && !best_terminal)) {
        best = v;
        best_load = c;
        best_terminal = is_cheap_terminal;
      }
    }
    cover.push_back(best);
    remaining.erase(std::remove_if(remaining.begin(), remaining.end(),
                                   [best](const Edge& e) {
                                     return e.first == best ||
                                            e.second == best;
                                   }),
                    remaining.end());
  }
  return kgd::FaultSet(sg.num_nodes(), std::move(cover));
}

kgd::SolutionGraph remove_edges(const kgd::SolutionGraph& sg,
                                const EdgeList& edges) {
  graph::Graph g = sg.graph();
  for (auto [u, v] : edges) {
    if (g.has_edge(u, v)) g.remove_edge(u, v);
  }
  kgd::SolutionGraph out(std::move(g), sg.roles(), sg.n(), sg.k(),
                         sg.name() + "-edgefaults");
  out.set_node_names(sg.node_names());
  return out;
}

std::optional<kgd::Pipeline> find_pipeline_with_edge_faults(
    const kgd::SolutionGraph& sg, const EdgeList& bad_edges,
    const kgd::FaultSet& node_faults) {
  const kgd::SolutionGraph cut = remove_edges(sg, bad_edges);
  const auto out = verify::find_pipeline(cut, node_faults);
  if (out.status != verify::SolveStatus::kFound) return std::nullopt;
  // The pipeline is valid in the cut graph; it is automatically valid in
  // sg too (same nodes, subset of edges used).
  return out.pipeline;
}

EdgeToleranceReport check_edge_tolerance_exhaustive(
    const kgd::SolutionGraph& sg, int max_edge_faults) {
  const std::vector<Edge> all_edges = sg.graph().edges();
  EdgeToleranceReport report;
  verify::PipelineSolver solver;

  util::for_each_subset_up_to(
      static_cast<unsigned>(all_edges.size()),
      static_cast<unsigned>(max_edge_faults),
      [&](const std::vector<int>& idx) {
        EdgeList bad;
        bad.reserve(idx.size());
        for (int i : idx) bad.push_back(all_edges[i]);
        ++report.edge_sets_checked;

        // Direct semantics.
        if (find_pipeline_with_edge_faults(
                sg, bad, kgd::FaultSet::none(sg.num_nodes()))) {
          ++report.direct_tolerated;
        }
        // Hayes reduction: cover, then node-fault route (if the cover
        // fits in the design budget).
        const kgd::FaultSet cover = cover_edge_faults(sg, bad);
        if (cover.size() <= sg.k() &&
            solver.solve(sg, cover).status == verify::SolveStatus::kFound) {
          ++report.reduced_tolerated;
        }
        return true;
      });
  return report;
}

}  // namespace kgdp::fault
