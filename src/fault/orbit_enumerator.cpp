#include "fault/orbit_enumerator.hpp"

#include <bit>
#include <cassert>
#include <numeric>

#include "util/bitset.hpp"
#include "util/combinatorics.hpp"

namespace kgdp::fault {

namespace {

// Flat Pascal table C(a, b) for a <= n, b <= k+1. Rank/unrank inside the
// orbit sweep must not pay the multiplicative binomial() loop: the sweep
// performs total * |generators| rank computations.
class PascalTable {
 public:
  PascalTable(int n, int k) : cols_(k + 2), c_((n + 1) * (k + 2), 0) {
    for (int a = 0; a <= n; ++a) {
      at(a, 0) = 1;
      for (int b = 1; b < cols_; ++b) {
        at(a, b) = b > a ? 0 : at(a - 1, b - 1) + at(a - 1, b);
      }
    }
  }
  std::uint64_t operator()(int a, int b) const {
    return b >= cols_ || b < 0 || a < 0 ? 0 : c_[a * cols_ + b];
  }

 private:
  std::uint64_t& at(int a, int b) { return c_[a * cols_ + b]; }
  int cols_;
  std::vector<std::uint64_t> c_;
};

}  // namespace

void OrbitEnumerator::compute_fingerprint(int num_nodes, int max_faults) {
  // FNV-1a, 64-bit. Folding in every representative index means two
  // enumerations agree on the fingerprint iff they agree on the whole
  // orbit layout (and hence on slot -> fault-set semantics).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h ^= (v >> (8 * b)) & 0xff;
      h *= 0x100000001b3ULL;
    }
  };
  mix(static_cast<std::uint64_t>(num_nodes));
  mix(static_cast<std::uint64_t>(max_faults));
  mix(pruned_ ? 1 : 0);
  mix(enumr_.total());
  for (std::uint64_t r : reps_) mix(r);
  fingerprint_ = h;
}

OrbitEnumerator::OrbitEnumerator(int num_nodes, int max_faults,
                                 const graph::AutomorphismList& autos)
    : enumr_(num_nodes, max_faults) {
  // Masks require <= 64 nodes; every paper instance within exhaustive
  // reach satisfies this.
  if (!autos.usable() || num_nodes > 64) {
    compute_fingerprint(num_nodes, max_faults);
    return;
  }
  const std::uint64_t total = enumr_.total();
  if (total > kMaxPrunedTotal) {
    compute_fingerprint(num_nodes, max_faults);
    return;
  }

  const int n = num_nodes;
  const int k = max_faults;
  const PascalTable C(n, k);

  // size_offset[s] = global index of the first size-s fault set.
  std::vector<std::uint64_t> size_offset(k + 1, 0);
  for (int s = 1; s <= k; ++s) {
    size_offset[s] = size_offset[s - 1] + C(n, s - 1);
  }

  // Lexicographic rank of the subset `mask` within the global index
  // space (size block + lex rank of the combination).
  auto lex_index = [&](std::uint64_t mask) {
    const int s = std::popcount(mask);
    std::uint64_t rank = size_offset[s];
    int prev = -1, slot = 0;
    while (mask != 0) {
      const int c = std::countr_zero(mask);
      mask &= mask - 1;
      for (int x = prev + 1; x < c; ++x) {
        rank += C(n - 1 - x, s - 1 - slot);
      }
      prev = c;
      ++slot;
    }
    return rank;
  };

  // Generators as image masks: apply() is a popcount-bounded bit loop,
  // no allocation, and the image comes out already "sorted".
  const std::vector<graph::Permutation>& gens = autos.generators;
  auto apply = [](const graph::Permutation& g, std::uint64_t mask) {
    std::uint64_t image = 0;
    while (mask != 0) {
      image |= std::uint64_t{1} << g[std::countr_zero(mask)];
      mask &= mask - 1;
    }
    return image;
  };

  // Ascending sweep over all fault sets; each unvisited index starts a
  // new orbit (it is the orbit's minimum, hence its representative) and
  // a DFS over generator images collects the members. Every member is
  // expanded once per generator: O(total * |gens|) cheap mask ops.
  util::DynamicBitset visited(total);
  std::vector<std::uint64_t> frontier;
  std::uint64_t index = 0;
  std::vector<int> comb;
  for (int s = 0; s <= k && s <= n; ++s) {
    comb.resize(s);
    std::iota(comb.begin(), comb.end(), 0);
    bool more = true;
    while (more) {
      if (!visited.test(index)) {
        visited.set(index);
        reps_.push_back(index);
        std::uint64_t members = 1;
        std::uint64_t mask = 0;
        for (int v : comb) mask |= std::uint64_t{1} << v;
        frontier.assign(1, mask);
        while (!frontier.empty()) {
          const std::uint64_t m = frontier.back();
          frontier.pop_back();
          for (const graph::Permutation& g : gens) {
            const std::uint64_t im = apply(g, m);
            if (im == m) continue;
            const std::uint64_t j = lex_index(im);
            if (!visited.test(j)) {
              visited.set(j);
              frontier.push_back(im);
              ++members;
            }
          }
        }
        sizes_.push_back(members);
      }
      ++index;
      more = s > 0 && util::next_combination(comb, n);
    }
  }
  assert(index == total);
  assert(std::accumulate(sizes_.begin(), sizes_.end(), std::uint64_t{0}) ==
         total);
  pruned_ = true;
  compute_fingerprint(num_nodes, max_faults);
}

}  // namespace kgdp::fault
