// Link (edge) faults. The paper's related-work section notes that Hayes's
// graph model accommodates faulty communication links "by viewing an
// adjacent processor as being faulty" — a reduction that sacrifices a
// healthy processor per faulty link. This module implements both that
// reduction and the stronger *direct* semantics (route a pipeline that
// simply avoids the dead links while still using every healthy
// processor), so the two can be compared.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "kgd/labeled_graph.hpp"
#include "kgd/pipeline.hpp"

namespace kgdp::fault {

using EdgeList = std::vector<graph::Edge>;

// Hayes reduction: pick one endpoint per faulty edge (greedy vertex
// cover, largest-coverage-first, terminals preferred over processors
// since sacrificing a terminal keeps the processor count intact). The
// returned node fault set has size <= |edges| and covers every edge.
kgd::FaultSet cover_edge_faults(const kgd::SolutionGraph& sg,
                                const EdgeList& edges);

// The solution graph with the given edges deleted (nodes intact).
kgd::SolutionGraph remove_edges(const kgd::SolutionGraph& sg,
                                const EdgeList& edges);

// Direct semantics: a pipeline of sg avoiding the faulty edges AND the
// faulty nodes, through every healthy processor.
std::optional<kgd::Pipeline> find_pipeline_with_edge_faults(
    const kgd::SolutionGraph& sg, const EdgeList& bad_edges,
    const kgd::FaultSet& node_faults);

struct EdgeToleranceReport {
  std::uint64_t edge_sets_checked = 0;
  std::uint64_t direct_tolerated = 0;   // pipeline avoiding edges exists
  std::uint64_t reduced_tolerated = 0;  // Hayes reduction succeeds
  bool direct_holds() const {
    return direct_tolerated == edge_sets_checked;
  }
  bool reduced_holds() const {
    return reduced_tolerated == edge_sets_checked;
  }
};

// Exhaustively checks every set of up to `max_edge_faults` faulty edges
// under both semantics. The reduction succeeds whenever the cover has
// size <= sg.k() and the node-faulted instance still has a pipeline.
EdgeToleranceReport check_edge_tolerance_exhaustive(
    const kgd::SolutionGraph& sg, int max_edge_faults);

}  // namespace kgdp::fault
