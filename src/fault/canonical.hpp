// Orbit-canonical fault-set keys. Two fault sets in the same orbit of
// the label-respecting automorphism group are isomorphic instances — the
// solver returns the same verdict for both — so a verdict cache keyed by
// the orbit-minimal mask collapses every isomorphic re-solve into one
// lookup. The canonical key is computed by BFS closure over the strong
// generating set: starting from the query mask, repeatedly apply each
// generator and keep the numerically smallest mask seen. The group is
// finite, so positive generator words reach every group element and the
// closure visits the full orbit exactly.
//
// The closure is capped (kMaxOrbit images); fault orbits under the
// paper's constructions are far smaller, but a pathological group makes
// canonicalization cost more than the solve it would save, so past the
// cap canonical_mask() reports failure and the caller bypasses the
// cache. All state lives in a caller-provided fixed-size Scratch
// (generation-stamped open-addressing table, so no per-call clearing),
// keeping the steady state allocation-free.
#pragma once

#include <cstdint>

#include "graph/automorphism.hpp"

namespace kgdp::fault {

class FaultCanonicalizer {
 public:
  // Orbit-size cap; past this the canonicalizer reports failure.
  static constexpr std::size_t kMaxOrbit = 4096;
  // Open-addressing table slots (power of two, load factor <= 1/2).
  static constexpr std::size_t kTableSize = 2 * kMaxOrbit;

  // Fixed-size BFS scratch, reusable across calls and canonicalizers.
  // ~160 KiB; embed one per worker, not per solve. The parent/via links
  // are written only by canonical_mask_transport; plain canonical_mask
  // leaves them untouched.
  struct Scratch {
    std::uint64_t queue[kMaxOrbit];
    std::uint64_t key[kTableSize];
    std::uint32_t stamp[kTableSize] = {};  // generation marks, 0 = free
    std::uint32_t generation = 0;
    // BFS tree for transport extraction: queue[i] is the image of
    // queue[parent[i]] under generator via[i] (root has parent[0] == 0).
    std::uint32_t parent[kMaxOrbit];
    std::uint32_t via[kMaxOrbit];
  };

  // `auts` must outlive the canonicalizer. An unusable group (truncated
  // enumeration or trivial) degrades gracefully: every mask is its own
  // canonical form, which is correct, just cache-hit-poor.
  explicit FaultCanonicalizer(const graph::AutomorphismList* auts)
      : auts_(auts) {}

  // Writes the orbit-minimal mask to *canon and returns true; returns
  // false (leaving *canon untouched) when the orbit closure exceeds
  // kMaxOrbit, in which case the caller should skip the cache.
  bool canonical_mask(std::uint64_t mask, Scratch& scratch,
                      std::uint64_t* canon) const;

  // As canonical_mask, but also reconstructs a transporting group
  // element: *sigma is a node permutation (an automorphism of the
  // underlying graph) with image(sigma, mask) == *canon, composed from
  // the BFS parent chain. The route atlas uses it to carry a canonical
  // pipeline back to the queried fault set (apply sigma^-1 nodewise).
  // `num_nodes` sizes the permutation; it must cover every generator.
  // With a trivial/unusable group, *sigma is the identity. Same failure
  // contract as canonical_mask.
  bool canonical_mask_transport(std::uint64_t mask, int num_nodes,
                                Scratch& scratch, std::uint64_t* canon,
                                graph::Permutation* sigma) const;

  // The image of `mask` under a node permutation (exposed for tests and
  // for atlas transport checks).
  static std::uint64_t apply_to_mask(const graph::Permutation& perm,
                                     std::uint64_t mask);

 private:
  const graph::AutomorphismList* auts_;
};

}  // namespace kgdp::fault
