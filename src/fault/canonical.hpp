// Orbit-canonical fault-set keys. Two fault sets in the same orbit of
// the label-respecting automorphism group are isomorphic instances — the
// solver returns the same verdict for both — so a verdict cache keyed by
// the orbit-minimal mask collapses every isomorphic re-solve into one
// lookup. The canonical key is computed by BFS closure over the strong
// generating set: starting from the query mask, repeatedly apply each
// generator and keep the numerically smallest mask seen. The group is
// finite, so positive generator words reach every group element and the
// closure visits the full orbit exactly.
//
// The closure is capped (kMaxOrbit images); fault orbits under the
// paper's constructions are far smaller, but a pathological group makes
// canonicalization cost more than the solve it would save, so past the
// cap canonical_mask() reports failure and the caller bypasses the
// cache. All state lives in a caller-provided fixed-size Scratch
// (generation-stamped open-addressing table, so no per-call clearing),
// keeping the steady state allocation-free.
#pragma once

#include <cstdint>

#include "graph/automorphism.hpp"

namespace kgdp::fault {

class FaultCanonicalizer {
 public:
  // Orbit-size cap; past this the canonicalizer reports failure.
  static constexpr std::size_t kMaxOrbit = 4096;
  // Open-addressing table slots (power of two, load factor <= 1/2).
  static constexpr std::size_t kTableSize = 2 * kMaxOrbit;

  // Fixed-size BFS scratch, reusable across calls and canonicalizers.
  // ~128 KiB; embed one per worker, not per solve.
  struct Scratch {
    std::uint64_t queue[kMaxOrbit];
    std::uint64_t key[kTableSize];
    std::uint32_t stamp[kTableSize] = {};  // generation marks, 0 = free
    std::uint32_t generation = 0;
  };

  // `auts` must outlive the canonicalizer. An unusable group (truncated
  // enumeration or trivial) degrades gracefully: every mask is its own
  // canonical form, which is correct, just cache-hit-poor.
  explicit FaultCanonicalizer(const graph::AutomorphismList* auts)
      : auts_(auts) {}

  // Writes the orbit-minimal mask to *canon and returns true; returns
  // false (leaving *canon untouched) when the orbit closure exceeds
  // kMaxOrbit, in which case the caller should skip the cache.
  bool canonical_mask(std::uint64_t mask, Scratch& scratch,
                      std::uint64_t* canon) const;

 private:
  const graph::AutomorphismList* auts_;
};

}  // namespace kgdp::fault
