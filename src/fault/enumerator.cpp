#include "fault/enumerator.hpp"

#include <cassert>

#include "util/combinatorics.hpp"

namespace kgdp::fault {

FaultEnumerator::FaultEnumerator(int num_nodes, int max_faults)
    : num_nodes_(num_nodes), max_faults_(max_faults) {
  assert(num_nodes >= 0 && max_faults >= 0);
  size_offset_.resize(max_faults + 2, 0);
  std::uint64_t acc = 0;
  for (int sz = 0; sz <= max_faults; ++sz) {
    size_offset_[sz] = acc;
    acc += util::binomial(static_cast<unsigned>(num_nodes),
                          static_cast<unsigned>(sz));
  }
  size_offset_[max_faults + 1] = acc;
  total_ = acc;
}

std::vector<int> FaultEnumerator::nodes_at(std::uint64_t index) const {
  std::vector<int> out;
  nodes_at_into(index, out);
  return out;
}

void FaultEnumerator::nodes_at_into(std::uint64_t index,
                                    std::vector<int>& out) const {
  assert(index < total_);
  int sz = 0;
  while (index >= size_offset_[sz + 1]) ++sz;
  util::unrank_combination_into(static_cast<unsigned>(num_nodes_),
                                static_cast<unsigned>(sz),
                                index - size_offset_[sz], out);
}

std::uint64_t FaultEnumerator::index_of(
    const std::vector<int>& sorted_nodes) const {
  const int sz = static_cast<int>(sorted_nodes.size());
  assert(sz <= max_faults_);
  return size_offset_[sz] +
         util::rank_combination(sorted_nodes,
                                static_cast<unsigned>(num_nodes_));
}

kgd::FaultSet FaultEnumerator::at(std::uint64_t index) const {
  return kgd::FaultSet(num_nodes_, nodes_at(index));
}

FaultEnumerator::Sweep::Sweep(const FaultEnumerator& en) : en_(&en) {
  // Reserve once so seek/advance/diff never touch the heap.
  const std::size_t k = static_cast<std::size_t>(en.max_faults_) + 1;
  cur_.reserve(k);
  prev_.reserve(k);
  removed_.reserve(k);
  added_.reserve(k);
}

void FaultEnumerator::Sweep::seek(std::uint64_t index) {
  prev_.swap(cur_);
  if (!positioned_) prev_.clear();  // delta from the empty set
  en_->nodes_at_into(index, cur_);
  index_ = index;
  positioned_ = true;
  diff();
}

void FaultEnumerator::Sweep::advance() {
  assert(positioned_ && index_ + 1 < en_->total_);
  prev_.assign(cur_.begin(), cur_.end());
  ++index_;
  if (!util::next_combination(cur_, en_->num_nodes_)) {
    // Last subset of this size: the successor is the first subset of the
    // next size, {0, 1, ..., sz}.
    cur_.resize(cur_.size() + 1);
    for (std::size_t i = 0; i < cur_.size(); ++i) {
      cur_[i] = static_cast<int>(i);
    }
  }
  diff();
}

void FaultEnumerator::Sweep::diff() {
  removed_.clear();
  added_.clear();
  std::size_t i = 0, j = 0;
  while (i < prev_.size() && j < cur_.size()) {
    if (prev_[i] == cur_[j]) {
      ++i;
      ++j;
    } else if (prev_[i] < cur_[j]) {
      removed_.push_back(prev_[i++]);
    } else {
      added_.push_back(cur_[j++]);
    }
  }
  while (i < prev_.size()) removed_.push_back(prev_[i++]);
  while (j < cur_.size()) added_.push_back(cur_[j++]);
}

}  // namespace kgdp::fault
