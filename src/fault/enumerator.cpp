#include "fault/enumerator.hpp"

#include <cassert>

#include "util/combinatorics.hpp"

namespace kgdp::fault {

FaultEnumerator::FaultEnumerator(int num_nodes, int max_faults)
    : num_nodes_(num_nodes), max_faults_(max_faults) {
  assert(num_nodes >= 0 && max_faults >= 0);
  size_offset_.resize(max_faults + 2, 0);
  std::uint64_t acc = 0;
  for (int sz = 0; sz <= max_faults; ++sz) {
    size_offset_[sz] = acc;
    acc += util::binomial(static_cast<unsigned>(num_nodes),
                          static_cast<unsigned>(sz));
  }
  size_offset_[max_faults + 1] = acc;
  total_ = acc;
}

std::vector<int> FaultEnumerator::nodes_at(std::uint64_t index) const {
  assert(index < total_);
  int sz = 0;
  while (index >= size_offset_[sz + 1]) ++sz;
  const std::uint64_t rank = index - size_offset_[sz];
  return util::unrank_combination(static_cast<unsigned>(num_nodes_),
                                  static_cast<unsigned>(sz), rank);
}

std::uint64_t FaultEnumerator::index_of(
    const std::vector<int>& sorted_nodes) const {
  const int sz = static_cast<int>(sorted_nodes.size());
  assert(sz <= max_faults_);
  return size_offset_[sz] +
         util::rank_combination(sorted_nodes,
                                static_cast<unsigned>(num_nodes_));
}

kgd::FaultSet FaultEnumerator::at(std::uint64_t index) const {
  return kgd::FaultSet(num_nodes_, nodes_at(index));
}

}  // namespace kgdp::fault
