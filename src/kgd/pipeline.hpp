// The pipeline object (paper Definition, §3): a path a0..aq in G \ F with
// a0 an input terminal, aq an output terminal (or vice versa) and
// {a1..a_{q-1}} equal to the set of *all* healthy processors. This header
// owns the validity predicate every solver result is certified against.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "kgd/labeled_graph.hpp"

namespace kgdp::kgd {

struct Pipeline {
  // Stored input-terminal-first (the validator accepts either direction
  // and normalises).
  std::vector<Node> path;

  int num_processors() const {
    return path.size() >= 2 ? static_cast<int>(path.size()) - 2 : 0;
  }
  Node input_terminal() const { return path.front(); }
  Node output_terminal() const { return path.back(); }
  std::string to_string(const SolutionGraph& sg) const;
};

// Detailed validation verdict (used by tests to explain failures).
struct PipelineCheck {
  bool ok = false;
  std::string error;  // empty when ok
};

// Checks that `path` is a pipeline of sg \ faults per the paper's
// definition. Accepts the path in either direction.
PipelineCheck check_pipeline(const SolutionGraph& sg, const FaultSet& faults,
                             const std::vector<Node>& path);

// Normalises a valid pipeline path to input-terminal-first order.
Pipeline normalize_pipeline(const SolutionGraph& sg, std::vector<Node> path);

}  // namespace kgdp::kgd
