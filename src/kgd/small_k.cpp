#include "kgd/small_k.hpp"

#include <cassert>

#include "kgd/extension.hpp"
#include "kgd/small_n.hpp"
#include "kgd/special.hpp"

namespace kgdp::kgd {

SolutionGraph make_family_k1(int n) {
  assert(n >= 1);
  // Theorem 3.13: odd n extends G(1,1) (degree k+2), even n extends
  // G(2,1) (degree k+3); step k+1 = 2.
  if (n % 2 == 1) return extend(make_g1k(1), (n - 1) / 2);
  return extend(make_g2k(1), (n - 2) / 2);
}

SolutionGraph make_family_k2(int n) {
  assert(n >= 1);
  // Theorem 3.15; step k+1 = 3. Bases: G(1,2), G(2,2), G(3,2) and the
  // special solutions G(6,2), G(8,2). Residue classes mod 3:
  //   n ≡ 0: 3 -> G(3,2); 6, 9, 12, ...  -> extensions of special G(6,2)
  //   n ≡ 1: 1, 4, 7, 10, ...            -> extensions of G(1,2)
  //   n ≡ 2: 2, 5 -> extensions of G(2,2); 8, 11, ... -> special G(8,2)
  switch (n % 3) {
    case 0:
      if (n == 3) return make_g3k(2);
      return extend(make_special_g62(), (n - 6) / 3);
    case 1:
      return extend(make_g1k(2), (n - 1) / 3);
    default:  // n % 3 == 2
      if (n <= 5) return extend(make_g2k(2), (n - 2) / 3);
      return extend(make_special_g82(), (n - 8) / 3);
  }
}

SolutionGraph make_family_k3(int n) {
  assert(n >= 1);
  // Theorem 3.16; step k+1 = 4.
  //   odd n:  n ≡ 1 (mod 4) -> extensions of G(1,3)  (deg k+2)
  //           n = 3        -> G(3,3)                 (deg k+3)
  //           n ≡ 3 (mod 4), n >= 7 -> extensions of special G(7,3)
  //   even n: n ≡ 2 (mod 4) -> extensions of G(2,3)  (deg k+3)
  //           n ≡ 0 (mod 4) -> extensions of special G(4,3) (deg k+3)
  if (n % 2 == 1) {
    if (n % 4 == 1) return extend(make_g1k(3), (n - 1) / 4);
    if (n == 3) return make_g3k(3);
    return extend(make_special_g73(), (n - 7) / 4);
  }
  if (n % 4 == 2) return extend(make_g2k(3), (n - 2) / 4);
  return extend(make_special_g43(), (n - 4) / 4);
}

SolutionGraph make_small_k_family(int n, int k) {
  assert(k >= 1 && k <= 3);
  switch (k) {
    case 1: return make_family_k1(n);
    case 2: return make_family_k2(n);
    default: return make_family_k3(n);
  }
}

FamilyRecipe family_recipe(int n, int k) {
  assert(k >= 1 && k <= 3 && n >= 1);
  auto recipe = [](std::string base, int ext) {
    return FamilyRecipe{std::move(base), ext};
  };
  switch (k) {
    case 1:
      return n % 2 == 1 ? recipe("G(1,1)", (n - 1) / 2)
                        : recipe("G(2,1)", (n - 2) / 2);
    case 2:
      switch (n % 3) {
        case 0:
          return n == 3 ? recipe("G(3,2)", 0)
                        : recipe("special G(6,2)", (n - 6) / 3);
        case 1:
          return recipe("G(1,2)", (n - 1) / 3);
        default:
          return n <= 5 ? recipe("G(2,2)", (n - 2) / 3)
                        : recipe("special G(8,2)", (n - 8) / 3);
      }
    default:
      if (n % 2 == 1) {
        if (n % 4 == 1) return recipe("G(1,3)", (n - 1) / 4);
        if (n == 3) return recipe("G(3,3)", 0);
        return recipe("special G(7,3)", (n - 7) / 4);
      }
      return n % 4 == 2 ? recipe("G(2,3)", (n - 2) / 4)
                        : recipe("special G(4,3)", (n - 4) / 4);
  }
}

}  // namespace kgdp::kgd
