// Lemma 3.6's extension: from a standard k-gracefully-degradable graph G
// for n processors, build G' for n + k + 1 processors with the same
// maximum degree. The old input terminals are relabeled as processors and
// joined into a clique; k+1 fresh input terminals attach one-to-one to
// them. Iterating the lemma turns each finite base graph into an infinite
// arithmetic family (step k+1), which is how the k ∈ {1,2,3} theorems
// cover every n.
#pragma once

#include "kgd/labeled_graph.hpp"

namespace kgdp::kgd {

// One application of Lemma 3.6. Requires sg.is_standard().
SolutionGraph extend_once(const SolutionGraph& sg);

// `times` applications.
SolutionGraph extend(const SolutionGraph& sg, int times);

}  // namespace kgdp::kgd
