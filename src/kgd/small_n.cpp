#include "kgd/small_n.hpp"

#include <cassert>
#include <string>

namespace kgdp::kgd {

SolutionGraph make_g1k(int k) {
  assert(k >= 1);
  SolutionGraphBuilder b(/*n=*/1, k, "G(1," + std::to_string(k) + ")");

  // k+1 processors forming a complete subgraph; I = O = all of them.
  std::vector<Node> p;
  for (int j = 0; j <= k; ++j) {
    p.push_back(b.add(Role::kProcessor, "p" + std::to_string(j)));
  }
  for (int i = 0; i <= k; ++i) {
    for (int j = i + 1; j <= k; ++j) b.connect(p[i], p[j]);
  }
  for (int j = 0; j <= k; ++j) {
    const Node in = b.add(Role::kInput, "i" + std::to_string(j));
    const Node out = b.add(Role::kOutput, "o" + std::to_string(j));
    b.connect(in, p[j]);
    b.connect(out, p[j]);
  }
  return b.build();
}

SolutionGraph make_g2k(int k) {
  assert(k >= 1);
  SolutionGraphBuilder b(/*n=*/2, k, "G(2," + std::to_string(k) + ")");

  // k+2 processors forming a clique. p[0] = a (input-only terminal),
  // p[1] = b (output-only); p[2..k+1] carry one input and one output.
  std::vector<Node> p;
  for (int j = 0; j < k + 2; ++j) {
    p.push_back(b.add(Role::kProcessor, "p" + std::to_string(j)));
  }
  for (int i = 0; i < k + 2; ++i) {
    for (int j = i + 1; j < k + 2; ++j) b.connect(p[i], p[j]);
  }
  const Node ia = b.add(Role::kInput, "i_a");
  b.connect(ia, p[0]);
  const Node ob = b.add(Role::kOutput, "o_b");
  b.connect(ob, p[1]);
  for (int j = 2; j < k + 2; ++j) {
    const Node in = b.add(Role::kInput, "i" + std::to_string(j));
    const Node out = b.add(Role::kOutput, "o" + std::to_string(j));
    b.connect(in, p[j]);
    b.connect(out, p[j]);
  }
  return b.build();
}

SolutionGraph make_g3k(int k) {
  assert(k >= 1);
  SolutionGraphBuilder b(/*n=*/3, k, "G(3," + std::to_string(k) + ")");

  // Processors p0..p_{k+2}: clique minus the matching
  // {(p_{2q}, p_{2q+1}) : 0 <= q <= floor((k+1)/2)}. When k is odd the
  // matching is perfect (k+3 even, Figure 2); when k is even p_{k+2}
  // stays unmatched (Figure 3).
  const int np = k + 3;
  std::vector<Node> p;
  for (int j = 0; j < np; ++j) {
    p.push_back(b.add(Role::kProcessor, "p" + std::to_string(j)));
  }
  auto matched = [&](int i, int j) {
    if (i > j) std::swap(i, j);
    return j == i + 1 && i % 2 == 0;  // pair (p_{2q}, p_{2q+1})
  };
  for (int i = 0; i < np; ++i) {
    for (int j = i + 1; j < np; ++j) {
      if (!matched(i, j)) b.connect(p[i], p[j]);
    }
  }

  // Input terminals i_j for j in {0..k-2} ∪ {k, k+2};
  // output terminals o_j for j in {0..k-1} ∪ {k+1}. (k+1 of each;
  // i_{k-1}, o_k, i_{k+1}, o_{k+2} intentionally do not exist.)
  for (int j = 0; j < np; ++j) {
    const bool has_input = (j <= k - 2) || j == k || j == k + 2;
    const bool has_output = (j <= k - 1) || j == k + 1;
    if (has_input) {
      const Node in = b.add(Role::kInput, "i" + std::to_string(j));
      b.connect(in, p[j]);
    }
    if (has_output) {
      const Node out = b.add(Role::kOutput, "o" + std::to_string(j));
      b.connect(out, p[j]);
    }
  }
  return b.build();
}

}  // namespace kgdp::kgd
