// The four "special solutions" of §3.3 (Figures 10–13): degree-optimal
// standard graphs the paper found by hand-plus-computer search, used as
// extension bases by Theorems 3.15 and 3.16:
//   G(6,2)  max degree 4 (k+2)     — Figure 10
//   G(8,2)  max degree 4 (k+2)     — Figure 11
//   G(7,3)  max degree 5 (k+2)     — Figure 12
//   G(4,3)  max degree 6 (k+3)     — Figure 13
//
// The scan does not preserve their edge lists, so this module carries
// edge lists re-discovered by this library's own synthesizer
// (tools/synthesize_special) and certified by the exhaustive GD checker;
// tests re-verify them on every run. If an embedded graph is missing the
// builder falls back to synthesizing one on first use.
#pragma once

#include "kgd/labeled_graph.hpp"

namespace kgdp::kgd {

SolutionGraph make_special_g62();
SolutionGraph make_special_g82();
SolutionGraph make_special_g73();
SolutionGraph make_special_g43();

// Dispatch by (n, k); aborts on a non-special pair.
SolutionGraph make_special(int n, int k);

// True for the four (n, k) pairs above.
bool is_special_pair(int n, int k);

}  // namespace kgdp::kgd
