// Node-labeled solution graphs (§3 of the paper). Nodes carry one of
// three roles — input terminal, output terminal, processor — because a
// parallel machine's I/O devices are physically different from its
// processors and only certain nodes connect to them. A *solution graph*
// for parameters (n, k) aims to contain a pipeline of >= n processors
// after any <= k node faults.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/bitset.hpp"

namespace kgdp::kgd {

using graph::Graph;
using graph::Node;

enum class Role : std::uint8_t { kInput, kOutput, kProcessor };

const char* role_name(Role r);

// A set of faulty nodes, stored both as a bitset (fast membership) and a
// sorted list (iteration / reporting).
class FaultSet {
 public:
  FaultSet() = default;
  FaultSet(int num_nodes, std::vector<Node> faulty);

  static FaultSet none(int num_nodes) { return FaultSet(num_nodes, {}); }

  bool contains(Node v) const { return mask_.test(v); }
  int size() const { return static_cast<int>(list_.size()); }
  const std::vector<Node>& nodes() const { return list_; }
  const util::DynamicBitset& mask() const { return mask_; }
  int universe() const { return static_cast<int>(mask_.size()); }

  std::string to_string() const;

 private:
  util::DynamicBitset mask_;
  std::vector<Node> list_;
};

class SolutionGraph {
 public:
  SolutionGraph() = default;
  SolutionGraph(Graph g, std::vector<Role> roles, int n, int k,
                std::string name = {});

  const Graph& graph() const { return g_; }
  int num_nodes() const { return g_.num_nodes(); }
  Role role(Node v) const { return roles_[v]; }
  const std::vector<Role>& roles() const { return roles_; }
  const std::string& name() const { return name_; }

  // Design parameters: minimum pipeline length n, fault budget k.
  int n() const { return n_; }
  int k() const { return k_; }

  std::vector<Node> inputs() const { return nodes_with(Role::kInput); }
  std::vector<Node> outputs() const { return nodes_with(Role::kOutput); }
  std::vector<Node> processors() const {
    return nodes_with(Role::kProcessor);
  }
  int num_inputs() const { return count_role(Role::kInput); }
  int num_outputs() const { return count_role(Role::kOutput); }
  int num_processors() const { return count_role(Role::kProcessor); }

  // I (resp. O): processors adjacent to at least one input (output)
  // terminal — the paper's I and O sets for standard graphs.
  std::vector<Node> input_attached_processors() const;
  std::vector<Node> output_attached_processors() const;

  // Max/min degree over processor nodes only (the optimality metric).
  int max_processor_degree() const;
  int min_processor_degree() const;

  // Paper definitions:
  //   node-optimal: exactly k+1 inputs, k+1 outputs, n+k processors.
  //   standard:     node-optimal and every terminal has degree 1.
  bool is_node_optimal() const;
  bool all_terminals_degree_one() const;
  bool is_standard() const;

  // Human-readable node names ("i3", "o1", "p7", or construction-specific
  // labels); generated on construction.
  const std::vector<std::string>& node_names() const { return names_; }
  void set_node_names(std::vector<std::string> names);

  // DOT export with role-based colouring.
  std::string to_dot() const;

 private:
  std::vector<Node> nodes_with(Role r) const;
  int count_role(Role r) const;

  Graph g_;
  std::vector<Role> roles_;
  std::vector<std::string> names_;
  std::string name_;
  int n_ = 0;
  int k_ = 0;
};

// Incremental builder used by every construction.
class SolutionGraphBuilder {
 public:
  SolutionGraphBuilder(int n, int k, std::string name)
      : n_(n), k_(k), name_(std::move(name)) {}

  Node add(Role r, std::string node_name = {});
  void connect(Node u, Node v) { g_.add_edge(u, v); }
  bool has_edge(Node u, Node v) const { return g_.has_edge(u, v); }
  int num_nodes() const { return g_.num_nodes(); }

  SolutionGraph build();

 private:
  Graph g_;
  std::vector<Role> roles_;
  std::vector<std::string> names_;
  int n_;
  int k_;
  std::string name_;
};

}  // namespace kgdp::kgd
