#include "kgd/pipeline.hpp"

#include <algorithm>
#include <sstream>

#include "graph/properties.hpp"

namespace kgdp::kgd {

std::string Pipeline::to_string(const SolutionGraph& sg) const {
  std::ostringstream os;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (i) os << " - ";
    os << sg.node_names()[path[i]];
  }
  return os.str();
}

PipelineCheck check_pipeline(const SolutionGraph& sg, const FaultSet& faults,
                             const std::vector<Node>& path) {
  auto fail = [](std::string msg) { return PipelineCheck{false, std::move(msg)}; };

  if (path.size() < 2) return fail("pipeline needs >= 2 nodes (both terminals)");
  for (Node v : path) {
    if (v < 0 || v >= sg.num_nodes()) return fail("node id out of range");
    if (faults.contains(v)) {
      return fail("pipeline visits faulty node " + std::to_string(v));
    }
  }

  // Distinctness and edge validity.
  util::DynamicBitset seen(sg.num_nodes());
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (seen.test(path[i])) return fail("repeated node on pipeline");
    seen.set(path[i]);
    if (i > 0 && !sg.graph().has_edge(path[i - 1], path[i])) {
      return fail("non-edge between consecutive pipeline nodes");
    }
  }

  // Endpoint roles: one input terminal, one output terminal (either order).
  const Role r0 = sg.role(path.front());
  const Role rq = sg.role(path.back());
  const bool fwd = r0 == Role::kInput && rq == Role::kOutput;
  const bool bwd = r0 == Role::kOutput && rq == Role::kInput;
  if (!fwd && !bwd) return fail("endpoints must be one input and one output terminal");

  // Interior nodes are processors...
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    if (sg.role(path[i]) != Role::kProcessor) {
      return fail("interior pipeline node is a terminal");
    }
  }

  // ...and cover *every* healthy processor (graceful degradation).
  int healthy_processors = 0;
  for (Node v = 0; v < sg.num_nodes(); ++v) {
    if (sg.role(v) == Role::kProcessor && !faults.contains(v)) {
      ++healthy_processors;
      if (!seen.test(v)) {
        return fail("healthy processor " + std::to_string(v) +
                    " missing from pipeline");
      }
    }
  }
  if (static_cast<int>(path.size()) - 2 != healthy_processors) {
    return fail("pipeline interior size mismatch");
  }
  return {true, {}};
}

Pipeline normalize_pipeline(const SolutionGraph& sg, std::vector<Node> path) {
  if (!path.empty() && sg.role(path.front()) == Role::kOutput) {
    std::reverse(path.begin(), path.end());
  }
  return Pipeline{std::move(path)};
}

}  // namespace kgdp::kgd
