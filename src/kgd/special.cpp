#include "kgd/special.hpp"

#include <cassert>
#include <mutex>
#include <utility>
#include <vector>

#include "kgd/bounds.hpp"
#include "verify/synthesis.hpp"

namespace kgdp::kgd {

namespace {

struct SpecialData {
  int n;
  int k;
  // Processor subgraph on n+k nodes.
  std::vector<std::pair<int, int>> proc_edges;
  // Per-processor terminal attachment counts.
  std::vector<int> att_in;
  std::vector<int> att_out;
};

// Edge lists found by tools/synthesize_special (deterministic seeds) and
// certified by the exhaustive GD checker. Empty proc_edges means "not yet
// embedded" and triggers on-demand synthesis.
const SpecialData* embedded_data(int n, int k);

SolutionGraph build_from_data(const SpecialData& d, const char* name) {
  SolutionGraphBuilder b(d.n, d.k, name);
  const int P = d.n + d.k;
  for (int v = 0; v < P; ++v) b.add(Role::kProcessor);
  for (auto [u, v] : d.proc_edges) b.connect(u, v);
  for (int v = 0; v < P; ++v) {
    for (int j = 0; j < d.att_in[v]; ++j) b.connect(b.add(Role::kInput), v);
    for (int j = 0; j < d.att_out[v]; ++j) {
      b.connect(b.add(Role::kOutput), v);
    }
  }
  return b.build();
}

SolutionGraph synthesize_special(int n, int k, const char* name) {
  verify::SynthSpec spec{n, k, achieved_max_degree(n, k)};
  // Deterministic seed per (n, k) so the fallback is reproducible.
  const std::uint64_t seed =
      0x5eedULL * 1000003ULL + static_cast<std::uint64_t>(n) * 101 + k;
  auto found = verify::synthesize_stochastic(spec, seed,
                                             /*max_restarts=*/256,
                                             /*iters_per_restart=*/30000);
  assert(found && "special-solution synthesis failed; paper guarantees "
                  "existence (Theorems 3.15/3.16)");
  if (!found) std::abort();
  SolutionGraph sg = std::move(*found);
  return SolutionGraph(sg.graph(), sg.roles(), n, k, name);
}

SolutionGraph make_cached(int n, int k, const char* name) {
  if (const SpecialData* d = embedded_data(n, k)) {
    return build_from_data(*d, name);
  }
  // Synthesis fallback, cached per (n, k) because it is expensive.
  static std::mutex mu;
  static std::vector<std::pair<std::pair<int, int>, SolutionGraph>> cache;
  std::lock_guard lk(mu);
  for (const auto& [key, sg] : cache) {
    if (key == std::make_pair(n, k)) return sg;
  }
  SolutionGraph sg = synthesize_special(n, k, name);
  cache.emplace_back(std::make_pair(n, k), sg);
  return sg;
}

}  // namespace

SolutionGraph make_special_g62() { return make_cached(6, 2, "G(6,2)"); }
SolutionGraph make_special_g82() { return make_cached(8, 2, "G(8,2)"); }
SolutionGraph make_special_g73() { return make_cached(7, 3, "G(7,3)"); }
SolutionGraph make_special_g43() { return make_cached(4, 3, "G(4,3)"); }

bool is_special_pair(int n, int k) {
  return (k == 2 && (n == 6 || n == 8)) || (k == 3 && (n == 7 || n == 4));
}

SolutionGraph make_special(int n, int k) {
  assert(is_special_pair(n, k));
  if (k == 2 && n == 6) return make_special_g62();
  if (k == 2 && n == 8) return make_special_g82();
  if (k == 3 && n == 7) return make_special_g73();
  return make_special_g43();
}

namespace {

// ---- embedded edge lists (filled in by tools/synthesize_special) ----

const SpecialData* embedded_data(int n, int k) {
  // Discovered by tools/synthesize_special (stochastic edge-swap search
  // under the Lemma 3.1/3.4 degree constraints) and certified by the
  // exhaustive GD checker over every fault set of size <= k; the test
  // suite re-runs that certification.
  static const std::vector<SpecialData> kTable = {
      // G(6,2), Figure 10: 8 processors, uniform total degree 4 (= k+2).
      {6, 2,
       {{0, 1}, {0, 4}, {0, 5}, {1, 3}, {1, 7}, {2, 5}, {2, 6}, {2, 7},
        {3, 5}, {3, 6}, {4, 6}, {4, 7}, {6, 7}},
       {1, 1, 1, 0, 0, 0, 0, 0},
       {0, 0, 0, 1, 1, 1, 0, 0}},
      // G(8,2), Figure 11: 10 processors, uniform total degree 4.
      {8, 2,
       {{0, 1}, {0, 6}, {0, 8}, {1, 4}, {1, 6}, {2, 3}, {2, 7}, {2, 8},
        {3, 4}, {3, 9}, {4, 7}, {5, 7}, {5, 8}, {5, 9}, {6, 8}, {6, 9},
        {7, 9}},
       {1, 1, 1, 0, 0, 0, 0, 0, 0, 0},
       {0, 0, 0, 1, 1, 1, 0, 0, 0, 0}},
      // G(7,3), Figure 12: 10 processors, uniform total degree 5 (= k+2).
      {7, 3,
       {{0, 2}, {0, 3}, {0, 8}, {0, 9}, {1, 4}, {1, 6}, {1, 8}, {1, 9},
        {2, 4}, {2, 5}, {2, 8}, {3, 4}, {3, 7}, {3, 9}, {4, 7}, {5, 6},
        {5, 7}, {5, 8}, {6, 8}, {6, 9}, {7, 9}},
       {1, 1, 1, 1, 0, 0, 0, 0, 0, 0},
       {0, 0, 0, 0, 1, 1, 1, 1, 0, 0}},
      // G(4,3), Figure 13: 7 processors, max total degree 6 (= k+3,
      // forced by Lemma 3.5 since n is even and k odd).
      {4, 3,
       {{0, 1}, {0, 2}, {0, 3}, {0, 6}, {1, 2}, {1, 4}, {1, 5}, {1, 6},
        {2, 3}, {2, 4}, {2, 5}, {3, 4}, {3, 5}, {3, 6}, {4, 5}, {4, 6},
        {5, 6}},
       {1, 1, 1, 1, 0, 0, 0},
       {1, 0, 0, 0, 1, 1, 1}},
  };
  for (const SpecialData& d : kTable) {
    if (d.n == n && d.k == k && !d.proc_edges.empty()) return &d;
  }
  return nullptr;
}

}  // namespace

}  // namespace kgdp::kgd
