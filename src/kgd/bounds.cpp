#include "kgd/bounds.hpp"

#include <cassert>
#include <string>

namespace kgdp::kgd {

int max_degree_lower_bound(int n, int k) {
  assert(n >= 1 && k >= 1);
  // Corollary 3.2 baseline.
  int bound = k + 2;
  // Lemma 3.5: n even and k odd forces k+3 for standard graphs.
  if (n % 2 == 0 && k % 2 == 1) bound = k + 3;
  // G(2,k) carries a node with two terminals: k+3 (Lemma 3.9/Cor 3.10).
  if (n == 2) bound = k + 3;
  // Lemma 3.11: n = 3, k > 1.
  if (n == 3 && k > 1) bound = k + 3;
  // Lemma 3.14: n = 5, k = 2.
  if (n == 5 && k == 2) bound = k + 3;
  return bound;
}

int achieved_max_degree(int n, int k) {
  assert(n >= 1 && k >= 1);
  if (n == 1) return k + 2;                    // Lemma 3.7
  if (n == 2) return k + 3;                    // Lemma 3.9
  if (n == 3) return k == 1 ? k + 2 : k + 3;   // §3.2 construction
  switch (k) {
    case 1:  // Theorem 3.13
      return n % 2 == 1 ? k + 2 : k + 3;
    case 2:  // Theorem 3.15
      return (n == 5) ? k + 3 : k + 2;
    case 3:  // Theorem 3.16
      return n % 2 == 1 ? k + 2 : k + 3;
    default:  // §3.4, n sufficiently large
      return (n % 2 == 0 && k % 2 == 1) ? k + 3 : k + 2;
  }
}

int processor_neighbor_count(const SolutionGraph& sg, Node v) {
  int c = 0;
  for (Node w : sg.graph().neighbors(v)) {
    if (sg.role(w) == Role::kProcessor) ++c;
  }
  return c;
}

std::vector<std::string> audit_bounds(const SolutionGraph& sg) {
  std::vector<std::string> issues;
  const int n = sg.n();
  const int k = sg.k();

  if (!sg.is_node_optimal()) {
    issues.push_back("not node-optimal: expected " + std::to_string(k + 1) +
                     "/" + std::to_string(k + 1) + "/" +
                     std::to_string(n + k) + " inputs/outputs/processors");
  }
  if (!sg.all_terminals_degree_one()) {
    issues.push_back("a terminal node has degree != 1");
  }
  if (sg.min_processor_degree() < min_processor_degree_bound(k)) {
    issues.push_back("processor degree below k+2 (violates Lemma 3.1)");
  }
  for (Node v = 0; v < sg.num_nodes(); ++v) {
    if (sg.role(v) != Role::kProcessor) continue;
    if (processor_neighbor_count(sg, v) <
        min_processor_neighbors_bound(n, k)) {
      issues.push_back("processor " + std::to_string(v) +
                       " has fewer than k+1 processor neighbors "
                       "(violates Lemma 3.4)");
    }
  }
  if (sg.max_processor_degree() > achieved_max_degree(n, k)) {
    issues.push_back("max processor degree " +
                     std::to_string(sg.max_processor_degree()) +
                     " exceeds the theorem target " +
                     std::to_string(achieved_max_degree(n, k)));
  }
  return issues;
}

}  // namespace kgdp::kgd
