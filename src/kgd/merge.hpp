// The merged-terminal model (§3): when the input and output devices are
// guaranteed fault-free, merge all input terminals into a single node i
// and all output terminals into o. Each terminal then has degree k+1 —
// the minimum possible, since with fewer neighbors a fault set could
// isolate it.
#pragma once

#include "kgd/labeled_graph.hpp"

namespace kgdp::kgd {

// Merge Ti into one input node and To into one output node. Requires a
// standard graph. The result keeps parameters (n, k); a pipeline in the
// merged model is a path from the unique input to the unique output
// through all healthy processors, with faults restricted to processors.
SolutionGraph merge_terminals(const SolutionGraph& sg);

}  // namespace kgdp::kgd
