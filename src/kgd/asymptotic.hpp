// The asymptotic construction (§3.4): for k >= 4 and n sufficiently
// large, a node- and degree-optimal k-gracefully-degradable graph built
// around a circulant processor core.
//
// Extended graph G'(n,k): six node classes Ti', To', I', O', S', R'.
// |Ti'| = |To'| = |I'| = |O'| = |S'| = k+2 (labels 0..k+1) and
// |R'| = n-2k-4 (labels k+2..n-k-3). C' = S' ∪ R' carries a circulant
// graph on m = n-k-2 labels with offsets {1, …, p+1}, p = ⌊k/2⌋, plus a
// "bisector" offset ⌊m/2⌋ when k is odd. I' and O' are cliques;
// same-label edges join Ti'–I'–S'–O'–To'.
//
// The solution graph G(n,k) deletes the label-0 nodes of Ti' and I', the
// label-(k+1) nodes of To' and O', and the offset-1 edges inside S. The
// result has n+3k+2 nodes, is standard, and every node of I ∪ O ∪ C has
// degree k+2 when k is even or both n and k are odd; when n is even and
// k is odd the maximum degree is k+3, matching the Lemma 3.5 lower bound.
// (The scan of the paper garbles the offset-set parameter; this
// reconstruction is fixed by the degree claims above, which the test
// suite re-derives and checks for a grid of (n, k).)
#pragma once

#include "kgd/labeled_graph.hpp"

namespace kgdp::kgd {

// Node-class tags for inspection and figure regeneration.
enum class AsymptoticClass : std::uint8_t { kTi, kTo, kI, kO, kS, kR };

struct AsymptoticInfo {
  std::vector<AsymptoticClass> node_class;  // per node id
  std::vector<int> label;                   // per node id
  int m = 0;                                // |C| = n - k - 2
  int p = 0;                                // ⌊k/2⌋
  bool has_bisector = false;                // k odd
  int bisector_offset = 0;                  // ⌊m/2⌋ when has_bisector
};

// Smallest n the construction is well-formed for (R nonempty, offsets
// distinct): 2k+5. GD itself additionally needs n = Ω(k); see
// EXPERIMENTS.md for the empirically certified frontier.
int asymptotic_min_n(int k);

// The extended graph G'(n,k) — not itself the solution graph, but the
// regular object the construction is derived from. Requires k >= 4 and
// n >= asymptotic_min_n(k).
SolutionGraph make_extended_gnk(int n, int k, AsymptoticInfo* info = nullptr);

// The solution graph G(n,k).
SolutionGraph make_asymptotic_gnk(int n, int k,
                                  AsymptoticInfo* info = nullptr);

}  // namespace kgdp::kgd
