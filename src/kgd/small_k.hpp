// Complete degree-optimal families for k ∈ {1, 2, 3} and every n >= 1
// (Theorems 3.13, 3.15, 3.16): each n is reached from a finite base —
// G(1,k), G(2,k), G(3,k) or one of the §3.3 special solutions — by
// iterating the Lemma 3.6 extension (which adds k+1 processors per step
// and preserves the maximum degree).
#pragma once

#include "kgd/labeled_graph.hpp"

namespace kgdp::kgd {

// Builds the theorem's solution graph for the given n. Requires
// k ∈ {1,2,3}, n >= 1.
SolutionGraph make_family_k1(int n);
SolutionGraph make_family_k2(int n);
SolutionGraph make_family_k3(int n);

// Dispatch; requires k ∈ {1,2,3}.
SolutionGraph make_small_k_family(int n, int k);

// The base graph + extension count the theorem uses for (n, k); useful
// for reporting and tests.
struct FamilyRecipe {
  std::string base;  // e.g. "G(2,3)", "special G(7,3)"
  int extensions = 0;
};
FamilyRecipe family_recipe(int n, int k);

}  // namespace kgdp::kgd
