#include "kgd/asymptotic.hpp"

#include <cassert>
#include <string>

namespace kgdp::kgd {

namespace {

// Shared skeleton: builds either G'(n,k) (keep_all = true) or G(n,k).
SolutionGraph build(int n, int k, bool keep_all, AsymptoticInfo* info) {
  assert(k >= 4);
  assert(n >= asymptotic_min_n(k));

  const int m = n - k - 2;   // |C|
  const int p = k / 2;       // chord offsets 1..p+1
  const bool bisector = (k % 2 == 1);
  const int bisector_offset = m / 2;

  SolutionGraphBuilder b(
      n, k,
      std::string(keep_all ? "G'(" : "G(") + std::to_string(n) + "," +
          std::to_string(k) + ")");

  // Node ids per class, indexed by label; -1 = deleted in G(n,k).
  std::vector<Node> ti(k + 2, -1), to(k + 2, -1), vi(k + 2, -1),
      vo(k + 2, -1);
  std::vector<Node> c(m, -1);  // circulant core: labels 0..k+1 are S,
                               // labels k+2..m-1 are R.

  AsymptoticInfo local;
  auto tag = [&](Node v, AsymptoticClass cls, int label) {
    if (static_cast<int>(local.node_class.size()) <= v) {
      local.node_class.resize(v + 1);
      local.label.resize(v + 1);
    }
    local.node_class[v] = cls;
    local.label[v] = label;
  };

  for (int x = 0; x <= k + 1; ++x) {
    if (keep_all || x != 0) {
      ti[x] = b.add(Role::kInput, "Ti" + std::to_string(x));
      tag(ti[x], AsymptoticClass::kTi, x);
    }
    if (keep_all || x != k + 1) {
      to[x] = b.add(Role::kOutput, "To" + std::to_string(x));
      tag(to[x], AsymptoticClass::kTo, x);
    }
    if (keep_all || x != 0) {
      vi[x] = b.add(Role::kProcessor, "I" + std::to_string(x));
      tag(vi[x], AsymptoticClass::kI, x);
    }
    if (keep_all || x != k + 1) {
      vo[x] = b.add(Role::kProcessor, "O" + std::to_string(x));
      tag(vo[x], AsymptoticClass::kO, x);
    }
  }
  for (int x = 0; x < m; ++x) {
    const bool in_s = x <= k + 1;
    c[x] = b.add(Role::kProcessor,
                 (in_s ? "S" : "R") + std::to_string(x));
    tag(c[x], in_s ? AsymptoticClass::kS : AsymptoticClass::kR, x);
  }

  auto connect_if = [&](Node u, Node v) {
    if (u >= 0 && v >= 0) b.connect(u, v);
  };

  // Same-label ladder Ti—I—S—O—To.
  for (int x = 0; x <= k + 1; ++x) {
    connect_if(ti[x], vi[x]);
    connect_if(vi[x], c[x]);
    connect_if(c[x], vo[x]);
    connect_if(vo[x], to[x]);
  }
  // I and O cliques.
  for (int x = 0; x <= k + 1; ++x) {
    for (int y = x + 1; y <= k + 1; ++y) {
      connect_if(vi[x], vi[y]);
      connect_if(vo[x], vo[y]);
    }
  }
  // Circulant core with offsets 1..p+1 (+ bisector). In G(n,k) the
  // offset-1 edges whose endpoints are both in S are removed.
  for (int s = 1; s <= p + 1; ++s) {
    for (int x = 0; x < m; ++x) {
      const int y = (x + s) % m;
      if (!keep_all && s == 1 && x <= k + 1 && y <= k + 1 && y == x + 1) {
        continue;  // deleted S–S unit edge
      }
      if (!b.has_edge(c[x], c[y])) b.connect(c[x], c[y]);
    }
  }
  if (bisector) {
    for (int x = 0; x < m; ++x) {
      const int y = (x + bisector_offset) % m;
      if (c[x] != c[y] && !b.has_edge(c[x], c[y])) b.connect(c[x], c[y]);
    }
  }

  local.m = m;
  local.p = p;
  local.has_bisector = bisector;
  local.bisector_offset = bisector ? bisector_offset : 0;
  if (info) *info = std::move(local);
  return b.build();
}

}  // namespace

int asymptotic_min_n(int k) {
  assert(k >= 4);
  return 2 * k + 5;
}

SolutionGraph make_extended_gnk(int n, int k, AsymptoticInfo* info) {
  return build(n, k, /*keep_all=*/true, info);
}

SolutionGraph make_asymptotic_gnk(int n, int k, AsymptoticInfo* info) {
  return build(n, k, /*keep_all=*/false, info);
}

}  // namespace kgdp::kgd
