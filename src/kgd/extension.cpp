#include "kgd/extension.hpp"

#include <cassert>
#include <string>

namespace kgdp::kgd {

SolutionGraph extend_once(const SolutionGraph& sg) {
  assert(sg.is_standard());
  const int k = sg.k();
  const int new_n = sg.n() + k + 1;

  Graph g = sg.graph();
  std::vector<Role> roles = sg.roles();
  std::vector<std::string> names = sg.node_names();

  // Old input terminals become processors and form a clique.
  const std::vector<Node> old_inputs = sg.inputs();
  assert(static_cast<int>(old_inputs.size()) == k + 1);
  for (Node t : old_inputs) {
    roles[t] = Role::kProcessor;
    names[t] = "p<" + names[t] + ">";
  }
  for (std::size_t i = 0; i < old_inputs.size(); ++i) {
    for (std::size_t j = i + 1; j < old_inputs.size(); ++j) {
      g.add_edge(old_inputs[i], old_inputs[j]);
    }
  }

  // Fresh input terminals, one per relabeled node (the bijection phi).
  for (std::size_t j = 0; j < old_inputs.size(); ++j) {
    const Node t = g.add_node();
    roles.push_back(Role::kInput);
    names.push_back("i'" + std::to_string(j));
    g.add_edge(t, old_inputs[j]);
  }

  SolutionGraph out(std::move(g), std::move(roles), new_n, k,
                    "ext(" + sg.name() + ")");
  out.set_node_names(std::move(names));
  return out;
}

SolutionGraph extend(const SolutionGraph& sg, int times) {
  assert(times >= 0);
  SolutionGraph cur = sg;
  for (int i = 0; i < times; ++i) cur = extend_once(cur);
  return cur;
}

}  // namespace kgdp::kgd
