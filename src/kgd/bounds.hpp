// The paper's lower bounds (§3.1) as executable predicates, plus the
// degree-optimality target the theorems establish for each (n, k).
#pragma once

#include "kgd/labeled_graph.hpp"

namespace kgdp::kgd {

// Lemma 3.1 / Corollary 3.2: every processor node of a k-GD graph has
// degree >= k+2.
constexpr int min_processor_degree_bound(int k) { return k + 2; }

// Lemma 3.4: for n > 1, every processor has >= k+1 processor neighbors.
constexpr int min_processor_neighbors_bound(int n, int k) {
  return n > 1 ? k + 1 : 0;
}

// Lemma 3.5 (parity), Lemma 3.11 (n = 3, k > 1), Lemma 3.14 (n = 5,
// k = 2), plus Corollary 3.2: the provable lower bound on the maximum
// processor degree of a *standard* solution graph.
int max_degree_lower_bound(int n, int k);

// The max processor degree the paper's constructions achieve (Theorems
// 3.13, 3.15, 3.16 for k <= 3; §3.4 for k >= 4 and n large). Matches
// max_degree_lower_bound everywhere a construction exists, i.e. the
// constructions are degree-optimal.
int achieved_max_degree(int n, int k);

// Number of processor-neighbors of processor v.
int processor_neighbor_count(const SolutionGraph& sg, Node v);

// Audit a graph against every applicable bound; empty return = clean.
std::vector<std::string> audit_bounds(const SolutionGraph& sg);

}  // namespace kgdp::kgd
