#include "kgd/labeled_graph.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "graph/dot.hpp"

namespace kgdp::kgd {

const char* role_name(Role r) {
  switch (r) {
    case Role::kInput: return "input";
    case Role::kOutput: return "output";
    case Role::kProcessor: return "processor";
  }
  return "?";
}

FaultSet::FaultSet(int num_nodes, std::vector<Node> faulty)
    : mask_(num_nodes), list_(std::move(faulty)) {
  std::sort(list_.begin(), list_.end());
  list_.erase(std::unique(list_.begin(), list_.end()), list_.end());
  for (Node v : list_) {
    assert(v >= 0 && v < num_nodes);
    mask_.set(v);
  }
}

std::string FaultSet::to_string() const {
  std::ostringstream os;
  os << '{';
  for (std::size_t i = 0; i < list_.size(); ++i) {
    if (i) os << ',';
    os << list_[i];
  }
  os << '}';
  return os.str();
}

SolutionGraph::SolutionGraph(Graph g, std::vector<Role> roles, int n, int k,
                             std::string name)
    : g_(std::move(g)), roles_(std::move(roles)), name_(std::move(name)),
      n_(n), k_(k) {
  assert(static_cast<int>(roles_.size()) == g_.num_nodes());
  if (names_.empty()) {
    names_.reserve(roles_.size());
    int ni = 0, no = 0, np = 0;
    for (Role r : roles_) {
      switch (r) {
        case Role::kInput: names_.push_back("i" + std::to_string(ni++)); break;
        case Role::kOutput: names_.push_back("o" + std::to_string(no++)); break;
        case Role::kProcessor:
          names_.push_back("p" + std::to_string(np++));
          break;
      }
    }
  }
}

std::vector<Node> SolutionGraph::nodes_with(Role r) const {
  std::vector<Node> out;
  for (Node v = 0; v < num_nodes(); ++v) {
    if (roles_[v] == r) out.push_back(v);
  }
  return out;
}

int SolutionGraph::count_role(Role r) const {
  int c = 0;
  for (Role x : roles_) c += (x == r);
  return c;
}

std::vector<Node> SolutionGraph::input_attached_processors() const {
  std::vector<Node> out;
  for (Node v = 0; v < num_nodes(); ++v) {
    if (roles_[v] != Role::kProcessor) continue;
    for (Node w : g_.neighbors(v)) {
      if (roles_[w] == Role::kInput) {
        out.push_back(v);
        break;
      }
    }
  }
  return out;
}

std::vector<Node> SolutionGraph::output_attached_processors() const {
  std::vector<Node> out;
  for (Node v = 0; v < num_nodes(); ++v) {
    if (roles_[v] != Role::kProcessor) continue;
    for (Node w : g_.neighbors(v)) {
      if (roles_[w] == Role::kOutput) {
        out.push_back(v);
        break;
      }
    }
  }
  return out;
}

int SolutionGraph::max_processor_degree() const {
  int d = 0;
  for (Node v = 0; v < num_nodes(); ++v) {
    if (roles_[v] == Role::kProcessor) d = std::max(d, g_.degree(v));
  }
  return d;
}

int SolutionGraph::min_processor_degree() const {
  int d = num_nodes();
  for (Node v = 0; v < num_nodes(); ++v) {
    if (roles_[v] == Role::kProcessor) d = std::min(d, g_.degree(v));
  }
  return d;
}

bool SolutionGraph::is_node_optimal() const {
  return num_inputs() == k_ + 1 && num_outputs() == k_ + 1 &&
         num_processors() == n_ + k_;
}

bool SolutionGraph::all_terminals_degree_one() const {
  for (Node v = 0; v < num_nodes(); ++v) {
    if (roles_[v] != Role::kProcessor && g_.degree(v) != 1) return false;
  }
  return true;
}

bool SolutionGraph::is_standard() const {
  return is_node_optimal() && all_terminals_degree_one();
}

void SolutionGraph::set_node_names(std::vector<std::string> names) {
  assert(names.size() == roles_.size());
  names_ = std::move(names);
}

std::string SolutionGraph::to_dot() const {
  std::vector<std::string> colors(roles_.size());
  for (std::size_t v = 0; v < roles_.size(); ++v) {
    switch (roles_[v]) {
      case Role::kInput: colors[v] = "lightblue"; break;
      case Role::kOutput: colors[v] = "lightsalmon"; break;
      case Role::kProcessor: colors[v] = "lightgray"; break;
    }
  }
  return graph::to_dot(g_, name_.empty() ? std::string("G") : name_,
                       &names_, &colors);
}

Node SolutionGraphBuilder::add(Role r, std::string node_name) {
  const Node v = g_.add_node();
  roles_.push_back(r);
  if (node_name.empty()) {
    const char prefix = r == Role::kInput ? 'i'
                        : r == Role::kOutput ? 'o'
                                             : 'p';
    node_name = std::string(1, prefix) + std::to_string(v);
  }
  names_.push_back(std::move(node_name));
  return v;
}

SolutionGraph SolutionGraphBuilder::build() {
  SolutionGraph sg(std::move(g_), std::move(roles_), n_, k_,
                   std::move(name_));
  sg.set_node_names(std::move(names_));
  return sg;
}

}  // namespace kgdp::kgd
