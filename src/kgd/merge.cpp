#include "kgd/merge.hpp"

#include <cassert>

namespace kgdp::kgd {

SolutionGraph merge_terminals(const SolutionGraph& sg) {
  assert(sg.is_standard());
  const int n_old = sg.num_nodes();

  // New ids: processors keep relative order; then node i, then node o.
  std::vector<Node> remap(n_old, -1);
  int next = 0;
  for (Node v = 0; v < n_old; ++v) {
    if (sg.role(v) == Role::kProcessor) remap[v] = next++;
  }
  const Node node_i = next++;
  const Node node_o = next++;

  Graph g(next);
  std::vector<Role> roles(next, Role::kProcessor);
  roles[node_i] = Role::kInput;
  roles[node_o] = Role::kOutput;

  for (auto [u, v] : sg.graph().edges()) {
    Node a = sg.role(u) == Role::kProcessor ? remap[u]
             : sg.role(u) == Role::kInput   ? node_i
                                            : node_o;
    Node b = sg.role(v) == Role::kProcessor ? remap[v]
             : sg.role(v) == Role::kInput   ? node_i
                                            : node_o;
    if (!g.has_edge(a, b)) g.add_edge(a, b);
  }

  std::vector<std::string> names(next);
  for (Node v = 0; v < n_old; ++v) {
    if (remap[v] >= 0) names[remap[v]] = sg.node_names()[v];
  }
  names[node_i] = "i";
  names[node_o] = "o";

  SolutionGraph out(std::move(g), std::move(roles), sg.n(), sg.k(),
                    "merged(" + sg.name() + ")");
  out.set_node_names(std::move(names));
  return out;
}

}  // namespace kgdp::kgd
