// Unified entry point: build the paper's k-gracefully-degradable solution
// graph for any covered (n, k). Coverage mirrors the paper exactly:
//   n ∈ {1,2,3}, any k >= 1     (§3.2)
//   k ∈ {1,2,3}, any n >= 1     (§3.3)
//   k >= 4, n >= 2k+5           (§3.4; GD certified for n large enough,
//                                see EXPERIMENTS.md for the frontier)
#pragma once

#include <optional>
#include <string>

#include "kgd/labeled_graph.hpp"

namespace kgdp::kgd {

// True iff the library has a construction for (n, k).
bool is_supported(int n, int k);

// Which construction `build_solution` would use ("small-n", "family-k1",
// "asymptotic", ...), or "unsupported".
std::string construction_method(int n, int k);

// Builds the solution graph, or nullopt if (n, k) is not covered by any
// construction in the paper.
std::optional<SolutionGraph> build_solution(int n, int k);

}  // namespace kgdp::kgd
