// Constructions for small pipeline lengths and arbitrary fault budget k
// (paper §3.2):
//   G(1,k)  — Lemma 3.7: clique on k+1 processors, each with one input
//             and one output terminal; the unique standard solution.
//   G(2,k)  — Lemma 3.9: clique on k+2 processors; two distinguished
//             processors a, b carry only an input (resp. only an output)
//             terminal; every other processor carries one of each. The
//             unique standard solution; max degree k+3 (optimal,
//             Corollary 3.10).
//   G(3,k)  — general construction with k+3 processors forming a clique
//             minus the perfect/near-perfect matching {p_{2q}, p_{2q+1}},
//             and the terminal index pattern of Figures 2–3. Max degree
//             k+3 for k >= 2 (optimal, Lemma 3.11) and k+2 for k = 1.
#pragma once

#include "kgd/labeled_graph.hpp"

namespace kgdp::kgd {

SolutionGraph make_g1k(int k);
SolutionGraph make_g2k(int k);
SolutionGraph make_g3k(int k);

}  // namespace kgdp::kgd
