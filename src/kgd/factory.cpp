#include "kgd/factory.hpp"

#include "kgd/asymptotic.hpp"
#include "kgd/small_k.hpp"
#include "kgd/small_n.hpp"

namespace kgdp::kgd {

bool is_supported(int n, int k) {
  if (n < 1 || k < 1) return false;
  if (n <= 3) return true;
  if (k <= 3) return true;
  return n >= asymptotic_min_n(k);
}

std::string construction_method(int n, int k) {
  if (n < 1 || k < 1) return "unsupported";
  if (n == 1) return "G(1,k) clique (Lemma 3.7)";
  if (n == 2) return "G(2,k) clique (Lemma 3.9)";
  if (n == 3) return "G(3,k) clique-minus-matching (§3.2)";
  if (k <= 3) {
    const FamilyRecipe r = family_recipe(n, k);
    return "family k=" + std::to_string(k) + ": " + r.base + " + " +
           std::to_string(r.extensions) + " extension(s)";
  }
  if (n >= asymptotic_min_n(k)) return "asymptotic circulant (§3.4)";
  return "unsupported";
}

std::optional<SolutionGraph> build_solution(int n, int k) {
  if (!is_supported(n, k)) return std::nullopt;
  if (n == 1) return make_g1k(k);
  if (n == 2) return make_g2k(k);
  if (n == 3) return make_g3k(k);
  if (k <= 3) return make_small_k_family(n, k);
  return make_asymptotic_gnk(n, k);
}

}  // namespace kgdp::kgd
