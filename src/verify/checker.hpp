// Graceful-degradation certification. GD(G,k) holds iff every fault set
// of size <= k leaves a pipeline; the exhaustive checker decides this by
// quantifier elimination (enumerate + exact solve), sharded across a
// thread pool. The sampled checker covers instances whose fault-set space
// is out of exhaustive reach.
#pragma once

#include <cstdint>
#include <optional>

#include "kgd/labeled_graph.hpp"
#include "util/thread_pool.hpp"
#include "verify/pipeline_solver.hpp"

namespace kgdp::verify {

struct CheckResult {
  // True when every checked fault set tolerated. For the exhaustive
  // checker this certifies GD(G,k); for the sampled checker it is
  // evidence only.
  bool holds = false;
  bool exhaustive = false;
  std::uint64_t fault_sets_checked = 0;
  std::uint64_t solver_unknowns = 0;  // always 0 with exact settings
  std::optional<kgd::FaultSet> counterexample;
};

struct CheckOptions {
  // Give the DFS this much budget before the exact DP fallback.
  std::uint64_t dfs_budget = 1u << 20;
  // Optional pool; nullptr = run sequentially on the calling thread.
  util::ThreadPool* pool = nullptr;
};

// Decides GD(sg, max_faults) exactly.
CheckResult check_gd_exhaustive(const kgd::SolutionGraph& sg, int max_faults,
                                const CheckOptions& opts = {});

// Samples `samples` random fault sets of size <= max_faults (uniform over
// sizes 0..max_faults weighted by count) plus the adversarial suite.
CheckResult check_gd_sampled(const kgd::SolutionGraph& sg, int max_faults,
                             std::uint64_t samples, std::uint64_t seed,
                             const CheckOptions& opts = {});

}  // namespace kgdp::verify
