// Graceful-degradation certification. GD(G,k) holds iff every fault set
// of size <= k leaves a pipeline; the exhaustive checker decides this by
// quantifier elimination (enumerate + exact solve). Two refinements keep
// the quantifier tractable: symmetry pruning (one solve per orbit of the
// label-respecting automorphism group, weighted by orbit size) and a
// work-stealing parallel sweep. Both are exact: pruned and unpruned runs
// are two implementations of the same forall. The sampled checker covers
// instances whose fault-set space is out of exhaustive reach.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "kgd/labeled_graph.hpp"
#include "util/thread_pool.hpp"
#include "verify/pipeline_solver.hpp"

namespace kgdp::verify {

struct CheckResult {
  // True when every checked fault set tolerated. For the exhaustive
  // checker this certifies GD(G,k); for the sampled checker it is
  // evidence only.
  bool holds = false;
  bool exhaustive = false;
  // Fault sets certified. With symmetry pruning each solved orbit
  // certifies its whole orbit, so on a completed sweep this equals the
  // full quantifier domain even though fewer solves ran.
  std::uint64_t fault_sets_checked = 0;
  std::uint64_t solver_unknowns = 0;  // always 0 with exact settings
  std::optional<kgd::FaultSet> counterexample;
  // Global FaultEnumerator index of the counterexample (exhaustive mode).
  // This is what makes shard merging deterministic: across shards the
  // lowest index wins, reproducing the unsharded sequential verdict.
  std::optional<std::uint64_t> counterexample_index;

  // --- observability (exhaustive checker only) ---
  // Solver invocations actually performed (== orbit representatives
  // visited; fault_sets_checked minus the symmetry-implied sets).
  std::uint64_t fault_sets_solved = 0;
  // Fault sets whose verdict came from symmetry instead of a solve.
  std::uint64_t orbits_pruned = 0;
  // Order of the label-respecting automorphism group used for pruning
  // (1 when pruning was off or declined).
  std::uint64_t automorphism_order = 1;
  // Work-stealing scheduler: number of range-split steals (0 when
  // sequential).
  std::uint64_t steal_count = 0;
  // Wall-clock seconds each worker spent solving; size = worker count
  // (1 when sequential).
  std::vector<double> worker_solve_seconds;
  // Solver engine counters, summed across workers. Patch/rebuild split
  // depends on chunking and stealing, so like steal_count these are
  // observability — never part of the deterministic verdict.
  std::uint64_t solver_patches = 0;      // delta-applied fault updates
  std::uint64_t solver_rebuilds = 0;     // full fault-view rebuilds
  std::uint64_t solver_search_nodes = 0; // Hamiltonian DFS expansions
  std::uint64_t solver_scratch_bytes = 0;// retained solver scratch (gauge)
  // Verdict-mode walk engine split: verdicts settled by the heuristic
  // walk vs decided by the exact search after a walk miss.
  std::uint64_t solver_walk_hits = 0;
  std::uint64_t solver_walk_fallbacks = 0;
  // Verdict-cache traffic attributable to this session (all 0 when no
  // cache was attached). A hit certifies without a solve, so with a
  // cache fault_sets_solved counts only the actual solver invocations:
  // checked == solved + orbits_pruned + cache_hits on a completed sweep.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t cache_inserts = 0;
  std::uint64_t cache_evictions = 0;
  // Batch setup kernel the session's solvers selected (identical across
  // workers — dispatch is deterministic per process). Records what
  // actually ran, including silent fallbacks from invalid lane widths.
  const char* solver_kernel_name = "scalar";
  int solver_kernel_width = 1;
  const char* solver_kernel_isa = "portable";
};

// Symmetry handling for the exhaustive checker.
enum class PruneMode {
  kAuto,  // compute the automorphism group; prune when it is usable
  kOff,   // always enumerate the full fault-set space
};

class VerdictCache;  // verify/verdict_cache.hpp

struct CheckOptions {
  // Give the DFS this much budget before the exact DP fallback.
  std::uint64_t dfs_budget = 1u << 20;
  // Optional pool; nullptr = run sequentially on the calling thread.
  util::ThreadPool* pool = nullptr;
  PruneMode prune = PruneMode::kAuto;
  // Fault sets handed to the solver per batched pass on the <= 64-node
  // fast path: the exhaustive sweep gathers contiguous colex runs of
  // this length and solves them lane-parallel (PipelineSolver::
  // solve_batch). 1 = legacy per-item path. Verdicts and counterexample
  // indices are bit-identical either way; on a failing run the batched
  // sweep may do (and report) up to batch-1 extra solver invocations
  // past the counterexample, like the work-stealing parallel sweep.
  std::uint32_t batch = 64;
  // Lane width for the batch setup kernel: 1/2/4/8/16 force a portable
  // width, 0 = auto (widest of AVX-512/AVX2/NEON the build and CPU
  // support). Any width is bit-identical; perf knob only.
  int lanes = 0;
  // Optional shared orbit-canonical verdict cache (owned by the caller;
  // must outlive the session). Consulted by sampled sessions and by the
  // batched exhaustive sweep so isomorphic instances are never re-solved
  // across sessions; nullptr = off. Hits can only replace a solve with
  // an equal verdict, so results are bit-identical with or without it.
  VerdictCache* cache = nullptr;
};

enum class CheckMode {
  kExhaustive,  // certify: every fault set of size <= max_faults
  kSampled,     // evidence: adversarial suite + random samples
};

// The single checker entry point: every check is a CheckRequest resolved
// either one-shot by run_check() or stepwise by verify::CheckSession
// (check_session.hpp), which exposes the same sweep as a resumable,
// shardable session with a serializable cursor. The factories build the
// two standard requests.
struct CheckRequest {
  CheckMode mode = CheckMode::kExhaustive;
  int max_faults = 0;
  // Sampled mode only.
  std::uint64_t samples = 0;
  std::uint64_t seed = 0;
  CheckOptions options;
  // Deterministic range partitioning (exhaustive mode only): this session
  // certifies the shard_index-th of shard_count contiguous slices of the
  // orbit slot space. Sampled mode requires shard_count == 1.
  std::uint32_t shard_index = 0;
  std::uint32_t shard_count = 1;
  // Explicit lease-bounded slot range [slot_begin, slot_end) — the fleet
  // coordinator's unit of dispatch (exhaustive mode only; mutually
  // exclusive with a non-trivial shard spec). Unlike shards, lease
  // ranges are not derived from an (index, count) pair, so a lease can
  // be truncated mid-flight (CheckSession::truncate) when its tail is
  // stolen; the cursor fingerprint binds slot_begin but NOT slot_end so
  // a saved cursor stays valid across truncation and reassignment.
  bool has_slots = false;
  std::uint64_t slot_begin = 0;
  std::uint64_t slot_end = 0;

  // Decides GD(sg, max_faults) exactly. Deterministic for a fixed prune
  // mode: the counterexample, when one exists, is the lowest-index
  // failing orbit representative regardless of thread count.
  static CheckRequest exhaustive(int max_faults,
                                 const CheckOptions& opts = {}) {
    CheckRequest req;
    req.mode = CheckMode::kExhaustive;
    req.max_faults = max_faults;
    req.options = opts;
    return req;
  }

  // Certifies only orbit slots [begin, end) of the exhaustive sweep —
  // one fleet lease. end must not exceed the enumeration's num_orbits()
  // (validated at session construction).
  static CheckRequest exhaustive_slots(int max_faults, std::uint64_t begin,
                                       std::uint64_t end,
                                       const CheckOptions& opts = {}) {
    CheckRequest req;
    req.mode = CheckMode::kExhaustive;
    req.max_faults = max_faults;
    req.options = opts;
    req.has_slots = true;
    req.slot_begin = begin;
    req.slot_end = end;
    return req;
  }

  // Samples `samples` random fault sets of size <= max_faults (uniform
  // over sizes 0..max_faults weighted by count) plus the adversarial
  // suite.
  static CheckRequest sampled(int max_faults, std::uint64_t samples,
                              std::uint64_t seed,
                              const CheckOptions& opts = {}) {
    CheckRequest req;
    req.mode = CheckMode::kSampled;
    req.max_faults = max_faults;
    req.samples = samples;
    req.seed = seed;
    req.options = opts;
    return req;
  }
};

// Resolves a request to completion on the calling thread(s): equivalent
// to constructing a CheckSession and running it to done().
CheckResult run_check(const kgd::SolutionGraph& sg, const CheckRequest& req);

// Legacy one-shot wrappers, kept as shims over run_check for
// out-of-tree callers; in-repo code uses run_check/CheckSession.
[[deprecated("build a CheckRequest and call verify::run_check")]]
CheckResult check_gd_exhaustive(const kgd::SolutionGraph& sg, int max_faults,
                                const CheckOptions& opts = {});

[[deprecated("build a CheckRequest and call verify::run_check")]]
CheckResult check_gd_sampled(const kgd::SolutionGraph& sg, int max_faults,
                             std::uint64_t samples, std::uint64_t seed,
                             const CheckOptions& opts = {});

}  // namespace kgdp::verify
