#include "verify/pipeline_solver.hpp"

#include <cassert>

namespace kgdp::verify {

using kgd::Role;
using graph::Node;

PipelineSolver::PipelineSolver(SolverOptions opts)
    : opts_(opts), ham_(opts.ham) {}

SolveOutcome PipelineSolver::solve(const SolutionGraph& sg,
                                   const FaultSet& faults) {
  const int n_all = sg.num_nodes();
  assert(faults.universe() == n_all);

  // Induced subgraph of healthy processors.
  util::DynamicBitset keep(n_all);
  for (Node v = 0; v < n_all; ++v) {
    if (sg.role(v) == Role::kProcessor && !faults.contains(v)) keep.set(v);
  }
  std::vector<Node> to_sub;  // old -> new (-1 outside)
  const graph::Graph sub = sg.graph().induced_subgraph(keep, &to_sub);
  const int hp = sub.num_nodes();

  // Reverse mapping.
  std::vector<Node> to_full(hp, -1);
  for (Node v = 0; v < n_all; ++v) {
    if (to_sub[v] >= 0) to_full[to_sub[v]] = v;
  }

  // Healthy processors with a healthy input (resp. output) terminal
  // neighbor — the legal endpoints. Also remember one witness terminal.
  util::DynamicBitset starts(hp), ends(hp);
  std::vector<Node> start_term(hp, -1), end_term(hp, -1);
  for (Node v = 0; v < n_all; ++v) {
    const int s = to_sub[v];
    if (s < 0) continue;
    for (Node w : sg.graph().neighbors(v)) {
      if (faults.contains(w)) continue;
      if (sg.role(w) == Role::kInput && start_term[s] < 0) {
        starts.set(s);
        start_term[s] = w;
      } else if (sg.role(w) == Role::kOutput && end_term[s] < 0) {
        ends.set(s);
        end_term[s] = w;
      }
    }
  }

  if (hp == 0) {
    // A pipeline has at least one interior node in any graph whose
    // terminals only attach to processors, so zero healthy processors
    // means no pipeline (terminal-terminal edges do not occur in our
    // constructions; if present they could make a 2-node pipeline, which
    // we check for completeness).
    for (Node v = 0; v < n_all; ++v) {
      if (sg.role(v) != Role::kInput || faults.contains(v)) continue;
      for (Node w : sg.graph().neighbors(v)) {
        if (sg.role(w) == Role::kOutput && !faults.contains(w)) {
          Pipeline pl{{v, w}};
          return {SolveStatus::kFound, pl};
        }
      }
    }
    return {SolveStatus::kNone, std::nullopt};
  }

  if (!starts.any() || !ends.any()) return {SolveStatus::kNone, std::nullopt};

  const graph::HamPath hp_res = ham_.solve(sub, starts, ends);
  switch (hp_res.status) {
    case graph::HamResult::kUnknown:
      return {SolveStatus::kUnknown, std::nullopt};
    case graph::HamResult::kNone:
      return {SolveStatus::kNone, std::nullopt};
    case graph::HamResult::kFound:
      break;
  }

  // Assemble the full pipeline: input terminal, processors, output
  // terminal; normalise to input-first order.
  std::vector<Node> full;
  full.reserve(hp_res.path.size() + 2);
  full.push_back(start_term[hp_res.path.front()]);
  for (Node s : hp_res.path) full.push_back(to_full[s]);
  full.push_back(end_term[hp_res.path.back()]);

  if (opts_.certify) {
    const kgd::PipelineCheck chk = kgd::check_pipeline(sg, faults, full);
    assert(chk.ok && "solver produced an invalid pipeline");
    if (!chk.ok) return {SolveStatus::kUnknown, std::nullopt};
  }
  return {SolveStatus::kFound, kgd::normalize_pipeline(sg, std::move(full))};
}

SolveOutcome find_pipeline(const SolutionGraph& sg, const FaultSet& faults,
                           SolverOptions opts) {
  PipelineSolver solver(opts);
  return solver.solve(sg, faults);
}

}  // namespace kgdp::verify
