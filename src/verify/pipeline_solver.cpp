#include "verify/pipeline_solver.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

namespace kgdp::verify {

using graph::Node;
using kgd::Role;

namespace {

// Resolves the configured kernel: an explicit name (test/bench hook)
// wins when it is runnable here, otherwise the width/auto dispatch.
detail::BatchKernel resolve_kernel(const SolverOptions& opts) {
  if (opts.batch_kernel != nullptr) {
    if (auto k = detail::select_batch_kernel_by_name(opts.batch_kernel)) {
      return *k;
    }
  }
  return detail::select_batch_kernel(opts.batch_lanes);
}

}  // namespace

PipelineSolver::PipelineSolver(SolverOptions opts)
    : opts_(opts), ham_(opts.ham), kernel_(resolve_kernel(opts)) {}

// Rebuilds the cached adjacency/role view when the graph identity
// changed. Identity is (address, node count, edge count): enough to catch
// every legitimate rebinding in the codebase; callers juggling multiple
// graphs at one address can force the issue with rebind().
bool PipelineSolver::bind_if_needed(const SolutionGraph& sg) {
  if (bound_ == &sg && bound_nodes_ == sg.num_nodes() &&
      bound_edges_ == sg.graph().num_edges()) {
    return false;
  }
  bound_ = &sg;
  bound_nodes_ = sg.num_nodes();
  bound_edges_ = sg.graph().num_edges();
  small_ = bound_nodes_ >= 1 && bound_nodes_ <= 64;
  if (small_) {
    adj_.rebuild(sg.graph());
    proc_mask_ = input_mask_ = output_mask_ = 0;
    for (Node v = 0; v < bound_nodes_; ++v) {
      const std::uint64_t bit = std::uint64_t{1} << v;
      switch (sg.role(v)) {
        case Role::kProcessor: proc_mask_ |= bit; break;
        case Role::kInput: input_mask_ |= bit; break;
        case Role::kOutput: output_mask_ |= bit; break;
      }
    }
  } else {
    fault_bits_.resize(bound_nodes_);
  }
  have_faults_ = false;
  return true;
}

SolveOutcome PipelineSolver::solve(const SolutionGraph& sg,
                                   const FaultSet& faults) {
  assert(faults.universe() == sg.num_nodes());
  bind_if_needed(sg);
  ++ctr_.rebuilds;
  have_faults_ = true;
  if (small_) {
    fault_mask_ =
        faults.mask().words().empty() ? 0 : faults.mask().words()[0];
    return solve_fast();
  }
  fault_bits_ = faults.mask();
  fault_list_.assign(faults.nodes().begin(), faults.nodes().end());
  return solve_general(sg);
}

SolveOutcome PipelineSolver::solve_faults(const SolutionGraph& sg,
                                          std::span<const Node> faulty) {
  bind_if_needed(sg);
  ++ctr_.rebuilds;
  have_faults_ = true;
  if (small_) {
    fault_mask_ = 0;
    for (Node v : faulty) fault_mask_ |= std::uint64_t{1} << v;
    return solve_fast();
  }
  fault_bits_.reset_all();
  for (Node v : faulty) fault_bits_.set(v);
  fault_list_.assign(faulty.begin(), faulty.end());
  return solve_general(sg);
}

SolveOutcome PipelineSolver::patch(const SolutionGraph& sg,
                                   std::span<const Node> removed,
                                   std::span<const Node> added) {
  const bool rebound = bind_if_needed(sg);
  if (rebound || !have_faults_) {
    // No previous view to patch against; only legal when the delta is a
    // pure insertion from the empty set.
    assert(removed.empty() && "patch without a previous solve");
    return solve_faults(sg, added);
  }
  ++ctr_.patches;
  have_faults_ = true;
  if (small_) {
    for (Node v : removed) {
      assert((fault_mask_ >> v) & 1u);
      fault_mask_ &= ~(std::uint64_t{1} << v);
    }
    for (Node v : added) {
      assert(!((fault_mask_ >> v) & 1u));
      fault_mask_ |= std::uint64_t{1} << v;
    }
    return solve_fast();
  }
  for (Node v : removed) {
    fault_bits_.reset(v);
    fault_list_.erase(
        std::lower_bound(fault_list_.begin(), fault_list_.end(), v));
  }
  for (Node v : added) {
    fault_bits_.set(v);
    fault_list_.insert(
        std::lower_bound(fault_list_.begin(), fault_list_.end(), v), v);
  }
  return solve_general(sg);
}

void PipelineSolver::solve_batch(const SolutionGraph& sg,
                                 std::span<const std::uint64_t> fault_masks,
                                 std::span<SolveStatus> out_status) {
  assert(out_status.size() >= fault_masks.size());
  if (fault_masks.empty()) return;
  bind_if_needed(sg);
  assert(small_ && "solve_batch requires the <= 64-node mask fast path");
  // One rebuild for the head lane plus a patch per further lane keeps the
  // patches + rebuilds == solves invariant intact under batching.
  ++ctr_.rebuilds;
  ctr_.patches += fault_masks.size() - 1;
  lane_setup_.resize(fault_masks.size());
  kernel_.fn(adj_.rows64().data(), bound_nodes_, proc_mask_, input_mask_,
             output_mask_, fault_masks.data(), fault_masks.size(),
             lane_setup_.data());
  for (std::size_t i = 0; i < fault_masks.size(); ++i) {
    out_status[i] = solve_lane(lane_setup_[i], fault_masks[i]);
  }
  // Leave the fault view at the last lane so a subsequent patch()
  // continues the colex delta stream from there.
  fault_mask_ = fault_masks.back();
  have_faults_ = true;
}

// Shared verdict core for the mask fast path: one lane's setup in, a
// verdict out. Walk-first — the heuristic rotation walk settles positive
// instances in a few hundred nanoseconds and its paths are certified like
// any other; misses (rare: genuinely negative or near-threshold sets)
// fall through to the exact masked search. Used by solve_batch and by the
// verdict-only scalar entries, so batched and unbatched runs share one
// verdict procedure bit for bit.
SolveStatus PipelineSolver::solve_lane(const detail::LaneSetup& lane,
                                       std::uint64_t fault_mask) {
  (void)fault_mask;  // seed and first start come precomputed in the lane
  ++ctr_.solves;
  const std::span<const std::uint64_t> rows = adj_.rows64();
  if (lane.keep == 0) {
    // Only a terminal-terminal edge can carry a pipeline with zero
    // healthy processors (see solve_fast()).
    for (std::uint64_t s = lane.in_ok; s; s &= s - 1) {
      if (rows[std::countr_zero(s)] & lane.out_ok) return SolveStatus::kFound;
    }
    return SolveStatus::kNone;
  }
  if (!lane.starts || !lane.ends) return SolveStatus::kNone;

  // The setup kernel already mixed the walk seed and selected the
  // restart-0 start (lowest start bit) lane-parallel; the walk takes
  // both as-is, so its per-lane scalar preamble is gone.
  if (ham_.walk_masked(rows, lane.keep, lane.starts, lane.ends, lane.seed,
                       std::countr_zero(lane.start_bit))) {
    ++ctr_.walk_hits;
  } else {
    ++ctr_.walk_fallbacks;
    const std::uint64_t before = ham_.expansions();
    const graph::HamResult r =
        ham_.solve_masked(rows, lane.keep, lane.starts, lane.ends);
    ctr_.search_nodes += ham_.expansions() - before;
    if (r == graph::HamResult::kUnknown) return SolveStatus::kUnknown;
    if (r == graph::HamResult::kNone) return SolveStatus::kNone;
  }
  if (opts_.certify &&
      !certify_fast(ham_.masked_path(), lane.keep, lane.in_ok, lane.out_ok)) {
    assert(false && "solver produced an invalid pipeline");
    return SolveStatus::kUnknown;
  }
  return SolveStatus::kFound;
}

// Mask fast path (1 <= n <= 64): the healthy-processor view, endpoint
// sets and witness terminals are all single-word computations over the
// BitAdjacency rows; the Hamiltonian search runs masked in the original
// id space. No heap allocation unless a pipeline object is requested.
// Verdict-only solves route through the walk-first lane core; pipeline-
// producing solves keep the deterministic exact search so the returned
// path matches the reference solver byte for byte.
SolveOutcome PipelineSolver::solve_fast() {
  if (!opts_.want_pipeline) {
    detail::LaneSetup lane;
    detail::batch_setup_w1(adj_.rows64().data(), bound_nodes_, proc_mask_,
                           input_mask_, output_mask_, &fault_mask_, 1, &lane);
    return {solve_lane(lane, fault_mask_), std::nullopt};
  }
  ++ctr_.solves;
  const std::uint64_t healthy = ~fault_mask_;
  const std::uint64_t keep = proc_mask_ & healthy;
  const std::uint64_t in_ok = input_mask_ & healthy;
  const std::uint64_t out_ok = output_mask_ & healthy;
  const std::span<const std::uint64_t> rows = adj_.rows64();

  if (keep == 0) {
    // A pipeline has at least one interior node in any graph whose
    // terminals only attach to processors, so zero healthy processors
    // means no pipeline (terminal-terminal edges do not occur in our
    // constructions; if present they could make a 2-node pipeline, which
    // we check for completeness).
    for (std::uint64_t s = in_ok; s; s &= s - 1) {
      const int v = std::countr_zero(s);
      const std::uint64_t direct = rows[v] & out_ok;
      if (direct) {
        if (!opts_.want_pipeline) return {SolveStatus::kFound, std::nullopt};
        Pipeline pl{{v, std::countr_zero(direct)}};
        return {SolveStatus::kFound, pl};
      }
    }
    return {SolveStatus::kNone, std::nullopt};
  }

  // Healthy processors with a healthy input (resp. output) terminal
  // neighbor — the legal endpoints. The witness terminal is the
  // lowest-id healthy terminal neighbor, matching the reference solver's
  // first-in-adjacency-order choice (adjacency lists are sorted).
  std::uint64_t starts = 0, ends = 0;
  for (std::uint64_t s = keep; s; s &= s - 1) {
    const int v = std::countr_zero(s);
    const std::uint64_t in_nb = rows[v] & in_ok;
    if (in_nb) {
      starts |= std::uint64_t{1} << v;
      start_term_[v] = std::countr_zero(in_nb);
    }
    const std::uint64_t out_nb = rows[v] & out_ok;
    if (out_nb) {
      ends |= std::uint64_t{1} << v;
      end_term_[v] = std::countr_zero(out_nb);
    }
  }
  if (!starts || !ends) return {SolveStatus::kNone, std::nullopt};

  const std::uint64_t before = ham_.expansions();
  const graph::HamResult r = ham_.solve_masked(rows, keep, starts, ends);
  ctr_.search_nodes += ham_.expansions() - before;
  switch (r) {
    case graph::HamResult::kUnknown:
      return {SolveStatus::kUnknown, std::nullopt};
    case graph::HamResult::kNone:
      return {SolveStatus::kNone, std::nullopt};
    case graph::HamResult::kFound:
      break;
  }
  const std::span<const Node> interior = ham_.masked_path();

  if (opts_.certify && !certify_fast(interior, keep, in_ok, out_ok)) {
    assert(false && "solver produced an invalid pipeline");
    return {SolveStatus::kUnknown, std::nullopt};
  }
  if (!opts_.want_pipeline) return {SolveStatus::kFound, std::nullopt};

  path_buf_.clear();
  path_buf_.push_back(start_term_[interior.front()]);
  path_buf_.insert(path_buf_.end(), interior.begin(), interior.end());
  path_buf_.push_back(end_term_[interior.back()]);
  return {SolveStatus::kFound, kgd::normalize_pipeline(*bound_, path_buf_)};
}

// Mask-level certification of a found interior path: consecutive
// adjacency, exact coverage of the healthy-processor set, and healthy
// terminal attachments — the pipeline definition restated over bitsets,
// so the honesty check costs no allocation either.
bool PipelineSolver::certify_fast(std::span<const Node> interior,
                                  std::uint64_t keep,
                                  std::uint64_t healthy_inputs,
                                  std::uint64_t healthy_outputs) const {
  if (interior.empty()) return false;
  const std::span<const std::uint64_t> rows = adj_.rows64();
  std::uint64_t seen = 0;
  Node prev = -1;
  for (Node v : interior) {
    const std::uint64_t bit = std::uint64_t{1} << v;
    if (!(keep & bit) || (seen & bit)) return false;
    if (prev >= 0 && !((rows[prev] >> v) & 1u)) return false;
    seen |= bit;
    prev = v;
  }
  if (seen != keep) return false;
  // Witness terminals exist iff the path ends see a healthy terminal;
  // the materialised witness (lowest such neighbor) is then healthy and
  // adjacent by construction, so the mask test is the whole check.
  return (rows[interior.front()] & healthy_inputs) != 0 &&
         (rows[interior.back()] & healthy_outputs) != 0;
}

// General path (n > 64, outside exhaustive-certification reach): the
// historical induced-subgraph algorithm, with every mapping/endpoint
// buffer migrated to reused scratch. The subgraph copy itself remains —
// the large Hamiltonian solver wants a Graph — but the redundant
// per-call to_full/to_sub/terminal reallocations are gone.
SolveOutcome PipelineSolver::solve_general(const SolutionGraph& sg) {
  ++ctr_.solves;
  const int n_all = sg.num_nodes();

  keep_.resize(n_all);
  keep_.reset_all();
  for (Node v = 0; v < n_all; ++v) {
    if (sg.role(v) == Role::kProcessor && !fault_bits_.test(v)) keep_.set(v);
  }
  const graph::Graph sub = sg.graph().induced_subgraph(keep_, &to_sub_);
  const int hp = sub.num_nodes();

  // Reverse mapping, rebuilt in place (assign reuses capacity).
  to_full_.assign(hp, -1);
  for (Node v = 0; v < n_all; ++v) {
    if (to_sub_[v] >= 0) to_full_[to_sub_[v]] = v;
  }

  starts_bs_.resize(hp);
  starts_bs_.reset_all();
  ends_bs_.resize(hp);
  ends_bs_.reset_all();
  start_term_v_.assign(hp, -1);
  end_term_v_.assign(hp, -1);
  for (Node v = 0; v < n_all; ++v) {
    const int s = to_sub_[v];
    if (s < 0) continue;
    for (Node w : sg.graph().neighbors(v)) {
      if (fault_bits_.test(w)) continue;
      if (sg.role(w) == Role::kInput && start_term_v_[s] < 0) {
        starts_bs_.set(s);
        start_term_v_[s] = w;
      } else if (sg.role(w) == Role::kOutput && end_term_v_[s] < 0) {
        ends_bs_.set(s);
        end_term_v_[s] = w;
      }
    }
  }

  if (hp == 0) {
    // See solve_fast(): only a terminal-terminal edge can carry a
    // pipeline with no healthy processor.
    for (Node v = 0; v < n_all; ++v) {
      if (sg.role(v) != Role::kInput || fault_bits_.test(v)) continue;
      for (Node w : sg.graph().neighbors(v)) {
        if (sg.role(w) == Role::kOutput && !fault_bits_.test(w)) {
          Pipeline pl{{v, w}};
          return {SolveStatus::kFound, pl};
        }
      }
    }
    return {SolveStatus::kNone, std::nullopt};
  }

  if (!starts_bs_.any() || !ends_bs_.any()) {
    return {SolveStatus::kNone, std::nullopt};
  }

  const std::uint64_t before = ham_.expansions();
  const graph::HamPath hp_res = ham_.solve(sub, starts_bs_, ends_bs_);
  ctr_.search_nodes += ham_.expansions() - before;
  switch (hp_res.status) {
    case graph::HamResult::kUnknown:
      return {SolveStatus::kUnknown, std::nullopt};
    case graph::HamResult::kNone:
      return {SolveStatus::kNone, std::nullopt};
    case graph::HamResult::kFound:
      break;
  }

  // Assemble the full pipeline: input terminal, processors, output
  // terminal; normalise to input-first order.
  path_buf_.clear();
  path_buf_.push_back(start_term_v_[hp_res.path.front()]);
  for (Node s : hp_res.path) path_buf_.push_back(to_full_[s]);
  path_buf_.push_back(end_term_v_[hp_res.path.back()]);

  if (opts_.certify) {
    const kgd::FaultSet fs(n_all, fault_list_);
    const kgd::PipelineCheck chk = kgd::check_pipeline(sg, fs, path_buf_);
    assert(chk.ok && "solver produced an invalid pipeline");
    if (!chk.ok) return {SolveStatus::kUnknown, std::nullopt};
  }
  if (!opts_.want_pipeline) return {SolveStatus::kFound, std::nullopt};
  return {SolveStatus::kFound, kgd::normalize_pipeline(sg, path_buf_)};
}

SolverCounters PipelineSolver::counters() const {
  SolverCounters c = ctr_;
  auto vec_bytes = [](const auto& v) {
    return v.capacity() * sizeof(v[0]);
  };
  c.scratch_bytes = sizeof(*this) + vec_bytes(fault_list_) +
                    vec_bytes(path_buf_) + vec_bytes(lane_setup_) +
                    vec_bytes(to_sub_) +
                    vec_bytes(to_full_) + vec_bytes(start_term_v_) +
                    vec_bytes(end_term_v_) +
                    fault_bits_.words().capacity() * 8 +
                    keep_.words().capacity() * 8 +
                    starts_bs_.words().capacity() * 8 +
                    ends_bs_.words().capacity() * 8 + adj_.scratch_bytes() +
                    ham_.scratch_bytes();
  return c;
}

SolveOutcome find_pipeline(const SolutionGraph& sg, const FaultSet& faults,
                           SolverOptions opts) {
  PipelineSolver solver(opts);
  return solver.solve(sg, faults);
}

// The pre-rework implementation, verbatim: DynamicBitset keep, induced
// subgraph with fresh mappings, DynamicBitset endpoint sets, remapped
// Hamiltonian solve. Differential tests pit the engine above against
// this oracle fault set by fault set.
SolveOutcome find_pipeline_reference(const SolutionGraph& sg,
                                     const FaultSet& faults,
                                     SolverOptions opts) {
  graph::HamiltonianSolver ham(opts.ham);
  const int n_all = sg.num_nodes();
  assert(faults.universe() == n_all);

  util::DynamicBitset keep(n_all);
  for (Node v = 0; v < n_all; ++v) {
    if (sg.role(v) == Role::kProcessor && !faults.contains(v)) keep.set(v);
  }
  std::vector<Node> to_sub;  // old -> new (-1 outside)
  const graph::Graph sub = sg.graph().induced_subgraph(keep, &to_sub);
  const int hp = sub.num_nodes();

  std::vector<Node> to_full(hp, -1);
  for (Node v = 0; v < n_all; ++v) {
    if (to_sub[v] >= 0) to_full[to_sub[v]] = v;
  }

  util::DynamicBitset starts(hp), ends(hp);
  std::vector<Node> start_term(hp, -1), end_term(hp, -1);
  for (Node v = 0; v < n_all; ++v) {
    const int s = to_sub[v];
    if (s < 0) continue;
    for (Node w : sg.graph().neighbors(v)) {
      if (faults.contains(w)) continue;
      if (sg.role(w) == Role::kInput && start_term[s] < 0) {
        starts.set(s);
        start_term[s] = w;
      } else if (sg.role(w) == Role::kOutput && end_term[s] < 0) {
        ends.set(s);
        end_term[s] = w;
      }
    }
  }

  if (hp == 0) {
    for (Node v = 0; v < n_all; ++v) {
      if (sg.role(v) != Role::kInput || faults.contains(v)) continue;
      for (Node w : sg.graph().neighbors(v)) {
        if (sg.role(w) == Role::kOutput && !faults.contains(w)) {
          Pipeline pl{{v, w}};
          return {SolveStatus::kFound, pl};
        }
      }
    }
    return {SolveStatus::kNone, std::nullopt};
  }

  if (!starts.any() || !ends.any()) return {SolveStatus::kNone, std::nullopt};

  const graph::HamPath hp_res = ham.solve(sub, starts, ends);
  switch (hp_res.status) {
    case graph::HamResult::kUnknown:
      return {SolveStatus::kUnknown, std::nullopt};
    case graph::HamResult::kNone:
      return {SolveStatus::kNone, std::nullopt};
    case graph::HamResult::kFound:
      break;
  }

  std::vector<Node> full;
  full.reserve(hp_res.path.size() + 2);
  full.push_back(start_term[hp_res.path.front()]);
  for (Node s : hp_res.path) full.push_back(to_full[s]);
  full.push_back(end_term[hp_res.path.back()]);

  if (opts.certify) {
    const kgd::PipelineCheck chk = kgd::check_pipeline(sg, faults, full);
    assert(chk.ok && "solver produced an invalid pipeline");
    if (!chk.ok) return {SolveStatus::kUnknown, std::nullopt};
  }
  return {SolveStatus::kFound, kgd::normalize_pipeline(sg, std::move(full))};
}

}  // namespace kgdp::verify
