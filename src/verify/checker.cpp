// One-shot resolution of CheckRequests. The session object (see
// check_session.hpp) owns the actual sweep; run_check runs an equivalent
// single-shard session to completion, and the deprecated check_gd_*
// shims build the obvious requests, so legacy callers observe exactly
// the pre-session behaviour.
#include "verify/checker.hpp"

#include "verify/check_session.hpp"

namespace kgdp::verify {

CheckResult run_check(const kgd::SolutionGraph& sg, const CheckRequest& req) {
  CheckSession session(sg, req);
  session.run();
  return session.result();
}

CheckResult check_gd_exhaustive(const kgd::SolutionGraph& sg, int max_faults,
                                const CheckOptions& opts) {
  return run_check(sg, CheckRequest::exhaustive(max_faults, opts));
}

CheckResult check_gd_sampled(const kgd::SolutionGraph& sg, int max_faults,
                             std::uint64_t samples, std::uint64_t seed,
                             const CheckOptions& opts) {
  return run_check(sg, CheckRequest::sampled(max_faults, samples, seed, opts));
}

}  // namespace kgdp::verify
