#include "verify/checker.hpp"

#include <atomic>
#include <memory>

#include "fault/enumerator.hpp"
#include "fault/fault_model.hpp"
#include "fault/orbit_enumerator.hpp"
#include "graph/automorphism.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace kgdp::verify {

namespace {

constexpr std::uint64_t kNoFailure = ~std::uint64_t{0};

// Shared state for a parallel sweep. `best` is the lowest global index of
// a failing representative; workers skip only indices above the current
// best, so every index below the final minimum is still solved and the
// verdict (and counterexample) is deterministic under any thread count
// and any stealing schedule.
struct SweepState {
  std::atomic<std::uint64_t> best{kNoFailure};
  std::atomic<std::uint64_t> covered{0};
  std::atomic<std::uint64_t> solved{0};
  std::atomic<std::uint64_t> unknowns{0};

  void report_failure(std::uint64_t index) {
    std::uint64_t cur = best.load(std::memory_order_relaxed);
    while (index < cur && !best.compare_exchange_weak(
                              cur, index, std::memory_order_acq_rel)) {
    }
  }
};

// Per-worker context: one solver reused across every representative the
// worker claims (the solver's scratch allocations amortise), plus a
// wall-clock solve-time accumulator. Heap-allocated per worker so no two
// workers share a cache line.
struct WorkerCtx {
  PipelineSolver solver;
  double solve_seconds = 0.0;
  explicit WorkerCtx(const SolverOptions& o) : solver(o) {}
};

SolverOptions solver_options(const CheckOptions& opts) {
  SolverOptions s;
  s.ham.dfs_budget = opts.dfs_budget;
  return s;
}

}  // namespace

CheckResult check_gd_exhaustive(const kgd::SolutionGraph& sg, int max_faults,
                                const CheckOptions& opts) {
  // Auto mode: compute the label-respecting group and let the orbit
  // enumerator decide whether pruning pays (it declines trivial or
  // truncated groups and oversized index spaces).
  const graph::AutomorphismList autos =
      opts.prune == PruneMode::kAuto ? graph::solution_automorphisms(sg)
                                     : graph::AutomorphismList{};
  const fault::OrbitEnumerator orbits(sg.num_nodes(), max_faults, autos);

  const unsigned num_workers = opts.pool ? opts.pool->thread_count() : 1;
  std::vector<std::unique_ptr<WorkerCtx>> workers;
  workers.reserve(num_workers);
  for (unsigned w = 0; w < num_workers; ++w) {
    workers.push_back(std::make_unique<WorkerCtx>(solver_options(opts)));
  }

  SweepState state;
  auto run_item = [&](std::uint64_t slot, unsigned worker) {
    const std::uint64_t index = orbits.rep_index(slot);
    // A lower-index failure is already recorded; this representative can
    // no longer affect the verdict. (Cheap skip = early exit that keeps
    // the lowest-index guarantee.)
    if (index > state.best.load(std::memory_order_acquire)) return;
    WorkerCtx& ctx = *workers[worker];
    const util::Timer timer;
    const kgd::FaultSet fs = orbits.representative(slot);
    const SolveOutcome out = ctx.solver.solve(sg, fs);
    ctx.solve_seconds += timer.seconds();
    state.covered.fetch_add(orbits.orbit_size(slot),
                            std::memory_order_relaxed);
    state.solved.fetch_add(1, std::memory_order_relaxed);
    if (out.status == SolveStatus::kNone) {
      state.report_failure(index);
    } else if (out.status == SolveStatus::kUnknown) {
      state.unknowns.fetch_add(1, std::memory_order_relaxed);
      state.report_failure(index);  // conservatively treat as failure
    }
  };

  CheckResult res;
  if (opts.pool && orbits.num_orbits() > 1) {
    const util::StealStats stats = util::parallel_for_stealing(
        *opts.pool, orbits.num_orbits(), run_item);
    res.steal_count = stats.steals;
  } else {
    for (std::uint64_t i = 0; i < orbits.num_orbits(); ++i) run_item(i, 0);
  }

  res.fault_sets_checked = state.covered.load();
  res.fault_sets_solved = state.solved.load();
  res.solver_unknowns = state.unknowns.load();
  res.orbits_pruned = orbits.fault_sets_pruned();
  res.automorphism_order = orbits.pruned() ? autos.order : 1;
  res.worker_solve_seconds.reserve(workers.size());
  for (const auto& ctx : workers) {
    res.worker_solve_seconds.push_back(ctx->solve_seconds);
  }

  const std::uint64_t best = state.best.load();
  res.holds = best == kNoFailure;
  if (best != kNoFailure) res.counterexample = orbits.base().at(best);
  // Either the sweep covered every fault set or it produced a concrete
  // counterexample; both are exact verdicts.
  res.exhaustive = res.holds || res.counterexample.has_value();
  return res;
}

CheckResult check_gd_sampled(const kgd::SolutionGraph& sg, int max_faults,
                             std::uint64_t samples, std::uint64_t seed,
                             const CheckOptions& opts) {
  PipelineSolver solver(solver_options(opts));
  CheckResult res;
  res.exhaustive = false;

  auto try_set = [&](const kgd::FaultSet& fs) {
    ++res.fault_sets_checked;
    ++res.fault_sets_solved;
    const SolveOutcome out = solver.solve(sg, fs);
    if (out.status == SolveStatus::kFound) return true;
    if (out.status == SolveStatus::kUnknown) ++res.solver_unknowns;
    res.counterexample = fs;
    return false;
  };

  // Adversarial suite first: most likely to expose a flaw.
  for (const kgd::FaultSet& fs :
       fault::adversarial_suite(sg, max_faults)) {
    if (!try_set(fs)) return res;
  }

  util::Rng rng(seed);
  for (std::uint64_t i = 0; i < samples; ++i) {
    const int count =
        static_cast<int>(rng.next_int(0, max_faults));
    const kgd::FaultSet fs =
        fault::draw_faults(sg, count, fault::FaultPolicy::kUniform, rng);
    if (!try_set(fs)) return res;
  }
  res.holds = true;
  return res;
}

}  // namespace kgdp::verify
