// One-shot wrappers over verify::CheckSession. The session object (see
// check_session.hpp) owns the actual sweep; these functions build the
// equivalent single-shard CheckRequest, run it to completion, and return
// its result, so legacy callers observe exactly the pre-session
// behaviour.
#include "verify/checker.hpp"

#include "verify/check_session.hpp"

namespace kgdp::verify {

CheckResult check_gd_exhaustive(const kgd::SolutionGraph& sg, int max_faults,
                                const CheckOptions& opts) {
  CheckRequest req;
  req.mode = CheckMode::kExhaustive;
  req.max_faults = max_faults;
  req.options = opts;
  CheckSession session(sg, req);
  session.run();
  return session.result();
}

CheckResult check_gd_sampled(const kgd::SolutionGraph& sg, int max_faults,
                             std::uint64_t samples, std::uint64_t seed,
                             const CheckOptions& opts) {
  CheckRequest req;
  req.mode = CheckMode::kSampled;
  req.max_faults = max_faults;
  req.samples = samples;
  req.seed = seed;
  req.options = opts;
  CheckSession session(sg, req);
  session.run();
  return session.result();
}

}  // namespace kgdp::verify
