#include "verify/checker.hpp"

#include <atomic>
#include <mutex>

#include "fault/enumerator.hpp"
#include "fault/fault_model.hpp"
#include "util/rng.hpp"

namespace kgdp::verify {

namespace {

// Shared state for a parallel sweep. Workers record the lowest-index
// counterexample so results are deterministic under any thread count.
struct SweepState {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> checked{0};
  std::atomic<std::uint64_t> unknowns{0};
  std::mutex mu;
  std::uint64_t best_counterexample_index = ~std::uint64_t{0};

  void report_failure(std::uint64_t index) {
    std::lock_guard lk(mu);
    if (index < best_counterexample_index) best_counterexample_index = index;
    stop.store(true, std::memory_order_relaxed);
  }
};

SolverOptions solver_options(const CheckOptions& opts) {
  SolverOptions s;
  s.ham.dfs_budget = opts.dfs_budget;
  return s;
}

}  // namespace

CheckResult check_gd_exhaustive(const kgd::SolutionGraph& sg, int max_faults,
                                const CheckOptions& opts) {
  const fault::FaultEnumerator enumr(sg.num_nodes(), max_faults);
  SweepState state;

  auto run_range = [&](std::uint64_t index) {
    PipelineSolver solver(solver_options(opts));
    const kgd::FaultSet fs = enumr.at(index);
    const SolveOutcome out = solver.solve(sg, fs);
    state.checked.fetch_add(1, std::memory_order_relaxed);
    if (out.status == SolveStatus::kNone) {
      state.report_failure(index);
    } else if (out.status == SolveStatus::kUnknown) {
      state.unknowns.fetch_add(1, std::memory_order_relaxed);
      state.report_failure(index);  // conservatively treat as failure
    }
  };

  if (opts.pool) {
    util::parallel_for(*opts.pool, enumr.total(), run_range, &state.stop,
                       /*grain=*/16);
  } else {
    for (std::uint64_t i = 0; i < enumr.total(); ++i) {
      if (state.stop.load(std::memory_order_relaxed)) break;
      run_range(i);
    }
  }

  CheckResult res;
  res.fault_sets_checked = state.checked.load();
  res.solver_unknowns = state.unknowns.load();
  res.exhaustive = !state.stop.load();
  res.holds = !state.stop.load();
  if (state.best_counterexample_index != ~std::uint64_t{0}) {
    res.counterexample = enumr.at(state.best_counterexample_index);
  }
  // When a counterexample exists the sweep may have stopped early, but the
  // verdict is still exact: GD fails.
  if (res.counterexample) res.exhaustive = true;
  return res;
}

CheckResult check_gd_sampled(const kgd::SolutionGraph& sg, int max_faults,
                             std::uint64_t samples, std::uint64_t seed,
                             const CheckOptions& opts) {
  PipelineSolver solver(solver_options(opts));
  CheckResult res;
  res.exhaustive = false;

  auto try_set = [&](const kgd::FaultSet& fs) {
    ++res.fault_sets_checked;
    const SolveOutcome out = solver.solve(sg, fs);
    if (out.status == SolveStatus::kFound) return true;
    if (out.status == SolveStatus::kUnknown) ++res.solver_unknowns;
    res.counterexample = fs;
    return false;
  };

  // Adversarial suite first: most likely to expose a flaw.
  for (const kgd::FaultSet& fs :
       fault::adversarial_suite(sg, max_faults)) {
    if (!try_set(fs)) return res;
  }

  util::Rng rng(seed);
  for (std::uint64_t i = 0; i < samples; ++i) {
    const int count =
        static_cast<int>(rng.next_int(0, max_faults));
    const kgd::FaultSet fs =
        fault::draw_faults(sg, count, fault::FaultPolicy::kUniform, rng);
    if (!try_set(fs)) return res;
  }
  res.holds = true;
  return res;
}

}  // namespace kgdp::verify
