// Stepwise checker sessions. The one-shot check_gd_exhaustive /
// check_gd_sampled calls are folded into a single CheckRequest resolved
// by CheckSession, which advances the underlying sweep in bounded work
// chunks so callers get progress, checkpoint/resume, and deterministic
// range sharding on top of the exact same quantifier:
//
//   * advance(max_items) runs at most that many orbit representatives
//     (or samples) and returns whether the session is finished;
//   * save()/restore() serialize the sweep cursor — counters, position,
//     RNG state — bound to a fingerprint of the graph and enumeration,
//     so a resumed session is byte-identical to an uninterrupted one;
//   * shard i of S certifies the i-th contiguous slice of the orbit
//     slots; the slices are disjoint, their union tiles the quantifier
//     domain, and merge_shard_results() reproduces the unsharded
//     sequential verdict (lowest-index counterexample wins).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "fault/canonical.hpp"
#include "fault/orbit_enumerator.hpp"
#include "graph/automorphism.hpp"
#include "kgd/labeled_graph.hpp"
#include "util/rng.hpp"
#include "verify/checker.hpp"

namespace kgdp::verify {

// CheckMode and CheckRequest (with its exhaustive()/sampled() factories
// and the one-shot run_check()) live in verify/checker.hpp; this header
// adds the stepwise session resolving the same requests.

// Graph-only fingerprint (nodes, (n, k), roles, edges — FNV-1a) scoping
// verdict-cache and route-atlas entries: the verdict for a fault set,
// and the canonical route, are functions of the graph alone, so every
// session/atlas over the same graph shares one key space.
std::uint64_t graph_fingerprint(const kgd::SolutionGraph& sg);

class CheckSession {
 public:
  // The graph must outlive the session. Throws std::invalid_argument on
  // malformed requests (bad shard spec, sharded sampling).
  CheckSession(const kgd::SolutionGraph& sg, const CheckRequest& req);
  ~CheckSession();

  CheckSession(const CheckSession&) = delete;
  CheckSession& operator=(const CheckSession&) = delete;

  // Runs at most `max_items` work items (orbit representatives, or
  // adversarial/random fault sets in sampled mode). Returns done().
  bool advance(std::uint64_t max_items);

  // Advance to completion.
  void run();

  bool done() const { return done_; }

  // This session's orbit-slot slice [slot_begin, slot_end) — the full
  // [0, num_orbits) range for an unsharded exhaustive session, the
  // shard/lease slice otherwise. Meaningless in sampled mode (0, 0).
  std::uint64_t slot_begin() const { return begin_; }
  std::uint64_t slot_end() const { return end_; }

  // Shrinks an explicit-range (has_slots) exhaustive session to
  // [slot_begin, new_end) — the worker half of a fleet steal. Legal only
  // while every slot at or past new_end is still unswept; returns false
  // (and changes nothing) when the sweep has already passed new_end,
  // when new_end would grow the range, or on a non-lease session. On
  // success the pruned-weight accounting is re-derived for the shorter
  // slice, so a truncated session's result merges bit-identically with
  // a separate session covering [new_end, old_end).
  bool truncate(std::uint64_t new_end);

  // Work items in this session's slice / already processed. A session
  // that found a counterexample reports done() with items_done() frozen
  // where the sweep stopped (later representatives cannot change the
  // lowest-index verdict).
  std::uint64_t items_total() const;
  std::uint64_t items_done() const;

  // Snapshot of the verdict and counters. Final (holds/exhaustive
  // meaningful) once done(). For a shard session, `holds` refers to this
  // shard's slice only.
  CheckResult result() const;

  // Solver engine counters summed across workers (plus any restored from
  // a cursor). scratch_bytes is a live gauge, never persisted. Callers
  // must not race this against advance() — workers mutate their counters.
  SolverCounters solver_totals() const;

  // Binds cursors to this exact (graph, request, enumeration) triple.
  std::uint64_t fingerprint() const { return fingerprint_; }

  // Serializable cursor: a line-oriented text block ending in "end".
  // restore() throws std::runtime_error on malformed input or a cursor
  // saved against a different graph/request/enumeration.
  void save(std::ostream& out) const;
  void restore(std::istream& in);

  // The contiguous slot range [first, second) assigned to shard `index`
  // of `count`; slices differ in size by at most one and tile [0, total).
  static std::pair<std::uint64_t, std::uint64_t> shard_range(
      std::uint64_t total, std::uint32_t index, std::uint32_t count);

 private:
  struct Worker;  // per-worker solver + delta sweep + solve-time accumulator

  void advance_exhaustive(std::uint64_t max_items);
  void advance_sampled(std::uint64_t max_items);

  const kgd::SolutionGraph& sg_;
  CheckRequest req_;
  std::uint64_t fingerprint_ = 0;
  bool done_ = false;

  // Verdict-cache plumbing (only populated when options.cache != nullptr
  // and the graph fits the mask fast path): the label-respecting
  // automorphism group backs orbit-canonical cache keys, and graph_fp_
  // scopes entries to this graph so one cache serves many instances.
  std::uint64_t graph_fp_ = 0;
  graph::AutomorphismList cache_autos_;
  std::optional<fault::FaultCanonicalizer> canon_;
  // Session-local cache traffic (the cache's own stats are global).
  std::uint64_t cache_hits_ = 0, cache_misses_ = 0, cache_inserts_ = 0,
      cache_evictions_ = 0;

  // Exhaustive state.
  std::unique_ptr<fault::OrbitEnumerator> orbits_;
  std::uint64_t automorphism_order_ = 1;
  std::uint64_t pruned_in_shard_ = 0;  // sum of (orbit_size - 1) in slice
  std::uint64_t begin_ = 0, end_ = 0, next_ = 0;
  std::uint64_t best_;  // lowest failing representative index so far
  std::uint64_t steal_count_ = 0;
  std::vector<std::unique_ptr<Worker>> workers_;

  // Sampled state.
  std::vector<kgd::FaultSet> adversarial_;
  util::Rng rng_;
  std::uint64_t next_item_ = 0;
  bool sample_failed_ = false;
  std::optional<kgd::FaultSet> sample_counterexample_;

  // Shared counters.
  std::uint64_t covered_ = 0, solved_ = 0, unknowns_ = 0;
  // Solver counters restored from a cursor; live worker counters are
  // added on top (see solver_totals()).
  std::uint64_t base_patches_ = 0, base_rebuilds_ = 0, base_search_nodes_ = 0;
  std::uint64_t base_walk_hits_ = 0, base_walk_fallbacks_ = 0;
};

// Merges per-shard results of a deterministically partitioned exhaustive
// run (same graph, max_faults, prune mode; shard i of shards.size()) into
// the result of the equivalent unsharded *sequential* run: the lowest
// counterexample index wins and, when one exists, the counters are
// recomputed canonically (sweep truncated at the failing representative),
// so merged output is bit-identical to an uninterrupted CheckSession.
// Throws std::invalid_argument on an empty or inconsistent shard list.
CheckResult merge_shard_results(const kgd::SolutionGraph& sg, int max_faults,
                                PruneMode prune,
                                const std::vector<CheckResult>& shards);

// One completed lease slice: the slot range the session actually
// certified (post-truncation) plus its result.
struct LeaseResult {
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  CheckResult result;
};

// Merges lease-bounded slices of one exhaustive sweep. Unlike
// merge_shard_results, the partition is arbitrary: the ranges (in any
// order) must be disjoint and tile [0, num_orbits) exactly — steals and
// reassignments reshape the partition, and this validates the reshaped
// tiling before producing the same canonical merged result as the
// unsliced sequential run. Throws std::invalid_argument on gaps,
// overlaps, or a partition that does not cover the enumeration.
CheckResult merge_lease_results(const kgd::SolutionGraph& sg, int max_faults,
                                PruneMode prune,
                                std::vector<LeaseResult> leases);

}  // namespace kgdp::verify
