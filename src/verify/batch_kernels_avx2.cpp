// AVX2-compiled instantiation of the batch setup kernel. This TU is the
// only one built with -mavx2 (see src/CMakeLists.txt), so the vector code
// stays behind the runtime __builtin_cpu_supports dispatch in
// select_batch_kernel() and the rest of the library remains baseline-ISA.
// When the build cannot target AVX2 the stub below reports that by
// returning nullptr and dispatch falls back to the portable kernels.
#include "verify/batch_kernels.hpp"

#if defined(__AVX2__)
#include "verify/batch_kernels_impl.hpp"
#endif

namespace kgdp::verify::detail {

#if defined(__AVX2__)

namespace {

void batch_setup_avx2_w8(const std::uint64_t* rows, int n,
                         std::uint64_t proc_mask, std::uint64_t input_mask,
                         std::uint64_t output_mask,
                         const std::uint64_t* fault_masks, std::size_t count,
                         LaneSetup* out) {
  run_batch_setup<8>(rows, n, proc_mask, input_mask, output_mask, fault_masks,
                     count, out);
}

}  // namespace

BatchSetupFn batch_setup_avx2() { return &batch_setup_avx2_w8; }

#else

BatchSetupFn batch_setup_avx2() { return nullptr; }

#endif

}  // namespace kgdp::verify::detail
