// Reconfiguration: given a solution graph and a fault set, produce a
// pipeline through every healthy processor (or prove none exists). This
// is the algorithmic counterpart of the paper's existence proofs — the
// technical-report proofs are constructive but unavailable, so we solve
// the equivalent Hamiltonian-path-with-endpoint-sets problem exactly and
// certify each answer against the paper's pipeline definition.
//
// The solver is the hot loop of exhaustive certification (one call per
// orbit representative), so it is built as a zero-allocation engine:
//
//   * bind caching — the first solve against a SolutionGraph builds a
//     graph::BitAdjacency view plus role masks once; subsequent solves
//     against the same graph reuse them. rebind() forces a rebuild (use
//     it if a graph object is destroyed and another constructed at the
//     same address between calls).
//   * mask fast path — for graphs of <= 64 nodes (every instance within
//     exhaustive reach) the healthy-processor view is a single word and
//     the Hamiltonian search runs masked in the original id space: no
//     induced subgraph, no id remapping, no per-solve heap traffic.
//   * patch() — the enumerator sweep hands the solver colex deltas
//     (nodes leaving/entering the fault set) instead of materialised
//     fault sets; solve()/solve_faults() are the full-rebuild entries
//     used at chunk boundaries and on discontinuities.
//   * solve_batch() — lane-parallel verdict mode: the per-fault-set
//     setup (healthy masks, endpoint sets, walk seed and first-restart
//     start) for a whole run of fault masks is computed in one pass by a
//     width-templated kernel (portable, AVX2, AVX-512 or NEON, selected
//     at runtime), then each lane is settled by a walk-first verdict
//     core that certifies heuristic positives and falls back to the
//     exact search on misses.
//   * perf counters — solves, patches vs rebuilds, Hamiltonian search
//     nodes, walk hits vs fallbacks and retained scratch bytes, surfaced
//     through the checker, campaign telemetry and kgdd stats.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "graph/bit_adjacency.hpp"
#include "graph/hamiltonian.hpp"
#include "kgd/labeled_graph.hpp"
#include "kgd/pipeline.hpp"
#include "verify/batch_kernels.hpp"

namespace kgdp::verify {

using kgd::FaultSet;
using kgd::Pipeline;
using kgd::SolutionGraph;

enum class SolveStatus {
  kFound,     // pipeline exists; `pipeline` is set and certified
  kNone,      // proven: no pipeline in G \ F
  kUnknown,   // solver budget exhausted (only with a finite budget)
};

struct SolveOutcome {
  SolveStatus status = SolveStatus::kUnknown;
  std::optional<Pipeline> pipeline;
};

struct SolverOptions {
  graph::HamiltonianOptions ham;  // defaults: exact (no budget)
  // Re-check every found pipeline against the pipeline definition; cheap
  // and keeps the solver honest. On by default. On the mask fast path the
  // check runs against the bitset view without building a Pipeline.
  bool certify = true;
  // When false, kFound outcomes skip materialising the Pipeline object —
  // the one unavoidable allocation of a positive solve. The exhaustive
  // sweep only consumes the verdict, so the checker turns this off.
  // Verdict-only mode also unlocks the walk-first engine: a heuristic
  // rotation walk settles the (overwhelmingly common) positive instances
  // and the exact search runs only on walk misses. Verdicts stay exact —
  // every walk path is certified, negatives always reach the full search —
  // but the interior path differs from the deterministic search's, which
  // is why pipeline-producing solves keep the classic engine.
  bool want_pipeline = true;
  // Lane width for solve_batch's setup kernel: 1/2/4/8/16 force a
  // portable width, 0 picks the widest runnable ISA kernel (AVX-512,
  // AVX2, NEON — see select_batch_kernel). Any width computes
  // bit-identical setups; this is a perf knob only.
  int batch_lanes = 0;
  // Force a specific registry kernel by name ("w16", "avx512", ...);
  // wins over batch_lanes when the kernel is runnable here, otherwise
  // falls back to the batch_lanes dispatch. Test/bench hook; nullptr
  // (the default) means dispatch normally.
  const char* batch_kernel = nullptr;
};

// Monotone per-solver counters (reset_counters() zeroes them). Patches
// and rebuilds depend on chunking and work stealing, so they are
// observability, not part of the deterministic verdict.
struct SolverCounters {
  std::uint64_t solves = 0;        // solve entries of any kind
  std::uint64_t patches = 0;       // delta-applied fault updates
  std::uint64_t rebuilds = 0;      // full fault-view rebuilds
  std::uint64_t search_nodes = 0;  // Hamiltonian DFS expansions
  std::uint64_t walk_hits = 0;     // verdicts settled by the walk engine
  std::uint64_t walk_fallbacks = 0;// walk missed; exact search decided
  std::uint64_t scratch_bytes = 0; // scratch currently retained (gauge)
};

class PipelineSolver {
 public:
  explicit PipelineSolver(SolverOptions opts = {});

  // Full solve against an explicit fault set (rebuilds the fault view).
  SolveOutcome solve(const SolutionGraph& sg, const FaultSet& faults);

  // Zero-allocation entries used by the enumerator sweep. solve_faults
  // rebuilds the fault view from a sorted node list; patch applies a
  // colex delta (nodes leaving / entering the fault set) to the view
  // left by the previous call, which must have been against the same
  // graph. All three entries agree bit-for-bit on the verdict.
  SolveOutcome solve_faults(const SolutionGraph& sg,
                            std::span<const graph::Node> faulty);
  SolveOutcome patch(const SolutionGraph& sg,
                     std::span<const graph::Node> removed,
                     std::span<const graph::Node> added);

  // Lane-parallel batch solve (verdict-only; <= 64-node graphs). Derives
  // the per-lane healthy/endpoint setups for all fault masks in one
  // kernel pass (width per SolverOptions::batch_lanes), then settles each
  // lane through the shared verdict core. Verdicts are bit-identical to
  // calling solve_faults() on each mask with want_pipeline off, and the
  // batch counts as one rebuild plus count-1 patches, preserving the
  // patches + rebuilds == solves invariant. Leaves the fault view at the
  // last lane so a subsequent patch() continues the delta stream.
  void solve_batch(const SolutionGraph& sg,
                   std::span<const std::uint64_t> fault_masks,
                   std::span<SolveStatus> out_status);

  // Drops the cached adjacency view; the next solve rebuilds it.
  void rebind() { bound_ = nullptr; }

  SolverCounters counters() const;
  void reset_counters() { ctr_ = {}; }

  std::uint64_t ham_expansions() const { return ham_.expansions(); }

  // The batch setup kernel this solver selected (name/width/ISA), for
  // stats, telemetry and bench records.
  const detail::BatchKernel& kernel() const { return kernel_; }

 private:
  bool bind_if_needed(const SolutionGraph& sg);
  SolveOutcome solve_fast();
  SolveOutcome solve_general(const SolutionGraph& sg);
  SolveStatus solve_lane(const detail::LaneSetup& lane,
                         std::uint64_t fault_mask);
  bool certify_fast(std::span<const graph::Node> interior, std::uint64_t keep,
                    std::uint64_t healthy_inputs,
                    std::uint64_t healthy_outputs) const;

  SolverOptions opts_;
  graph::HamiltonianSolver ham_;
  detail::BatchKernel kernel_;

  // Bound-graph view (rebuilt when the graph identity changes).
  const SolutionGraph* bound_ = nullptr;
  int bound_nodes_ = 0;
  std::size_t bound_edges_ = 0;
  bool small_ = false;  // mask fast path applies (1 <= n <= 64)
  graph::BitAdjacency adj_;
  std::uint64_t proc_mask_ = 0, input_mask_ = 0, output_mask_ = 0;

  // Current fault view (valid when have_faults_).
  bool have_faults_ = false;
  std::uint64_t fault_mask_ = 0;          // fast path
  util::DynamicBitset fault_bits_;        // general path
  std::vector<graph::Node> fault_list_;   // general path, sorted

  // Scratch, reused across solves.
  graph::Node start_term_[64];  // witness input terminal per start node
  graph::Node end_term_[64];
  std::vector<graph::Node> path_buf_;
  std::vector<detail::LaneSetup> lane_setup_;  // solve_batch scratch
  // General (>64 nodes) path scratch; this path still builds an induced
  // subgraph per solve but reuses every mapping buffer.
  util::DynamicBitset keep_, starts_bs_, ends_bs_;
  std::vector<graph::Node> to_sub_, to_full_, start_term_v_, end_term_v_;

  SolverCounters ctr_;
};

// One-shot convenience.
SolveOutcome find_pipeline(const SolutionGraph& sg, const FaultSet& faults,
                           SolverOptions opts = {});

// Differential-testing oracle: the original allocation-per-call
// implementation (DynamicBitset keep + induced subgraph + id remapping),
// kept verbatim so tests can prove the zero-allocation engine returns
// identical verdicts. Not for production use.
SolveOutcome find_pipeline_reference(const SolutionGraph& sg,
                                     const FaultSet& faults,
                                     SolverOptions opts = {});

}  // namespace kgdp::verify
