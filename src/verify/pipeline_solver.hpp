// Reconfiguration: given a solution graph and a fault set, produce a
// pipeline through every healthy processor (or prove none exists). This
// is the algorithmic counterpart of the paper's existence proofs — the
// technical-report proofs are constructive but unavailable, so we solve
// the equivalent Hamiltonian-path-with-endpoint-sets problem exactly and
// certify each answer against the paper's pipeline definition.
//
// The solver is the hot loop of exhaustive certification (one call per
// orbit representative), so it is built as a zero-allocation engine:
//
//   * bind caching — the first solve against a SolutionGraph builds a
//     graph::BitAdjacency view plus role masks once; subsequent solves
//     against the same graph reuse them. rebind() forces a rebuild (use
//     it if a graph object is destroyed and another constructed at the
//     same address between calls).
//   * mask fast path — for graphs of <= 64 nodes (every instance within
//     exhaustive reach) the healthy-processor view is a single word and
//     the Hamiltonian search runs masked in the original id space: no
//     induced subgraph, no id remapping, no per-solve heap traffic.
//   * patch() — the enumerator sweep hands the solver colex deltas
//     (nodes leaving/entering the fault set) instead of materialised
//     fault sets; solve()/solve_faults() are the full-rebuild entries
//     used at chunk boundaries and on discontinuities.
//   * perf counters — solves, patches vs rebuilds, Hamiltonian search
//     nodes and retained scratch bytes, surfaced through the checker,
//     campaign telemetry and kgdd stats.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "graph/bit_adjacency.hpp"
#include "graph/hamiltonian.hpp"
#include "kgd/labeled_graph.hpp"
#include "kgd/pipeline.hpp"

namespace kgdp::verify {

using kgd::FaultSet;
using kgd::Pipeline;
using kgd::SolutionGraph;

enum class SolveStatus {
  kFound,     // pipeline exists; `pipeline` is set and certified
  kNone,      // proven: no pipeline in G \ F
  kUnknown,   // solver budget exhausted (only with a finite budget)
};

struct SolveOutcome {
  SolveStatus status = SolveStatus::kUnknown;
  std::optional<Pipeline> pipeline;
};

struct SolverOptions {
  graph::HamiltonianOptions ham;  // defaults: exact (no budget)
  // Re-check every found pipeline against the pipeline definition; cheap
  // and keeps the solver honest. On by default. On the mask fast path the
  // check runs against the bitset view without building a Pipeline.
  bool certify = true;
  // When false, kFound outcomes skip materialising the Pipeline object —
  // the one unavoidable allocation of a positive solve. The exhaustive
  // sweep only consumes the verdict, so the checker turns this off.
  bool want_pipeline = true;
};

// Monotone per-solver counters (reset_counters() zeroes them). Patches
// and rebuilds depend on chunking and work stealing, so they are
// observability, not part of the deterministic verdict.
struct SolverCounters {
  std::uint64_t solves = 0;        // solve entries of any kind
  std::uint64_t patches = 0;       // delta-applied fault updates
  std::uint64_t rebuilds = 0;      // full fault-view rebuilds
  std::uint64_t search_nodes = 0;  // Hamiltonian DFS expansions
  std::uint64_t scratch_bytes = 0; // scratch currently retained (gauge)
};

class PipelineSolver {
 public:
  explicit PipelineSolver(SolverOptions opts = {});

  // Full solve against an explicit fault set (rebuilds the fault view).
  SolveOutcome solve(const SolutionGraph& sg, const FaultSet& faults);

  // Zero-allocation entries used by the enumerator sweep. solve_faults
  // rebuilds the fault view from a sorted node list; patch applies a
  // colex delta (nodes leaving / entering the fault set) to the view
  // left by the previous call, which must have been against the same
  // graph. All three entries agree bit-for-bit on the verdict.
  SolveOutcome solve_faults(const SolutionGraph& sg,
                            std::span<const graph::Node> faulty);
  SolveOutcome patch(const SolutionGraph& sg,
                     std::span<const graph::Node> removed,
                     std::span<const graph::Node> added);

  // Drops the cached adjacency view; the next solve rebuilds it.
  void rebind() { bound_ = nullptr; }

  SolverCounters counters() const;
  void reset_counters() { ctr_ = {}; }

  std::uint64_t ham_expansions() const { return ham_.expansions(); }

 private:
  bool bind_if_needed(const SolutionGraph& sg);
  SolveOutcome solve_fast();
  SolveOutcome solve_general(const SolutionGraph& sg);
  bool certify_fast(std::span<const graph::Node> interior, std::uint64_t keep,
                    std::uint64_t healthy_inputs,
                    std::uint64_t healthy_outputs) const;

  SolverOptions opts_;
  graph::HamiltonianSolver ham_;

  // Bound-graph view (rebuilt when the graph identity changes).
  const SolutionGraph* bound_ = nullptr;
  int bound_nodes_ = 0;
  std::size_t bound_edges_ = 0;
  bool small_ = false;  // mask fast path applies (1 <= n <= 64)
  graph::BitAdjacency adj_;
  std::uint64_t proc_mask_ = 0, input_mask_ = 0, output_mask_ = 0;

  // Current fault view (valid when have_faults_).
  bool have_faults_ = false;
  std::uint64_t fault_mask_ = 0;          // fast path
  util::DynamicBitset fault_bits_;        // general path
  std::vector<graph::Node> fault_list_;   // general path, sorted

  // Scratch, reused across solves.
  graph::Node start_term_[64];  // witness input terminal per start node
  graph::Node end_term_[64];
  std::vector<graph::Node> path_buf_;
  // General (>64 nodes) path scratch; this path still builds an induced
  // subgraph per solve but reuses every mapping buffer.
  util::DynamicBitset keep_, starts_bs_, ends_bs_;
  std::vector<graph::Node> to_sub_, to_full_, start_term_v_, end_term_v_;

  SolverCounters ctr_;
};

// One-shot convenience.
SolveOutcome find_pipeline(const SolutionGraph& sg, const FaultSet& faults,
                           SolverOptions opts = {});

// Differential-testing oracle: the original allocation-per-call
// implementation (DynamicBitset keep + induced subgraph + id remapping),
// kept verbatim so tests can prove the zero-allocation engine returns
// identical verdicts. Not for production use.
SolveOutcome find_pipeline_reference(const SolutionGraph& sg,
                                     const FaultSet& faults,
                                     SolverOptions opts = {});

}  // namespace kgdp::verify
