// Reconfiguration: given a solution graph and a fault set, produce a
// pipeline through every healthy processor (or prove none exists). This
// is the algorithmic counterpart of the paper's existence proofs — the
// technical-report proofs are constructive but unavailable, so we solve
// the equivalent Hamiltonian-path-with-endpoint-sets problem exactly and
// certify each answer against the paper's pipeline definition.
#pragma once

#include <optional>

#include "graph/hamiltonian.hpp"
#include "kgd/labeled_graph.hpp"
#include "kgd/pipeline.hpp"

namespace kgdp::verify {

using kgd::FaultSet;
using kgd::Pipeline;
using kgd::SolutionGraph;

enum class SolveStatus {
  kFound,     // pipeline exists; `pipeline` is set and certified
  kNone,      // proven: no pipeline in G \ F
  kUnknown,   // solver budget exhausted (only with a finite budget)
};

struct SolveOutcome {
  SolveStatus status = SolveStatus::kUnknown;
  std::optional<Pipeline> pipeline;
};

struct SolverOptions {
  graph::HamiltonianOptions ham;  // defaults: exact (no budget)
  // Re-check every found pipeline against kgd::check_pipeline; cheap and
  // keeps the solver honest. On by default.
  bool certify = true;
};

class PipelineSolver {
 public:
  explicit PipelineSolver(SolverOptions opts = {});

  SolveOutcome solve(const SolutionGraph& sg, const FaultSet& faults);

  std::uint64_t ham_expansions() const { return ham_.expansions(); }

 private:
  SolverOptions opts_;
  graph::HamiltonianSolver ham_;
};

// One-shot convenience.
SolveOutcome find_pipeline(const SolutionGraph& sg, const FaultSet& faults,
                           SolverOptions opts = {});

}  // namespace kgdp::verify
