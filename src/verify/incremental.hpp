// Incremental pipeline repair. A running machine that loses a node wants
// its pipeline back in microseconds, and most single faults admit a
// purely local fix. Strategies, tried cheapest-first:
//
//   kUntouched    — the dead node was not on the pipeline.
//   kTerminalSwap — a pipeline endpoint terminal died; swap in another
//                   healthy terminal attached to the same end processor.
//   kSplice       — an interior processor died and its two pipeline
//                   neighbors are directly adjacent: cut it out.
//   kWindow       — re-route a window of the pipeline around the dead
//                   node with the exact solver (window doubles until the
//                   re-route succeeds or spans the whole pipeline).
//   kFullSolve    — global reconfiguration (always correct fallback).
//   kInfeasible   — no pipeline exists at all for the new fault set.
//
// Every repaired pipeline is certified against the paper's definition.
#pragma once

#include <optional>

#include "kgd/labeled_graph.hpp"
#include "kgd/pipeline.hpp"
#include "verify/pipeline_solver.hpp"

namespace kgdp::verify {

enum class RepairMethod {
  kUntouched,
  kTerminalSwap,
  kSplice,
  kWindow,
  kFullSolve,
  kInfeasible,
};

const char* repair_method_name(RepairMethod m);

class IncrementalReconfigurator {
 public:
  explicit IncrementalReconfigurator(const kgd::SolutionGraph& sg);

  // (Re)start from the given fault set with a fresh global solve.
  // Returns false (and clears the pipeline) if infeasible.
  bool reset(const kgd::FaultSet& faults);

  bool operational() const { return pipeline_.has_value(); }
  const kgd::Pipeline& pipeline() const { return *pipeline_; }
  const kgd::FaultSet& faults() const { return faults_; }

  // Marks `v` faulty and repairs. Counts per-method statistics.
  RepairMethod fail_node(kgd::Node v);

  struct Stats {
    std::uint64_t untouched = 0;
    std::uint64_t terminal_swaps = 0;
    std::uint64_t splices = 0;
    std::uint64_t window_reroutes = 0;
    std::uint64_t full_solves = 0;
    std::uint64_t infeasible = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  RepairMethod repair_around(kgd::Node v);
  bool try_terminal_swap(std::size_t end_index);
  bool try_splice(std::size_t pos);
  bool try_window(std::size_t pos);
  bool full_solve();
  bool certify() const;

  const kgd::SolutionGraph& sg_;
  PipelineSolver solver_;
  kgd::FaultSet faults_;
  std::optional<kgd::Pipeline> pipeline_;
  Stats stats_;
};

}  // namespace kgdp::verify
