// Reliability curves: the fault-tolerance literature's standard metric.
// Every node fails independently with probability p; R(p) is the
// probability the machine still hosts a full pipeline. For a certified
// k-GD graph, R(p) is lower-bounded by P(#faults <= k) (binomial CDF);
// designs that are not gracefully degradable fall below that bound
// because specific small patterns already kill them.
#pragma once

#include <cstdint>
#include <vector>

#include "kgd/labeled_graph.hpp"

namespace kgdp::verify {

struct ReliabilityPoint {
  double p = 0.0;            // per-node failure probability
  double survival = 0.0;     // fraction of trials with a pipeline
  double mean_utilization = 0.0;  // pipeline procs / total procs (0 when
                                  // down), averaged over trials
  double mean_faults = 0.0;
};

// Monte Carlo estimate at one p.
ReliabilityPoint estimate_reliability(const kgd::SolutionGraph& sg,
                                      double p, int trials,
                                      std::uint64_t seed);

// Sweep over several p values (trials each; deterministic given seed).
std::vector<ReliabilityPoint> reliability_curve(
    const kgd::SolutionGraph& sg, const std::vector<double>& ps,
    int trials, std::uint64_t seed);

// The k-GD design's analytic floor: P(Binomial(|V|, p) <= k).
double binomial_survival_floor(int num_nodes, int k, double p);

}  // namespace kgdp::verify
