#include "verify/verdict_cache.hpp"

#include <algorithm>
#include <bit>

namespace kgdp::verify {

namespace {

inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

VerdictCache::VerdictCache(std::size_t capacity) {
  const std::size_t want_sets = (capacity + kWays - 1) / kWays;
  const std::size_t num_sets = std::bit_ceil(std::max<std::size_t>(1, want_sets));
  sets_.resize(num_sets);
  set_mask_ = num_sets - 1;
}

void VerdictCache::hash_keys(std::uint64_t graph_fp,
                             std::span<const std::uint64_t> canon_masks,
                             std::span<std::uint64_t> hashes) {
  // Branchless over lanes; identical arithmetic to the scalar probe path
  // (hash = mix64(fp ^ mix64(mask))), so hashed and unhashed entries
  // always land in the same set.
  const std::size_t count = std::min(canon_masks.size(), hashes.size());
  for (std::size_t i = 0; i < count; ++i) {
    hashes[i] = mix64(graph_fp ^ mix64(canon_masks[i]));
  }
}

std::optional<SolveStatus> VerdictCache::lookup(std::uint64_t graph_fp,
                                                std::uint64_t canon_mask) {
  return lookup_hashed(graph_fp, canon_mask,
                       mix64(graph_fp ^ mix64(canon_mask)));
}

std::optional<SolveStatus> VerdictCache::lookup_hashed(
    std::uint64_t graph_fp, std::uint64_t canon_mask, std::uint64_t hash) {
  const std::size_t si = set_index(hash);
  {
    std::lock_guard<std::mutex> lock(stripes_[si & (kStripes - 1)]);
    const Set& set = sets_[si];
    for (const Entry& e : set.ways) {
      if (e.valid && e.fp == graph_fp && e.mask == canon_mask) {
        hits_.fetch_add(1, std::memory_order_relaxed);
        return static_cast<SolveStatus>(e.verdict);
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

bool VerdictCache::insert(std::uint64_t graph_fp, std::uint64_t canon_mask,
                          SolveStatus verdict) {
  return insert_hashed(graph_fp, canon_mask,
                       mix64(graph_fp ^ mix64(canon_mask)), verdict);
}

bool VerdictCache::insert_hashed(std::uint64_t graph_fp,
                                 std::uint64_t canon_mask, std::uint64_t hash,
                                 SolveStatus verdict) {
  if (verdict == SolveStatus::kUnknown) return false;
  const std::size_t si = set_index(hash);
  std::lock_guard<std::mutex> lock(stripes_[si & (kStripes - 1)]);
  Set& set = sets_[si];
  // Refresh in place if the key is already resident (concurrent workers
  // race to insert the same orbit; verdicts agree, so this is idempotent).
  for (Entry& e : set.ways) {
    if (e.valid && e.fp == graph_fp && e.mask == canon_mask) {
      e.verdict = static_cast<std::uint8_t>(verdict);
      return false;
    }
  }
  // Prefer a free way; otherwise evict at the round-robin cursor.
  Entry* victim = nullptr;
  for (Entry& e : set.ways) {
    if (!e.valid) {
      victim = &e;
      break;
    }
  }
  bool evicted = false;
  if (victim == nullptr) {
    victim = &set.ways[set.next];
    set.next = static_cast<std::uint8_t>((set.next + 1) % kWays);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    evicted = true;
  }
  victim->fp = graph_fp;
  victim->mask = canon_mask;
  victim->verdict = static_cast<std::uint8_t>(verdict);
  victim->valid = true;
  inserts_.fetch_add(1, std::memory_order_relaxed);
  return evicted;
}

VerdictCacheStats VerdictCache::stats() const {
  VerdictCacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.inserts = inserts_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace kgdp::verify
