// NEON instantiation of the batch setup kernel for aarch64, where NEON
// is architecturally mandatory — no runtime CPUID gate needed, the
// #if below is the whole dispatch. Width 8 over four uint64x2_t pairs:
// the role-mask derivation and the start/end accumulation are pure
// 128-bit word logic (vtstq_u64 gives the branchless -(row & mask != 0)
// lane predicate directly), and the first-restart start bit is the
// vectorized x & -x. The walk seed is a 64-bit multiply-add, which NEON
// has no vector form for, so it is mixed scalar at store time. On any
// other target this TU compiles to the nullptr stub, which is how a
// compile-time-absent kernel reports itself to the registry.
#include "verify/batch_kernels.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)
#include <arm_neon.h>

#include "verify/batch_kernels_impl.hpp"
#endif

namespace kgdp::verify::detail {

#if defined(__aarch64__) && defined(__ARM_NEON)

namespace {

void batch_setup_neon_w8(const std::uint64_t* rows, int n,
                         std::uint64_t proc_mask, std::uint64_t input_mask,
                         std::uint64_t output_mask,
                         const std::uint64_t* fault_masks, std::size_t count,
                         LaneSetup* out) {
  constexpr int kWidth = 8;
  constexpr int kPairs = kWidth / 2;
  const uint64x2_t proc = vdupq_n_u64(proc_mask);
  const uint64x2_t in_m = vdupq_n_u64(input_mask);
  const uint64x2_t out_m = vdupq_n_u64(output_mask);
  const uint64x2_t ones = vdupq_n_u64(~std::uint64_t{0});
  const uint64x2_t zero = vdupq_n_u64(0);
  std::size_t i = 0;
  for (; i + kWidth <= count; i += kWidth) {
    uint64x2_t keep[kPairs], in_ok[kPairs], out_ok[kPairs];
    uint64x2_t starts[kPairs], ends[kPairs];
    for (int p = 0; p < kPairs; ++p) {
      const uint64x2_t fm = vld1q_u64(fault_masks + i + 2 * p);
      const uint64x2_t healthy = veorq_u64(fm, ones);
      keep[p] = vandq_u64(proc, healthy);
      in_ok[p] = vandq_u64(in_m, healthy);
      out_ok[p] = vandq_u64(out_m, healthy);
      starts[p] = zero;
      ends[p] = zero;
    }
    for (int v = 0; v < n; ++v) {
      const uint64x2_t row = vdupq_n_u64(rows[v]);
      const uint64x2_t bit = vdupq_n_u64(std::uint64_t{1} << v);
      for (int p = 0; p < kPairs; ++p) {
        const uint64x2_t has_in = vtstq_u64(row, in_ok[p]);
        const uint64x2_t has_out = vtstq_u64(row, out_ok[p]);
        const uint64x2_t keep_bit = vandq_u64(keep[p], bit);
        starts[p] = vorrq_u64(starts[p], vandq_u64(keep_bit, has_in));
        ends[p] = vorrq_u64(ends[p], vandq_u64(keep_bit, has_out));
      }
    }
    for (int p = 0; p < kPairs; ++p) {
      const uint64x2_t start_bit =
          vandq_u64(starts[p], vsubq_u64(zero, starts[p]));
      std::uint64_t keep_s[2], in_s[2], out_s[2], st_s[2], en_s[2], sb_s[2];
      vst1q_u64(keep_s, keep[p]);
      vst1q_u64(in_s, in_ok[p]);
      vst1q_u64(out_s, out_ok[p]);
      vst1q_u64(st_s, starts[p]);
      vst1q_u64(en_s, ends[p]);
      vst1q_u64(sb_s, start_bit);
      for (int l = 0; l < 2; ++l) {
        const std::size_t idx = i + 2 * p + l;
        out[idx] = LaneSetup{keep_s[l], in_s[l],
                             out_s[l],  st_s[l],
                             en_s[l],   walk_seed_mix(fault_masks[idx]),
                             sb_s[l]};
      }
    }
  }
  if (i < count) {
    run_batch_setup<1>(rows, n, proc_mask, input_mask, output_mask,
                       fault_masks + i, count - i, out + i);
  }
}

}  // namespace

BatchSetupFn batch_setup_neon() { return &batch_setup_neon_w8; }

#else

BatchSetupFn batch_setup_neon() { return nullptr; }

#endif

}  // namespace kgdp::verify::detail
