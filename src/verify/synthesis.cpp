#include "verify/synthesis.hpp"

#include <algorithm>
#include <cassert>
#include <deque>
#include <numeric>

#include "fault/enumerator.hpp"
#include "graph/properties.hpp"
#include "util/rng.hpp"
#include "verify/checker.hpp"
#include "verify/pipeline_solver.hpp"

namespace kgdp::verify {

using graph::Graph;
using graph::Node;
using kgd::FaultSet;
using kgd::Role;
using kgd::SolutionGraph;
using kgd::SolutionGraphBuilder;

namespace {

// ---------------------------------------------------------------------
// Shape enumeration
// ---------------------------------------------------------------------

struct Triple {
  int in, out, deg;  // attachments and processor-subgraph degree
  bool operator>(const Triple& o) const {
    if (in != o.in) return in > o.in;
    if (out != o.out) return out > o.out;
    return deg > o.deg;
  }
  bool operator<=(const Triple& o) const { return !(*this > o); }
};

void shapes_rec(const SynthSpec& spec, int idx, int rem_in, int rem_out,
                std::vector<Triple>& acc, std::vector<CandidateShape>& out) {
  const int P = spec.n + spec.k;
  if (idx == P) {
    if (rem_in != 0 || rem_out != 0) return;
    int deg_sum = 0;
    for (const Triple& t : acc) deg_sum += t.deg;
    if (deg_sum % 2 != 0) return;
    CandidateShape s;
    for (const Triple& t : acc) {
      s.att_in.push_back(t.in);
      s.att_out.push_back(t.out);
      s.proc_degree.push_back(t.deg);
    }
    out.push_back(std::move(s));
    return;
  }
  const int min_proc = spec.n > 1 ? spec.k + 1 : 0;
  for (int in = 0; in <= rem_in; ++in) {
    for (int o = 0; o <= rem_out; ++o) {
      const int att = in + o;
      const int lo = std::max({min_proc, spec.k + 2 - att, 0});
      const int hi = std::min(spec.max_total_degree - att, P - 1);
      for (int d = lo; d <= hi; ++d) {
        const Triple t{in, o, d};
        // Canonical non-increasing order kills relabel-duplicates.
        if (!acc.empty() && !(t <= acc.back())) continue;
        acc.push_back(t);
        shapes_rec(spec, idx + 1, rem_in - in, rem_out - o, acc, out);
        acc.pop_back();
      }
    }
  }
}

// ---------------------------------------------------------------------
// Exact-degree-sequence labeled graph enumeration
// ---------------------------------------------------------------------

// Completes node `u` (the lowest with unfulfilled degree) by choosing its
// remaining partners among higher-indexed nodes, recursively. Calls
// `emit` for each complete labeled graph; emit returning false aborts.
class DegreeSequenceEnumerator {
 public:
  DegreeSequenceEnumerator(std::vector<int> degrees,
                           std::function<bool(const Graph&)> emit,
                           std::uint64_t max_graphs)
      : residual_(std::move(degrees)),
        g_(static_cast<int>(residual_.size())),
        emit_(std::move(emit)),
        max_graphs_(max_graphs) {}

  // Returns true iff the space was fully enumerated (no early abort).
  bool run() {
    aborted_ = false;
    rec();
    return !aborted_ && !capped_;
  }

  std::uint64_t emitted() const { return emitted_; }

 private:
  void rec() {
    if (aborted_ || capped_) return;
    int u = -1;
    for (int v = 0; v < g_.num_nodes(); ++v) {
      if (residual_[v] > 0) {
        u = v;
        break;
      }
    }
    if (u < 0) {
      ++emitted_;
      if (max_graphs_ && emitted_ > max_graphs_) {
        capped_ = true;
        return;
      }
      if (!emit_(g_)) aborted_ = true;
      return;
    }
    // Candidates: strictly higher-indexed nodes with spare degree.
    std::vector<int> cand;
    for (int w = u + 1; w < g_.num_nodes(); ++w) {
      if (residual_[w] > 0) cand.push_back(w);
    }
    const int need = residual_[u];
    if (static_cast<int>(cand.size()) < need) return;
    choose(u, cand, 0, need);
  }

  void choose(int u, const std::vector<int>& cand, std::size_t from,
              int need) {
    if (aborted_ || capped_) return;
    if (need == 0) {
      const int saved = residual_[u];
      residual_[u] = 0;
      rec();
      residual_[u] = saved;
      return;
    }
    if (cand.size() - from < static_cast<std::size_t>(need)) return;
    // Take cand[from]...
    {
      const int w = cand[from];
      g_.add_edge(u, w);
      --residual_[w];
      choose(u, cand, from + 1, need - 1);
      ++residual_[w];
      g_.remove_edge(u, w);
    }
    // ...or skip it.
    choose(u, cand, from + 1, need);
  }

  std::vector<int> residual_;
  Graph g_;
  std::function<bool(const Graph&)> emit_;
  std::uint64_t max_graphs_;
  std::uint64_t emitted_ = 0;
  bool aborted_ = false;
  bool capped_ = false;
};

// ---------------------------------------------------------------------
// GD filtering with a fail-first cache
// ---------------------------------------------------------------------

// Candidate graphs overwhelmingly fail on a handful of fault-set
// patterns; replaying recent killers first skips the full sweep.
class GdFilter {
 public:
  explicit GdFilter(int k) : k_(k) {}

  bool certify(const SolutionGraph& sg, std::uint64_t* gd_checks) {
    PipelineSolver solver;
    for (const auto& nodes : hot_) {
      if (static_cast<int>(nodes.size()) > sg.num_nodes()) continue;
      bool in_range = true;
      for (int v : nodes) in_range &= v < sg.num_nodes();
      if (!in_range) continue;
      const FaultSet fs(sg.num_nodes(), nodes);
      if (solver.solve(sg, fs).status == SolveStatus::kNone) {
        return false;  // same killer strikes again; no recount needed
      }
    }
    ++*gd_checks;
    const CheckResult res = run_check(sg, CheckRequest::exhaustive(k_));
    if (!res.holds && res.counterexample) {
      remember(res.counterexample->nodes());
      return false;
    }
    return res.holds;
  }

 private:
  void remember(std::vector<int> nodes) {
    hot_.push_front(std::move(nodes));
    if (hot_.size() > 64) hot_.pop_back();
  }

  int k_;
  std::deque<std::vector<int>> hot_;
};

bool plausible_processor_graph(const Graph& pg, int k) {
  if (pg.num_nodes() >= 2 && !graph::is_connected(pg)) return false;
  // A cut processor c fails the single fault set {c} whenever both sides
  // of the cut contain processors, so for k >= 1 reject articulation
  // points outright.
  if (k >= 1 && pg.num_nodes() >= 3 &&
      !graph::articulation_points(pg).empty()) {
    return false;
  }
  return true;
}

}  // namespace

std::vector<CandidateShape> enumerate_shapes(const SynthSpec& spec) {
  std::vector<CandidateShape> out;
  std::vector<Triple> acc;
  shapes_rec(spec, 0, spec.k + 1, spec.k + 1, acc, out);
  return out;
}

SolutionGraph assemble(const SynthSpec& spec, const CandidateShape& shape,
                       const Graph& proc_graph) {
  const int P = spec.n + spec.k;
  assert(proc_graph.num_nodes() == P);
  SolutionGraphBuilder b(spec.n, spec.k,
                         "synth(" + std::to_string(spec.n) + "," +
                             std::to_string(spec.k) + ")");
  for (int v = 0; v < P; ++v) b.add(Role::kProcessor);
  for (auto [u, v] : proc_graph.edges()) b.connect(u, v);
  for (int v = 0; v < P; ++v) {
    for (int j = 0; j < shape.att_in[v]; ++j) {
      b.connect(b.add(Role::kInput), v);
    }
    for (int j = 0; j < shape.att_out[v]; ++j) {
      b.connect(b.add(Role::kOutput), v);
    }
  }
  return b.build();
}

SynthStats enumerate_standard_solutions(
    const SynthSpec& spec, const SynthLimits& limits,
    const std::function<bool(const SolutionGraph&)>& on_solution) {
  SynthStats stats;
  stats.search_space_exhausted = true;
  GdFilter filter(spec.k);

  for (const CandidateShape& shape : enumerate_shapes(spec)) {
    ++stats.shapes;
    bool stop = false;
    DegreeSequenceEnumerator en(
        shape.proc_degree,
        [&](const Graph& pg) {
          ++stats.graphs_enumerated;
          if (!plausible_processor_graph(pg, spec.k)) return true;
          const SolutionGraph sg = assemble(spec, shape, pg);
          if (!filter.certify(sg, &stats.gd_checks)) return true;
          ++stats.solutions;
          if (!on_solution(sg) ||
              (limits.max_solutions &&
               stats.solutions >= limits.max_solutions)) {
            stop = true;
            return false;
          }
          return true;
        },
        limits.max_graphs);
    const bool exhausted = en.run();
    if (!exhausted && !stop) stats.search_space_exhausted = false;
    if (stop) {
      stats.search_space_exhausted = false;
      break;
    }
  }
  return stats;
}

// ---------------------------------------------------------------------
// Stochastic synthesis
// ---------------------------------------------------------------------

namespace {

// Havel–Hakimi realisation of a graphical degree sequence, nullopt if the
// sequence is not graphical.
std::optional<Graph> havel_hakimi(const std::vector<int>& degrees) {
  const int n = static_cast<int>(degrees.size());
  Graph g(n);
  std::vector<std::pair<int, int>> rem;  // (residual degree, node)
  for (int v = 0; v < n; ++v) rem.emplace_back(degrees[v], v);
  while (true) {
    std::sort(rem.rbegin(), rem.rend());
    if (rem.empty() || rem.front().first == 0) break;
    auto [d, v] = rem.front();
    rem.front().first = 0;
    if (d >= static_cast<int>(rem.size())) return std::nullopt;
    for (int i = 1; i <= d; ++i) {
      if (rem[i].first == 0) return std::nullopt;
      --rem[i].first;
      g.add_edge(v, rem[i].second);
    }
  }
  return g;
}

// Random degree-preserving 2-swap: edges (a,b),(c,d) -> (a,d),(c,b).
bool try_edge_swap(Graph& g, util::Rng& rng) {
  const auto edges = g.edges();
  if (edges.size() < 2) return false;
  const auto [a, b] = edges[rng.next_below(edges.size())];
  const auto [c, d] = edges[rng.next_below(edges.size())];
  Node a2 = a, b2 = b, c2 = c, d2 = d;
  if (rng.next_bool()) std::swap(c2, d2);
  if (a2 == c2 || a2 == d2 || b2 == c2 || b2 == d2) return false;
  if (g.has_edge(a2, d2) || g.has_edge(c2, b2)) return false;
  g.remove_edge(a2, b2);
  g.remove_edge(c2, d2);
  g.add_edge(a2, d2);
  g.add_edge(c2, b2);
  return true;
}

// Count failing fault sets, stopping once `cap` failures are seen.
int count_failures(const SolutionGraph& sg, int k, int cap,
                   std::vector<std::vector<int>>* killers) {
  const fault::FaultEnumerator en(sg.num_nodes(), k);
  PipelineSolver solver;
  int failures = 0;
  for (std::uint64_t i = 0; i < en.total(); ++i) {
    const FaultSet fs = en.at(i);
    if (solver.solve(sg, fs).status == SolveStatus::kNone) {
      if (killers && killers->size() < 8) killers->push_back(fs.nodes());
      if (++failures >= cap) return failures;
    }
  }
  return failures;
}

}  // namespace

std::optional<SolutionGraph> synthesize_stochastic(const SynthSpec& spec,
                                                   std::uint64_t seed,
                                                   int max_restarts,
                                                   int iters_per_restart) {
  std::vector<CandidateShape> shapes = enumerate_shapes(spec);
  if (shapes.empty()) return std::nullopt;
  // Prefer shapes whose processor core is densest: empirically those are
  // the ones that survive adversarial fault sets.
  std::stable_sort(shapes.begin(), shapes.end(),
                   [](const CandidateShape& a, const CandidateShape& b) {
                     return std::accumulate(a.proc_degree.begin(),
                                            a.proc_degree.end(), 0) >
                            std::accumulate(b.proc_degree.begin(),
                                            b.proc_degree.end(), 0);
                   });

  util::Rng rng(seed);
  const int fail_cap = 12;

  for (int restart = 0; restart < max_restarts; ++restart) {
    const CandidateShape& shape = shapes[restart % shapes.size()];
    auto realized = havel_hakimi(shape.proc_degree);
    if (!realized) continue;
    Graph g = std::move(*realized);
    // Randomise away from the Havel–Hakimi canonical form.
    for (std::size_t i = 0; i < 4 * g.num_edges(); ++i) try_edge_swap(g, rng);

    int cur = count_failures(assemble(spec, shape, g), spec.k, fail_cap,
                             nullptr);
    for (int it = 0; it < iters_per_restart && cur > 0; ++it) {
      Graph trial = g;
      // One to three swaps per move: occasional double moves escape
      // shallow local minima.
      const int nswaps = 1 + static_cast<int>(rng.next_below(3));
      bool changed = false;
      for (int s = 0; s < nswaps; ++s) changed |= try_edge_swap(trial, rng);
      if (!changed) continue;
      if (!plausible_processor_graph(trial, spec.k)) continue;
      const int fails = count_failures(assemble(spec, shape, trial), spec.k,
                                       fail_cap, nullptr);
      if (fails < cur || (fails == cur && rng.next_bool(0.25))) {
        g = std::move(trial);
        cur = fails;
      }
    }
    if (cur == 0) {
      // Certify with the full exhaustive checker before returning.
      SolutionGraph sg = assemble(spec, shape, g);
      const CheckResult res = run_check(sg, CheckRequest::exhaustive(spec.k));
      if (res.holds) return sg;
    }
  }
  return std::nullopt;
}

}  // namespace kgdp::verify
