// AVX-512-compiled instantiation of the batch setup kernel. This TU is
// the only one built with -mavx512f (see src/CMakeLists.txt), so the
// width-16 vector code stays behind the runtime __builtin_cpu_supports
// dispatch in select_batch_kernel() and the rest of the library remains
// baseline-ISA. Sixteen 64-bit lanes fill two zmm registers per live
// mask array; the portable width-16 kernel is the differential twin the
// fuzz harness diffs this against. When the build cannot target AVX-512
// the stub reports that by returning nullptr and dispatch falls back.
#include "verify/batch_kernels.hpp"

#if defined(__AVX512F__)
#include "verify/batch_kernels_impl.hpp"
#endif

namespace kgdp::verify::detail {

#if defined(__AVX512F__)

namespace {

void batch_setup_avx512_w16(const std::uint64_t* rows, int n,
                            std::uint64_t proc_mask, std::uint64_t input_mask,
                            std::uint64_t output_mask,
                            const std::uint64_t* fault_masks,
                            std::size_t count, LaneSetup* out) {
  run_batch_setup<16>(rows, n, proc_mask, input_mask, output_mask, fault_masks,
                      count, out);
}

}  // namespace

BatchSetupFn batch_setup_avx512() { return &batch_setup_avx512_w16; }

#else

BatchSetupFn batch_setup_avx512() { return nullptr; }

#endif

}  // namespace kgdp::verify::detail
