#include "verify/incremental.hpp"

#include <algorithm>
#include <cassert>

#include "graph/hamiltonian.hpp"

namespace kgdp::verify {

using graph::Node;
using kgd::Role;

const char* repair_method_name(RepairMethod m) {
  switch (m) {
    case RepairMethod::kUntouched: return "untouched";
    case RepairMethod::kTerminalSwap: return "terminal-swap";
    case RepairMethod::kSplice: return "splice";
    case RepairMethod::kWindow: return "window-reroute";
    case RepairMethod::kFullSolve: return "full-solve";
    case RepairMethod::kInfeasible: return "infeasible";
  }
  return "?";
}

IncrementalReconfigurator::IncrementalReconfigurator(
    const kgd::SolutionGraph& sg)
    : sg_(sg), faults_(kgd::FaultSet::none(sg.num_nodes())) {
  reset(faults_);
}

bool IncrementalReconfigurator::reset(const kgd::FaultSet& faults) {
  faults_ = faults;
  return full_solve();
}

bool IncrementalReconfigurator::full_solve() {
  const auto out = solver_.solve(sg_, faults_);
  if (out.status == SolveStatus::kFound) {
    pipeline_ = out.pipeline;
    return true;
  }
  pipeline_.reset();
  return false;
}

bool IncrementalReconfigurator::certify() const {
  return pipeline_ &&
         kgd::check_pipeline(sg_, faults_, pipeline_->path).ok;
}

RepairMethod IncrementalReconfigurator::fail_node(kgd::Node v) {
  assert(v >= 0 && v < sg_.num_nodes());
  if (faults_.contains(v)) {
    return operational() ? RepairMethod::kUntouched
                         : RepairMethod::kInfeasible;
  }
  std::vector<Node> nodes = faults_.nodes();
  nodes.push_back(v);
  faults_ = kgd::FaultSet(sg_.num_nodes(), std::move(nodes));

  if (!pipeline_) {
    // Already down; a new fault can only be handled globally (a repair
    // path does not exist to patch).
    if (full_solve()) {
      ++stats_.full_solves;
      return RepairMethod::kFullSolve;
    }
    ++stats_.infeasible;
    return RepairMethod::kInfeasible;
  }

  const auto& path = pipeline_->path;
  const auto it = std::find(path.begin(), path.end(), v);
  if (it == path.end()) {
    // Not on the pipeline: still valid (faults only shrink the healthy
    // set; v was not among the covered processors nor the terminals).
    assert(certify());
    ++stats_.untouched;
    return RepairMethod::kUntouched;
  }
  return repair_around(v);
}

RepairMethod IncrementalReconfigurator::repair_around(kgd::Node v) {
  const auto& path = pipeline_->path;
  const std::size_t pos =
      std::find(path.begin(), path.end(), v) - path.begin();

  if (pos == 0 || pos + 1 == path.size()) {
    if (try_terminal_swap(pos)) {
      ++stats_.terminal_swaps;
      return RepairMethod::kTerminalSwap;
    }
  } else {
    if (try_splice(pos)) {
      ++stats_.splices;
      return RepairMethod::kSplice;
    }
    if (try_window(pos)) {
      ++stats_.window_reroutes;
      return RepairMethod::kWindow;
    }
  }
  if (full_solve()) {
    ++stats_.full_solves;
    return RepairMethod::kFullSolve;
  }
  ++stats_.infeasible;
  return RepairMethod::kInfeasible;
}

bool IncrementalReconfigurator::try_terminal_swap(std::size_t end_index) {
  std::vector<Node> path = pipeline_->path;
  const bool front = end_index == 0;
  const Node anchor = front ? path[1] : path[path.size() - 2];
  const Role wanted = sg_.role(front ? path.front() : path.back());
  for (Node w : sg_.graph().neighbors(anchor)) {
    if (sg_.role(w) == wanted && !faults_.contains(w)) {
      if (front) {
        path.front() = w;
      } else {
        path.back() = w;
      }
      kgd::Pipeline candidate{std::move(path)};
      if (kgd::check_pipeline(sg_, faults_, candidate.path).ok) {
        pipeline_ = kgd::normalize_pipeline(sg_, candidate.path);
        return true;
      }
      return false;
    }
  }
  return false;
}

bool IncrementalReconfigurator::try_splice(std::size_t pos) {
  const auto& path = pipeline_->path;
  assert(pos > 0 && pos + 1 < path.size());
  if (!sg_.graph().has_edge(path[pos - 1], path[pos + 1])) return false;
  std::vector<Node> repaired(path.begin(), path.begin() + pos);
  repaired.insert(repaired.end(), path.begin() + pos + 1, path.end());
  if (!kgd::check_pipeline(sg_, faults_, repaired).ok) return false;
  pipeline_ = kgd::normalize_pipeline(sg_, std::move(repaired));
  return true;
}

bool IncrementalReconfigurator::try_window(std::size_t pos) {
  const auto& path = pipeline_->path;
  for (std::size_t radius = 3; radius < path.size(); radius *= 2) {
    const std::size_t lo = pos > radius ? pos - radius : 1;
    const std::size_t hi =
        std::min(pos + radius, path.size() - 2);  // keep terminals fixed
    if (lo >= hi) continue;
    // Window nodes: the path segment [lo, hi] minus the dead node; the
    // re-route must cover all of them, anchored at path[lo-1], path[hi+1]
    // via their window neighbors. We solve on the induced subgraph of
    // the segment with endpoint sets = neighbors of the anchors.
    util::DynamicBitset keep(sg_.num_nodes());
    for (std::size_t i = lo; i <= hi; ++i) {
      if (path[i] != path[pos]) keep.set(path[i]);
    }
    std::vector<Node> map;
    const graph::Graph sub = sg_.graph().induced_subgraph(keep, &map);
    util::DynamicBitset starts(sub.num_nodes()), ends(sub.num_nodes());
    for (Node w : sg_.graph().neighbors(path[lo - 1])) {
      if (static_cast<std::size_t>(w) < map.size() && map[w] >= 0) {
        starts.set(map[w]);
      }
    }
    for (Node w : sg_.graph().neighbors(path[hi + 1])) {
      if (static_cast<std::size_t>(w) < map.size() && map[w] >= 0) {
        ends.set(map[w]);
      }
    }
    if (!starts.any() || !ends.any()) continue;
    // Bounded search: the window is a heuristic, so give up quickly and
    // grow the radius (or fall through to the global solver) instead of
    // proving absence exactly on every intermediate window size.
    graph::HamiltonianOptions bounded;
    bounded.dfs_budget = 20000;
    const auto res = graph::hamiltonian_path(sub, starts, ends, bounded);
    if (res.status != graph::HamResult::kFound) continue;

    std::vector<Node> repaired(path.begin(), path.begin() + lo);
    std::vector<Node> back_map(sub.num_nodes(), -1);
    for (Node full = 0; full < sg_.num_nodes(); ++full) {
      if (map[full] >= 0) back_map[map[full]] = full;
    }
    for (Node s : res.path) repaired.push_back(back_map[s]);
    repaired.insert(repaired.end(), path.begin() + hi + 1, path.end());
    if (!kgd::check_pipeline(sg_, faults_, repaired).ok) continue;
    pipeline_ = kgd::normalize_pipeline(sg_, std::move(repaired));
    return true;
  }
  return false;
}

}  // namespace kgdp::verify
