#include "verify/reliability.hpp"

#include <cmath>

#include "util/rng.hpp"
#include "verify/pipeline_solver.hpp"

namespace kgdp::verify {

ReliabilityPoint estimate_reliability(const kgd::SolutionGraph& sg,
                                      double p, int trials,
                                      std::uint64_t seed) {
  util::Rng rng(seed);
  PipelineSolver solver;
  ReliabilityPoint point;
  point.p = p;
  const int total_procs = sg.num_processors();

  long survived = 0;
  double util_sum = 0.0;
  long fault_sum = 0;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> faulty;
    for (int v = 0; v < sg.num_nodes(); ++v) {
      if (rng.next_bool(p)) faulty.push_back(v);
    }
    fault_sum += static_cast<long>(faulty.size());
    const kgd::FaultSet fs(sg.num_nodes(), std::move(faulty));
    const auto out = solver.solve(sg, fs);
    if (out.status == SolveStatus::kFound) {
      ++survived;
      util_sum += static_cast<double>(out.pipeline->num_processors()) /
                  total_procs;
    }
  }
  point.survival = static_cast<double>(survived) / trials;
  point.mean_utilization = util_sum / trials;
  point.mean_faults = static_cast<double>(fault_sum) / trials;
  return point;
}

std::vector<ReliabilityPoint> reliability_curve(
    const kgd::SolutionGraph& sg, const std::vector<double>& ps,
    int trials, std::uint64_t seed) {
  std::vector<ReliabilityPoint> curve;
  curve.reserve(ps.size());
  std::uint64_t s = seed;
  for (double p : ps) {
    curve.push_back(estimate_reliability(sg, p, trials, ++s));
  }
  return curve;
}

double binomial_survival_floor(int num_nodes, int k, double p) {
  // P(X <= k) for X ~ Binomial(num_nodes, p), computed stably in the
  // regimes we care about (num_nodes <= a few hundred).
  double cdf = 0.0;
  double term = std::pow(1.0 - p, num_nodes);  // P(X = 0)
  for (int j = 0; j <= k; ++j) {
    cdf += term;
    term *= static_cast<double>(num_nodes - j) / (j + 1) * p / (1.0 - p);
  }
  return std::min(cdf, 1.0);
}

}  // namespace kgdp::verify
