// Search-based synthesis of standard solution graphs. The paper's §3.3
// "special solutions" (Figures 10–13) were "intuitively designed and
// exhaustively verified by human and/or computer checking"; their edge
// lists are not recoverable from the scan, so this module reproduces the
// method: enumerate or locally search candidate standard graphs under the
// degree constraints forced by Lemmas 3.1/3.4, and certify each candidate
// with the exhaustive GD checker. It also powers the Lemma 3.14
// impossibility proof (exhaustive search returning zero solutions) and
// the uniqueness claims of Lemmas 3.7/3.9.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "kgd/labeled_graph.hpp"

namespace kgdp::verify {

// A candidate shape: per-processor attachment counts (input terminals and
// output terminals attached) and an exact processor-subgraph degree for
// each processor. Σ att_in = Σ att_out = k+1; proc_degree[v] + att sums
// to the node's total degree.
struct CandidateShape {
  std::vector<int> att_in;
  std::vector<int> att_out;
  std::vector<int> proc_degree;
};

struct SynthSpec {
  int n = 0;
  int k = 0;
  int max_total_degree = 0;  // degree-optimality target
};

struct SynthLimits {
  // Cap on processor-subgraphs generated per shape (0 = unlimited).
  std::uint64_t max_graphs = 0;
  // Stop after this many GD-verified solutions (0 = find all).
  std::uint64_t max_solutions = 1;
};

struct SynthStats {
  std::uint64_t shapes = 0;
  std::uint64_t graphs_enumerated = 0;
  std::uint64_t gd_checks = 0;
  std::uint64_t solutions = 0;
  bool search_space_exhausted = false;
};

// All shapes compatible with the spec and Lemmas 3.1/3.4, with attachment
// patterns canonicalised (processors sorted by (att_in, att_out) so
// relabel-equivalent shapes appear once).
std::vector<CandidateShape> enumerate_shapes(const SynthSpec& spec);

// Assembles a SolutionGraph from a processor subgraph + shape.
kgd::SolutionGraph assemble(const SynthSpec& spec, const CandidateShape& shape,
                            const graph::Graph& proc_graph);

// Exhaustive search. Calls `on_solution` for every GD-certified solution
// found (return false from it to stop early). Returns statistics;
// stats.search_space_exhausted == true means "no solution exists for this
// spec" whenever stats.solutions == 0.
SynthStats enumerate_standard_solutions(
    const SynthSpec& spec, const SynthLimits& limits,
    const std::function<bool(const kgd::SolutionGraph&)>& on_solution);

// Stochastic local search (degree-preserving edge swaps + attachment-role
// swaps, objective = number of failing fault sets). Returns a certified
// solution or nullopt after `max_restarts` restarts.
std::optional<kgd::SolutionGraph> synthesize_stochastic(
    const SynthSpec& spec, std::uint64_t seed, int max_restarts = 64,
    int iters_per_restart = 20000);

}  // namespace kgdp::verify
