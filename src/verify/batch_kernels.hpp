// Lane-parallel batch setup for the mask fast path. Solving a batch of B
// fault sets splits into (a) a data-parallel phase — per lane, derive the
// healthy-processor set, the legal start/end endpoint masks, the walk
// seed, and the first-restart start bit from the BitAdjacency rows — and
// (b) the per-lane verdict settling. Phase (a) is pure word arithmetic
// over identical control flow, so it runs W fault masks per pass with the
// lane loop unrolled W-wide: the portable kernels below auto-vectorize,
// and separate per-ISA translation units provide AVX2 (-mavx2, width 8),
// AVX-512 (-mavx512f, width 16) and NEON (aarch64, width 8)
// instantiations selected at runtime. All kernels compute bit-identical
// LaneSetup values — width and ISA choice can never change a verdict —
// so tests force each registered kernel and diff the streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace kgdp::verify::detail {

// Per-lane solve inputs derived from one fault mask (original id space):
// healthy processors, healthy input/output terminals, the endpoint sets
// (healthy processors adjacent to a healthy input resp. output), plus
// the two walk-first seeding values — the deterministic walk seed mixed
// from the fault mask and the lowest start bit (the walk's first-restart
// endpoint selection), both batched here so the walk phase starts with
// no per-set scalar preamble.
struct LaneSetup {
  std::uint64_t keep = 0;
  std::uint64_t in_ok = 0;
  std::uint64_t out_ok = 0;
  std::uint64_t starts = 0;
  std::uint64_t ends = 0;
  std::uint64_t seed = 0;       // walk_seed_mix(fault_mask)
  std::uint64_t start_bit = 0;  // starts & -starts (0 when starts == 0)
};

// Walk seed derived purely from the fault mask (splitmix-style mix), so a
// given (graph, fault set) always walks the same way regardless of batch
// width, ISA, chunking or thread schedule — verdict determinism depends
// on it. Shared by every kernel and by the scalar verdict path.
inline std::uint64_t walk_seed_mix(std::uint64_t fault_mask) {
  return fault_mask * 0x9e3779b97f4a7c15ULL + 0x243f6a8885a308d3ULL;
}

// Fills out[0..count) from fault_masks[0..count) against the rows of an
// n-node (n <= 64) graph with the given role masks. Tail lanes (count
// not a multiple of the kernel width) are handled internally.
using BatchSetupFn = void (*)(const std::uint64_t* rows, int n,
                              std::uint64_t proc_mask,
                              std::uint64_t input_mask,
                              std::uint64_t output_mask,
                              const std::uint64_t* fault_masks,
                              std::size_t count, LaneSetup* out);

// Portable kernels, one per lane width.
void batch_setup_w1(const std::uint64_t* rows, int n, std::uint64_t proc_mask,
                    std::uint64_t input_mask, std::uint64_t output_mask,
                    const std::uint64_t* fault_masks, std::size_t count,
                    LaneSetup* out);
void batch_setup_w2(const std::uint64_t* rows, int n, std::uint64_t proc_mask,
                    std::uint64_t input_mask, std::uint64_t output_mask,
                    const std::uint64_t* fault_masks, std::size_t count,
                    LaneSetup* out);
void batch_setup_w4(const std::uint64_t* rows, int n, std::uint64_t proc_mask,
                    std::uint64_t input_mask, std::uint64_t output_mask,
                    const std::uint64_t* fault_masks, std::size_t count,
                    LaneSetup* out);
void batch_setup_w8(const std::uint64_t* rows, int n, std::uint64_t proc_mask,
                    std::uint64_t input_mask, std::uint64_t output_mask,
                    const std::uint64_t* fault_masks, std::size_t count,
                    LaneSetup* out);
void batch_setup_w16(const std::uint64_t* rows, int n, std::uint64_t proc_mask,
                     std::uint64_t input_mask, std::uint64_t output_mask,
                     const std::uint64_t* fault_masks, std::size_t count,
                     LaneSetup* out);

// Per-ISA compiled instantiations, or nullptr when the build could not
// compile them (wrong target architecture or a compiler without the
// flag). Returning nullptr is how a compile-time-absent kernel reports
// itself; runnability on the current CPU is a separate, runtime question
// (batch_kernel_registry below).
BatchSetupFn batch_setup_avx2();    // -mavx2, width 8
BatchSetupFn batch_setup_avx512();  // -mavx512f, width 16
BatchSetupFn batch_setup_neon();    // aarch64 NEON intrinsics, width 8

// Instruction-set family a kernel was compiled for. Portable kernels run
// anywhere; the others additionally need CPU support at runtime.
enum class KernelIsa : std::uint8_t { kPortable, kAvx2, kAvx512, kNeon };

const char* isa_name(KernelIsa isa);

// A selected kernel plus its effective width, a display name, and its
// ISA family — the name/width/isa triple is what stats, telemetry and
// bench records surface so runs always record which kernel actually ran.
struct BatchKernel {
  BatchSetupFn fn = nullptr;
  int width = 1;
  const char* name = "scalar";
  KernelIsa isa = KernelIsa::kPortable;
};

// One registry row per kernel the dispatcher knows about, including ones
// this build could not compile (fn == nullptr, compiled == false) — the
// dispatch test sweeps the full table. `runnable` is the runtime answer:
// compiled into this binary AND executable on this CPU.
struct BatchKernelEntry {
  BatchKernel kernel;
  bool compiled = false;
  bool runnable = false;
};

// Every kernel slot, portable widths first, then ISA kernels in
// auto-selection preference order (avx512, avx2, neon).
const std::vector<BatchKernelEntry>& batch_kernel_registry();

// Runtime dispatch. `lanes` forces a portable width (1, 2, 4, 8, 16 —
// the differential fuzz sweeps these); 0 = auto, which picks the widest
// runnable ISA kernel (AVX-512, then AVX2, then NEON) and the portable
// width-4 kernel otherwise. Invalid widths fall back to auto; the
// returned BatchKernel records what was actually selected, and callers
// (solver -> CheckResult -> stats/telemetry) surface it.
BatchKernel select_batch_kernel(int lanes);

// Forced selection by registry name ("w8", "avx512", ...). Returns the
// kernel only when it is runnable here; nullopt otherwise (unknown name,
// not compiled, or CPU lacks the ISA). Test/bench hook.
std::optional<BatchKernel> select_batch_kernel_by_name(std::string_view name);

}  // namespace kgdp::verify::detail
