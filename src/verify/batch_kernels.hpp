// Lane-parallel batch setup for the mask fast path. Solving a batch of B
// fault sets splits into (a) a data-parallel phase — per lane, derive the
// healthy-processor set and the legal start/end endpoint masks from the
// BitAdjacency rows — and (b) the per-lane Hamiltonian search. Phase (a)
// is pure word arithmetic over identical control flow, so it runs W fault
// masks per pass with the lane loop unrolled W-wide: the portable kernels
// below auto-vectorize, and a separate -mavx2 translation unit provides
// an AVX2-compiled instantiation selected at runtime. All kernels compute
// bit-identical LaneSetup values — width and ISA choice can never change
// a verdict — so tests force each width and diff the streams.
#pragma once

#include <cstddef>
#include <cstdint>

namespace kgdp::verify::detail {

// Per-lane solve inputs derived from one fault mask (original id space):
// healthy processors, healthy input/output terminals, and the endpoint
// sets (healthy processors adjacent to a healthy input resp. output).
struct LaneSetup {
  std::uint64_t keep = 0;
  std::uint64_t in_ok = 0;
  std::uint64_t out_ok = 0;
  std::uint64_t starts = 0;
  std::uint64_t ends = 0;
};

// Fills out[0..count) from fault_masks[0..count) against the rows of an
// n-node (n <= 64) graph with the given role masks. Tail lanes (count
// not a multiple of the kernel width) are handled internally.
using BatchSetupFn = void (*)(const std::uint64_t* rows, int n,
                              std::uint64_t proc_mask,
                              std::uint64_t input_mask,
                              std::uint64_t output_mask,
                              const std::uint64_t* fault_masks,
                              std::size_t count, LaneSetup* out);

// Portable kernels, one per lane width.
void batch_setup_w1(const std::uint64_t* rows, int n, std::uint64_t proc_mask,
                    std::uint64_t input_mask, std::uint64_t output_mask,
                    const std::uint64_t* fault_masks, std::size_t count,
                    LaneSetup* out);
void batch_setup_w2(const std::uint64_t* rows, int n, std::uint64_t proc_mask,
                    std::uint64_t input_mask, std::uint64_t output_mask,
                    const std::uint64_t* fault_masks, std::size_t count,
                    LaneSetup* out);
void batch_setup_w4(const std::uint64_t* rows, int n, std::uint64_t proc_mask,
                    std::uint64_t input_mask, std::uint64_t output_mask,
                    const std::uint64_t* fault_masks, std::size_t count,
                    LaneSetup* out);
void batch_setup_w8(const std::uint64_t* rows, int n, std::uint64_t proc_mask,
                    std::uint64_t input_mask, std::uint64_t output_mask,
                    const std::uint64_t* fault_masks, std::size_t count,
                    LaneSetup* out);

// The AVX2-compiled width-8 instantiation, or nullptr when the build
// could not compile it (non-x86 target or a compiler without -mavx2).
BatchSetupFn batch_setup_avx2();

// A selected kernel plus its effective width and a display name.
struct BatchKernel {
  BatchSetupFn fn = nullptr;
  int width = 1;
  const char* name = "scalar";
};

// Runtime dispatch. `lanes` forces a portable width (1, 2, 4, 8 — the
// differential fuzz sweeps these); 0 = auto, which picks the AVX2 kernel
// when both the build and the CPU support it and the portable width-4
// kernel otherwise. Invalid widths fall back to auto.
BatchKernel select_batch_kernel(int lanes);

}  // namespace kgdp::verify::detail
