#include "verify/batch_kernels.hpp"

#include "verify/batch_kernels_impl.hpp"

namespace kgdp::verify::detail {

void batch_setup_w1(const std::uint64_t* rows, int n, std::uint64_t proc_mask,
                    std::uint64_t input_mask, std::uint64_t output_mask,
                    const std::uint64_t* fault_masks, std::size_t count,
                    LaneSetup* out) {
  run_batch_setup<1>(rows, n, proc_mask, input_mask, output_mask, fault_masks,
                     count, out);
}

void batch_setup_w2(const std::uint64_t* rows, int n, std::uint64_t proc_mask,
                    std::uint64_t input_mask, std::uint64_t output_mask,
                    const std::uint64_t* fault_masks, std::size_t count,
                    LaneSetup* out) {
  run_batch_setup<2>(rows, n, proc_mask, input_mask, output_mask, fault_masks,
                     count, out);
}

void batch_setup_w4(const std::uint64_t* rows, int n, std::uint64_t proc_mask,
                    std::uint64_t input_mask, std::uint64_t output_mask,
                    const std::uint64_t* fault_masks, std::size_t count,
                    LaneSetup* out) {
  run_batch_setup<4>(rows, n, proc_mask, input_mask, output_mask, fault_masks,
                     count, out);
}

void batch_setup_w8(const std::uint64_t* rows, int n, std::uint64_t proc_mask,
                    std::uint64_t input_mask, std::uint64_t output_mask,
                    const std::uint64_t* fault_masks, std::size_t count,
                    LaneSetup* out) {
  run_batch_setup<8>(rows, n, proc_mask, input_mask, output_mask, fault_masks,
                     count, out);
}

void batch_setup_w16(const std::uint64_t* rows, int n, std::uint64_t proc_mask,
                     std::uint64_t input_mask, std::uint64_t output_mask,
                     const std::uint64_t* fault_masks, std::size_t count,
                     LaneSetup* out) {
  run_batch_setup<16>(rows, n, proc_mask, input_mask, output_mask, fault_masks,
                      count, out);
}

namespace {

bool cpu_has_avx2() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512f() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

bool cpu_has_neon() {
  // NEON is architecturally mandatory on aarch64; the kernel TU compiles
  // to a stub everywhere else, so compiled implies runnable.
#if defined(__aarch64__)
  return true;
#else
  return false;
#endif
}

BatchKernelEntry make_entry(BatchSetupFn fn, int width, const char* name,
                            KernelIsa isa, bool cpu_ok) {
  BatchKernelEntry e;
  e.kernel = {fn, width, name, isa};
  e.compiled = fn != nullptr;
  e.runnable = e.compiled && cpu_ok;
  return e;
}

}  // namespace

const char* isa_name(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kPortable: return "portable";
    case KernelIsa::kAvx2: return "avx2";
    case KernelIsa::kAvx512: return "avx512";
    case KernelIsa::kNeon: return "neon";
  }
  return "unknown";
}

const std::vector<BatchKernelEntry>& batch_kernel_registry() {
  static const std::vector<BatchKernelEntry> registry = [] {
    std::vector<BatchKernelEntry> r;
    r.push_back(make_entry(&batch_setup_w1, 1, "scalar",
                           KernelIsa::kPortable, true));
    r.push_back(
        make_entry(&batch_setup_w2, 2, "w2", KernelIsa::kPortable, true));
    r.push_back(
        make_entry(&batch_setup_w4, 4, "w4", KernelIsa::kPortable, true));
    r.push_back(
        make_entry(&batch_setup_w8, 8, "w8", KernelIsa::kPortable, true));
    r.push_back(
        make_entry(&batch_setup_w16, 16, "w16", KernelIsa::kPortable, true));
    // ISA kernels in auto-selection preference order. Entries with a
    // nullptr fn record that this build could not compile the kernel
    // (wrong target or missing compiler flag) — kept in the table so
    // dispatch tests can assert the compile-absent contract.
    r.push_back(make_entry(batch_setup_avx512(), 16, "avx512",
                           KernelIsa::kAvx512, cpu_has_avx512f()));
    r.push_back(make_entry(batch_setup_avx2(), 8, "avx2", KernelIsa::kAvx2,
                           cpu_has_avx2()));
    r.push_back(make_entry(batch_setup_neon(), 8, "neon", KernelIsa::kNeon,
                           cpu_has_neon()));
    return r;
  }();
  return registry;
}

BatchKernel select_batch_kernel(int lanes) {
  switch (lanes) {
    case 1: return {&batch_setup_w1, 1, "scalar", KernelIsa::kPortable};
    case 2: return {&batch_setup_w2, 2, "w2", KernelIsa::kPortable};
    case 4: return {&batch_setup_w4, 4, "w4", KernelIsa::kPortable};
    case 8: return {&batch_setup_w8, 8, "w8", KernelIsa::kPortable};
    case 16: return {&batch_setup_w16, 16, "w16", KernelIsa::kPortable};
    default: break;  // 0 or invalid: auto
  }
  // Auto: widest runnable ISA kernel first (avx512 > avx2 > neon), then
  // the portable width-4 kernel — the best autovectorization target on
  // ISA-less hosts. The registry is already in preference order.
  for (const BatchKernelEntry& e : batch_kernel_registry()) {
    if (e.kernel.isa != KernelIsa::kPortable && e.runnable) return e.kernel;
  }
  return {&batch_setup_w4, 4, "w4", KernelIsa::kPortable};
}

std::optional<BatchKernel> select_batch_kernel_by_name(std::string_view name) {
  for (const BatchKernelEntry& e : batch_kernel_registry()) {
    if (name == e.kernel.name) {
      if (!e.runnable) return std::nullopt;
      return e.kernel;
    }
  }
  return std::nullopt;
}

}  // namespace kgdp::verify::detail
