#include "verify/batch_kernels.hpp"

#include "verify/batch_kernels_impl.hpp"

namespace kgdp::verify::detail {

void batch_setup_w1(const std::uint64_t* rows, int n, std::uint64_t proc_mask,
                    std::uint64_t input_mask, std::uint64_t output_mask,
                    const std::uint64_t* fault_masks, std::size_t count,
                    LaneSetup* out) {
  run_batch_setup<1>(rows, n, proc_mask, input_mask, output_mask, fault_masks,
                     count, out);
}

void batch_setup_w2(const std::uint64_t* rows, int n, std::uint64_t proc_mask,
                    std::uint64_t input_mask, std::uint64_t output_mask,
                    const std::uint64_t* fault_masks, std::size_t count,
                    LaneSetup* out) {
  run_batch_setup<2>(rows, n, proc_mask, input_mask, output_mask, fault_masks,
                     count, out);
}

void batch_setup_w4(const std::uint64_t* rows, int n, std::uint64_t proc_mask,
                    std::uint64_t input_mask, std::uint64_t output_mask,
                    const std::uint64_t* fault_masks, std::size_t count,
                    LaneSetup* out) {
  run_batch_setup<4>(rows, n, proc_mask, input_mask, output_mask, fault_masks,
                     count, out);
}

void batch_setup_w8(const std::uint64_t* rows, int n, std::uint64_t proc_mask,
                    std::uint64_t input_mask, std::uint64_t output_mask,
                    const std::uint64_t* fault_masks, std::size_t count,
                    LaneSetup* out) {
  run_batch_setup<8>(rows, n, proc_mask, input_mask, output_mask, fault_masks,
                     count, out);
}

namespace {

bool cpu_has_avx2() {
#if (defined(__x86_64__) || defined(__i386__)) && defined(__GNUC__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

}  // namespace

BatchKernel select_batch_kernel(int lanes) {
  switch (lanes) {
    case 1: return {&batch_setup_w1, 1, "scalar"};
    case 2: return {&batch_setup_w2, 2, "w2"};
    case 4: return {&batch_setup_w4, 4, "w4"};
    case 8: return {&batch_setup_w8, 8, "w8"};
    default: break;  // 0 or invalid: auto
  }
  if (const BatchSetupFn avx2 = batch_setup_avx2();
      avx2 != nullptr && cpu_has_avx2()) {
    return {avx2, 8, "avx2"};
  }
  return {&batch_setup_w4, 4, "w4"};
}

}  // namespace kgdp::verify::detail
