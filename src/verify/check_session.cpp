#include "verify/check_session.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "fault/fault_model.hpp"
#include "graph/automorphism.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"
#include "verify/verdict_cache.hpp"

namespace kgdp::verify {

namespace {

constexpr std::uint64_t kNoFailure = ~std::uint64_t{0};

class Fnv64 {
 public:
  void mix(std::uint64_t v) {
    for (int b = 0; b < 8; ++b) {
      h_ ^= (v >> (8 * b)) & 0xff;
      h_ *= 0x100000001b3ULL;
    }
  }
  std::uint64_t value() const { return h_; }

 private:
  std::uint64_t h_ = 0xcbf29ce484222325ULL;
};

// Everything a cursor must be bound to: the graph (roles + edges decide
// both the verdict and the automorphism group), the request semantics,
// and the orbit layout actually in effect.
std::uint64_t session_fingerprint(const kgd::SolutionGraph& sg,
                                  const CheckRequest& req,
                                  const fault::OrbitEnumerator* orbits) {
  Fnv64 h;
  h.mix(static_cast<std::uint64_t>(sg.num_nodes()));
  h.mix(static_cast<std::uint64_t>(sg.n()));
  h.mix(static_cast<std::uint64_t>(sg.k()));
  for (int v = 0; v < sg.num_nodes(); ++v) {
    h.mix(static_cast<std::uint64_t>(sg.role(v)));
  }
  for (auto [u, v] : sg.graph().edges()) {
    h.mix((static_cast<std::uint64_t>(u) << 32) |
          static_cast<std::uint32_t>(v));
  }
  h.mix(req.mode == CheckMode::kExhaustive ? 0 : 1);
  h.mix(static_cast<std::uint64_t>(req.max_faults));
  h.mix(req.samples);
  h.mix(req.seed);
  if (req.has_slots) {
    // Lease-bounded range: bind the cursor to where the slice starts but
    // NOT where it ends — a steal truncates slot_end mid-flight and a
    // reassigned worker must still accept the victim's streamed cursor.
    // (slot_end is re-validated structurally: restore() rejects any
    // position outside the live [begin_, end_).)
    h.mix(0x9e3779b97f4a7c15ULL);
    h.mix(req.slot_begin);
  } else {
    h.mix((static_cast<std::uint64_t>(req.shard_index) << 32) |
          req.shard_count);
  }
  if (orbits != nullptr) h.mix(orbits->fingerprint());
  return h.value();
}

SolverOptions solver_options(const CheckOptions& opts) {
  SolverOptions s;
  s.ham.dfs_budget = opts.dfs_budget;
  // The sweep only consumes the verdict; skipping Pipeline
  // materialisation keeps the steady-state solve path allocation-free
  // (and routes solves through the walk-first verdict core).
  s.want_pipeline = false;
  s.batch_lanes = opts.lanes;
  return s;
}

void expect_keyword(std::istream& in, const char* keyword) {
  std::string word;
  if (!(in >> word) || word != keyword) {
    throw std::runtime_error(std::string("check cursor: expected '") +
                             keyword + "', got '" + word + "'");
  }
}

std::uint64_t read_u64(std::istream& in, const char* keyword) {
  expect_keyword(in, keyword);
  std::uint64_t v = 0;
  if (!(in >> v)) {
    throw std::runtime_error(std::string("check cursor: bad value for ") +
                             keyword);
  }
  return v;
}

}  // namespace

// Declared in the header: two sessions (or a session and a route atlas)
// over the same graph share cache/atlas entries regardless of mode,
// max_faults, or sharding, because the verdict for a fault set — and
// the canonical route — is a function of the graph alone.
std::uint64_t graph_fingerprint(const kgd::SolutionGraph& sg) {
  Fnv64 h;
  h.mix(static_cast<std::uint64_t>(sg.num_nodes()));
  h.mix(static_cast<std::uint64_t>(sg.n()));
  h.mix(static_cast<std::uint64_t>(sg.k()));
  for (int v = 0; v < sg.num_nodes(); ++v) {
    h.mix(static_cast<std::uint64_t>(sg.role(v)));
  }
  for (auto [u, v] : sg.graph().edges()) {
    h.mix((static_cast<std::uint64_t>(u) << 32) |
          static_cast<std::uint32_t>(v));
  }
  return h.value();
}

// Per-worker context: one solver plus one delta sweep reused across every
// representative the worker claims (scratch allocations amortise), and a
// wall-clock solve accumulator. Heap-allocated per worker so no two share
// a cache line. The sweep tracks the worker's last solved slot; when the
// next claimed slot is its immediate successor the solver is patched with
// the enumeration delta instead of rebuilding the fault view (exhaustive
// mode only — sampled mode draws fault sets, so `sweep` stays empty).
struct CheckSession::Worker {
  // Where a gathered slot's verdict comes from / goes to.
  enum Route : std::uint8_t {
    kSolveOnly,      // solve; no cache (off, or canonicalization bypassed)
    kSolveAndStore,  // cache miss: solve, then insert under `keys`
    kFromCache,      // cache hit: `statuses` already holds the verdict
  };

  // Chunk-local counter accumulator, cache-line padded and private to
  // this worker (the shared-atomic version of these counters was the
  // measured false-sharing hot spot of the multi-core sweep). Reset at
  // the top of each chunk, folded into the session counters
  // single-threaded after the parallel region, so a cursor saved
  // between chunks captures a consistent state. `best` stays a shared
  // atomic: workers read it per slot for the cheap skip, so it must be
  // globally fresh.
  struct alignas(64) Counters {
    std::uint64_t covered = 0;
    std::uint64_t solved = 0;
    std::uint64_t unknowns = 0;
    std::uint64_t c_hits = 0;
    std::uint64_t c_misses = 0;
    std::uint64_t c_inserts = 0;
    std::uint64_t c_evictions = 0;
  };

  PipelineSolver solver;
  Counters counters;
  std::optional<fault::OrbitEnumerator::Sweep> sweep;
  double solve_seconds = 0.0;
  // Batched-sweep gather buffers: parallel arrays over the slots of one
  // block, plus the compacted mask/status arrays handed to solve_batch.
  // Reserved to the batch size once, so the steady state stays
  // allocation-free.
  std::vector<std::uint64_t> slots, masks, keys, hashes, solve_masks;
  std::vector<SolveStatus> statuses, solve_statuses;
  std::vector<std::uint8_t> routes;
  fault::FaultCanonicalizer::Scratch canon_scratch;

  Worker(const SolverOptions& o, std::uint32_t batch) : solver(o) {
    slots.reserve(batch);
    masks.reserve(batch);
    keys.reserve(batch);
    hashes.reserve(batch);
    solve_masks.reserve(batch);
    statuses.reserve(batch);
    solve_statuses.reserve(batch);
    routes.reserve(batch);
  }
};

std::pair<std::uint64_t, std::uint64_t> CheckSession::shard_range(
    std::uint64_t total, std::uint32_t index, std::uint32_t count) {
  // i-th of `count` contiguous slices, sizes differing by at most one:
  // [i*total/count, (i+1)*total/count). Their union tiles [0, total).
  const std::uint64_t lo = total / count * index +
                           std::min<std::uint64_t>(index, total % count);
  const std::uint64_t size = total / count + (index < total % count ? 1 : 0);
  return {lo, lo + size};
}

CheckSession::CheckSession(const kgd::SolutionGraph& sg,
                           const CheckRequest& req)
    : sg_(sg), req_(req), best_(kNoFailure) {
  if (req_.shard_count < 1 || req_.shard_index >= req_.shard_count) {
    throw std::invalid_argument("CheckSession: bad shard spec");
  }
  const unsigned num_workers =
      req_.options.pool ? req_.options.pool->thread_count() : 1;
  // Verdict-cache keys need the automorphism group (orbit-canonical
  // masks) and a graph-scoped fingerprint; both only on the mask fast
  // path, where fault sets are single words.
  const bool want_cache =
      req_.options.cache != nullptr && sg_.num_nodes() <= 64;
  const std::uint32_t batch = std::max<std::uint32_t>(1, req_.options.batch);
  if (req_.mode == CheckMode::kExhaustive) {
    if (req_.options.prune == PruneMode::kAuto || want_cache) {
      cache_autos_ = graph::solution_automorphisms(sg_);
    }
    static const graph::AutomorphismList kNoAutos{};
    const graph::AutomorphismList& orbit_autos =
        req_.options.prune == PruneMode::kAuto ? cache_autos_ : kNoAutos;
    orbits_ = std::make_unique<fault::OrbitEnumerator>(
        sg_.num_nodes(), req_.max_faults, orbit_autos);
    automorphism_order_ = orbits_->pruned() ? cache_autos_.order : 1;
    if (req_.has_slots) {
      if (req_.shard_index != 0 || req_.shard_count != 1) {
        throw std::invalid_argument(
            "CheckSession: a lease slot range excludes a shard spec");
      }
      if (req_.slot_begin > req_.slot_end ||
          req_.slot_end > orbits_->num_orbits()) {
        throw std::invalid_argument(
            "CheckSession: lease slot range outside the enumeration");
      }
      begin_ = req_.slot_begin;
      end_ = req_.slot_end;
    } else {
      std::tie(begin_, end_) = shard_range(orbits_->num_orbits(),
                                           req_.shard_index, req_.shard_count);
    }
    next_ = begin_;
    for (std::uint64_t i = begin_; i < end_; ++i) {
      pruned_in_shard_ += orbits_->orbit_size(i) - 1;
    }
    workers_.reserve(num_workers);
    for (unsigned w = 0; w < num_workers; ++w) {
      workers_.push_back(
          std::make_unique<Worker>(solver_options(req_.options), batch));
      workers_.back()->sweep.emplace(*orbits_);
    }
    done_ = next_ == end_;
  } else {
    if (req_.shard_count != 1) {
      throw std::invalid_argument(
          "CheckSession: sampled mode cannot be sharded (the sample "
          "stream is sequential); use shard_count == 1");
    }
    if (req_.has_slots) {
      throw std::invalid_argument(
          "CheckSession: sampled mode has no orbit slots to lease");
    }
    adversarial_ = fault::adversarial_suite(sg_, req_.max_faults);
    rng_ = util::Rng(req_.seed);
    if (want_cache) cache_autos_ = graph::solution_automorphisms(sg_);
    workers_.push_back(
        std::make_unique<Worker>(solver_options(req_.options), batch));
    done_ = items_total() == 0;
  }
  if (want_cache) {
    canon_.emplace(&cache_autos_);
    graph_fp_ = graph_fingerprint(sg_);
  }
  fingerprint_ = session_fingerprint(sg_, req_, orbits_.get());
}

CheckSession::~CheckSession() = default;

std::uint64_t CheckSession::items_total() const {
  return req_.mode == CheckMode::kExhaustive
             ? end_ - begin_
             : adversarial_.size() + req_.samples;
}

std::uint64_t CheckSession::items_done() const {
  return req_.mode == CheckMode::kExhaustive ? next_ - begin_ : next_item_;
}

bool CheckSession::advance(std::uint64_t max_items) {
  if (done_ || max_items == 0) return done_;
  if (req_.mode == CheckMode::kExhaustive) {
    advance_exhaustive(max_items);
  } else {
    advance_sampled(max_items);
  }
  return done_;
}

void CheckSession::run() {
  while (!advance(~std::uint64_t{0})) {
  }
}

bool CheckSession::truncate(std::uint64_t new_end) {
  if (!req_.has_slots || req_.mode != CheckMode::kExhaustive) return false;
  if (new_end < next_ || new_end > end_) return false;
  if (new_end == end_) return true;  // no-op steal of nothing
  // The surrendered tail [new_end, end_) was never swept, so only its
  // pruned-weight contribution has to leave the accounting; every other
  // counter reflects work already done in the surviving range.
  for (std::uint64_t i = new_end; i < end_; ++i) {
    pruned_in_shard_ -= orbits_->orbit_size(i) - 1;
  }
  end_ = new_end;
  done_ = next_ == end_;
  return true;
}

void CheckSession::advance_exhaustive(std::uint64_t max_items) {
  const std::uint64_t chunk =
      std::min<std::uint64_t>(max_items, end_ - next_);
  const std::uint64_t chunk_begin = next_;

  // Each worker accumulates into its own padded Worker::Counters block
  // (no shared write traffic inside the parallel region, no per-chunk
  // allocation); reset here, folded below once the chunk completes.
  std::atomic<std::uint64_t> best{best_};
  for (auto& w : workers_) w->counters = {};

  auto run_item = [&](std::uint64_t offset, unsigned worker) {
    const std::uint64_t slot = chunk_begin + offset;
    const std::uint64_t index = orbits_->rep_index(slot);
    // A lower-index failure is already recorded; this representative can
    // no longer affect the verdict (cheap skip that preserves the
    // lowest-index guarantee).
    if (index > best.load(std::memory_order_acquire)) return;
    Worker& ctx = *workers_[worker];
    const util::Timer timer;
    fault::OrbitEnumerator::Sweep& sweep = *ctx.sweep;
    SolveOutcome out;
    if (sweep.positioned() && sweep.slot() + 1 == slot) {
      // Contiguous successor: step the sweep and patch the solver with
      // the fault-set delta. Discontinuities (chunk boundaries, stolen
      // ranges, cheap-skipped slots, resume) fall through to a full
      // rebuild, which is what keeps verdicts independent of scheduling.
      sweep.advance();
      out = ctx.solver.patch(sg_, sweep.removed(), sweep.added());
    } else {
      sweep.seek(slot);
      out = ctx.solver.solve_faults(sg_, sweep.nodes());
    }
    ctx.solve_seconds += timer.seconds();
    ctx.counters.covered += orbits_->orbit_size(slot);
    ++ctx.counters.solved;
    const bool failed =
        out.status == SolveStatus::kNone || out.status == SolveStatus::kUnknown;
    if (out.status == SolveStatus::kUnknown) ++ctx.counters.unknowns;
    if (failed) {  // unknowns are conservatively treated as failures
      std::uint64_t cur = best.load(std::memory_order_relaxed);
      while (index < cur && !best.compare_exchange_weak(
                                cur, index, std::memory_order_acq_rel)) {
      }
    }
  };

  // Batched sweep: gather a block of contiguous colex slots (the sweep
  // shim emits one fault mask per step), consult the verdict cache where
  // attached, hand the rest to the solver in one lane-parallel pass, and
  // fold counters in slot order. Counting truncates at the first failure
  // exactly where the per-item path's cheap skip stops, so covered /
  // solved / unknowns and the counterexample index are bit-identical to
  // batch == 1; only the solver's own work counters may run up to a
  // block past a counterexample (same class of overshoot as stealing).
  const std::uint32_t batch = std::max<std::uint32_t>(1, req_.options.batch);
  const bool batched = batch > 1 && sg_.num_nodes() <= 64;
  VerdictCache* cache = canon_.has_value() ? req_.options.cache : nullptr;

  auto run_block = [&](std::uint64_t block, unsigned worker) {
    Worker& ctx = *workers_[worker];
    const std::uint64_t lo = chunk_begin + block * batch;
    const std::uint64_t hi = std::min(chunk_begin + chunk, lo + batch);
    fault::OrbitEnumerator::Sweep& sweep = *ctx.sweep;
    const util::Timer timer;
    ctx.slots.clear();
    ctx.masks.clear();
    ctx.keys.clear();
    ctx.routes.clear();
    ctx.statuses.clear();
    // Gather: step the sweep over the block's slots, canonicalizing each
    // mask when a cache is attached. Routes are provisional here —
    // kSolveAndStore means "cacheable", and the probe phase below
    // rewrites hits to kFromCache.
    for (std::uint64_t slot = lo; slot < hi; ++slot) {
      if (orbits_->rep_index(slot) > best.load(std::memory_order_acquire)) {
        continue;  // cheap skip, as in run_item
      }
      if (sweep.positioned() && sweep.slot() + 1 == slot) {
        sweep.advance();
      } else {
        sweep.seek(slot);
      }
      const std::uint64_t mask = sweep.mask64();
      std::uint8_t route = Worker::kSolveOnly;
      std::uint64_t key = 0;
      if (cache != nullptr &&
          canon_->canonical_mask(mask, ctx.canon_scratch, &key)) {
        route = Worker::kSolveAndStore;
      }
      ctx.slots.push_back(slot);
      ctx.masks.push_back(mask);
      ctx.keys.push_back(key);
      ctx.routes.push_back(route);
      ctx.statuses.push_back(SolveStatus::kUnknown);
    }
    // Probe: hash every gathered key in one lane-parallel pass, then walk
    // the precomputed hashes through the cache. This keeps the double
    // mix64 out of the per-set probe loop — it was the scalar tail the
    // batched sweep still paid per fault set.
    if (cache != nullptr && !ctx.keys.empty()) {
      ctx.hashes.resize(ctx.keys.size());
      VerdictCache::hash_keys(graph_fp_, ctx.keys, ctx.hashes);
      for (std::size_t i = 0; i < ctx.keys.size(); ++i) {
        if (ctx.routes[i] == Worker::kSolveOnly) continue;
        if (const auto hit = cache->lookup_hashed(graph_fp_, ctx.keys[i],
                                                  ctx.hashes[i])) {
          ctx.routes[i] = Worker::kFromCache;
          ctx.statuses[i] = *hit;
          ++ctx.counters.c_hits;
        } else {
          ++ctx.counters.c_misses;
        }
      }
    }
    ctx.solve_masks.clear();
    for (std::size_t i = 0; i < ctx.slots.size(); ++i) {
      if (ctx.routes[i] != Worker::kFromCache) {
        ctx.solve_masks.push_back(ctx.masks[i]);
      }
    }
    if (!ctx.solve_masks.empty()) {
      ctx.solve_statuses.resize(ctx.solve_masks.size());
      ctx.solver.solve_batch(sg_, ctx.solve_masks, ctx.solve_statuses);
    }
    ctx.solve_seconds += timer.seconds();
    std::size_t sidx = 0;
    for (std::size_t i = 0; i < ctx.slots.size(); ++i) {
      const std::uint64_t slot = ctx.slots[i];
      const bool from_cache = ctx.routes[i] == Worker::kFromCache;
      SolveStatus status;
      if (from_cache) {
        status = ctx.statuses[i];
      } else {
        status = ctx.solve_statuses[sidx++];
        if (ctx.routes[i] == Worker::kSolveAndStore &&
            status != SolveStatus::kUnknown) {
          ++ctx.counters.c_inserts;
          if (cache->insert_hashed(graph_fp_, ctx.keys[i], ctx.hashes[i],
                                   status)) {
            ++ctx.counters.c_evictions;
          }
        }
      }
      ctx.counters.covered += orbits_->orbit_size(slot);
      if (!from_cache) ++ctx.counters.solved;
      if (status == SolveStatus::kFound) continue;
      if (status == SolveStatus::kUnknown) ++ctx.counters.unknowns;
      const std::uint64_t index = orbits_->rep_index(slot);
      std::uint64_t cur = best.load(std::memory_order_relaxed);
      while (index < cur && !best.compare_exchange_weak(
                                cur, index, std::memory_order_acq_rel)) {
      }
      break;  // later block slots would all cheap-skip; stop counting
    }
  };

  if (batched) {
    // The work-stealing grid is over whole blocks, so a steal can only
    // transfer ownership at a batch boundary: no stolen range ever splits
    // a kernel pass mid-batch, and each block's gather buffers live in
    // exactly one worker. (Audited for the multi-core sweep — alignment
    // holds by construction, no padding needed.)
    const std::uint64_t num_blocks = (chunk + batch - 1) / batch;
    if (req_.options.pool && num_blocks > 1) {
      const util::StealStats stats =
          util::parallel_for_stealing(*req_.options.pool, num_blocks,
                                      run_block);
      steal_count_ += stats.steals;
    } else {
      for (std::uint64_t b = 0; b < num_blocks; ++b) run_block(b, 0);
    }
  } else if (req_.options.pool && chunk > 1) {
    const util::StealStats stats =
        util::parallel_for_stealing(*req_.options.pool, chunk, run_item);
    steal_count_ += stats.steals;
  } else {
    for (std::uint64_t i = 0; i < chunk; ++i) run_item(i, 0);
  }

  for (const auto& w : workers_) {
    const Worker::Counters& c = w->counters;
    covered_ += c.covered;
    solved_ += c.solved;
    unknowns_ += c.unknowns;
    cache_hits_ += c.c_hits;
    cache_misses_ += c.c_misses;
    cache_inserts_ += c.c_inserts;
    cache_evictions_ += c.c_evictions;
  }
  best_ = best.load();
  next_ = chunk_begin + chunk;
  // Representatives are index-ascending, so once a failure is recorded
  // every remaining slot would take the cheap skip; finish immediately
  // with identical counters.
  if (best_ != kNoFailure) next_ = end_;
  done_ = next_ == end_;
}

void CheckSession::advance_sampled(std::uint64_t max_items) {
  Worker& ctx = *workers_[0];
  VerdictCache* cache = canon_.has_value() ? req_.options.cache : nullptr;
  const std::uint64_t total = items_total();
  const std::uint64_t stop =
      max_items >= total - next_item_ ? total : next_item_ + max_items;
  while (next_item_ < stop) {
    const kgd::FaultSet fs =
        next_item_ < adversarial_.size()
            ? adversarial_[next_item_]
            : fault::draw_faults(
                  sg_,
                  static_cast<int>(rng_.next_int(0, req_.max_faults)),
                  fault::FaultPolicy::kUniform, rng_);
    ++next_item_;
    ++covered_;
    const util::Timer timer;
    // Probe the verdict cache under the orbit-canonical key. A hit is
    // exact: an isomorphic fault set has the same verdict, and if that
    // verdict is negative then `fs` itself is a genuine counterexample.
    SolveStatus status;
    bool from_cache = false;
    bool have_key = false;
    std::uint64_t key = 0;
    if (cache != nullptr) {
      const std::uint64_t mask =
          fs.mask().words().empty() ? 0 : fs.mask().words()[0];
      have_key = canon_->canonical_mask(mask, ctx.canon_scratch, &key);
      if (have_key) {
        if (const auto hit = cache->lookup(graph_fp_, key)) {
          ++cache_hits_;
          status = *hit;
          from_cache = true;
        } else {
          ++cache_misses_;
        }
      }
    }
    if (!from_cache) {
      ++solved_;
      status = ctx.solver.solve(sg_, fs).status;
      if (have_key && status != SolveStatus::kUnknown) {
        ++cache_inserts_;
        if (cache->insert(graph_fp_, key, status)) ++cache_evictions_;
      }
    }
    ctx.solve_seconds += timer.seconds();
    if (status == SolveStatus::kFound) continue;
    if (status == SolveStatus::kUnknown) ++unknowns_;
    sample_failed_ = true;
    sample_counterexample_ = fs;
    done_ = true;
    return;
  }
  done_ = next_item_ == total;
}

SolverCounters CheckSession::solver_totals() const {
  SolverCounters t;
  t.patches = base_patches_;
  t.rebuilds = base_rebuilds_;
  t.search_nodes = base_search_nodes_;
  t.walk_hits = base_walk_hits_;
  t.walk_fallbacks = base_walk_fallbacks_;
  for (const auto& w : workers_) {
    const SolverCounters c = w->solver.counters();
    t.solves += c.solves;
    t.patches += c.patches;
    t.rebuilds += c.rebuilds;
    t.search_nodes += c.search_nodes;
    t.walk_hits += c.walk_hits;
    t.walk_fallbacks += c.walk_fallbacks;
    t.scratch_bytes += c.scratch_bytes;
  }
  return t;
}

CheckResult CheckSession::result() const {
  CheckResult res;
  res.fault_sets_checked = covered_;
  res.fault_sets_solved = solved_;
  res.solver_unknowns = unknowns_;
  const SolverCounters sc = solver_totals();
  res.solver_patches = sc.patches;
  res.solver_rebuilds = sc.rebuilds;
  res.solver_search_nodes = sc.search_nodes;
  res.solver_scratch_bytes = sc.scratch_bytes;
  res.solver_walk_hits = sc.walk_hits;
  res.solver_walk_fallbacks = sc.walk_fallbacks;
  res.cache_hits = cache_hits_;
  res.cache_misses = cache_misses_;
  res.cache_inserts = cache_inserts_;
  res.cache_evictions = cache_evictions_;
  if (!workers_.empty()) {
    const detail::BatchKernel& k = workers_.front()->solver.kernel();
    res.solver_kernel_name = k.name;
    res.solver_kernel_width = k.width;
    res.solver_kernel_isa = detail::isa_name(k.isa);
  }
  if (req_.mode == CheckMode::kExhaustive) {
    res.orbits_pruned = pruned_in_shard_;
    res.automorphism_order = automorphism_order_;
    res.steal_count = steal_count_;
    res.worker_solve_seconds.reserve(workers_.size());
    for (const auto& w : workers_) {
      res.worker_solve_seconds.push_back(w->solve_seconds);
    }
    res.holds = done_ && best_ == kNoFailure;
    if (best_ != kNoFailure) {
      res.counterexample = orbits_->base().at(best_);
      res.counterexample_index = best_;
    }
    // Either the slice covered every fault set or it produced a concrete
    // counterexample; both are exact verdicts.
    res.exhaustive = res.holds || res.counterexample.has_value();
  } else {
    res.holds = done_ && !sample_failed_;
    res.exhaustive = false;
    if (sample_counterexample_) res.counterexample = sample_counterexample_;
  }
  return res;
}

void CheckSession::save(std::ostream& out) const {
  out << "kgdp-check-cursor 3\n";
  out << "fingerprint " << fingerprint_ << '\n';
  out << "pos "
      << (req_.mode == CheckMode::kExhaustive ? next_ : next_item_) << '\n';
  out << "covered " << covered_ << '\n';
  out << "solved " << solved_ << '\n';
  out << "unknowns " << unknowns_ << '\n';
  // v2: cumulative solver engine counters, so a resumed run reports
  // totals rather than since-resume values (scratch_bytes is a live
  // gauge and is deliberately not persisted). v3 appends the walk-engine
  // split and a verdict-cache traffic line.
  const SolverCounters sc = solver_totals();
  out << "solver " << sc.patches << ' ' << sc.rebuilds << ' '
      << sc.search_nodes << ' ' << sc.walk_hits << ' ' << sc.walk_fallbacks
      << '\n';
  out << "cache " << cache_hits_ << ' ' << cache_misses_ << ' '
      << cache_inserts_ << ' ' << cache_evictions_ << '\n';
  if (req_.mode == CheckMode::kExhaustive) {
    out << "best " << best_ << '\n';
    out << "steals " << steal_count_ << '\n';
    // Wall-clock accumulators are carried across the checkpoint so a
    // resumed run reports total (not since-resume) solve time. Bit-cast
    // keeps the round-trip exact.
    out << "workers " << workers_.size();
    for (const auto& w : workers_) {
      out << ' ' << std::bit_cast<std::uint64_t>(w->solve_seconds);
    }
    out << '\n';
  } else {
    const auto s = rng_.state();
    out << "rng " << s[0] << ' ' << s[1] << ' ' << s[2] << ' ' << s[3]
        << '\n';
    out << "failed " << (sample_failed_ ? 1 : 0) << '\n';
    if (sample_counterexample_) {
      out << "ce " << sample_counterexample_->size();
      for (int v : sample_counterexample_->nodes()) out << ' ' << v;
      out << '\n';
    }
  }
  out << "done " << (done_ ? 1 : 0) << '\n';
  out << "end\n";
}

void CheckSession::restore(std::istream& in) {
  expect_keyword(in, "kgdp-check-cursor");
  int version = 0;
  if (!(in >> version) || version < 1 || version > 3) {
    throw std::runtime_error("check cursor: unsupported version");
  }
  const std::uint64_t fp = read_u64(in, "fingerprint");
  if (fp != fingerprint_) {
    throw std::runtime_error(
        "check cursor: fingerprint mismatch (cursor was saved for a "
        "different graph, request, or orbit layout)");
  }
  const std::uint64_t pos = read_u64(in, "pos");
  covered_ = read_u64(in, "covered");
  solved_ = read_u64(in, "solved");
  unknowns_ = read_u64(in, "unknowns");
  // Solver counters: restored totals become the base; live worker
  // counters restart from zero (v1 cursors predate the counters, v2
  // cursors predate the walk split and cache line).
  for (auto& w : workers_) w->solver.reset_counters();
  base_patches_ = base_rebuilds_ = base_search_nodes_ = 0;
  base_walk_hits_ = base_walk_fallbacks_ = 0;
  cache_hits_ = cache_misses_ = cache_inserts_ = cache_evictions_ = 0;
  if (version >= 2) {
    expect_keyword(in, "solver");
    if (!(in >> base_patches_ >> base_rebuilds_ >> base_search_nodes_)) {
      throw std::runtime_error("check cursor: bad solver counters");
    }
    if (version >= 3) {
      if (!(in >> base_walk_hits_ >> base_walk_fallbacks_)) {
        throw std::runtime_error("check cursor: bad walk counters");
      }
      expect_keyword(in, "cache");
      if (!(in >> cache_hits_ >> cache_misses_ >> cache_inserts_ >>
            cache_evictions_)) {
        throw std::runtime_error("check cursor: bad cache counters");
      }
    }
  }
  if (req_.mode == CheckMode::kExhaustive) {
    if (pos < begin_ || pos > end_) {
      throw std::runtime_error("check cursor: position outside shard");
    }
    next_ = pos;
    best_ = read_u64(in, "best");
    steal_count_ = read_u64(in, "steals");
    expect_keyword(in, "workers");
    std::size_t count = 0;
    if (!(in >> count)) throw std::runtime_error("check cursor: bad workers");
    // The checkpoint may have been written with a different thread count;
    // fold saved accumulators into the workers we actually have.
    for (auto& w : workers_) w->solve_seconds = 0.0;
    for (std::size_t i = 0; i < count; ++i) {
      std::uint64_t bits = 0;
      if (!(in >> bits)) {
        throw std::runtime_error("check cursor: truncated worker seconds");
      }
      workers_[i % workers_.size()]->solve_seconds +=
          std::bit_cast<double>(bits);
    }
  } else {
    if (pos > items_total()) {
      throw std::runtime_error("check cursor: position out of range");
    }
    next_item_ = pos;
    expect_keyword(in, "rng");
    std::array<std::uint64_t, 4> s{};
    for (auto& v : s) {
      if (!(in >> v)) throw std::runtime_error("check cursor: bad rng state");
    }
    rng_.set_state(s);
    sample_failed_ = read_u64(in, "failed") != 0;
    sample_counterexample_.reset();
  }
  std::string word;
  if (!(in >> word)) throw std::runtime_error("check cursor: truncated");
  if (word == "ce") {
    int count = 0;
    if (!(in >> count) || count < 0) {
      throw std::runtime_error("check cursor: bad counterexample");
    }
    std::vector<int> nodes(count);
    for (int& v : nodes) {
      if (!(in >> v)) {
        throw std::runtime_error("check cursor: truncated counterexample");
      }
    }
    sample_counterexample_ = kgd::FaultSet(sg_.num_nodes(), nodes);
    if (!(in >> word)) throw std::runtime_error("check cursor: truncated");
  }
  if (word != "done") throw std::runtime_error("check cursor: expected done");
  std::uint64_t done_flag = 0;
  if (!(in >> done_flag)) throw std::runtime_error("check cursor: bad done");
  done_ = done_flag != 0;
  expect_keyword(in, "end");
}

CheckResult merge_shard_results(const kgd::SolutionGraph& sg, int max_faults,
                                PruneMode prune,
                                const std::vector<CheckResult>& shards) {
  if (shards.empty()) {
    throw std::invalid_argument("merge_shard_results: no shards");
  }
  const graph::AutomorphismList autos =
      prune == PruneMode::kAuto ? graph::solution_automorphisms(sg)
                                : graph::AutomorphismList{};
  const fault::OrbitEnumerator orbits(sg.num_nodes(), max_faults, autos);

  CheckResult out;
  out.automorphism_order = orbits.pruned() ? autos.order : 1;

  std::uint64_t best = kNoFailure;
  for (const CheckResult& s : shards) {
    if (s.counterexample.has_value()) {
      if (!s.counterexample_index.has_value()) {
        throw std::invalid_argument(
            "merge_shard_results: shard counterexample lacks its index");
      }
      best = std::min(best, *s.counterexample_index);
    }
    out.steal_count += s.steal_count;
    out.worker_solve_seconds.insert(out.worker_solve_seconds.end(),
                                    s.worker_solve_seconds.begin(),
                                    s.worker_solve_seconds.end());
    // Solver counters are observability (schedule-dependent), so the
    // merge simply sums the work each shard actually did.
    out.solver_patches += s.solver_patches;
    out.solver_rebuilds += s.solver_rebuilds;
    out.solver_search_nodes += s.solver_search_nodes;
    out.solver_scratch_bytes += s.solver_scratch_bytes;
  }

  if (best == kNoFailure) {
    // Every slice held: counters tile the quantifier domain exactly.
    for (const CheckResult& s : shards) {
      out.fault_sets_checked += s.fault_sets_checked;
      out.fault_sets_solved += s.fault_sets_solved;
      out.solver_unknowns += s.solver_unknowns;
      out.orbits_pruned += s.orbits_pruned;
    }
    out.holds = true;
    out.exhaustive = true;
    return out;
  }

  // Some slice failed. Shards above the failing slot did work the
  // unsharded sequential sweep never reaches, so recompute the counters
  // canonically: the sweep truncated at the lowest failing representative.
  out.orbits_pruned = orbits.fault_sets_pruned();
  for (std::uint64_t slot = 0; slot < orbits.num_orbits(); ++slot) {
    out.fault_sets_checked += orbits.orbit_size(slot);
    ++out.fault_sets_solved;
    if (orbits.rep_index(slot) == best) break;
  }
  for (const CheckResult& s : shards) out.solver_unknowns += s.solver_unknowns;
  out.holds = false;
  out.exhaustive = true;
  out.counterexample = orbits.base().at(best);
  out.counterexample_index = best;
  return out;
}

CheckResult merge_lease_results(const kgd::SolutionGraph& sg, int max_faults,
                                PruneMode prune,
                                std::vector<LeaseResult> leases) {
  if (leases.empty()) {
    throw std::invalid_argument("merge_lease_results: no leases");
  }
  std::sort(leases.begin(), leases.end(),
            [](const LeaseResult& a, const LeaseResult& b) {
              return a.begin < b.begin;
            });
  // Validate the reshaped partition before trusting it: steals and
  // reassignments rewrite lease boundaries at runtime, so gaps or
  // overlaps here mean a coordinator bug, not a degenerate input.
  std::uint64_t expect = 0;
  for (const LeaseResult& l : leases) {
    if (l.begin != expect || l.end < l.begin) {
      throw std::invalid_argument(
          "merge_lease_results: lease ranges do not tile the sweep");
    }
    expect = l.end;
  }
  {
    // Cheap num_orbits recomputation (prune geometry only) to check the
    // partition covers the whole enumeration; the merge itself rebuilds
    // the same layout.
    const graph::AutomorphismList autos =
        prune == PruneMode::kAuto ? graph::solution_automorphisms(sg)
                                  : graph::AutomorphismList{};
    const fault::OrbitEnumerator orbits(sg.num_nodes(), max_faults, autos);
    if (expect != orbits.num_orbits()) {
      throw std::invalid_argument(
          "merge_lease_results: partition does not cover the enumeration");
    }
  }
  std::vector<CheckResult> parts;
  parts.reserve(leases.size());
  for (LeaseResult& l : leases) parts.push_back(std::move(l.result));
  return merge_shard_results(sg, max_faults, prune, parts);
}

}  // namespace kgdp::verify
