#include "verify/optimality.hpp"

#include <sstream>

#include "kgd/bounds.hpp"

namespace kgdp::verify {

std::string OptimalityReport::summary() const {
  std::ostringstream os;
  os << (node_optimal ? "node-optimal" : "NOT node-optimal") << ", "
     << (standard ? "standard" : "NOT standard") << ", max processor degree "
     << max_processor_degree << " (lower bound " << degree_lower_bound
     << ") => " << (degree_optimal ? "degree-optimal" : "NOT degree-optimal");
  return os.str();
}

OptimalityReport certify_optimality(const kgd::SolutionGraph& sg) {
  OptimalityReport r;
  r.node_optimal = sg.is_node_optimal();
  r.standard = sg.is_standard();
  r.max_processor_degree = sg.max_processor_degree();
  r.degree_lower_bound = kgd::max_degree_lower_bound(sg.n(), sg.k());
  r.degree_optimal = r.max_processor_degree == r.degree_lower_bound;
  return r;
}

}  // namespace kgdp::verify
