// Orbit-canonical verdict cache. Keyed by (graph fingerprint, canonical
// fault mask) — the canonical mask is the orbit-minimal image under the
// label-respecting automorphism group (fault/canonical.hpp), so every
// member of an isomorphic family of fault sets shares one entry and no
// isomorphic instance is ever re-solved. Consulted by sampled campaigns
// and by kgdd verify sessions (opt-in; exhaustive sweeps already collapse
// orbits at the enumerator).
//
// Shape: set-associative (kWays entries per set, power-of-two sets) with
// round-robin replacement within a set, so the memory footprint is fixed
// at construction and lookups are O(kWays). The full 128-bit key is
// stored per entry — a hit compares fingerprint and mask exactly, never
// probabilistically, so a collision can not corrupt a verdict. Striped
// mutexes make the cache safe for concurrent workers; counters are
// relaxed atomics. kUnknown is never stored: a budget-limited verdict is
// not a fact about the instance, and caching it could mask a later,
// better-budgeted answer.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "verify/pipeline_solver.hpp"

namespace kgdp::verify {

struct VerdictCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
};

class VerdictCache {
 public:
  static constexpr std::size_t kWays = 4;

  // `capacity` is the target entry count; rounded up to a power-of-two
  // number of sets times kWays (minimum one set). All memory is
  // allocated here; lookup/insert never allocate.
  explicit VerdictCache(std::size_t capacity);

  VerdictCache(const VerdictCache&) = delete;
  VerdictCache& operator=(const VerdictCache&) = delete;

  // Exact-match probe; counts a hit or a miss.
  std::optional<SolveStatus> lookup(std::uint64_t graph_fp,
                                    std::uint64_t canon_mask);

  // Batched key hashing for the lane-parallel sweep: mixes the set hash
  // for canon_masks[0..count) under one graph fingerprint in a single
  // branchless pass (the double splitmix mix64 autovectorizes), so the
  // probe loop stops paying the per-set scalar hash tail. hashes[i] is
  // the full mixed hash; pass it to lookup_hashed/insert_hashed with the
  // same (graph_fp, canon_mask) pair.
  static void hash_keys(std::uint64_t graph_fp,
                        std::span<const std::uint64_t> canon_masks,
                        std::span<std::uint64_t> hashes);

  // lookup/insert taking the precomputed hash from hash_keys. The key
  // comparison is still exact — the hash only selects the set.
  std::optional<SolveStatus> lookup_hashed(std::uint64_t graph_fp,
                                           std::uint64_t canon_mask,
                                           std::uint64_t hash);
  bool insert_hashed(std::uint64_t graph_fp, std::uint64_t canon_mask,
                     std::uint64_t hash, SolveStatus verdict);

  // Stores a kFound/kNone verdict (kUnknown is dropped). Counts an
  // insert, plus an eviction when a live entry was displaced; returns
  // true exactly when an eviction happened so callers can keep
  // session-local eviction counts. Racing inserts of the same key are
  // benign: verdicts are deterministic, so duplicates agree.
  bool insert(std::uint64_t graph_fp, std::uint64_t canon_mask,
              SolveStatus verdict);

  VerdictCacheStats stats() const;
  std::size_t capacity() const { return sets_.size() * kWays; }

 private:
  struct Entry {
    std::uint64_t fp = 0;
    std::uint64_t mask = 0;
    std::uint8_t verdict = 0;
    bool valid = false;
  };
  struct Set {
    Entry ways[kWays];
    std::uint8_t next = 0;  // round-robin replacement cursor
  };

  static constexpr std::size_t kStripes = 64;  // power of two

  std::size_t set_index(std::uint64_t hash) const {
    return static_cast<std::size_t>(hash) & set_mask_;
  }

  std::vector<Set> sets_;
  std::size_t set_mask_ = 0;
  mutable std::mutex stripes_[kStripes];
  std::atomic<std::uint64_t> hits_{0}, misses_{0}, inserts_{0},
      evictions_{0};
};

}  // namespace kgdp::verify
