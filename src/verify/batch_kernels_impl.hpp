// Width-templated body of the batch setup kernel, shared by the portable
// translation unit and the AVX2 one (same source, different compile
// flags). Branchless over lanes so the inner loop vectorizes: a node v is
// a legal start iff it is a healthy processor with at least one healthy
// input-terminal neighbor, and symmetrically for ends.
#pragma once

#include "verify/batch_kernels.hpp"

namespace kgdp::verify::detail {

template <int W>
inline void run_batch_setup(const std::uint64_t* rows, int n,
                            std::uint64_t proc_mask, std::uint64_t input_mask,
                            std::uint64_t output_mask,
                            const std::uint64_t* fault_masks,
                            std::size_t count, LaneSetup* out) {
  std::size_t i = 0;
  for (; i + W <= count; i += W) {
    std::uint64_t keep[W], in_ok[W], out_ok[W], starts[W], ends[W];
    for (int l = 0; l < W; ++l) {
      const std::uint64_t healthy = ~fault_masks[i + l];
      keep[l] = proc_mask & healthy;
      in_ok[l] = input_mask & healthy;
      out_ok[l] = output_mask & healthy;
      starts[l] = 0;
      ends[l] = 0;
    }
    for (int v = 0; v < n; ++v) {
      const std::uint64_t row = rows[v];
      const std::uint64_t bit = std::uint64_t{1} << v;
      for (int l = 0; l < W; ++l) {
        const std::uint64_t has_in =
            -static_cast<std::uint64_t>((row & in_ok[l]) != 0);
        const std::uint64_t has_out =
            -static_cast<std::uint64_t>((row & out_ok[l]) != 0);
        starts[l] |= keep[l] & bit & has_in;
        ends[l] |= keep[l] & bit & has_out;
      }
    }
    // Walk-first seeding, still W-wide and branchless: the splitmix seed
    // is a multiply-add on the fault mask, the first-restart start is
    // the lowest start bit (x & -x).
    for (int l = 0; l < W; ++l) {
      out[i + l] = LaneSetup{keep[l],   in_ok[l],
                             out_ok[l], starts[l],
                             ends[l],   walk_seed_mix(fault_masks[i + l]),
                             starts[l] & (~starts[l] + 1)};
    }
  }
  // Tail lanes, one at a time (same arithmetic, so still bit-identical).
  for (; i < count; ++i) {
    const std::uint64_t healthy = ~fault_masks[i];
    LaneSetup s;
    s.keep = proc_mask & healthy;
    s.in_ok = input_mask & healthy;
    s.out_ok = output_mask & healthy;
    for (int v = 0; v < n; ++v) {
      const std::uint64_t row = rows[v];
      const std::uint64_t bit = std::uint64_t{1} << v;
      if (s.keep & bit) {
        if (row & s.in_ok) s.starts |= bit;
        if (row & s.out_ok) s.ends |= bit;
      }
    }
    s.seed = walk_seed_mix(fault_masks[i]);
    s.start_bit = s.starts & (~s.starts + 1);
    out[i] = s;
  }
}

}  // namespace kgdp::verify::detail
