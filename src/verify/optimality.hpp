// Certification of the paper's optimality claims for a concrete graph:
// node-optimality (exact node counts), standardness, and degree-
// optimality (max processor degree equals the provable lower bound).
#pragma once

#include <string>

#include "kgd/labeled_graph.hpp"

namespace kgdp::verify {

struct OptimalityReport {
  bool node_optimal = false;
  bool standard = false;
  int max_processor_degree = 0;
  int degree_lower_bound = 0;   // from kgd::max_degree_lower_bound
  bool degree_optimal = false;  // max degree == lower bound
  std::string summary() const;
};

OptimalityReport certify_optimality(const kgd::SolutionGraph& sg);

}  // namespace kgdp::verify
