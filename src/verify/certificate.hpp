// GD certificates: a machine-checkable proof object for GD(G, k). The
// certificate lists, for EVERY fault set of size <= k, a concrete
// pipeline. Re-checking a certificate needs no solver — just the
// pipeline validity predicate plus a completeness count — so a consumer
// can trust a design without trusting (or re-running) the search.
//
// Format (text, after a kgdp-graph block):
//   kgdp-certificate 1
//   <serialized solution graph>
//   max_faults <k>
//   entries <count>
//   <f> <fault nodes...> ; <p> <pipeline nodes...>   (one line per entry)
#pragma once

#include <iosfwd>
#include <string>

#include "kgd/labeled_graph.hpp"

namespace kgdp::verify {

struct CertificateStats {
  std::uint64_t entries = 0;
  bool complete = false;   // one entry per fault set, none missing
  bool all_valid = false;  // every pipeline passes check_pipeline
  std::string error;       // first failure, empty if ok
  bool ok() const { return complete && all_valid; }
};

// Enumerates every fault set up to max_faults, solves each, and writes
// the certificate. Throws std::runtime_error if any fault set has no
// pipeline (the graph is simply not k-GD; certify something else).
void write_certificate(std::ostream& out, const kgd::SolutionGraph& sg,
                       int max_faults);
std::string write_certificate_string(const kgd::SolutionGraph& sg,
                                     int max_faults);

// Re-validates a certificate: parses the embedded graph, checks entry
// count against the closed-form subset count, and validates every
// pipeline against its fault set. No solving involved.
CertificateStats check_certificate(std::istream& in);
CertificateStats check_certificate_string(const std::string& text);

}  // namespace kgdp::verify
