#include "verify/certificate.hpp"

#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "fault/enumerator.hpp"
#include "io/graph_io.hpp"
#include "kgd/pipeline.hpp"
#include "verify/pipeline_solver.hpp"

namespace kgdp::verify {

void write_certificate(std::ostream& out, const kgd::SolutionGraph& sg,
                       int max_faults) {
  // Format 2 = format 1 plus an explicit schema_version line, so external
  // consumers can dispatch without sniffing the body.
  out << "kgdp-certificate 2\n";
  out << "schema_version " << io::kSchemaVersion << '\n';
  io::save_solution(out, sg);
  out << "max_faults " << max_faults << '\n';
  const fault::FaultEnumerator en(sg.num_nodes(), max_faults);
  out << "entries " << en.total() << '\n';
  PipelineSolver solver;
  for (std::uint64_t i = 0; i < en.total(); ++i) {
    const kgd::FaultSet fs = en.at(i);
    const auto res = solver.solve(sg, fs);
    if (res.status != SolveStatus::kFound) {
      throw std::runtime_error(
          "graph is not gracefully degradable: no pipeline for faults " +
          fs.to_string());
    }
    out << fs.size();
    for (int v : fs.nodes()) out << ' ' << v;
    out << " ; " << res.pipeline->path.size();
    for (auto v : res.pipeline->path) out << ' ' << v;
    out << '\n';
  }
}

std::string write_certificate_string(const kgd::SolutionGraph& sg,
                                     int max_faults) {
  std::ostringstream os;
  write_certificate(os, sg, max_faults);
  return os.str();
}

CertificateStats check_certificate(std::istream& in) {
  CertificateStats stats;
  auto fail = [&stats](std::string msg) {
    stats.error = std::move(msg);
    return stats;
  };

  std::string word;
  int version = 0;
  if (!(in >> word >> version) || word != "kgdp-certificate" ||
      (version != 1 && version != 2)) {
    return fail("bad certificate header");
  }
  if (version >= 2) {
    int schema = 0;
    if (!(in >> word >> schema) || word != "schema_version" || schema < 1) {
      return fail("missing schema_version");
    }
  }

  kgd::SolutionGraph sg;
  try {
    sg = io::load_solution(in);
  } catch (const std::exception& e) {
    return fail(std::string("embedded graph: ") + e.what());
  }

  int max_faults = 0;
  std::uint64_t declared_entries = 0;
  if (!(in >> word >> max_faults) || word != "max_faults") {
    return fail("missing max_faults");
  }
  if (!(in >> word >> declared_entries) || word != "entries") {
    return fail("missing entries count");
  }

  // Completeness: the number of fault sets is known in closed form, and
  // we additionally require them in canonical enumeration order so no
  // duplicates can hide a gap.
  const fault::FaultEnumerator en(sg.num_nodes(), max_faults);
  if (declared_entries != en.total()) {
    return fail("entry count mismatch: declared " +
                std::to_string(declared_entries) + ", need " +
                std::to_string(en.total()));
  }

  for (std::uint64_t i = 0; i < declared_entries; ++i) {
    int fcount = 0;
    if (!(in >> fcount) || fcount < 0) return fail("bad fault count");
    std::vector<int> fault_nodes(fcount);
    for (int& v : fault_nodes) {
      if (!(in >> v)) return fail("truncated fault list");
    }
    std::string sep;
    if (!(in >> sep) || sep != ";") return fail("missing separator");
    std::size_t plen = 0;
    if (!(in >> plen) || plen < 2) return fail("bad pipeline length");
    std::vector<int> path(plen);
    for (int& v : path) {
      if (!(in >> v)) return fail("truncated pipeline");
    }

    if (fault_nodes != en.nodes_at(i)) {
      return fail("entry " + std::to_string(i) +
                  " out of canonical order");
    }
    const kgd::FaultSet fs(sg.num_nodes(), fault_nodes);
    const auto chk = kgd::check_pipeline(sg, fs, path);
    if (!chk.ok) {
      return fail("entry " + std::to_string(i) + ": " + chk.error);
    }
    ++stats.entries;
  }
  stats.complete = true;
  stats.all_valid = true;
  return stats;
}

CertificateStats check_certificate_string(const std::string& text) {
  std::istringstream is(text);
  return check_certificate(is);
}

}  // namespace kgdp::verify
