#include "net/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>

namespace kgdp::net {

namespace {

std::string errno_string(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

bool set_cloexec(int fd) {
  const int flags = ::fcntl(fd, F_GETFD);
  return flags >= 0 && ::fcntl(fd, F_SETFD, flags | FD_CLOEXEC) == 0;
}

// Fills a sockaddr_un; fails when the path exceeds sun_path.
bool fill_unix_addr(const std::string& path, sockaddr_un* addr,
                    std::string* error) {
  std::memset(addr, 0, sizeof *addr);
  addr->sun_family = AF_UNIX;
  if (path.size() >= sizeof addr->sun_path) {
    *error = "unix socket path too long: " + path;
    return false;
  }
  std::memcpy(addr->sun_path, path.c_str(), path.size() + 1);
  return true;
}

struct ResolvedAddr {
  sockaddr_storage storage = {};
  socklen_t len = 0;
};

bool resolve_tcp(const std::string& host, int port, ResolvedAddr* out,
                 std::string* error) {
  addrinfo hints = {};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int rc = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                               &hints, &res);
  if (rc != 0 || res == nullptr) {
    *error = "cannot resolve " + host + ": " + ::gai_strerror(rc);
    return false;
  }
  std::memcpy(&out->storage, res->ai_addr, res->ai_addrlen);
  out->len = static_cast<socklen_t>(res->ai_addrlen);
  ::freeaddrinfo(res);
  return true;
}

}  // namespace

void Fd::reset() {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
}

std::optional<Endpoint> Endpoint::parse(const std::string& spec) {
  if (spec.rfind("unix:", 0) == 0) {
    const std::string path = spec.substr(5);
    if (path.empty()) return std::nullopt;
    return unix_path(path);
  }
  if (spec.rfind("tcp:", 0) == 0) {
    const std::string rest = spec.substr(4);
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string::npos || colon == 0) return std::nullopt;
    const std::string port_text = rest.substr(colon + 1);
    if (port_text.empty() ||
        port_text.find_first_not_of("0123456789") != std::string::npos) {
      return std::nullopt;
    }
    const long port = std::strtol(port_text.c_str(), nullptr, 10);
    if (port < 0 || port > 65535) return std::nullopt;
    return tcp(rest.substr(0, colon), static_cast<int>(port));
  }
  return std::nullopt;
}

Endpoint Endpoint::unix_path(std::string p) {
  Endpoint ep;
  ep.kind = Kind::kUnix;
  ep.path = std::move(p);
  return ep;
}

Endpoint Endpoint::tcp(std::string host, int port) {
  Endpoint ep;
  ep.kind = Kind::kTcp;
  ep.host = std::move(host);
  ep.port = port;
  return ep;
}

std::string Endpoint::to_string() const {
  return kind == Kind::kUnix ? "unix:" + path
                             : "tcp:" + host + ":" + std::to_string(port);
}

Fd listen_endpoint(const Endpoint& ep, int backlog, std::string* error) {
  if (ep.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr;
    if (!fill_unix_addr(ep.path, &addr, error)) return Fd();
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
      *error = errno_string("socket(AF_UNIX)");
      return Fd();
    }
    ::unlink(ep.path.c_str());
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      *error = errno_string("bind " + ep.path);
      return Fd();
    }
    if (::listen(fd.get(), backlog) != 0) {
      *error = errno_string("listen " + ep.path);
      return Fd();
    }
    if (!set_nonblocking(fd.get()) || !set_cloexec(fd.get())) {
      *error = errno_string("fcntl " + ep.path);
      return Fd();
    }
    return fd;
  }

  ResolvedAddr addr;
  if (!resolve_tcp(ep.host, ep.port, &addr, error)) return Fd();
  Fd fd(::socket(addr.storage.ss_family, SOCK_STREAM, 0));
  if (!fd.valid()) {
    *error = errno_string("socket(TCP)");
    return Fd();
  }
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr.storage),
             addr.len) != 0) {
    *error = errno_string("bind " + ep.to_string());
    return Fd();
  }
  if (::listen(fd.get(), backlog) != 0) {
    *error = errno_string("listen " + ep.to_string());
    return Fd();
  }
  if (!set_nonblocking(fd.get()) || !set_cloexec(fd.get())) {
    *error = errno_string("fcntl " + ep.to_string());
    return Fd();
  }
  return fd;
}

Fd connect_endpoint(const Endpoint& ep, std::string* error,
                    int* errno_out) {
  if (errno_out != nullptr) *errno_out = 0;
  if (ep.kind == Endpoint::Kind::kUnix) {
    sockaddr_un addr;
    if (!fill_unix_addr(ep.path, &addr, error)) return Fd();
    Fd fd(::socket(AF_UNIX, SOCK_STREAM, 0));
    if (!fd.valid()) {
      if (errno_out != nullptr) *errno_out = errno;
      *error = errno_string("socket(AF_UNIX)");
      return Fd();
    }
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                  sizeof addr) != 0) {
      if (errno_out != nullptr) *errno_out = errno;
      *error = errno_string("connect " + ep.path);
      return Fd();
    }
    set_cloexec(fd.get());
    return fd;
  }

  ResolvedAddr addr;
  if (!resolve_tcp(ep.host, ep.port, &addr, error)) return Fd();
  Fd fd(::socket(addr.storage.ss_family, SOCK_STREAM, 0));
  if (!fd.valid()) {
    if (errno_out != nullptr) *errno_out = errno;
    *error = errno_string("socket(TCP)");
    return Fd();
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr.storage),
                addr.len) != 0) {
    if (errno_out != nullptr) *errno_out = errno;
    *error = errno_string("connect " + ep.to_string());
    return Fd();
  }
  set_tcp_nodelay(fd.get());
  set_cloexec(fd.get());
  return fd;
}

int local_tcp_port(int fd) {
  sockaddr_storage addr = {};
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  if (addr.ss_family == AF_INET) {
    return ntohs(reinterpret_cast<sockaddr_in*>(&addr)->sin_port);
  }
  if (addr.ss_family == AF_INET6) {
    return ntohs(reinterpret_cast<sockaddr_in6*>(&addr)->sin6_port);
  }
  return 0;
}

void ignore_sigpipe() {
  struct sigaction sa;
  std::memset(&sa, 0, sizeof sa);
  sa.sa_handler = SIG_IGN;
  ::sigemptyset(&sa.sa_mask);
  ::sigaction(SIGPIPE, &sa, nullptr);
}

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_tcp_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace kgdp::net
