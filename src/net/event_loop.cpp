#include "net/event_loop.hpp"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace kgdp::net {

EventLoop::EventLoop() {
  int fds[2];
  if (::pipe(fds) != 0) {
    std::perror("kgdp: EventLoop pipe");
    std::abort();
  }
  wake_read_ = Fd(fds[0]);
  wake_write_ = Fd(fds[1]);
  set_nonblocking(wake_read_.get());
  set_nonblocking(wake_write_.get());
}

EventLoop::~EventLoop() = default;

void EventLoop::add(int fd, short events, IoCallback cb) {
  Entry& e = entries_[fd];
  e.events = events;
  e.cb = std::move(cb);
  e.dead = false;
}

void EventLoop::set_events(int fd, short events) {
  const auto it = entries_.find(fd);
  if (it != entries_.end()) it->second.events = events;
}

void EventLoop::remove(int fd) {
  const auto it = entries_.find(fd);
  if (it != entries_.end()) it->second.dead = true;
}

void EventLoop::post(std::function<void()> fn) {
  {
    std::lock_guard lk(post_mu_);
    posted_.push_back(std::move(fn));
  }
  // A full pipe already guarantees a pending wakeup; dropping is fine.
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_write_.get(), &byte, 1);
}

void EventLoop::post_after(int delay_ms, std::function<void()> fn) {
  timers_.push_back(Timer{std::chrono::steady_clock::now() +
                              std::chrono::milliseconds(delay_ms),
                          std::move(fn)});
}

int EventLoop::poll_timeout_ms() const {
  if (timers_.empty()) return -1;
  auto earliest = timers_.front().when;
  for (const Timer& t : timers_) earliest = std::min(earliest, t.when);
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      earliest - std::chrono::steady_clock::now());
  return left.count() < 0 ? 0 : static_cast<int>(left.count());
}

void EventLoop::run_due_timers() {
  if (timers_.empty()) return;
  const auto now = std::chrono::steady_clock::now();
  // Collect first, fire second: a timer may post_after another timer.
  std::vector<Timer> due;
  for (auto it = timers_.begin(); it != timers_.end();) {
    if (it->when <= now) {
      due.push_back(std::move(*it));
      it = timers_.erase(it);
    } else {
      ++it;
    }
  }
  for (Timer& t : due) t.fn();
}

void EventLoop::stop() {
  post([this] { stop_requested_ = true; });
}

void EventLoop::drain_wake_pipe() {
  char buf[256];
  while (::read(wake_read_.get(), buf, sizeof buf) > 0) {
  }
}

void EventLoop::run_posted() {
  // Swap under the lock; run outside it (tasks may post more tasks,
  // which land in the next swap).
  while (true) {
    std::vector<std::function<void()>> batch;
    {
      std::lock_guard lk(post_mu_);
      batch.swap(posted_);
    }
    if (batch.empty()) return;
    for (auto& fn : batch) fn();
  }
}

void EventLoop::run() {
  running_ = true;
  stop_requested_ = false;
  std::vector<pollfd> pfds;
  while (!stop_requested_) {
    // Sweep entries removed during the previous dispatch.
    for (auto it = entries_.begin(); it != entries_.end();) {
      it = it->second.dead ? entries_.erase(it) : std::next(it);
    }

    pfds.clear();
    pfds.push_back(pollfd{wake_read_.get(), POLLIN, 0});
    for (const auto& [fd, entry] : entries_) {
      if (entry.events != 0) pfds.push_back(pollfd{fd, entry.events, 0});
    }

    const int ready = ::poll(pfds.data(), pfds.size(), poll_timeout_ms());
    if (ready < 0) continue;  // EINTR: fall through to the posted queue

    if (pfds[0].revents != 0) drain_wake_pipe();
    for (std::size_t i = 1; i < pfds.size(); ++i) {
      if (pfds[i].revents == 0) continue;
      const auto it = entries_.find(pfds[i].fd);
      if (it == entries_.end() || it->second.dead) continue;
      it->second.cb(pfds[i].revents);
    }
    run_due_timers();
    run_posted();
  }
  running_ = false;
}

}  // namespace kgdp::net
