// Newline-delimited framing for the kgdd wire protocol: one frame per
// line, payload is the line without its terminator. FrameReader is a
// plain incremental splitter — it never looks inside the payload — with
// a hard per-frame byte cap so one abusive connection cannot balloon the
// daemon's memory. An optional trailing '\r' is stripped, which keeps
// hand-driven sessions (socat, telnet) usable.
#pragma once

#include <cstddef>
#include <optional>
#include <string>

namespace kgdp::net {

class FrameReader {
 public:
  explicit FrameReader(std::size_t max_frame) : max_frame_(max_frame) {}

  // Appends raw bytes. Returns false once the connection has exceeded
  // the frame cap (a line longer than max_frame, terminated or not); the
  // reader is then poisoned — next() returns already-extracted frames
  // but no new bytes are accepted.
  bool append(const char* data, std::size_t len);

  // Next complete frame, or nullopt when no full line is buffered.
  std::optional<std::string> next();

  bool oversized() const { return oversized_; }
  std::size_t buffered() const { return buf_.size() - consumed_; }

 private:
  std::size_t max_frame_;
  std::string buf_;
  std::size_t consumed_ = 0;  // bytes of buf_ already returned as frames
  bool oversized_ = false;
};

}  // namespace kgdp::net
