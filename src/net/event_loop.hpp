// Portable poll(2)-based event loop, single-threaded by design: every
// fd callback and every posted task runs on the thread inside run().
// Worker threads hand results back with post(), which is the only
// thread-safe entry point (it wakes the loop through a self-pipe).
// Deliberately simple — a rebuild-the-pollfd-vector-per-iteration loop
// is far below the crossover where epoll wins at the connection counts a
// certification daemon sees, and it runs identically on every POSIX.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <vector>

#include "net/socket.hpp"

namespace kgdp::net {

class EventLoop {
 public:
  // Receives the poll revents bitmask that fired for the fd.
  using IoCallback = std::function<void(short)>;

  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  // Registers fd with the given poll events (POLLIN/POLLOUT). The loop
  // never owns the fd. Loop-thread only (as are set_events/remove).
  void add(int fd, short events, IoCallback cb);
  void set_events(int fd, short events);
  void remove(int fd);
  bool watching(int fd) const { return entries_.count(fd) != 0; }

  // Enqueue fn to run on the loop thread; safe from any thread. Tasks
  // posted from the loop thread itself run later in the same iteration.
  void post(std::function<void()> fn);

  // Runs fn on the loop thread no earlier than delay_ms from now (the
  // poll timeout is bounded by the nearest deadline). Loop-thread only,
  // or before run(). Used for backoff re-arms, not fine-grained timing.
  void post_after(int delay_ms, std::function<void()> fn);

  // Runs until stop(). Dispatches IO, then drained posted tasks.
  void run();

  // Thread-safe: makes run() return after the current iteration.
  void stop();

  bool running() const { return running_; }

 private:
  void drain_wake_pipe();
  void run_posted();

  struct Entry {
    short events = 0;
    IoCallback cb;
    bool dead = false;  // removed mid-dispatch; swept after the iteration
  };

  struct Timer {
    std::chrono::steady_clock::time_point when;
    std::function<void()> fn;
  };

  int poll_timeout_ms() const;
  void run_due_timers();

  std::map<int, Entry> entries_;
  std::vector<Timer> timers_;
  Fd wake_read_, wake_write_;
  bool running_ = false;
  bool stop_requested_ = false;

  std::mutex post_mu_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace kgdp::net
