#include "net/server.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <thread>
#include <utility>

#include "net/fault_inject.hpp"

// Not every POSIX has MSG_NOSIGNAL; where it is missing the process-wide
// ignore_sigpipe() in the daemon covers the same hole.
#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace kgdp::net {

namespace {
// Re-arm delay for a listener parked on fd exhaustion (EMFILE/ENFILE).
constexpr int kAcceptBackoffMs = 100;
}  // namespace

FrameServer::FrameServer(EventLoop& loop, FrameServerConfig config)
    : loop_(loop), config_(config) {}

FrameServer::~FrameServer() {
  for (auto& [id, conn] : conns_) loop_.remove(conn->fd.get());
  for (Fd& l : listeners_) loop_.remove(l.get());
}

void FrameServer::add_listener(Fd fd) {
  const std::size_t index = listeners_.size();
  listeners_.push_back(std::move(fd));
  loop_.add(listeners_[index].get(), POLLIN,
            [this, index](short) { on_accept(index); });
}

void FrameServer::on_accept(std::size_t listener_index) {
  while (true) {
    Fd client(::accept(listeners_[listener_index].get(), nullptr, nullptr));
    if (!client.valid()) {
      if (errno == EMFILE || errno == ENFILE) {
        // Out of descriptors: the pending connection keeps the listener
        // readable, so returning to poll() would spin at 100% CPU. Park
        // the listener and retry once descriptors may have freed up.
        loop_.set_events(listeners_[listener_index].get(), 0);
        loop_.post_after(kAcceptBackoffMs, [this, listener_index] {
          loop_.set_events(listeners_[listener_index].get(), POLLIN);
          on_accept(listener_index);
        });
      }
      return;  // EAGAIN or transient error: wait
    }
    if (!accepting_) continue;    // drain mode: accept-and-drop
    set_nonblocking(client.get());
    set_tcp_nodelay(client.get());
    const std::uint64_t id = next_conn_id_++;
    auto conn =
        std::make_unique<Connection>(std::move(client), config_.max_frame);
    const int fd = conn->fd.get();
    conns_.emplace(id, std::move(conn));
    loop_.add(fd, POLLIN, [this, id](short revents) { on_io(id, revents); });
  }
}

void FrameServer::on_io(std::uint64_t conn_id, short revents) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& c = *it->second;

  if (revents & (POLLERR | POLLHUP | POLLNVAL)) {
    destroy(conn_id, /*notify=*/true);
    return;
  }

  if (revents & POLLIN) {
    char buf[16384];
    while (true) {
      const ssize_t n = ::read(c.fd.get(), buf, sizeof buf);
      if (n > 0) {
        if (!c.reader.append(buf, static_cast<std::size_t>(n))) break;
        continue;
      }
      if (n == 0) {  // peer EOF
        destroy(conn_id, /*notify=*/true);
        return;
      }
      break;  // EAGAIN or error: stop reading for now
    }
    while (auto frame = c.reader.next()) {
      // One intercepted op per dispatched inbound frame (see
      // net/fault_inject.hpp): drop skips the handler, dup invokes it
      // twice, sever cuts the connection before the handler sees it.
      int deliveries = 1;
      if (FaultInjector::instance().enabled()) {
        switch (FaultInjector::instance().next_action()) {
          case FaultAction::kDrop:
            deliveries = 0;
            break;
          case FaultAction::kDup:
            deliveries = 2;
            break;
          case FaultAction::kStall:
            std::this_thread::sleep_for(
                std::chrono::milliseconds(FaultInjector::kStallMs));
            break;
          case FaultAction::kSever:
            destroy(conn_id, /*notify=*/true);
            return;
          case FaultAction::kNone:
            break;
        }
      }
      bool conn_dead = false;
      for (; deliveries > 0 && !conn_dead; --deliveries) {
        if (on_frame_) {
          on_frame_(conn_id, deliveries > 1 ? std::string(*frame)
                                            : std::move(*frame));
        }
        if (conns_.find(conn_id) == conns_.end()) return;  // handler closed it
        conn_dead = it->second->dead;
      }
      if (conn_dead) break;
    }
    if (c.reader.oversized()) {
      if (on_abuse_) on_abuse_(conn_id, "frame exceeds the size limit");
      if (conns_.find(conn_id) == conns_.end()) return;
      close_after_flush(conn_id);
      return;
    }
  }

  if (revents & POLLOUT) update_poll_events(conn_id, c);
}

void FrameServer::send(std::uint64_t conn_id, const std::string& frame) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  Connection& c = *it->second;
  if (c.dead) return;
  // One intercepted op per outbound frame: drop swallows it (the
  // caller believes it was queued, as with a lossy link), dup queues
  // it twice, sever cuts the connection instead of replying.
  int copies = 1;
  if (FaultInjector::instance().enabled()) {
    switch (FaultInjector::instance().next_action()) {
      case FaultAction::kDrop:
        return;
      case FaultAction::kDup:
        copies = 2;
        break;
      case FaultAction::kStall:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(FaultInjector::kStallMs));
        break;
      case FaultAction::kSever:
        destroy(conn_id, /*notify=*/true);
        return;
      case FaultAction::kNone:
        break;
    }
  }
  for (int i = 0; i < copies; ++i) {
    c.out += frame;
    c.out += '\n';
  }
  if (c.out.size() - c.out_sent > config_.max_write_buffer) {
    // Stalled or abusive reader; cut it loose rather than buffer forever.
    destroy(conn_id, /*notify=*/true);
    return;
  }
  update_poll_events(conn_id, c);
}

void FrameServer::update_poll_events(std::uint64_t conn_id, Connection& c) {
  // Flush as much as the kernel takes now; POLLOUT only while blocked.
  while (c.out_sent < c.out.size()) {
    // MSG_NOSIGNAL: a peer that disconnected mid-stream must surface as
    // EPIPE on this connection, not a process-killing SIGPIPE.
    const ssize_t n = ::send(c.fd.get(), c.out.data() + c.out_sent,
                             c.out.size() - c.out_sent, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_sent += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    destroy(conn_id, /*notify=*/true);
    return;
  }
  if (c.out_sent == c.out.size()) {
    c.out.clear();
    c.out_sent = 0;
    if (c.close_after_flush) {
      destroy(conn_id, /*notify=*/true);
      return;
    }
    loop_.set_events(c.fd.get(), POLLIN);
  } else {
    loop_.set_events(c.fd.get(), POLLIN | POLLOUT);
  }
}

void FrameServer::close_after_flush(std::uint64_t conn_id) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  it->second->close_after_flush = true;
  update_poll_events(conn_id, *it->second);
}

void FrameServer::close_now(std::uint64_t conn_id) {
  destroy(conn_id, /*notify=*/true);
}

void FrameServer::close_all_after_flush() {
  std::vector<std::uint64_t> ids;
  ids.reserve(conns_.size());
  for (const auto& [id, conn] : conns_) ids.push_back(id);
  for (const std::uint64_t id : ids) close_after_flush(id);
}

void FrameServer::stop_accepting() { accepting_ = false; }

void FrameServer::destroy(std::uint64_t conn_id, bool notify) {
  const auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  it->second->dead = true;
  loop_.remove(it->second->fd.get());
  std::unique_ptr<Connection> conn = std::move(it->second);
  conns_.erase(it);
  // The close notification is deferred: destroy() is reachable from
  // inside send() (write error, write-buffer cutoff), and a synchronous
  // callback would let the service tear down session state underneath a
  // caller still holding a reference into it.
  if (notify && on_close_) {
    loop_.post([this, conn_id] {
      if (on_close_) on_close_(conn_id);
    });
  }
  // conn's Fd closes here, after the loop entry is gone.
}

}  // namespace kgdp::net
