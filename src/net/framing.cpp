#include "net/framing.hpp"

namespace kgdp::net {

bool FrameReader::append(const char* data, std::size_t len) {
  if (oversized_) return false;
  // Compact occasionally so the buffer does not grow with total traffic.
  if (consumed_ > 0 && consumed_ >= buf_.size() / 2) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
  buf_.append(data, len);
  // The cap applies to the unterminated tail as well: a peer streaming an
  // endless line must be cut off before it buffers max_frame + len bytes.
  // (Complete over-long lines are caught in next().)
  const std::size_t last_nl = buf_.rfind('\n');
  const std::size_t tail_start =
      last_nl == std::string::npos || last_nl < consumed_ ? consumed_
                                                          : last_nl + 1;
  if (buf_.size() - tail_start > max_frame_) {
    oversized_ = true;
    return false;
  }
  return true;
}

std::optional<std::string> FrameReader::next() {
  const std::size_t nl = buf_.find('\n', consumed_);
  if (nl == std::string::npos) return std::nullopt;
  std::size_t end = nl;
  if (end > consumed_ && buf_[end - 1] == '\r') --end;
  if (end - consumed_ > max_frame_) {
    oversized_ = true;
    return std::nullopt;
  }
  std::string frame = buf_.substr(consumed_, end - consumed_);
  consumed_ = nl + 1;
  return frame;
}

}  // namespace kgdp::net
