#include "net/fault_inject.hpp"

#include <cstdlib>

#include "util/log.hpp"

namespace kgdp::net {

namespace {

bool parse_u64(const std::string& s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool parse_prob(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end == nullptr || *end != '\0' || v < 0.0 || v > 1.0) return false;
  *out = v;
  return true;
}

}  // namespace

const char* to_string(FaultAction action) {
  switch (action) {
    case FaultAction::kNone: return "none";
    case FaultAction::kDrop: return "drop";
    case FaultAction::kDup: return "dup";
    case FaultAction::kStall: return "stall";
    case FaultAction::kSever: return "sever";
  }
  return "?";
}

std::optional<FaultSpec> FaultSpec::parse(const std::string& text) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) return std::nullopt;
  FaultSpec spec;
  if (!parse_u64(text.substr(0, colon), &spec.seed)) return std::nullopt;
  std::size_t pos = colon + 1;
  while (pos <= text.size()) {
    std::size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string item = text.substr(pos, comma - pos);
    pos = comma + 1;
    std::size_t sep = item.find('@');
    if (sep != std::string::npos) {
      const std::string name = item.substr(0, sep);
      std::uint64_t at = 0;
      if (!parse_u64(item.substr(sep + 1), &at)) return std::nullopt;
      const auto idx = static_cast<std::int64_t>(at);
      if (name == "drop") {
        spec.drop_at = idx;
      } else if (name == "dup") {
        spec.dup_at = idx;
      } else if (name == "stall") {
        spec.stall_at = idx;
      } else if (name == "sever") {
        spec.sever_at = idx;
      } else {
        return std::nullopt;
      }
      continue;
    }
    sep = item.find('=');
    if (sep == std::string::npos) return std::nullopt;
    const std::string name = item.substr(0, sep);
    double p = 0.0;
    if (!parse_prob(item.substr(sep + 1), &p)) return std::nullopt;
    if (name == "drop") {
      spec.p_drop = p;
    } else if (name == "dup") {
      spec.p_dup = p;
    } else if (name == "stall") {
      spec.p_stall = p;
    } else if (name == "sever") {
      spec.p_sever = p;
    } else {
      return std::nullopt;
    }
  }
  return spec;
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector* injector = [] {
    auto* fi = new FaultInjector();
    if (const char* env = std::getenv("KGDP_NET_FAULTS")) {
      if (auto spec = FaultSpec::parse(env)) {
        fi->arm(*spec);
        util::log_warn("network fault injection armed from KGDP_NET_FAULTS: ",
                       env);
      } else {
        util::log_warn("ignoring malformed KGDP_NET_FAULTS: ", env);
      }
    }
    return fi;
  }();
  return *injector;
}

void FaultInjector::arm(const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  spec_ = spec;
  rng_ = util::Rng(spec.seed);
  ops_.store(0, std::memory_order_relaxed);
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
}

FaultAction FaultInjector::next_action() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!enabled_.load(std::memory_order_relaxed)) return FaultAction::kNone;
  const auto op =
      static_cast<std::int64_t>(ops_.fetch_add(1, std::memory_order_relaxed));
  if (op == spec_.drop_at) return FaultAction::kDrop;
  if (op == spec_.dup_at) return FaultAction::kDup;
  if (op == spec_.stall_at) return FaultAction::kStall;
  if (op == spec_.sever_at) return FaultAction::kSever;
  if (spec_.p_drop > 0.0 && rng_.next_double() < spec_.p_drop) {
    return FaultAction::kDrop;
  }
  if (spec_.p_dup > 0.0 && rng_.next_double() < spec_.p_dup) {
    return FaultAction::kDup;
  }
  if (spec_.p_stall > 0.0 && rng_.next_double() < spec_.p_stall) {
    return FaultAction::kStall;
  }
  if (spec_.p_sever > 0.0 && rng_.next_double() < spec_.p_sever) {
    return FaultAction::kSever;
  }
  return FaultAction::kNone;
}

}  // namespace kgdp::net
