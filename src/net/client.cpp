#include "net/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace kgdp::net {

namespace {
// Client-side frames can carry large verdicts; cap generously (the
// server enforces its own inbound cap independently).
constexpr std::size_t kClientMaxFrame = 8u << 20;
}  // namespace

std::optional<Client> Client::connect(const Endpoint& ep,
                                      std::string* error) {
  // A server that drops the connection mid-write must surface as an
  // EPIPE send error, not kill the client process.
  ignore_sigpipe();
  Fd fd = connect_endpoint(ep, error);
  if (!fd.valid()) return std::nullopt;
  return Client(std::move(fd), kClientMaxFrame);
}

bool Client::send_line(const std::string& frame, std::string* error) {
  std::string wire = frame;
  wire += '\n';
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd_.get(), wire.data() + sent,
                             wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = std::string("send: ") + std::strerror(errno);
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> Client::read_line(int timeout_ms,
                                             std::string* error) {
  while (true) {
    if (auto frame = reader_.next()) return frame;
    if (reader_.oversized()) {
      if (error != nullptr) *error = "frame exceeds the client size limit";
      return std::nullopt;
    }
    pollfd pfd{fd_.get(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) {
      if (error != nullptr) *error = "timeout";
      return std::nullopt;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = std::string("poll: ") + std::strerror(errno);
      }
      return std::nullopt;
    }
    char buf[16384];
    const ssize_t n = ::read(fd_.get(), buf, sizeof buf);
    if (n == 0) {
      if (error != nullptr) *error = "connection closed by server";
      return std::nullopt;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      if (error != nullptr) {
        *error = std::string("read: ") + std::strerror(errno);
      }
      return std::nullopt;
    }
    reader_.append(buf, static_cast<std::size_t>(n));
  }
}

bool Client::send_json(const io::Json& frame, std::string* error) {
  return send_line(frame.dump(), error);
}

std::optional<io::Json> Client::read_json(int timeout_ms,
                                          std::string* error) {
  const auto line = read_line(timeout_ms, error);
  if (!line) return std::nullopt;
  try {
    return io::Json::parse(*line);
  } catch (const io::JsonParseError& e) {
    if (error != nullptr) *error = std::string("bad frame: ") + e.what();
    return std::nullopt;
  }
}

}  // namespace kgdp::net
