#include "net/client.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "net/fault_inject.hpp"

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace kgdp::net {

namespace {
// Client-side frames can carry large verdicts; cap generously (the
// server enforces its own inbound cap independently).
constexpr std::size_t kClientMaxFrame = 8u << 20;
}  // namespace

Deadline Deadline::after_ms(int ms) {
  Deadline d;
  d.at_ = std::chrono::steady_clock::now() +
          std::chrono::milliseconds(std::max(ms, 0));
  return d;
}

Deadline Deadline::never() {
  Deadline d;
  d.unbounded_ = true;
  return d;
}

int Deadline::remaining_ms() const {
  if (unbounded_) return -1;
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      at_ - std::chrono::steady_clock::now());
  return left.count() > 0 ? static_cast<int>(left.count()) : 0;
}

const char* to_string(ReadStatus status) {
  switch (status) {
    case ReadStatus::kOk:
      return "ok";
    case ReadStatus::kTimeout:
      return "timeout";
    case ReadStatus::kClosed:
      return "closed";
    case ReadStatus::kOversized:
      return "oversized";
    case ReadStatus::kError:
      return "error";
  }
  return "error";
}

std::optional<Client> Client::connect(const Endpoint& ep,
                                      std::string* error,
                                      int* errno_out) {
  // A server that drops the connection mid-write must surface as an
  // EPIPE send error, not kill the client process.
  ignore_sigpipe();
  Fd fd = connect_endpoint(ep, error, errno_out);
  if (!fd.valid()) return std::nullopt;
  return Client(std::move(fd), kClientMaxFrame);
}

bool Client::send_line(const std::string& frame, std::string* error) {
  std::string wire = frame;
  wire += '\n';
  // One intercepted op per outbound frame (see net/fault_inject.hpp):
  // drop swallows the frame while reporting success — exactly what a
  // lossy link does to a fire-and-forget sender.
  if (FaultInjector::instance().enabled()) {
    switch (FaultInjector::instance().next_action()) {
      case FaultAction::kDrop:
        return true;
      case FaultAction::kDup:
        wire += frame;
        wire += '\n';
        break;
      case FaultAction::kStall:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(FaultInjector::kStallMs));
        break;
      case FaultAction::kSever:
        fd_ = Fd();
        if (error != nullptr) {
          *error = "send: connection severed (fault injection)";
        }
        return false;
      case FaultAction::kNone:
        break;
    }
  }
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd_.get(), wire.data() + sent,
                             wire.size() - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (error != nullptr) {
        *error = std::string("send: ") + std::strerror(errno);
      }
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

Client::ReadResult Client::read_frame(int timeout_ms) {
  // One fixed budget for the whole call (buffered partial bytes do not
  // restart it); -1 keeps the traditional block-forever contract.
  return read_frame_by(timeout_ms < 0 ? Deadline::never()
                                      : Deadline::after_ms(timeout_ms));
}

Client::ReadResult Client::read_frame_by(const Deadline& deadline) {
  ReadResult res;
  if (has_dup_) {
    has_dup_ = false;
    res.status = ReadStatus::kOk;
    res.frame = std::move(dup_frame_);
    dup_frame_.clear();
    return res;
  }
  while (true) {
    if (auto frame = reader_.next()) {
      // One intercepted op per complete inbound frame: drop discards it
      // and keeps reading, dup replays it on the next call, sever cuts
      // the connection as if the peer vanished mid-stream.
      if (FaultInjector::instance().enabled()) {
        switch (FaultInjector::instance().next_action()) {
          case FaultAction::kDrop:
            continue;
          case FaultAction::kDup:
            dup_frame_ = *frame;
            has_dup_ = true;
            break;
          case FaultAction::kStall:
            std::this_thread::sleep_for(
                std::chrono::milliseconds(FaultInjector::kStallMs));
            break;
          case FaultAction::kSever:
            fd_ = Fd();
            res.status = ReadStatus::kClosed;
            res.error = "connection severed (fault injection)";
            return res;
          case FaultAction::kNone:
            break;
        }
      }
      res.status = ReadStatus::kOk;
      res.frame = std::move(*frame);
      return res;
    }
    if (reader_.oversized()) {
      res.status = ReadStatus::kOversized;
      res.error = "frame exceeds the client size limit";
      return res;
    }
    pollfd pfd{fd_.get(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, deadline.remaining_ms());
    if (ready == 0) {
      res.status = ReadStatus::kTimeout;
      res.error = "timeout";
      return res;
    }
    if (ready < 0) {
      if (errno == EINTR) continue;
      res.status = ReadStatus::kError;
      res.error = std::string("poll: ") + std::strerror(errno);
      return res;
    }
    char buf[16384];
    const ssize_t n = ::read(fd_.get(), buf, sizeof buf);
    if (n == 0) {
      res.status = ReadStatus::kClosed;
      res.error = "connection closed by server";
      return res;
    }
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      res.status = ReadStatus::kError;
      res.error = std::string("read: ") + std::strerror(errno);
      return res;
    }
    reader_.append(buf, static_cast<std::size_t>(n));
  }
}

std::optional<std::string> Client::read_line(int timeout_ms,
                                             std::string* error) {
  ReadResult res = read_frame(timeout_ms);
  if (res.status == ReadStatus::kOk) return std::move(res.frame);
  if (error != nullptr) *error = res.error;
  return std::nullopt;
}

bool Client::send_json(const io::Json& frame, std::string* error) {
  return send_line(frame.dump(), error);
}

namespace {
std::optional<io::Json> parse_read(Client::ReadResult res, std::string* error,
                                   ReadStatus* status) {
  if (status != nullptr) *status = res.status;
  if (res.status != ReadStatus::kOk) {
    if (error != nullptr) *error = res.error;
    return std::nullopt;
  }
  try {
    return io::Json::parse(res.frame);
  } catch (const io::JsonParseError& e) {
    if (status != nullptr) *status = ReadStatus::kError;
    if (error != nullptr) *error = std::string("bad frame: ") + e.what();
    return std::nullopt;
  }
}
}  // namespace

std::optional<io::Json> Client::read_json(int timeout_ms,
                                          std::string* error,
                                          ReadStatus* status) {
  return parse_read(read_frame(timeout_ms), error, status);
}

std::optional<io::Json> Client::read_json_by(const Deadline& deadline,
                                             std::string* error,
                                             ReadStatus* status) {
  return parse_read(read_frame_by(deadline), error, status);
}

}  // namespace kgdp::net
