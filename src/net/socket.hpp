// POSIX socket plumbing shared by the kgdd daemon and the blocking
// client: a move-only fd owner, the "unix:PATH" / "tcp:HOST:PORT"
// endpoint grammar, and listen/connect helpers that report errors as
// strings instead of errno spelunking at every call site.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>

namespace kgdp::net {

// Move-only owner of a file descriptor; closes on destruction.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }

  Fd(Fd&& other) noexcept : fd_(other.release()) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  bool valid() const { return fd_ >= 0; }
  int get() const { return fd_; }

  int release() { return std::exchange(fd_, -1); }
  void reset();

 private:
  int fd_ = -1;
};

// A parsed listen/connect address. The textual grammar is
//   unix:/path/to/socket
//   tcp:HOST:PORT            (HOST may be a name or numeric address)
struct Endpoint {
  enum class Kind { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  // unix
  std::string host;  // tcp
  int port = 0;      // tcp; 0 asks the kernel for an ephemeral port

  static std::optional<Endpoint> parse(const std::string& spec);
  static Endpoint unix_path(std::string p);
  static Endpoint tcp(std::string host, int port);
  std::string to_string() const;
};

// Creates a bound, listening, non-blocking, close-on-exec socket. A
// pre-existing unix socket file at the path is unlinked first (stale
// sockets from a killed daemon would otherwise block every restart).
// Returns an invalid Fd and sets *error on failure.
Fd listen_endpoint(const Endpoint& ep, int backlog, std::string* error);

// Blocking connect (the client side); close-on-exec, TCP_NODELAY on TCP.
// On failure *errno_out (when non-null) receives the connect(2)/name
//-resolution errno — 0 when the failure had none — so callers can
// treat ECONNREFUSED/ENOENT (daemon restarting) as retryable.
Fd connect_endpoint(const Endpoint& ep, std::string* error,
                    int* errno_out = nullptr);

// The port a bound TCP socket actually got (resolves port 0).
int local_tcp_port(int fd);

bool set_nonblocking(int fd);

// Sets SIGPIPE to SIG_IGN process-wide (idempotent). A peer that
// disconnects mid-stream turns the next write into SIGPIPE, whose
// default action kills the process; ignoring it lets the EPIPE error
// path close just the one connection. Called by the daemon and the
// blocking client; MSG_NOSIGNAL on the send paths covers the same hole
// where the platform has it.
void ignore_sigpipe();

// Disables Nagle on a TCP socket; a no-op (harmless failure) on other
// socket families. Without this, the server's multi-frame reply streams
// (accepted -> progress -> result as separate writes) interact with
// delayed ACKs for ~40ms stalls per request on loopback.
void set_tcp_nodelay(int fd);

}  // namespace kgdp::net
