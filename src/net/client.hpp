// Small blocking client for the kgdd wire protocol, shared by
// `kgd_cli request`, the integration tests, and bench_service. One
// connection, newline-delimited frames, poll(2)-based read timeouts;
// JSON convenience wrappers parse/serialize through io::Json.
#pragma once

#include <optional>
#include <string>

#include "io/json.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"

namespace kgdp::net {

class Client {
 public:
  // Blocking connect. Returns nullopt and sets *error on failure.
  static std::optional<Client> connect(const Endpoint& ep,
                                       std::string* error);

  // Sends one frame (newline appended). False + *error on a broken pipe.
  bool send_line(const std::string& frame, std::string* error);

  // Blocks up to timeout_ms (-1 = forever) for one complete frame.
  // nullopt on timeout, EOF, oversized frame, or socket error; *error
  // says which.
  std::optional<std::string> read_line(int timeout_ms, std::string* error);

  // JSON wrappers for the kgdd protocol.
  bool send_json(const io::Json& frame, std::string* error);
  std::optional<io::Json> read_json(int timeout_ms, std::string* error);

  int fd() const { return fd_.get(); }

 private:
  Client(Fd fd, std::size_t max_frame) : fd_(std::move(fd)), reader_(max_frame) {}

  Fd fd_;
  FrameReader reader_;
};

}  // namespace kgdp::net
