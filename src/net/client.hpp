// Small blocking client for the kgdd wire protocol, shared by
// `kgd_cli request`, the integration tests, and bench_service. One
// connection, newline-delimited frames, poll(2)-based read timeouts;
// JSON convenience wrappers parse/serialize through io::Json.
#pragma once

#include <chrono>
#include <optional>
#include <string>

#include "io/json.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"

namespace kgdp::net {

// An absolute point in time a blocking read must finish by. The plain
// read_frame(timeout_ms) restarts its full timeout every time bytes
// trickle in, so "a frame within T" silently becomes "no silence longer
// than T" — fine for heartbeats, wrong for deadlines. A Deadline is
// fixed at creation; each poll round computes the true remaining
// budget, so a sequence of reads shares one wall-clock bound (what the
// fleet coordinator's lease deadlines and bounded reconnect loops need).
class Deadline {
 public:
  // Expires `ms` from now (ms <= 0 = already expired).
  static Deadline after_ms(int ms);
  // Never expires: remaining_ms() is -1, the poll(2) "wait forever".
  static Deadline never();

  bool expired() const { return !unbounded_ && remaining_ms() == 0; }
  // Milliseconds left, clamped to 0 once past; -1 when unbounded.
  int remaining_ms() const;

 private:
  Deadline() = default;
  std::chrono::steady_clock::time_point at_{};
  bool unbounded_ = false;
};

// Why a frame read failed — callers react differently to a server
// that closed the connection (reconnect/resume) than to one that is
// merely slow (wait longer), so the distinction is first-class.
enum class ReadStatus { kOk, kTimeout, kClosed, kOversized, kError };
const char* to_string(ReadStatus status);

class Client {
 public:
  // Blocking connect. Returns nullopt and sets *error on failure; when
  // errno_out is non-null it receives the connect errno (0 if none) so
  // callers can retry ECONNREFUSED/ENOENT while a daemon restarts.
  static std::optional<Client> connect(const Endpoint& ep,
                                       std::string* error,
                                       int* errno_out = nullptr);

  // Sends one frame (newline appended). False + *error on a broken pipe.
  bool send_line(const std::string& frame, std::string* error);

  struct ReadResult {
    ReadStatus status = ReadStatus::kError;
    std::string frame;  // one complete frame when status == kOk
    std::string error;  // human-readable detail otherwise
  };
  // Blocks up to timeout_ms (-1 = forever) for one complete frame and
  // reports *why* it stopped: kTimeout (deadline, connection intact),
  // kClosed (orderly EOF from the server), kOversized (frame exceeds
  // the client cap), or kError (socket-level failure).
  ReadResult read_frame(int timeout_ms);

  // Deadline-aware variant: kTimeout once the absolute deadline passes,
  // no matter how the bytes trickled in before it.
  ReadResult read_frame_by(const Deadline& deadline);

  // Legacy wrapper over read_frame: nullopt on any non-kOk status,
  // *error says which.
  std::optional<std::string> read_line(int timeout_ms, std::string* error);

  // JSON wrappers for the kgdd protocol. read_json surfaces the read
  // status through *status when non-null (kError also covers a frame
  // that fails to parse as JSON).
  bool send_json(const io::Json& frame, std::string* error);
  std::optional<io::Json> read_json(int timeout_ms, std::string* error,
                                    ReadStatus* status = nullptr);
  std::optional<io::Json> read_json_by(const Deadline& deadline,
                                       std::string* error,
                                       ReadStatus* status = nullptr);

  int fd() const { return fd_.get(); }

 private:
  Client(Fd fd, std::size_t max_frame) : fd_(std::move(fd)), reader_(max_frame) {}

  Fd fd_;
  FrameReader reader_;
  // A received frame net::FaultInjector chose to duplicate; handed out
  // by the next read before the socket is touched again.
  std::string dup_frame_;
  bool has_dup_ = false;
};

}  // namespace kgdp::net
