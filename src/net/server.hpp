// Multi-listener frame server on top of EventLoop: accepts connections
// from any number of Unix-domain / TCP listeners, splits the byte
// stream into newline-delimited frames (FrameReader, with the per-frame
// cap), and buffers outgoing frames per connection, registering for
// POLLOUT only while a write is pending. Content-agnostic: the payload
// protocol (JSON, request ids, ...) lives one layer up in
// service::Service. All methods are loop-thread only; cross-thread
// callers go through EventLoop::post.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "net/event_loop.hpp"
#include "net/framing.hpp"
#include "net/socket.hpp"

namespace kgdp::net {

struct FrameServerConfig {
  std::size_t max_frame = 1 << 20;  // bytes per frame, either direction
  // A connection whose unsent output exceeds this is dropped: a stalled
  // reader must not pin daemon memory while progress events stream.
  std::size_t max_write_buffer = 8u << 20;
  int listen_backlog = 64;
};

class FrameServer {
 public:
  // One complete inbound frame (without the newline).
  using FrameHandler =
      std::function<void(std::uint64_t conn, std::string frame)>;
  // Connection closed for any reason (peer EOF, abuse, close_* calls).
  using CloseHandler = std::function<void(std::uint64_t conn)>;
  // Protocol abuse detected by the transport (currently: frame over the
  // cap). The handler may send a final structured error; the server
  // flushes and closes the connection afterwards regardless.
  using AbuseHandler =
      std::function<void(std::uint64_t conn, const std::string& what)>;

  FrameServer(EventLoop& loop, FrameServerConfig config);
  ~FrameServer();

  void set_frame_handler(FrameHandler h) { on_frame_ = std::move(h); }
  void set_close_handler(CloseHandler h) { on_close_ = std::move(h); }
  void set_abuse_handler(AbuseHandler h) { on_abuse_ = std::move(h); }

  // Takes ownership of a listening socket from listen_endpoint().
  void add_listener(Fd fd);

  // Queues frame + '\n' on the connection; no-op on unknown ids (the
  // connection may have died between a worker starting and finishing).
  void send(std::uint64_t conn, const std::string& frame);

  // Closes once the write buffer drains (or immediately when empty).
  void close_after_flush(std::uint64_t conn);
  void close_now(std::uint64_t conn);

  // Drain helper: close_after_flush on every connection.
  void close_all_after_flush();

  // Stops accepting new connections (drain mode); existing connections
  // keep flowing.
  void stop_accepting();

  std::size_t connection_count() const { return conns_.size(); }
  bool accepting() const { return accepting_; }

 private:
  struct Connection {
    Fd fd;
    FrameReader reader;
    std::string out;
    std::size_t out_sent = 0;
    bool close_after_flush = false;
    bool dead = false;
    Connection(Fd f, std::size_t max_frame)
        : fd(std::move(f)), reader(max_frame) {}
  };

  void on_accept(std::size_t listener_index);
  void on_io(std::uint64_t conn_id, short revents);
  void update_poll_events(std::uint64_t conn_id, Connection& c);
  void destroy(std::uint64_t conn_id, bool notify);

  EventLoop& loop_;
  FrameServerConfig config_;
  std::vector<Fd> listeners_;
  std::map<std::uint64_t, std::unique_ptr<Connection>> conns_;
  std::uint64_t next_conn_id_ = 1;
  bool accepting_ = true;
  FrameHandler on_frame_;
  CloseHandler on_close_;
  AbuseHandler on_abuse_;
};

}  // namespace kgdp::net
