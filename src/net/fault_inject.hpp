// Deterministic network fault injection — the wire-layer sibling of
// util::FaultInjector. Every frame that crosses the NDJSON transport
// (client send, client receive, server send, server dispatch) is one
// intercepted *op*; the process-wide injector decides its fate. It is
// disarmed by default — one relaxed atomic load and a predicted branch
// per op — and can be armed two ways:
//
//  * programmatically (the fleet-chaos tests): `arm(spec)` sweeps one
//    fault across every send/recv site of the lease protocol, and the
//    suite asserts the merged verdict stays bit-identical — the wire
//    may lose, repeat, delay, or cut frames, but the epoch fence and
//    reconnect machinery must absorb all of it;
//  * via the environment (`KGDP_NET_FAULTS=seed:spec[,spec...]`), so
//    shell drills can run a whole campaign under a lossy wire.
//
// Spec grammar (comma-separated items after the decimal seed):
//   drop@N    swallow the Nth intercepted frame op (0-based): a sent
//             frame is silently not sent, a received frame is discarded
//   dup@N     the Nth op happens twice (frame sent or delivered twice)
//   stall@N   the Nth op is delayed by kStallMs before proceeding
//   sever@N   the connection carrying the Nth op is hard-closed
//   drop=P / dup=P / stall=P / sever=P
//             per-op probability in [0,1], drawn from the seeded rng
//
// All faults are deterministic given (seed, spec, op sequence), so a
// failing sweep reproduces from its log line. Call sites implement the
// action semantics; the injector only sequences and decides.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>

#include "util/rng.hpp"

namespace kgdp::net {

// What a call site must do with the current frame op.
enum class FaultAction { kNone, kDrop, kDup, kStall, kSever };
const char* to_string(FaultAction action);

struct FaultSpec {
  std::uint64_t seed = 1;
  // One-shot faults by 0-based intercepted-op index; -1 = never.
  std::int64_t drop_at = -1;
  std::int64_t dup_at = -1;
  std::int64_t stall_at = -1;
  std::int64_t sever_at = -1;
  // Per-op probabilities in [0, 1].
  double p_drop = 0.0;
  double p_dup = 0.0;
  double p_stall = 0.0;
  double p_sever = 0.0;

  // Parses "seed:spec[,spec...]" (the KGDP_NET_FAULTS grammar). Returns
  // nullopt on any malformed item.
  static std::optional<FaultSpec> parse(const std::string& text);
};

class FaultInjector {
 public:
  // How long a kStall op sleeps. Long enough to reorder frames against
  // heartbeat ticks, short enough that sweeping hundreds of ops stays
  // inside a test budget.
  static constexpr int kStallMs = 20;

  // Process-wide instance; the first call arms from KGDP_NET_FAULTS if
  // the variable is set and parses.
  static FaultInjector& instance();

  // (Re)arms with the given spec and resets the op counter and rng.
  void arm(const FaultSpec& spec);
  void disarm();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  // Intercepted ops since the last arm().
  std::uint64_t ops() const { return ops_.load(std::memory_order_relaxed); }

  // Decides the fate of one frame op, consuming one op index. Disarmed
  // it returns kNone without touching the counter.
  FaultAction next_action();

 private:
  FaultInjector() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> ops_{0};
  FaultSpec spec_;
  util::Rng rng_{1};
  std::mutex mu_;
};

}  // namespace kgdp::net
