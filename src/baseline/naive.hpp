// Naive baselines bracketing the design space:
//  * spare path — a bare linear array with k spare processors and
//    replicated terminals at the ends. Node-optimal, degree-3, and almost
//    totally fault-intolerant (any interior processor fault kills it).
//  * complete design — K_{n+k} on the processors with terminals spread
//    one per processor round-robin. Trivially k-gracefully-degradable but
//    with Θ((n+k)²) edges and processor degree n+k+1: what you pay when
//    you ignore degree-optimality.
#pragma once

#include "kgd/labeled_graph.hpp"

namespace kgdp::baseline {

kgd::SolutionGraph make_spare_path(int n, int k);
kgd::SolutionGraph make_complete_design(int n, int k);

}  // namespace kgdp::baseline
