// Baseline: a Diogenes-style bypass chain (after Rosenberg's Diogenes
// approach to fault-tolerant VLSI processor arrays, cited in §2). The
// Diogenes layout keeps processors on a line and uses bundled bypass
// wiring so the healthy processors can be stitched together in line
// order, skipping faulty ones. Graph-theoretically that is a path with
// chords of every length up to k+1 (any run of <= k consecutive faults
// can be hopped) and replicated terminals at both ends.
//
// The interesting comparison: this design IS gracefully degradable for
// processor faults by construction — but it pays processor degree up to
// 2(k+1)+1 where the paper's constructions achieve the optimal k+2, and
// its wiring grows as Θ(n·k) chords of physical length up to k+1 (the
// VLSI cost Diogenes hides in its bus bundles).
#pragma once

#include "kgd/labeled_graph.hpp"

namespace kgdp::baseline {

kgd::SolutionGraph make_bypass_chain(int n, int k);

// The max processor degree the bypass chain pays: interior processors
// see 2(k+1) chord neighbors plus possibly a terminal.
int bypass_chain_max_degree(int n, int k);

}  // namespace kgdp::baseline
