#include "baseline/hayes.hpp"

#include <cassert>

#include "graph/circulant.hpp"

namespace kgdp::baseline {

namespace {
std::vector<int> hayes_offsets(int n, int k) {
  std::vector<int> offs;
  for (int s = 1; s <= k / 2 + 1; ++s) offs.push_back(s);
  const int m = n + k;
  if (k % 2 == 1 && m % 2 == 0) offs.push_back(m / 2);
  return offs;
}
}  // namespace

graph::Graph make_hayes_cycle(int n, int k) {
  assert(n >= 3 && k >= 1);
  return graph::make_circulant(n + k, hayes_offsets(n, k));
}

int hayes_degree(int n, int k) {
  return graph::circulant_degree(n + k, hayes_offsets(n, k));
}

kgd::SolutionGraph make_hayes_pipeline_adaptation(int n, int k) {
  const graph::Graph core = make_hayes_cycle(n, k);
  const int P = core.num_nodes();
  assert(P >= 2 * (k + 1));
  kgd::SolutionGraphBuilder b(n, k, "hayes-adapted(" + std::to_string(n) +
                                        "," + std::to_string(k) + ")");
  for (int v = 0; v < P; ++v) b.add(kgd::Role::kProcessor);
  for (auto [u, v] : core.edges()) b.connect(u, v);
  for (int j = 0; j <= k; ++j) {
    b.connect(b.add(kgd::Role::kInput), j);
    b.connect(b.add(kgd::Role::kOutput), P - 1 - j);
  }
  return b.build();
}

}  // namespace kgdp::baseline
