#include "baseline/compare.hpp"

#include "baseline/hayes.hpp"
#include "fault/fault_model.hpp"
#include "graph/hamiltonian.hpp"
#include "util/rng.hpp"
#include "verify/pipeline_solver.hpp"

namespace kgdp::baseline {

DesignMetrics metrics_for(const kgd::SolutionGraph& sg) {
  DesignMetrics m;
  m.name = sg.name();
  m.nodes = sg.num_nodes();
  m.edges = sg.graph().num_edges();
  m.max_degree = sg.graph().max_degree();
  m.max_processor_degree = sg.max_processor_degree();
  m.node_optimal = sg.is_node_optimal();
  m.standard = sg.is_standard();
  return m;
}

std::vector<DegradationRow> degradation_profile(const kgd::SolutionGraph& sg,
                                                int max_faults, int samples,
                                                std::uint64_t seed) {
  util::Rng rng(seed);
  verify::PipelineSolver solver;
  std::vector<DegradationRow> rows;
  for (int f = 0; f <= max_faults; ++f) {
    DegradationRow row;
    row.faults = f;
    int ok = 0;
    double util_sum = 0.0;
    for (int s = 0; s < samples; ++s) {
      const kgd::FaultSet fs = fault::draw_faults(
          sg, f, fault::FaultPolicy::kUniform, rng);
      const auto out = solver.solve(sg, fs);
      if (out.status == verify::SolveStatus::kFound) {
        ++ok;
        util_sum += 1.0;  // a pipeline uses every healthy processor
      }
    }
    row.tolerated_fraction = static_cast<double>(ok) / samples;
    row.mean_utilization = util_sum / samples;
    rows.push_back(row);
  }
  return rows;
}

std::vector<DegradationRow> hayes_profile(int n, int k, int samples,
                                          std::uint64_t seed) {
  const graph::Graph core = make_hayes_cycle(n, k);
  const int P = core.num_nodes();
  util::Rng rng(seed);
  std::vector<DegradationRow> rows;
  for (int f = 0; f <= k; ++f) {
    DegradationRow row;
    row.faults = f;
    int ok = 0;
    double util_sum = 0.0;
    for (int s = 0; s < samples; ++s) {
      const std::vector<int> faulty = rng.sample_without_replacement(P, f);
      util::DynamicBitset keep(P, true);
      for (int v : faulty) keep.reset(v);
      const graph::Graph sub = core.induced_subgraph(keep);
      // Hayes success: the survivor graph contains a spanning-enough
      // cycle; we test for a Hamiltonian *path* of the survivors as the
      // generous interpretation (any n-subset cycle implies nothing about
      // using all healthy nodes, which is exactly the baseline's limit).
      util::DynamicBitset all(sub.num_nodes(), true);
      const auto res = graph::hamiltonian_path(sub, all, all);
      const int healthy = P - f;
      if (res.status == graph::HamResult::kFound) {
        ++ok;
        util_sum += 1.0;
      } else {
        // Hayes still guarantees an n-node cycle: capped utilization.
        util_sum += static_cast<double>(n) / healthy;
      }
    }
    row.tolerated_fraction = static_cast<double>(ok) / samples;
    row.mean_utilization = util_sum / samples;
    rows.push_back(row);
  }
  return rows;
}

}  // namespace kgdp::baseline
