#include "baseline/naive.hpp"

#include <cassert>

namespace kgdp::baseline {

using kgd::Role;
using kgd::SolutionGraphBuilder;

kgd::SolutionGraph make_spare_path(int n, int k) {
  assert(n >= 1 && k >= 1);
  const int P = n + k;
  SolutionGraphBuilder b(n, k, "spare-path(" + std::to_string(n) + "," +
                                   std::to_string(k) + ")");
  std::vector<kgd::Node> p;
  for (int v = 0; v < P; ++v) p.push_back(b.add(Role::kProcessor));
  for (int v = 0; v + 1 < P; ++v) b.connect(p[v], p[v + 1]);
  for (int j = 0; j <= k; ++j) {
    b.connect(b.add(Role::kInput), p[0]);
    b.connect(b.add(Role::kOutput), p[P - 1]);
  }
  return b.build();
}

kgd::SolutionGraph make_complete_design(int n, int k) {
  assert(n >= 1 && k >= 1);
  const int P = n + k;
  SolutionGraphBuilder b(n, k, "complete(" + std::to_string(n) + "," +
                                   std::to_string(k) + ")");
  std::vector<kgd::Node> p;
  for (int v = 0; v < P; ++v) p.push_back(b.add(Role::kProcessor));
  for (int i = 0; i < P; ++i) {
    for (int j = i + 1; j < P; ++j) b.connect(p[i], p[j]);
  }
  for (int j = 0; j <= k; ++j) {
    b.connect(b.add(Role::kInput), p[j % P]);
    b.connect(b.add(Role::kOutput), p[(P - 1 - j % P + P) % P]);
  }
  return b.build();
}

}  // namespace kgdp::baseline
