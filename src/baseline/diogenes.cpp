#include "baseline/diogenes.hpp"

#include <algorithm>
#include <cassert>

namespace kgdp::baseline {

using kgd::Role;

kgd::SolutionGraph make_bypass_chain(int n, int k) {
  assert(n >= 1 && k >= 1);
  const int P = n + k;
  kgd::SolutionGraphBuilder b(n, k, "bypass-chain(" + std::to_string(n) +
                                        "," + std::to_string(k) + ")");
  std::vector<kgd::Node> p;
  for (int v = 0; v < P; ++v) p.push_back(b.add(Role::kProcessor));
  // Chords of every length 1..k+1: a run of up to k faulty processors
  // can be bypassed in line order.
  for (int i = 0; i < P; ++i) {
    for (int len = 1; len <= k + 1 && i + len < P; ++len) {
      b.connect(p[i], p[i + len]);
    }
  }
  // Terminals: one input on each of the first k+1 processors, one output
  // on each of the last k+1 (they overlap when P < 2(k+1)).
  for (int j = 0; j <= k; ++j) {
    b.connect(b.add(Role::kInput), p[std::min(j, P - 1)]);
    b.connect(b.add(Role::kOutput), p[std::max(P - 1 - j, 0)]);
  }
  return b.build();
}

int bypass_chain_max_degree(int n, int k) {
  const kgd::SolutionGraph sg = make_bypass_chain(n, k);
  return sg.max_processor_degree();
}

}  // namespace kgdp::baseline
