// Baseline: Hayes's k-fault-tolerant cycle architecture (IEEE ToC 1976),
// the closest prior art the paper compares its processor core against —
// §3.4 notes the circulant core "is a supergraph of Hayes's construction
// with the same maximum degree". A Hayes graph guarantees an n-node cycle
// survives any <= k node faults, but (a) it is unlabeled (no I/O
// terminals) and (b) it uses only n of the surviving nodes — it degrades
// to a fixed size instead of gracefully using every healthy processor.
#pragma once

#include "graph/graph.hpp"
#include "kgd/labeled_graph.hpp"

namespace kgdp::baseline {

// Hayes's k-FT realisation of the n-cycle: circulant on n+k nodes with
// offsets {1, ..., ⌊k/2⌋+1}, plus the bisector offset (n+k)/2 when k is
// odd and n+k is even.
graph::Graph make_hayes_cycle(int n, int k);

// Degree of every node in make_hayes_cycle(n, k).
int hayes_degree(int n, int k);

// Adapts the Hayes graph into the labeled pipeline model the fairest way
// possible: attach k+1 input terminals and k+1 output terminals to 2k+2
// distinct consecutive nodes. Used as the negative control — it is NOT
// k-gracefully-degradable and the checker finds counterexamples.
kgd::SolutionGraph make_hayes_pipeline_adaptation(int n, int k);

}  // namespace kgdp::baseline
