// Comparison harness: static cost metrics and dynamic degradation
// profiles for the paper's construction vs the baselines.
#pragma once

#include <string>
#include <vector>

#include "kgd/labeled_graph.hpp"

namespace kgdp::baseline {

struct DesignMetrics {
  std::string name;
  int nodes = 0;
  std::size_t edges = 0;
  int max_degree = 0;            // over all nodes
  int max_processor_degree = 0;  // the paper's optimality metric
  bool node_optimal = false;
  bool standard = false;
};

DesignMetrics metrics_for(const kgd::SolutionGraph& sg);

// For each fault count f = 0..max_faults: draw `samples` random fault
// sets of exactly f nodes and report the fraction tolerated (a pipeline
// through ALL healthy processors exists) and the mean processor
// utilization (healthy processors on the pipeline / healthy processors;
// 0 when no pipeline exists).
struct DegradationRow {
  int faults = 0;
  double tolerated_fraction = 0.0;
  double mean_utilization = 0.0;
};

std::vector<DegradationRow> degradation_profile(const kgd::SolutionGraph& sg,
                                                int max_faults, int samples,
                                                std::uint64_t seed);

// Same, but for an unlabeled structure judged by Hayes's own success
// criterion: after the faults, does an n-node cycle survive? We report
// its *utilization* ceiling n / healthy instead, since by design it never
// uses more than n nodes.
std::vector<DegradationRow> hayes_profile(int n, int k, int samples,
                                          std::uint64_t seed);

}  // namespace kgdp::baseline
