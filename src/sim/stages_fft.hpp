// Spectral stage: windowed radix-2 FFT magnitude analyzer — the kind of
// frequency-domain stage real-time audio/video pipelines interleave with
// the FIR/IIR stages the paper's introduction names.
#pragma once

#include <complex>

#include "sim/stage.hpp"

namespace kgdp::sim {

// In-place iterative radix-2 Cooley–Tukey. `data.size()` must be a power
// of two. Exposed for testing and reuse.
void fft_radix2(std::vector<std::complex<double>>& data, bool inverse);

class SpectrumAnalyzer final : public Stage {
 public:
  // Buffers `window` samples (power of two); for each full window emits
  // the one-sided magnitude spectrum (window/2 values, bin b =
  // |X_b| * 2/window so a unit sine at bin b reads ~1.0).
  explicit SpectrumAnalyzer(int window);

  std::string name() const override { return "spectrum"; }
  double cost_per_sample() const override;
  Chunk process(const Chunk& in) override;
  void reset() override { buffer_.clear(); }
  std::unique_ptr<Stage> clone() const override;

 private:
  int window_;
  std::vector<Sample> buffer_;
};

}  // namespace kgdp::sim
