// Threaded pipeline execution: one worker per stage connected by bounded
// queues — the software analogue of the hardware pipeline the paper
// targets. Output is identical to sequential execution (stages are
// deterministic and order-preserving); the test suite asserts this.
#pragma once

#include <condition_variable>
#include <mutex>
#include <optional>
#include <queue>

#include "sim/stage.hpp"

namespace kgdp::sim {

// Single-producer single-consumer bounded channel of chunks; closing the
// channel releases blocked consumers with nullopt.
class ChunkChannel {
 public:
  explicit ChunkChannel(std::size_t capacity) : capacity_(capacity) {}

  void push(Chunk chunk);
  std::optional<Chunk> pop();
  void close();

 private:
  std::size_t capacity_;
  std::queue<Chunk> q_;
  bool closed_ = false;
  std::mutex mu_;
  std::condition_variable cv_push_;
  std::condition_variable cv_pop_;
};

class ThreadedPipelineRunner {
 public:
  explicit ThreadedPipelineRunner(StageList stages,
                                  std::size_t queue_capacity = 8);

  // Runs all input chunks through the pipeline and returns the outputs in
  // order. Spawns one thread per stage for the duration of the call.
  std::vector<Chunk> run(const std::vector<Chunk>& inputs);

 private:
  StageList stages_;
  std::size_t queue_capacity_;
};

}  // namespace kgdp::sim
