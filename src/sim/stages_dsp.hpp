// Concrete DSP stages: the workloads named in the paper's introduction
// (§1: subsampling, rescaling, FIR and IIR filtering, textual-
// substitution-style compression). All stages are deterministic and keep
// explicit state so fault-and-remap runs can be compared bit-for-bit
// against a fault-free reference.
#pragma once

#include <cstdint>

#include "sim/stage.hpp"

namespace kgdp::sim {

class PassThrough final : public Stage {
 public:
  std::string name() const override { return "passthrough"; }
  double cost_per_sample() const override { return 0.1; }
  Chunk process(const Chunk& in) override { return in; }
  std::unique_ptr<Stage> clone() const override {
    return std::make_unique<PassThrough>();
  }
};

// Finite impulse response filter, direct form, stateful across chunks.
class FirFilter final : public Stage {
 public:
  explicit FirFilter(std::vector<double> taps);
  std::string name() const override { return "fir"; }
  double cost_per_sample() const override {
    return static_cast<double>(taps_.size());
  }
  Chunk process(const Chunk& in) override;
  void reset() override;
  std::unique_ptr<Stage> clone() const override;

 private:
  std::vector<double> taps_;
  std::vector<double> history_;  // last taps_.size()-1 inputs
};

// Biquad IIR section (direct form II transposed).
class IirBiquad final : public Stage {
 public:
  IirBiquad(double b0, double b1, double b2, double a1, double a2);
  std::string name() const override { return "iir"; }
  double cost_per_sample() const override { return 5.0; }
  Chunk process(const Chunk& in) override;
  void reset() override;
  std::unique_ptr<Stage> clone() const override;

 private:
  double b0_, b1_, b2_, a1_, a2_;
  double z1_ = 0.0, z2_ = 0.0;
};

// Keep every `factor`-th sample (phase persists across chunks).
class Subsample final : public Stage {
 public:
  explicit Subsample(int factor);
  std::string name() const override { return "subsample"; }
  double cost_per_sample() const override { return 0.5; }
  Chunk process(const Chunk& in) override;
  void reset() override;
  std::unique_ptr<Stage> clone() const override;

 private:
  int factor_;
  int phase_ = 0;
};

// Affine rescale y = gain * x + offset.
class Rescale final : public Stage {
 public:
  Rescale(double gain, double offset);
  std::string name() const override { return "rescale"; }
  double cost_per_sample() const override { return 1.0; }
  Chunk process(const Chunk& in) override;
  std::unique_ptr<Stage> clone() const override;

 private:
  double gain_, offset_;
};

// Uniform quantizer to `levels` levels over [lo, hi].
class Quantize final : public Stage {
 public:
  Quantize(int levels, double lo, double hi);
  std::string name() const override { return "quantize"; }
  double cost_per_sample() const override { return 1.5; }
  Chunk process(const Chunk& in) override;
  std::unique_ptr<Stage> clone() const override;

 private:
  int levels_;
  double lo_, hi_;
};

// Delta encoder (simple predictive compression front end; stand-in for
// the textual-substitution compressors of [19, 22]).
class DeltaEncode final : public Stage {
 public:
  std::string name() const override { return "delta"; }
  double cost_per_sample() const override { return 2.0; }
  Chunk process(const Chunk& in) override;
  void reset() override { prev_ = 0.0f; }
  std::unique_ptr<Stage> clone() const override;

 private:
  Sample prev_ = 0.0f;
};

// A ready-made video-style pipeline: FIR low-pass, 2:1 subsample,
// rescale, quantize, delta encode. `stages_hint` pads with passthrough
// stages to reach at least that many stages (for mapping experiments).
StageList make_video_pipeline(int stages_hint = 0);

// Deterministic synthetic source signal.
Chunk make_test_signal(std::size_t samples, std::uint64_t seed);

}  // namespace kgdp::sim
