#include "sim/stages_image.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numbers>

namespace kgdp::sim {

HoughTransform::HoughTransform(int width, int height, int theta_bins,
                               int peaks)
    : width_(width), height_(height), theta_bins_(theta_bins),
      peaks_(peaks) {
  assert(width >= 1 && height >= 1 && theta_bins >= 1 && peaks >= 1);
  const int diag = static_cast<int>(
      std::ceil(std::hypot(width - 1, height - 1)));
  rho_offset_ = diag;
  rho_bins_ = 2 * diag + 1;
  cos_.resize(theta_bins_);
  sin_.resize(theta_bins_);
  for (int t = 0; t < theta_bins_; ++t) {
    const double theta = std::numbers::pi * t / theta_bins_;
    cos_[t] = std::cos(theta);
    sin_[t] = std::sin(theta);
  }
  acc_.assign(static_cast<std::size_t>(theta_bins_) * rho_bins_, 0);
}

void HoughTransform::vote(int x, int y) {
  for (int t = 0; t < theta_bins_; ++t) {
    const double rho = x * cos_[t] + y * sin_[t];
    const int r = static_cast<int>(std::lround(rho)) + rho_offset_;
    if (r >= 0 && r < rho_bins_) {
      ++acc_[static_cast<std::size_t>(t) * rho_bins_ + r];
    }
  }
}

void HoughTransform::emit_peaks(Chunk& out) {
  // Top `peaks_` accumulator cells, by votes then (theta, rho) for
  // determinism.
  std::vector<std::size_t> idx(acc_.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  const int take = std::min<std::size_t>(peaks_, idx.size());
  std::partial_sort(idx.begin(), idx.begin() + take, idx.end(),
                    [&](std::size_t a, std::size_t b) {
                      if (acc_[a] != acc_[b]) return acc_[a] > acc_[b];
                      return a < b;
                    });
  for (int p = 0; p < take; ++p) {
    const std::size_t i = idx[p];
    out.push_back(static_cast<Sample>(i / rho_bins_));           // theta
    out.push_back(static_cast<Sample>(i % rho_bins_));           // rho
    out.push_back(static_cast<Sample>(acc_[i]));                 // votes
  }
  std::fill(acc_.begin(), acc_.end(), 0);
}

Chunk HoughTransform::process(const Chunk& in) {
  Chunk out;
  const long image_pixels = static_cast<long>(width_) * height_;
  for (Sample s : in) {
    if (s > 0.5f) {
      const int x = static_cast<int>(cursor_ % width_);
      const int y = static_cast<int>(cursor_ / width_);
      vote(x, y);
    }
    if (++cursor_ == image_pixels) {
      emit_peaks(out);
      cursor_ = 0;
    }
  }
  return out;
}

void HoughTransform::reset() {
  cursor_ = 0;
  std::fill(acc_.begin(), acc_.end(), 0);
}

std::unique_ptr<Stage> HoughTransform::clone() const {
  auto c = std::make_unique<HoughTransform>(width_, height_, theta_bins_,
                                            peaks_);
  c->acc_ = acc_;
  c->cursor_ = cursor_;
  return c;
}

Chunk make_blank_image(int width, int height) {
  return Chunk(static_cast<std::size_t>(width) * height, 0.0f);
}

Chunk make_line_image(int width, int height, int x0, int y0, int x1,
                      int y1) {
  Chunk img = make_blank_image(width, height);
  // Bresenham.
  int dx = std::abs(x1 - x0), dy = -std::abs(y1 - y0);
  int sx = x0 < x1 ? 1 : -1, sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  int x = x0, y = y0;
  while (true) {
    if (x >= 0 && x < width && y >= 0 && y < height) {
      img[static_cast<std::size_t>(y) * width + x] = 1.0f;
    }
    if (x == x1 && y == y1) break;
    const int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y += sy;
    }
  }
  return img;
}

}  // namespace kgdp::sim
