#include "sim/stages_fft.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace kgdp::sim {

void fft_radix2(std::vector<std::complex<double>>& data, bool inverse) {
  const std::size_t n = data.size();
  assert(n > 0 && (n & (n - 1)) == 0 && "size must be a power of two");

  // Bit-reversal permutation.
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }

  for (std::size_t len = 2; len <= n; len <<= 1) {
    const double angle =
        (inverse ? 2.0 : -2.0) * std::numbers::pi / static_cast<double>(len);
    const std::complex<double> wlen(std::cos(angle), std::sin(angle));
    for (std::size_t i = 0; i < n; i += len) {
      std::complex<double> w(1.0, 0.0);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const std::complex<double> u = data[i + j];
        const std::complex<double> v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    for (auto& x : data) x /= static_cast<double>(n);
  }
}

SpectrumAnalyzer::SpectrumAnalyzer(int window) : window_(window) {
  assert(window >= 2 && (window & (window - 1)) == 0);
  buffer_.reserve(window);
}

double SpectrumAnalyzer::cost_per_sample() const {
  // FFT is O(W log W) per window of W samples -> O(log W) per sample.
  return std::log2(static_cast<double>(window_)) + 1.0;
}

Chunk SpectrumAnalyzer::process(const Chunk& in) {
  Chunk out;
  for (Sample s : in) {
    buffer_.push_back(s);
    if (static_cast<int>(buffer_.size()) == window_) {
      std::vector<std::complex<double>> data(buffer_.begin(),
                                             buffer_.end());
      fft_radix2(data, /*inverse=*/false);
      for (int b = 0; b < window_ / 2; ++b) {
        out.push_back(static_cast<Sample>(std::abs(data[b]) * 2.0 /
                                          window_));
      }
      buffer_.clear();
    }
  }
  return out;
}

std::unique_ptr<Stage> SpectrumAnalyzer::clone() const {
  auto c = std::make_unique<SpectrumAnalyzer>(window_);
  c->buffer_ = buffer_;
  return c;
}

}  // namespace kgdp::sim
