#include "sim/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <vector>

#include "util/rng.hpp"
#include "verify/pipeline_solver.hpp"

namespace kgdp::sim {

namespace {

struct Event {
  double time;
  enum class Kind { kFault, kRepair } kind;
  int node;  // repair target; unused for fault arrivals
  bool operator>(const Event& o) const { return time > o.time; }
};

}  // namespace

CampaignResult run_availability_campaign(const kgd::SolutionGraph& sg,
                                         const CampaignConfig& config) {
  util::Rng rng(config.seed);
  verify::PipelineSolver solver;
  CampaignResult result;

  const int total_nodes = sg.num_nodes();
  const int total_procs = sg.num_processors();
  std::vector<bool> faulty(total_nodes, false);
  int faulty_count = 0;

  auto current_faults = [&] {
    std::vector<int> nodes;
    for (int v = 0; v < total_nodes; ++v) {
      if (faulty[v]) nodes.push_back(v);
    }
    return kgd::FaultSet(total_nodes, std::move(nodes));
  };

  auto exponential = [&](double rate_per_cycle) {
    // Inverse-CDF sampling; rng.next_double() < 1 so log() is finite.
    return -std::log(1.0 - rng.next_double()) / rate_per_cycle;
  };
  const double fault_rate = config.faults_per_mcycle / 1e6;

  std::priority_queue<Event, std::vector<Event>, std::greater<>> events;
  events.push({exponential(fault_rate), Event::Kind::kFault, -1});

  double now = 0.0;
  bool live = true;
  double live_since = 0.0;
  double down_since = 0.0;
  double live_time = 0.0;
  double util_integral = 0.0;  // ∫ procs-in-service dt
  int procs_in_service = total_procs;

  auto reconfigure = [&](double at) {
    const auto out = solver.solve(sg, current_faults());
    ++result.reconfigurations;
    const bool now_live = out.status == verify::SolveStatus::kFound;
    if (live && !now_live) {
      live_time += at - live_since;
      down_since = at;
      ++result.outages;
    } else if (!live && now_live) {
      result.worst_outage_cycles =
          std::max(result.worst_outage_cycles, at - down_since);
      live_since = at;
    } else if (live && now_live) {
      live_time += at - live_since;
      live_since = at;
    }
    live = now_live;
    procs_in_service = now_live ? out.pipeline->num_processors() : 0;
  };

  while (!events.empty() && events.top().time < config.horizon_cycles) {
    const Event ev = events.top();
    events.pop();
    const double dt = ev.time - now;
    if (live) util_integral += procs_in_service * dt;
    now = ev.time;

    if (ev.kind == Event::Kind::kFault) {
      // Next arrival first, then apply this one.
      events.push({now + exponential(fault_rate), Event::Kind::kFault, -1});
      if (faulty_count < total_nodes) {
        // Choose a healthy victim uniformly.
        int idx = static_cast<int>(
            rng.next_below(total_nodes - faulty_count));
        int victim = -1;
        for (int v = 0; v < total_nodes; ++v) {
          if (!faulty[v] && idx-- == 0) {
            victim = v;
            break;
          }
        }
        faulty[victim] = true;
        ++faulty_count;
        ++result.faults_injected;
        events.push({now + config.repair_cycles, Event::Kind::kRepair,
                     victim});
        reconfigure(now);
      }
    } else {
      faulty[ev.node] = false;
      --faulty_count;
      ++result.repairs_completed;
      reconfigure(now);
    }
  }

  // Close the books at the horizon.
  const double dt = config.horizon_cycles - now;
  if (live) {
    util_integral += procs_in_service * dt;
    live_time += config.horizon_cycles - live_since;
  } else {
    result.worst_outage_cycles = std::max(
        result.worst_outage_cycles, config.horizon_cycles - down_since);
  }
  result.availability = live_time / config.horizon_cycles;
  result.mean_utilization =
      util_integral / (config.horizon_cycles * total_procs);
  return result;
}

}  // namespace kgdp::sim
