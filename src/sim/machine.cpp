#include "sim/machine.hpp"

#include <algorithm>
#include <cassert>

#include "verify/pipeline_solver.hpp"

namespace kgdp::sim {

PipelineMachine::PipelineMachine(kgd::SolutionGraph sg, StageList stages,
                                 MachineConfig cfg)
    : sg_(std::move(sg)), stages_(std::move(stages)), cfg_(cfg),
      faults_(sg_.num_nodes(), {}) {
  assert(!stages_.empty());
  reconfigure();
}

bool PipelineMachine::inject_fault(kgd::Node v) {
  assert(v >= 0 && v < sg_.num_nodes());
  if (faults_.contains(v)) return false;
  faulty_nodes_.push_back(v);
  faults_ = kgd::FaultSet(sg_.num_nodes(), faulty_nodes_);
  pipeline_.reset();  // stale mapping
  return true;
}

bool PipelineMachine::reconfigure() {
  const auto out = verify::find_pipeline(sg_, faults_);
  if (out.status != verify::SolveStatus::kFound) {
    pipeline_.reset();
    return false;
  }
  pipeline_ = out.pipeline;
  ++stats_.reconfigurations;
  remap();
  return true;
}

namespace {

// Contiguous partition of `costs` into `blocks` parts minimizing the
// maximum part sum (binary search on the bottleneck + greedy check).
std::vector<PipelineMachine::StageBlock> balanced_partition(
    const std::vector<double>& costs, int blocks) {
  const int s = static_cast<int>(costs.size());
  assert(blocks >= 1 && blocks <= s);
  double lo = 0.0, total = 0.0;
  for (double c : costs) {
    lo = std::max(lo, c);
    total += c;
  }
  double hi = total;
  auto blocks_needed = [&](double cap) {
    int used = 1;
    double acc = 0.0;
    for (double c : costs) {
      if (acc + c > cap) {
        ++used;
        acc = 0.0;
      }
      acc += c;
    }
    return used;
  };
  for (int iter = 0; iter < 50; ++iter) {
    const double mid = (lo + hi) / 2;
    if (blocks_needed(mid) <= blocks) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  // Materialize the greedy split at capacity hi, then pad trailing empty
  // blocks if the greedy used fewer.
  std::vector<PipelineMachine::StageBlock> out;
  int begin = 0;
  double acc = 0.0;
  for (int i = 0; i < s; ++i) {
    if (acc + costs[i] > hi && i > begin &&
        static_cast<int>(out.size()) + 1 < blocks) {
      out.emplace_back(begin, i);
      begin = i;
      acc = 0.0;
    }
    acc += costs[i];
  }
  out.emplace_back(begin, s);
  return out;
}

}  // namespace

void PipelineMachine::remap() {
  // Interior positions 1..q-1 of the pipeline are processors. With
  // enough of them each stage gets its own (plus passthrough padding);
  // with fewer, contiguous stages fuse onto shared processors.
  const int interior = pipeline_->num_processors();
  const int s_count = static_cast<int>(stages_.size());
  assignment_.assign(interior, {0, 0});
  if (interior >= s_count) {
    for (int s = 0; s < s_count; ++s) assignment_[s] = {s, s + 1};
  } else {
    std::vector<double> costs;
    costs.reserve(s_count);
    for (const auto& st : stages_) costs.push_back(st->cost_per_sample());
    const auto blocks = balanced_partition(costs, interior);
    for (std::size_t pos = 0; pos < blocks.size(); ++pos) {
      assignment_[pos] = blocks[pos];
    }
  }

  // Recompute steady-state metrics for the new mapping.
  stats_.busiest_stage_cost = cfg_.passthrough_cost;
  double latency = 0.0;
  for (int pos = 0; pos < interior; ++pos) {
    double cost = 0.0;
    for (int s = assignment_[pos].first; s < assignment_[pos].second; ++s) {
      cost += stages_[s]->cost_per_sample();
    }
    if (cost == 0.0) cost = cfg_.passthrough_cost;
    stats_.busiest_stage_cost = std::max(stats_.busiest_stage_cost, cost);
    latency += cost;
  }
  latency += (interior + 1) * cfg_.hop_latency_cycles;  // links incl. I/O
  stats_.pipeline_latency_cycles = latency;
}

Chunk PipelineMachine::process(const Chunk& input) {
  assert(operational());
  stats_.samples_in += input.size();
  Chunk cur = input;
  for (int pos = 0; pos < pipeline_->num_processors(); ++pos) {
    for (int s = assignment_[pos].first; s < assignment_[pos].second; ++s) {
      cur = stages_[s]->process(cur);
    }
  }
  stats_.samples_out += cur.size();
  return cur;
}

void PipelineMachine::reset_stream() {
  for (auto& s : stages_) s->reset();
  stats_.samples_in = stats_.samples_out = 0;
}

}  // namespace kgdp::sim
