// Processing-stage abstraction for the pipeline machine simulator. The
// paper motivates gracefully degradable pipelines with streaming DSP
// workloads (subsampling, rescaling, FIR/IIR filtering, compression);
// stages model exactly that: chunk-in/chunk-out transforms with a
// simulated per-sample compute cost.
#pragma once

#include <memory>
#include <string>
#include <vector>

namespace kgdp::sim {

using Sample = float;
using Chunk = std::vector<Sample>;

class Stage {
 public:
  virtual ~Stage() = default;

  virtual std::string name() const = 0;

  // Simulated compute cost, in machine cycles per *input* sample.
  virtual double cost_per_sample() const = 0;

  // Transform one chunk. Stages may keep state across chunks (filters,
  // decimators); reset() restarts the stream.
  virtual Chunk process(const Chunk& in) = 0;
  virtual void reset() {}

  virtual std::unique_ptr<Stage> clone() const = 0;
};

using StageList = std::vector<std::unique_ptr<Stage>>;

StageList clone_stages(const StageList& stages);

// Applies the stages in order on a single thread (reference semantics for
// the machine simulator and the threaded runner to be checked against).
Chunk run_sequential(StageList& stages, const Chunk& input);

}  // namespace kgdp::sim
