// Image-domain stage: a streaming Hough transform. The paper's §1 cites
// pipelined Hough/Radon transform architectures for image and CT
// processing [1] as a motivating workload; this stage reproduces that
// shape — a compute-heavy, stateful stage consuming scanline-ordered
// binary edge images and emitting, per completed image, its strongest
// line candidates.
#pragma once

#include "sim/stage.hpp"

namespace kgdp::sim {

class HoughTransform final : public Stage {
 public:
  // Images are width x height, streamed in scanline order; any sample
  // > 0.5 counts as an edge pixel. theta_bins discretize [0, pi); for
  // each completed image the stage emits `peaks` triples
  // (theta_index, rho_index, votes) flattened into the output chunk.
  HoughTransform(int width, int height, int theta_bins, int peaks);

  std::string name() const override { return "hough"; }
  double cost_per_sample() const override {
    return static_cast<double>(theta_bins_);
  }
  Chunk process(const Chunk& in) override;
  void reset() override;
  std::unique_ptr<Stage> clone() const override;

  int rho_bins() const { return rho_bins_; }

 private:
  void vote(int x, int y);
  void emit_peaks(Chunk& out);

  int width_;
  int height_;
  int theta_bins_;
  int peaks_;
  int rho_offset_;  // rho index shift so negative rho maps to >= 0
  int rho_bins_;
  std::vector<double> cos_;
  std::vector<double> sin_;
  std::vector<std::uint32_t> acc_;  // theta-major accumulator
  long cursor_ = 0;                 // pixels consumed of current image
};

// Synthetic test images (scanline order, 1.0 = edge pixel).
Chunk make_line_image(int width, int height, int x0, int y0, int x1,
                      int y1);
Chunk make_blank_image(int width, int height);

}  // namespace kgdp::sim
