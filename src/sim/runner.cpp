#include "sim/runner.hpp"

#include <thread>

namespace kgdp::sim {

void ChunkChannel::push(Chunk chunk) {
  std::unique_lock lk(mu_);
  cv_push_.wait(lk, [this] { return q_.size() < capacity_ || closed_; });
  if (closed_) return;  // dropping into a closed channel is a no-op
  q_.push(std::move(chunk));
  cv_pop_.notify_one();
}

std::optional<Chunk> ChunkChannel::pop() {
  std::unique_lock lk(mu_);
  cv_pop_.wait(lk, [this] { return !q_.empty() || closed_; });
  if (q_.empty()) return std::nullopt;
  Chunk c = std::move(q_.front());
  q_.pop();
  cv_push_.notify_one();
  return c;
}

void ChunkChannel::close() {
  std::lock_guard lk(mu_);
  closed_ = true;
  cv_pop_.notify_all();
  cv_push_.notify_all();
}

ThreadedPipelineRunner::ThreadedPipelineRunner(StageList stages,
                                               std::size_t queue_capacity)
    : stages_(std::move(stages)), queue_capacity_(queue_capacity) {}

std::vector<Chunk> ThreadedPipelineRunner::run(
    const std::vector<Chunk>& inputs) {
  const std::size_t s_count = stages_.size();
  if (s_count == 0) return inputs;

  // channels[i] feeds stage i; channels[s_count] carries final output.
  std::vector<std::unique_ptr<ChunkChannel>> channels;
  for (std::size_t i = 0; i <= s_count; ++i) {
    channels.push_back(std::make_unique<ChunkChannel>(queue_capacity_));
  }

  std::vector<std::thread> workers;
  workers.reserve(s_count);
  for (std::size_t i = 0; i < s_count; ++i) {
    workers.emplace_back([this, i, &channels] {
      while (auto chunk = channels[i]->pop()) {
        channels[i + 1]->push(stages_[i]->process(std::move(*chunk)));
      }
      channels[i + 1]->close();
    });
  }

  // Producer: feed inputs, then close.
  std::thread producer([this, &channels, &inputs] {
    for (const Chunk& c : inputs) channels[0]->push(c);
    channels[0]->close();
  });

  std::vector<Chunk> outputs;
  outputs.reserve(inputs.size());
  while (auto chunk = channels[s_count]->pop()) {
    outputs.push_back(std::move(*chunk));
  }

  producer.join();
  for (auto& w : workers) w.join();
  return outputs;
}

}  // namespace kgdp::sim
