#include "sim/stages_dsp.hpp"

#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace kgdp::sim {

FirFilter::FirFilter(std::vector<double> taps) : taps_(std::move(taps)) {
  assert(!taps_.empty());
  history_.assign(taps_.size() - 1, 0.0);
}

Chunk FirFilter::process(const Chunk& in) {
  Chunk out;
  out.reserve(in.size());
  for (Sample x : in) {
    double acc = taps_[0] * x;
    for (std::size_t t = 1; t < taps_.size(); ++t) {
      acc += taps_[t] * history_[history_.size() - t];
    }
    // Shift history (small filters; O(taps) is the simulated cost too).
    if (!history_.empty()) {
      history_.erase(history_.begin());
      history_.push_back(x);
    }
    out.push_back(static_cast<Sample>(acc));
  }
  return out;
}

void FirFilter::reset() { history_.assign(taps_.size() - 1, 0.0); }

std::unique_ptr<Stage> FirFilter::clone() const {
  return std::make_unique<FirFilter>(taps_);
}

IirBiquad::IirBiquad(double b0, double b1, double b2, double a1, double a2)
    : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

Chunk IirBiquad::process(const Chunk& in) {
  Chunk out;
  out.reserve(in.size());
  for (Sample x : in) {
    const double y = b0_ * x + z1_;
    z1_ = b1_ * x - a1_ * y + z2_;
    z2_ = b2_ * x - a2_ * y;
    out.push_back(static_cast<Sample>(y));
  }
  return out;
}

void IirBiquad::reset() { z1_ = z2_ = 0.0; }

std::unique_ptr<Stage> IirBiquad::clone() const {
  return std::make_unique<IirBiquad>(b0_, b1_, b2_, a1_, a2_);
}

Subsample::Subsample(int factor) : factor_(factor) { assert(factor >= 1); }

Chunk Subsample::process(const Chunk& in) {
  Chunk out;
  out.reserve(in.size() / factor_ + 1);
  for (Sample x : in) {
    if (phase_ == 0) out.push_back(x);
    phase_ = (phase_ + 1) % factor_;
  }
  return out;
}

void Subsample::reset() { phase_ = 0; }

std::unique_ptr<Stage> Subsample::clone() const {
  return std::make_unique<Subsample>(factor_);
}

Rescale::Rescale(double gain, double offset) : gain_(gain), offset_(offset) {}

Chunk Rescale::process(const Chunk& in) {
  Chunk out;
  out.reserve(in.size());
  for (Sample x : in) {
    out.push_back(static_cast<Sample>(gain_ * x + offset_));
  }
  return out;
}

std::unique_ptr<Stage> Rescale::clone() const {
  return std::make_unique<Rescale>(gain_, offset_);
}

Quantize::Quantize(int levels, double lo, double hi)
    : levels_(levels), lo_(lo), hi_(hi) {
  assert(levels >= 2 && hi > lo);
}

Chunk Quantize::process(const Chunk& in) {
  Chunk out;
  out.reserve(in.size());
  const double step = (hi_ - lo_) / (levels_ - 1);
  for (Sample x : in) {
    double q = std::round((static_cast<double>(x) - lo_) / step);
    if (q < 0) q = 0;
    if (q > levels_ - 1) q = levels_ - 1;
    out.push_back(static_cast<Sample>(lo_ + q * step));
  }
  return out;
}

std::unique_ptr<Stage> Quantize::clone() const {
  return std::make_unique<Quantize>(levels_, lo_, hi_);
}

Chunk DeltaEncode::process(const Chunk& in) {
  Chunk out;
  out.reserve(in.size());
  for (Sample x : in) {
    out.push_back(x - prev_);
    prev_ = x;
  }
  return out;
}

std::unique_ptr<Stage> DeltaEncode::clone() const {
  auto c = std::make_unique<DeltaEncode>();
  c->prev_ = prev_;
  return c;
}

StageList make_video_pipeline(int stages_hint) {
  StageList stages;
  stages.push_back(std::make_unique<FirFilter>(
      std::vector<double>{0.25, 0.5, 0.25}));  // low-pass before decimation
  stages.push_back(std::make_unique<Subsample>(2));
  stages.push_back(std::make_unique<Rescale>(0.5, 0.1));
  stages.push_back(std::make_unique<Quantize>(64, -2.0, 2.0));
  stages.push_back(std::make_unique<DeltaEncode>());
  while (static_cast<int>(stages.size()) < stages_hint) {
    stages.push_back(std::make_unique<PassThrough>());
  }
  return stages;
}

Chunk make_test_signal(std::size_t samples, std::uint64_t seed) {
  util::Rng rng(seed);
  Chunk out;
  out.reserve(samples);
  for (std::size_t i = 0; i < samples; ++i) {
    const double t = static_cast<double>(i);
    const double clean =
        std::sin(t * 0.05) + 0.4 * std::sin(t * 0.31 + 1.0);
    const double noise = (rng.next_double() - 0.5) * 0.2;
    out.push_back(static_cast<Sample>(clean + noise));
  }
  return out;
}

}  // namespace kgdp::sim
