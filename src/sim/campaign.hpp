// Availability campaign: a long-horizon discrete-event simulation of a
// pipeline machine under a continuous fault/repair process. This is the
// systems question graceful degradation exists to answer — how much
// uptime and processor utilization does a k-GD interconnect buy compared
// with designs that strand or lose capacity — and what the paper's model
// never evaluates directly.
#pragma once

#include <cstdint>

#include "kgd/labeled_graph.hpp"

namespace kgdp::sim {

struct CampaignConfig {
  // Poisson fault arrivals: expected faults per 1e6 cycles (whole
  // machine). Faults strike healthy nodes uniformly.
  double faults_per_mcycle = 50.0;
  // Deterministic repair time per node, cycles.
  double repair_cycles = 200000.0;
  double horizon_cycles = 10e6;
  std::uint64_t seed = 1;
};

struct CampaignResult {
  double availability = 0.0;        // time-fraction with a live pipeline
  double mean_utilization = 0.0;    // healthy procs in service / total
                                    // procs, time-averaged
  int faults_injected = 0;
  int repairs_completed = 0;
  int reconfigurations = 0;
  int outages = 0;                  // transitions live -> dead
  double worst_outage_cycles = 0.0;
};

// Runs the campaign on a copy of the graph. Deterministic for a fixed
// config (including seed).
CampaignResult run_availability_campaign(const kgd::SolutionGraph& sg,
                                         const CampaignConfig& config);

}  // namespace kgdp::sim
