// The pipeline machine: a simulated parallel computer whose interconnect
// is a k-gracefully-degradable solution graph. Stages are mapped in order
// onto the current pipeline's processors (identity padding on the rest);
// node faults trigger reconfiguration, which finds a new pipeline through
// every remaining healthy processor. Stream output is deterministic, so a
// faulted-and-remapped run can be compared sample-for-sample against a
// fault-free reference.
#pragma once

#include <optional>

#include "kgd/labeled_graph.hpp"
#include "kgd/pipeline.hpp"
#include "sim/stage.hpp"

namespace kgdp::sim {

struct MachineConfig {
  double hop_latency_cycles = 10.0;      // per inter-processor link
  double passthrough_cost = 0.1;         // cycles/sample on unmapped nodes
};

class PipelineMachine {
 public:
  // Takes ownership of the stage list. When the pipeline has at least as
  // many processors as stages, each stage gets its own processor (the
  // rest pass through); when faults leave fewer processors than stages,
  // contiguous stages are FUSED onto shared processors, balanced by
  // cost, so the machine stays operational down to a single processor.
  PipelineMachine(kgd::SolutionGraph sg, StageList stages,
                  MachineConfig cfg = {});

  const kgd::SolutionGraph& solution_graph() const { return sg_; }
  const kgd::FaultSet& faults() const { return faults_; }
  int fault_count() const { return faults_.size(); }

  // Marks a node faulty; returns false if it already was. The machine
  // becomes non-operational until reconfigure() succeeds.
  bool inject_fault(kgd::Node v);

  // Finds a pipeline through all healthy processors and remaps stages.
  // Returns false when no pipeline exists (fault budget exceeded).
  bool reconfigure();

  bool operational() const { return pipeline_.has_value(); }
  const kgd::Pipeline& pipeline() const { return *pipeline_; }

  // Per pipeline position: the [first, last) range of stage indices it
  // runs; an empty range means passthrough.
  using StageBlock = std::pair<int, int>;
  const std::vector<StageBlock>& stage_assignment() const {
    return assignment_;
  }

  // Processes a chunk through the mapped pipeline, updating simulated-
  // time statistics. Requires operational().
  Chunk process(const Chunk& input);

  struct Stats {
    std::size_t samples_in = 0;
    std::size_t samples_out = 0;
    double busiest_stage_cost = 0.0;  // cycles/sample at the bottleneck
    double pipeline_latency_cycles = 0.0;
    int reconfigurations = 0;
    // Steady-state throughput in samples per kilocycle.
    double throughput() const {
      return busiest_stage_cost > 0 ? 1000.0 / busiest_stage_cost : 0.0;
    }
  };
  const Stats& stats() const { return stats_; }

  void reset_stream();

 private:
  void remap();

  kgd::SolutionGraph sg_;
  StageList stages_;
  MachineConfig cfg_;
  std::vector<kgd::Node> faulty_nodes_;
  kgd::FaultSet faults_;
  std::optional<kgd::Pipeline> pipeline_;
  std::vector<StageBlock> assignment_;
  Stats stats_;
};

}  // namespace kgdp::sim
