#include "sim/stage.hpp"

namespace kgdp::sim {

StageList clone_stages(const StageList& stages) {
  StageList out;
  out.reserve(stages.size());
  for (const auto& s : stages) out.push_back(s->clone());
  return out;
}

Chunk run_sequential(StageList& stages, const Chunk& input) {
  Chunk cur = input;
  for (auto& s : stages) cur = s->process(cur);
  return cur;
}

}  // namespace kgdp::sim
