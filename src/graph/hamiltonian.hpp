// Exact Hamiltonian-path solving with endpoint-set constraints.
//
// A pipeline in G \ F is exactly a Hamiltonian path of the healthy
// processor subgraph whose first node lies in A (processors adjacent to a
// healthy input terminal) and whose last node lies in B (output side), so
// this solver is the verification workhorse of the library.
//
// Strategy: depth-first search with strong pruning — remaining-graph
// connectivity, forced-terminal detection, isolated-node rejection and a
// fewest-options-first successor order. With no node budget the search is
// exhaustive and therefore exact. With a budget it may give up
// (Result::kUnknown); callers fall back to the O(2^n · n) Held–Karp
// dynamic program, which is exact for n <= kDpMaxNodes.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "graph/graph.hpp"
#include "util/bitset.hpp"

namespace kgdp::graph {

struct HamiltonianOptions {
  // Maximum DFS expansions before giving up; 0 means run to completion
  // (exact). The exhaustive checker uses a budget plus the DP fallback.
  std::uint64_t dfs_budget = 0;
  // Largest node count for which the DP fallback may be used.
  int dp_max_nodes = 22;
};

enum class HamResult { kFound, kNone, kUnknown };

struct HamPath {
  HamResult status = HamResult::kUnknown;
  std::vector<Node> path;  // nonempty iff status == kFound
};

// Finds a Hamiltonian path of `g` with first node in `starts` and last
// node in `ends`. A single-node graph needs its node in both sets.
// `starts`/`ends` must have size g.num_nodes().
HamPath hamiltonian_path(const Graph& g, const util::DynamicBitset& starts,
                         const util::DynamicBitset& ends,
                         const HamiltonianOptions& opts = {});

// Reusable solver: keeps scratch buffers across calls so that the
// exhaustive fault sweep does not allocate per fault set.
class HamiltonianSolver {
 public:
  explicit HamiltonianSolver(HamiltonianOptions opts = {}) : opts_(opts) {}

  HamPath solve(const Graph& g, const util::DynamicBitset& starts,
                const util::DynamicBitset& ends);

  // Total DFS expansions across all calls (for the scaling bench).
  std::uint64_t expansions() const { return expansions_total_; }

 private:
  void set_tie_break(int n, std::uint64_t seed);
  HamResult dfs_small(int v, std::uint64_t rem, std::uint64_t ends,
                      std::uint64_t budget_left);
  HamPath solve_small(const Graph& g, std::uint64_t starts,
                      std::uint64_t ends);
  HamPath solve_dp(const Graph& g, std::uint64_t starts, std::uint64_t ends);
  HamPath solve_large(const Graph& g, const util::DynamicBitset& starts,
                      const util::DynamicBitset& ends);

  HamiltonianOptions opts_;
  // Small-graph (n <= 64) state.
  std::vector<std::uint64_t> adj64_;
  std::vector<std::uint32_t> prio_;  // per-pass tie-break perturbation
  std::vector<Node> stack_;
  std::uint64_t expansions_ = 0;
  std::uint64_t expansions_total_ = 0;
  bool budget_hit_ = false;
};

}  // namespace kgdp::graph
