// Exact Hamiltonian-path solving with endpoint-set constraints.
//
// A pipeline in G \ F is exactly a Hamiltonian path of the healthy
// processor subgraph whose first node lies in A (processors adjacent to a
// healthy input terminal) and whose last node lies in B (output side), so
// this solver is the verification workhorse of the library.
//
// Strategy: depth-first search with strong pruning — remaining-graph
// connectivity, forced-terminal detection, isolated-node rejection and a
// fewest-options-first successor order. With no node budget the search is
// exhaustive and therefore exact. With a budget it may give up
// (Result::kUnknown); callers fall back to the O(2^n · n) Held–Karp
// dynamic program, which is exact for n <= kDpMaxNodes.
//
// Two entry points share the same <=64-node mask engine: solve() takes a
// graph::Graph (building the word-per-node adjacency on entry), while
// solve_masked() takes prebuilt adjacency rows plus an `allowed` subset
// and searches directly in the original id space — the zero-allocation
// hot path of the exhaustive fault sweep, which would otherwise pay an
// induced-subgraph copy per fault set.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/bitset.hpp"

namespace kgdp::graph {

struct HamiltonianOptions {
  // Maximum DFS expansions before giving up; 0 means run to completion
  // (exact). The exhaustive checker uses a budget plus the DP fallback.
  std::uint64_t dfs_budget = 0;
  // Largest node count for which the DP fallback may be used.
  int dp_max_nodes = 22;
};

enum class HamResult { kFound, kNone, kUnknown };

struct HamPath {
  HamResult status = HamResult::kUnknown;
  std::vector<Node> path;  // nonempty iff status == kFound
};

// Finds a Hamiltonian path of `g` with first node in `starts` and last
// node in `ends`. A single-node graph needs its node in both sets.
// `starts`/`ends` must have size g.num_nodes().
HamPath hamiltonian_path(const Graph& g, const util::DynamicBitset& starts,
                         const util::DynamicBitset& ends,
                         const HamiltonianOptions& opts = {});

// Reusable solver: keeps scratch buffers across calls so that the
// exhaustive fault sweep does not allocate per fault set.
class HamiltonianSolver {
 public:
  explicit HamiltonianSolver(HamiltonianOptions opts = {}) : opts_(opts) {}

  HamPath solve(const Graph& g, const util::DynamicBitset& starts,
                const util::DynamicBitset& ends);

  // Masked variant: searches the subgraph induced by `allowed` inside a
  // universe of adj_rows.size() <= 64 nodes whose adjacency is one word
  // per node (graph::BitAdjacency::rows64() has this shape; rows need not
  // be pre-masked). starts/ends are masks in the same id space. Node ids
  // are not remapped: on kFound the path — in original ids — is exposed
  // through masked_path() and stays valid until the next call. Allocates
  // nothing once scratch has warmed up (the DP fallback, reached only
  // when a DFS budget is exhausted, may grow its table).
  HamResult solve_masked(std::span<const std::uint64_t> adj_rows,
                         std::uint64_t allowed, std::uint64_t starts,
                         std::uint64_t ends);
  std::span<const Node> masked_path() const { return stack_; }

  // Heuristic positive-instance engine: a seeded greedy walk with random
  // rotations (min-degree extension biased away from end-capable nodes,
  // Pósa rotations on dead ends, endpoint spin-rotations preferring
  // pivots whose successor lies in `ends`). Never proves absence — it
  // returns true with a certified-shape path in masked_path(), or false,
  // in which case callers fall back to the exact solve_masked(). The
  // walk is deterministic in (rows, allowed, starts, ends, seed), so
  // verdict streams stay independent of batching and thread schedule.
  // Allocation-free: fixed 64-entry scratch, path copied into stack_.
  //
  // `first_start` >= 0 supplies the restart-0 start node precomputed by
  // a batch setup kernel (the lowest bit of `starts` after masking);
  // the walk would derive the same node itself, so passing it only
  // moves the endpoint selection into the lane-parallel phase. -1 keeps
  // the scalar derivation.
  bool walk_masked(std::span<const std::uint64_t> adj_rows,
                   std::uint64_t allowed, std::uint64_t starts,
                   std::uint64_t ends, std::uint64_t seed,
                   int first_start = -1);

  // Total DFS expansions across all calls (for the scaling bench and the
  // solver perf-counter layer).
  std::uint64_t expansions() const { return expansions_total_; }

  // Bytes retained by the reusable scratch buffers (solver gauge).
  std::size_t scratch_bytes() const {
    return adj64_.capacity() * sizeof(std::uint64_t) +
           prio_.capacity() * sizeof(std::uint32_t) +
           stack_.capacity() * sizeof(Node) +
           start_order_.capacity() * sizeof(int) +
           posa_pos_.capacity() * sizeof(int) +
           posa_pool_.capacity() * sizeof(int) +
           dp_reach_.capacity() * sizeof(std::uint32_t);
  }

 private:
  void set_tie_break(int n, std::uint64_t seed);
  HamResult dfs_small(int v, std::uint64_t rem, std::uint64_t ends,
                      std::uint64_t budget_left);
  // Shared <=64-node engine; adj64_ must already hold the (masked)
  // adjacency rows for the full id space. Leaves the path in stack_.
  HamResult solve_mask_core(int n_all, std::uint64_t allowed,
                            std::uint64_t starts, std::uint64_t ends);
  HamResult solve_dp_masked(std::uint64_t allowed, std::uint64_t starts,
                            std::uint64_t ends);
  bool posa_masked(std::uint64_t allowed, std::uint64_t starts,
                   std::uint64_t ends, std::uint64_t seed,
                   std::uint64_t max_steps);
  HamPath solve_large(const Graph& g, const util::DynamicBitset& starts,
                      const util::DynamicBitset& ends);

  HamiltonianOptions opts_;
  // Small-graph (n <= 64) state. All scratch: sized on first use, reused
  // across calls. The engine reads adjacency through `rows_`, which
  // points either at the caller's prebuilt rows (solve_masked — no copy)
  // or at adj64_ (solve builds it from the Graph). Rows are raw: every
  // read site masks with the relevant node subset.
  const std::uint64_t* rows_ = nullptr;
  int n_all_ = 0;  // id-space size behind rows_
  std::vector<std::uint64_t> adj64_;
  std::vector<std::uint32_t> prio_;  // per-pass tie-break perturbation
  int prio_zero_n_ = 0;  // prio_[0..n) known all-zero (skip re-clearing)
  std::vector<Node> stack_;
  std::vector<int> start_order_;
  std::vector<int> posa_pos_;
  std::vector<int> posa_pool_;
  std::vector<std::uint32_t> dp_reach_;  // Held–Karp table (cold path)
  int walk_pos_[64];   // node -> path position (-1 off-path)
  Node walk_path_[64];
  std::uint64_t expansions_ = 0;
  std::uint64_t expansions_total_ = 0;
};

}  // namespace kgdp::graph
