// Graph isomorphism for small graphs (<= ~16 nodes), with optional node
// colouring so that labeled solution graphs are compared role-for-role.
// Used by the uniqueness tests for Lemmas 3.7 / 3.9 and by the special
// solution synthesizer's deduplication.
#pragma once

#include <optional>
#include <vector>

#include "graph/graph.hpp"

namespace kgdp::graph {

// Returns a mapping m (m[u_in_a] = v_in_b) witnessing an isomorphism, or
// nullopt. When `color_a`/`color_b` are provided (size = node count),
// mapped nodes must have equal colours.
std::optional<std::vector<Node>> find_isomorphism(
    const Graph& a, const Graph& b,
    const std::vector<int>* color_a = nullptr,
    const std::vector<int>* color_b = nullptr);

bool are_isomorphic(const Graph& a, const Graph& b,
                    const std::vector<int>* color_a = nullptr,
                    const std::vector<int>* color_b = nullptr);

}  // namespace kgdp::graph
