// Circulant graphs (Elspas & Turner 1970): node i is adjacent to node j
// iff j ≡ i ± s (mod m) for some offset s in S. The §3.4 asymptotic
// construction's processor core C = S ∪ R is a circulant with offsets
// {1, …, ⌊k/2⌋+1} plus a bisector offset ⌊m/2⌋ when k is odd.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace kgdp::graph {

// Builds the circulant graph with `m` nodes and the given offsets.
// Offsets are taken modulo m; offset 0 and duplicates (s and m-s denote
// the same chord class) are collapsed. m >= 1.
Graph make_circulant(int m, const std::vector<int>& offsets);

// Degree every node of circulant(m, offsets) has: 2 per chord class,
// except a class with s == m/2 (the bisector) which contributes 1.
int circulant_degree(int m, const std::vector<int>& offsets);

// True iff circulant(m, offsets) is connected, i.e. gcd(m, offsets) == 1.
bool circulant_connected(int m, const std::vector<int>& offsets);

}  // namespace kgdp::graph
