#include "graph/bit_adjacency.hpp"

#include <bit>
#include <cstdint>

namespace kgdp::graph {

void BitAdjacency::rebuild(const Graph& g) {
  n_ = g.num_nodes();
  const int words_per_row = n_ == 0 ? 1 : (n_ + 63) / 64;
  // One word per row for the <=64 fast path; otherwise rows padded to a
  // cache line (8 words) so no row spans more lines than it needs.
  stride_ = words_per_row == 1 ? 1 : ((words_per_row + 7) / 8) * 8;
  const std::size_t need =
      static_cast<std::size_t>(n_) * static_cast<std::size_t>(stride_);
  // +7 words of slack lets us align the base pointer to 64 bytes without
  // a custom allocator.
  if (words_.size() < need + 7) words_.resize(need + 7);
  auto addr = reinterpret_cast<std::uintptr_t>(words_.data());
  const std::uintptr_t aligned = (addr + 63) & ~std::uintptr_t{63};
  base_ = words_.data() + (aligned - addr) / sizeof(std::uint64_t);

  for (std::size_t i = 0; i < need; ++i) base_[i] = 0;
  for (Node u = 0; u < n_; ++u) {
    std::uint64_t* row = base_ + static_cast<std::size_t>(u) * stride_;
    for (Node v : g.neighbors(u)) {
      row[v / 64] |= std::uint64_t{1} << (v % 64);
    }
  }
}

int BitAdjacency::degree(Node u) const {
  int d = 0;
  for (std::uint64_t w : row(u)) d += std::popcount(w);
  return d;
}

}  // namespace kgdp::graph
