// Undirected simple graph with contiguous integer node ids and sorted
// adjacency lists. This is the substrate every construction and solver in
// the library is built on. Node removal is expressed as induced subgraphs
// (the solution graphs themselves are immutable once built).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "util/bitset.hpp"

namespace kgdp::graph {

using Node = int;
using Edge = std::pair<Node, Node>;

class Graph {
 public:
  Graph() = default;
  explicit Graph(int num_nodes) : adj_(num_nodes) {}

  int num_nodes() const { return static_cast<int>(adj_.size()); }
  std::size_t num_edges() const { return num_edges_; }

  // Appends an isolated node, returning its id.
  Node add_node();
  void add_nodes(int count);

  // Inserts edge {u, v}. Self-loops and duplicates are rejected with
  // an assertion in debug builds and ignored in release builds (the
  // constructions never generate them; the synthesizer checks first).
  void add_edge(Node u, Node v);

  // True iff the edge can be added (distinct endpoints, not present).
  bool can_add_edge(Node u, Node v) const;
  void remove_edge(Node u, Node v);

  bool has_edge(Node u, Node v) const;
  int degree(Node u) const { return static_cast<int>(adj_[u].size()); }
  std::span<const Node> neighbors(Node u) const { return adj_[u]; }

  int max_degree() const;
  int min_degree() const;
  std::vector<int> degree_sequence() const;  // sorted descending

  std::vector<Edge> edges() const;  // each edge once, u < v

  // Induced subgraph on the nodes where keep[v] is true. If `mapping` is
  // non-null it receives old-id -> new-id (-1 for dropped nodes).
  Graph induced_subgraph(const util::DynamicBitset& keep,
                         std::vector<Node>* mapping = nullptr) const;

  bool operator==(const Graph& o) const { return adj_ == o.adj_; }

 private:
  std::vector<std::vector<Node>> adj_;  // sorted ascending
  std::size_t num_edges_ = 0;
};

// Builds a graph from an explicit edge list over `num_nodes` nodes.
Graph from_edges(int num_nodes, const std::vector<Edge>& edges);

// Path graph a0-a1-...-a_{q-1} over q nodes; Cycle likewise.
Graph make_path(int q);
Graph make_cycle(int q);
Graph make_complete(int q);

}  // namespace kgdp::graph
