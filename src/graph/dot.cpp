#include "graph/dot.hpp"

#include <sstream>

namespace kgdp::graph {

std::string to_dot(const Graph& g, const std::string& graph_name,
                   const std::vector<std::string>* names,
                   const std::vector<std::string>* colors) {
  std::ostringstream os;
  os << "graph " << graph_name << " {\n";
  os << "  node [shape=circle fontsize=10];\n";
  for (Node v = 0; v < g.num_nodes(); ++v) {
    os << "  n" << v << " [label=\""
       << (names ? (*names)[v] : std::to_string(v)) << "\"";
    if (colors) os << " style=filled fillcolor=\"" << (*colors)[v] << "\"";
    os << "];\n";
  }
  for (auto [u, v] : g.edges()) {
    os << "  n" << u << " -- n" << v << ";\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace kgdp::graph
