#include "graph/isomorphism.hpp"

#include <algorithm>
#include <cassert>

namespace kgdp::graph {

namespace {

// Backtracking matcher in VF2 spirit: extend a partial mapping node by
// node, maintaining adjacency consistency with already-mapped nodes.
class Matcher {
 public:
  Matcher(const Graph& a, const Graph& b, const std::vector<int>* ca,
          const std::vector<int>* cb)
      : a_(a), b_(b), ca_(ca), cb_(cb), map_a_(a.num_nodes(), -1),
        map_b_(b.num_nodes(), -1) {
    // Match high-degree nodes first: fail fast.
    order_.resize(a.num_nodes());
    for (int i = 0; i < a.num_nodes(); ++i) order_[i] = i;
    std::sort(order_.begin(), order_.end(), [&](Node x, Node y) {
      return a.degree(x) > a.degree(y);
    });
  }

  std::optional<std::vector<Node>> run() {
    if (extend(0)) return map_a_;
    return std::nullopt;
  }

 private:
  bool feasible(Node u, Node v) const {
    if (a_.degree(u) != b_.degree(v)) return false;
    if (ca_ && (*ca_)[u] != (*cb_)[v]) return false;
    // Edges to already-mapped nodes must correspond both ways.
    for (Node w : a_.neighbors(u)) {
      if (map_a_[w] >= 0 && !b_.has_edge(v, map_a_[w])) return false;
    }
    for (Node x : b_.neighbors(v)) {
      if (map_b_[x] >= 0 && !a_.has_edge(u, map_b_[x])) return false;
    }
    return true;
  }

  bool extend(std::size_t depth) {
    if (depth == order_.size()) return true;
    const Node u = order_[depth];
    for (Node v = 0; v < b_.num_nodes(); ++v) {
      if (map_b_[v] >= 0 || !feasible(u, v)) continue;
      map_a_[u] = v;
      map_b_[v] = u;
      if (extend(depth + 1)) return true;
      map_a_[u] = -1;
      map_b_[v] = -1;
    }
    return false;
  }

  const Graph& a_;
  const Graph& b_;
  const std::vector<int>* ca_;
  const std::vector<int>* cb_;
  std::vector<Node> map_a_;
  std::vector<Node> map_b_;
  std::vector<Node> order_;
};

}  // namespace

std::optional<std::vector<Node>> find_isomorphism(
    const Graph& a, const Graph& b, const std::vector<int>* color_a,
    const std::vector<int>* color_b) {
  if (a.num_nodes() != b.num_nodes() || a.num_edges() != b.num_edges()) {
    return std::nullopt;
  }
  if (a.degree_sequence() != b.degree_sequence()) return std::nullopt;
  assert((color_a == nullptr) == (color_b == nullptr));
  return Matcher(a, b, color_a, color_b).run();
}

bool are_isomorphic(const Graph& a, const Graph& b,
                    const std::vector<int>* color_a,
                    const std::vector<int>* color_b) {
  return find_isomorphism(a, b, color_a, color_b).has_value();
}

}  // namespace kgdp::graph
