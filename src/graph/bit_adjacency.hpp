// Flat bitset-CSR adjacency view: one row of uint64 words per node, all
// rows in a single cache-aligned allocation. Built once per graph and
// read millions of times by the solver hot path, where the sorted
// std::span<const Node> adjacency lists of graph::Graph would cost a
// pointer chase plus a branch per neighbor; here neighbor filtering,
// degree counting and dead-end detection are word-parallel AND/popcount.
//
// For graphs with at most 64 nodes (every instance within exhaustive
// certification reach) a row is a single word and rows64() exposes the
// whole table as a contiguous span — the representation consumed by
// HamiltonianSolver::solve_masked and the PipelineSolver fast path. The
// table then spans at most eight cache lines, so per-row padding would
// only hurt; larger graphs pad each row to a 64-byte multiple instead so
// no row straddles a cache line it does not have to.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace kgdp::graph {

class BitAdjacency {
 public:
  BitAdjacency() = default;
  explicit BitAdjacency(const Graph& g) { rebuild(g); }

  // Rebuilds the view for `g`, reusing the existing allocation when it is
  // large enough (the solver rebinds without touching the heap).
  void rebuild(const Graph& g);

  int num_nodes() const { return n_; }
  // Words per row (1 when num_nodes() <= 64).
  int row_words() const { return stride_; }

  std::span<const std::uint64_t> row(Node v) const {
    return {base_ + static_cast<std::size_t>(v) * stride_,
            static_cast<std::size_t>(stride_)};
  }

  // Single-word row; only valid when num_nodes() <= 64.
  std::uint64_t row64(Node v) const { return base_[v]; }

  // The whole table as one span of single-word rows (row_words() == 1).
  std::span<const std::uint64_t> rows64() const {
    return {base_, static_cast<std::size_t>(n_)};
  }

  bool test(Node u, Node v) const {
    return (base_[static_cast<std::size_t>(u) * stride_ + v / 64] >>
            (v % 64)) &
           1u;
  }

  int degree(Node u) const;

  // Bytes retained by the table (for the solver scratch gauge).
  std::size_t scratch_bytes() const {
    return words_.capacity() * sizeof(std::uint64_t);
  }

 private:
  int n_ = 0;
  int stride_ = 0;
  std::vector<std::uint64_t> words_;  // over-allocated for alignment
  std::uint64_t* base_ = nullptr;     // 64-byte-aligned start
};

}  // namespace kgdp::graph
