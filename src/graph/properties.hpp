// Structural graph predicates used by the lower-bound checks, the
// synthesizer's pruning and the test suite.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace kgdp::graph {

bool is_connected(const Graph& g);

// Connected components; comp[v] in [0, count).
int connected_components(const Graph& g, std::vector<int>* comp = nullptr);

// Articulation points (cut vertices) via Tarjan lowlink.
std::vector<Node> articulation_points(const Graph& g);

// True iff `path` is a simple path of g visiting each of its nodes once
// and every consecutive pair is an edge.
bool is_simple_path(const Graph& g, const std::vector<Node>& path);

// True iff `path` is a Hamiltonian path of g.
bool is_hamiltonian_path(const Graph& g, const std::vector<Node>& path);

// True iff the graph has no self-loops or duplicate edges (by
// construction Graph maintains this; the check exists for imported data).
bool is_simple(const Graph& g);

}  // namespace kgdp::graph
