#include "graph/circulant.hpp"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <set>

namespace kgdp::graph {

namespace {
// Normalise offsets to chord classes in [1, m/2].
std::set<int> chord_classes(int m, const std::vector<int>& offsets) {
  std::set<int> classes;
  for (int s : offsets) {
    int r = ((s % m) + m) % m;
    if (r == 0) continue;
    classes.insert(std::min(r, m - r));
  }
  return classes;
}
}  // namespace

Graph make_circulant(int m, const std::vector<int>& offsets) {
  assert(m >= 1);
  Graph g(m);
  for (int s : chord_classes(m, offsets)) {
    for (int i = 0; i < m; ++i) {
      const int j = (i + s) % m;
      if (!g.has_edge(i, j) && i != j) g.add_edge(i, j);
    }
  }
  return g;
}

int circulant_degree(int m, const std::vector<int>& offsets) {
  int d = 0;
  for (int s : chord_classes(m, offsets)) {
    d += (2 * s == m) ? 1 : 2;
  }
  return d;
}

bool circulant_connected(int m, const std::vector<int>& offsets) {
  int g = m;
  for (int s : chord_classes(m, offsets)) g = std::gcd(g, s);
  return g == 1;
}

}  // namespace kgdp::graph
