// Label-respecting automorphism groups. The §3.2–3.3 constructions are
// highly symmetric (cliques, clique-minus-matching, circulant cores), so
// the exhaustive GD checker can solve one fault set per orbit of the
// automorphism group and multiply by the orbit size. This module computes
// the group: colour refinement (1-WL) narrows the candidate images, a
// backtracking search enumerates every colour-preserving automorphism,
// and a stabilizer-chain transversal is extracted as a small strong
// generating set for downstream orbit computations.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "kgd/labeled_graph.hpp"

namespace kgdp::graph {

// A permutation of node ids: perm[u] is the image of u.
using Permutation = std::vector<Node>;

struct AutomorphismList {
  // Strong generating set (identity excluded). Empty iff the group is
  // trivial or the search was truncated.
  std::vector<Permutation> generators;
  // |Aut(G)| when `complete`, otherwise the number of elements seen
  // before the cap hit (a lower bound, not the order).
  std::uint64_t order = 1;
  // False when the enumeration stopped at AutomorphismOptions::
  // max_elements; consumers must then treat the group as unusable.
  bool complete = true;

  bool usable() const { return complete && !generators.empty(); }
};

struct AutomorphismOptions {
  // Abort past this many elements (protects against near-complete
  // graphs whose group approaches n!). The search costs O(order · n) on
  // symmetric instances, so the cap also bounds time.
  std::uint64_t max_elements = 1u << 16;
};

// Every colour-preserving automorphism of `g`. `colors` (size = node
// count) restricts images to equal colours; nullptr = uncoloured.
AutomorphismList find_automorphisms(const Graph& g,
                                    const std::vector<int>* colors = nullptr,
                                    const AutomorphismOptions& opts = {});

// Label-respecting subgroup for a solution graph: automorphisms that
// preserve every node's role (input / output / processor). These are
// exactly the symmetries under which GD(G,k) fault orbits collapse.
AutomorphismList solution_automorphisms(const kgd::SolutionGraph& sg,
                                        const AutomorphismOptions& opts = {});

// True iff `perm` is a colour-preserving automorphism of `g` (used by
// tests and debug assertions).
bool is_automorphism(const Graph& g, const Permutation& perm,
                     const std::vector<int>* colors = nullptr);

}  // namespace kgdp::graph
