#include "graph/graph.hpp"

#include <algorithm>
#include <cassert>

namespace kgdp::graph {

Node Graph::add_node() {
  adj_.emplace_back();
  return static_cast<Node>(adj_.size()) - 1;
}

void Graph::add_nodes(int count) {
  assert(count >= 0);
  adj_.resize(adj_.size() + static_cast<std::size_t>(count));
}

bool Graph::can_add_edge(Node u, Node v) const {
  return u != v && u >= 0 && v >= 0 && u < num_nodes() && v < num_nodes() &&
         !has_edge(u, v);
}

void Graph::add_edge(Node u, Node v) {
  assert(can_add_edge(u, v));
  if (!can_add_edge(u, v)) return;
  auto insert_sorted = [](std::vector<Node>& list, Node x) {
    list.insert(std::upper_bound(list.begin(), list.end(), x), x);
  };
  insert_sorted(adj_[u], v);
  insert_sorted(adj_[v], u);
  ++num_edges_;
}

void Graph::remove_edge(Node u, Node v) {
  assert(has_edge(u, v));
  auto erase_sorted = [](std::vector<Node>& list, Node x) {
    auto it = std::lower_bound(list.begin(), list.end(), x);
    if (it != list.end() && *it == x) list.erase(it);
  };
  erase_sorted(adj_[u], v);
  erase_sorted(adj_[v], u);
  --num_edges_;
}

bool Graph::has_edge(Node u, Node v) const {
  if (u < 0 || v < 0 || u >= num_nodes() || v >= num_nodes()) return false;
  const auto& list = adj_[u];
  return std::binary_search(list.begin(), list.end(), v);
}

int Graph::max_degree() const {
  int d = 0;
  for (const auto& list : adj_) d = std::max(d, static_cast<int>(list.size()));
  return d;
}

int Graph::min_degree() const {
  if (adj_.empty()) return 0;
  int d = static_cast<int>(adj_[0].size());
  for (const auto& list : adj_) d = std::min(d, static_cast<int>(list.size()));
  return d;
}

std::vector<int> Graph::degree_sequence() const {
  std::vector<int> seq;
  seq.reserve(adj_.size());
  for (const auto& list : adj_) seq.push_back(static_cast<int>(list.size()));
  std::sort(seq.rbegin(), seq.rend());
  return seq;
}

std::vector<Edge> Graph::edges() const {
  std::vector<Edge> out;
  out.reserve(num_edges_);
  for (Node u = 0; u < num_nodes(); ++u) {
    for (Node v : adj_[u]) {
      if (u < v) out.emplace_back(u, v);
    }
  }
  return out;
}

Graph Graph::induced_subgraph(const util::DynamicBitset& keep,
                              std::vector<Node>* mapping) const {
  assert(static_cast<int>(keep.size()) == num_nodes());
  std::vector<Node> map(num_nodes(), -1);
  int next = 0;
  for (Node v = 0; v < num_nodes(); ++v) {
    if (keep.test(v)) map[v] = next++;
  }
  Graph sub(next);
  for (Node u = 0; u < num_nodes(); ++u) {
    if (map[u] < 0) continue;
    for (Node v : adj_[u]) {
      if (u < v && map[v] >= 0) sub.add_edge(map[u], map[v]);
    }
  }
  if (mapping) *mapping = std::move(map);
  return sub;
}

Graph from_edges(int num_nodes, const std::vector<Edge>& edges) {
  Graph g(num_nodes);
  for (auto [u, v] : edges) g.add_edge(u, v);
  return g;
}

Graph make_path(int q) {
  Graph g(q);
  for (int i = 0; i + 1 < q; ++i) g.add_edge(i, i + 1);
  return g;
}

Graph make_cycle(int q) {
  Graph g = make_path(q);
  if (q >= 3) g.add_edge(q - 1, 0);
  return g;
}

Graph make_complete(int q) {
  Graph g(q);
  for (int i = 0; i < q; ++i) {
    for (int j = i + 1; j < q; ++j) g.add_edge(i, j);
  }
  return g;
}

}  // namespace kgdp::graph
