#include "graph/hamiltonian.hpp"

#include "util/rng.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#if defined(__BMI2__)
#include <immintrin.h>
#endif

namespace kgdp::graph {

namespace {

// Pósa-rotation heuristic: grow a path from a fixed start; when the
// endpoint has no unvisited neighbor, "rotate" — pick an on-path
// neighbor w of the endpoint and reverse the suffix after w, which makes
// w's old successor the new endpoint. With random choices this converges
// fast on dense/expander-like graphs (our solution graphs qualify), and
// it is immune to the deep-backtrack traps that stall a Warnsdorff DFS.
// Returns a full path with first node in `starts` and last in `ends`, or
// nullopt if the step cap runs out. Never proves absence. This is the
// >64-node variant; the mask engine has its own allocation-free port
// (HamiltonianSolver::posa_masked) with the identical search sequence.
std::optional<std::vector<Node>> posa_search(const Graph& g,
                                             const util::DynamicBitset& starts,
                                             const util::DynamicBitset& ends,
                                             std::uint64_t seed,
                                             std::uint64_t max_steps) {
  const int n = g.num_nodes();
  util::Rng rng(seed);
  std::vector<int> start_pool;
  for (int v = 0; v < n; ++v) {
    if (starts.test(v)) start_pool.push_back(v);
  }
  if (start_pool.empty()) return std::nullopt;

  std::vector<Node> path;
  std::vector<int> pos(n);
  std::uint64_t steps = 0;

  auto rotate_at = [&](int w) {
    // Reverse path[pos[w]+1 .. end]; the node after w becomes the end.
    int lo = pos[w] + 1;
    int hi = static_cast<int>(path.size()) - 1;
    while (lo < hi) {
      std::swap(path[lo], path[hi]);
      pos[path[lo]] = lo;
      pos[path[hi]] = hi;
      ++lo;
      --hi;
    }
    if (lo == hi) pos[path[lo]] = lo;
  };

  for (int restart = 0; restart < 4 && steps < max_steps; ++restart) {
    const int a = start_pool[rng.next_below(start_pool.size())];
    path.clear();
    path.push_back(a);
    std::fill(pos.begin(), pos.end(), -1);
    pos[a] = 0;

    while (steps < max_steps) {
      ++steps;
      const int e = path.back();
      const auto nb = g.neighbors(e);
      // Extend with a random unvisited neighbor when possible.
      int fresh = -1;
      int seen_fresh = 0;
      for (Node w : nb) {
        if (pos[w] < 0 && static_cast<int>(rng.next_below(++seen_fresh)) == 0) {
          fresh = w;
        }
      }
      if (fresh >= 0) {
        pos[fresh] = static_cast<int>(path.size());
        path.push_back(fresh);
        if (static_cast<int>(path.size()) == n) break;
        continue;
      }
      // Stuck: rotate on a random on-path neighbor (skip the
      // predecessor, whose rotation is a no-op).
      const int len = static_cast<int>(path.size());
      int w = -1;
      int seen = 0;
      for (Node x : nb) {
        if (pos[x] >= 0 && pos[x] < len - 2 &&
            static_cast<int>(rng.next_below(++seen)) == 0) {
          w = x;
        }
      }
      if (w < 0) break;  // endpoint only connects backwards: restart
      rotate_at(w);
    }

    if (static_cast<int>(path.size()) != n) continue;
    // Full path; rotate until the endpoint lands in `ends`.
    std::uint64_t spins = 0;
    while (!ends.test(path.back()) && steps < max_steps &&
           spins < static_cast<std::uint64_t>(8 * n)) {
      ++steps;
      ++spins;
      const auto nb = g.neighbors(path.back());
      int w = -1;
      int seen = 0;
      for (Node x : nb) {
        if (pos[x] < n - 2 && static_cast<int>(rng.next_below(++seen)) == 0) {
          w = x;
        }
      }
      if (w < 0) break;
      rotate_at(w);
    }
    if (ends.test(path.back())) return path;
  }
  return std::nullopt;
}

// Index of the idx-th (0-based) set bit of `mask`; idx < popcount(mask).
inline int select_bit(std::uint64_t mask, unsigned idx) {
#if defined(__BMI2__)
  return std::countr_zero(_pdep_u64(std::uint64_t{1} << idx, mask));
#else
  while (idx--) mask &= mask - 1;
  return std::countr_zero(mask);
#endif
}

// Cheap per-fault-set randomness for the walk engine. Deterministic in
// the seed; xorshift64 is plenty for rotation pivots.
struct WalkRng {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

// Connected-component mask of `seed` within `allowed` (uint64 universe).
// Rows need not be pre-masked: the frontier is intersected with `allowed`
// each round.
std::uint64_t component64(const std::uint64_t* adj, std::uint64_t allowed,
                          int seed) {
  std::uint64_t comp = std::uint64_t{1} << seed;
  std::uint64_t frontier = comp;
  while (frontier) {
    std::uint64_t next = 0;
    std::uint64_t f = frontier;
    while (f) {
      const int v = std::countr_zero(f);
      f &= f - 1;
      next |= adj[v];
    }
    next &= allowed & ~comp;
    comp |= next;
    frontier = next;
  }
  return comp;
}

}  // namespace

HamPath hamiltonian_path(const Graph& g, const util::DynamicBitset& starts,
                         const util::DynamicBitset& ends,
                         const HamiltonianOptions& opts) {
  HamiltonianSolver solver(opts);
  return solver.solve(g, starts, ends);
}

// Deterministic per-pass tie-break priorities. Seed 0 yields the all-zero
// (pure Warnsdorff) order so the fast path stays exactly as before; the
// steady-state sweep always passes seed 0 first, so re-clearing an
// already-zero prefix is skipped.
void HamiltonianSolver::set_tie_break(int n, std::uint64_t seed) {
  if (seed == 0 && prio_zero_n_ >= n) return;
  prio_.assign(n, 0);
  prio_zero_n_ = n;
  if (seed == 0) return;
  prio_zero_n_ = 0;
  std::uint64_t x = seed;
  for (int v = 0; v < n; ++v) {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    prio_[v] = static_cast<std::uint32_t>(z ^ (z >> 31));
  }
}

HamPath HamiltonianSolver::solve(const Graph& g,
                                 const util::DynamicBitset& starts,
                                 const util::DynamicBitset& ends) {
  assert(static_cast<int>(starts.size()) == g.num_nodes());
  assert(static_cast<int>(ends.size()) == g.num_nodes());
  const int n = g.num_nodes();
  if (n == 0) return {HamResult::kNone, {}};
  if (n <= 64) {
    const std::uint64_t s = starts.words().empty() ? 0 : starts.words()[0];
    const std::uint64_t e = ends.words().empty() ? 0 : ends.words()[0];
    const std::uint64_t full =
        (n == 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
    adj64_.assign(n, 0);
    for (Node u = 0; u < n; ++u) {
      for (Node v : g.neighbors(u)) adj64_[u] |= std::uint64_t{1} << v;
    }
    rows_ = adj64_.data();
    const HamResult r = solve_mask_core(n, full, s, e);
    if (r == HamResult::kFound) return {r, stack_};
    return {r, {}};
  }
  return solve_large(g, starts, ends);
}

HamResult HamiltonianSolver::solve_masked(
    std::span<const std::uint64_t> adj_rows, std::uint64_t allowed,
    std::uint64_t starts, std::uint64_t ends) {
  const int n_all = static_cast<int>(adj_rows.size());
  assert(n_all >= 1 && n_all <= 64);
  const std::uint64_t full =
      (n_all == 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << n_all) - 1);
  allowed &= full;
  if (allowed == 0) return HamResult::kNone;
  // No per-solve copy: the engine reads the caller's rows directly and
  // masks at each use site (the rows must stay valid through the call).
  rows_ = adj_rows.data();
  return solve_mask_core(n_all, allowed, starts & allowed, ends & allowed);
}

// The <=64-node engine shared by solve() (contiguous universe) and
// solve_masked() (subset universe, original ids). Exact under the same
// budget-escalation contract as before; leaves any found path in stack_.
HamResult HamiltonianSolver::solve_mask_core(int n_all, std::uint64_t allowed,
                                             std::uint64_t starts,
                                             std::uint64_t ends) {
  n_all_ = n_all;
  starts &= allowed;
  ends &= allowed;
  if (!starts || !ends) return HamResult::kNone;
  const int m = std::popcount(allowed);
  if (m == 1) {
    // starts/ends are subsets of the single-node universe, so being both
    // nonempty they contain exactly that node.
    stack_.assign(1, std::countr_zero(allowed));
    return HamResult::kFound;
  }

  // Global necessary condition: the graph must be connected.
  if (component64(rows_, allowed, std::countr_zero(allowed)) != allowed) {
    return HamResult::kNone;
  }

  // Try each start, cheapest (lowest-degree) first: low-degree starts are
  // the most constrained and usually the ones that force failure early.
  start_order_.clear();
  {
    std::uint64_t s = starts;
    while (s) {
      start_order_.push_back(std::countr_zero(s));
      s &= s - 1;
    }
    std::sort(start_order_.begin(), start_order_.end(), [&](int a, int b) {
      return std::popcount(rows_[a] & allowed) <
             std::popcount(rows_[b] & allowed);
    });
  }

  // Budget-escalating restarts. A plain Warnsdorff DFS can backtrack
  // exponentially on some structured instances even when Hamiltonian
  // paths abound; restarting with a perturbed tie-break order (and a
  // bigger budget) finds a path almost surely while staying exact: a
  // pass that finishes without hitting its budget proves kNone, and in
  // exact mode the final pass is unbounded.
  const bool exact_mode = opts_.dfs_budget == 0;
  std::uint64_t budgets[3];
  std::size_t num_budgets;
  if (exact_mode) {
    budgets[0] = std::uint64_t{1} << 12;
    budgets[1] = std::uint64_t{1} << 17;
    budgets[2] = std::uint64_t{1} << 20;
    num_budgets = 3;
  } else {
    budgets[0] = opts_.dfs_budget;
    num_budgets = 1;
  }

  auto run_pass = [&](std::uint64_t budget, std::uint64_t seed) -> HamResult {
    set_tie_break(n_all, seed);
    bool hit = false;
    for (int a : start_order_) {
      stack_.clear();
      stack_.push_back(a);
      expansions_ = 0;
      const HamResult r =
          dfs_small(a, allowed & ~(std::uint64_t{1} << a), ends, budget);
      expansions_total_ += expansions_;
      if (r == HamResult::kFound) return HamResult::kFound;
      if (r == HamResult::kUnknown) hit = true;
    }
    return hit ? HamResult::kUnknown : HamResult::kNone;
  };

  for (std::size_t attempt = 0; attempt < num_budgets; ++attempt) {
    const HamResult r = run_pass(budgets[attempt], attempt);
    if (r != HamResult::kUnknown) return r;
    // DP-sized instances go straight to the exact DP: cheaper than more
    // DFS and, unlike Pósa, it also proves absence.
    if (m <= opts_.dp_max_nodes && m <= 31) {
      return solve_dp_masked(allowed, starts, ends);
    }
    {
      // The cheap deterministic pass came up empty-handed: try Pósa
      // rotations before burning bigger DFS budgets — on positive
      // instances it nearly always succeeds immediately. Fresh seeds and
      // growing step caps at every escalation level.
      const std::uint64_t base_seed = 11 + 64 * attempt;
      const std::uint64_t steps =
          (600ull << attempt) * static_cast<unsigned>(m) + 30000;
      for (std::uint64_t seed = base_seed; seed < base_seed + 12; ++seed) {
        if (posa_masked(allowed, starts, ends, seed, steps)) {
          return HamResult::kFound;
        }
      }
    }
  }

  // Budgets exhausted (m too large for the DP): in exact mode run one
  // final unbounded pass.
  if (exact_mode) {
    const HamResult r = run_pass(~std::uint64_t{0}, 0x9e3779b9u);
    return r == HamResult::kFound ? HamResult::kFound : HamResult::kNone;
  }
  return HamResult::kUnknown;
}

// DFS from endpoint v; `rem` = unvisited nodes, all of which must still be
// covered; the final node must lie in `ends`.
HamResult HamiltonianSolver::dfs_small(int v, std::uint64_t rem,
                                       std::uint64_t ends,
                                       std::uint64_t budget_left) {
  if (rem == 0) {
    return ((ends >> v) & 1u) ? HamResult::kFound : HamResult::kNone;
  }
  if (++expansions_ > budget_left) return HamResult::kUnknown;

  // Terminal availability: some end candidate must remain reachable.
  if ((rem & ends) == 0) return HamResult::kNone;

  // Prune on remaining-degree structure. A node of `rem` whose only
  // neighbors lie outside rem ∪ {v} can never be reached; a node whose
  // only neighbor is v must be visited next and, transitively, must end
  // the path, which is possible only when it is the sole remaining node.
  std::uint64_t forced_terminal = 0;  // nodes that must be the final node
  int forced_count = 0;
  {
    std::uint64_t scan = rem;
    const std::uint64_t ctx = rem | (std::uint64_t{1} << v);
    while (scan) {
      const int u = std::countr_zero(scan);
      scan &= scan - 1;
      const std::uint64_t nb = rows_[u] & ctx;
      if (nb == 0) return HamResult::kNone;
      if ((nb & (nb - 1)) == 0) {  // exactly one neighbor left
        if (nb == (std::uint64_t{1} << v)) {
          // Only connection is v: u must be next AND last.
          if (rem != (std::uint64_t{1} << u)) return HamResult::kNone;
        }
        // Remaining-path endpoint is forced to be u.
        forced_terminal |= std::uint64_t{1} << u;
        if (++forced_count > 1) return HamResult::kNone;
      }
    }
  }
  std::uint64_t effective_ends = ends;
  if (forced_count == 1) {
    effective_ends &= forced_terminal;
    if (effective_ends == 0) return HamResult::kNone;
  }

  // Connectivity: rem must form one component hanging off v.
  {
    const std::uint64_t seed_set = rows_[v] & rem;
    if (seed_set == 0) return HamResult::kNone;
    const std::uint64_t ctx = rem | (std::uint64_t{1} << v);
    const std::uint64_t comp = component64(rows_, ctx, v);
    if ((comp & rem) != rem) return HamResult::kNone;
  }

  // Successors, fewest onward options first (Warnsdorff's heuristic);
  // ties broken by the per-pass perturbation so restarts explore
  // different corners of the search tree.
  int cand[64];
  std::uint64_t cand_key[64];
  int m = 0;
  {
    std::uint64_t s = rows_[v] & rem;
    while (s) {
      const int w = std::countr_zero(s);
      s &= s - 1;
      cand[m] = w;
      cand_key[m] =
          (static_cast<std::uint64_t>(std::popcount(rows_[w] & rem))
           << 32) |
          prio_[w];
      ++m;
    }
  }
  // Insertion sort: m is at most max degree, which is small.
  for (int i = 1; i < m; ++i) {
    const int cw = cand[i];
    const std::uint64_t ck = cand_key[i];
    int j = i - 1;
    while (j >= 0 && cand_key[j] > ck) {
      cand[j + 1] = cand[j];
      cand_key[j + 1] = cand_key[j];
      --j;
    }
    cand[j + 1] = cw;
    cand_key[j + 1] = ck;
  }

  bool unknown = false;
  for (int i = 0; i < m; ++i) {
    const int w = cand[i];
    stack_.push_back(w);
    const HamResult r = dfs_small(w, rem & ~(std::uint64_t{1} << w),
                                  effective_ends, budget_left);
    if (r == HamResult::kFound) return r;
    stack_.pop_back();
    if (r == HamResult::kUnknown) unknown = true;
  }
  return unknown ? HamResult::kUnknown : HamResult::kNone;
}

// Held–Karp style reachability DP over the compacted `allowed` universe.
// reach[mask] holds the set of compact ids v such that some path starting
// in `starts` visits exactly `mask` and ends at v. Exact; used only for
// small subproblems when the DFS budget was exhausted, so its table
// (re)allocation is off the steady-state path. When `allowed` is the
// contiguous full universe the compaction is the identity and this is
// exactly the historical solve_dp.
HamResult HamiltonianSolver::solve_dp_masked(std::uint64_t allowed,
                                             std::uint64_t starts,
                                             std::uint64_t ends) {
  const int m = std::popcount(allowed);
  assert(m >= 2 && m <= 31);

  int nodes[32];        // compact id -> original id
  signed char sub[64];  // original id -> compact id (allowed bits only)
  {
    int i = 0;
    std::uint64_t s = allowed;
    while (s) {
      const int v = std::countr_zero(s);
      s &= s - 1;
      nodes[i] = v;
      sub[v] = static_cast<signed char>(i);
      ++i;
    }
  }
  std::uint32_t adj[32];
  std::uint32_t cstarts = 0, cends = 0;
  for (int i = 0; i < m; ++i) {
    std::uint32_t row = 0;
    std::uint64_t nb = rows_[nodes[i]] & allowed;
    while (nb) {
      row |= std::uint32_t{1} << sub[std::countr_zero(nb)];
      nb &= nb - 1;
    }
    adj[i] = row;
    if ((starts >> nodes[i]) & 1u) cstarts |= std::uint32_t{1} << i;
    if ((ends >> nodes[i]) & 1u) cends |= std::uint32_t{1} << i;
  }
  const std::uint32_t full = (std::uint32_t{1} << m) - 1;

  dp_reach_.assign(std::size_t{1} << m, 0);
  {
    std::uint32_t s = cstarts;
    while (s) {
      const int a = std::countr_zero(s);
      s &= s - 1;
      dp_reach_[std::uint32_t{1} << a] = std::uint32_t{1} << a;
    }
  }
  for (std::uint32_t mask = 1; mask <= full; ++mask) {
    std::uint32_t end_set = dp_reach_[mask];
    while (end_set) {
      const int v = std::countr_zero(end_set);
      end_set &= end_set - 1;
      std::uint32_t ext = adj[v] & ~mask;
      while (ext) {
        const int w = std::countr_zero(ext);
        ext &= ext - 1;
        dp_reach_[mask | (std::uint32_t{1} << w)] |= std::uint32_t{1} << w;
      }
    }
  }

  const std::uint32_t finals = dp_reach_[full] & cends;
  if (!finals) return HamResult::kNone;

  // Reconstruct backwards (original ids).
  stack_.clear();
  std::uint32_t mask = full;
  int v = std::countr_zero(finals);
  stack_.push_back(nodes[v]);
  while (mask != (std::uint32_t{1} << v)) {
    const std::uint32_t prev_mask = mask & ~(std::uint32_t{1} << v);
    std::uint32_t preds = dp_reach_[prev_mask] & adj[v];
    assert(preds != 0);
    const int u = std::countr_zero(preds);
    stack_.push_back(nodes[u]);
    mask = prev_mask;
    v = u;
  }
  std::reverse(stack_.begin(), stack_.end());
  return HamResult::kFound;
}

// Allocation-free port of posa_search for the mask engine: identical
// search sequence (neighbor visit order, RNG draws, rotation rule) over
// the rows_ adjacency masked to `allowed`, with the path built in stack_.
// Returns true on success with the path left in stack_.
bool HamiltonianSolver::posa_masked(std::uint64_t allowed,
                                    std::uint64_t starts, std::uint64_t ends,
                                    std::uint64_t seed,
                                    std::uint64_t max_steps) {
  const int m = std::popcount(allowed);
  util::Rng rng(seed);
  posa_pool_.clear();
  {
    std::uint64_t s = starts;
    while (s) {
      posa_pool_.push_back(std::countr_zero(s));
      s &= s - 1;
    }
  }
  if (posa_pool_.empty()) return false;

  posa_pos_.resize(static_cast<std::size_t>(n_all_));
  std::vector<Node>& path = stack_;
  std::uint64_t steps = 0;

  auto rotate_at = [&](int w) {
    int lo = posa_pos_[w] + 1;
    int hi = static_cast<int>(path.size()) - 1;
    while (lo < hi) {
      std::swap(path[lo], path[hi]);
      posa_pos_[path[lo]] = lo;
      posa_pos_[path[hi]] = hi;
      ++lo;
      --hi;
    }
    if (lo == hi) posa_pos_[path[lo]] = lo;
  };

  for (int restart = 0; restart < 4 && steps < max_steps; ++restart) {
    const int a = posa_pool_[rng.next_below(posa_pool_.size())];
    path.clear();
    path.push_back(a);
    std::fill(posa_pos_.begin(), posa_pos_.end(), -1);
    posa_pos_[a] = 0;

    while (steps < max_steps) {
      ++steps;
      const int e = path.back();
      int fresh = -1;
      int seen_fresh = 0;
      for (std::uint64_t nb = rows_[e] & allowed; nb; nb &= nb - 1) {
        const int w = std::countr_zero(nb);
        if (posa_pos_[w] < 0 &&
            static_cast<int>(rng.next_below(++seen_fresh)) == 0) {
          fresh = w;
        }
      }
      if (fresh >= 0) {
        posa_pos_[fresh] = static_cast<int>(path.size());
        path.push_back(fresh);
        if (static_cast<int>(path.size()) == m) break;
        continue;
      }
      const int len = static_cast<int>(path.size());
      int w = -1;
      int seen = 0;
      for (std::uint64_t nb = rows_[e] & allowed; nb; nb &= nb - 1) {
        const int x = std::countr_zero(nb);
        if (posa_pos_[x] >= 0 && posa_pos_[x] < len - 2 &&
            static_cast<int>(rng.next_below(++seen)) == 0) {
          w = x;
        }
      }
      if (w < 0) break;
      rotate_at(w);
    }

    if (static_cast<int>(path.size()) != m) continue;
    std::uint64_t spins = 0;
    while (!((ends >> path.back()) & 1u) && steps < max_steps &&
           spins < static_cast<std::uint64_t>(8 * m)) {
      ++steps;
      ++spins;
      int w = -1;
      int seen = 0;
      for (std::uint64_t nb = rows_[path.back()] & allowed; nb; nb &= nb - 1) {
        const int x = std::countr_zero(nb);
        if (posa_pos_[x] < m - 2 &&
            static_cast<int>(rng.next_below(++seen)) == 0) {
          w = x;
        }
      }
      if (w < 0) break;
      rotate_at(w);
    }
    if ((ends >> path.back()) & 1u) return true;
  }
  return false;
}

bool HamiltonianSolver::walk_masked(std::span<const std::uint64_t> adj_rows,
                                    std::uint64_t allowed,
                                    std::uint64_t starts, std::uint64_t ends,
                                    std::uint64_t seed, int first_start) {
  const int n_all = static_cast<int>(adj_rows.size());
  assert(n_all >= 1 && n_all <= 64);
  const std::uint64_t full =
      (n_all == 64) ? ~std::uint64_t{0} : ((std::uint64_t{1} << n_all) - 1);
  allowed &= full;
  starts &= allowed;
  ends &= allowed;
  if (!starts || !ends) return false;
  const std::uint64_t* rows = adj_rows.data();
  const int m = std::popcount(allowed);
  if (m == 1) {
    stack_.assign(1, std::countr_zero(allowed));
    return true;
  }
  // Tuned on the Figure 14 sweep: 3 restarts x 120 steps finds ~99.99%
  // of positive instances; everything else falls to the exact engine.
  constexpr int kMaxSteps = 120;
  constexpr int kRestarts = 3;
  WalkRng rng{seed ? seed : 0x243f6a8885a308d3ULL};
  const int ns = std::popcount(starts);
  // A batch kernel may hand in the restart-0 start (lowest start bit,
  // computed lane-parallel). It must agree with the scalar derivation —
  // the walk stays a pure function of (rows, allowed, starts, ends,
  // seed) either way.
  assert(first_start < 0 || first_start == std::countr_zero(starts));
  const int start0 =
      first_start >= 0 ? first_start : std::countr_zero(starts);

  int* const pos = walk_pos_;
  Node* const path = walk_path_;
  for (int r = 0; r < kRestarts; ++r) {
    // First try the lowest start deterministically; later restarts draw.
    const int start = r == 0 ? start0 : select_bit(starts, rng.next() % ns);
    std::uint64_t rem = allowed & ~(std::uint64_t{1} << start);
    int len = 1;
    int steps = 0;
    std::memset(pos, -1, 64 * sizeof(int));
    path[0] = start;
    pos[start] = 0;

    auto rotate_at = [&](int w) {
      // Reverse path[pos[w]+1 .. len-1]: w's old successor becomes the
      // new endpoint, the path edge set stays valid.
      int lo = pos[w] + 1;
      int hi = len - 1;
      while (lo < hi) {
        std::swap(path[lo], path[hi]);
        pos[path[lo]] = lo;
        pos[path[hi]] = hi;
        ++lo;
        --hi;
      }
      if (lo == hi) pos[path[lo]] = lo;
    };

    bool dead = false;
    while (!dead && steps++ < kMaxSteps) {
      const int e = path[len - 1];
      std::uint64_t cand = rows[e] & rem;
      if (cand) {
        // Greedy extension, min key = 2*remaining-degree plus a penalty
        // that saves end-capable nodes for the endpoint-landing phase.
        int best = -1;
        int best_key = 999;
        do {
          const int w = std::countr_zero(cand);
          cand &= cand - 1;
          const int key = 2 * std::popcount(rows[w] & rem) +
                          (((ends >> w) & 1u) ? 32 : 0);
          if (key < best_key) {
            best_key = key;
            best = w;
          }
        } while (cand);
        rem &= ~(std::uint64_t{1} << best);
        path[len] = best;
        pos[best] = len;
        ++len;
        if (len < m) continue;
      }
      if (len == m) {
        // Full path: spin-rotate until the endpoint lands in `ends`,
        // preferring pivots whose successor already is an end.
        int spins = 0;
        while (spins++ < 4 * m && steps++ < kMaxSteps) {
          const int ep = path[m - 1];
          if ((ends >> ep) & 1u) {
            stack_.assign(path, path + m);
            return true;
          }
          std::uint64_t nb = rows[ep] & allowed;
          std::uint64_t elig = 0;
          while (nb) {
            const int x = std::countr_zero(nb);
            nb &= nb - 1;
            if (pos[x] < m - 2) elig |= std::uint64_t{1} << x;
          }
          if (!elig) {
            dead = true;
            break;
          }
          int pick = -1;
          for (std::uint64_t t = elig; t; t &= t - 1) {
            const int x = std::countr_zero(t);
            if ((ends >> path[pos[x] + 1]) & 1u) {
              pick = x;
              break;
            }
          }
          if (pick < 0) {
            const unsigned c =
                static_cast<unsigned>(std::popcount(elig));
            pick = select_bit(elig, static_cast<unsigned>(rng.next() % c));
          }
          rotate_at(pick);
        }
        if (!dead && ((ends >> path[m - 1]) & 1u)) {
          stack_.assign(path, path + m);
          return true;
        }
        break;  // spin cap: restart from a fresh start node
      }
      // Stuck mid-walk: random Pósa rotation (skip the predecessor,
      // whose rotation is a no-op).
      const int e2 = path[len - 1];
      std::uint64_t nb = rows[e2] & allowed;
      std::uint64_t elig = 0;
      while (nb) {
        const int x = std::countr_zero(nb);
        nb &= nb - 1;
        const int p = pos[x];
        if (p >= 0 && p < len - 2) elig |= std::uint64_t{1} << x;
      }
      if (!elig) break;
      const unsigned c = static_cast<unsigned>(std::popcount(elig));
      rotate_at(select_bit(elig, static_cast<unsigned>(rng.next() % c)));
    }
  }
  return false;
}

// Generic variant for graphs with more than 64 nodes (used by the
// reconfiguration benches on large instances). Same search, DynamicBitset
// state. Exact when dfs_budget == 0. This path is outside exhaustive
// certification reach (orbit pruning and the fault sweep cap at 64
// nodes), so it keeps the simpler per-call allocations.
HamPath HamiltonianSolver::solve_large(const Graph& g,
                                       const util::DynamicBitset& starts,
                                       const util::DynamicBitset& ends) {
  const int n = g.num_nodes();
  std::vector<util::DynamicBitset> adj(n, util::DynamicBitset(n));
  for (Node u = 0; u < n; ++u) {
    for (Node v : g.neighbors(u)) adj[u].set(v);
  }

  auto connected_within = [&](const util::DynamicBitset& allowed,
                              int seed) {
    util::DynamicBitset comp(n), frontier(n);
    comp.set(seed);
    frontier.set(seed);
    while (frontier.any()) {
      util::DynamicBitset next(n);
      for (std::size_t v = frontier.find_first(); v < frontier.size();
           v = frontier.find_next(v + 1)) {
        next |= adj[v];
      }
      next &= allowed;
      // next &= ~comp
      util::DynamicBitset fresh = next;
      fresh ^= comp;
      fresh &= next;
      comp |= next;
      frontier = fresh;
    }
    return comp;
  };

  std::vector<Node> path;
  util::DynamicBitset rem(n, true);
  std::uint64_t budget = 0;
  std::uint64_t spent = 0;

  // Recursive lambda DFS.
  auto dfs = [&](auto&& self, int v) -> HamResult {
    if (rem.none()) {
      return ends.test(v) ? HamResult::kFound : HamResult::kNone;
    }
    if (++spent > budget) return HamResult::kUnknown;

    // Degree / forced-terminal pruning.
    int forced = -1;
    for (std::size_t u = rem.find_first(); u < rem.size();
         u = rem.find_next(u + 1)) {
      int deg = 0;
      int last = -1;
      const auto& nb = adj[u];
      for (std::size_t w = nb.find_first(); w < nb.size();
           w = nb.find_next(w + 1)) {
        if (rem.test(w) || static_cast<int>(w) == v) {
          ++deg;
          last = static_cast<int>(w);
          if (deg > 1) break;
        }
      }
      if (deg == 0) return HamResult::kNone;
      if (deg == 1) {
        if (last == v && rem.count() != 1) return HamResult::kNone;
        if (forced >= 0) return HamResult::kNone;
        forced = static_cast<int>(u);
      }
    }

    // Connectivity through v.
    {
      util::DynamicBitset ctx = rem;
      ctx.set(v);
      util::DynamicBitset comp = connected_within(ctx, v);
      comp &= rem;
      if (comp.count() != rem.count()) return HamResult::kNone;
    }

    // Candidates sorted by remaining degree, perturbed tie-break.
    std::vector<std::pair<std::uint64_t, int>> cand;  // (key, node)
    const auto& nbv = adj[v];
    for (std::size_t w = nbv.find_first(); w < nbv.size();
         w = nbv.find_next(w + 1)) {
      if (!rem.test(w)) continue;
      int deg = 0;
      const auto& nbw = adj[w];
      for (std::size_t x = nbw.find_first(); x < nbw.size();
           x = nbw.find_next(x + 1)) {
        if (rem.test(x)) ++deg;
      }
      cand.emplace_back((static_cast<std::uint64_t>(deg) << 32) | prio_[w],
                        static_cast<int>(w));
    }
    std::sort(cand.begin(), cand.end());

    bool any_unknown = false;
    for (auto [key, w] : cand) {
      if (forced >= 0 && rem.count() > 1 && w != forced &&
          !ends.test(forced)) {
        // Forced terminal is not a legal end: dead branch regardless.
        return HamResult::kNone;
      }
      path.push_back(w);
      rem.reset(w);
      const HamResult r = self(self, w);
      if (r == HamResult::kFound) return r;
      rem.set(w);
      path.pop_back();
      if (r == HamResult::kUnknown) any_unknown = true;
    }
    return any_unknown ? HamResult::kUnknown : HamResult::kNone;
  };

  // Same budget-escalating restart scheme as the small solver: perturbed
  // Warnsdorff passes, exact because a pass that never hits its budget
  // proves absence and the exact-mode final pass is unbounded.
  auto run_pass = [&](std::uint64_t pass_budget,
                      std::uint64_t seed) -> HamResult {
    set_tie_break(n, seed);
    budget = pass_budget;
    bool hit = false;
    for (int a = 0; a < n; ++a) {
      if (!starts.test(a)) continue;
      path.clear();
      path.push_back(a);
      rem.set_all();
      rem.reset(a);
      spent = 0;
      const HamResult r = dfs(dfs, a);
      expansions_total_ += spent;
      if (r == HamResult::kFound) return HamResult::kFound;
      if (r == HamResult::kUnknown) hit = true;
    }
    return hit ? HamResult::kUnknown : HamResult::kNone;
  };

  const bool exact_mode = opts_.dfs_budget == 0;
  std::vector<std::uint64_t> budgets;
  if (exact_mode) {
    budgets = {std::uint64_t{1} << 11, std::uint64_t{1} << 16,
               std::uint64_t{1} << 19, std::uint64_t{1} << 22};
  } else {
    budgets = {opts_.dfs_budget};
  }
  for (std::size_t attempt = 0; attempt < budgets.size(); ++attempt) {
    const HamResult r = run_pass(budgets[attempt], attempt);
    if (r != HamResult::kUnknown) {
      return {r, r == HamResult::kFound ? path : std::vector<Node>{}};
    }
    // Lean hard on Pósa between every escalation: each DFS budget pass
    // costs O(budget * n) here — minutes at n in the hundreds — whereas
    // rotations are O(n) per step, and on the dense positive instances
    // this solver sees, Pósa with enough fresh seeds essentially always
    // lands. Step caps grow with the escalation level.
    const std::uint64_t base_seed = 21 + 64 * attempt;
    const std::uint64_t steps =
        (1000ull << attempt) * static_cast<unsigned>(n) + 50000;
    for (std::uint64_t seed = base_seed; seed < base_seed + 16; ++seed) {
      auto p = posa_search(g, starts, ends, seed, steps);
      if (p) return {HamResult::kFound, std::move(*p)};
    }
  }
  if (exact_mode) {
    const HamResult r = run_pass(~std::uint64_t{0}, 0x5eedULL);
    return {r == HamResult::kFound ? HamResult::kFound : HamResult::kNone,
            r == HamResult::kFound ? path : std::vector<Node>{}};
  }
  return {HamResult::kUnknown, {}};
}

}  // namespace kgdp::graph
